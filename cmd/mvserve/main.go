// Command mvserve demonstrates the query-serving layer: it generates a
// TPC-D database, optimizes and materializes the ten-view workload, then
// runs N reader goroutines issuing SQL queries concurrently with a writer
// that keeps refreshing the views. Readers execute against epoch-based
// snapshots (storage.Snapshot), so every answer reflects exactly one
// update-step boundary while the writer proceeds without blocking; hot
// query results are admitted into a benefit-based dynamic cache.
//
// Usage:
//
//	mvserve -sf 0.002 -pct 4 -readers 8 -cycles 3 -cache 64 -check -partitions 4
//	mvserve -adapt -sf 0.002 -readers 4 -cycles 3 -seed 11
//	mvserve -wal-dir -fsync -readers 4 -stream-batches 3
//
// -partitions turns on partition-parallel operators for both the refresh
// writer and every served query (<=1 = sequential operators); answers are
// identical at any setting.
//
// -check retains every published snapshot and verifies each sampled answer
// against a full recomputation at its epoch (slower; it is how the serving
// isolation guarantee is tested).
//
// -adapt switches to the drifting-workload experiment: the query mix shifts
// mid-run, the runtime re-selects its materialized set from the observed
// workload (core.Runtime.Adapt) and hot-swaps it at an epoch boundary, and
// the run is reported against a static baseline tuned for the initial mix.
//
// -feedback switches to the feedback-driven costing experiment: update
// batches are skewed (foreign keys concentrated on the lowest -hot-frac of
// the key space) so differential cardinalities drift from the histogram
// estimates, and the skewed drifting workload is run three times — static
// plan, adaptive with static estimates, adaptive with observed cardinalities
// correcting every re-selection round — reporting estimation error (q-error)
// and throughput. -json writes the summary as a JSON object.
//
// -pipeline switches to the operator-engine comparison: the ten-view refresh
// and serving workloads each run under the chained (end-to-end columnar),
// batch, and row engines, reporting refresh wall-clock per cycle, allocation
// volume per cycle, and serving throughput, with view rows checked
// byte-identical across engines. -json writes the summary as a
// JSON object (BENCH_10.json in CI).
//
// -wal-dir switches to the durable serving experiment: readers query epoch
// snapshots while updates stream through the bounded ingest queue and every
// micro-batch is group-committed to a write-ahead log (in a throwaway
// directory) before its epochs publish. -fsync extends durability to
// machine crashes; -stream-batches sizes the update stream.
//
// -shards switches to the sharded scatter-gather experiment: queries are
// lowered onto a worker fleet that shards the hash partitions, epochs
// publish through the two-phase install, and answers stay byte-identical to
// single-node serving. The fleet is in-process by default; -shard-addrs
// dials running mvshard workers instead:
//
//	mvserve -shards 2 -readers 4 -cycles 2 -check
//	mvserve -shards 2 -partitions 8 -shard-addrs 127.0.0.1:7070,127.0.0.1:7071
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/storage"
)

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor (keep small: the engine is in-memory)")
	pct := flag.Float64("pct", 4, "update percentage per refresh cycle")
	readers := flag.Int("readers", 8, "concurrent query goroutines")
	cycles := flag.Int("cycles", 3, "refresh cycles the writer runs (per phase with -adapt)")
	workers := flag.Int("workers", 0, "refresh worker pool size (0 = GOMAXPROCS)")
	partitions := flag.Int("partitions", 1, "hash partitions per operator (<=1 = sequential operators)")
	execMode := flag.String("exec", defaultExecMode(), "operator engine: chained (end-to-end columnar pipelines), batch (vectorized columnar) or row")
	cacheMB := flag.Float64("cache", 64, "dynamic result cache budget in MB (negative disables)")
	check := flag.Bool("check", false, "verify sampled answers against step-boundary recomputation")
	adapt := flag.Bool("adapt", false, "drifting workload with online re-selection, vs a static baseline")
	feedback := flag.Bool("feedback", false, "feedback-driven costing experiment: skewed drifting workload, observed cardinalities correcting re-selection, vs static estimates")
	pipeline := flag.Bool("pipeline", false, "operator-engine comparison: refresh and serving under chained vs batch vs row, byte-identity checked")
	hotFrac := flag.Float64("hot-frac", 0.02, "update skew (with -feedback): inserted foreign keys draw from this lowest fraction of the key space")
	jsonOut := flag.String("json", "", "write the -feedback or -pipeline summary as JSON to this file")
	seed := flag.Int64("seed", 11, "data and drift seed (with -adapt)")
	walDir := flag.String("wal-dir", "", "serve over the durable streaming path; WAL lives in this directory")
	fsync := flag.Bool("fsync", false, "fsync group commits (with -wal-dir)")
	streamBatches := flag.Int("stream-batches", 3, "update batches streamed during the run (with -wal-dir)")
	shards := flag.Int("shards", 0, "serve through a scatter-gather worker fleet of this size (0 = off)")
	shardAddrs := flag.String("shard-addrs", "", "comma-separated mvshard addresses (with -shards; empty boots an in-process fleet)")
	flag.Parse()

	switch *execMode {
	case "chained":
		storage.SetDefaultExecChain(true)
	case "batch":
		storage.SetDefaultExecBatch(true)
	case "row":
		storage.SetDefaultExecBatch(false)
	default:
		fmt.Fprintf(os.Stderr, "unknown -exec mode %q (want chained, batch or row)\n", *execMode)
		os.Exit(2)
	}

	if *shards > 0 {
		var addrs []string
		if *shardAddrs != "" {
			addrs = strings.Split(*shardAddrs, ",")
			if len(addrs) != *shards {
				fmt.Fprintf(os.Stderr, "mvserve: %d addresses in -shard-addrs for %d shards\n", len(addrs), *shards)
				os.Exit(2)
			}
		}
		parts := *partitions
		if parts <= 1 { // the sequential-operator default picks the fleet default
			parts = 0
		}
		fmt.Printf("generating TPC-D at SF %g and serving %d readers over %d shards…\n",
			*sf, *readers, *shards)
		r := bench.ShardedServe(bench.ShardedServeConfig{
			ScaleFactor: *sf, UpdatePct: *pct,
			Readers: *readers, Cycles: *cycles,
			Shards: *shards, Partitions: parts, Addrs: addrs,
			Seed: *seed, Check: *check,
		})
		fmt.Print(r.Format())
		if !r.Verified || !r.Consistent || !r.ByteIdentical || r.Scattered == 0 {
			fmt.Fprintln(os.Stderr, "mvserve: FAILED (diverged answers, inconsistent results, or nothing scattered)")
			os.Exit(1)
		}
		return
	}

	if *walDir != "" {
		fmt.Printf("generating TPC-D at SF %g and serving %d readers over the durable ingest path…\n",
			*sf, *readers)
		r := bench.DurableServe(bench.DurableServeConfig{
			DurableConfig: bench.DurableConfig{
				ScaleFactor: *sf, UpdatePct: *pct,
				StreamBatches: *streamBatches,
				Fsync:         *fsync,
				Seed:          *seed, Dir: *walDir,
			},
			Readers:     *readers,
			CacheBudget: *cacheMB * (1 << 20),
		})
		fmt.Print(r.Format())
		if !r.Verified {
			fmt.Fprintln(os.Stderr, "mvserve: FAILED (diverged views)")
			os.Exit(1)
		}
		return
	}

	if *pipeline {
		fmt.Printf("generating TPC-D at SF %g and comparing operator engines over %d cycles…\n",
			*sf, *cycles)
		r := bench.PipelineComparison(bench.PipelineConfig{
			ScaleFactor: *sf, UpdatePct: *pct,
			Cycles: *cycles, Readers: *readers,
			Seed: *seed, Check: *check,
		})
		fmt.Print(r.Format())
		if *jsonOut != "" {
			data, err := r.JSON()
			if err == nil {
				err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		if !r.Sound() {
			fmt.Fprintln(os.Stderr, "mvserve: FAILED (engine divergence or verification failure)")
			os.Exit(1)
		}
		return
	}

	if *feedback {
		fmt.Printf("generating TPC-D at SF %g and driving a skewed drifting workload over %d readers…\n",
			*sf, *readers)
		c := bench.FeedbackExperiment(bench.AdaptiveConfig{
			ScaleFactor: *sf, UpdatePct: *pct,
			Readers: *readers, CyclesPerPhase: *cycles, Workers: *workers,
			Partitions:  *partitions,
			CacheBudget: *cacheMB * (1 << 20),
			Seed:        *seed, Check: *check,
			HotFrac: *hotFrac,
		})
		fmt.Print(c.Format())
		if *jsonOut != "" {
			data, err := c.JSON()
			if err == nil {
				err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		if !c.Sound() || c.Corrected.Installs == 0 || c.Corrected.Q.QTotal == 0 {
			fmt.Fprintln(os.Stderr, "mvserve: FAILED (inconsistent results, diverged views, or feedback never reached a live plan)")
			os.Exit(1)
		}
		return
	}

	if *adapt {
		fmt.Printf("generating TPC-D at SF %g and driving a drifting workload over %d readers…\n",
			*sf, *readers)
		ad, st := bench.AdaptiveVsStatic(bench.AdaptiveConfig{
			ScaleFactor: *sf, UpdatePct: *pct,
			Readers: *readers, CyclesPerPhase: *cycles, Workers: *workers,
			Partitions:  *partitions,
			CacheBudget: *cacheMB * (1 << 20),
			Seed:        *seed, Check: *check,
		})
		fmt.Print(st.Format())
		fmt.Print(ad.Format())
		fmt.Print(ad.WorkloadReport)
		fmt.Printf("adaptive/static overall throughput: %.2fx\n", ad.TotalQPS/st.TotalQPS)
		if !ad.Verified || !ad.Consistent || !st.Verified || !st.Consistent || ad.Installs == 0 {
			fmt.Fprintln(os.Stderr, "mvserve: FAILED (inconsistent results, diverged views, or no adaptation)")
			os.Exit(1)
		}
		return
	}

	fmt.Printf("generating TPC-D at SF %g and serving %d readers against %d refresh cycles…\n",
		*sf, *readers, *cycles)
	r := bench.ConcurrentServe(bench.ServeConfig{
		ScaleFactor: *sf, UpdatePct: *pct,
		Readers: *readers, Cycles: *cycles, Workers: *workers,
		Partitions:  *partitions,
		CacheBudget: *cacheMB * (1 << 20),
		Check:       *check,
	})
	fmt.Print(r.Format())
	fmt.Print(r.CacheReport)
	if !r.Verified || !r.Consistent {
		fmt.Fprintln(os.Stderr, "mvserve: FAILED (inconsistent results or diverged views)")
		os.Exit(1)
	}
}

// defaultExecMode renders the process default engine choice (MVOPT_EXEC, see
// storage.DefaultExecBatch) as the -exec flag default.
func defaultExecMode() string {
	switch {
	case storage.DefaultExecChain():
		return "chained"
	case storage.DefaultExecBatch():
		return "batch"
	}
	return "row"
}
