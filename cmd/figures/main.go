// Command figures regenerates the tables and figures of the paper's
// performance study (§7). Each figure prints as a text table with the same
// axes as the paper's plot: plan cost (seconds) versus update percentage,
// for Greedy and the NoGreedy baseline.
//
// Usage:
//
//	figures -fig all          # everything
//	figures -fig 3a           # one figure: 3a 3b 4a 4b 5a 5b
//	figures -fig opt          # §7.2 cost of optimization
//	figures -fig matsplit     # §7.2 temporary vs permanent
//	figures -fig buffer       # §7.2 effect of buffer size
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3a 3b 4a 4b 5a 5b opt matsplit buffer all")
	flag.Parse()

	series := map[string]func() *bench.Series{
		"3a": bench.Figure3a, "3b": bench.Figure3b,
		"4a": bench.Figure4a, "4b": bench.Figure4b,
		"5a": bench.Figure5a, "5b": bench.Figure5b,
	}
	printed := false
	runSeries := func(name string) {
		fmt.Println(series[name]().Format())
		printed = true
	}
	switch *fig {
	case "all":
		for _, n := range []string{"3a", "3b", "4a", "4b", "5a", "5b"} {
			runSeries(n)
		}
		fmt.Println(bench.OptimizationTime().Format())
		fmt.Println(bench.TempVsPermanent().Format())
		fmt.Println(bench.BufferComparison().Format())
		fmt.Println(bench.Ablation().Format())
		printed = true
	case "opt":
		fmt.Println(bench.OptimizationTime().Format())
		printed = true
	case "matsplit":
		fmt.Println(bench.TempVsPermanent().Format())
		printed = true
	case "buffer":
		fmt.Println(bench.BufferComparison().Format())
		printed = true
	case "ablation":
		fmt.Println(bench.Ablation().Format())
		printed = true
	default:
		if _, ok := series[*fig]; ok {
			runSeries(*fig)
		}
	}
	if !printed {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
}
