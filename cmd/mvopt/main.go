// Command mvopt optimizes the maintenance of a set of materialized views
// and prints the chosen plan: per-view refresh modes, the extra results and
// indexes selected for materialization, and the estimated refresh cost.
//
// Views come either from a built-in TPC-D workload or from a SQL file
// containing `CREATE VIEW <name> AS SELECT ... ;` statements over the TPC-D
// schema.
//
// Usage:
//
//	mvopt -workload set5            # built-in: join4 agg4 set5 set5agg set10
//	mvopt -sql views.sql            # user-defined views
//	mvopt -pct 10                   # update percentage (inserts; deletes half)
//	mvopt -no-greedy                # baseline only
//	mvopt -no-indexes               # catalog without PK indexes
//	mvopt -space 64000000           # space budget in bytes for extras
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/greedy"
	"repro/internal/tpcd"
	"repro/internal/viewdef"
)

func main() {
	workload := flag.String("workload", "set5", "built-in workload: join4 agg4 set5 set5agg set10")
	sqlFile := flag.String("sql", "", "SQL file with CREATE VIEW statements (overrides -workload)")
	pct := flag.Float64("pct", 10, "update percentage")
	sf := flag.Float64("sf", 0.1, "TPC-D scale factor")
	noGreedy := flag.Bool("no-greedy", false, "run only the Volcano baseline")
	noIndexes := flag.Bool("no-indexes", false, "start without primary-key indexes")
	space := flag.Float64("space", 0, "space budget in bytes for extra materializations (0 = unlimited)")
	explain := flag.Bool("explain", false, "print EXPLAIN-style plan trees for every view")
	flag.Parse()

	cat := tpcd.NewCatalog(*sf, !*noIndexes)
	sys := core.NewSystem(cat, core.Options{})

	var views []tpcd.NamedView
	if *sqlFile != "" {
		text, err := os.ReadFile(*sqlFile)
		if err != nil {
			fatal("reading %s: %v", *sqlFile, err)
		}
		parsed, err := parseCreateViews(cat, string(text))
		if err != nil {
			fatal("%v", err)
		}
		views = parsed
	} else {
		switch *workload {
		case "join4":
			views = []tpcd.NamedView{{Name: "join4", Def: tpcd.ViewJoin4(cat)}}
		case "agg4":
			views = []tpcd.NamedView{{Name: "agg4", Def: tpcd.ViewAgg4(cat)}}
		case "set5":
			views = tpcd.ViewSet5(cat, false)
		case "set5agg":
			views = tpcd.ViewSet5(cat, true)
		case "set10":
			views = tpcd.ViewSet10(cat)
		default:
			fatal("unknown workload %q", *workload)
		}
	}
	for _, v := range views {
		if _, err := sys.AddView(v.Name, v.Def); err != nil {
			fatal("%v", err)
		}
	}

	u := diff.UniformPercent(cat, tpcd.UpdatedRelations(), *pct)
	base := sys.OptimizeNoGreedy(u)
	fmt.Println("=== NoGreedy baseline ===")
	fmt.Print(base.Report())

	if *explain && *noGreedy {
		fmt.Println("\n=== plans ===")
		fmt.Print(base.Explain())
	}
	if !*noGreedy {
		cfg := greedy.DefaultConfig()
		cfg.SpaceBudget = *space
		plan := sys.OptimizeGreedy(u, cfg)
		fmt.Println("\n=== Greedy ===")
		fmt.Print(plan.Report())
		if *explain {
			fmt.Println("\n=== plans ===")
			fmt.Print(plan.Explain())
		}
		fmt.Printf("\nimprovement: %.2fx\n", base.TotalCost/plan.TotalCost)
	}
}

// parseCreateViews splits `CREATE VIEW name AS select ;` statements and
// parses each body with the viewdef parser.
func parseCreateViews(cat *catalog.Catalog, text string) ([]tpcd.NamedView, error) {
	var out []tpcd.NamedView
	for _, stmt := range strings.Split(text, ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		fields := strings.Fields(stmt)
		if len(fields) < 5 || !strings.EqualFold(fields[0], "CREATE") ||
			!strings.EqualFold(fields[1], "VIEW") || !strings.EqualFold(fields[3], "AS") {
			return nil, fmt.Errorf("expected `CREATE VIEW <name> AS SELECT ...`, got %q", stmt)
		}
		name := fields[2]
		body := stmt[strings.Index(strings.ToUpper(stmt), " AS ")+4:]
		def, err := viewdef.Parse(cat, body)
		if err != nil {
			return nil, fmt.Errorf("view %s: %w", name, err)
		}
		out = append(out, tpcd.NamedView{Name: name, Def: def})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no CREATE VIEW statements found")
	}
	return out, nil
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
