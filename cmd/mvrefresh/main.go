// Command mvrefresh demonstrates the execution half of the system: it
// generates a TPC-D database at a small scale factor, optimizes maintenance
// for a workload, materializes the chosen results, simulates nightly update
// batches, refreshes the views with the optimizer's plans, verifies each
// refresh against full recomputation, and reports wall-clock timings for
// incremental maintenance versus recomputation.
//
// Usage:
//
//	mvrefresh -sf 0.002 -pct 5 -nights 3 -workload set5agg -workers 4 -partitions 4
//
// -workers bounds the refresh scheduler's worker pool (0 = GOMAXPROCS,
// 1 = sequential); -partitions turns on partition-parallel operators inside
// each differential, merge and recomputation (hash-partitioned joins,
// morsel scans; <=1 = sequential operators). Maintained results are
// identical at any setting of either flag.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/greedy"
	"repro/internal/tpcd"
)

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor (keep small: the engine is in-memory)")
	pct := flag.Float64("pct", 5, "update percentage per night")
	nights := flag.Int("nights", 3, "number of refresh cycles")
	workload := flag.String("workload", "agg4", "workload: join4 agg4 set5 set5agg")
	seed := flag.Int64("seed", 1, "data generator seed")
	workers := flag.Int("workers", 0, "refresh worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	partitions := flag.Int("partitions", 1, "hash partitions per operator (<=1 = sequential operators)")
	flag.Parse()

	cat := tpcd.NewCatalog(*sf, true)
	fmt.Printf("generating TPC-D at SF %g…\n", *sf)
	db := tpcd.Generate(cat, *sf, *seed)

	sys := core.NewSystem(cat, core.Options{})
	var views []tpcd.NamedView
	switch *workload {
	case "join4":
		views = []tpcd.NamedView{{Name: "join4", Def: tpcd.ViewJoin4(cat)}}
	case "agg4":
		views = []tpcd.NamedView{{Name: "agg4", Def: tpcd.ViewAgg4(cat)}}
	case "set5":
		views = tpcd.ViewSet5(cat, false)
	case "set5agg":
		views = tpcd.ViewSet5(cat, true)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	for _, v := range views {
		if _, err := sys.AddView(v.Name, v.Def); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	updated := []string{"customer", "orders", "lineitem"}
	u := diff.UniformPercent(cat, updated, *pct)
	plan := sys.OptimizeGreedy(u, greedy.DefaultConfig())
	fmt.Print(plan.Report())

	rt := plan.NewRuntime(db)
	rt.SetWorkers(*workers)
	rt.SetPartitions(*partitions)
	fmt.Printf("materialized %d results (refresh workers: %d, 0 = GOMAXPROCS; operator partitions: %d)\n\n",
		len(plan.Eval.MS.Fulls.Full), *workers, *partitions)

	for night := 1; night <= *nights; night++ {
		tpcd.LogUniformUpdates(cat, db, updated, *pct, *seed+int64(night))

		start := time.Now()
		rt.Refresh()
		refreshTime := time.Since(start)

		start = time.Now()
		if err := rt.Verify(); err != nil {
			fmt.Fprintf(os.Stderr, "night %d: VERIFICATION FAILED: %v\n", night, err)
			os.Exit(1)
		}
		verifyTime := time.Since(start) // verification recomputes every view

		fmt.Printf("night %d: incremental refresh %v, full recomputation (verify) %v",
			night, refreshTime.Round(time.Millisecond), verifyTime.Round(time.Millisecond))
		if verifyTime > 0 {
			fmt.Printf("  (%.1fx)", float64(verifyTime)/float64(refreshTime))
		}
		fmt.Println(" — verified exact")
	}
}
