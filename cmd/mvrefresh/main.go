// Command mvrefresh demonstrates the execution half of the system: it
// generates a TPC-D database at a small scale factor, optimizes maintenance
// for a workload, materializes the chosen results, simulates nightly update
// batches, refreshes the views with the optimizer's plans, verifies each
// refresh against full recomputation, and reports wall-clock timings for
// incremental maintenance versus recomputation.
//
// Usage:
//
//	mvrefresh -sf 0.002 -pct 5 -nights 3 -workload set5agg -workers 4 -partitions 4
//	mvrefresh -wal-dir /tmp/mvwal -fsync -nights 3
//
// -workers bounds the refresh scheduler's worker pool (0 = GOMAXPROCS,
// 1 = sequential); -partitions turns on partition-parallel operators inside
// each differential, merge and recomputation (hash-partitioned joins,
// morsel scans; <=1 = sequential operators); -exec selects the vectorized
// columnar batch engine (default) or the row-at-a-time engine. Maintained
// results are identical at any setting of every flag.
//
// -feedback records every observed operator cardinality against its
// optimizer estimate and prints a per-night estimation-error (q-error)
// summary; it changes no plan and no result. Default off: the refresh is
// byte-identical to a run without the flag.
//
// -wal-dir switches the nightly batches onto the durable streaming path:
// updates flow through the bounded ingest queue, every micro-batch is
// group-committed to a write-ahead log in that directory before its epochs
// publish, and the state is snapshot-spilled so a later run (or mvrecover)
// can rebuild it. Re-running with the same -wal-dir recovers first, then
// continues ingesting. -fsync extends durability to machine crashes; the
// remaining flags tune the commit window and micro-batch bounds.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/greedy"
	"repro/internal/ingest"
	"repro/internal/storage"
	"repro/internal/tpcd"
)

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor (keep small: the engine is in-memory)")
	pct := flag.Float64("pct", 5, "update percentage per night")
	nights := flag.Int("nights", 3, "number of refresh cycles")
	workload := flag.String("workload", "agg4", "workload: join4 agg4 set5 set5agg")
	seed := flag.Int64("seed", 1, "data generator seed")
	workers := flag.Int("workers", 0, "refresh worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	partitions := flag.Int("partitions", 1, "hash partitions per operator (<=1 = sequential operators)")
	execMode := flag.String("exec", defaultExecMode(), "operator engine: chained (end-to-end columnar pipelines), batch (vectorized columnar) or row")
	feedback := flag.Bool("feedback", false, "record observed cardinalities and report per-night estimation error (q-error)")
	walDir := flag.String("wal-dir", "", "write-ahead log directory; enables the durable streaming path")
	fsync := flag.Bool("fsync", false, "fsync group commits (with -wal-dir): durable against machine crashes")
	commitWindow := flag.Duration("commit-window", 2*time.Millisecond, "group-commit coalescing window (with -wal-dir)")
	batchRows := flag.Int("batch-rows", 2048, "max ops per refresh micro-batch (with -wal-dir)")
	batchWait := flag.Duration("batch-wait", 2*time.Millisecond, "max linger forming a micro-batch (with -wal-dir)")
	flag.Parse()

	switch *execMode {
	case "chained":
		storage.SetDefaultExecChain(true)
	case "batch":
		storage.SetDefaultExecBatch(true)
	case "row":
		storage.SetDefaultExecBatch(false)
	default:
		fmt.Fprintf(os.Stderr, "unknown -exec mode %q (want chained, batch or row)\n", *execMode)
		os.Exit(2)
	}

	cat := tpcd.NewCatalog(*sf, true)
	fmt.Printf("generating TPC-D at SF %g…\n", *sf)
	db := tpcd.Generate(cat, *sf, *seed)

	sys := core.NewSystem(cat, core.Options{})
	var views []tpcd.NamedView
	switch *workload {
	case "join4":
		views = []tpcd.NamedView{{Name: "join4", Def: tpcd.ViewJoin4(cat)}}
	case "agg4":
		views = []tpcd.NamedView{{Name: "agg4", Def: tpcd.ViewAgg4(cat)}}
	case "set5":
		views = tpcd.ViewSet5(cat, false)
	case "set5agg":
		views = tpcd.ViewSet5(cat, true)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	for _, v := range views {
		if _, err := sys.AddView(v.Name, v.Def); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	updated := []string{"customer", "orders", "lineitem"}
	u := diff.UniformPercent(cat, updated, *pct)
	plan := sys.OptimizeGreedy(u, greedy.DefaultConfig())
	fmt.Print(plan.Report())

	if *walDir != "" {
		durableNights(plan, db, cat, updated, durableFlags{
			dir: *walDir, fsync: *fsync, window: *commitWindow,
			rows: *batchRows, wait: *batchWait,
			pct: *pct, seed: *seed, nights: *nights,
		})
		return
	}

	rt := plan.NewRuntime(db)
	rt.SetWorkers(*workers)
	rt.SetPartitions(*partitions)
	if *feedback {
		// Telemetry only here: without adaptation no re-selection consumes
		// the corrections, but the per-night q-error shows how far the static
		// estimates drift as batches accumulate. Default off keeps plans and
		// timings byte-identical to earlier releases.
		rt.EnableFeedbackObserver()
	}
	fmt.Printf("materialized %d results (refresh workers: %d, 0 = GOMAXPROCS; operator partitions: %d; engine: %s)\n\n",
		len(plan.Eval.MS.Fulls.Full), *workers, *partitions, *execMode)

	for night := 1; night <= *nights; night++ {
		tpcd.LogUniformUpdates(cat, db, updated, *pct, *seed+int64(night))

		start := time.Now()
		rt.Refresh()
		refreshTime := time.Since(start)

		start = time.Now()
		if err := rt.Verify(); err != nil {
			fmt.Fprintf(os.Stderr, "night %d: VERIFICATION FAILED: %v\n", night, err)
			os.Exit(1)
		}
		verifyTime := time.Since(start) // verification recomputes every view

		fmt.Printf("night %d: incremental refresh %v, full recomputation (verify) %v",
			night, refreshTime.Round(time.Millisecond), verifyTime.Round(time.Millisecond))
		if verifyTime > 0 {
			fmt.Printf("  (%.1fx)", float64(verifyTime)/float64(refreshTime))
		}
		fmt.Println(" — verified exact")
		if *feedback {
			st := rt.FeedbackStats()
			fmt.Printf("         estimation error: q-error median %.2f, p90 %.2f, max %.1f over %d estimates (%d observed cardinalities)\n",
				st.QMedian, st.QP90, st.QMax, st.QCount, st.Observations)
			rt.Feedback().ResetQ() // per-night windows
		}
	}
}

// durableFlags carries the -wal-dir flag set into the durable path.
type durableFlags struct {
	dir    string
	fsync  bool
	window time.Duration
	rows   int
	wait   time.Duration
	pct    float64
	seed   int64
	nights int
}

// durableNights runs the nightly batches through the WAL-backed streaming
// path: recover (or anchor) the directory, then stream each night's batch
// through the bounded queue, flushing and verifying at night boundaries.
func durableNights(plan *core.MaintenancePlan, db *storage.Database, cat *catalog.Catalog, updated []string, f durableFlags) {
	rt, info, err := plan.OpenDurable(db, core.DurableOptions{
		Dir:          f.dir,
		Fsync:        f.fsync,
		CommitWindow: f.window,
		Queue:        ingest.Config{MaxBatchRows: f.rows, MaxBatchWait: f.wait},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if info.Recovered {
		fmt.Printf("recovered from %s: spill at batch %d (epoch %d), %d batches replayed, epoch %d\n",
			f.dir, info.SpillBatch, info.SpillEpoch, info.ReplayedBatches, info.Epoch)
	} else {
		fmt.Printf("fresh WAL directory %s anchored (fsync: %v, commit window %v)\n",
			f.dir, f.fsync, f.window)
	}
	if err := rt.StartIngest(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for night := 1; night <= f.nights; night++ {
		// Seed each night's stream from the published epoch: epochs advance
		// with every applied micro-batch and are persisted in the manifest,
		// so no re-run over this directory can reuse a seed an earlier run
		// already generated fresh-key inserts with. (A LastBatch-derived
		// base could collide across runs when a run produces fewer
		// micro-batches than nights.) The +1 keeps the fresh-boot night off
		// the base generator's seed.
		s := tpcd.NewUpdateStream(cat, rt.Snapshots().Current().Database(),
			updated, f.pct, f.seed+1+rt.DurableStats().Epoch)
		start := time.Now()
		ops := 0
		for {
			op, ok := s.Next()
			if !ok {
				break
			}
			if err := rt.Ingest(op); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			ops++
		}
		if err := rt.FlushIngest(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ingestTime := time.Since(start)

		start = time.Now()
		if err := rt.Verify(); err != nil {
			fmt.Fprintf(os.Stderr, "night %d: VERIFICATION FAILED: %v\n", night, err)
			os.Exit(1)
		}
		verifyTime := time.Since(start)
		st := rt.DurableStats()
		fmt.Printf("night %d: streamed %d ops in %v (staleness %v, commit latency %v), verify %v — verified exact\n",
			night, ops, ingestTime.Round(time.Millisecond),
			st.Staleness.Round(time.Microsecond), st.AvgCommitLatency.Round(time.Microsecond),
			verifyTime.Round(time.Millisecond))
	}
	st := rt.DurableStats()
	fmt.Printf("durable: %d batches, %d fsyncs, %d spills, epoch %d\n",
		st.WAL.Appends, st.WAL.Syncs, st.Spills, st.Epoch)
	if err := rt.CloseDurable(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// defaultExecMode renders the process default engine choice (MVOPT_EXEC, see
// storage.DefaultExecBatch) as the -exec flag default.
func defaultExecMode() string {
	switch {
	case storage.DefaultExecChain():
		return "chained"
	case storage.DefaultExecBatch():
		return "batch"
	}
	return "row"
}
