// Command mvrecover rebuilds a durable runtime from a write-ahead log
// directory and verifies it: load the manifest's snapshot spill, replay the
// durable batch suffix through the differential refresh path, re-publish
// epochs, and check every maintained view against full recomputation. Exit
// status 0 means the directory recovers to a verified epoch boundary.
//
// Usage:
//
//	mvrecover -wal-dir /tmp/mvwal -sf 0.002 -pct 5 -workload agg4 -seed 1
//
// The workload flags must match the run that wrote the directory: recovery
// rebuilds the maintenance plan from the same view definitions, update spec
// and optimizer configuration (the optimizer is deterministic). A mismatch
// is detected against the spill's materialized set and reported as an error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/greedy"
	"repro/internal/tpcd"
)

func main() {
	walDir := flag.String("wal-dir", "", "write-ahead log directory to recover (required)")
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor of the original run")
	pct := flag.Float64("pct", 5, "update percentage of the original run")
	workload := flag.String("workload", "agg4", "workload of the original run: join4 agg4 set5 set5agg")
	seed := flag.Int64("seed", 1, "data generator seed of the original run")
	flag.Parse()
	if *walDir == "" {
		fmt.Fprintln(os.Stderr, "mvrecover: -wal-dir is required")
		os.Exit(2)
	}

	cat := tpcd.NewCatalog(*sf, true)
	db := tpcd.Generate(cat, *sf, *seed) // schemas + fallback state; contents replaced on recovery
	sys := core.NewSystem(cat, core.Options{})
	var views []tpcd.NamedView
	switch *workload {
	case "join4":
		views = []tpcd.NamedView{{Name: "join4", Def: tpcd.ViewJoin4(cat)}}
	case "agg4":
		views = []tpcd.NamedView{{Name: "agg4", Def: tpcd.ViewAgg4(cat)}}
	case "set5":
		views = tpcd.ViewSet5(cat, false)
	case "set5agg":
		views = tpcd.ViewSet5(cat, true)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	for _, v := range views {
		if _, err := sys.AddView(v.Name, v.Def); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	updated := []string{"customer", "orders", "lineitem"}
	plan := sys.OptimizeGreedy(diff.UniformPercent(cat, updated, *pct), greedy.DefaultConfig())

	rt, info, err := plan.OpenDurable(db, core.DurableOptions{Dir: *walDir})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mvrecover: %v\n", err)
		os.Exit(1)
	}
	if !info.Recovered {
		fmt.Printf("%s had no manifest: anchored as a fresh durable directory at epoch %d\n",
			*walDir, info.Epoch)
	} else {
		fmt.Printf("recovered %s: spill at batch %d (epoch %d), %d batches replayed, epoch %d\n",
			*walDir, info.SpillBatch, info.SpillEpoch, info.ReplayedBatches, info.Epoch)
	}

	if err := rt.Verify(); err != nil {
		fmt.Fprintf(os.Stderr, "mvrecover: VERIFICATION FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("verified: every maintained view equals recomputation from the recovered bases")
	if err := rt.CloseDurable(); err != nil {
		fmt.Fprintf(os.Stderr, "mvrecover: close: %v\n", err)
		os.Exit(1)
	}
}
