// Command mvshard runs one shard worker for the sharded scatter-gather
// serving layer: a net/rpc server owning a contiguous range of the hash
// partitions, holding staged epoch states and answering scatter requests
// from a coordinator (mvserve -shards N -shard-addrs ...). With -dir the
// worker appends every staged epoch to a durable stage log before
// acknowledging, so a killed worker restarted on the same directory rejoins
// at the epoch it last staged — the property the two-phase install relies
// on to never expose a partial epoch.
//
// Usage:
//
//	mvshard -shard 0 -shards 2 -partitions 8 -dir /tmp/shard0 -addr 127.0.0.1:7070 &
//	mvshard -shard 1 -shards 2 -partitions 8 -dir /tmp/shard1 -addr 127.0.0.1:7071 &
//	mvserve -shards 2 -partitions 8 -shard-addrs 127.0.0.1:7070,127.0.0.1:7071
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"repro/internal/shard"
)

func main() {
	idx := flag.Int("shard", 0, "this worker's shard index in [0, shards)")
	shards := flag.Int("shards", 1, "total shards in the fleet")
	partitions := flag.Int("partitions", 0, "hash partitions sharded across the fleet (0 = 2*shards)")
	dir := flag.String("dir", "", "stage-log directory for durable epochs (empty = volatile)")
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	flag.Parse()

	if *partitions == 0 {
		*partitions = 2 * *shards
	}
	asg := shard.Assignment{Partitions: *partitions, Shards: *shards}.Norm()
	if *idx < 0 || *idx >= asg.Shards {
		fmt.Fprintf(os.Stderr, "mvshard: shard %d out of range [0, %d)\n", *idx, asg.Shards)
		os.Exit(2)
	}
	w, err := shard.NewWorker(*idx, asg, *dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mvshard: %v\n", err)
		os.Exit(1)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mvshard: %v\n", err)
		os.Exit(1)
	}
	h := w.Hello()
	fmt.Printf("mvshard: shard %d/%d (partitions %d, staged epoch %d) listening on %s\n",
		h.Shard, h.Shards, h.Partitions, h.Staged, l.Addr())
	if err := shard.Serve(l, w); err != nil {
		fmt.Fprintf(os.Stderr, "mvshard: %v\n", err)
		os.Exit(1)
	}
}
