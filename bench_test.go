package repro

// Benchmarks regenerating every table and figure of the paper's performance
// study (§7). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes one full experiment per iteration and reports the
// paper's headline numbers as custom metrics: plan costs (in cost-model
// seconds) for Greedy and NoGreedy at the lowest and highest update
// percentages, so the figure's shape is visible straight from the benchmark
// output. The correspondence to the paper is recorded in EXPERIMENTS.md.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/storage"
)

// benchEngines runs the body once per operator engine (chained columnar
// pipelines, vectorized batch, and row-at-a-time) as sub-benchmarks, flipping
// the process-wide default the runtime constructors read. Allocations are
// reported so the engines' comparison table in EXPERIMENTS.md carries both
// time and allocs/op.
func benchEngines(b *testing.B, body func(b *testing.B)) {
	for _, eng := range []struct {
		name string
		set  func()
	}{
		{"engine=chained", func() { storage.SetDefaultExecChain(true) }},
		{"engine=batch", func() { storage.SetDefaultExecBatch(true) }},
		{"engine=row", func() { storage.SetDefaultExecBatch(false) }},
	} {
		b.Run(eng.name, func(b *testing.B) {
			prevBatch, prevChain := storage.DefaultExecBatch(), storage.DefaultExecChain()
			defer func() {
				storage.SetDefaultExecBatch(prevBatch)
				storage.SetDefaultExecChain(prevChain)
			}()
			eng.set()
			b.ReportAllocs()
			body(b)
		})
	}
}

func reportSeries(b *testing.B, s *bench.Series) {
	b.Helper()
	last := len(s.X) - 1
	b.ReportMetric(s.NoGreedy[0], "noGreedy@1%")
	b.ReportMetric(s.Greedy[0], "greedy@1%")
	b.ReportMetric(s.NoGreedy[0]/s.Greedy[0], "ratio@1%")
	b.ReportMetric(s.NoGreedy[last], "noGreedy@80%")
	b.ReportMetric(s.Greedy[last], "greedy@80%")
	b.ReportMetric(s.NoGreedy[last]/s.Greedy[last], "ratio@80%")
}

// BenchmarkFig3aStandaloneJoin regenerates Figure 3(a): maintaining a
// stand-alone four-relation join view.
func BenchmarkFig3aStandaloneJoin(b *testing.B) {
	var s *bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.Figure3a()
	}
	reportSeries(b, s)
}

// BenchmarkFig3bStandaloneAgg regenerates Figure 3(b): the same view with
// aggregation.
func BenchmarkFig3bStandaloneAgg(b *testing.B) {
	var s *bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.Figure3b()
	}
	reportSeries(b, s)
}

// BenchmarkFig4aViewSet regenerates Figure 4(a): five related views without
// aggregation.
func BenchmarkFig4aViewSet(b *testing.B) {
	var s *bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.Figure4a()
	}
	reportSeries(b, s)
}

// BenchmarkFig4bViewSetAgg regenerates Figure 4(b): five aggregate views.
func BenchmarkFig4bViewSetAgg(b *testing.B) {
	var s *bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.Figure4b()
	}
	reportSeries(b, s)
}

// BenchmarkFig5aLargeSet regenerates Figure 5(a): ten views with predefined
// primary-key indexes.
func BenchmarkFig5aLargeSet(b *testing.B) {
	var s *bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.Figure5a()
	}
	reportSeries(b, s)
}

// BenchmarkFig5bLargeSetNoIndex regenerates Figure 5(b): the same ten views
// with no initial indexes; Greedy must choose them.
func BenchmarkFig5bLargeSetNoIndex(b *testing.B) {
	var s *bench.Series
	for i := 0; i < b.N; i++ {
		s = bench.Figure5b()
	}
	reportSeries(b, s)
}

// BenchmarkOptimizationTime regenerates §7.2 "Cost of Optimization": the
// wall-clock of one Greedy run on the ten-view workload (the paper reports
// 31 s on a 2000-era UltraSparc; see EXPERIMENTS.md for ours).
func BenchmarkOptimizationTime(b *testing.B) {
	var r bench.OptTimeResult
	for i := 0; i < b.N; i++ {
		r = bench.OptimizationTime()
	}
	b.ReportMetric(float64(r.Elapsed.Microseconds()), "optimize-µs")
	b.ReportMetric(float64(r.BenefitCalls), "benefit-calls")
	b.ReportMetric(r.SavingsPerRun, "savings-s/refresh")
}

// BenchmarkTempVsPermanent regenerates §7.2 "Temporary vs. Permanent
// Materialization": the split of chosen results between recompute-cheaper
// (temporary) and maintain-cheaper (permanent), by update-rate band.
func BenchmarkTempVsPermanent(b *testing.B) {
	var m bench.MatSplit
	for i := 0; i < b.N; i++ {
		m = bench.TempVsPermanent()
	}
	b.ReportMetric(float64(m.Temporary), "temporary")
	b.ReportMetric(float64(m.Permanent), "permanent")
	b.ReportMetric(float64(m.LowPerm), "perm@1-5%")
	b.ReportMetric(float64(m.HighPerm), "perm@50-90%")
}

// BenchmarkBufferSize regenerates §7.2 "Effect of Buffer Size": the
// five-view workload at 8000 versus 1000 buffer blocks.
func BenchmarkBufferSize(b *testing.B) {
	var r bench.BufferResult
	for i := 0; i < b.N; i++ {
		r = bench.BufferComparison()
	}
	b.ReportMetric(r.BigNoGreedy[0]/r.BigGreedy[0], "ratio@1%/8000blk")
	b.ReportMetric(r.SmallNoGreedy[0]/r.SmallGreedy[0], "ratio@1%/1000blk")
}

// BenchmarkExecutedRefresh goes beyond the paper: it executes the
// five-aggregate-view workload's maintenance plans on generated TPC-D data
// (SF 0.005) and reports real wall-clock per refresh cycle, with every view
// verified against recomputation.
func BenchmarkExecutedRefresh(b *testing.B) {
	var r bench.ExecutedResult
	for i := 0; i < b.N; i++ {
		r = bench.ExecutedRefresh(0.005, 5, 2)
	}
	if !r.Verified {
		b.Fatalf("maintained views diverged from recomputation")
	}
	b.ReportMetric(float64(r.GreedyRefresh.Milliseconds()), "greedy-ms")
	b.ReportMetric(float64(r.NoGreedyRefresh.Milliseconds()), "nogreedy-ms")
	b.ReportMetric(float64(r.FullRecompute.Milliseconds()), "recompute-ms")
}

// BenchmarkParallelRefresh measures the concurrent refresh scheduler on the
// ten-view workload executed against generated TPC-D data: wall-clock per
// refresh cycle at workers ∈ {1, 4, GOMAXPROCS}, every run verified exact.
// Speedup over the workers=1 row is the scheduler's contribution; on a
// single-core machine all rows coincide.
func BenchmarkParallelRefresh(b *testing.B) {
	var r bench.ParallelResult
	for i := 0; i < b.N; i++ {
		r = bench.ParallelRefresh(0.005, 5, 2, bench.DefaultParallelWorkers())
	}
	if !r.Verified {
		b.Fatalf("maintained views diverged from recomputation")
	}
	for i, w := range r.Workers {
		b.ReportMetric(float64(r.Refresh[i].Milliseconds()), fmt.Sprintf("refresh-ms/w%d", w))
	}
}

// BenchmarkPartitionedRefresh measures partition-parallel operator
// execution on the workload the task scheduler cannot help with — a single
// four-relation join view, one differential per update step — at
// partitions ∈ {1, 4, GOMAXPROCS}. Every run is verified exact and checked
// byte-identical across partition counts; speedup over the partitions=1 row
// is the operators' contribution (rows coincide on a single-core machine).
func BenchmarkPartitionedRefresh(b *testing.B) {
	benchEngines(b, func(b *testing.B) {
		var r bench.PartitionedResult
		for i := 0; i < b.N; i++ {
			r = bench.PartitionedRefresh(0.005, 5, 2, bench.DefaultPartitions())
		}
		if !r.Verified {
			b.Fatalf("maintained view diverged from recomputation")
		}
		if !r.Identical {
			b.Fatalf("maintained rows not byte-identical across partition counts")
		}
		for i, p := range r.Partitions {
			b.ReportMetric(float64(r.Refresh[i].Milliseconds()), fmt.Sprintf("refresh-ms/p%d", p))
		}
	})
}

// BenchmarkPartitionedServe is BenchmarkConcurrentServe with partition-
// parallel operators on both the refresh writer and every served query
// (partitions = 4): the same workload, so the two benchmarks' throughput
// numbers are directly comparable.
func BenchmarkPartitionedServe(b *testing.B) {
	var r bench.ServeResult
	for i := 0; i < b.N; i++ {
		r = bench.ConcurrentServe(bench.ServeConfig{
			ScaleFactor: 0.002, UpdatePct: 4,
			Readers: 4, Cycles: 2, Partitions: 4, Seed: 11,
		})
		if !r.Verified {
			b.Fatalf("maintained views diverged from recomputation")
		}
	}
	qps := 0.0
	for _, q := range r.PerReaderQPS {
		qps += q
	}
	b.ReportMetric(qps, "queries/s")
	b.ReportMetric(r.RefreshTotal.Seconds()*1000/float64(r.Cfg.Cycles), "refresh-ms/cycle")
}

// BenchmarkConcurrentServe measures the query-serving layer under write
// pressure: 4 reader goroutines issue SQL queries against epoch snapshots
// while the writer runs full refresh cycles on the ten-view workload
// (SF 0.002). Reported: aggregate serving throughput, total queries
// answered, and the writer's refresh time per cycle.
func BenchmarkConcurrentServe(b *testing.B) {
	benchEngines(b, func(b *testing.B) {
		var r bench.ServeResult
		for i := 0; i < b.N; i++ {
			r = bench.ConcurrentServe(bench.ServeConfig{
				ScaleFactor: 0.002, UpdatePct: 4,
				Readers: 4, Cycles: 2, Seed: 11,
			})
			if !r.Verified {
				b.Fatalf("maintained views diverged from recomputation")
			}
		}
		qps := 0.0
		for _, q := range r.PerReaderQPS {
			qps += q
		}
		b.ReportMetric(qps, "queries/s")
		b.ReportMetric(float64(r.Queries), "queries")
		b.ReportMetric(r.RefreshTotal.Seconds()*1000/float64(r.Cfg.Cycles), "refresh-ms/cycle")
	})
}

// BenchmarkDurableRefresh prices durability on the streaming ingest path:
// the five-view workload at SF 0.005 streamed through the WAL-backed
// continuous refresh loop, fsync off versus fsync on with a 2ms group-commit
// window. Group commit amortizes the syncs, so the fsync-on run must stay
// within 2× of fsync-off throughput (the fsync/off ratio metric; enforced in
// the durability experiment, reported in EXPERIMENTS.md).
func BenchmarkDurableRefresh(b *testing.B) {
	var off, on bench.DurableResult
	for i := 0; i < b.N; i++ {
		cfg := bench.DurableConfig{
			ScaleFactor: 0.005, UpdatePct: 4, StreamBatches: 3,
			CommitWindow: 2 * time.Millisecond,
			MaxBatchRows: 256, MaxBatchWait: time.Millisecond,
			Seed: 11,
		}
		off = bench.DurableRefresh(cfg)
		cfg.Fsync = true
		on = bench.DurableRefresh(cfg)
		if !off.Verified || !on.Verified {
			b.Fatalf("maintained views diverged from recomputation")
		}
	}
	b.ReportMetric(off.OpsPerSec, "ops/s-nofsync")
	b.ReportMetric(on.OpsPerSec, "ops/s-fsync")
	b.ReportMetric(off.OpsPerSec/on.OpsPerSec, "nofsync/fsync-ratio")
	b.ReportMetric(float64(on.Syncs), "fsyncs")
	b.ReportMetric(float64(on.Staleness.Microseconds()), "staleness-µs-fsync")
}

// BenchmarkAblation quantifies the §6.2 optimizations (incremental cost
// update, monotonicity) and DAG subsumption on the ten-view workload.
func BenchmarkAblation(b *testing.B) {
	var r bench.AblationResult
	for i := 0; i < b.N; i++ {
		r = bench.Ablation()
	}
	b.ReportMetric(float64(r.NaiveCalls)/float64(r.LazyCalls), "monotonicity-call-reduction")
	b.ReportMetric(float64(r.NoIncTime)/float64(r.LazyTime), "incremental-speedup")
	b.ReportMetric(r.LazyCost/r.NaiveCost, "lazy/naive-cost")
}

// BenchmarkAdaptiveServe measures online re-selection under a drifting
// workload (2 readers, 2 phases × 2 cycles, SF 0.002): the runtime re-runs
// greedy selection against the observed query/update rates each cycle and
// hot-swaps the materialized set at epoch boundaries. Reported: overall and
// final-phase throughput and the number of installed swaps (≥1 means the
// drift actually changed the stored set).
func BenchmarkAdaptiveServe(b *testing.B) {
	var r bench.AdaptiveResult
	for i := 0; i < b.N; i++ {
		r = bench.AdaptiveServe(bench.AdaptiveConfig{
			ScaleFactor: 0.002, UpdatePct: 4,
			Readers: 2, CyclesPerPhase: 2, Seed: 11,
			Adaptive: true,
		})
		if !r.Verified {
			b.Fatalf("maintained views diverged from recomputation")
		}
	}
	b.ReportMetric(r.TotalQPS, "queries/s")
	b.ReportMetric(r.PhaseQPS[len(r.PhaseQPS)-1], "queries/s-last-phase")
	b.ReportMetric(float64(r.Installs), "swaps")
}

// BenchmarkShardedServe measures scatter-gather serving as the worker fleet
// grows: the ten-view workload (SF 0.002, 4 readers, 2 cycles) served at
// shards ∈ {1, 2, 4} over an in-process fleet, against the single-node
// configuration the sharded path pins (dynamic cache off). The full check is
// on, so every run also proves its sampled answers consistent with their
// epochs and its final answers byte-identical to local execution. Reported
// per fleet size: aggregate q/s, queries scattered vs answered by the
// coordinator-local fallback, and the writer's refresh+install time per
// cycle.
func BenchmarkShardedServe(b *testing.B) {
	for _, shards := range []int{0, 1, 2, 4} {
		name := fmt.Sprintf("shards=%d", shards)
		if shards == 0 {
			name = "single-node"
		}
		b.Run(name, func(b *testing.B) {
			var r bench.ShardedServeResult
			for i := 0; i < b.N; i++ {
				r = bench.ShardedServe(bench.ShardedServeConfig{
					ScaleFactor: 0.002, UpdatePct: 4,
					Readers: 4, Cycles: 2, Shards: shards,
					Seed: 11, Check: true,
				})
				if !r.Verified || !r.Consistent {
					b.Fatalf("sharded serving diverged from recomputation")
				}
				if !r.ByteIdentical {
					b.Fatalf("sharded answers not byte-identical to local execution")
				}
			}
			b.ReportMetric(r.AggregateQPS, "queries/s")
			b.ReportMetric(float64(r.Scattered), "scattered")
			b.ReportMetric(float64(r.Fallbacks), "fallbacks")
			b.ReportMetric(r.RefreshTotal.Seconds()*1000/float64(r.Cfg.Cycles), "refresh-ms/cycle")
		})
	}
}
