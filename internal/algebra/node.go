package algebra

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
)

// AggFunc is an aggregate function. All four are distributive (AVG is
// maintained as SUM/COUNT), which is what makes incremental maintenance of
// aggregate views possible (paper §3.1.2). MIN and MAX are supported by the
// executor but force group recomputation on deletes.
type AggFunc int

const (
	// Count counts tuples in the group (COUNT(*)).
	Count AggFunc = iota
	// Sum sums a numeric column.
	Sum
	// Avg averages a numeric column (maintained as Sum and Count).
	Avg
	// Min tracks the minimum (not incrementally maintainable under deletes).
	Min
	// Max tracks the maximum (not incrementally maintainable under deletes).
	Max
)

// String renders the aggregate function name.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// Distributive reports whether the function can be maintained from deltas
// and the old materialized result alone (with a per-group count).
func (f AggFunc) Distributive() bool {
	return f == Count || f == Sum || f == Avg
}

// AggSpec is one aggregate output: FUNC(col) AS name.
type AggSpec struct {
	Func AggFunc
	Col  ColRef // ignored for Count
	As   string
}

// String renders "FUNC(col)".
func (a AggSpec) String() string {
	if a.Func == Count {
		return "COUNT(*)"
	}
	return a.Func.String() + "(" + a.Col.QName() + ")"
}

// Node is a logical operator tree node. Trees are immutable after
// construction. Schema() is computed once at build time.
type Node interface {
	Schema() Schema
	Children() []Node
	// String renders a one-line canonical form of the whole subtree.
	String() string
	// BaseTables appends the set of base relation names in the subtree.
	BaseTables(dst map[string]bool)
}

// ---------------------------------------------------------------------------

// Scan reads a base relation.
type Scan struct {
	Table  string
	schema Schema
}

// NewScan builds a scan over a catalog table. The alias is the table name.
func NewScan(cat *catalog.Catalog, table string) *Scan {
	t := cat.MustTable(table)
	return &Scan{Table: table, schema: TableSchema(t, table)}
}

// Schema of the base relation.
func (n *Scan) Schema() Schema { return n.schema }

// Children is empty for scans.
func (n *Scan) Children() []Node { return nil }

// String renders the scan.
func (n *Scan) String() string { return n.Table }

// BaseTables adds this table.
func (n *Scan) BaseTables(dst map[string]bool) { dst[n.Table] = true }

// ---------------------------------------------------------------------------

// Select filters its input by a conjunctive predicate.
type Select struct {
	Pred  Pred
	Input Node
}

// NewSelect builds a selection.
func NewSelect(pred Pred, in Node) *Select { return &Select{Pred: pred, Input: in} }

// Schema passes through.
func (n *Select) Schema() Schema { return n.Input.Schema() }

// Children returns the single input.
func (n *Select) Children() []Node { return []Node{n.Input} }

// String renders σ[pred](input).
func (n *Select) String() string {
	return "select[" + n.Pred.String() + "](" + n.Input.String() + ")"
}

// BaseTables delegates.
func (n *Select) BaseTables(dst map[string]bool) { n.Input.BaseTables(dst) }

// ---------------------------------------------------------------------------

// Join is an inner multiset join under a conjunctive predicate (usually
// equi-join conjuncts).
type Join struct {
	Pred Pred
	L, R Node
}

// NewJoin builds a join.
func NewJoin(pred Pred, l, r Node) *Join { return &Join{Pred: pred, L: l, R: r} }

// Schema is the concatenation of both inputs.
func (n *Join) Schema() Schema { return n.L.Schema().Concat(n.R.Schema()) }

// Children returns both inputs.
func (n *Join) Children() []Node { return []Node{n.L, n.R} }

// String renders (l join[pred] r).
func (n *Join) String() string {
	return "(" + n.L.String() + " join[" + n.Pred.String() + "] " + n.R.String() + ")"
}

// BaseTables unions both sides.
func (n *Join) BaseTables(dst map[string]bool) {
	n.L.BaseTables(dst)
	n.R.BaseTables(dst)
}

// ---------------------------------------------------------------------------

// Project keeps a subset of columns (no expressions; computed columns appear
// only as aggregate outputs, which is all the paper's workloads need).
type Project struct {
	Cols   []ColRef
	Input  Node
	schema Schema
}

// NewProject builds a projection. It panics if a column is missing, because
// view definitions are validated at registration time.
func NewProject(cols []ColRef, in Node) *Project {
	is := in.Schema()
	sch := make(Schema, len(cols))
	for i, c := range cols {
		j := is.IndexOf(c.QName())
		if j < 0 {
			panic(fmt.Sprintf("algebra: project column %s not in %s", c.QName(), is))
		}
		sch[i] = is[j]
	}
	return &Project{Cols: cols, Input: in, schema: sch}
}

// Schema is the projected schema.
func (n *Project) Schema() Schema { return n.schema }

// Children returns the single input.
func (n *Project) Children() []Node { return []Node{n.Input} }

// String renders project[cols](input).
func (n *Project) String() string {
	parts := make([]string, len(n.Cols))
	for i, c := range n.Cols {
		parts[i] = c.QName()
	}
	return "project[" + strings.Join(parts, ",") + "](" + n.Input.String() + ")"
}

// BaseTables delegates.
func (n *Project) BaseTables(dst map[string]bool) { n.Input.BaseTables(dst) }

// ---------------------------------------------------------------------------

// Aggregate groups by a column list and computes aggregate outputs.
// Output schema: group-by columns first, then one column per AggSpec under
// the pseudo-relation "agg".
type Aggregate struct {
	GroupBy []ColRef
	Aggs    []AggSpec
	Input   Node
	schema  Schema
}

// NewAggregate builds a group-by/aggregate node.
func NewAggregate(groupBy []ColRef, aggs []AggSpec, in Node) *Aggregate {
	is := in.Schema()
	sch := make(Schema, 0, len(groupBy)+len(aggs))
	for _, g := range groupBy {
		j := is.IndexOf(g.QName())
		if j < 0 {
			panic(fmt.Sprintf("algebra: group-by column %s not in %s", g.QName(), is))
		}
		sch = append(sch, is[j])
	}
	for _, a := range aggs {
		name := a.As
		if name == "" {
			name = strings.ToLower(a.Func.String())
			if a.Func != Count {
				name += "_" + a.Col.Name
			}
		}
		typ := catalog.Float
		if a.Func == Count {
			typ = catalog.Int
		}
		sch = append(sch, Col{Rel: "agg", Name: name, Type: typ, Width: 8})
	}
	return &Aggregate{GroupBy: groupBy, Aggs: aggs, Input: in, schema: sch}
}

// Schema is group-by columns followed by aggregate outputs.
func (n *Aggregate) Schema() Schema { return n.schema }

// Children returns the single input.
func (n *Aggregate) Children() []Node { return []Node{n.Input} }

// String renders gb[cols;aggs](input) with canonical ordering.
func (n *Aggregate) String() string {
	gs := make([]string, len(n.GroupBy))
	for i, g := range n.GroupBy {
		gs[i] = g.QName()
	}
	sort.Strings(gs)
	as := make([]string, len(n.Aggs))
	for i, a := range n.Aggs {
		as[i] = a.String()
	}
	sort.Strings(as)
	return "gb[" + strings.Join(gs, ",") + ";" + strings.Join(as, ",") + "](" + n.Input.String() + ")"
}

// BaseTables delegates.
func (n *Aggregate) BaseTables(dst map[string]bool) { n.Input.BaseTables(dst) }

// ---------------------------------------------------------------------------

// Union is multiset union (UNION ALL). It appears in generated maintenance
// expressions; user views may also use it.
type Union struct {
	L, R Node
}

// NewUnion builds a multiset union; both schemas must be compatible.
func NewUnion(l, r Node) *Union {
	if len(l.Schema()) != len(r.Schema()) {
		panic("algebra: union arity mismatch")
	}
	return &Union{L: l, R: r}
}

// Schema is the left input's schema.
func (n *Union) Schema() Schema { return n.L.Schema() }

// Children returns both inputs.
func (n *Union) Children() []Node { return []Node{n.L, n.R} }

// String renders (l union r).
func (n *Union) String() string { return "(" + n.L.String() + " union " + n.R.String() + ")" }

// BaseTables unions both sides.
func (n *Union) BaseTables(dst map[string]bool) {
	n.L.BaseTables(dst)
	n.R.BaseTables(dst)
}

// ---------------------------------------------------------------------------

// Minus is multiset difference (monus): each tuple's multiplicity is reduced.
type Minus struct {
	L, R Node
}

// NewMinus builds a multiset difference.
func NewMinus(l, r Node) *Minus {
	if len(l.Schema()) != len(r.Schema()) {
		panic("algebra: minus arity mismatch")
	}
	return &Minus{L: l, R: r}
}

// Schema is the left input's schema.
func (n *Minus) Schema() Schema { return n.L.Schema() }

// Children returns both inputs.
func (n *Minus) Children() []Node { return []Node{n.L, n.R} }

// String renders (l minus r).
func (n *Minus) String() string { return "(" + n.L.String() + " minus " + n.R.String() + ")" }

// BaseTables unions both sides.
func (n *Minus) BaseTables(dst map[string]bool) {
	n.L.BaseTables(dst)
	n.R.BaseTables(dst)
}

// ---------------------------------------------------------------------------

// Dedup is duplicate elimination (DISTINCT).
type Dedup struct {
	Input Node
}

// NewDedup builds a duplicate-elimination node.
func NewDedup(in Node) *Dedup { return &Dedup{Input: in} }

// Schema passes through.
func (n *Dedup) Schema() Schema { return n.Input.Schema() }

// Children returns the single input.
func (n *Dedup) Children() []Node { return []Node{n.Input} }

// String renders dedup(input).
func (n *Dedup) String() string { return "dedup(" + n.Input.String() + ")" }

// BaseTables delegates.
func (n *Dedup) BaseTables(dst map[string]bool) { n.Input.BaseTables(dst) }

// ---------------------------------------------------------------------------

// Tables returns the sorted base-table set of a tree.
func Tables(n Node) []string {
	m := make(map[string]bool)
	n.BaseTables(m)
	out := make([]string, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
