package algebra

import (
	"math"
	"math/rand"
	"testing"
)

// TestNaNSingletonClass: NaN equals only NaN (canonical hash), sorts before
// every other numeric, so equality stays an equivalence relation consistent
// with Hash.
func TestNaNSingletonClass(t *testing.T) {
	nan := NewFloat(math.NaN())
	if !nan.Equal(NewFloat(math.NaN())) {
		t.Errorf("NaN must equal NaN")
	}
	if nan.Hash() != NewFloat(math.NaN()).Hash() {
		t.Errorf("NaN must hash like NaN")
	}
	for _, o := range []Value{NewFloat(5), NewInt(5), NewDate(0), NewFloat(math.Inf(-1))} {
		if nan.Equal(o) {
			t.Errorf("NaN must not equal %v", o)
		}
		if nan.Compare(o) != -1 || o.Compare(nan) != 1 {
			t.Errorf("NaN must sort before %v", o)
		}
	}
}

// TestHashConsistentWithEqual: values that compare equal must hash equal,
// including across numeric kinds (Int 1, Float 1.0 and Date 1 are one
// equivalence class under Compare).
func TestHashConsistentWithEqual(t *testing.T) {
	vals := []Value{
		NewInt(0), NewFloat(0), NewFloat(-0.0), NewDate(0),
		NewInt(1), NewFloat(1), NewDate(1),
		NewInt(-7), NewFloat(-7),
		NewFloat(1.5),
		NewString(""), NewString("a"), NewString("1"),
	}
	for _, a := range vals {
		for _, b := range vals {
			if a.Equal(b) && a.Hash() != b.Hash() {
				t.Errorf("%v == %v but hashes differ", a, b)
			}
		}
	}
	if NewInt(1).Hash() == NewString("1").Hash() {
		t.Errorf("numeric 1 and string \"1\" should hash apart (tagged)")
	}
}

// TestLargeIntsStayDistinct: int64 values above 2^53 share a float64 image;
// they may collide in the hash, but exact integer comparison must keep them
// distinct in every equality-confirmed operator (dedup, group-by, join,
// multiset maps).
func TestLargeIntsStayDistinct(t *testing.T) {
	const big = int64(1) << 53 // 9007199254740992
	a, b := NewInt(big), NewInt(big+1)
	if float64(big) != float64(big+1) {
		t.Fatalf("test premise broken: 2^53 and 2^53+1 should share a float64 image")
	}
	if a.Equal(b) {
		t.Errorf("%d and %d must not compare equal", big, big+1)
	}
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Errorf("exact integer ordering expected for %d vs %d", big, big+1)
	}
	// Hash consistency still holds for genuinely equal values.
	if a.Hash() != NewInt(big).Hash() {
		t.Errorf("equal values must hash equal")
	}
	if !(Tuple{a}).Equal(Tuple{NewDate(big)}) {
		t.Errorf("Int and Date with the same payload are one integer class")
	}
	// Transitivity across kinds: Float(2^53) equals Int(2^53) exactly, and
	// must NOT equal Int(2^53+1) — integer-vs-float comparison is exact, so
	// equality stays an equivalence relation (real-number semantics).
	f := NewFloat(float64(big))
	if !a.Equal(f) {
		t.Errorf("Int(2^53) must equal Float(2^53): exactly the same real number")
	}
	if b.Equal(f) {
		t.Errorf("Int(2^53+1) must not equal Float(2^53): they differ as reals")
	}
	if f.Compare(b) != -1 {
		t.Errorf("Float(2^53) < Int(2^53+1) expected, got %d", f.Compare(b))
	}
	// Equal values hash equal across kinds; the unequal pair may collide in
	// the hash (same float64 image) but is separated by equality confirmation.
	if a.Hash() != f.Hash() {
		t.Errorf("Int(2^53) and Float(2^53) compare equal, must hash equal")
	}
}

// TestTupleHashBoundaries: value boundaries must matter, so adjacent string
// columns cannot smear into each other.
func TestTupleHashBoundaries(t *testing.T) {
	a := Tuple{NewString("ab"), NewString("c")}
	b := Tuple{NewString("a"), NewString("bc")}
	if a.Hash() == b.Hash() {
		t.Errorf("(ab,c) and (a,bc) must hash apart")
	}
	if a.Equal(b) {
		t.Errorf("(ab,c) and (a,bc) must not compare equal")
	}
}

// TestHashColsMatchesSubsetHash: hashing a column subset equals hashing the
// projected tuple.
func TestHashColsMatchesSubsetHash(t *testing.T) {
	tp := Tuple{NewInt(3), NewString("x"), NewFloat(2.5)}
	sub := Tuple{tp[2], tp[0]}
	if tp.HashCols([]int{2, 0}) != sub.Hash() {
		t.Errorf("HashCols must agree with hashing the projected tuple")
	}
}

// TestEqualOn confirms join-key equality across differently-shaped tuples.
func TestEqualOn(t *testing.T) {
	l := Tuple{NewInt(1), NewString("a")}
	r := Tuple{NewString("zzz"), NewFloat(1), NewString("a")}
	if !EqualOn(l, []int{0, 1}, r, []int{1, 2}) {
		t.Errorf("keys (1,a) should match across kinds")
	}
	if EqualOn(l, []int{0}, r, []int{2}) {
		t.Errorf("1 vs \"a\" must not match")
	}
}

// TestTupleHashRandomRoundTrip: equal tuples (built independently) hash
// equal, and hashing is deterministic.
func TestTupleHashRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(5)
		a := make(Tuple, n)
		b := make(Tuple, n)
		for j := 0; j < n; j++ {
			switch rng.Intn(3) {
			case 0:
				v := int64(rng.Intn(100))
				a[j], b[j] = NewInt(v), NewFloat(float64(v))
			case 1:
				v := rng.Float64()
				a[j], b[j] = NewFloat(v), NewFloat(v)
			default:
				s := string(rune('a' + rng.Intn(26)))
				a[j], b[j] = NewString(s), NewString(s)
			}
		}
		if !a.Equal(b) {
			t.Fatalf("constructed tuples should be equal: %v vs %v", a, b)
		}
		if a.Hash() != b.Hash() {
			t.Fatalf("equal tuples must hash equal: %v vs %v", a, b)
		}
	}
}
