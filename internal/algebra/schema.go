package algebra

import (
	"strings"

	"repro/internal/catalog"
)

// Col identifies one column of an intermediate result. Columns are qualified
// by the base relation (or alias) they originate from, so "lineitem.l_qty"
// stays unambiguous through joins. Computed columns (aggregate outputs) use
// the pseudo-relation name of the producing operator.
type Col struct {
	Rel  string
	Name string
	Type catalog.Type
	// Width is the average stored width in bytes, used by the cost model.
	Width int
}

// QName returns the qualified "rel.name" form.
func (c Col) QName() string { return c.Rel + "." + c.Name }

// Schema is an ordered list of output columns.
type Schema []Col

// IndexOf returns the position of the column with the given qualified name,
// or -1. An unqualified name matches if it is unambiguous.
func (s Schema) IndexOf(qname string) int {
	if i := strings.IndexByte(qname, '.'); i >= 0 {
		rel, name := qname[:i], qname[i+1:]
		for j, c := range s {
			if c.Rel == rel && c.Name == name {
				return j
			}
		}
		return -1
	}
	found := -1
	for j, c := range s {
		if c.Name == qname {
			if found >= 0 {
				return -1 // ambiguous
			}
			found = j
		}
	}
	return found
}

// Has reports whether the schema contains the qualified column.
func (s Schema) Has(qname string) bool { return s.IndexOf(qname) >= 0 }

// Width returns the total average tuple width in bytes.
func (s Schema) Width() int {
	w := 0
	for _, c := range s {
		w += c.Width
	}
	if w == 0 {
		w = 8
	}
	return w
}

// Concat returns the concatenation of two schemas (join output).
func (s Schema) Concat(o Schema) Schema {
	out := make(Schema, 0, len(s)+len(o))
	out = append(out, s...)
	out = append(out, o...)
	return out
}

// String renders the schema as "(rel.col:TYPE, ...)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.QName())
		b.WriteByte(':')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// TableSchema derives the Schema of a base table, qualifying each column
// with the given alias (usually the table name).
func TableSchema(t *catalog.Table, alias string) Schema {
	out := make(Schema, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = Col{Rel: alias, Name: c.Name, Type: c.Type, Width: c.Width}
	}
	return out
}
