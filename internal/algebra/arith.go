package algebra

// Arithmetic scalar expressions: +, -, *, / over columns, literals and
// nested arithmetic. Arithmetic always evaluates in float64 (AsFloat
// semantics: strings coerce to 0, division follows IEEE-754 — x/0 is ±Inf,
// 0/0 is NaN), and an arithmetic expression's value is a Float. Both the
// row engine (via Eval / boundCmp) and the columnar engines (via BoundArith
// trees compiled into dense float lanes) evaluate exactly this function, so
// arithmetic predicates stay byte-identical across engines by construction.

// ArithOp is an arithmetic operator.
type ArithOp byte

const (
	// Add is addition.
	Add ArithOp = '+'
	// Sub is subtraction.
	Sub ArithOp = '-'
	// Mul is multiplication.
	Mul ArithOp = '*'
	// Div is IEEE-754 float division.
	Div ArithOp = '/'
)

// Arith is a binary arithmetic expression over two scalar operands.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// A builds an arithmetic expression; operands may be ColRef, Const or
// nested Arith.
func A(l Expr, op ArithOp, r Expr) Arith { return Arith{Op: op, L: l, R: r} }

// String renders the expression fully parenthesized, so the canonical
// predicate rendering (DAG unification keys) is unambiguous.
func (a Arith) String() string {
	return "(" + a.L.String() + string(a.Op) + a.R.String() + ")"
}

// Columns appends columns from both operands.
func (a Arith) Columns(dst []string) []string {
	return a.R.Columns(a.L.Columns(dst))
}

// Eval evaluates the expression to a Float value.
func (a Arith) Eval(s Schema, t Tuple) Value {
	return NewFloat(arithApply(a.Op, a.L.Eval(s, t).AsFloat(), a.R.Eval(s, t).AsFloat()))
}

// arithApply is the single evaluation rule shared by every engine.
func arithApply(op ArithOp, l, r float64) float64 {
	switch op {
	case Add:
		return l + r
	case Sub:
		return l - r
	case Mul:
		return l * r
	case Div:
		return l / r
	}
	panic("algebra: unknown arithmetic operator " + string(op))
}

// BoundArith is an arithmetic expression compiled against one schema: a
// binary tree whose leaves are resolved tuple indexes (Idx >= 0) or
// literals (Idx < 0, Val set). A node is a leaf iff both children are nil.
// The exec layer walks these trees to build dense float64 lanes; EvalRow is
// the row-at-a-time reference shared by BoundPred.Eval.
type BoundArith struct {
	Op   ArithOp
	L, R *BoundArith
	Idx  int
	Val  Value
}

// Leaf reports whether the node is a resolved leaf.
func (a *BoundArith) Leaf() bool { return a.L == nil && a.R == nil }

// EvalRow evaluates the compiled expression against a tuple.
func (a *BoundArith) EvalRow(t Tuple) float64 {
	if a.Leaf() {
		if a.Idx >= 0 {
			return t[a.Idx].AsFloat()
		}
		return a.Val.AsFloat()
	}
	return arithApply(a.Op, a.L.EvalRow(t), a.R.EvalRow(t))
}

// Remap returns a copy of the tree with every leaf column index rewritten
// through f (literal leaves are shared). The chained pipeline uses it to
// re-express a batch-schema compile against the backing relation's layout.
func (a *BoundArith) Remap(f func(int) int) *BoundArith {
	if a == nil {
		return nil
	}
	if a.Leaf() {
		if a.Idx < 0 {
			return a
		}
		return &BoundArith{Idx: f(a.Idx), Val: a.Val}
	}
	return &BoundArith{Op: a.Op, L: a.L.Remap(f), R: a.R.Remap(f), Idx: a.Idx}
}

// compileArithOperand compiles one side of a comparison that contains
// arithmetic, resolving column references against the schema.
func compileArithOperand(e Expr, s Schema) *BoundArith {
	switch v := e.(type) {
	case ColRef:
		i := s.IndexOf(v.QName())
		if i < 0 {
			panic("algebra: column " + v.QName() + " not in schema " + s.String())
		}
		return &BoundArith{Idx: i}
	case Const:
		return &BoundArith{Idx: -1, Val: v.Val}
	case Arith:
		return &BoundArith{Op: v.Op, L: compileArithOperand(v.L, s), R: compileArithOperand(v.R, s)}
	}
	panic("algebra: cannot bind arithmetic operand")
}

// exprHasArith reports whether an expression tree contains arithmetic.
func exprHasArith(e Expr) bool {
	_, ok := e.(Arith)
	return ok
}

// HasArith reports whether the predicate contains arithmetic expressions —
// consumers restricted to simple column/literal comparisons (the shard wire
// format, index-key extraction) must check this and conservatively reject,
// exactly as with HasClauses.
func (p Pred) HasArith() bool {
	for _, c := range p.Conjuncts {
		if exprHasArith(c.L) || exprHasArith(c.R) {
			return true
		}
	}
	for _, cl := range p.Clauses {
		for _, c := range cl {
			if exprHasArith(c.L) || exprHasArith(c.R) {
				return true
			}
		}
	}
	return false
}

// HasArith reports whether the bound predicate carries compiled arithmetic.
func (p BoundPred) HasArith() bool {
	for _, c := range p.cs {
		if c.la != nil || c.ra != nil {
			return true
		}
	}
	for _, cl := range p.clauses {
		for _, c := range cl {
			if c.la != nil || c.ra != nil {
				return true
			}
		}
	}
	return false
}
