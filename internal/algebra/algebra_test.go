package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
)

func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	cat.AddTable(&catalog.Table{
		Name: "r",
		Columns: []catalog.Column{
			{Name: "a", Type: catalog.Int, Width: 8},
			{Name: "b", Type: catalog.Int, Width: 8},
		},
		PrimaryKey: []string{"a"},
		Stats:      catalog.TableStats{Rows: 100},
	})
	cat.AddTable(&catalog.Table{
		Name: "s",
		Columns: []catalog.Column{
			{Name: "b", Type: catalog.Int, Width: 8},
			{Name: "c", Type: catalog.String, Width: 16},
		},
		PrimaryKey: []string{"b"},
		Stats:      catalog.TableStats{Rows: 200},
	})
	return cat
}

func TestValueCompareNumericCrossKind(t *testing.T) {
	if NewInt(3).Compare(NewFloat(3.0)) != 0 {
		t.Errorf("Int 3 should equal Float 3.0")
	}
	if NewInt(2).Compare(NewFloat(2.5)) != -1 {
		t.Errorf("Int 2 should be less than Float 2.5")
	}
	if NewDate(10).Compare(NewInt(9)) != 1 {
		t.Errorf("Date 10 should exceed Int 9")
	}
}

func TestValueCompareStrings(t *testing.T) {
	if NewString("abc").Compare(NewString("abd")) != -1 {
		t.Errorf("string ordering broken")
	}
	if !NewString("x").Equal(NewString("x")) {
		t.Errorf("equal strings should compare equal")
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	// Property: Compare is antisymmetric and transitive on random values.
	gen := func(r *rand.Rand) Value {
		switch r.Intn(4) {
		case 0:
			return NewInt(int64(r.Intn(20) - 10))
		case 1:
			return NewFloat(float64(r.Intn(20)-10) / 2)
		case 2:
			return NewDate(int64(r.Intn(10)))
		default:
			return NewString(string(rune('a' + r.Intn(5))))
		}
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("antisymmetry violated: %v vs %v", a, b)
		}
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			t.Fatalf("transitivity violated: %v %v %v", a, b, c)
		}
	}
}

func TestCmpCanonicalString(t *testing.T) {
	ab := Eq("r.a", "s.b")
	ba := Eq("s.b", "r.a")
	if ab.String() != ba.String() {
		t.Errorf("equality should render canonically: %q vs %q", ab.String(), ba.String())
	}
	// Constant on left flips.
	flipped := Cmp{Op: GT, L: Const{Val: NewInt(5)}, R: C("r.a")}
	if flipped.String() != "r.a<5" {
		t.Errorf("constant should normalize to the right: got %q", flipped.String())
	}
}

func TestPredCanonicalOrder(t *testing.T) {
	p1 := And(Eq("r.a", "s.b"), CmpConst("r.b", LT, NewInt(10)))
	p2 := And(CmpConst("r.b", LT, NewInt(10)), Eq("s.b", "r.a"))
	if p1.String() != p2.String() {
		t.Errorf("conjunction order should not matter: %q vs %q", p1.String(), p2.String())
	}
}

func TestPredEval(t *testing.T) {
	s := Schema{
		{Rel: "r", Name: "a", Type: catalog.Int},
		{Rel: "r", Name: "b", Type: catalog.Int},
	}
	p := And(CmpConst("r.a", GE, NewInt(5)), CmpConst("r.b", NE, NewInt(0)))
	if !p.Eval(s, Tuple{NewInt(5), NewInt(1)}) {
		t.Errorf("5>=5 and 1<>0 should pass")
	}
	if p.Eval(s, Tuple{NewInt(4), NewInt(1)}) {
		t.Errorf("4>=5 should fail")
	}
	if p.Eval(s, Tuple{NewInt(9), NewInt(0)}) {
		t.Errorf("0<>0 should fail")
	}
	if !TruePred().Eval(s, Tuple{NewInt(0), NewInt(0)}) {
		t.Errorf("empty conjunction is TRUE")
	}
}

func TestCmpEvalAllOps(t *testing.T) {
	s := Schema{{Rel: "r", Name: "a", Type: catalog.Int}}
	tup := Tuple{NewInt(5)}
	cases := []struct {
		op   CmpOp
		rhs  int64
		want bool
	}{
		{EQ, 5, true}, {EQ, 4, false},
		{NE, 4, true}, {NE, 5, false},
		{LT, 6, true}, {LT, 5, false},
		{LE, 5, true}, {LE, 4, false},
		{GT, 4, true}, {GT, 5, false},
		{GE, 5, true}, {GE, 6, false},
	}
	for _, tc := range cases {
		got := CmpConst("r.a", tc.op, NewInt(tc.rhs)).Eval(s, tup).I == 1
		if got != tc.want {
			t.Errorf("5 %s %d: got %v want %v", tc.op, tc.rhs, got, tc.want)
		}
	}
}

func TestSchemaIndexOf(t *testing.T) {
	s := Schema{
		{Rel: "r", Name: "a"},
		{Rel: "s", Name: "a"},
		{Rel: "s", Name: "c"},
	}
	if s.IndexOf("r.a") != 0 || s.IndexOf("s.a") != 1 {
		t.Errorf("qualified lookup broken")
	}
	if s.IndexOf("a") != -1 {
		t.Errorf("ambiguous unqualified lookup should return -1")
	}
	if s.IndexOf("c") != 2 {
		t.Errorf("unambiguous unqualified lookup should resolve")
	}
	if s.IndexOf("r.zzz") != -1 {
		t.Errorf("missing column should return -1")
	}
}

func TestJoinSchemaAndTables(t *testing.T) {
	cat := testCatalog()
	j := NewJoin(And(Eq("r.b", "s.b")), NewScan(cat, "r"), NewScan(cat, "s"))
	if len(j.Schema()) != 4 {
		t.Fatalf("join schema should have 4 columns, got %d", len(j.Schema()))
	}
	tables := Tables(j)
	if len(tables) != 2 || tables[0] != "r" || tables[1] != "s" {
		t.Errorf("Tables = %v", tables)
	}
}

func TestProjectValidation(t *testing.T) {
	cat := testCatalog()
	defer func() {
		if recover() == nil {
			t.Errorf("projecting a missing column should panic")
		}
	}()
	NewProject([]ColRef{C("r.zzz")}, NewScan(cat, "r"))
}

func TestAggregateSchema(t *testing.T) {
	cat := testCatalog()
	agg := NewAggregate(
		[]ColRef{C("r.a")},
		[]AggSpec{{Func: Count}, {Func: Sum, Col: C("r.b"), As: "total"}},
		NewScan(cat, "r"),
	)
	s := agg.Schema()
	if len(s) != 3 {
		t.Fatalf("schema = %v", s)
	}
	if s.IndexOf("agg.count") != 1 || s.IndexOf("agg.total") != 2 {
		t.Errorf("aggregate output naming broken: %v", s)
	}
}

func TestAggregateCanonicalString(t *testing.T) {
	cat := testCatalog()
	a1 := NewAggregate([]ColRef{C("r.a"), C("r.b")},
		[]AggSpec{{Func: Sum, Col: C("r.b")}, {Func: Count}}, NewScan(cat, "r"))
	a2 := NewAggregate([]ColRef{C("r.b"), C("r.a")},
		[]AggSpec{{Func: Count}, {Func: Sum, Col: C("r.b")}}, NewScan(cat, "r"))
	if a1.String() != a2.String() {
		t.Errorf("aggregate canonical form should ignore list order:\n%s\n%s", a1, a2)
	}
}

func TestUnionArityPanics(t *testing.T) {
	cat := testCatalog()
	r := NewScan(cat, "r")
	if got := NewUnion(r, r).String(); got == "" {
		t.Errorf("union should render")
	}
	wide := NewJoin(TruePred(), NewScan(cat, "r"), NewScan(cat, "s"))
	defer func() {
		if recover() == nil {
			t.Errorf("arity mismatch should panic")
		}
	}()
	NewUnion(r, wide)
}

func TestMinusArityPanics(t *testing.T) {
	cat := testCatalog()
	wide := NewJoin(TruePred(), NewScan(cat, "r"), NewScan(cat, "s"))
	defer func() {
		if recover() == nil {
			t.Errorf("minus with arity mismatch should panic")
		}
	}()
	NewMinus(NewScan(cat, "r"), wide)
}

func TestPredRefersOnlyTo(t *testing.T) {
	cat := testCatalog()
	r := NewScan(cat, "r")
	p := And(CmpConst("r.a", LT, NewInt(3)))
	if !p.RefersOnlyTo(r.Schema()) {
		t.Errorf("predicate over r should refer only to r")
	}
	q := And(Eq("r.b", "s.b"))
	if q.RefersOnlyTo(r.Schema()) {
		t.Errorf("join predicate should not fit r alone")
	}
}

func TestCmpOpFlipInvolution(t *testing.T) {
	f := func(op uint8) bool {
		o := CmpOp(op % 6)
		return o.Flip().Flip() == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleClone(t *testing.T) {
	orig := Tuple{NewInt(1), NewString("x")}
	cl := orig.Clone()
	cl[0] = NewInt(99)
	if orig[0].I != 1 {
		t.Errorf("clone should not alias the original")
	}
}
