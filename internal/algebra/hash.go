package algebra

import "math"

// Typed 64-bit hashing for values and tuples: FNV-1a over a kind tag plus the
// payload bytes, with no allocation. This is the single hashing substrate
// shared by the storage multiset maps, the hash-join/dedup/aggregation
// operators, and hash indexes — replacing ad-hoc string rendering on every
// hot path.
//
// The hash is consistent with Equal: values that compare equal hash equal.
// Because Compare places all numeric kinds (Int/Float/Date) in one class and
// compares them numerically, numeric values hash through their float64 image
// rather than their kind tag.

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211

	hashTagNumeric uint64 = 0x4e
	hashTagString  uint64 = 0x53
)

// Hash returns the 64-bit hash of a single value.
func (v Value) Hash() uint64 { return v.HashInto(fnvOffset64) }

// HashInto folds the value into a running FNV-1a state (tag first, then
// payload), enabling allocation-free multi-column hashes.
func (v Value) HashInto(h uint64) uint64 {
	if v.numericKind() {
		h = (h ^ hashTagNumeric) * fnvPrime64
		f := v.AsFloat()
		if f == 0 {
			f = 0 // normalize -0.0 to +0.0: they compare equal
		}
		bits := math.Float64bits(f)
		if f != f {
			bits = 0x7ff8000000000001 // canonical NaN: all NaNs compare equal
		}
		h = (h ^ (bits & 0xff)) * fnvPrime64
		h = (h ^ (bits >> 8 & 0xff)) * fnvPrime64
		h = (h ^ (bits >> 16 & 0xff)) * fnvPrime64
		h = (h ^ (bits >> 24 & 0xff)) * fnvPrime64
		h = (h ^ (bits >> 32 & 0xff)) * fnvPrime64
		h = (h ^ (bits >> 40 & 0xff)) * fnvPrime64
		h = (h ^ (bits >> 48 & 0xff)) * fnvPrime64
		h = (h ^ (bits >> 56)) * fnvPrime64
		return h
	}
	h = (h ^ hashTagString) * fnvPrime64
	for i := 0; i < len(v.S); i++ {
		h = (h ^ uint64(v.S[i])) * fnvPrime64
	}
	return h
}

// HashSeed returns the FNV-1a offset basis — the initial state of a
// HashInto fold. Column-major hashers (the chained columnar pipeline) start
// here so their hashes equal Tuple.HashCols element-wise.
func HashSeed() uint64 { return fnvOffset64 }

// Hash returns the hash of the whole tuple.
func (t Tuple) Hash() uint64 {
	h := fnvOffset64
	for _, v := range t {
		h = v.HashInto(h)
	}
	return h
}

// HashCols hashes the column subset cols, in order. The caller precomputes
// cols once per operator, so per-row hashing touches only the key columns.
func (t Tuple) HashCols(cols []int) uint64 {
	h := fnvOffset64
	for _, c := range cols {
		h = t[c].HashInto(h)
	}
	return h
}

// Equal reports column-wise equality of two tuples under Value.Equal.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// EqualOn reports equality of two tuples restricted to parallel column
// subsets: a[ac[i]] == b[bc[i]] for every i. Used to confirm hash-join
// matches on collision.
func EqualOn(a Tuple, ac []int, b Tuple, bc []int) bool {
	for i := range ac {
		if !a[ac[i]].Equal(b[bc[i]]) {
			return false
		}
	}
	return true
}
