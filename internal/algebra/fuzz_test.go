package algebra

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/catalog"
)

// decodeTuples interprets fuzz bytes as two tuples of typed values. The
// decoder is total (any byte slice yields two tuples, possibly empty) and
// deliberately over-produces the hard cases of the Compare/Hash contract:
// NaN, ±0.0, ±Inf, integers above 2^53 whose float64 images collide, and
// values of different kinds that compare equal (Int vs Date vs Float).
func decodeTuples(data []byte) (a, b Tuple) {
	specials := []Value{
		NewFloat(math.NaN()),
		NewFloat(math.Copysign(0, -1)),
		NewFloat(0),
		NewFloat(math.Inf(1)),
		NewFloat(math.Inf(-1)),
		NewInt(1 << 53),
		NewInt(1<<53 + 1),
		NewFloat(1 << 53),
		NewInt(math.MaxInt64),
		NewInt(math.MinInt64),
		NewFloat(9.223372036854776e18), // 2^63, above every int64
		NewDate(0),
		NewString(""),
	}
	cur := &a
	for len(data) > 0 {
		op := data[0] % 6
		data = data[1:]
		take := func(n int) []byte {
			if len(data) < n {
				pad := make([]byte, n)
				copy(pad, data)
				data = nil
				return pad
			}
			out := data[:n]
			data = data[n:]
			return out
		}
		switch op {
		case 0:
			*cur = append(*cur, NewInt(int64(binary.LittleEndian.Uint64(take(8)))))
		case 1:
			*cur = append(*cur, NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(take(8)))))
		case 2:
			*cur = append(*cur, NewDate(int64(binary.LittleEndian.Uint64(take(8)))))
		case 3:
			n := 0
			if len(data) > 0 {
				n = int(data[0]) % 9
				data = data[1:]
			}
			*cur = append(*cur, NewString(string(take(n))))
		case 4:
			i := 0
			if len(data) > 0 {
				i = int(data[0]) % len(specials)
				data = data[1:]
			}
			*cur = append(*cur, specials[i])
		default:
			cur = &b // switch to filling the second tuple
		}
		if len(a) > 8 || len(b) > 8 {
			break
		}
	}
	return a, b
}

// sign normalizes a comparison result.
func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

// FuzzTupleHashEqual checks the hash/equality/order contract the storage
// multisets, hash joins, dedup and aggregation all build on: Equal is an
// equivalence relation consistent with Compare, equal values and tuples
// hash equal (from any running FNV state), and the column-subset helpers
// agree with the whole-tuple ones.
func FuzzTupleHashEqual(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{4, 0, 4, 1, 4, 2, 5, 4, 5, 4, 6})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0xf8, 0x7f, 5, 1, 1, 0, 0, 0, 0, 0, 0, 0xf8, 0xff})
	f.Add([]byte{0, 1, 0, 0, 0, 0, 0, 0, 0x20, 5, 2, 1, 0, 0, 0, 0, 0, 0, 0x20})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := decodeTuples(data)
		vals := append(append(Tuple{}, a...), b...)

		// Value-level contract, all pairs.
		for _, v := range vals {
			if v.Compare(v) != 0 || !v.Equal(v) {
				t.Fatalf("value %v not equal to itself", v)
			}
		}
		for _, v := range vals {
			for _, w := range vals {
				cvw, cwv := v.Compare(w), w.Compare(v)
				if sign(cvw) != -sign(cwv) {
					t.Fatalf("Compare not antisymmetric: %v vs %v → %d, %d", v, w, cvw, cwv)
				}
				if (cvw == 0) != v.Equal(w) {
					t.Fatalf("Equal disagrees with Compare==0: %v vs %v", v, w)
				}
				if v.Equal(w) {
					if v.Hash() != w.Hash() {
						t.Fatalf("equal values hash differently: %v vs %v", v, w)
					}
					// Equality must also survive mid-stream hashing.
					var h uint64 = 0x9e3779b97f4a7c15
					if v.HashInto(h) != w.HashInto(h) {
						t.Fatalf("equal values diverge under HashInto: %v vs %v", v, w)
					}
				}
			}
		}
		// Transitivity over all triples (tuples are capped at 8+8 values).
		for _, x := range vals {
			for _, y := range vals {
				if !x.Equal(y) {
					continue
				}
				for _, z := range vals {
					if y.Equal(z) && !x.Equal(z) {
						t.Fatalf("Equal not transitive: %v = %v = %v but %v ≠ %v", x, y, z, x, z)
					}
				}
			}
		}

		// Tuple-level contract.
		if !a.Equal(a.Clone()) || a.Hash() != a.Clone().Hash() {
			t.Fatalf("tuple not equal to its clone")
		}
		if a.Equal(b) {
			if a.Hash() != b.Hash() {
				t.Fatalf("equal tuples hash differently: %v vs %v", a, b)
			}
			if !b.Equal(a) {
				t.Fatalf("tuple Equal not symmetric")
			}
		}
		all := make([]int, len(a))
		for i := range all {
			all[i] = i
		}
		if a.HashCols(all) != a.Hash() {
			t.Fatalf("HashCols over all columns differs from Hash")
		}
		if len(a) > 0 && !EqualOn(a, all, a, all) {
			t.Fatalf("EqualOn not reflexive")
		}
		if len(a) == len(b) && len(a) > 0 {
			if EqualOn(a, all, b, all) != a.Equal(b) {
				t.Fatalf("EqualOn over all columns disagrees with Equal: %v vs %v", a, b)
			}
		}
		// Cross-kind numeric equality: Int, Date and (exactly-representable)
		// Float images of the same number are one Compare class and must
		// hash together.
		for _, v := range vals {
			if v.Kind != catalog.Int {
				continue
			}
			d := NewDate(v.I)
			if !v.Equal(d) || v.Hash() != d.Hash() {
				t.Fatalf("Int/Date images of %d diverge", v.I)
			}
			if f := float64(v.I); f < 1<<62 && f > -(1<<62) && int64(f) == v.I {
				fv := NewFloat(f)
				if !v.Equal(fv) || v.Hash() != fv.Hash() {
					t.Fatalf("Int/Float images of %d diverge", v.I)
				}
			}
		}
	})
}
