package algebra

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// CmpOp is a comparison operator in a predicate.
type CmpOp int

const (
	// EQ is equality.
	EQ CmpOp = iota
	// NE is inequality.
	NE
	// LT is strictly-less-than.
	LT
	// LE is less-or-equal.
	LE
	// GT is strictly-greater-than.
	GT
	// GE is greater-or-equal.
	GE
)

// String renders the comparison operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Flip returns the operator with sides exchanged (a < b  ≡  b > a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return op
	}
}

// Expr is a scalar expression evaluated per tuple. Implementations are
// immutable once built; String() is a canonical rendering used for hashing
// and DAG unification.
type Expr interface {
	String() string
	// Columns appends the qualified names of all columns referenced.
	Columns(dst []string) []string
	// Eval evaluates the expression against a tuple laid out by schema.
	Eval(s Schema, t Tuple) Value
}

// ColRef references a column by qualified name.
type ColRef struct {
	Rel  string
	Name string
}

// C is shorthand for building a ColRef from "rel.name".
func C(qname string) ColRef {
	i := strings.IndexByte(qname, '.')
	if i < 0 {
		return ColRef{Name: qname}
	}
	return ColRef{Rel: qname[:i], Name: qname[i+1:]}
}

// QName returns the qualified name of the referenced column.
func (c ColRef) QName() string {
	if c.Rel == "" {
		return c.Name
	}
	return c.Rel + "." + c.Name
}

// String renders the reference.
func (c ColRef) String() string { return c.QName() }

// Columns appends this column.
func (c ColRef) Columns(dst []string) []string { return append(dst, c.QName()) }

// Eval looks the column up in the tuple.
func (c ColRef) Eval(s Schema, t Tuple) Value {
	i := s.IndexOf(c.QName())
	if i < 0 {
		panic(fmt.Sprintf("algebra: column %s not in schema %s", c.QName(), s))
	}
	return t[i]
}

// Const is a literal value.
type Const struct{ Val Value }

// String renders the literal.
func (c Const) String() string { return c.Val.String() }

// Columns references nothing.
func (c Const) Columns(dst []string) []string { return dst }

// Eval returns the literal.
func (c Const) Eval(Schema, Tuple) Value { return c.Val }

// Cmp is a binary comparison. Predicates in this system are in conjunctive
// normal form: plain comparisons (the common case — the paper's workloads are
// conjunctive select-project-join-aggregate views) plus optional disjunctive
// clauses (Pred.Clauses) for OR-of-comparisons.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eq builds an equality comparison between two columns.
func Eq(l, r string) Cmp { return Cmp{Op: EQ, L: C(l), R: C(r)} }

// CmpConst builds a comparison between a column and a literal.
func CmpConst(col string, op CmpOp, v Value) Cmp {
	return Cmp{Op: op, L: C(col), R: Const{Val: v}}
}

// String renders the comparison canonically: for commutative forms the
// lexically smaller operand is placed on the left, so that a=b and b=a hash
// identically.
func (c Cmp) String() string {
	l, r, op := c.L.String(), c.R.String(), c.Op
	if _, isConst := c.L.(Const); isConst {
		// Keep constants on the right: 5 > x  →  x < 5.
		l, r, op = r, l, op.Flip()
	} else if op == EQ || op == NE {
		if _, rConst := c.R.(Const); !rConst && r < l {
			l, r = r, l
		}
	}
	return l + op.String() + r
}

// Columns appends columns from both sides.
func (c Cmp) Columns(dst []string) []string {
	return c.R.Columns(c.L.Columns(dst))
}

// Eval evaluates the comparison to a boolean (Int 0/1).
func (c Cmp) Eval(s Schema, t Tuple) Value {
	cmp := c.L.Eval(s, t).Compare(c.R.Eval(s, t))
	var ok bool
	switch c.Op {
	case EQ:
		ok = cmp == 0
	case NE:
		ok = cmp != 0
	case LT:
		ok = cmp < 0
	case LE:
		ok = cmp <= 0
	case GT:
		ok = cmp > 0
	case GE:
		ok = cmp >= 0
	}
	if ok {
		return NewInt(1)
	}
	return NewInt(0)
}

// Pred is a predicate in conjunctive normal form: every Conjunct must hold
// AND every Clause (a disjunction of comparisons) must have at least one true
// alternative. The empty predicate is TRUE; an empty clause is FALSE.
type Pred struct {
	Conjuncts []Cmp
	// Clauses are disjunctions ANDed with the conjuncts. Single-alternative
	// clauses belong in Conjuncts (the canonical form the planners key on);
	// only genuine OR-of-comparisons go here.
	Clauses [][]Cmp
}

// And builds a conjunction.
func And(cs ...Cmp) Pred { return Pred{Conjuncts: cs} }

// Or builds a predicate with one disjunctive clause.
func Or(cs ...Cmp) Pred { return Pred{Clauses: [][]Cmp{cs}} }

// TruePred is the empty (always-true) predicate.
func TruePred() Pred { return Pred{} }

// IsTrue reports whether the predicate is empty.
func (p Pred) IsTrue() bool { return len(p.Conjuncts) == 0 && len(p.Clauses) == 0 }

// HasClauses reports whether the predicate carries disjunctive clauses —
// consumers that only understand conjunctions (index-key extraction, shard
// lowering, subsumption implication tests) must check this and either handle
// or conservatively reject the predicate.
func (p Pred) HasClauses() bool { return len(p.Clauses) > 0 }

// String renders the predicate canonically with conjuncts and clauses sorted,
// so that predicate sets compare and hash independently of construction
// order. A conjunction-only predicate renders exactly as before clauses
// existed (DAG unification keys are derived from this rendering).
func (p Pred) String() string {
	if p.IsTrue() {
		return "true"
	}
	parts := make([]string, 0, len(p.Conjuncts)+len(p.Clauses))
	for _, c := range p.Conjuncts {
		parts = append(parts, c.String())
	}
	for _, cl := range p.Clauses {
		alts := make([]string, len(cl))
		for i, c := range cl {
			alts[i] = c.String()
		}
		sort.Strings(alts)
		parts = append(parts, "("+strings.Join(alts, " OR ")+")")
	}
	sort.Strings(parts)
	return strings.Join(parts, " AND ")
}

// Columns appends all referenced columns.
func (p Pred) Columns(dst []string) []string {
	for _, c := range p.Conjuncts {
		dst = c.Columns(dst)
	}
	for _, cl := range p.Clauses {
		for _, c := range cl {
			dst = c.Columns(dst)
		}
	}
	return dst
}

// Eval evaluates the predicate against a tuple.
func (p Pred) Eval(s Schema, t Tuple) bool {
	for _, c := range p.Conjuncts {
		if c.Eval(s, t).I == 0 {
			return false
		}
	}
	for _, cl := range p.Clauses {
		any := false
		for _, c := range cl {
			if c.Eval(s, t).I != 0 {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	return true
}

// RefersOnlyTo reports whether every column the predicate references is
// present in the schema. Used for predicate pushdown during DAG expansion.
func (p Pred) RefersOnlyTo(s Schema) bool {
	for _, q := range p.Columns(nil) {
		if !s.Has(q) {
			return false
		}
	}
	return true
}

// AndPred conjoins two predicates, concatenating conjuncts and clauses.
func AndPred(a, b Pred) Pred {
	if a.IsTrue() {
		return b
	}
	if b.IsTrue() {
		return a
	}
	out := make([]Cmp, 0, len(a.Conjuncts)+len(b.Conjuncts))
	out = append(out, a.Conjuncts...)
	out = append(out, b.Conjuncts...)
	var cls [][]Cmp
	if len(a.Clauses)+len(b.Clauses) > 0 {
		cls = make([][]Cmp, 0, len(a.Clauses)+len(b.Clauses))
		cls = append(cls, a.Clauses...)
		cls = append(cls, b.Clauses...)
	}
	return Pred{Conjuncts: out, Clauses: cls}
}

// HashString hashes a canonical string to 64 bits (FNV-1a). Shared helper for
// DAG unification keys.
func HashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
