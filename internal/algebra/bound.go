package algebra

import "fmt"

// BoundPred is a predicate compiled against one schema: every column
// reference is resolved to a tuple index once, so per-row evaluation does no
// string rendering or schema lookups. Executor operators bind predicates
// once per input and evaluate the bound form in their row loops.
type BoundPred struct {
	cs []boundCmp
}

// boundCmp is one compiled conjunct. A side is either a tuple index (idx >=
// 0) or a literal (idx == -1).
type boundCmp struct {
	op     CmpOp
	li, ri int
	lv, rv Value
}

// Bind compiles the predicate against a schema. It panics if a referenced
// column is missing, mirroring ColRef.Eval.
func (p Pred) Bind(s Schema) BoundPred {
	out := BoundPred{cs: make([]boundCmp, len(p.Conjuncts))}
	side := func(e Expr) (int, Value) {
		switch v := e.(type) {
		case ColRef:
			i := s.IndexOf(v.QName())
			if i < 0 {
				panic(fmt.Sprintf("algebra: column %s not in schema %s", v.QName(), s))
			}
			return i, Value{}
		case Const:
			return -1, v.Val
		default:
			panic(fmt.Sprintf("algebra: cannot bind expression %T", e))
		}
	}
	for i, c := range p.Conjuncts {
		bc := boundCmp{op: c.Op}
		bc.li, bc.lv = side(c.L)
		bc.ri, bc.rv = side(c.R)
		out.cs[i] = bc
	}
	return out
}

// BoundCmp is the exported image of one compiled conjunct. A side is either
// a tuple index (idx >= 0, the value field ignored) or a literal (idx == -1).
// The shard transport serializes bound predicates in this form so workers
// evaluate exactly the predicate the coordinator compiled — re-binding on the
// worker would need the schema, which the wire format deliberately omits.
type BoundCmp struct {
	Op         CmpOp
	LIdx, RIdx int
	LVal, RVal Value
}

// Cmps returns the compiled conjuncts (the encode side of a serialized
// predicate).
func (p BoundPred) Cmps() []BoundCmp {
	out := make([]BoundCmp, len(p.cs))
	for i, c := range p.cs {
		out[i] = BoundCmp{Op: c.op, LIdx: c.li, RIdx: c.ri, LVal: c.lv, RVal: c.rv}
	}
	return out
}

// NewBoundPred reassembles a BoundPred from compiled conjuncts (the decode
// side). Eval is shared with predicates bound locally, so both sides of the
// wire agree on comparison semantics by construction.
func NewBoundPred(cs []BoundCmp) BoundPred {
	out := BoundPred{cs: make([]boundCmp, len(cs))}
	for i, c := range cs {
		out.cs[i] = boundCmp{op: c.Op, li: c.LIdx, ri: c.RIdx, lv: c.LVal, rv: c.RVal}
	}
	return out
}

// Eval evaluates the bound conjunction against a tuple.
func (p BoundPred) Eval(t Tuple) bool {
	for _, c := range p.cs {
		l, r := c.lv, c.rv
		if c.li >= 0 {
			l = t[c.li]
		}
		if c.ri >= 0 {
			r = t[c.ri]
		}
		cmp := l.Compare(r)
		var ok bool
		switch c.op {
		case EQ:
			ok = cmp == 0
		case NE:
			ok = cmp != 0
		case LT:
			ok = cmp < 0
		case LE:
			ok = cmp <= 0
		case GT:
			ok = cmp > 0
		case GE:
			ok = cmp >= 0
		}
		if !ok {
			return false
		}
	}
	return true
}
