package algebra

import "fmt"

// BoundPred is a predicate compiled against one schema: every column
// reference is resolved to a tuple index once, so per-row evaluation does no
// string rendering or schema lookups. Executor operators bind predicates
// once per input and evaluate the bound form in their row loops.
type BoundPred struct {
	cs []boundCmp
	// clauses are compiled disjunctions ANDed with cs (CNF, mirroring
	// Pred.Clauses).
	clauses [][]boundCmp
}

// boundCmp is one compiled conjunct. A side is either a tuple index (idx >=
// 0), a literal (idx == -1), or a compiled arithmetic expression (la/ra
// non-nil, which takes precedence over the index).
type boundCmp struct {
	op     CmpOp
	li, ri int
	lv, rv Value
	la, ra *BoundArith
}

// Bind compiles the predicate against a schema. It panics if a referenced
// column is missing, mirroring ColRef.Eval.
func (p Pred) Bind(s Schema) BoundPred {
	out := BoundPred{cs: make([]boundCmp, len(p.Conjuncts))}
	side := func(e Expr) (int, Value, *BoundArith) {
		switch v := e.(type) {
		case ColRef:
			i := s.IndexOf(v.QName())
			if i < 0 {
				panic(fmt.Sprintf("algebra: column %s not in schema %s", v.QName(), s))
			}
			return i, Value{}, nil
		case Const:
			return -1, v.Val, nil
		case Arith:
			return -1, Value{}, compileArithOperand(v, s)
		default:
			panic(fmt.Sprintf("algebra: cannot bind expression %T", e))
		}
	}
	bind := func(c Cmp) boundCmp {
		bc := boundCmp{op: c.Op}
		bc.li, bc.lv, bc.la = side(c.L)
		bc.ri, bc.rv, bc.ra = side(c.R)
		return bc
	}
	for i, c := range p.Conjuncts {
		out.cs[i] = bind(c)
	}
	if len(p.Clauses) > 0 {
		out.clauses = make([][]boundCmp, len(p.Clauses))
		for i, cl := range p.Clauses {
			bcl := make([]boundCmp, len(cl))
			for j, c := range cl {
				bcl[j] = bind(c)
			}
			out.clauses[i] = bcl
		}
	}
	return out
}

// BoundCmp is the exported image of one compiled conjunct. A side is either
// a tuple index (idx >= 0, the value field ignored), a literal (idx == -1),
// or a compiled arithmetic tree (LArith/RArith non-nil, taking precedence).
// The shard transport serializes bound predicates in this form so workers
// evaluate exactly the predicate the coordinator compiled — re-binding on the
// worker would need the schema, which the wire format deliberately omits.
// The wire format does NOT carry the arith fields; the shard lowering vetoes
// arithmetic predicates (Pred.HasArith) exactly as it vetoes clauses.
type BoundCmp struct {
	Op             CmpOp
	LIdx, RIdx     int
	LVal, RVal     Value
	LArith, RArith *BoundArith
}

// HasClauses reports whether the bound predicate carries disjunctive
// clauses. Cmps covers only the conjuncts, so any consumer flattening a
// BoundPred to []BoundCmp (the shard wire format) must reject clause-bearing
// predicates rather than silently dropping the clauses.
func (p BoundPred) HasClauses() bool { return len(p.clauses) > 0 }

// Clauses returns the compiled disjunctive clauses in BoundCmp form.
func (p BoundPred) Clauses() [][]BoundCmp {
	if len(p.clauses) == 0 {
		return nil
	}
	out := make([][]BoundCmp, len(p.clauses))
	for i, cl := range p.clauses {
		ocl := make([]BoundCmp, len(cl))
		for j, c := range cl {
			ocl[j] = BoundCmp{Op: c.op, LIdx: c.li, RIdx: c.ri, LVal: c.lv, RVal: c.rv,
				LArith: c.la, RArith: c.ra}
		}
		out[i] = ocl
	}
	return out
}

// Cmps returns the compiled conjuncts (the encode side of a serialized
// predicate).
func (p BoundPred) Cmps() []BoundCmp {
	out := make([]BoundCmp, len(p.cs))
	for i, c := range p.cs {
		out[i] = BoundCmp{Op: c.op, LIdx: c.li, RIdx: c.ri, LVal: c.lv, RVal: c.rv,
			LArith: c.la, RArith: c.ra}
	}
	return out
}

// NewBoundPred reassembles a BoundPred from compiled conjuncts (the decode
// side). Eval is shared with predicates bound locally, so both sides of the
// wire agree on comparison semantics by construction.
func NewBoundPred(cs []BoundCmp) BoundPred {
	return NewBoundPredCNF(cs, nil)
}

// NewBoundPredCNF reassembles a BoundPred from compiled conjuncts plus
// disjunctive clauses — the full CNF round trip of Cmps/Clauses. The chained
// executor uses it to re-evaluate an index-remapped compile.
func NewBoundPredCNF(cs []BoundCmp, clauses [][]BoundCmp) BoundPred {
	conv := func(c BoundCmp) boundCmp {
		return boundCmp{op: c.Op, li: c.LIdx, ri: c.RIdx, lv: c.LVal, rv: c.RVal,
			la: c.LArith, ra: c.RArith}
	}
	out := BoundPred{cs: make([]boundCmp, len(cs))}
	for i, c := range cs {
		out.cs[i] = conv(c)
	}
	if len(clauses) > 0 {
		out.clauses = make([][]boundCmp, len(clauses))
		for i, cl := range clauses {
			bcl := make([]boundCmp, len(cl))
			for j, c := range cl {
				bcl[j] = conv(c)
			}
			out.clauses[i] = bcl
		}
	}
	return out
}

// evalCmp evaluates one compiled comparison against a tuple.
func (c boundCmp) eval(t Tuple) bool {
	l, r := c.lv, c.rv
	if c.la != nil {
		l = NewFloat(c.la.EvalRow(t))
	} else if c.li >= 0 {
		l = t[c.li]
	}
	if c.ra != nil {
		r = NewFloat(c.ra.EvalRow(t))
	} else if c.ri >= 0 {
		r = t[c.ri]
	}
	cmp := l.Compare(r)
	switch c.op {
	case EQ:
		return cmp == 0
	case NE:
		return cmp != 0
	case LT:
		return cmp < 0
	case LE:
		return cmp <= 0
	case GT:
		return cmp > 0
	case GE:
		return cmp >= 0
	}
	return false
}

// Eval evaluates the bound predicate against a tuple: every conjunct and at
// least one alternative of every clause.
func (p BoundPred) Eval(t Tuple) bool {
	for _, c := range p.cs {
		if !c.eval(t) {
			return false
		}
	}
	for _, cl := range p.clauses {
		any := false
		for _, c := range cl {
			if c.eval(t) {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	return true
}
