// Package algebra defines the multiset relational algebra used throughout
// the system: typed values, scalar expressions (predicates, arithmetic,
// aggregate specifications) and logical operator trees (scan, select,
// project, join, aggregate, union, minus, dedup). Logical trees are the
// input to the AND-OR DAG builder; scalar expressions are shared with the
// execution engine, which evaluates them against tuples.
package algebra

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/catalog"
)

// Value is a single typed datum. Exactly one of the fields is meaningful,
// selected by Kind. A small tagged struct beats interface{} here: it avoids
// per-value allocations in the executor's inner loops.
type Value struct {
	Kind catalog.Type
	I    int64
	F    float64
	S    string
}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{Kind: catalog.Int, I: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{Kind: catalog.Float, F: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{Kind: catalog.String, S: v} }

// NewDate returns a date value (integer day number).
func NewDate(day int64) Value { return Value{Kind: catalog.Date, I: day} }

// AsFloat converts a numeric value to float64. Strings convert to 0; the
// planner never compares strings numerically.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case catalog.Int, catalog.Date:
		return float64(v.I)
	case catalog.Float:
		return v.F
	default:
		return 0
	}
}

// Compare orders two values: -1, 0, +1. All numeric kinds (Int/Date/Float)
// form one class and compare numerically with each other; strings form a
// second class ordered after every numeric. Numeric comparison is exact —
// integer kinds against each other on int64, integer against float without
// rounding through float64 — so it is the real-number total order even
// above 2^53, and distinct large keys stay distinct in joins, dedup and
// multiset maps. NaN is its own singleton class ordered before every other
// numeric, which keeps equality an equivalence relation consistent with
// Hash.
func (v Value) Compare(o Value) int {
	vn, on := v.numericKind(), o.numericKind()
	switch {
	case vn && on:
		vi, oi := v.intKind(), o.intKind()
		switch {
		case vi && oi:
			switch {
			case v.I < o.I:
				return -1
			case v.I > o.I:
				return 1
			default:
				return 0
			}
		case vi:
			return cmpIntFloat(v.I, o.F)
		case oi:
			return -cmpIntFloat(o.I, v.F)
		}
		a, b := v.F, o.F
		an, bn := a != a, b != b
		switch {
		case an && bn:
			return 0 // NaN equals only NaN…
		case an:
			return -1 // …and sorts before every other numeric
		case bn:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	case vn && !on:
		return -1
	case !vn && on:
		return 1
	}
	switch {
	case v.S < o.S:
		return -1
	case v.S > o.S:
		return 1
	default:
		return 0
	}
}

func (v Value) numericKind() bool {
	return v.Kind == catalog.Int || v.Kind == catalog.Float || v.Kind == catalog.Date
}

func (v Value) intKind() bool {
	return v.Kind == catalog.Int || v.Kind == catalog.Date
}

// cmpIntFloat compares an int64 and a float64 as exact real numbers: no
// rounding of the integer through float64, so the order stays transitive
// above 2^53.
func cmpIntFloat(i int64, f float64) int {
	switch {
	case f != f: // NaN sorts before every other numeric
		return 1
	case f >= 9223372036854775808.0: // 2^63: above every int64
		return -1
	case f < -9223372036854775808.0: // below every int64
		return 1
	}
	t := int64(f) // exact: |f| < 2^63, truncates toward zero
	switch {
	case i < t:
		return -1
	case i > t:
		return 1
	}
	frac := f - math.Trunc(f)
	switch {
	case frac > 0:
		return -1
	case frac < 0:
		return 1
	default:
		return 0
	}
}

// Equal reports value equality under Compare semantics.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// String renders the value as a literal.
func (v Value) String() string {
	switch v.Kind {
	case catalog.Int, catalog.Date:
		return strconv.FormatInt(v.I, 10)
	case catalog.Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case catalog.String:
		return "'" + v.S + "'"
	default:
		return fmt.Sprintf("?%d", v.Kind)
	}
}

// Tuple is one row: a flat slice of values laid out per the owning schema.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}
