// Package algebra defines the multiset relational algebra used throughout
// the system: typed values, scalar expressions (predicates, arithmetic,
// aggregate specifications) and logical operator trees (scan, select,
// project, join, aggregate, union, minus, dedup). Logical trees are the
// input to the AND-OR DAG builder; scalar expressions are shared with the
// execution engine, which evaluates them against tuples.
package algebra

import (
	"fmt"
	"strconv"

	"repro/internal/catalog"
)

// Value is a single typed datum. Exactly one of the fields is meaningful,
// selected by Kind. A small tagged struct beats interface{} here: it avoids
// per-value allocations in the executor's inner loops.
type Value struct {
	Kind catalog.Type
	I    int64
	F    float64
	S    string
}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{Kind: catalog.Int, I: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{Kind: catalog.Float, F: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{Kind: catalog.String, S: v} }

// NewDate returns a date value (integer day number).
func NewDate(day int64) Value { return Value{Kind: catalog.Date, I: day} }

// AsFloat converts a numeric value to float64. Strings convert to 0; the
// planner never compares strings numerically.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case catalog.Int, catalog.Date:
		return float64(v.I)
	case catalog.Float:
		return v.F
	default:
		return 0
	}
}

// Compare orders two values: -1, 0, +1. All numeric kinds (Int/Date/Float)
// form one class and compare numerically with each other; strings form a
// second class ordered after every numeric. This keeps Compare a total order
// (needed by sort-based operators) even across mixed kinds.
func (v Value) Compare(o Value) int {
	vn, on := v.numericKind(), o.numericKind()
	switch {
	case vn && on:
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	case vn && !on:
		return -1
	case !vn && on:
		return 1
	}
	switch {
	case v.S < o.S:
		return -1
	case v.S > o.S:
		return 1
	default:
		return 0
	}
}

func (v Value) numericKind() bool {
	return v.Kind == catalog.Int || v.Kind == catalog.Float || v.Kind == catalog.Date
}

// Equal reports value equality under Compare semantics.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// String renders the value as a literal.
func (v Value) String() string {
	switch v.Kind {
	case catalog.Int, catalog.Date:
		return strconv.FormatInt(v.I, 10)
	case catalog.Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case catalog.String:
		return "'" + v.S + "'"
	default:
		return fmt.Sprintf("?%d", v.Kind)
	}
}

// Tuple is one row: a flat slice of values laid out per the owning schema.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}
