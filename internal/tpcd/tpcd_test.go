package tpcd

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/dag"
	"repro/internal/storage"
)

func TestCatalogShape(t *testing.T) {
	cat := NewCatalog(0.1, true)
	if len(cat.Tables()) != 8 {
		t.Fatalf("TPC-D has 8 tables, got %d", len(cat.Tables()))
	}
	if cat.MustTable("lineitem").Stats.Rows != 600000 {
		t.Errorf("lineitem at SF 0.1 should have 600000 rows, got %d",
			cat.MustTable("lineitem").Stats.Rows)
	}
	if cat.MustTable("region").Stats.Rows != 5 || cat.MustTable("nation").Stats.Rows != 25 {
		t.Errorf("region/nation are fixed-size")
	}
	if len(cat.ForeignKeys()) != 9 {
		t.Errorf("9 foreign keys expected, got %d", len(cat.ForeignKeys()))
	}
	for _, tb := range TableNames() {
		pk := cat.MustTable(tb).PrimaryKey
		if !cat.HasIndex(tb, pk[0]) {
			t.Errorf("PK index missing on %s", tb)
		}
	}
}

func TestCatalogWithoutIndexes(t *testing.T) {
	cat := NewCatalog(0.1, false)
	if len(cat.Indexes()) != 0 {
		t.Errorf("no indexes expected, got %v", cat.Indexes())
	}
}

func TestGenerateMatchesCatalogCounts(t *testing.T) {
	const sf = 0.001
	cat := NewCatalog(sf, true)
	db := Generate(cat, sf, 1)
	for _, tb := range TableNames() {
		want := cat.MustTable(tb).Stats.Rows
		got := int64(db.MustRelation(tb).Len())
		if got != want {
			t.Errorf("%s: generated %d rows, catalog says %d", tb, got, want)
		}
	}
}

func TestGeneratedForeignKeysResolve(t *testing.T) {
	const sf = 0.001
	cat := NewCatalog(sf, true)
	db := Generate(cat, sf, 2)
	// Every order's customer must exist.
	custs := map[string]bool{}
	for _, c := range db.MustRelation("customer").Rows() {
		custs[c[0].String()] = true
	}
	for _, o := range db.MustRelation("orders").Rows() {
		if !custs[o[1].String()] {
			t.Fatalf("order references missing customer %s", o[1])
		}
	}
}

func TestViewDefinitionsInsertIntoDAG(t *testing.T) {
	cat := NewCatalog(0.1, true)
	d := dag.New(cat)
	d.AddQuery("j4", ViewJoin4(cat))
	d.AddQuery("a4", ViewAgg4(cat))
	for _, v := range ViewSet5(cat, false) {
		d.AddQuery(v.Name, v.Def)
	}
	for _, v := range ViewSet5(cat, true) {
		d.AddQuery(v.Name+"_agg", v.Def)
	}
	before := len(d.Equivs)
	for _, v := range ViewSet10(cat) {
		d.AddQuery(v.Name+"_10", v.Def)
	}
	// ViewSet10 embeds ViewSet5: substantial unification expected.
	if len(d.Equivs) >= before*2 {
		t.Errorf("expected sharing between view sets: %d → %d equivs", before, len(d.Equivs))
	}
	d.ApplySubsumption()
}

func TestViewSetsShareSubexpressions(t *testing.T) {
	cat := NewCatalog(0.1, true)
	d := dag.New(cat)
	views := ViewSet5(cat, false)
	d.AddQuery(views[0].Name, views[0].Def)
	n1 := len(d.Equivs)
	d.AddQuery(views[1].Name, views[1].Def)
	n2 := len(d.Equivs)
	// Both share the lineitem⋈σ(orders) backbone; the second view must reuse
	// its leaves and the shared join subset.
	fresh := n2 - n1
	if fresh >= n1 {
		t.Errorf("no sharing between related views: %d then %d new", n1, fresh)
	}
}

func TestLogUniformUpdatesShape(t *testing.T) {
	const sf = 0.001
	cat := NewCatalog(sf, true)
	db := Generate(cat, sf, 3)
	LogUniformUpdates(cat, db, []string{"orders", "lineitem"}, 10, 4)
	o := db.Delta("orders")
	wantIns := int(float64(cat.MustTable("orders").Stats.Rows) * 0.10)
	if o.Plus.Len() != wantIns {
		t.Errorf("orders δ+: got %d want %d", o.Plus.Len(), wantIns)
	}
	if o.Minus.Len() != wantIns/2 {
		t.Errorf("orders δ−: got %d want %d", o.Minus.Len(), wantIns/2)
	}
	// Deletes must be distinct existing rows.
	seen := map[string]int{}
	for _, r := range o.Minus.Rows() {
		k := r[0].String()
		seen[k]++
		if seen[k] > 1 {
			t.Fatalf("duplicate delete of order %s", k)
		}
	}
	if !db.Delta("customer").Empty() {
		t.Errorf("customer delta should be untouched")
	}
}

func TestSynthesizedRowsMatchSchemas(t *testing.T) {
	const sf = 0.001
	cat := NewCatalog(sf, true)
	db := Generate(cat, sf, 5)
	LogUniformUpdates(cat, db, TableNames(), 5, 6)
	for _, tb := range TableNames() {
		d := db.Delta(tb)
		sch := algebra.TableSchema(cat.MustTable(tb), tb)
		for _, r := range d.Plus.Rows() {
			if len(r) != len(sch) {
				t.Fatalf("%s insert arity %d, schema %d", tb, len(r), len(sch))
			}
		}
	}
}

func TestAppliedUpdatesKeepFKResolvable(t *testing.T) {
	const sf = 0.001
	cat := NewCatalog(sf, true)
	db := Generate(cat, sf, 8)
	LogUniformUpdates(cat, db, []string{"lineitem"}, 10, 9)
	db.ApplyInserts("lineitem")
	db.ApplyDeletes("lineitem")
	orders := map[string]bool{}
	for _, o := range db.MustRelation("orders").Rows() {
		orders[o[0].String()] = true
	}
	for _, l := range db.MustRelation("lineitem").Rows() {
		if !orders[l[0].String()] {
			t.Fatalf("lineitem references missing order %s", l[0])
		}
	}
	_ = storage.EqualMultiset // keep storage import for clarity of intent
}
