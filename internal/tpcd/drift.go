package tpcd

import (
	"fmt"
	"math/rand"
)

// Seeded workload-drift generation. A drifting workload is a sequence of
// phases, each a weighted mix over a fixed pool of TPC-D query shapes; the
// hot subset rotates from phase to phase, modeling the traffic shifts the
// adaptive re-selection pipeline (core.Runtime.Adapt) is built for. The
// generator is a pure function of its seed, so property tests and the
// adaptive-serving benchmark replay identical drifts across runs and modes.

// DriftQuery is one weighted query of a phase: SQL in the viewdef subset,
// with Weight meaning executions per refresh cycle.
type DriftQuery struct {
	SQL    string
	Weight float64
}

// driftPool returns the query-shape pool the drift draws from: view-aligned
// shapes (the lineitem⋈orders backbone the benchmark views cover) and
// off-view shapes (partsupp/part/supplier-heavy), so rotating the hot set
// genuinely shifts what is worth materializing. Predicate constants vary
// with the rng, giving distinct-but-related shapes across seeds.
func driftPool(rng *rand.Rand) []string {
	date := int64(200 + rng.Intn(100))
	size := int64(5 + rng.Intn(10))
	return []string{
		fmt.Sprintf(`SELECT * FROM lineitem, orders
			WHERE lineitem.l_orderkey = orders.o_orderkey AND orders.o_orderdate < %d`, date),
		fmt.Sprintf(`SELECT customer.c_nationkey, SUM(lineitem.l_extendedprice) AS revenue, COUNT(*)
			FROM lineitem, orders, customer
			WHERE lineitem.l_orderkey = orders.o_orderkey
			  AND orders.o_custkey = customer.c_custkey AND orders.o_orderdate < %d
			GROUP BY customer.c_nationkey`, date),
		fmt.Sprintf(`SELECT orders.o_orderdate, COUNT(*)
			FROM lineitem, orders
			WHERE lineitem.l_orderkey = orders.o_orderkey AND orders.o_orderdate < %d
			GROUP BY orders.o_orderdate`, date),
		`SELECT * FROM partsupp, supplier
			WHERE partsupp.ps_suppkey = supplier.s_suppkey`,
		fmt.Sprintf(`SELECT part.p_type, SUM(partsupp.ps_supplycost) AS cost, COUNT(*)
			FROM partsupp, part
			WHERE partsupp.ps_partkey = part.p_partkey AND part.p_size < %d
			GROUP BY part.p_type`, size),
		`SELECT supplier.s_nationkey, SUM(partsupp.ps_supplycost) AS cost, COUNT(*)
			FROM partsupp, supplier
			WHERE partsupp.ps_suppkey = supplier.s_suppkey
			GROUP BY supplier.s_nationkey`,
		`SELECT supplier.s_nationkey, COUNT(*) FROM supplier GROUP BY supplier.s_nationkey`,
		fmt.Sprintf(`SELECT * FROM customer WHERE customer.c_mktsegment = %d`, rng.Intn(5)),
	}
}

// DriftServeMix returns the two-phase drift the adaptive-serving benchmark
// uses: phase 0 is hot on the view-aligned shapes (the lineitem⋈orders
// backbone the benchmark views cover — the workload a static selection is
// tuned for), then traffic drifts to the partsupp-heavy shapes, which are
// expensive to answer cold and covered by nothing the initial plan stores.
// This is the adversarial-for-static drift: re-selection must notice the
// new hot set and move the stored boundary to keep throughput. Weights and
// predicate constants still vary with the seed; only the hot-set rotation
// is pinned. (DriftPhases below rotates arbitrarily instead, including
// drifts toward cheap shapes where adaptation rightly buys little — the
// property tests use it to cover that full space.)
func DriftServeMix(seed int64) [][]DriftQuery {
	rng := rand.New(rand.NewSource(seed))
	pool := driftPool(rng)
	hotSets := [][]int{{0, 1, 2}, {3, 4, 5}}
	out := make([][]DriftQuery, len(hotSets))
	for p, hotIdx := range hotSets {
		hot := map[int]bool{}
		for _, i := range hotIdx {
			hot[i] = true
		}
		var phase []DriftQuery
		for i, sql := range pool {
			w := float64(1 + rng.Intn(2))
			if hot[i] {
				w = float64(20 + rng.Intn(41))
			}
			phase = append(phase, DriftQuery{SQL: sql, Weight: w})
		}
		out[p] = phase
	}
	return out
}

// DriftPhases generates a seeded drifting workload of the given number of
// phases. Each phase marks a rotating subset of the pool as hot (high
// weight) and the rest as cold; consecutive phases shift the hot window, so
// any two adjacent phases disagree on what dominates. Weights are drawn
// per-phase: hot shapes 20–60 executions per cycle, cold shapes 0–2 (0
// drops the shape from the phase).
func DriftPhases(seed int64, phases int) [][]DriftQuery {
	rng := rand.New(rand.NewSource(seed))
	pool := driftPool(rng)
	hotN := 2 + rng.Intn(2) // 2–3 hot shapes per phase
	out := make([][]DriftQuery, phases)
	start := rng.Intn(len(pool))
	for p := 0; p < phases; p++ {
		// Rotate the hot window by hotN each phase so hot sets are disjoint
		// between adjacent phases (pool is larger than 2·hotN).
		hot := map[int]bool{}
		for i := 0; i < hotN; i++ {
			hot[(start+p*hotN+i)%len(pool)] = true
		}
		var phase []DriftQuery
		for i, sql := range pool {
			var w float64
			if hot[i] {
				w = float64(20 + rng.Intn(41))
			} else {
				w = float64(rng.Intn(3))
			}
			if w > 0 {
				phase = append(phase, DriftQuery{SQL: sql, Weight: w})
			}
		}
		out[p] = phase
	}
	return out
}
