package tpcd

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/viewdef"
)

func TestDriftPhasesDeterministicAndParseable(t *testing.T) {
	cat := NewCatalog(0.01, true)
	a := DriftPhases(7, 3)
	b := DriftPhases(7, 3)
	if len(a) != 3 {
		t.Fatalf("want 3 phases, got %d", len(a))
	}
	for p := range a {
		if len(a[p]) != len(b[p]) {
			t.Fatalf("phase %d not deterministic", p)
		}
		for i := range a[p] {
			if a[p][i] != b[p][i] {
				t.Fatalf("phase %d query %d differs across identical seeds", p, i)
			}
			if _, err := viewdef.Parse(cat, a[p][i].SQL); err != nil {
				t.Errorf("phase %d query %d does not parse: %v\n%s", p, i, err, a[p][i].SQL)
			}
			if a[p][i].Weight <= 0 {
				t.Errorf("phase %d query %d has non-positive weight", p, i)
			}
		}
	}
}

func TestDriftPhasesActuallyDrift(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		phases := DriftPhases(seed, 2)
		hot := func(p []DriftQuery) map[string]bool {
			out := map[string]bool{}
			for _, q := range p {
				if q.Weight >= 20 {
					out[q.SQL] = true
				}
			}
			return out
		}
		h0, h1 := hot(phases[0]), hot(phases[1])
		if len(h0) == 0 || len(h1) == 0 {
			t.Fatalf("seed %d: each phase needs hot queries", seed)
		}
		for sql := range h1 {
			if h0[sql] {
				t.Errorf("seed %d: hot sets of adjacent phases overlap", seed)
			}
		}
	}
}

func TestDriftServeMixShape(t *testing.T) {
	cat := NewCatalog(0.01, true)
	for seed := int64(1); seed <= 4; seed++ {
		phases := DriftServeMix(seed)
		if len(phases) != 2 {
			t.Fatalf("seed %d: want 2 phases, got %d", seed, len(phases))
		}
		hot := func(p []DriftQuery) map[string]bool {
			out := map[string]bool{}
			for _, q := range p {
				if q.Weight >= 20 {
					out[q.SQL] = true
				}
			}
			return out
		}
		h0, h1 := hot(phases[0]), hot(phases[1])
		if len(h0) != 3 || len(h1) != 3 {
			t.Fatalf("seed %d: want 3 hot shapes per phase, got %d/%d", seed, len(h0), len(h1))
		}
		for sql := range h1 {
			if h0[sql] {
				t.Errorf("seed %d: serve-mix hot sets must be disjoint", seed)
			}
			// The drifted-to hot set is the partsupp-heavy half of the pool.
			if !strings.Contains(sql, "partsupp") {
				t.Errorf("seed %d: phase-1 hot shape is not partsupp-heavy:\n%s", seed, sql)
			}
		}
		for _, p := range phases {
			for _, q := range p {
				if _, err := viewdef.Parse(cat, q.SQL); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
				if q.Weight <= 0 {
					t.Errorf("seed %d: non-positive weight", seed)
				}
			}
		}
	}
}

// DriftServeMix feeds benchmark serving mixes; two calls with the same seed
// must be deep-equal or same-seed benchmark runs are not comparable. (The
// workload generators take explicit seeds precisely so runs are repeatable —
// this pins the contract for the serve mix specifically.)
func TestDriftServeMixDeterministic(t *testing.T) {
	for seed := int64(0); seed <= 5; seed++ {
		a, b := DriftServeMix(seed), DriftServeMix(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: DriftServeMix not deterministic across calls", seed)
		}
	}
	if reflect.DeepEqual(DriftServeMix(1), DriftServeMix(2)) {
		t.Fatal("distinct seeds produced identical mixes; seed is ignored")
	}
}
