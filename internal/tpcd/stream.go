package tpcd

import (
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/ingest"
	"repro/internal/storage"
)

// UpdateStream emits the exact op sequence of one LogUniformUpdates batch —
// per relation, nIns fresh-key inserts then nDel deletes of existing rows —
// one op at a time, so a producer can feed the bounded ingest queue instead
// of staging a pre-built batch. Draw-for-draw identical to
// LogUniformUpdates(cat, db, rels, pct, seed) over the same database state:
// the same rng consumption order, the same fresh-key range, the same delete
// sampling (see TestUpdateStreamMatchesLogUniform).
//
// The database must not change while the stream is drained — hand it a
// snapshot's database (storage.Snapshot.Database()) when refreshes run
// concurrently; its relations are immutable, so delete candidates stay
// valid however far the live state has moved on.
type UpdateStream struct {
	cat  *catalog.Catalog
	db   *storage.Database
	rels []string
	pct  float64

	rng     *rand.Rand
	nextKey int64

	relIdx  int
	cur     *storage.Relation
	nIns    int
	insDone int
	nDel    int
	delDone int
	perm    []int
}

// NewUpdateStream starts a streaming update batch. Distinct batches over one
// database must use distinct seeds (fresh-key ranges are per-seed, exactly
// as in LogUniformUpdates).
func NewUpdateStream(cat *catalog.Catalog, db *storage.Database, rels []string, pct float64, seed int64) *UpdateStream {
	s := &UpdateStream{
		cat: cat, db: db, rels: rels, pct: pct,
		rng:     rand.New(rand.NewSource(seed)),
		nextKey: syntheticKeyBase(seed),
		relIdx:  -1,
	}
	s.advanceRel()
	return s
}

// advanceRel enters the next relation's insert phase.
func (s *UpdateStream) advanceRel() {
	s.relIdx++
	if s.relIdx >= len(s.rels) {
		s.cur = nil
		return
	}
	s.cur = s.db.MustRelation(s.rels[s.relIdx])
	s.nIns = int(float64(s.cur.Len()) * s.pct / 100)
	s.nDel = s.nIns / 2
	s.insDone, s.delDone, s.perm = 0, 0, nil
}

// Next returns the next op of the batch; ok is false once the batch is
// exhausted.
func (s *UpdateStream) Next() (op ingest.Op, ok bool) {
	for s.cur != nil {
		name := s.rels[s.relIdx]
		if s.insDone < s.nIns {
			s.insDone++
			return ingest.Op{Rel: name, Tuple: synthesizeRow(s.cat, name, s.rng, &s.nextKey)}, true
		}
		if s.perm == nil {
			// LogUniformUpdates draws the permutation after the relation's
			// inserts even when nDel ends up 0; consume the rng identically.
			s.perm = s.rng.Perm(s.cur.Len())
			if s.nDel > s.cur.Len() {
				s.nDel = s.cur.Len()
			}
		}
		if s.delDone < s.nDel {
			t := s.cur.Rows()[s.perm[s.delDone]].Clone()
			s.delDone++
			return ingest.Op{Rel: name, Del: true, Tuple: t}, true
		}
		s.advanceRel()
	}
	return ingest.Op{}, false
}

// Remaining returns how many ops the stream has left.
func (s *UpdateStream) Remaining() int {
	if s.cur == nil {
		return 0
	}
	n := (s.nIns - s.insDone) + (s.nDel - s.delDone)
	for i := s.relIdx + 1; i < len(s.rels); i++ {
		ni := int(float64(s.db.MustRelation(s.rels[i]).Len()) * s.pct / 100)
		n += ni + ni/2
	}
	return n
}
