package tpcd

import (
	"repro/internal/algebra"
	"repro/internal/catalog"
)

// NamedView pairs a view name with its definition.
type NamedView struct {
	Name string
	Def  algebra.Node
}

// cmpLT builds column < int-constant.
func cmpLT(col string, v int64) algebra.Cmp {
	return algebra.CmpConst(col, algebra.LT, algebra.NewInt(v))
}

// cmpEQ builds column = int-constant.
func cmpEQ(col string, v int64) algebra.Cmp {
	return algebra.CmpConst(col, algebra.EQ, algebra.NewInt(v))
}

// loBase is the shared backbone of the benchmark views: lineitem ⋈ orders
// restricted to a recent order-date window. dateLimit controls how selective
// the view is (the paper's views are TPC-D query variants with selective
// predicates).
func loBase(cat *catalog.Catalog, dateLimit int64) algebra.Node {
	return algebra.NewSelect(
		algebra.And(cmpLT("orders.o_orderdate", dateLimit)),
		algebra.NewJoin(algebra.And(algebra.Eq("lineitem.l_orderkey", "orders.o_orderkey")),
			algebra.NewScan(cat, "lineitem"), algebra.NewScan(cat, "orders")))
}

// ViewJoin4 is the stand-alone benchmark view of Figure 3(a): a join of four
// TPC-D relations (lineitem ⋈ orders ⋈ customer ⋈ nation) with a selective
// date window.
func ViewJoin4(cat *catalog.Catalog) algebra.Node {
	return algebra.NewJoin(algebra.And(algebra.Eq("customer.c_nationkey", "nation.n_nationkey")),
		algebra.NewJoin(algebra.And(algebra.Eq("orders.o_custkey", "customer.c_custkey")),
			loBase(cat, Days/10), algebra.NewScan(cat, "customer")),
		algebra.NewScan(cat, "nation"))
}

// ViewAgg4 is Figure 3(b): the same four-relation join with aggregation on
// top (revenue per nation).
func ViewAgg4(cat *catalog.Catalog) algebra.Node {
	return algebra.NewAggregate(
		[]algebra.ColRef{algebra.C("nation.n_nationkey")},
		[]algebra.AggSpec{
			{Func: algebra.Sum, Col: algebra.C("lineitem.l_extendedprice"), As: "revenue"},
			{Func: algebra.Count, As: "cnt"},
		},
		ViewJoin4(cat).(*algebra.Join))
}

// ViewSet5 is the Figure 4 workload: five related views sharing the
// lineitem⋈orders backbone with overlapping date windows (so subsumption and
// common-subexpression sharing both arise). With withAgg set, each view
// aggregates (Figure 4(b)); otherwise the joins are materialized directly
// (Figure 4(a)).
func ViewSet5(cat *catalog.Catalog, withAgg bool) []NamedView {
	d := int64(Days / 10)
	customerV := algebra.NewJoin(algebra.And(algebra.Eq("orders.o_custkey", "customer.c_custkey")),
		loBase(cat, d), algebra.NewScan(cat, "customer"))
	partV := algebra.NewJoin(algebra.And(algebra.Eq("lineitem.l_partkey", "part.p_partkey")),
		loBase(cat, d), algebra.NewSelect(algebra.And(cmpLT("part.p_size", 10)),
			algebra.NewScan(cat, "part")))
	// The supplier view intentionally has NO date restriction: its
	// lineitem⋈orders input exceeds the small buffer configuration, which is
	// what produces the paper's buffer-size effect (§7.2) and the cost jump
	// in Figure 4 ("the use of an algorithm that depends on an input fitting
	// in memory").
	suppV := algebra.NewJoin(algebra.And(algebra.Eq("lineitem.l_suppkey", "supplier.s_suppkey")),
		algebra.NewJoin(algebra.And(algebra.Eq("lineitem.l_orderkey", "orders.o_orderkey")),
			algebra.NewScan(cat, "lineitem"), algebra.NewScan(cat, "orders")),
		algebra.NewScan(cat, "supplier"))
	nationV := algebra.NewJoin(algebra.And(algebra.Eq("customer.c_nationkey", "nation.n_nationkey")),
		algebra.NewJoin(algebra.And(algebra.Eq("orders.o_custkey", "customer.c_custkey")),
			loBase(cat, d),
			algebra.NewSelect(algebra.And(cmpEQ("customer.c_mktsegment", 1)),
				algebra.NewScan(cat, "customer"))),
		algebra.NewScan(cat, "nation"))
	narrowV := algebra.NewSelect(algebra.And(cmpLT("lineitem.l_shipdate", d)),
		loBase(cat, d).(*algebra.Select))

	if !withAgg {
		return []NamedView{
			{Name: "cust_orders", Def: customerV},
			{Name: "part_orders", Def: partV},
			{Name: "supp_orders", Def: suppV},
			{Name: "nation_orders", Def: nationV},
			{Name: "recent_lineitems", Def: narrowV},
		}
	}
	agg := func(group string, in algebra.Node) algebra.Node {
		return algebra.NewAggregate(
			[]algebra.ColRef{algebra.C(group)},
			[]algebra.AggSpec{
				{Func: algebra.Sum, Col: algebra.C("lineitem.l_extendedprice"), As: "revenue"},
				{Func: algebra.Count, As: "cnt"},
			}, in)
	}
	return []NamedView{
		{Name: "rev_by_custnation", Def: agg("customer.c_nationkey", customerV)},
		{Name: "rev_by_parttype", Def: agg("part.p_type", partV)},
		{Name: "rev_by_suppnation", Def: agg("supplier.s_nationkey", suppV)},
		{Name: "rev_by_nation", Def: agg("nation.n_nationkey", nationV)},
		{Name: "rev_by_orderdate", Def: agg("orders.o_orderdate", narrowV)},
	}
}

// ViewSet10 is the Figure 5 workload: ten materialized views, each a join of
// three to four TPC-D relations, with substantial pairwise overlap.
func ViewSet10(cat *catalog.Catalog) []NamedView {
	d := int64(Days / 10)
	out := ViewSet5(cat, false)
	// Five more views over partsupp and wider windows.
	psPart := algebra.NewJoin(algebra.And(algebra.Eq("partsupp.ps_partkey", "part.p_partkey")),
		algebra.NewScan(cat, "partsupp"),
		algebra.NewSelect(algebra.And(cmpLT("part.p_size", 10)), algebra.NewScan(cat, "part")))
	psSupp := algebra.NewJoin(algebra.And(algebra.Eq("partsupp.ps_suppkey", "supplier.s_suppkey")),
		algebra.NewScan(cat, "partsupp"), algebra.NewScan(cat, "supplier"))
	psSuppNation := algebra.NewJoin(algebra.And(algebra.Eq("supplier.s_nationkey", "nation.n_nationkey")),
		psSupp, algebra.NewScan(cat, "nation"))
	wideCust := algebra.NewJoin(algebra.And(algebra.Eq("orders.o_custkey", "customer.c_custkey")),
		loBase(cat, 2*d), algebra.NewScan(cat, "customer"))
	custNation := algebra.NewJoin(algebra.And(algebra.Eq("customer.c_nationkey", "nation.n_nationkey")),
		algebra.NewJoin(algebra.And(algebra.Eq("orders.o_custkey", "customer.c_custkey")),
			algebra.NewSelect(algebra.And(cmpLT("orders.o_orderdate", d)),
				algebra.NewScan(cat, "orders")),
			algebra.NewScan(cat, "customer")),
		algebra.NewScan(cat, "nation"))
	out = append(out,
		NamedView{Name: "ps_by_part", Def: psPart},
		NamedView{Name: "ps_by_supp", Def: psSupp},
		NamedView{Name: "ps_supp_nation", Def: psSuppNation},
		NamedView{Name: "wide_cust_orders", Def: wideCust},
		NamedView{Name: "cust_nation_orders", Def: custNation},
	)
	return out
}

// UpdatedRelations returns the relations receiving updates in the paper's
// experiments ("we assume that all relations are updated by the same
// percentage"). Region and nation are static dimension tables in TPC-D
// practice, but the paper updates everything; we follow the paper.
func UpdatedRelations() []string {
	return []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"}
}
