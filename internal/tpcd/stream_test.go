package tpcd

import (
	"reflect"
	"testing"
)

// The streaming generator must be draw-for-draw identical to the staged
// batch generator: the ops UpdateStream emits, partitioned into inserts and
// deletes per relation, must equal the δ+/δ− LogUniformUpdates stages on an
// identical database with the same seed — byte-identical tuples in the same
// order. This is what lets the durable ingest path and the staged refresh
// path be compared against each other at all.
func TestUpdateStreamMatchesLogUniform(t *testing.T) {
	const sf, pct = 0.002, 5.0
	rels := []string{"customer", "orders", "lineitem"}
	for _, seed := range []int64{3, 77, 1234} {
		cat := NewCatalog(sf, true)
		staged := Generate(cat, sf, 9)
		LogUniformUpdates(cat, staged, rels, pct, seed)

		streamed := Generate(cat, sf, 9) // identical contents, unmutated
		s := NewUpdateStream(cat, streamed, rels, pct, seed)
		ins := map[string][]interface{}{}
		del := map[string][]interface{}{}
		n := 0
		for {
			op, ok := s.Next()
			if !ok {
				break
			}
			if op.Del {
				del[op.Rel] = append(del[op.Rel], op.Tuple)
			} else {
				ins[op.Rel] = append(ins[op.Rel], op.Tuple)
			}
			n++
			if rem := s.Remaining(); rem < 0 {
				t.Fatalf("seed %d: negative Remaining %d", seed, rem)
			}
		}
		if n == 0 {
			t.Fatalf("seed %d: stream produced no ops", seed)
		}

		for _, name := range rels {
			d := staged.Delta(name)
			if got, want := len(ins[name]), d.Plus.Len(); got != want {
				t.Fatalf("seed %d %s: %d streamed inserts, want %d", seed, name, got, want)
			}
			for i, row := range d.Plus.Rows() {
				if !reflect.DeepEqual(ins[name][i], row) {
					t.Fatalf("seed %d %s: insert %d differs:\ngot  %v\nwant %v",
						seed, name, i, ins[name][i], row)
				}
			}
			if got, want := len(del[name]), d.Minus.Len(); got != want {
				t.Fatalf("seed %d %s: %d streamed deletes, want %d", seed, name, got, want)
			}
			for i, row := range d.Minus.Rows() {
				if !reflect.DeepEqual(del[name][i], row) {
					t.Fatalf("seed %d %s: delete %d differs", seed, name, i)
				}
			}
		}
	}
}
