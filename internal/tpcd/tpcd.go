// Package tpcd provides the TPC-D benchmark substrate the paper evaluates
// on (§7.1): the eight-table schema with statistics at a configurable scale
// factor (the paper uses 0.1 ≈ 100 MB), primary-key indexes, foreign keys, a
// row-level data generator for small scale factors (used by the execution
// tests — the paper itself had no execution engine), the benchmark view
// sets, and the update model (inserts of u% of each relation, deletes of
// u/2 %).
package tpcd

import (
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/storage"
)

// Days spans the 7-year TPC-D date range as integer day numbers.
const Days = 2556

// Rows per table at scale factor 1.0.
var sf1Rows = map[string]int64{
	"region":   5,
	"nation":   25,
	"supplier": 10_000,
	"customer": 150_000,
	"part":     200_000,
	"partsupp": 800_000,
	"orders":   1_500_000,
	"lineitem": 6_000_000,
}

// TableNames lists the schema in dependency (load) order.
func TableNames() []string {
	return []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"}
}

// scaled returns the row count of a table at a scale factor; region and
// nation are fixed-size per the TPC-D specification.
func scaled(name string, sf float64) int64 {
	base := sf1Rows[name]
	if name == "region" || name == "nation" {
		return base
	}
	n := int64(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

// NewCatalog builds the TPC-D catalog at the given scale factor, optionally
// declaring the primary-key indexes the paper assumes by default ("for each
// of the TPC-D relations, an index is present on the primary key").
func NewCatalog(sf float64, withPKIndexes bool) *catalog.Catalog {
	cat := catalog.New()
	rows := func(t string) int64 { return scaled(t, sf) }

	cat.AddTable(&catalog.Table{
		Name: "region",
		Columns: []catalog.Column{
			{Name: "r_regionkey", Type: catalog.Int, Width: 8},
			{Name: "r_name", Type: catalog.String, Width: 12},
		},
		PrimaryKey: []string{"r_regionkey"},
		Stats: catalog.TableStats{Rows: rows("region"), Columns: map[string]catalog.ColumnStats{
			"r_regionkey": {Distinct: 5, Min: 0, Max: 4},
		}},
	})
	cat.AddTable(&catalog.Table{
		Name: "nation",
		Columns: []catalog.Column{
			{Name: "n_nationkey", Type: catalog.Int, Width: 8},
			{Name: "n_name", Type: catalog.String, Width: 12},
			{Name: "n_regionkey", Type: catalog.Int, Width: 8},
		},
		PrimaryKey: []string{"n_nationkey"},
		Stats: catalog.TableStats{Rows: rows("nation"), Columns: map[string]catalog.ColumnStats{
			"n_nationkey": {Distinct: 25, Min: 0, Max: 24},
			"n_regionkey": {Distinct: 5, Min: 0, Max: 4},
		}},
	})
	// String "name" columns carry the full unmodeled payload of each TPC-D
	// row (address, phone, comment, …) in their width, so that per-table
	// volumes match the spec (~100 MB total at SF 0.1) and buffer-size
	// effects reproduce. The generator fills them with short values; only
	// the cost model reads the widths.
	cat.AddTable(&catalog.Table{
		Name: "supplier",
		Columns: []catalog.Column{
			{Name: "s_suppkey", Type: catalog.Int, Width: 8},
			{Name: "s_name", Type: catalog.String, Width: 120},
			{Name: "s_nationkey", Type: catalog.Int, Width: 8},
			{Name: "s_acctbal", Type: catalog.Float, Width: 8},
		},
		PrimaryKey: []string{"s_suppkey"},
		Stats: catalog.TableStats{Rows: rows("supplier"), Columns: map[string]catalog.ColumnStats{
			"s_suppkey":   {Distinct: rows("supplier"), Min: 1, Max: float64(rows("supplier"))},
			"s_nationkey": {Distinct: 25, Min: 0, Max: 24},
			"s_acctbal":   {Distinct: rows("supplier") / 2, Min: -999, Max: 9999},
		}},
	})
	cat.AddTable(&catalog.Table{
		Name: "customer",
		Columns: []catalog.Column{
			{Name: "c_custkey", Type: catalog.Int, Width: 8},
			{Name: "c_name", Type: catalog.String, Width: 140},
			{Name: "c_nationkey", Type: catalog.Int, Width: 8},
			{Name: "c_mktsegment", Type: catalog.Int, Width: 8},
			{Name: "c_acctbal", Type: catalog.Float, Width: 8},
		},
		PrimaryKey: []string{"c_custkey"},
		Stats: catalog.TableStats{Rows: rows("customer"), Columns: map[string]catalog.ColumnStats{
			"c_custkey":    {Distinct: rows("customer"), Min: 1, Max: float64(rows("customer"))},
			"c_nationkey":  {Distinct: 25, Min: 0, Max: 24},
			"c_mktsegment": {Distinct: 5, Min: 0, Max: 4},
			"c_acctbal":    {Distinct: rows("customer") / 2, Min: -999, Max: 9999},
		}},
	})
	cat.AddTable(&catalog.Table{
		Name: "part",
		Columns: []catalog.Column{
			{Name: "p_partkey", Type: catalog.Int, Width: 8},
			{Name: "p_name", Type: catalog.String, Width: 100},
			{Name: "p_type", Type: catalog.Int, Width: 8},
			{Name: "p_size", Type: catalog.Int, Width: 8},
			{Name: "p_retailprice", Type: catalog.Float, Width: 8},
		},
		PrimaryKey: []string{"p_partkey"},
		Stats: catalog.TableStats{Rows: rows("part"), Columns: map[string]catalog.ColumnStats{
			"p_partkey":     {Distinct: rows("part"), Min: 1, Max: float64(rows("part"))},
			"p_type":        {Distinct: 150, Min: 0, Max: 149},
			"p_size":        {Distinct: 50, Min: 1, Max: 50},
			"p_retailprice": {Distinct: rows("part") / 4, Min: 900, Max: 2100},
		}},
	})
	cat.AddTable(&catalog.Table{
		Name: "partsupp",
		Columns: []catalog.Column{
			{Name: "ps_partkey", Type: catalog.Int, Width: 8},
			{Name: "ps_suppkey", Type: catalog.Int, Width: 8},
			{Name: "ps_supplycost", Type: catalog.Float, Width: 8},
			{Name: "ps_availqty", Type: catalog.Int, Width: 8},
			{Name: "ps_comment", Type: catalog.String, Width: 120},
		},
		PrimaryKey: []string{"ps_partkey", "ps_suppkey"},
		Stats: catalog.TableStats{Rows: rows("partsupp"), Columns: map[string]catalog.ColumnStats{
			"ps_partkey":    {Distinct: rows("part"), Min: 1, Max: float64(rows("part"))},
			"ps_suppkey":    {Distinct: rows("supplier"), Min: 1, Max: float64(rows("supplier"))},
			"ps_supplycost": {Distinct: 1000, Min: 1, Max: 1000},
			"ps_availqty":   {Distinct: 9999, Min: 1, Max: 9999},
		}},
	})
	cat.AddTable(&catalog.Table{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_orderkey", Type: catalog.Int, Width: 8},
			{Name: "o_custkey", Type: catalog.Int, Width: 8},
			{Name: "o_orderstatus", Type: catalog.Int, Width: 8},
			{Name: "o_totalprice", Type: catalog.Float, Width: 8},
			{Name: "o_orderdate", Type: catalog.Date, Width: 8},
			{Name: "o_clerk", Type: catalog.String, Width: 70},
		},
		PrimaryKey: []string{"o_orderkey"},
		Stats: catalog.TableStats{Rows: rows("orders"), Columns: map[string]catalog.ColumnStats{
			"o_orderkey":    {Distinct: rows("orders"), Min: 1, Max: float64(rows("orders"))},
			"o_custkey":     {Distinct: rows("customer"), Min: 1, Max: float64(rows("customer"))},
			"o_orderstatus": {Distinct: 3, Min: 0, Max: 2},
			"o_totalprice":  {Distinct: rows("orders") / 2, Min: 800, Max: 500000},
			"o_orderdate":   {Distinct: Days, Min: 0, Max: Days - 1},
		}},
	})
	cat.AddTable(&catalog.Table{
		Name: "lineitem",
		Columns: []catalog.Column{
			{Name: "l_orderkey", Type: catalog.Int, Width: 8},
			{Name: "l_partkey", Type: catalog.Int, Width: 8},
			{Name: "l_suppkey", Type: catalog.Int, Width: 8},
			{Name: "l_quantity", Type: catalog.Float, Width: 8},
			{Name: "l_extendedprice", Type: catalog.Float, Width: 8},
			{Name: "l_discount", Type: catalog.Float, Width: 8},
			{Name: "l_shipdate", Type: catalog.Date, Width: 8},
			{Name: "l_comment", Type: catalog.String, Width: 60},
		},
		PrimaryKey: []string{"l_orderkey"},
		Stats: catalog.TableStats{Rows: rows("lineitem"), Columns: map[string]catalog.ColumnStats{
			"l_orderkey":      {Distinct: rows("orders"), Min: 1, Max: float64(rows("orders"))},
			"l_partkey":       {Distinct: rows("part"), Min: 1, Max: float64(rows("part"))},
			"l_suppkey":       {Distinct: rows("supplier"), Min: 1, Max: float64(rows("supplier"))},
			"l_quantity":      {Distinct: 50, Min: 1, Max: 50},
			"l_extendedprice": {Distinct: rows("lineitem") / 4, Min: 900, Max: 105000},
			"l_discount":      {Distinct: 11, Min: 0, Max: 10},
			"l_shipdate":      {Distinct: Days, Min: 0, Max: Days - 1},
		}},
	})

	for _, fk := range []catalog.ForeignKey{
		{Table: "nation", Columns: []string{"n_regionkey"}, RefTable: "region", RefColumns: []string{"r_regionkey"}},
		{Table: "supplier", Columns: []string{"s_nationkey"}, RefTable: "nation", RefColumns: []string{"n_nationkey"}},
		{Table: "customer", Columns: []string{"c_nationkey"}, RefTable: "nation", RefColumns: []string{"n_nationkey"}},
		{Table: "partsupp", Columns: []string{"ps_partkey"}, RefTable: "part", RefColumns: []string{"p_partkey"}},
		{Table: "partsupp", Columns: []string{"ps_suppkey"}, RefTable: "supplier", RefColumns: []string{"s_suppkey"}},
		{Table: "orders", Columns: []string{"o_custkey"}, RefTable: "customer", RefColumns: []string{"c_custkey"}},
		{Table: "lineitem", Columns: []string{"l_orderkey"}, RefTable: "orders", RefColumns: []string{"o_orderkey"}},
		{Table: "lineitem", Columns: []string{"l_partkey"}, RefTable: "part", RefColumns: []string{"p_partkey"}},
		{Table: "lineitem", Columns: []string{"l_suppkey"}, RefTable: "supplier", RefColumns: []string{"s_suppkey"}},
	} {
		cat.AddForeignKey(fk)
	}
	if withPKIndexes {
		for _, t := range TableNames() {
			cat.AddIndex(catalog.Index{
				Name: "pk_" + t, Table: t,
				Columns: cat.MustTable(t).PrimaryKey, Unique: true,
			})
		}
	}
	return cat
}

// Generate populates a database with synthetic rows matching the catalog
// statistics at the given scale factor. All monetary values are integral so
// incremental float arithmetic is exact under the execution engine.
func Generate(cat *catalog.Catalog, sf float64, seed int64) *storage.Database {
	rng := rand.New(rand.NewSource(seed))
	db := storage.NewDatabase()
	for _, name := range TableNames() {
		t := cat.MustTable(name)
		r := db.Create(name, algebra.TableSchema(t, name))
		// Pre-size the bulk load from the catalog's cardinality estimate so
		// the row slice does not regrow as the table fills.
		if t.Stats.Rows > 0 {
			r.Reserve(int(t.Stats.Rows))
		}
	}
	n := func(t string) int64 { return scaled(t, sf) }
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}

	for i := int64(0); i < n("region"); i++ {
		db.MustRelation("region").Insert(algebra.Tuple{
			algebra.NewInt(i), algebra.NewString("region-" + names[i%5])})
	}
	for i := int64(0); i < n("nation"); i++ {
		db.MustRelation("nation").Insert(algebra.Tuple{
			algebra.NewInt(i), algebra.NewString("nation-" + names[i%5]),
			algebra.NewInt(i % 5)})
	}
	for i := int64(1); i <= n("supplier"); i++ {
		db.MustRelation("supplier").Insert(algebra.Tuple{
			algebra.NewInt(i), algebra.NewString("supp"),
			algebra.NewInt(int64(rng.Intn(25))),
			algebra.NewFloat(float64(rng.Intn(10999) - 999))})
	}
	for i := int64(1); i <= n("customer"); i++ {
		db.MustRelation("customer").Insert(algebra.Tuple{
			algebra.NewInt(i), algebra.NewString("cust"),
			algebra.NewInt(int64(rng.Intn(25))),
			algebra.NewInt(int64(rng.Intn(5))),
			algebra.NewFloat(float64(rng.Intn(10999) - 999))})
	}
	for i := int64(1); i <= n("part"); i++ {
		db.MustRelation("part").Insert(algebra.Tuple{
			algebra.NewInt(i), algebra.NewString("part"),
			algebra.NewInt(int64(rng.Intn(150))),
			algebra.NewInt(int64(1 + rng.Intn(50))),
			algebra.NewFloat(float64(900 + rng.Intn(1200)))})
	}
	for i := int64(0); i < n("partsupp"); i++ {
		db.MustRelation("partsupp").Insert(algebra.Tuple{
			algebra.NewInt(1 + rng.Int63n(n("part"))),
			algebra.NewInt(1 + rng.Int63n(n("supplier"))),
			algebra.NewFloat(float64(1 + rng.Intn(1000))),
			algebra.NewInt(int64(1 + rng.Intn(9999))),
			algebra.NewString("ps")})
	}
	for i := int64(1); i <= n("orders"); i++ {
		db.MustRelation("orders").Insert(algebra.Tuple{
			algebra.NewInt(i),
			algebra.NewInt(1 + rng.Int63n(n("customer"))),
			algebra.NewInt(int64(rng.Intn(3))),
			algebra.NewFloat(float64(800 + rng.Intn(499200))),
			algebra.NewDate(int64(rng.Intn(Days))),
			algebra.NewString("clerk")})
	}
	for i := int64(0); i < n("lineitem"); i++ {
		db.MustRelation("lineitem").Insert(algebra.Tuple{
			algebra.NewInt(1 + rng.Int63n(n("orders"))),
			algebra.NewInt(1 + rng.Int63n(n("part"))),
			algebra.NewInt(1 + rng.Int63n(n("supplier"))),
			algebra.NewFloat(float64(1 + rng.Intn(50))),
			algebra.NewFloat(float64(900 + rng.Intn(104100))),
			algebra.NewFloat(float64(rng.Intn(11))),
			algebra.NewDate(int64(rng.Intn(Days))),
			algebra.NewString("li")})
	}
	return db
}

// LogUniformUpdates logs pct% inserts and pct/2 % deletes on every relation
// in rels, matching the paper's update model. The batch is a pure function
// of (database state, seed): inserted keys are drawn from a per-seed range,
// so identically built databases receiving the same seeds stay byte-
// identical across processes and runs — the property the parallel-refresh
// golden tests compare against. Distinct batches on one database must use
// distinct seeds, or their fresh keys would collide.
func LogUniformUpdates(cat *catalog.Catalog, db *storage.Database, rels []string, pct float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	nextKey := syntheticKeyBase(seed)
	for _, name := range rels {
		rel := db.MustRelation(name)
		nIns := int(float64(rel.Len()) * pct / 100)
		nDel := nIns / 2
		for j := 0; j < nIns; j++ {
			db.LogInsert(name, synthesizeRow(cat, name, rng, &nextKey))
		}
		perm := rng.Perm(rel.Len())
		if nDel > rel.Len() {
			nDel = rel.Len()
		}
		for j := 0; j < nDel; j++ {
			db.LogDelete(name, rel.Rows()[perm[j]].Clone())
		}
	}
}

// LogSkewedUpdates is LogUniformUpdates with foreign-key skew: inserted rows
// draw their foreign keys from only the lowest hotFrac of the referenced key
// space (hotFrac 1 degenerates to uniform), so join fan-out in the delta
// concentrates far above what uniform-distribution histogram estimates
// predict. This is the adversarial-for-the-estimator update stream the
// feedback-driven costing benchmark replays: the skew leaves base-table
// statistics (row counts, key ranges) almost unchanged while differential
// cardinalities drift, which only observed feedback can correct. Deletes stay
// uniform, as in LogUniformUpdates, and the batch remains a pure function of
// (database state, seed).
func LogSkewedUpdates(cat *catalog.Catalog, db *storage.Database, rels []string, pct, hotFrac float64, seed int64) {
	if hotFrac <= 0 || hotFrac > 1 {
		hotFrac = 1
	}
	rng := rand.New(rand.NewSource(seed))
	nextKey := syntheticKeyBase(seed)
	for _, name := range rels {
		rel := db.MustRelation(name)
		nIns := int(float64(rel.Len()) * pct / 100)
		nDel := nIns / 2
		for j := 0; j < nIns; j++ {
			db.LogInsert(name, synthesizeSkewedRow(cat, name, rng, &nextKey, hotFrac))
		}
		perm := rng.Perm(rel.Len())
		if nDel > rel.Len() {
			nDel = rel.Len()
		}
		for j := 0; j < nDel; j++ {
			db.LogDelete(name, rel.Rows()[perm[j]].Clone())
		}
	}
}

// hotKey draws a key from the lowest hotFrac of [1, n].
func hotKey(rng *rand.Rand, n int64, hotFrac float64) int64 {
	h := int64(float64(n) * hotFrac)
	if h < 1 {
		h = 1
	}
	return 1 + rng.Int63n(h)
}

// synthesizeSkewedRow is synthesizeRow with every foreign key drawn from the
// hot range; tables without foreign keys are synthesized as usual.
func synthesizeSkewedRow(cat *catalog.Catalog, name string, rng *rand.Rand, nextKey *int64, hotFrac float64) algebra.Tuple {
	switch name {
	case "partsupp":
		*nextKey++
		n := cat.MustTable("part").Stats.Rows
		return algebra.Tuple{algebra.NewInt(hotKey(rng, n, hotFrac)), algebra.NewInt(*nextKey),
			algebra.NewFloat(float64(1 + rng.Intn(1000))), algebra.NewInt(int64(1 + rng.Intn(9999))),
			algebra.NewString("ps")}
	case "orders":
		*nextKey++
		c := cat.MustTable("customer").Stats.Rows
		return algebra.Tuple{algebra.NewInt(*nextKey), algebra.NewInt(hotKey(rng, c, hotFrac)),
			algebra.NewInt(int64(rng.Intn(3))), algebra.NewFloat(float64(800 + rng.Intn(499200))),
			algebra.NewDate(int64(rng.Intn(Days))), algebra.NewString("clerk")}
	case "lineitem":
		o := cat.MustTable("orders").Stats.Rows
		p := cat.MustTable("part").Stats.Rows
		s := cat.MustTable("supplier").Stats.Rows
		return algebra.Tuple{algebra.NewInt(hotKey(rng, o, hotFrac)), algebra.NewInt(hotKey(rng, p, hotFrac)),
			algebra.NewInt(hotKey(rng, s, hotFrac)), algebra.NewFloat(float64(1 + rng.Intn(50))),
			algebra.NewFloat(float64(900 + rng.Intn(104100))), algebra.NewFloat(float64(rng.Intn(11))),
			algebra.NewDate(int64(rng.Intn(Days))), algebra.NewString("li")}
	default:
		return synthesizeRow(cat, name, rng, nextKey)
	}
}

// syntheticKeyBase maps a batch seed to the start of its fresh-key range,
// far above any generated key space. Ranges of distinct seeds are disjoint
// (up to 2^20 inserted rows per batch); unlike the process-global counter it
// replaces, the range depends only on the seed, keeping update batches
// reproducible run to run.
func syntheticKeyBase(seed int64) int64 {
	return 1<<40 + seed*(1<<20)
}

// synthesizeRow builds a plausible fresh row for a table, taking its key
// from the batch's counter.
func synthesizeRow(cat *catalog.Catalog, name string, rng *rand.Rand, nextKey *int64) algebra.Tuple {
	*nextKey++
	k := *nextKey
	switch name {
	case "region":
		return algebra.Tuple{algebra.NewInt(k), algebra.NewString("region-new")}
	case "nation":
		return algebra.Tuple{algebra.NewInt(k), algebra.NewString("nation-new"), algebra.NewInt(int64(rng.Intn(5)))}
	case "supplier":
		return algebra.Tuple{algebra.NewInt(k), algebra.NewString("supp"),
			algebra.NewInt(int64(rng.Intn(25))), algebra.NewFloat(float64(rng.Intn(10999) - 999))}
	case "customer":
		return algebra.Tuple{algebra.NewInt(k), algebra.NewString("cust"),
			algebra.NewInt(int64(rng.Intn(25))), algebra.NewInt(int64(rng.Intn(5))),
			algebra.NewFloat(float64(rng.Intn(10999) - 999))}
	case "part":
		return algebra.Tuple{algebra.NewInt(k), algebra.NewString("part"),
			algebra.NewInt(int64(rng.Intn(150))), algebra.NewInt(int64(1 + rng.Intn(50))),
			algebra.NewFloat(float64(900 + rng.Intn(1200)))}
	case "partsupp":
		n := cat.MustTable("part").Stats.Rows
		return algebra.Tuple{algebra.NewInt(1 + rng.Int63n(n)), algebra.NewInt(k),
			algebra.NewFloat(float64(1 + rng.Intn(1000))), algebra.NewInt(int64(1 + rng.Intn(9999))),
			algebra.NewString("ps")}
	case "orders":
		c := cat.MustTable("customer").Stats.Rows
		return algebra.Tuple{algebra.NewInt(k), algebra.NewInt(1 + rng.Int63n(c)),
			algebra.NewInt(int64(rng.Intn(3))), algebra.NewFloat(float64(800 + rng.Intn(499200))),
			algebra.NewDate(int64(rng.Intn(Days))), algebra.NewString("clerk")}
	case "lineitem":
		o := cat.MustTable("orders").Stats.Rows
		p := cat.MustTable("part").Stats.Rows
		s := cat.MustTable("supplier").Stats.Rows
		return algebra.Tuple{algebra.NewInt(1 + rng.Int63n(o)), algebra.NewInt(1 + rng.Int63n(p)),
			algebra.NewInt(1 + rng.Int63n(s)), algebra.NewFloat(float64(1 + rng.Intn(50))),
			algebra.NewFloat(float64(900 + rng.Intn(104100))), algebra.NewFloat(float64(rng.Intn(11))),
			algebra.NewDate(int64(rng.Intn(Days))), algebra.NewString("li")}
	default:
		panic("tpcd: unknown table " + name)
	}
}
