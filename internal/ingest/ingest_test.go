package ingest

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algebra"
)

func op(i int) Op {
	return Op{Rel: "r", Tuple: algebra.Tuple{algebra.NewInt(int64(i))}}
}

// The queue never holds more than Capacity ops: with no consumer, a Block
// producer must stop at the bound and a Shed producer must drop past it.
func TestQueueBoundsDepth(t *testing.T) {
	q := NewQueue(Config{Capacity: 8, Policy: Shed})
	for i := 0; i < 50; i++ {
		q.Enqueue(op(i))
	}
	if d := q.Depth(); d != 8 {
		t.Fatalf("depth %d, want 8", d)
	}
	st := q.Stats()
	if st.Enqueued != 8 || st.Shed != 42 {
		t.Fatalf("enqueued %d shed %d, want 8/42", st.Enqueued, st.Shed)
	}
	if st.Capacity != 8 {
		t.Fatalf("capacity %d, want 8", st.Capacity)
	}
}

// A Block producer parks when the queue is full and resumes as soon as the
// consumer drains a batch; nothing is ever dropped.
func TestBlockPolicyBackpressure(t *testing.T) {
	q := NewQueue(Config{Capacity: 4, MaxBatchRows: 4, MaxBatchWait: time.Millisecond, Policy: Block})
	const total = 32
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			if !q.Enqueue(op(i)) {
				t.Errorf("enqueue %d rejected under Block policy", i)
				return
			}
		}
	}()

	got := 0
	for got < total {
		if d := q.Depth(); d > 4 {
			t.Fatalf("depth %d exceeds capacity 4", d)
		}
		ops, _, ok := q.NextBatch()
		if !ok {
			t.Fatal("queue reported closed")
		}
		got += len(ops)
	}
	<-done
	if st := q.Stats(); st.Shed != 0 || st.Enqueued != total {
		t.Fatalf("stats %+v, want %d enqueued and 0 shed", st, total)
	}
}

// Micro-batch formation: a full queue yields MaxBatchRows-sized batches; a
// trickle is cut by MaxBatchWait instead of waiting for the size cap.
func TestNextBatchSizeAndTimeCuts(t *testing.T) {
	q := NewQueue(Config{Capacity: 64, MaxBatchRows: 8, MaxBatchWait: time.Hour})
	for i := 0; i < 20; i++ {
		q.Enqueue(op(i))
	}
	ops, oldest, ok := q.NextBatch()
	if !ok || len(ops) != 8 {
		t.Fatalf("got %d ops (ok=%v), want size-capped batch of 8", len(ops), ok)
	}
	if oldest.IsZero() {
		t.Fatal("oldest timestamp not set")
	}

	qt := NewQueue(Config{Capacity: 64, MaxBatchRows: 1024, MaxBatchWait: 5 * time.Millisecond})
	qt.Enqueue(op(0))
	start := time.Now()
	ops, _, ok = qt.NextBatch()
	if !ok || len(ops) != 1 {
		t.Fatalf("got %d ops (ok=%v), want time-cut batch of 1", len(ops), ok)
	}
	if time.Since(start) > time.Second {
		t.Fatal("time cut did not fire")
	}
}

// Close drains: ops enqueued before Close are still delivered, then NextBatch
// reports !ok, and Enqueue rejects.
func TestCloseDrainsThenStops(t *testing.T) {
	q := NewQueue(Config{Capacity: 16, MaxBatchRows: 100, MaxBatchWait: time.Millisecond})
	for i := 0; i < 5; i++ {
		q.Enqueue(op(i))
	}
	q.Close()
	if q.Enqueue(op(99)) {
		t.Fatal("enqueue accepted after Close")
	}
	ops, _, ok := q.NextBatch()
	if !ok || len(ops) != 5 {
		t.Fatalf("drain got %d ops (ok=%v), want 5", len(ops), ok)
	}
	if _, _, ok := q.NextBatch(); ok {
		t.Fatal("NextBatch ok after drain of closed queue")
	}
	// Blocked consumers wake on Close too.
	q2 := NewQueue(Config{Capacity: 4})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, ok := q2.NextBatch(); ok {
			t.Error("NextBatch ok on closed empty queue")
		}
	}()
	time.Sleep(2 * time.Millisecond)
	q2.Close()
	wg.Wait()
}

// Acceptance is a guarantee even across a racing Close: an op Enqueue
// returned true for must be drained before NextBatch reports exhaustion —
// a send that wins the select race against <-q.done must not be lost once
// the consumer has observed the queue empty. Run many rounds with Close
// landing mid-stream to exercise the window (and -race to check the
// barrier's ordering).
func TestCloseRaceNeverDropsAcceptedOps(t *testing.T) {
	for round := 0; round < 200; round++ {
		q := NewQueue(Config{Capacity: 4, MaxBatchRows: 8, MaxBatchWait: 50 * time.Microsecond})
		var accepted atomic.Int64
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; ; i++ {
					if !q.Enqueue(op(p*1_000_000 + i)) {
						return
					}
					accepted.Add(1)
				}
			}(p)
		}
		drained := 0
		consumed := make(chan struct{})
		go func() {
			defer close(consumed)
			for {
				ops, _, ok := q.NextBatch()
				if !ok {
					return
				}
				drained += len(ops)
			}
		}()
		time.Sleep(time.Duration(round%4) * 50 * time.Microsecond)
		q.Close()
		wg.Wait()
		<-consumed
		if int64(drained) != accepted.Load() {
			t.Fatalf("round %d: %d ops accepted, %d drained — accepted op lost at close",
				round, accepted.Load(), drained)
		}
	}
}
