// Package ingest provides the bounded streaming update queue that turns
// refresh into a continuous loop: producers enqueue single-tuple operations,
// the refresh writer drains them as micro-batches formed by size/time, and
// when the writer falls behind the bounded buffer pushes back — producers
// block or shed per policy instead of growing memory without limit.
package ingest

import (
	"sync/atomic"
	"time"

	"repro/internal/algebra"
)

// Op is one streamed update: insert (Del=false) or delete (Del=true) of one
// tuple in a base relation.
type Op struct {
	Rel   string
	Del   bool
	Tuple algebra.Tuple
}

// Policy says what Enqueue does when the queue is full.
type Policy int

const (
	// Block makes Enqueue wait for space: backpressure propagates to the
	// producer, bounding end-to-end memory.
	Block Policy = iota
	// Shed makes Enqueue drop the op and return false, for producers that
	// prefer losing updates to stalling (the shed count is exposed).
	Shed
)

// Config sizes the queue and the micro-batches drained from it.
type Config struct {
	// Capacity bounds the queued op count (default 8192). Enqueue never
	// grows past it: producers block or shed instead.
	Capacity int
	// MaxBatchRows caps ops per drained micro-batch (default 2048).
	MaxBatchRows int
	// MaxBatchWait caps how long NextBatch lingers for more ops after the
	// first (default 2ms). Smaller = fresher epochs, more refresh cycles.
	MaxBatchWait time.Duration
	// Policy is the full-queue behavior (default Block).
	Policy Policy
}

func (c Config) withDefaults() Config {
	if c.Capacity == 0 {
		c.Capacity = 8192
	}
	if c.MaxBatchRows == 0 {
		c.MaxBatchRows = 2048
	}
	if c.MaxBatchWait == 0 {
		c.MaxBatchWait = 2 * time.Millisecond
	}
	return c
}

// Stats counts queue activity.
type Stats struct {
	// Enqueued is the number of accepted ops.
	Enqueued int64
	// Shed is the number of ops dropped by the Shed policy.
	Shed int64
	// Depth is the current queued op count.
	Depth int
	// Capacity echoes the configured bound.
	Capacity int
}

// item timestamps an op at admission, for staleness accounting downstream.
type item struct {
	op Op
	at time.Time
}

// Queue is the bounded op buffer between producers and the refresh writer.
// Any number of goroutines may Enqueue; one consumer calls NextBatch.
type Queue struct {
	cfg      Config
	ch       chan item
	done     chan struct{}
	enqueued atomic.Int64
	shed     atomic.Int64
	closed   atomic.Bool
}

// NewQueue builds a queue.
func NewQueue(cfg Config) *Queue {
	cfg = cfg.withDefaults()
	return &Queue{cfg: cfg, ch: make(chan item, cfg.Capacity), done: make(chan struct{})}
}

// Config returns the effective (defaulted) configuration.
func (q *Queue) Config() Config { return q.cfg }

// Enqueue admits one op, reporting whether it was accepted. Under Block it
// waits for space (returning false only once the queue is closed); under
// Shed it drops immediately when full.
func (q *Queue) Enqueue(op Op) bool {
	// Checked up front AND raced below: the select picks uniformly among
	// ready cases, so with free buffer space the send could win against
	// <-q.done after Close without this guard.
	if q.closed.Load() {
		return false
	}
	it := item{op: op, at: time.Now()}
	if q.cfg.Policy == Shed {
		select {
		case q.ch <- it:
			q.enqueued.Add(1)
			return true
		case <-q.done:
			return false
		default:
			q.shed.Add(1)
			return false
		}
	}
	select {
	case q.ch <- it:
		q.enqueued.Add(1)
		return true
	case <-q.done:
		return false
	}
}

// Close stops admission and unblocks producers. NextBatch keeps draining
// what is already queued, then reports exhaustion.
func (q *Queue) Close() {
	if q.closed.CompareAndSwap(false, true) {
		close(q.done)
	}
}

// Depth returns the current queued op count.
func (q *Queue) Depth() int { return len(q.ch) }

// Stats returns a copy of the counters.
func (q *Queue) Stats() Stats {
	return Stats{
		Enqueued: q.enqueued.Load(),
		Shed:     q.shed.Load(),
		Depth:    len(q.ch),
		Capacity: q.cfg.Capacity,
	}
}

// NextBatch blocks for the first available op, then collects more until
// MaxBatchRows ops are gathered or MaxBatchWait elapses, whichever is first.
// oldest is the admission time of the batch's oldest op (the staleness
// anchor). ok is false only when the queue is closed and fully drained.
func (q *Queue) NextBatch() (ops []Op, oldest time.Time, ok bool) {
	var first item
	select {
	case first = <-q.ch:
	case <-q.done:
		// Closed: drain leftovers without waiting.
		select {
		case first = <-q.ch:
		default:
			return nil, time.Time{}, false
		}
	}
	ops = append(ops, first.op)
	oldest = first.at

	timer := time.NewTimer(q.cfg.MaxBatchWait)
	defer timer.Stop()
	for len(ops) < q.cfg.MaxBatchRows {
		select {
		case it := <-q.ch:
			ops = append(ops, it.op)
		case <-timer.C:
			return ops, oldest, true
		case <-q.done:
			for len(ops) < q.cfg.MaxBatchRows {
				select {
				case it := <-q.ch:
					ops = append(ops, it.op)
				default:
					return ops, oldest, true
				}
			}
			return ops, oldest, true
		}
	}
	return ops, oldest, true
}
