// Package ingest provides the bounded streaming update queue that turns
// refresh into a continuous loop: producers enqueue single-tuple operations,
// the refresh writer drains them as micro-batches formed by size/time, and
// when the writer falls behind the bounded buffer pushes back — producers
// block or shed per policy instead of growing memory without limit.
package ingest

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
)

// Op is one streamed update: insert (Del=false) or delete (Del=true) of one
// tuple in a base relation.
type Op struct {
	Rel   string
	Del   bool
	Tuple algebra.Tuple
}

// Policy says what Enqueue does when the queue is full.
type Policy int

const (
	// Block makes Enqueue wait for space: backpressure propagates to the
	// producer, bounding end-to-end memory.
	Block Policy = iota
	// Shed makes Enqueue drop the op and return false, for producers that
	// prefer losing updates to stalling (the shed count is exposed).
	Shed
)

// Config sizes the queue and the micro-batches drained from it.
type Config struct {
	// Capacity bounds the queued op count (default 8192). Enqueue never
	// grows past it: producers block or shed instead.
	Capacity int
	// MaxBatchRows caps ops per drained micro-batch (default 2048).
	MaxBatchRows int
	// MaxBatchWait caps how long NextBatch lingers for more ops after the
	// first (default 2ms). Smaller = fresher epochs, more refresh cycles.
	MaxBatchWait time.Duration
	// Policy is the full-queue behavior (default Block).
	Policy Policy
}

func (c Config) withDefaults() Config {
	if c.Capacity == 0 {
		c.Capacity = 8192
	}
	if c.MaxBatchRows == 0 {
		c.MaxBatchRows = 2048
	}
	if c.MaxBatchWait == 0 {
		c.MaxBatchWait = 2 * time.Millisecond
	}
	return c
}

// Stats counts queue activity.
type Stats struct {
	// Enqueued is the number of accepted ops.
	Enqueued int64
	// Shed is the number of ops dropped by the Shed policy.
	Shed int64
	// Depth is the current queued op count.
	Depth int
	// Capacity echoes the configured bound.
	Capacity int
}

// item timestamps an op at admission, for staleness accounting downstream.
type item struct {
	op Op
	at time.Time
}

// Queue is the bounded op buffer between producers and the refresh writer.
// Any number of goroutines may Enqueue; one consumer calls NextBatch.
type Queue struct {
	cfg  Config
	ch   chan item
	done chan struct{}
	// mu orders producer sends against the consumer's exhaustion check:
	// Enqueue holds it shared across its closed-check and send, and
	// NextBatch takes it exclusively (an empty critical section — a pure
	// barrier) after observing done closed, before the final drain. Close
	// never takes it, so closing always unblocks producers promptly.
	mu       sync.RWMutex
	enqueued atomic.Int64
	shed     atomic.Int64
	closed   atomic.Bool
}

// NewQueue builds a queue.
func NewQueue(cfg Config) *Queue {
	cfg = cfg.withDefaults()
	return &Queue{cfg: cfg, ch: make(chan item, cfg.Capacity), done: make(chan struct{})}
}

// Config returns the effective (defaulted) configuration.
func (q *Queue) Config() Config { return q.cfg }

// Enqueue admits one op, reporting whether it was accepted. Under Block it
// waits for space (returning false only once the queue is closed); under
// Shed it drops immediately when full. Acceptance is a guarantee: an op
// Enqueue returns true for will be drained by NextBatch, even when the
// accept races with Close — the consumer's exhaustion barrier waits out
// every in-flight send before declaring the queue drained.
func (q *Queue) Enqueue(op Op) bool {
	// The read lock spans the closed check and the send. A send can still
	// win the select race against <-q.done after Close (select picks
	// uniformly among ready cases), but it does so while holding the lock,
	// so NextBatch's exhaustion barrier observes it; blocking in the select
	// while holding the lock is safe because Close closes done without
	// taking the lock.
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed.Load() {
		return false
	}
	it := item{op: op, at: time.Now()}
	if q.cfg.Policy == Shed {
		select {
		case q.ch <- it:
			q.enqueued.Add(1)
			return true
		case <-q.done:
			return false
		default:
			q.shed.Add(1)
			return false
		}
	}
	select {
	case q.ch <- it:
		q.enqueued.Add(1)
		return true
	case <-q.done:
		return false
	}
}

// Close stops admission and unblocks producers. NextBatch keeps draining
// what is already queued (including sends that raced with Close and won),
// then reports exhaustion.
func (q *Queue) Close() {
	if q.closed.CompareAndSwap(false, true) {
		close(q.done)
	}
}

// Closed reports whether Close has been called.
func (q *Queue) Closed() bool { return q.closed.Load() }

// Depth returns the current queued op count.
func (q *Queue) Depth() int { return len(q.ch) }

// Stats returns a copy of the counters.
func (q *Queue) Stats() Stats {
	return Stats{
		Enqueued: q.enqueued.Load(),
		Shed:     q.shed.Load(),
		Depth:    len(q.ch),
		Capacity: q.cfg.Capacity,
	}
}

// NextBatch blocks for the first available op, then collects more until
// MaxBatchRows ops are gathered or MaxBatchWait elapses, whichever is first.
// oldest is the admission time of the batch's oldest op (the staleness
// anchor). ok is false only when the queue is closed and fully drained.
func (q *Queue) NextBatch() (ops []Op, oldest time.Time, ok bool) {
	var first item
	select {
	case first = <-q.ch:
	case <-q.done:
		// Closed. Barrier first: every in-flight Enqueue resolves promptly
		// now that done is closed, and taking the write lock waits them all
		// out — so the drain below sees every send that will ever succeed,
		// and empty really means exhausted.
		q.mu.Lock()
		//lint:ignore SA2001 empty critical section is the barrier
		q.mu.Unlock()
		select {
		case first = <-q.ch:
		default:
			return nil, time.Time{}, false
		}
	}
	ops = append(ops, first.op)
	oldest = first.at

	timer := time.NewTimer(q.cfg.MaxBatchWait)
	defer timer.Stop()
	for len(ops) < q.cfg.MaxBatchRows {
		select {
		case it := <-q.ch:
			ops = append(ops, it.op)
		case <-timer.C:
			return ops, oldest, true
		case <-q.done:
			for len(ops) < q.cfg.MaxBatchRows {
				select {
				case it := <-q.ch:
					ops = append(ops, it.op)
				default:
					return ops, oldest, true
				}
			}
			return ops, oldest, true
		}
	}
	return ops, oldest, true
}
