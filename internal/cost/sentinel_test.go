package cost

// Regression tests for the computed-column Distinct sentinel. Distinct
// returns math.MaxFloat64 for columns whose relation is not in the catalog
// (aggregate outputs joined as subexpression results). The sentinel used to
// leak into selectivity products — 1/max(d_known, MaxFloat64) collapses a
// join's selectivity to ~0, pricing any plan through such a join as free and
// letting the optimizer pick it regardless of its true cost.

import (
	"math"
	"testing"

	"repro/internal/algebra"
)

func TestDistinctSentinelForComputedColumn(t *testing.T) {
	e := NewEstimator(estCatalog())
	if d := e.Distinct("agg.total_price", nil); d != math.MaxFloat64 {
		t.Fatalf("computed column should report the sentinel, got %g", d)
	}
	if knownDistinct(math.MaxFloat64) {
		t.Fatal("sentinel must not count as a usable distinct count")
	}
	if !knownDistinct(42) {
		t.Fatal("ordinary distinct counts must count as usable")
	}
}

// TestJoinOnAggregateOutputUsesKnownSide: an equi-join between an aggregate
// output and a catalogued key must price as 1/distinct of the known side —
// the sentinel must neither win max() (selectivity ~0) nor force the default.
func TestJoinOnAggregateOutputUsesKnownSide(t *testing.T) {
	e := NewEstimator(estCatalog())
	sel := e.Selectivity(algebra.Eq("agg.c_custkey", "customer.c_custkey"), nil)
	if math.Abs(sel-0.001) > 1e-9 {
		t.Fatalf("computed⋈known join should use the known side's 1/1000, got %g", sel)
	}
	sel = e.Selectivity(algebra.Eq("customer.c_custkey", "agg.c_custkey"), nil)
	if math.Abs(sel-0.001) > 1e-9 {
		t.Fatalf("known⋈computed join (flipped) should match, got %g", sel)
	}
	// Both sides computed: no statistics at all, fall to the guessed default —
	// crucially a finite, non-zero selectivity.
	sel = e.Selectivity(algebra.Eq("agg.a", "agg2.b"), nil)
	if sel != 0.1 {
		t.Fatalf("computed⋈computed join should use the default, got %g", sel)
	}
}

// TestConstPredicateOnComputedColumn: equality and inequality against a
// literal on a computed column must use the guessed defaults rather than
// 1/MaxFloat64 (≈0) and 1-1/MaxFloat64.
func TestConstPredicateOnComputedColumn(t *testing.T) {
	e := NewEstimator(estCatalog())
	eq := e.Selectivity(algebra.CmpConst("agg.total", algebra.EQ, algebra.NewInt(7)), nil)
	if eq != 0.05 {
		t.Fatalf("EQ on computed column should use default 0.05, got %g", eq)
	}
	ne := e.Selectivity(algebra.CmpConst("agg.total", algebra.NE, algebra.NewInt(7)), nil)
	if ne != 0.95 {
		t.Fatalf("NE on computed column should use default 0.95, got %g", ne)
	}
}

// TestJoinRowsFiniteWithComputedKey: end to end, a join whose key is an
// aggregate output must produce a sane positive cardinality — the failure
// mode was a subnormal near-zero product that made the plan free.
func TestJoinRowsFiniteWithComputedKey(t *testing.T) {
	e := NewEstimator(estCatalog())
	rows := e.JoinRows(
		[]string{"orders", "customer"}, nil,
		[]algebra.Cmp{algebra.Eq("agg.c_custkey", "customer.c_custkey")})
	if math.IsNaN(rows) || math.IsInf(rows, 0) {
		t.Fatalf("cardinality must stay finite, got %g", rows)
	}
	// 10000 × 1000 × 1/1000 = 10000: the known side's distinct count governs.
	if math.Abs(rows-10000) > 1 {
		t.Fatalf("expected ~10000 rows via the known side, got %g", rows)
	}
}
