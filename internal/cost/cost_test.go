package cost

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/catalog"
)

func model() *Model { return NewModel(Default()) }

func TestBlocksRounding(t *testing.T) {
	m := model()
	if m.Blocks(0, 100) != 0 {
		t.Errorf("zero rows → zero blocks")
	}
	if m.Blocks(1, 10) != 1 {
		t.Errorf("tiny input rounds up to one block")
	}
	if got := m.Blocks(1024, 4096); got != 1024 {
		t.Errorf("1024 full blocks expected, got %v", got)
	}
}

func TestScanCostMonotoneInRows(t *testing.T) {
	m := model()
	f := func(a, b uint32) bool {
		ra, rb := float64(a%1000000), float64(b%1000000)
		if ra > rb {
			ra, rb = rb, ra
		}
		return m.ScanCost(ra, 100) <= m.ScanCost(rb, 100)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashJoinMemoryJump(t *testing.T) {
	m := model()
	// Build side just fits: buffer 8000 blocks * 4KB = 32MB; width 100 bytes.
	fitRows := float64(200000) // 20MB < 32MB/1.2
	spillRows := float64(2e6)  // 200MB >> buffer
	inMem := m.HashJoinCost(fitRows, 100, 1e6, 100, 1e6)
	spilled := m.HashJoinCost(spillRows, 100, 1e6, 100, 1e6)
	// Per-row cost must jump discontinuously, not just scale with rows.
	if spilled/spillRows <= inMem/fitRows*1.5 {
		t.Errorf("partitioned hash join should cost disproportionately more: %g vs %g",
			spilled/spillRows, inMem/fitRows)
	}
}

func TestHashJoinBuildsOnSmaller(t *testing.T) {
	m := model()
	// One side huge, other tiny: cost should be the same regardless of order.
	a := m.HashJoinCost(10, 8, 1e7, 100, 100)
	b := m.HashJoinCost(1e7, 100, 10, 8, 100)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("hash join should be symmetric via build-side choice: %g vs %g", a, b)
	}
	// And a tiny build side must stay in memory (cheap).
	if a > 20 {
		t.Errorf("10-row build side should be in-memory cheap, got %g", a)
	}
}

func TestIndexJoinBeatsHashForTinyOuter(t *testing.T) {
	m := model()
	// 100 delta tuples probing an indexed 1M-row relation should beat
	// hash-joining the full relation.
	ij := m.IndexJoinCost(100, 1e6, 100, 100)
	hj := m.HashJoinCost(100, 100, 1e6, 100, 100) + m.ScanCost(1e6, 100)
	if ij >= hj {
		t.Errorf("index NL join should win for tiny outer: %g vs %g", ij, hj)
	}
}

func TestMergeCostIndexedVsScan(t *testing.T) {
	m := model()
	withIx := m.MergeCost(100, 1e6, 100, true)
	noIx := m.MergeCost(100, 1e6, 100, false)
	if withIx >= noIx {
		t.Errorf("indexed merge should beat scan-rewrite: %g vs %g", withIx, noIx)
	}
	if m.MergeCost(0, 1e6, 100, false) != 0 {
		t.Errorf("empty delta merge should be free")
	}
}

func TestSmallBufferRaisesSpillCosts(t *testing.T) {
	big := NewModel(Default())
	small := NewModel(SmallBuffer())
	rows := float64(300000) // 30MB at width 100: fits 8000 blocks, not 1000
	cBig := big.HashJoinCost(rows, 100, rows, 100, rows)
	cSmall := small.HashJoinCost(rows, 100, rows, 100, rows)
	if cSmall <= cBig {
		t.Errorf("smaller buffer should cost more: %g vs %g", cSmall, cBig)
	}
}

func TestAggCostSpills(t *testing.T) {
	m := model()
	inMem := m.AggCost(1e6, 100, 100, 50)
	spill := m.AggCost(1e6, 100, 5e6, 50)
	if spill <= inMem {
		t.Errorf("aggregation over too many groups should spill: %g vs %g", spill, inMem)
	}
}

// --- estimation ---

func estCatalog() *catalog.Catalog {
	cat := catalog.New()
	cat.AddTable(&catalog.Table{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_orderkey", Type: catalog.Int, Width: 8},
			{Name: "o_custkey", Type: catalog.Int, Width: 8},
			{Name: "o_price", Type: catalog.Float, Width: 8},
		},
		PrimaryKey: []string{"o_orderkey"},
		Stats: catalog.TableStats{
			Rows: 10000,
			Columns: map[string]catalog.ColumnStats{
				"o_orderkey": {Distinct: 10000, Min: 1, Max: 10000},
				"o_custkey":  {Distinct: 1000, Min: 1, Max: 1000},
				"o_price":    {Distinct: 5000, Min: 0, Max: 100},
			},
		},
	})
	cat.AddTable(&catalog.Table{
		Name: "customer",
		Columns: []catalog.Column{
			{Name: "c_custkey", Type: catalog.Int, Width: 8},
		},
		PrimaryKey: []string{"c_custkey"},
		Stats: catalog.TableStats{
			Rows: 1000,
			Columns: map[string]catalog.ColumnStats{
				"c_custkey": {Distinct: 1000, Min: 1, Max: 1000},
			},
		},
	})
	return cat
}

func TestEquiJoinCardinality(t *testing.T) {
	e := NewEstimator(estCatalog())
	rows := e.JoinRows(
		[]string{"orders", "customer"}, nil,
		[]algebra.Cmp{algebra.Eq("orders.o_custkey", "customer.c_custkey")})
	// 10000 * 1000 / max(1000,1000) = 10000: every order joins one customer.
	if math.Abs(rows-10000) > 1 {
		t.Errorf("FK join should preserve orders cardinality: got %g", rows)
	}
}

func TestDeltaSubstitutionScalesLinearly(t *testing.T) {
	e := NewEstimator(estCatalog())
	eff := map[string]float64{"orders": 100} // δ+ holds 1% of orders
	rows := e.JoinRows(
		[]string{"orders", "customer"}, eff,
		[]algebra.Cmp{algebra.Eq("orders.o_custkey", "customer.c_custkey")})
	if math.Abs(rows-100) > 1 {
		t.Errorf("delta join should scale linearly: got %g", rows)
	}
}

func TestRangeSelectivity(t *testing.T) {
	e := NewEstimator(estCatalog())
	sel := e.Selectivity(algebra.CmpConst("orders.o_price", algebra.LT, algebra.NewFloat(25)), nil)
	if math.Abs(sel-0.25) > 0.01 {
		t.Errorf("price<25 over [0,100] should be ~0.25, got %g", sel)
	}
	sel = e.Selectivity(algebra.CmpConst("orders.o_price", algebra.GE, algebra.NewFloat(75)), nil)
	if math.Abs(sel-0.25) > 0.01 {
		t.Errorf("price>=75 should be ~0.25, got %g", sel)
	}
}

func TestEqualitySelectivity(t *testing.T) {
	e := NewEstimator(estCatalog())
	sel := e.Selectivity(algebra.CmpConst("orders.o_custkey", algebra.EQ, algebra.NewInt(5)), nil)
	if math.Abs(sel-0.001) > 1e-6 {
		t.Errorf("1/distinct expected, got %g", sel)
	}
	ne := e.Selectivity(algebra.CmpConst("orders.o_custkey", algebra.NE, algebra.NewInt(5)), nil)
	if math.Abs(ne-0.999) > 1e-6 {
		t.Errorf("NE should complement EQ, got %g", ne)
	}
}

func TestGroupCountCappedByInput(t *testing.T) {
	e := NewEstimator(estCatalog())
	g := e.GroupCount([]string{"orders.o_custkey"}, 50, nil)
	if g != 50 {
		t.Errorf("groups capped by input rows: got %g", g)
	}
	g = e.GroupCount([]string{"orders.o_custkey"}, 1e6, nil)
	if g != 1000 {
		t.Errorf("groups bounded by distinct count: got %g", g)
	}
	if e.GroupCount(nil, 100, nil) != 1 {
		t.Errorf("global aggregate has one group")
	}
	if e.GroupCount(nil, 0, nil) != 0 {
		t.Errorf("empty input has zero groups")
	}
}

func TestSelectivityClampedPositive(t *testing.T) {
	e := NewEstimator(estCatalog())
	sel := e.Selectivity(algebra.CmpConst("orders.o_price", algebra.LT, algebra.NewFloat(-10)), nil)
	if sel <= 0 {
		t.Errorf("selectivity must stay positive, got %g", sel)
	}
}

func TestHistogramOverridesUniformSelectivity(t *testing.T) {
	cat := estCatalog()
	// Skew o_price: 90% of rows below 10 (range is [0,100]).
	h := catalog.NewHistogram(0, 100, 10)
	for i := 0; i < 900; i++ {
		h.Add(float64(i % 10))
	}
	for i := 0; i < 100; i++ {
		h.Add(float64(10 + i%90))
	}
	cs := cat.MustTable("orders").Stats.Columns["o_price"]
	cs.Hist = h
	cat.MustTable("orders").Stats.Columns["o_price"] = cs

	e := NewEstimator(cat)
	sel := e.Selectivity(algebra.CmpConst("orders.o_price", algebra.LT, algebra.NewFloat(10)), nil)
	if math.Abs(sel-0.9) > 0.05 {
		t.Errorf("histogram selectivity should be ~0.9, got %g (uniform would be 0.1)", sel)
	}
	gt := e.Selectivity(algebra.CmpConst("orders.o_price", algebra.GE, algebra.NewFloat(10)), nil)
	if math.Abs(gt-0.1) > 0.05 {
		t.Errorf(">= complement should be ~0.1, got %g", gt)
	}
	eq := e.Selectivity(algebra.CmpConst("orders.o_price", algebra.EQ, algebra.NewFloat(5)), nil)
	if eq <= 1.0/5000*2 {
		// Uniform 1/distinct would be 1/5000; skew makes value 5 far hotter.
		t.Errorf("histogram equality should reflect skew, got %g", eq)
	}
}

func TestJoinRowsNeverNegative(t *testing.T) {
	e := NewEstimator(estCatalog())
	f := func(r uint16) bool {
		eff := map[string]float64{"orders": float64(r)}
		return e.JoinRows([]string{"orders", "customer"}, eff,
			[]algebra.Cmp{algebra.Eq("orders.o_custkey", "customer.c_custkey")}) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
