// Package cost implements the optimizer's cost model and cardinality
// estimation. Following the paper (§7.1), the model accounts for the number
// of seeks, the amount of data read, the amount of data written, and CPU
// time for in-memory processing, and it is buffer-aware: hash joins and hash
// aggregations whose build input no longer fits in the buffer pool switch to
// partitioned (Grace-style) variants with extra I/O — this produces the
// characteristic cost "jump" visible in the paper's Figure 4.
//
// Conventions: costs are in seconds. Operator costs are *local*: a child's
// production cost is paid by the child (scans pay their own disk reads;
// intermediate results are pipelined). Reading a materialized result and
// writing one out are explicit costs (ReadCost / WriteCost).
package cost

import "math"

// Params are the tunable constants of the cost model. Defaults approximate
// the paper's setup: 4 KB blocks, an 8000-block buffer (32 MB), late-1990s
// disk characteristics.
type Params struct {
	BlockSize    int     // bytes per block
	BufferBlocks int64   // buffer pool size in blocks
	SeekTime     float64 // seconds per random seek
	TransferTime float64 // seconds to transfer one block
	CPUTuple     float64 // seconds of CPU per tuple touched
	// HashFudge derates usable memory for hash tables (per-entry overhead).
	HashFudge float64
}

// Default returns the baseline parameters used throughout the benchmarks.
func Default() Params {
	return Params{
		BlockSize:    4096,
		BufferBlocks: 8000,
		SeekTime:     0.008,
		TransferTime: 0.0002, // ~20 MB/s sequential
		CPUTuple:     0.25e-6,
		HashFudge:    1.2,
	}
}

// SmallBuffer returns the 1000-block configuration from the paper's
// buffer-size experiment (§7.2, "Effect of Buffer Size").
func SmallBuffer() Params {
	p := Default()
	p.BufferBlocks = 1000
	return p
}

// Model computes operator costs under fixed parameters.
type Model struct {
	P Params
}

// NewModel wraps parameters in a model.
func NewModel(p Params) *Model { return &Model{P: p} }

// Blocks converts a (rows, width) volume into blocks, at least 1 for any
// non-empty input.
func (m *Model) Blocks(rows float64, width int) float64 {
	if rows <= 0 {
		return 0
	}
	b := rows * float64(width) / float64(m.P.BlockSize)
	if b < 1 {
		return 1
	}
	return b
}

// fitsInMemory reports whether a hash table over the given volume fits in the
// buffer pool (with fudge for hash-table overhead).
func (m *Model) fitsInMemory(rows float64, width int) bool {
	return m.Blocks(rows, width)*m.P.HashFudge <= float64(m.P.BufferBlocks)
}

// ScanCost is the cost of reading a stored relation sequentially.
func (m *Model) ScanCost(rows float64, width int) float64 {
	if rows <= 0 {
		return 0
	}
	return m.P.SeekTime + m.Blocks(rows, width)*m.P.TransferTime + rows*m.P.CPUTuple
}

// ReadCost is the cost of reusing a materialized result: one sequential read.
func (m *Model) ReadCost(rows float64, width int) float64 {
	return m.ScanCost(rows, width)
}

// WriteCost is the cost of materializing (writing out) a result.
func (m *Model) WriteCost(rows float64, width int) float64 {
	if rows <= 0 {
		return 0
	}
	return m.P.SeekTime + m.Blocks(rows, width)*m.P.TransferTime + rows*m.P.CPUTuple
}

// SelectCost is the CPU cost of filtering a pipelined input.
func (m *Model) SelectCost(inRows float64) float64 {
	return inRows * m.P.CPUTuple
}

// ProjectCost is the CPU cost of projecting a pipelined input.
func (m *Model) ProjectCost(inRows float64) float64 {
	return inRows * m.P.CPUTuple
}

// HashJoinCost is the local cost of a hash join: build on the smaller input,
// probe with the larger. When the build side exceeds memory the join
// partitions both inputs to disk and re-reads them (2 extra transfers of each
// input's volume), which is the discontinuity the paper observes.
func (m *Model) HashJoinCost(lRows float64, lWidth int, rRows float64, rWidth int, outRows float64) float64 {
	if lRows <= 0 || rRows <= 0 {
		return 0
	}
	buildRows, buildWidth := lRows, lWidth
	if rRows*float64(rWidth) < lRows*float64(lWidth) {
		buildRows, buildWidth = rRows, rWidth
	}
	cpu := (lRows + rRows + outRows) * m.P.CPUTuple * 2
	if m.fitsInMemory(buildRows, buildWidth) {
		return cpu
	}
	spill := 2 * (m.Blocks(lRows, lWidth) + m.Blocks(rRows, rWidth)) * m.P.TransferTime
	seeks := 2 * m.P.SeekTime * math.Max(1, (m.Blocks(lRows, lWidth)+m.Blocks(rRows, rWidth))/float64(m.P.BufferBlocks))
	return cpu + spill + seeks
}

// IndexJoinCost is the local cost of an index nested-loop join: the outer is
// pipelined, each outer tuple probes an index on the stored inner. If the
// inner relation fits in the buffer pool, probes are CPU-only after the first
// faulting reads; otherwise every probe pays a seek plus one block read.
func (m *Model) IndexJoinCost(outerRows float64, innerRows float64, innerWidth int, outRows float64) float64 {
	if outerRows <= 0 {
		return 0
	}
	cpu := outerRows*m.P.CPUTuple*4 + outRows*m.P.CPUTuple
	if m.fitsInMemory(innerRows, innerWidth) {
		// Inner cached after cold reads; charge the cold read once.
		return cpu + m.Blocks(innerRows, innerWidth)*m.P.TransferTime + m.P.SeekTime
	}
	io := outerRows * (m.P.SeekTime + m.P.TransferTime)
	return cpu + io
}

// NLJoinCost is a blocked nested-loop join used as a fallback when no hash
// or index variant applies (e.g. non-equi predicates).
func (m *Model) NLJoinCost(lRows float64, lWidth int, rRows float64, rWidth int, outRows float64) float64 {
	if lRows <= 0 || rRows <= 0 {
		return 0
	}
	outerBlocks := m.Blocks(lRows, lWidth)
	passes := math.Ceil(outerBlocks / math.Max(1, float64(m.P.BufferBlocks)-2))
	cpu := lRows*rRows*m.P.CPUTuple*0.25 + outRows*m.P.CPUTuple
	io := passes * m.Blocks(rRows, rWidth) * m.P.TransferTime
	return cpu + io
}

// AggCost is the local cost of hash aggregation producing the given number of
// groups; it partitions to disk when the group table exceeds memory.
func (m *Model) AggCost(inRows float64, inWidth int, groups float64, groupWidth int) float64 {
	if inRows <= 0 {
		return 0
	}
	cpu := inRows*m.P.CPUTuple*2 + groups*m.P.CPUTuple
	if m.fitsInMemory(groups, groupWidth) {
		return cpu
	}
	spill := 2 * m.Blocks(inRows, inWidth) * m.P.TransferTime
	return cpu + spill + m.P.SeekTime
}

// UnionCost is the CPU cost of concatenating pipelined multiset inputs.
func (m *Model) UnionCost(rows float64) float64 {
	return rows * m.P.CPUTuple
}

// MinusCost is the cost of multiset difference implemented by hashing the
// subtrahend.
func (m *Model) MinusCost(lRows float64, rRows float64, width int) float64 {
	cpu := (lRows + rRows) * m.P.CPUTuple * 2
	if m.fitsInMemory(rRows, width) {
		return cpu
	}
	return cpu + 2*(m.Blocks(lRows, width)+m.Blocks(rRows, width))*m.P.TransferTime
}

// DedupCost is hash-based duplicate elimination.
func (m *Model) DedupCost(inRows float64, width int, outRows float64) float64 {
	return m.AggCost(inRows, width, outRows, width)
}

// MergeCost is the cost of folding a computed differential into a stored
// result of the given size. With an index on the stored result the merge
// probes per delta tuple; without one it must scan and rewrite the stored
// result — which is exactly why index selection matters for maintenance
// (paper §7.2, Figure 5).
func (m *Model) MergeCost(deltaRows float64, storedRows float64, width int, indexed bool) float64 {
	if deltaRows <= 0 {
		return 0
	}
	if indexed {
		perProbe := m.P.CPUTuple * 4
		if !m.fitsInMemory(storedRows, width) {
			perProbe += m.P.SeekTime + m.P.TransferTime
		}
		return deltaRows*perProbe + m.Blocks(deltaRows, width)*m.P.TransferTime
	}
	// One pass over the stored result to locate deletions in place, plus
	// appending the inserts and rewriting the touched blocks.
	return 2*m.P.SeekTime +
		m.Blocks(storedRows, width)*m.P.TransferTime +
		m.Blocks(deltaRows, width)*m.P.TransferTime +
		(storedRows+deltaRows)*m.P.CPUTuple
}

// IndexBuildCost is the cost of building an index over a stored result.
func (m *Model) IndexBuildCost(rows float64, width int) float64 {
	if rows <= 0 {
		return 0
	}
	sortCPU := rows * math.Log2(math.Max(2, rows)) * m.P.CPUTuple
	return m.ScanCost(rows, width) + sortCPU + m.WriteCost(rows, 12)
}

// IndexMaintCost is the cost of keeping an index up to date across a batch of
// deltaRows insertions/deletions.
func (m *Model) IndexMaintCost(deltaRows float64) float64 {
	return deltaRows * m.P.CPUTuple * 6
}
