package cost

import (
	"math"
	"strings"

	"repro/internal/algebra"
	"repro/internal/catalog"
)

// Estimator performs System-R-style cardinality estimation over conjunctive
// select-project-join blocks. Callers supply the *effective* row count of
// each base relation, which lets the differential optimizer estimate results
// where one relation has been replaced by its (much smaller) delta, or where
// relations stand at an intermediate update-propagation state (paper §5.2).
type Estimator struct {
	Cat *catalog.Catalog
	// DefaultRangeSel is used for range predicates when no min/max statistic
	// is available. 1/3 is the classic System-R default.
	DefaultRangeSel float64
}

// NewEstimator builds an estimator over a catalog.
func NewEstimator(cat *catalog.Catalog) *Estimator {
	return &Estimator{Cat: cat, DefaultRangeSel: 1.0 / 3.0}
}

// splitQ splits "rel.col" into its parts.
func splitQ(q string) (rel, col string) {
	i := strings.IndexByte(q, '.')
	if i < 0 {
		return "", q
	}
	return q[:i], q[i+1:]
}

// Distinct estimates the number of distinct values of a column when its
// relation holds effRows tuples: the base distinct count, capped by the
// effective cardinality.
func (e *Estimator) Distinct(qname string, effRows map[string]float64) float64 {
	rel, col := splitQ(qname)
	t, ok := e.Cat.Table(rel)
	if !ok {
		// Computed column (aggregate output): assume all-distinct within the
		// producing result; the caller caps by row count.
		return math.MaxFloat64
	}
	d := float64(t.DistinctOf(col))
	if r, ok := effRows[rel]; ok && r < d {
		if r < 1 {
			return 1
		}
		return r
	}
	return d
}

// knownDistinct reports whether a Distinct result is a usable count: strictly
// positive, finite, and not the computed-column sentinel. Every selectivity
// arm must check this before dividing, so the sentinel can never leak into a
// selectivity product as Inf/NaN or a subnormal near-zero factor.
func knownDistinct(d float64) bool {
	return d > 0 && d < math.MaxFloat64 && !math.IsNaN(d)
}

// colHist returns the histogram of a column (nil if absent) and its distinct
// count for per-bucket spreading.
func (e *Estimator) colHist(qname string) (*catalog.Histogram, int64) {
	rel, col := splitQ(qname)
	t, ok := e.Cat.Table(rel)
	if !ok {
		return nil, 0
	}
	cs, ok := t.Stats.Columns[col]
	if !ok {
		return nil, 0
	}
	return cs.Hist, cs.Distinct
}

// colRange returns the recorded (min, max) of a numeric column, or ok=false.
func (e *Estimator) colRange(qname string) (lo, hi float64, ok bool) {
	rel, col := splitQ(qname)
	t, tok := e.Cat.Table(rel)
	if !tok {
		return 0, 0, false
	}
	cs, sok := t.Stats.Columns[col]
	if !sok || cs.Max <= cs.Min {
		return 0, 0, false
	}
	return cs.Min, cs.Max, true
}

// Selectivity estimates the fraction of tuples satisfying one comparison.
func (e *Estimator) Selectivity(c algebra.Cmp, effRows map[string]float64) float64 {
	lc, lIsCol := c.L.(algebra.ColRef)
	rc, rIsCol := c.R.(algebra.ColRef)
	switch {
	case lIsCol && rIsCol:
		// Join predicate.
		if c.Op == algebra.EQ {
			dl := e.Distinct(lc.QName(), effRows)
			dr := e.Distinct(rc.QName(), effRows)
			// A computed column (aggregate output) reports the sentinel; use
			// the known side's distinct count instead of letting the sentinel
			// swallow it via max() and degrade both sides to the default.
			lk, rk := knownDistinct(dl), knownDistinct(dr)
			switch {
			case lk && rk:
				return 1 / math.Max(dl, dr)
			case lk:
				return 1 / dl
			case rk:
				return 1 / dr
			default:
				return 0.1
			}
		}
		return e.DefaultRangeSel
	case lIsCol || rIsCol:
		col := lc
		op := c.Op
		var lit algebra.Value
		if lIsCol {
			lit = c.R.(algebra.Const).Val
		} else {
			col = rc
			op = c.Op.Flip()
			lit = c.L.(algebra.Const).Val
		}
		hist, distinct := e.colHist(col.QName())
		switch op {
		case algebra.EQ:
			if hist != nil {
				return math.Max(hist.FracEq(lit.AsFloat(), distinct), 1e-6)
			}
			d := e.Distinct(col.QName(), effRows)
			if !knownDistinct(d) {
				return 0.05
			}
			return 1 / d
		case algebra.NE:
			if hist != nil {
				return math.Min(1-hist.FracEq(lit.AsFloat(), distinct), 1)
			}
			d := e.Distinct(col.QName(), effRows)
			if !knownDistinct(d) {
				return 0.95
			}
			return 1 - 1/d
		default:
			v := lit.AsFloat()
			var frac float64
			switch {
			case hist != nil:
				frac = hist.FracBelow(v)
				if op == algebra.LE {
					frac += hist.FracEq(v, distinct)
				}
			default:
				lo, hi, ok := e.colRange(col.QName())
				if !ok {
					return e.DefaultRangeSel
				}
				frac = (v - lo) / (hi - lo)
			}
			frac = math.Min(1, math.Max(0, frac))
			if op == algebra.GT || op == algebra.GE {
				frac = 1 - frac
			}
			// Clamp away from 0 so plans never become free.
			return math.Max(frac, 1e-4)
		}
	default:
		return 1
	}
}

// ClauseSelectivity estimates the fraction of tuples satisfying a
// disjunction of comparisons, assuming independence of the alternatives:
// 1 − Π(1 − sel(cᵢ)). An empty disjunction is false.
func (e *Estimator) ClauseSelectivity(clause []algebra.Cmp, effRows map[string]float64) float64 {
	if len(clause) == 0 {
		return 0
	}
	miss := 1.0
	for _, c := range clause {
		miss *= 1 - e.Selectivity(c, effRows)
	}
	return math.Min(1, math.Max(0, 1-miss))
}

// JoinRows estimates |σ_preds(T1 × … × Tk)| where each Ti holds
// effRows[Ti] tuples (falling back to catalog statistics when absent).
func (e *Estimator) JoinRows(tables []string, effRows map[string]float64, preds []algebra.Cmp) float64 {
	card := 1.0
	for _, t := range tables {
		card *= e.TableRows(t, effRows)
	}
	for _, p := range preds {
		card *= e.Selectivity(p, effRows)
	}
	if card < 0 {
		return 0
	}
	return card
}

// TableRows returns the effective cardinality of a base relation.
func (e *Estimator) TableRows(table string, effRows map[string]float64) float64 {
	if r, ok := effRows[table]; ok {
		return math.Max(0, r)
	}
	if t, ok := e.Cat.Table(table); ok {
		return float64(t.Stats.Rows)
	}
	return 0
}

// GroupCount estimates the number of groups produced by grouping inputRows
// tuples on the given columns: the product of per-column distinct counts,
// capped by the input cardinality.
func (e *Estimator) GroupCount(groupBy []string, inputRows float64, effRows map[string]float64) float64 {
	if len(groupBy) == 0 {
		if inputRows > 0 {
			return 1
		}
		return 0
	}
	groups := 1.0
	for _, g := range groupBy {
		d := e.Distinct(g, effRows)
		if d == math.MaxFloat64 || math.IsInf(d, 0) || math.IsNaN(d) {
			// Computed column: all-distinct within the producing result.
			d = inputRows
		}
		groups *= d
		if groups > inputRows {
			return math.Max(0, inputRows)
		}
	}
	return math.Min(groups, math.Max(0, inputRows))
}
