// Package workload tracks the observed workload of a running system: how
// often each distinct query shape is served per refresh cycle, and how many
// tuples each base relation receives per cycle. The adaptation pipeline
// (core.Runtime.Adapt) periodically reads these statistics to re-run the
// paper's greedy view selection against the workload the system actually
// sees, rather than the one it was configured with — turning the stored-vs-
// derived boundary into a runtime decision (cf. Litwin's stored and
// inherited relations).
//
// Rates are exponentially-weighted moving averages over refresh cycles, so
// the tracker follows workload drift at a tunable pace: with smoothing α,
// a query that stops arriving decays to a fraction (1-α)^k of its weight
// after k cycles, and a newly hot query reaches the same fraction of its
// steady-state weight in the same number of cycles.
package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// maxTracked bounds the number of distinct query shapes kept. When full, a
// new shape displaces the coldest tracked one (lowest weight plus pending
// count) so a drifting workload can always enter; a stream of one-off shapes
// then churns the coldest slot only.
const maxTracked = 1024

// queryStat is the tracked load of one query shape.
type queryStat struct {
	key string
	// sql is a representative query text for the shape (the first observed),
	// used to re-register the query during re-selection.
	sql string
	// pending counts observations since the last completed cycle.
	pending int64
	// weight is the EWMA of per-cycle observation counts.
	weight float64
	// total counts all observations ever (reporting only).
	total int64
}

// updateStat is the tracked update rate of one base relation.
type updateStat struct {
	ins, del float64
}

// Tracker accumulates workload observations. All methods are safe for
// concurrent use: queries are observed from any number of serving
// goroutines, refresh cycles from the single writer, and snapshots of the
// statistics from the adaptation goroutine.
type Tracker struct {
	mu      sync.Mutex
	alpha   float64
	cycles  int
	queries map[string]*queryStat
	updates map[string]*updateStat
}

// NewTracker creates a tracker with the given EWMA smoothing factor
// α ∈ (0, 1]: the newest cycle's observation enters with weight α. Values
// outside the range select the default 0.5.
func NewTracker(alpha float64) *Tracker {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &Tracker{
		alpha:   alpha,
		queries: make(map[string]*queryStat),
		updates: make(map[string]*updateStat),
	}
}

// ObserveQuery records one served query, identified by its canonical DAG key
// (so distinct texts of the same shape merge) with a representative SQL text.
func (t *Tracker) ObserveQuery(key, sql string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	q := t.queries[key]
	if q == nil {
		if len(t.queries) >= maxTracked {
			t.evictColdest()
		}
		q = &queryStat{key: key, sql: sql}
		t.queries[key] = q
	}
	q.pending++
	q.total++
}

// evictColdest drops the tracked shape with the least load. Must hold mu.
func (t *Tracker) evictColdest() {
	var coldKey string
	coldLoad := 0.0
	first := true
	for k, q := range t.queries {
		load := q.weight + float64(q.pending)
		if first || load < coldLoad || (load == coldLoad && k < coldKey) {
			coldKey, coldLoad, first = k, load, false
		}
	}
	delete(t.queries, coldKey)
}

// Counts is the update volume one relation received in one refresh cycle.
type Counts struct {
	Ins, Del int
}

// ObserveRefresh closes one cycle: it folds the pending query counts into
// the per-cycle EWMA weights and records each relation's update volume. The
// refresh driver calls it once per cycle with the pending delta sizes.
func (t *Tracker) ObserveRefresh(counts map[string]Counts) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cycles++
	for _, q := range t.queries {
		q.weight = (1-t.alpha)*q.weight + t.alpha*float64(q.pending)
		q.pending = 0
	}
	for rel, c := range counts {
		u := t.updates[rel]
		if u == nil {
			u = &updateStat{}
			t.updates[rel] = u
		}
		u.ins = (1-t.alpha)*u.ins + t.alpha*float64(c.Ins)
		u.del = (1-t.alpha)*u.del + t.alpha*float64(c.Del)
	}
}

// Cycles returns the number of completed refresh cycles observed.
func (t *Tracker) Cycles() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cycles
}

// QueryLoad is a snapshot of one tracked query shape.
type QueryLoad struct {
	// Key is the canonical DAG key of the shape.
	Key string
	// SQL is a representative query text.
	SQL string
	// Weight is the EWMA of executions per refresh cycle. Before the first
	// completed cycle it is the raw observation count.
	Weight float64
	// Total counts all observations.
	Total int64
}

// TopQueries returns up to k tracked shapes with weight ≥ minWeight, hottest
// first; ties break on key so the result is deterministic. k ≤ 0 returns all
// qualifying shapes.
func (t *Tracker) TopQueries(k int, minWeight float64) []QueryLoad {
	t.mu.Lock()
	out := make([]QueryLoad, 0, len(t.queries))
	for _, q := range t.queries {
		w := q.weight
		if t.cycles == 0 {
			w = float64(q.pending)
		}
		if w >= minWeight && w > 0 {
			out = append(out, QueryLoad{Key: q.key, SQL: q.sql, Weight: w, Total: q.total})
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// UpdateRate is the EWMA tuples-per-cycle a relation receives.
type UpdateRate struct {
	Ins, Del float64
}

// UpdateRates returns the observed per-cycle update volume of every relation
// that has received updates.
func (t *Tracker) UpdateRates() map[string]UpdateRate {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]UpdateRate, len(t.updates))
	for rel, u := range t.updates {
		out[rel] = UpdateRate{Ins: u.ins, Del: u.del}
	}
	return out
}

// Fingerprint returns the tracked rates as one flat vector: per-cycle query
// weights keyed "q:<shape key>" and update rates keyed "u+:<rel>" /
// "u-:<rel>". The adaptation pipeline diffs consecutive fingerprints to
// decide whether the workload has drifted enough to justify re-selection.
func (t *Tracker) Fingerprint() map[string]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]float64, len(t.queries)+2*len(t.updates))
	for key, q := range t.queries {
		w := q.weight
		if t.cycles == 0 {
			w = float64(q.pending)
		}
		if w > 0 {
			out["q:"+key] = w
		}
	}
	for rel, u := range t.updates {
		out["u+:"+rel] = u.ins
		out["u-:"+rel] = u.del
	}
	return out
}

// Drift measures how far apart two fingerprints are: the L1 distance of the
// rate vectors normalized by the larger total mass, in [0, 1]. 0 means
// identical rates; 1 means fully disjoint workloads.
func Drift(a, b map[string]float64) float64 {
	var dist, massA, massB float64
	for k, av := range a {
		massA += av
		bv := b[k]
		if av > bv {
			dist += av - bv
		} else {
			dist += bv - av
		}
	}
	for k, bv := range b {
		massB += bv
		if _, ok := a[k]; !ok {
			dist += bv
		}
	}
	mass := massA
	if massB > mass {
		mass = massB
	}
	if mass == 0 {
		return 0
	}
	return dist / mass
}

// Report renders the tracked workload, hottest queries first.
func (t *Tracker) Report() string {
	top := t.TopQueries(0, 0)
	t.mu.Lock()
	cycles := t.cycles
	rels := make([]string, 0, len(t.updates))
	for rel := range t.updates {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	rates := make(map[string]updateStat, len(t.updates))
	for rel, u := range t.updates {
		rates[rel] = *u
	}
	t.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "workload: %d cycles, %d tracked query shapes\n", cycles, len(top))
	for _, q := range top {
		sql := strings.Join(strings.Fields(q.SQL), " ")
		if len(sql) > 72 {
			sql = sql[:69] + "..."
		}
		fmt.Fprintf(&b, "  %8.1f q/cycle (%6d total)  %s\n", q.Weight, q.Total, sql)
	}
	for _, rel := range rels {
		u := rates[rel]
		fmt.Fprintf(&b, "  updates %-10s %8.1f ins/cycle %8.1f del/cycle\n", rel, u.ins, u.del)
	}
	return b.String()
}
