package workload

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestWeightsFollowDrift(t *testing.T) {
	tr := NewTracker(0.5)
	// Phase 1: "a" hot, "b" cold.
	for c := 0; c < 4; c++ {
		for i := 0; i < 40; i++ {
			tr.ObserveQuery("a", "SELECT a")
		}
		tr.ObserveQuery("b", "SELECT b")
		tr.ObserveRefresh(nil)
	}
	top := tr.TopQueries(1, 0)
	if len(top) != 1 || top[0].Key != "a" {
		t.Fatalf("hot query should lead: %+v", top)
	}
	if top[0].Weight < 30 || top[0].Weight > 40 {
		t.Errorf("EWMA weight of steady 40/cycle should approach 40, got %g", top[0].Weight)
	}
	// Phase 2: drift — "b" becomes hot, "a" stops.
	for c := 0; c < 6; c++ {
		for i := 0; i < 40; i++ {
			tr.ObserveQuery("b", "SELECT b")
		}
		tr.ObserveRefresh(nil)
	}
	top = tr.TopQueries(2, 0)
	if top[0].Key != "b" {
		t.Fatalf("after drift the new hot query should lead: %+v", top)
	}
	if len(top) > 1 && top[1].Weight > 2 {
		t.Errorf("stopped query should have decayed below 2/cycle, got %g", top[1].Weight)
	}
}

func TestTopQueriesBeforeFirstCycle(t *testing.T) {
	tr := NewTracker(0.5)
	tr.ObserveQuery("q", "SELECT q")
	tr.ObserveQuery("q", "SELECT q")
	top := tr.TopQueries(0, 1)
	if len(top) != 1 || top[0].Weight != 2 {
		t.Fatalf("pre-cycle weight should be the raw count: %+v", top)
	}
}

func TestMinWeightAndLimit(t *testing.T) {
	tr := NewTracker(1)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("q%d", i)
		for j := 0; j <= i; j++ {
			tr.ObserveQuery(key, key)
		}
	}
	tr.ObserveRefresh(nil)
	top := tr.TopQueries(2, 3)
	if len(top) != 2 || top[0].Key != "q4" || top[1].Key != "q3" {
		t.Fatalf("want the two hottest shapes above the floor, got %+v", top)
	}
}

func TestUpdateRatesEWMA(t *testing.T) {
	tr := NewTracker(0.5)
	tr.ObserveRefresh(map[string]Counts{"orders": {Ins: 100, Del: 50}})
	tr.ObserveRefresh(map[string]Counts{"orders": {Ins: 100, Del: 50}})
	r := tr.UpdateRates()["orders"]
	if r.Ins != 75 || r.Del != 37.5 {
		t.Errorf("EWMA after two identical cycles from zero: got %+v, want {75 37.5}", r)
	}
	if tr.Cycles() != 2 {
		t.Errorf("cycles = %d, want 2", tr.Cycles())
	}
}

func TestEvictionKeepsHotShapes(t *testing.T) {
	tr := NewTracker(1)
	for i := 0; i < maxTracked; i++ {
		key := fmt.Sprintf("q%04d", i)
		tr.ObserveQuery(key, key)
		tr.ObserveQuery(key, key) // every tracked shape has load 2
	}
	tr.ObserveQuery("newcomer", "newcomer") // displaces one cold shape
	top := tr.TopQueries(0, 0)
	if len(top) != maxTracked {
		t.Fatalf("tracker should stay bounded at %d, got %d", maxTracked, len(top))
	}
	found := false
	for _, q := range top {
		if q.Key == "newcomer" {
			found = true
		}
	}
	if !found {
		t.Errorf("a new shape must be able to enter a full tracker")
	}
}

func TestConcurrentObservation(t *testing.T) {
	tr := NewTracker(0.5)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.ObserveQuery(fmt.Sprintf("q%d", i%7), "SELECT x")
			}
		}(w)
	}
	for c := 0; c < 10; c++ {
		tr.ObserveRefresh(map[string]Counts{"lineitem": {Ins: c, Del: c / 2}})
	}
	wg.Wait()
	tr.ObserveRefresh(nil)
	total := int64(0)
	for _, q := range tr.TopQueries(0, 0) {
		total += q.Total
	}
	if total != 4*500 {
		t.Errorf("observations lost under concurrency: %d of %d", total, 4*500)
	}
}

func TestReport(t *testing.T) {
	tr := NewTracker(0.5)
	tr.ObserveQuery("k", "SELECT   *   FROM nation")
	tr.ObserveRefresh(map[string]Counts{"nation": {Ins: 3, Del: 1}})
	rep := tr.Report()
	for _, want := range []string{"1 cycles", "SELECT * FROM nation", "nation"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestFingerprintDrift(t *testing.T) {
	tr := NewTracker(1)
	for i := 0; i < 10; i++ {
		tr.ObserveQuery("a", "SELECT a")
	}
	tr.ObserveRefresh(map[string]Counts{"orders": {Ins: 100, Del: 50}})
	fp1 := tr.Fingerprint()
	if fp1["q:a"] != 10 || fp1["u+:orders"] != 100 || fp1["u-:orders"] != 50 {
		t.Fatalf("unexpected fingerprint: %v", fp1)
	}
	if d := Drift(fp1, fp1); d != 0 {
		t.Errorf("identical fingerprints must have zero drift, got %g", d)
	}
	// Steady workload: another identical cycle, drift stays zero (alpha=1).
	for i := 0; i < 10; i++ {
		tr.ObserveQuery("a", "SELECT a")
	}
	tr.ObserveRefresh(map[string]Counts{"orders": {Ins: 100, Del: 50}})
	if d := Drift(tr.Fingerprint(), fp1); d != 0 {
		t.Errorf("steady workload must not drift, got %g", d)
	}
	// Full hot-set swap: drift approaches 1 relative to the old fingerprint.
	for i := 0; i < 10; i++ {
		tr.ObserveQuery("b", "SELECT b")
	}
	tr.ObserveRefresh(map[string]Counts{"orders": {Ins: 100, Del: 50}})
	if d := Drift(tr.Fingerprint(), fp1); d < 0.1 {
		t.Errorf("hot-set swap must register as drift, got %g", d)
	}
	if d := Drift(nil, nil); d != 0 {
		t.Errorf("empty fingerprints drift = %g, want 0", d)
	}
	if d := Drift(map[string]float64{"q:x": 5}, nil); d != 1 {
		t.Errorf("all-new mass must be full drift, got %g", d)
	}
}
