// Package cache implements the paper's §8 future-work direction: a dynamic
// query-result caching environment ("we plan to port the system to a
// dynamic query result caching environment; in a companion paper, we study
// the issue of selecting results to cache dynamically").
//
// The Manager observes a stream of queries, inserts each into the shared
// AND-OR DAG (so repeated and overlapping queries unify exactly as view
// definitions do), and adaptively maintains a byte-bounded set of cached
// results. Admission and eviction are benefit-based: each cached entry
// carries an exponentially-decayed rate of realized savings per byte, and a
// candidate is admitted when its projected rate beats the victims it would
// displace — the same benefit-per-unit-space principle the greedy selector
// uses for its space budget (§6.2).
package cache

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/volcano"
)

// entry is one cached result.
type entry struct {
	equiv *dag.Equiv
	bytes float64
	// rate is the exponentially decayed savings-per-query attributable to
	// this entry; admission compares projected rates.
	rate float64
	// uses counts queries that reused the entry (for reporting).
	uses int
}

// Manager is the dynamic cache controller. It is not safe for concurrent
// use; the serving layer serializes planning calls behind one mutex and
// runs only the (lock-free) plan execution concurrently.
type Manager struct {
	// Cat is the catalog the managed DAG is built over.
	Cat *catalog.Catalog
	// Dag is the managed AND-OR DAG; every observed query is inserted into
	// it so repeats and overlaps unify.
	Dag *dag.DAG
	// Opt is the plan-search instance used for cost projections.
	Opt *volcano.Optimizer
	// Model is the cost model behind Opt.
	Model *cost.Model
	// Budget is the cache size in bytes.
	Budget float64
	// Decay ∈ (0,1] ages entry rates each query (smaller = faster aging).
	Decay float64
	// Base is a materialized set treated as always stored (for free, outside
	// the budget): the serving layer passes the maintained views, the greedy
	// extras, and their indexes here, so query plans reuse them and the
	// cache only admits results that beat what maintenance already stores.
	// Nil behaves as the empty set; it must not be mutated after the first
	// query (coldCost memoizes plans found under it).
	Base *volcano.MatSet

	entries map[int]*entry
	sizer   *dag.Sizer
	// coldCost memoizes the cache-free cost per root: it depends only on
	// the root, Base, and static catalog statistics, so repeats of a query
	// skip the second Volcano search.
	coldCost map[int]float64
	// stats
	queries int
	hits    int
	// ColdCost and CachedCost accumulate estimated execution costs with an
	// empty cache versus the managed cache, for reporting.
	ColdCost, CachedCost float64
}

// New creates a cache manager with the given byte budget over a fresh DAG.
func New(cat *catalog.Catalog, params cost.Params, budgetBytes float64) *Manager {
	return NewOver(dag.New(cat), cost.NewModel(params), budgetBytes, nil)
}

// NewOver creates a cache manager over an existing DAG — one that already
// holds view definitions, so observed queries unify with their equivalence
// nodes — with base treated as already materialized (may be nil). The DAG
// must not be shared with a concurrently-running optimizer or refresh.
func NewOver(d *dag.DAG, model *cost.Model, budgetBytes float64, base *volcano.MatSet) *Manager {
	opt := volcano.New(d, model)
	return &Manager{
		Cat: d.Cat, Dag: d, Opt: opt, Model: model,
		Budget: budgetBytes, Decay: 0.8, Base: base,
		entries:  make(map[int]*entry),
		sizer:    dag.NewSizer(opt.Est, nil),
		coldCost: make(map[int]float64),
	}
}

// Rebase moves the manager onto a new DAG, cost model and base materialized
// set — the serving layer's adaptation swap hook. Cached entries migrate by
// canonical node key: an entry whose shape exists in the new DAG keeps its
// accounting with one decay round applied (the reconfiguration ages it like
// a query it did not serve), while entries whose nodes are now covered by
// the base set — results the new maintenance plan stores anyway — are
// retired, as are shapes absent from the new DAG. Cost memos are dropped
// wholesale: both the cold baseline and entry byte sizes depend on the base
// set and the DAG. Returns how many entries survived and how many retired.
func (m *Manager) Rebase(d *dag.DAG, model *cost.Model, base *volcano.MatSet) (kept, retired int) {
	old := m.entries
	m.Cat, m.Dag, m.Model = d.Cat, d, model
	m.Opt = volcano.New(d, model)
	m.sizer = dag.NewSizer(m.Opt.Est, nil)
	m.coldCost = make(map[int]float64)
	m.Base = base
	m.entries = make(map[int]*entry, len(old))
	for _, en := range old {
		ne := d.Lookup(en.equiv.Key)
		if ne == nil || (base != nil && base.Full[ne.ID]) {
			retired++
			continue
		}
		en.equiv = ne
		en.bytes = m.bytesOf(ne)
		en.rate *= m.Decay
		m.entries[ne.ID] = en
		kept++
	}
	return kept, retired
}

// baseSet returns the always-materialized baseline (never nil).
func (m *Manager) baseSet() *volcano.MatSet {
	if m.Base != nil {
		return m.Base
	}
	return volcano.NewMatSet()
}

// matSet builds the volcano view of the current cache contents on top of
// the base materialized set.
func (m *Manager) matSet() *volcano.MatSet {
	ms := m.baseSet().Clone()
	for id := range m.entries {
		ms.Full[id] = true
	}
	return ms
}

// bytesOf estimates an equivalence node's stored size.
func (m *Manager) bytesOf(e *dag.Equiv) float64 {
	return m.sizer.Rows(e) * float64(dag.Width(e))
}

// Execute observes one query: it returns the estimated execution cost under
// the current cache, records which entries were reused, and adapts the
// cache contents. The returned plan reflects the pre-adaptation cache (the
// query that triggers admission does not itself benefit).
func (m *Manager) Execute(name string, def algebra.Node) (*volcano.PlanNode, error) {
	root, err := m.insert(name, def)
	if err != nil {
		return nil, err
	}
	return m.ExecuteRoot(root), nil
}

// ExecuteRoot is Execute for a query already inserted into the managed DAG
// (the serving layer inserts via dag.InsertExpr to keep the root list from
// growing with repeats).
func (m *Manager) ExecuteRoot(root *dag.Equiv) *volcano.PlanNode {
	m.queries++

	// Cost with the cache and with the base materializations alone.
	ms := m.matSet()
	plan := m.Opt.Best(root, ms, m.sizer, m.Opt.NewMemo())
	cold, ok := m.coldCost[root.ID]
	if !ok {
		cold = m.Opt.Best(root, m.baseSet(), m.sizer, m.Opt.NewMemo()).CumCost
		m.coldCost[root.ID] = cold
	}
	m.CachedCost += plan.CumCost
	m.ColdCost += cold

	// Attribute realized savings to the entries the plan reused. A hit is a
	// reuse of a cache entry, not of a base materialization or table index.
	used := map[int]bool{}
	collectReused(plan, used)
	hit := false
	for id := range used {
		if _, ok := m.entries[id]; ok {
			hit = true
			break
		}
	}
	if hit {
		m.hits++
	}
	saved := math.Max(0, cold-plan.CumCost)
	for id := range m.entries {
		m.entries[id].rate *= m.Decay
	}
	for id := range used {
		if en, ok := m.entries[id]; ok {
			en.rate += saved / float64(len(used))
			en.uses++
		}
	}

	// Admission: consider caching each subexpression of this query; the
	// projected benefit of a node is the cost drop of THIS query if the node
	// were cached (future repeats are assumed similar).
	m.consider(root, ms, plan.CumCost)
	return plan
}

// BasePlan returns the best plan for a node reusing only the base
// materialized set — no cache entries. The serving layer uses it to refill
// an admitted entry's rows after a refresh invalidated them: the plan's
// reuse leaves are guaranteed to resolve against the snapshot alone.
func (m *Manager) BasePlan(e *dag.Equiv) *volcano.PlanNode {
	return m.Opt.Best(e, m.baseSet(), m.sizer, m.Opt.NewMemo())
}

// insert adds the query into the DAG, converting panics to errors.
func (m *Manager) insert(name string, def algebra.Node) (e *dag.Equiv, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cache: invalid query %q: %v", name, r)
		}
	}()
	return m.Dag.AddQuery(name, def), nil
}

// consider evaluates admission for the query's own result and its
// subexpressions.
func (m *Manager) consider(root *dag.Equiv, ms *volcano.MatSet, costNow float64) {
	var cands []*dag.Equiv
	seen := map[int]bool{}
	var walk func(e *dag.Equiv)
	walk = func(e *dag.Equiv) {
		if seen[e.ID] || e.IsTable {
			return
		}
		seen[e.ID] = true
		if _, cached := m.entries[e.ID]; !cached {
			cands = append(cands, e)
		}
		for _, op := range e.Ops {
			for _, c := range op.Children {
				walk(c)
			}
		}
	}
	walk(root)

	for _, cand := range cands {
		bytes := m.bytesOf(cand)
		if bytes <= 0 || bytes > m.Budget {
			continue
		}
		trial := ms.Clone()
		trial.Full[cand.ID] = true
		with := m.Opt.Best(root, trial, m.sizer, m.Opt.NewMemo()).CumCost
		projected := costNow - with
		if projected <= 0 {
			continue
		}
		if m.admit(cand, bytes, projected) {
			ms = m.matSet()
			costNow = m.Opt.Best(root, ms, m.sizer, m.Opt.NewMemo()).CumCost
		}
	}
}

// admit caches a candidate if its projected savings rate per byte beats the
// entries that must be evicted to make room. Returns true if admitted.
func (m *Manager) admit(cand *dag.Equiv, bytes, projected float64) bool {
	// Collect victims: lowest rate-per-byte first.
	type victim struct {
		id      int
		rate    float64
		perByte float64
	}
	var vs []victim
	total := 0.0
	for id, en := range m.entries {
		total += en.bytes
		vs = append(vs, victim{id: id, rate: en.rate, perByte: en.rate / math.Max(1, en.bytes)})
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].perByte < vs[j].perByte })

	free := m.Budget - total
	evictRate := 0.0
	var evict []int
	for _, v := range vs {
		if free >= bytes {
			break
		}
		evict = append(evict, v.id)
		evictRate += v.rate
		free += m.entries[v.id].bytes
	}
	if free < bytes {
		return false // cannot fit even after evicting everything considered
	}
	if evictRate >= projected {
		return false // the victims are collectively worth more
	}
	for _, id := range evict {
		delete(m.entries, id)
	}
	m.entries[cand.ID] = &entry{
		equiv: cand, bytes: bytes,
		// Seed the rate with the projected savings so a fresh entry
		// survives until its first reuses arrive.
		rate: projected,
	}
	return true
}

// Contents lists cached node IDs sorted by descending decayed rate.
func (m *Manager) Contents() []int {
	ids := make([]int, 0, len(m.entries))
	for id := range m.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return m.entries[ids[i]].rate > m.entries[ids[j]].rate })
	return ids
}

// Cached reports whether a node is currently cached.
func (m *Manager) Cached(id int) bool { _, ok := m.entries[id]; return ok }

// UsedBytes returns the current cache occupancy.
func (m *Manager) UsedBytes() float64 {
	total := 0.0
	for _, en := range m.entries {
		total += en.bytes
	}
	return total
}

// Report summarizes the cache session.
func (m *Manager) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cache: %d queries, %d with cache hits; est cost %.2f s cold → %.2f s cached (%.2fx)\n",
		m.queries, m.hits, m.ColdCost, m.CachedCost,
		m.ColdCost/math.Max(m.CachedCost, 1e-9))
	fmt.Fprintf(&b, "cache occupancy: %.1f of %.1f MB across %d entries\n",
		m.UsedBytes()/(1<<20), m.Budget/(1<<20), len(m.entries))
	for _, id := range m.Contents() {
		en := m.entries[id]
		fmt.Fprintf(&b, "  e%d %v: %.1f MB, rate %.3f s, %d reuses\n",
			id, en.equiv.Tables, en.bytes/(1<<20), en.rate, en.uses)
	}
	return b.String()
}

// collectReused gathers equivalence IDs of Reuse/Probe nodes in a plan.
func collectReused(p *volcano.PlanNode, dst map[int]bool) {
	if p.Access == volcano.Reuse || p.Access == volcano.Probe {
		dst[p.E.ID] = true
		return
	}
	for _, c := range p.Children {
		collectReused(c, dst)
	}
}

// MustExecute is Execute panicking on error, for fixed workloads in tests
// and examples.
func (m *Manager) MustExecute(name string, def algebra.Node) *volcano.PlanNode {
	p, err := m.Execute(name, def)
	if err != nil {
		panic(err)
	}
	return p
}
