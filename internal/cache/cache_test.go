package cache

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/tpcd"
	"repro/internal/viewdef"
	"repro/internal/volcano"
)

const hotQuery = `
	SELECT customer.c_nationkey, SUM(orders.o_totalprice) AS rev, COUNT(*)
	FROM orders, customer
	WHERE orders.o_custkey = customer.c_custkey AND orders.o_orderdate < 255
	GROUP BY customer.c_nationkey`

const coldQuery = `
	SELECT part.p_type, COUNT(*)
	FROM part
	GROUP BY part.p_type`

func manager(budgetMB float64) *Manager {
	cat := tpcd.NewCatalog(0.1, true)
	return New(cat, cost.Default(), budgetMB*(1<<20))
}

func TestRepeatedQueryGetsCached(t *testing.T) {
	m := manager(64)
	def := viewdef.MustParse(m.Cat, hotQuery)
	first := m.MustExecute("q1", def)
	if first.CumCost <= 0 {
		t.Fatalf("first execution must cost something")
	}
	// Re-issue the same query; it should now reuse a cached result.
	again := m.MustExecute("q2", viewdef.MustParse(m.Cat, hotQuery))
	if again.CumCost >= first.CumCost {
		t.Errorf("repeat should be cheaper: %g vs %g", again.CumCost, first.CumCost)
	}
	if m.hits == 0 {
		t.Errorf("repeat should register a cache hit")
	}
}

func TestOverlappingQueriesShareCache(t *testing.T) {
	m := manager(256)
	// First a selective join query: its result (~10% of orders joined with
	// their customers) is cheaper to read back than to recompute, so it is
	// the natural cache entry. (An unselective join would be wider than its
	// inputs and the manager would rightly refuse it.)
	join := `
		SELECT * FROM orders, customer
		WHERE orders.o_custkey = customer.c_custkey AND orders.o_orderdate < 255`
	m.MustExecute("q1", viewdef.MustParse(m.Cat, join))
	// A different query shape over the same join: an aggregate. Its plan
	// should reuse the cached join instead of recomputing it.
	p := m.MustExecute("q2", viewdef.MustParse(m.Cat, hotQuery))
	reused := map[int]bool{}
	collectReused(p, reused)
	if len(reused) == 0 {
		t.Errorf("overlapping query should reuse cached subexpressions: %s", p)
	}
}

func TestBudgetIsRespected(t *testing.T) {
	m := manager(2) // 2 MB: far too small for the big joins
	for i := 0; i < 5; i++ {
		m.MustExecute("q", viewdef.MustParse(m.Cat, hotQuery))
		if m.UsedBytes() > m.Budget {
			t.Fatalf("budget exceeded: %g > %g", m.UsedBytes(), m.Budget)
		}
	}
}

func TestEvictionPrefersHotEntries(t *testing.T) {
	// Budget fits roughly one result: after hammering the hot query, a single
	// cold query must not evict the hot entry.
	m := manager(1)
	for i := 0; i < 6; i++ {
		m.MustExecute("hot", viewdef.MustParse(m.Cat, hotQuery))
	}
	hotIDs := append([]int(nil), m.Contents()...)
	if len(hotIDs) == 0 {
		t.Skip("nothing fit in 1MB; nothing to test")
	}
	m.MustExecute("cold", viewdef.MustParse(m.Cat, coldQuery))
	stillHot := false
	for _, id := range hotIDs {
		if m.Cached(id) {
			stillHot = true
		}
	}
	if !stillHot {
		t.Errorf("one cold query evicted all hot entries")
	}
	// Hammer the cold query; eventually it may displace the hot entry —
	// that is allowed, rates decay. Just assert the budget holds.
	for i := 0; i < 10; i++ {
		m.MustExecute("cold", viewdef.MustParse(m.Cat, coldQuery))
	}
	if m.UsedBytes() > m.Budget {
		t.Errorf("budget exceeded after churn")
	}
}

func TestZeroBudgetCachesNothing(t *testing.T) {
	m := manager(0)
	m.MustExecute("q", viewdef.MustParse(m.Cat, hotQuery))
	m.MustExecute("q", viewdef.MustParse(m.Cat, hotQuery))
	if len(m.Contents()) != 0 {
		t.Errorf("zero budget must cache nothing")
	}
}

func TestReportRenders(t *testing.T) {
	m := manager(64)
	m.MustExecute("q", viewdef.MustParse(m.Cat, hotQuery))
	m.MustExecute("q", viewdef.MustParse(m.Cat, hotQuery))
	rep := m.Report()
	if !strings.Contains(rep, "queries") || !strings.Contains(rep, "occupancy") {
		t.Errorf("report incomplete:\n%s", rep)
	}
}

func TestSessionCostImprovesOverColdStream(t *testing.T) {
	m := manager(128)
	mix := []string{hotQuery, coldQuery, hotQuery, hotQuery, coldQuery, hotQuery}
	for i, q := range mix {
		m.MustExecute("q", viewdef.MustParse(m.Cat, q))
		_ = i
	}
	if m.CachedCost >= m.ColdCost {
		t.Errorf("cache should reduce the stream's cost: %g vs %g", m.CachedCost, m.ColdCost)
	}
}

func TestInvalidQueryReturnsError(t *testing.T) {
	m := manager(64)
	def := viewdef.MustParse(m.Cat, coldQuery)
	_ = def
	if _, err := m.Execute("bad", nil); err == nil {
		t.Errorf("nil query should error, not panic")
	}
}

func TestRebaseMigratesAndRetiresEntries(t *testing.T) {
	m := manager(256)
	// Populate: one hot aggregate and one cold shape, both cached.
	for i := 0; i < 3; i++ {
		m.MustExecute("hot", viewdef.MustParse(m.Cat, hotQuery))
	}
	m.MustExecute("cold", viewdef.MustParse(m.Cat, coldQuery))
	m.MustExecute("cold", viewdef.MustParse(m.Cat, coldQuery))
	if len(m.entries) == 0 {
		t.Fatal("expected cached entries before rebase")
	}
	oldKeys := map[string]float64{}
	for _, en := range m.entries {
		oldKeys[en.equiv.Key] = en.rate
	}

	// New DAG containing only the hot shape; its root is now base-
	// materialized, so the corresponding entries must retire, and shapes
	// missing from the new DAG must retire too.
	nd := dag.New(m.Cat)
	root := nd.AddQuery("hot", viewdef.MustParse(m.Cat, hotQuery))
	base := volcano.NewMatSet()
	base.Full[root.ID] = true
	model := cost.NewModel(cost.Default())
	kept, retired := m.Rebase(nd, model, base)
	if kept+retired != len(oldKeys) {
		t.Errorf("kept %d + retired %d != prior %d entries", kept, retired, len(oldKeys))
	}
	for id, en := range m.entries {
		if nd.Lookup(en.equiv.Key) == nil {
			t.Errorf("entry %d survived rebase but its shape is not in the new DAG", id)
		}
		if base.Full[id] {
			t.Errorf("entry %d survived rebase but is covered by the base set", id)
		}
		if old, ok := oldKeys[en.equiv.Key]; !ok || en.rate >= old {
			t.Errorf("surviving entry %q must carry a decayed prior rate (%g vs %g)",
				en.equiv.Key, en.rate, old)
		}
	}
	// The manager must stay serviceable over the new DAG: the hot query now
	// answers from the base materialization at reuse cost.
	p := m.MustExecute("post", viewdef.MustParse(m.Cat, hotQuery))
	if p.CumCost <= 0 {
		t.Errorf("post-rebase execution must produce a costed plan")
	}
}
