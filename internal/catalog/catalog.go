// Package catalog defines database metadata: table schemas, column types,
// table statistics, key constraints and index descriptors. Every other layer
// (algebra, cost estimation, the AND-OR DAG, the execution engine) consults
// the catalog; it has no dependencies of its own.
package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// Type is the domain of a column. The engine is deliberately small: integers,
// floats and strings cover the TPC-D-style schemas the paper evaluates on.
// Dates are stored as integer day numbers.
type Type int

const (
	// Int is a 64-bit signed integer column.
	Int Type = iota
	// Float is a 64-bit IEEE float column.
	Float
	// String is a variable-width string column.
	String
	// Date is an integer day-number column (kept distinct from Int so that
	// schemas read naturally; it behaves exactly like Int).
	Date
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case String:
		return "VARCHAR"
	case Date:
		return "DATE"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Column describes one attribute of a table.
type Column struct {
	Name  string
	Type  Type
	Width int // average stored width in bytes, used by the cost model
}

// ColumnStats carries per-column statistics used for selectivity estimation.
type ColumnStats struct {
	Distinct int64   // number of distinct values
	Min, Max float64 // numeric value range; ignored for strings
	// Hist, when present, refines range and equality selectivities beyond
	// the uniform Min/Max interpolation.
	Hist *Histogram
}

// TableStats carries per-table statistics.
type TableStats struct {
	Rows    int64
	Columns map[string]ColumnStats
}

// Table is a base relation: schema, statistics, and primary key.
type Table struct {
	Name       string
	Columns    []Column
	PrimaryKey []string
	Stats      TableStats
}

// Column returns the column descriptor with the given name, or false.
func (t *Table) Column(name string) (Column, bool) {
	for _, c := range t.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return Column{}, false
}

// ColumnIndex returns the ordinal position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// RowWidth is the average width of a full tuple in bytes.
func (t *Table) RowWidth() int {
	w := 0
	for _, c := range t.Columns {
		w += c.Width
	}
	return w
}

// DistinctOf returns the distinct-value count recorded for a column, falling
// back to the row count (every value distinct) when no statistic is present.
func (t *Table) DistinctOf(col string) int64 {
	if cs, ok := t.Stats.Columns[col]; ok && cs.Distinct > 0 {
		return cs.Distinct
	}
	if t.Stats.Rows > 0 {
		return t.Stats.Rows
	}
	return 1
}

// Index describes a secondary (or primary) index.
type Index struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

// Key returns a canonical identity string for the index definition,
// independent of the index name.
func (ix Index) Key() string {
	return ix.Table + "(" + strings.Join(ix.Columns, ",") + ")"
}

// ForeignKey declares that every value of Table.Columns appears in
// RefTable.RefColumns. The differential optimizer uses foreign keys to prove
// that certain joins against delta relations are empty (paper §5.3).
type ForeignKey struct {
	Table      string
	Columns    []string
	RefTable   string
	RefColumns []string
}

// Catalog is the metadata root: tables, indexes and foreign keys.
type Catalog struct {
	tables      map[string]*Table
	tableOrder  []string
	indexes     map[string]Index // by Key()
	foreignKeys []ForeignKey
	// leadCount counts indexes per (table, leading column) so HasIndex — a
	// planner hot path — is a single map probe instead of a scan.
	leadCount map[string]int
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:    make(map[string]*Table),
		indexes:   make(map[string]Index),
		leadCount: make(map[string]int),
	}
}

// leadKey identifies a (table, leading column) pair.
func leadKey(table, col string) string { return table + "\x00" + col }

// AddTable registers a table. It panics on duplicate names or empty schemas:
// catalogs are built by code, not user input, so mistakes are programmer bugs.
func (c *Catalog) AddTable(t *Table) {
	if t.Name == "" || len(t.Columns) == 0 {
		panic("catalog: table must have a name and at least one column")
	}
	if _, ok := c.tables[t.Name]; ok {
		panic("catalog: duplicate table " + t.Name)
	}
	if t.Stats.Columns == nil {
		t.Stats.Columns = make(map[string]ColumnStats)
	}
	c.tables[t.Name] = t
	c.tableOrder = append(c.tableOrder, t.Name)
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[name]
	return t, ok
}

// MustTable looks up a table and panics if it is absent.
func (c *Catalog) MustTable(name string) *Table {
	t, ok := c.tables[name]
	if !ok {
		panic("catalog: unknown table " + name)
	}
	return t
}

// Tables returns the table names in registration order.
func (c *Catalog) Tables() []string {
	out := make([]string, len(c.tableOrder))
	copy(out, c.tableOrder)
	return out
}

// AddIndex registers an index. Adding the same (table, columns) definition
// twice is a no-op so that callers can declare indexes idempotently.
func (c *Catalog) AddIndex(ix Index) {
	if _, ok := c.tables[ix.Table]; !ok {
		panic("catalog: index on unknown table " + ix.Table)
	}
	if _, ok := c.indexes[ix.Key()]; !ok && len(ix.Columns) > 0 {
		c.leadCount[leadKey(ix.Table, ix.Columns[0])]++
	}
	c.indexes[ix.Key()] = ix
}

// DropIndex removes an index definition if present.
func (c *Catalog) DropIndex(table string, columns []string) {
	key := Index{Table: table, Columns: columns}.Key()
	if _, ok := c.indexes[key]; ok && len(columns) > 0 {
		c.leadCount[leadKey(table, columns[0])]--
	}
	delete(c.indexes, key)
}

// HasIndex reports whether an index exists whose leading column is col.
func (c *Catalog) HasIndex(table, col string) bool {
	return c.leadCount[leadKey(table, col)] > 0
}

// Indexes returns all index definitions, sorted by key for determinism.
func (c *Catalog) Indexes() []Index {
	out := make([]Index, 0, len(c.indexes))
	for _, ix := range c.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// AddForeignKey registers a foreign-key constraint.
func (c *Catalog) AddForeignKey(fk ForeignKey) {
	if _, ok := c.tables[fk.Table]; !ok {
		panic("catalog: foreign key on unknown table " + fk.Table)
	}
	if _, ok := c.tables[fk.RefTable]; !ok {
		panic("catalog: foreign key references unknown table " + fk.RefTable)
	}
	c.foreignKeys = append(c.foreignKeys, fk)
}

// ForeignKeys returns all declared foreign keys.
func (c *Catalog) ForeignKeys() []ForeignKey {
	out := make([]ForeignKey, len(c.foreignKeys))
	copy(out, c.foreignKeys)
	return out
}

// IsForeignKeyInto reports whether table.col is declared as a foreign key
// referencing refTable (any of its columns). Used by the differential
// optimizer: if r.B is a foreign key into s.A, then δ+s ⋈ r is empty because
// newly inserted s tuples cannot already be referenced by existing r tuples.
func (c *Catalog) IsForeignKeyInto(table, col, refTable string) bool {
	for _, fk := range c.foreignKeys {
		if fk.Table != table || fk.RefTable != refTable {
			continue
		}
		for _, fc := range fk.Columns {
			if fc == col {
				return true
			}
		}
	}
	return false
}

// Clone returns a deep copy of the catalog. The greedy view-selection
// algorithm clones the catalog so that hypothetical index choices do not
// disturb the caller's metadata.
func (c *Catalog) Clone() *Catalog {
	out := New()
	for _, name := range c.tableOrder {
		t := c.tables[name]
		nt := &Table{
			Name:       t.Name,
			Columns:    append([]Column(nil), t.Columns...),
			PrimaryKey: append([]string(nil), t.PrimaryKey...),
			Stats: TableStats{
				Rows:    t.Stats.Rows,
				Columns: make(map[string]ColumnStats, len(t.Stats.Columns)),
			},
		}
		for k, v := range t.Stats.Columns {
			nt.Stats.Columns[k] = v
		}
		out.AddTable(nt)
	}
	for _, ix := range c.Indexes() {
		out.AddIndex(ix)
	}
	for _, fk := range c.foreignKeys {
		out.AddForeignKey(fk)
	}
	return out
}
