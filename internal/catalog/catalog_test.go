package catalog

import (
	"testing"
	"testing/quick"
)

func sample() *Catalog {
	c := New()
	c.AddTable(&Table{
		Name: "orders",
		Columns: []Column{
			{Name: "o_orderkey", Type: Int, Width: 8},
			{Name: "o_custkey", Type: Int, Width: 8},
			{Name: "o_totalprice", Type: Float, Width: 8},
		},
		PrimaryKey: []string{"o_orderkey"},
		Stats: TableStats{
			Rows: 15000,
			Columns: map[string]ColumnStats{
				"o_orderkey": {Distinct: 15000, Min: 1, Max: 15000},
				"o_custkey":  {Distinct: 1000, Min: 1, Max: 1000},
			},
		},
	})
	c.AddTable(&Table{
		Name: "customer",
		Columns: []Column{
			{Name: "c_custkey", Type: Int, Width: 8},
			{Name: "c_name", Type: String, Width: 20},
		},
		PrimaryKey: []string{"c_custkey"},
		Stats:      TableStats{Rows: 1000},
	})
	return c
}

func TestAddAndLookupTable(t *testing.T) {
	c := sample()
	tab, ok := c.Table("orders")
	if !ok || tab.Name != "orders" {
		t.Fatalf("lookup failed")
	}
	if _, ok := c.Table("nope"); ok {
		t.Errorf("missing table should not be found")
	}
	if got := c.Tables(); len(got) != 2 || got[0] != "orders" {
		t.Errorf("Tables() order: %v", got)
	}
}

func TestDuplicateTablePanics(t *testing.T) {
	c := sample()
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate AddTable should panic")
		}
	}()
	c.AddTable(&Table{Name: "orders", Columns: []Column{{Name: "x"}}})
}

func TestRowWidthAndColumnLookup(t *testing.T) {
	c := sample()
	tab := c.MustTable("orders")
	if tab.RowWidth() != 24 {
		t.Errorf("RowWidth = %d, want 24", tab.RowWidth())
	}
	col, ok := tab.Column("o_custkey")
	if !ok || col.Type != Int {
		t.Errorf("Column lookup failed: %v %v", col, ok)
	}
	if tab.ColumnIndex("o_totalprice") != 2 {
		t.Errorf("ColumnIndex wrong")
	}
	if tab.ColumnIndex("nope") != -1 {
		t.Errorf("missing column index should be -1")
	}
}

func TestDistinctOfFallsBackToRows(t *testing.T) {
	c := sample()
	tab := c.MustTable("orders")
	if tab.DistinctOf("o_custkey") != 1000 {
		t.Errorf("recorded distinct should be used")
	}
	if tab.DistinctOf("o_totalprice") != 15000 {
		t.Errorf("fallback should be row count, got %d", tab.DistinctOf("o_totalprice"))
	}
}

func TestIndexLifecycle(t *testing.T) {
	c := sample()
	c.AddIndex(Index{Name: "pk", Table: "orders", Columns: []string{"o_orderkey"}, Unique: true})
	c.AddIndex(Index{Name: "ix", Table: "orders", Columns: []string{"o_custkey"}})
	if !c.HasIndex("orders", "o_orderkey") || !c.HasIndex("orders", "o_custkey") {
		t.Errorf("indexes should be visible")
	}
	if c.HasIndex("customer", "c_custkey") {
		t.Errorf("no index declared on customer")
	}
	// Idempotent re-add.
	c.AddIndex(Index{Name: "dup", Table: "orders", Columns: []string{"o_custkey"}})
	if len(c.Indexes()) != 2 {
		t.Errorf("re-adding same definition should not duplicate: %v", c.Indexes())
	}
	c.DropIndex("orders", []string{"o_custkey"})
	if c.HasIndex("orders", "o_custkey") {
		t.Errorf("dropped index should be gone")
	}
}

func TestForeignKeys(t *testing.T) {
	c := sample()
	c.AddForeignKey(ForeignKey{
		Table: "orders", Columns: []string{"o_custkey"},
		RefTable: "customer", RefColumns: []string{"c_custkey"},
	})
	if !c.IsForeignKeyInto("orders", "o_custkey", "customer") {
		t.Errorf("FK should be detected")
	}
	if c.IsForeignKeyInto("orders", "o_orderkey", "customer") {
		t.Errorf("o_orderkey is not an FK column")
	}
	if c.IsForeignKeyInto("customer", "c_custkey", "orders") {
		t.Errorf("direction matters")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := sample()
	c.AddIndex(Index{Name: "pk", Table: "orders", Columns: []string{"o_orderkey"}})
	cl := c.Clone()
	cl.MustTable("orders").Stats.Rows = 1
	cl.AddIndex(Index{Name: "extra", Table: "customer", Columns: []string{"c_custkey"}})
	if c.MustTable("orders").Stats.Rows != 15000 {
		t.Errorf("clone mutated original stats")
	}
	if c.HasIndex("customer", "c_custkey") {
		t.Errorf("clone index leaked into original")
	}
	if !cl.HasIndex("orders", "o_orderkey") {
		t.Errorf("clone should inherit indexes")
	}
}

func TestIndexKeyCanonical(t *testing.T) {
	f := func(a, b string) bool {
		i1 := Index{Name: a, Table: "t", Columns: []string{"x", "y"}}
		i2 := Index{Name: b, Table: "t", Columns: []string{"x", "y"}}
		return i1.Key() == i2.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeStrings(t *testing.T) {
	if Int.String() != "INT" || Float.String() != "FLOAT" ||
		String.String() != "VARCHAR" || Date.String() != "DATE" {
		t.Errorf("type names wrong")
	}
}
