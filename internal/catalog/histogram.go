package catalog

import "fmt"

// Histogram is an equi-width histogram over a numeric column, used by the
// cost estimator for range-predicate selectivity when present (falling back
// to the uniform min/max interpolation otherwise). Real optimizers — and
// the Volcano derivative the paper builds on — estimate selectivities from
// catalog statistics of exactly this kind.
type Histogram struct {
	// Lo and Hi bound the histogram's range; values outside contribute to
	// the edge buckets.
	Lo, Hi float64
	// Counts holds per-bucket row counts; bucket i spans
	// [Lo + i*w, Lo + (i+1)*w) with w = (Hi−Lo)/len(Counts).
	Counts []float64
	total  float64
}

// NewHistogram builds an empty histogram with the given bucket count.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets < 1 || hi <= lo {
		panic(fmt.Sprintf("catalog: invalid histogram [%g,%g) x%d", lo, hi, buckets))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]float64, buckets)}
}

// Add records one value.
func (h *Histogram) Add(v float64) {
	h.Counts[h.bucket(v)]++
	h.total++
}

func (h *Histogram) bucket(v float64) int {
	if v < h.Lo {
		return 0
	}
	if v >= h.Hi {
		return len(h.Counts) - 1
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	i := int((v - h.Lo) / w)
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// Total returns the number of recorded values.
func (h *Histogram) Total() float64 { return h.total }

// FracBelow estimates the fraction of values strictly below v, interpolating
// linearly within the containing bucket.
func (h *Histogram) FracBelow(v float64) float64 {
	if h.total == 0 {
		return 0
	}
	if v <= h.Lo {
		return 0
	}
	if v >= h.Hi {
		return 1
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	i := h.bucket(v)
	below := 0.0
	for j := 0; j < i; j++ {
		below += h.Counts[j]
	}
	frac := (v - (h.Lo + float64(i)*w)) / w
	below += h.Counts[i] * frac
	return below / h.total
}

// FracEq estimates the fraction of values equal to v: the containing
// bucket's mass spread uniformly over the recorded distinct count per
// bucket (approximated as bucket width for integer domains).
func (h *Histogram) FracEq(v float64, columnDistinct int64) float64 {
	if h.total == 0 || v < h.Lo || v > h.Hi {
		return 0
	}
	bucketMass := h.Counts[h.bucket(v)] / h.total
	perBucketDistinct := float64(columnDistinct) / float64(len(h.Counts))
	if perBucketDistinct < 1 {
		perBucketDistinct = 1
	}
	return bucketMass / perBucketDistinct
}
