package catalog

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramUniform(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	if h.Total() != 1000 {
		t.Fatalf("total = %g", h.Total())
	}
	if got := h.FracBelow(50); math.Abs(got-0.5) > 0.02 {
		t.Errorf("FracBelow(50) = %g, want ~0.5", got)
	}
	if got := h.FracBelow(0); got != 0 {
		t.Errorf("FracBelow(lo) should be 0, got %g", got)
	}
	if got := h.FracBelow(100); got != 1 {
		t.Errorf("FracBelow(hi) should be 1, got %g", got)
	}
}

func TestHistogramSkew(t *testing.T) {
	// 90% of mass in [0,10): a range predicate v<10 should see ~0.9, far from
	// the uniform interpolation's 0.1.
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 900; i++ {
		h.Add(float64(i % 10))
	}
	for i := 0; i < 100; i++ {
		h.Add(float64(10 + i%90))
	}
	if got := h.FracBelow(10); math.Abs(got-0.9) > 0.02 {
		t.Errorf("skewed FracBelow(10) = %g, want ~0.9", got)
	}
}

func TestHistogramFracEq(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	// 100 distinct values, 10 per bucket, uniform: each value ≈ 1/100.
	if got := h.FracEq(42, 100); math.Abs(got-0.01) > 0.003 {
		t.Errorf("FracEq = %g, want ~0.01", got)
	}
	if h.FracEq(-5, 100) != 0 || h.FracEq(200, 100) != 0 {
		t.Errorf("out-of-range equality should be 0")
	}
}

func TestHistogramFracBelowMonotone(t *testing.T) {
	h := NewHistogram(0, 1000, 17)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		h.Add(r.Float64() * 1000)
	}
	f := func(a, b uint16) bool {
		x, y := float64(a%1000), float64(b%1000)
		if x > y {
			x, y = y, x
		}
		return h.FracBelow(x) <= h.FracBelow(y)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramEdgeClamping(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	h.Add(-100) // below range → first bucket
	h.Add(100)  // above range → last bucket
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("edge values should clamp to edge buckets: %v", h.Counts)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("invalid histogram should panic")
		}
	}()
	NewHistogram(10, 10, 5)
}
