// Package dag implements the AND-OR DAG representation of queries used by
// the Volcano optimizer family and extended by [RSSB00] and this paper
// (§4). OR-nodes ("equivalence nodes", Equiv) represent sets of logically
// equivalent expressions; AND-nodes ("operation nodes", Op) represent one
// algebraic operation applied to equivalence-node inputs.
//
// Queries are inserted one at a time. Select-project-join blocks are fully
// expanded: the DAG holds one equivalence node per (connected) subset of the
// block's join items with one join operation per way of splitting the subset
// in two — exactly the "expanded DAG" of the paper's Figure 1(c), where join
// associativity has been applied exhaustively and commutativity is implicit
// (the physical costing considers both input orders of every join node).
// Unification is by canonical key, so logically equivalent subexpressions of
// different queries map to the same equivalence node, which is what exposes
// sharing opportunities to the multi-query optimizer.
package dag

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/catalog"
)

// OpKind discriminates operation nodes.
type OpKind int

const (
	// OpScan reads a base relation (leaf operation; paper footnote 4:
	// relation scans are explicit operations with a cost).
	OpScan OpKind = iota
	// OpSelect filters by a conjunctive predicate.
	OpSelect
	// OpJoin is an inner multiset join.
	OpJoin
	// OpProject keeps a column subset.
	OpProject
	// OpAggregate groups and aggregates.
	OpAggregate
	// OpUnion is multiset union.
	OpUnion
	// OpMinus is multiset difference.
	OpMinus
	// OpDedup is duplicate elimination.
	OpDedup
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpScan:
		return "scan"
	case OpSelect:
		return "select"
	case OpJoin:
		return "join"
	case OpProject:
		return "project"
	case OpAggregate:
		return "aggregate"
	case OpUnion:
		return "union"
	case OpMinus:
		return "minus"
	case OpDedup:
		return "dedup"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is an AND-node: one operation and its equivalence-node inputs.
type Op struct {
	ID       int
	Kind     OpKind
	Children []*Equiv
	Parent   *Equiv

	// Table is set for OpScan.
	Table string
	// Pred is the predicate applied by OpSelect, or the join conjuncts
	// applied by this OpJoin (connecting its two children).
	Pred algebra.Pred
	// GroupBy and Aggs are set for OpAggregate.
	GroupBy []algebra.ColRef
	Aggs    []algebra.AggSpec
	// Cols is set for OpProject.
	Cols []algebra.ColRef

	// innerCols caches, per child of an OpJoin, the inner-side column of the
	// first usable equi-conjunct (or ""). Precomputed at insertion so the
	// planners' index-probe checks do no per-call string work.
	innerCols [2]string
}

// InnerJoinCol returns the inner-side column of the first equi-conjunct of a
// join when inner is one of its children, or "".
func (op *Op) InnerJoinCol(inner *Equiv) string {
	for i, c := range op.Children {
		if c == inner {
			return op.innerCols[i]
		}
	}
	return ""
}

// innerColOf finds the first equi-conjunct column present in a schema.
func innerColOf(pred algebra.Pred, s algebra.Schema) string {
	for _, c := range pred.Conjuncts {
		if c.Op != algebra.EQ {
			continue
		}
		lc, lok := c.L.(algebra.ColRef)
		rc, rok := c.R.(algebra.ColRef)
		if !lok || !rok {
			continue
		}
		if s.Has(lc.QName()) {
			return lc.QName()
		}
		if s.Has(rc.QName()) {
			return rc.QName()
		}
	}
	return ""
}

// Equiv is an OR-node: a set of equivalent expressions, one per child Op.
type Equiv struct {
	ID  int
	Key string
	// Schema of the result.
	Schema algebra.Schema
	// Ops are the alternative operations producing this result. Ops[0] is
	// the "natural" operation from query insertion; derivation operations
	// added by subsumption follow it.
	Ops []*Op
	// Parents are operations consuming this result.
	Parents []*Op
	// Tables is the sorted set of base relations in the subtree.
	Tables []string
	// IsTable marks base-relation leaves; Ops then holds a single OpScan.
	IsTable bool
}

// DependsOn reports whether the node's result depends on a base relation.
func (e *Equiv) DependsOn(table string) bool {
	for _, t := range e.Tables {
		if t == table {
			return true
		}
	}
	return false
}

// String renders a short identity for debugging.
func (e *Equiv) String() string {
	return fmt.Sprintf("e%d{%s}", e.ID, e.Key)
}

// DAG is the shared AND-OR DAG over a catalog.
type DAG struct {
	Cat    *catalog.Catalog
	Equivs []*Equiv
	Roots  []*Equiv
	// RootNames[i] names Roots[i] (the view or query registered).
	RootNames []string

	byKey    map[string]*Equiv
	nextOp   int
	selects  []selInfo
	subsumed bool
}

// New creates an empty DAG.
func New(cat *catalog.Catalog) *DAG {
	return &DAG{Cat: cat, byKey: make(map[string]*Equiv)}
}

// BaseTables returns the sorted set of base relations referenced by any
// registered query.
func (d *DAG) BaseTables() []string {
	seen := map[string]bool{}
	for _, e := range d.Equivs {
		if e.IsTable {
			seen[e.Tables[0]] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// intern returns the equivalence node with the given key, creating it if
// needed. Creation runs mk to populate schema/tables; mk must not recurse
// into intern with the same key.
func (d *DAG) intern(key string, mk func(e *Equiv)) (*Equiv, bool) {
	if e, ok := d.byKey[key]; ok {
		return e, false
	}
	e := &Equiv{ID: len(d.Equivs), Key: key}
	d.byKey[key] = e
	d.Equivs = append(d.Equivs, e)
	mk(e)
	return e, true
}

// addOp attaches a new operation node under parent.
func (d *DAG) addOp(parent *Equiv, op *Op) *Op {
	op.ID = d.nextOp
	d.nextOp++
	op.Parent = parent
	parent.Ops = append(parent.Ops, op)
	for _, c := range op.Children {
		c.Parents = append(c.Parents, op)
	}
	if op.Kind == OpJoin {
		for i, c := range op.Children {
			op.innerCols[i] = innerColOf(op.Pred, c.Schema)
		}
	}
	return op
}

// tableEquiv returns (creating on demand) the leaf node for a base relation.
func (d *DAG) tableEquiv(table string) *Equiv {
	e, created := d.intern(table, func(e *Equiv) {
		t := d.Cat.MustTable(table)
		e.Schema = algebra.TableSchema(t, table)
		e.Tables = []string{table}
		e.IsTable = true
	})
	if created {
		d.addOp(e, &Op{Kind: OpScan, Table: table})
	}
	return e
}

// AddQuery inserts a view or query definition into the DAG, expanding its
// select-project-join blocks and unifying shared subexpressions with nodes
// already present. It returns the root equivalence node.
func (d *DAG) AddQuery(name string, root algebra.Node) *Equiv {
	e := d.insert(root)
	d.Roots = append(d.Roots, e)
	d.RootNames = append(d.RootNames, name)
	return e
}

// InsertExpr inserts a definition like AddQuery but without registering a
// root, returning its equivalence node. Serving front ends use it for ad-hoc
// queries: a repeated query unifies with the nodes already present and adds
// nothing, so the DAG does not grow with the query count, only with the
// number of distinct query shapes.
func (d *DAG) InsertExpr(n algebra.Node) *Equiv { return d.insert(n) }

// Lookup returns the equivalence node with the given canonical key, or nil.
// Keys are stable across DAG instances built over the same catalog, so a
// node of one DAG can be located in another by key (the serving layer maps
// the optimizer's materialized set into its own DAG this way).
func (d *DAG) Lookup(key string) *Equiv { return d.byKey[key] }

// insert recursively translates a logical tree into DAG nodes.
func (d *DAG) insert(n algebra.Node) *Equiv {
	switch t := n.(type) {
	case *algebra.Scan:
		return d.tableEquiv(t.Table)
	case *algebra.Select, *algebra.Join:
		return d.insertSPJ(n)
	case *algebra.Project:
		child := d.insert(t.Input)
		return d.insertProject(t.Cols, child)
	case *algebra.Aggregate:
		child := d.insert(t.Input)
		return d.insertAggregate(t.GroupBy, t.Aggs, child)
	case *algebra.Union:
		l, r := d.insert(t.L), d.insert(t.R)
		return d.insertBinary(OpUnion, l, r)
	case *algebra.Minus:
		l, r := d.insert(t.L), d.insert(t.R)
		return d.insertBinary(OpMinus, l, r)
	case *algebra.Dedup:
		child := d.insert(t.Input)
		return d.insertDedup(child)
	default:
		panic(fmt.Sprintf("dag: unsupported node %T", n))
	}
}

func (d *DAG) insertProject(cols []algebra.ColRef, child *Equiv) *Equiv {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.QName()
	}
	key := "project[" + strings.Join(names, ",") + "](" + child.Key + ")"
	e, created := d.intern(key, func(e *Equiv) {
		sch := make(algebra.Schema, len(cols))
		for i, c := range cols {
			j := child.Schema.IndexOf(c.QName())
			if j < 0 {
				panic(fmt.Sprintf("dag: project column %s not in %s", c.QName(), child.Schema))
			}
			sch[i] = child.Schema[j]
		}
		e.Schema = sch
		e.Tables = child.Tables
	})
	if created {
		d.addOp(e, &Op{Kind: OpProject, Children: []*Equiv{child}, Cols: cols})
	}
	return e
}

func (d *DAG) insertAggregate(groupBy []algebra.ColRef, aggs []algebra.AggSpec, child *Equiv) *Equiv {
	gs := make([]string, len(groupBy))
	for i, g := range groupBy {
		gs[i] = g.QName()
	}
	sort.Strings(gs)
	as := make([]string, len(aggs))
	for i, a := range aggs {
		as[i] = a.String()
	}
	sort.Strings(as)
	key := "gb[" + strings.Join(gs, ",") + ";" + strings.Join(as, ",") + "](" + child.Key + ")"
	e, created := d.intern(key, func(e *Equiv) {
		// Rebuild the output schema the same way algebra.NewAggregate does.
		sch := make(algebra.Schema, 0, len(groupBy)+len(aggs))
		for _, g := range groupBy {
			j := child.Schema.IndexOf(g.QName())
			if j < 0 {
				panic(fmt.Sprintf("dag: group-by column %s not in %s", g.QName(), child.Schema))
			}
			sch = append(sch, child.Schema[j])
		}
		for _, a := range aggs {
			name := a.As
			if name == "" {
				name = strings.ToLower(a.Func.String())
				if a.Func != algebra.Count {
					name += "_" + a.Col.Name
				}
			}
			typ := catalog.Float
			if a.Func == algebra.Count {
				typ = catalog.Int
			}
			sch = append(sch, algebra.Col{Rel: "agg", Name: name, Type: typ, Width: 8})
		}
		e.Schema = sch
		e.Tables = child.Tables
	})
	if created {
		d.addOp(e, &Op{Kind: OpAggregate, Children: []*Equiv{child}, GroupBy: groupBy, Aggs: aggs})
	}
	return e
}

func (d *DAG) insertBinary(kind OpKind, l, r *Equiv) *Equiv {
	key := kind.String() + "(" + l.Key + "," + r.Key + ")"
	e, created := d.intern(key, func(e *Equiv) {
		e.Schema = l.Schema
		e.Tables = unionTables(l.Tables, r.Tables)
	})
	if created {
		d.addOp(e, &Op{Kind: kind, Children: []*Equiv{l, r}})
	}
	return e
}

func (d *DAG) insertDedup(child *Equiv) *Equiv {
	key := "dedup(" + child.Key + ")"
	e, created := d.intern(key, func(e *Equiv) {
		e.Schema = child.Schema
		e.Tables = child.Tables
	})
	if created {
		d.addOp(e, &Op{Kind: OpDedup, Children: []*Equiv{child}})
	}
	return e
}

func unionTables(a, b []string) []string {
	seen := map[string]bool{}
	for _, t := range a {
		seen[t] = true
	}
	for _, t := range b {
		seen[t] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
