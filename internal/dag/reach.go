package dag

// Reachability helpers over the AND-OR DAG. The refresh scheduler uses them
// to validate its task graph: a differential of node e may only reuse
// differentials of nodes *below* e (operation inputs, transitively), so
// reuse edges always point strictly downward and the task graph inherits the
// DAG's acyclicity.

// Descendants returns the set of equivalence-node IDs reachable from e
// through operation inputs, including e itself.
func (d *DAG) Descendants(e *Equiv) map[int]bool {
	seen := make(map[int]bool)
	stack := []*Equiv{e}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n.ID] {
			continue
		}
		seen[n.ID] = true
		for _, op := range n.Ops {
			for _, c := range op.Children {
				if !seen[c.ID] {
					stack = append(stack, c)
				}
			}
		}
	}
	return seen
}

// Reaches reports whether to is reachable from from through operation
// inputs (a node reaches itself).
func (d *DAG) Reaches(from, to *Equiv) bool {
	if from == to {
		return true
	}
	return d.Descendants(from)[to.ID]
}
