package dag

import (
	"fmt"
	"sort"
	"strings"
)

// Dot renders the AND-OR DAG in Graphviz DOT format: equivalence nodes as
// boxes, operation nodes as circles (the paper's Figure 1 convention), with
// registered query roots highlighted. Useful for debugging expansions and
// for documentation.
func (d *DAG) Dot() string {
	var b strings.Builder
	b.WriteString("digraph andor {\n  rankdir=BT;\n")
	roots := map[int]string{}
	for i, r := range d.Roots {
		roots[r.ID] = d.RootNames[i]
	}
	for _, e := range d.Equivs {
		label := e.Key
		if len(label) > 40 {
			label = label[:37] + "..."
		}
		attrs := fmt.Sprintf("shape=box,label=%q", fmt.Sprintf("e%d: %s", e.ID, label))
		if name, ok := roots[e.ID]; ok {
			attrs += fmt.Sprintf(",style=bold,xlabel=%q", name)
		}
		fmt.Fprintf(&b, "  e%d [%s];\n", e.ID, attrs)
		for _, op := range e.Ops {
			fmt.Fprintf(&b, "  o%d [shape=circle,label=%q];\n", op.ID, op.Kind.String())
			fmt.Fprintf(&b, "  o%d -> e%d;\n", op.ID, e.ID)
			for _, c := range op.Children {
				fmt.Fprintf(&b, "  e%d -> o%d;\n", c.ID, op.ID)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarizes the DAG's size: equivalence nodes, operation nodes,
// and per-kind operation counts. Used by tests and the CLI.
type Stats struct {
	Equivs, Ops int
	ByKind      map[OpKind]int
}

// Statistics computes DAG size statistics.
func (d *DAG) Statistics() Stats {
	s := Stats{Equivs: len(d.Equivs), ByKind: map[OpKind]int{}}
	for _, e := range d.Equivs {
		s.Ops += len(e.Ops)
		for _, op := range e.Ops {
			s.ByKind[op.Kind]++
		}
	}
	return s
}

// String renders the statistics compactly and deterministically.
func (s Stats) String() string {
	kinds := make([]OpKind, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, s.ByKind[k]))
	}
	return fmt.Sprintf("equivs=%d ops=%d (%s)", s.Equivs, s.Ops, strings.Join(parts, " "))
}
