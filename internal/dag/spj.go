package dag

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/algebra"
)

// insertSPJ translates a maximal select-project-join block into the subset
// lattice: one equivalence node per (connected) subset of the block's join
// items, one join operation per way of splitting a subset in two. Local
// predicates are applied at the leaves (pushed all the way down); every join
// conjunct is applied at the lowest join where both of its sides meet.
// Disjunctive clauses never drive the lattice: single-item clauses join the
// item's local selection, cross-item clauses are applied in one selection on
// top of the block (they cannot serve as join conditions).
func (d *DAG) insertSPJ(n algebra.Node) *Equiv {
	items, preds, clauses := d.collectBlock(n)
	if len(items) == 1 && len(preds) == 0 && len(clauses) == 0 {
		return items[0]
	}
	for i := range items {
		for j := i + 1; j < len(items); j++ {
			if items[i].Key == items[j].Key {
				panic("dag: self-joins (duplicate join inputs) are not supported")
			}
		}
	}

	// Map every conjunct to the set of items it references (as a bitmask).
	itemOf := func(q string) int {
		for i, it := range items {
			if it.Schema.Has(q) {
				return i
			}
		}
		return -1
	}
	binds := make([]predBind, 0, len(preds))
	localPreds := make([][]algebra.Cmp, len(items))
	for _, p := range preds {
		var mask uint
		for _, q := range p.Columns(nil) {
			i := itemOf(q)
			if i < 0 {
				panic(fmt.Sprintf("dag: predicate column %s matches no join input", q))
			}
			mask |= 1 << uint(i)
		}
		if bits.OnesCount(mask) <= 1 {
			i := bits.TrailingZeros(mask)
			if mask == 0 {
				// Constant-only conjunct: attach to item 0.
				i = 0
			}
			localPreds[i] = append(localPreds[i], p)
			continue
		}
		binds = append(binds, predBind{cmp: p, mask: mask})
	}

	// Classify clauses: a clause whose columns all come from one item is
	// applied with that item's local predicates; anything wider waits for the
	// top of the block.
	localClauses := make([][][]algebra.Cmp, len(items))
	var topClauses [][]algebra.Cmp
	for _, cl := range clauses {
		var mask uint
		var cols []string
		for _, c := range cl {
			cols = c.Columns(cols)
		}
		for _, q := range cols {
			i := itemOf(q)
			if i < 0 {
				panic(fmt.Sprintf("dag: predicate column %s matches no join input", q))
			}
			mask |= 1 << uint(i)
		}
		if bits.OnesCount(mask) <= 1 {
			i := bits.TrailingZeros(mask)
			if mask == 0 {
				i = 0
			}
			localClauses[i] = append(localClauses[i], cl)
			continue
		}
		topClauses = append(topClauses, cl)
	}

	// Leaf equivalence nodes: each item with its local predicates applied.
	leaves := make([]*Equiv, len(items))
	for i, it := range items {
		leaves[i] = d.selectEquiv(algebra.Pred{Conjuncts: localPreds[i], Clauses: localClauses[i]}, it)
	}
	seen := map[string]bool{}
	for _, l := range leaves {
		if seen[l.Key] {
			panic("dag: self-joins (duplicate join inputs) are not supported")
		}
		seen[l.Key] = true
	}
	if len(leaves) == 1 {
		return leaves[0]
	}

	// Connectivity of subsets under the join-predicate graph. Cross products
	// are admitted only if the whole block is disconnected (so that a plan
	// always exists) — the standard way to keep the lattice small.
	full := uint(1)<<uint(len(items)) - 1
	connected := func(mask uint) bool {
		if mask == 0 {
			return false
		}
		start := uint(1) << uint(bits.TrailingZeros(mask))
		reach := start
		for {
			grew := false
			for _, b := range binds {
				if b.mask&mask == b.mask && reach&b.mask != 0 && b.mask&^reach != 0 {
					reach |= b.mask & mask
					grew = true
				}
			}
			if !grew {
				break
			}
		}
		return reach == mask
	}
	crossOK := !connected(full)
	subsetOK := func(mask uint) bool { return crossOK || connected(mask) }

	// Build the lattice bottom-up; masks in increasing numeric order visit
	// all submasks before their supersets.
	nodes := make(map[uint]*Equiv, 1<<uint(len(items)))
	for i := range leaves {
		nodes[uint(1)<<uint(i)] = leaves[i]
	}
	for mask := uint(3); mask <= full; mask++ {
		if bits.OnesCount(mask) < 2 || mask&full != mask || !subsetOK(mask) {
			continue
		}
		e, created := d.intern(d.subsetKey(mask, leaves, binds), func(e *Equiv) {
			e.Schema = d.subsetSchema(mask, leaves)
			e.Tables = d.subsetTables(mask, leaves)
		})
		nodes[mask] = e
		if !created {
			continue // identical subset already fully expanded
		}
		low := uint(1) << uint(bits.TrailingZeros(mask))
		rest := mask &^ low
		// Enumerate splits {s1, s2} once each by keeping the lowest item in s1.
		for sub := rest; ; sub = (sub - 1) & rest {
			s1 := low | sub
			s2 := mask &^ s1
			if s2 != 0 && subsetOK(s1) && subsetOK(s2) {
				var conj []algebra.Cmp
				for _, b := range binds {
					if b.mask&mask == b.mask && b.mask&^s1 != 0 && b.mask&^s2 != 0 {
						conj = append(conj, b.cmp)
					}
				}
				if len(conj) > 0 || crossOK {
					l, r := nodes[s1], nodes[s2]
					if l != nil && r != nil {
						d.addOp(e, &Op{
							Kind:     OpJoin,
							Children: []*Equiv{l, r},
							Pred:     algebra.Pred{Conjuncts: conj},
						})
					}
				}
			}
			if sub == 0 {
				break
			}
		}
		if len(e.Ops) == 0 {
			panic(fmt.Sprintf("dag: no join split produced a plan for subset %b", mask))
		}
	}
	root := nodes[full]
	if root == nil {
		panic("dag: join block root missing")
	}
	if len(topClauses) > 0 {
		root = d.selectEquiv(algebra.Pred{Clauses: topClauses}, root)
	}
	return root
}

// selectEquiv returns the node for σ_pred(child), registering it for
// subsumption analysis. An empty predicate returns the child unchanged.
func (d *DAG) selectEquiv(pred algebra.Pred, child *Equiv) *Equiv {
	if pred.IsTrue() {
		return child
	}
	key := "select[" + pred.String() + "](" + child.Key + ")"
	e, created := d.intern(key, func(e *Equiv) {
		e.Schema = child.Schema
		e.Tables = child.Tables
	})
	if created {
		d.addOp(e, &Op{Kind: OpSelect, Children: []*Equiv{child}, Pred: pred})
		d.selects = append(d.selects, selInfo{equiv: e, child: child, pred: pred})
	}
	return e
}

// predBind pairs a join conjunct with the bitmask of items it references.
type predBind struct {
	cmp  algebra.Cmp
	mask uint
}

// subsetKey builds the canonical identity of a join subset: sorted leaf keys
// plus the sorted join conjuncts applicable inside the subset. Two different
// queries whose blocks share a subset therefore unify automatically.
func (d *DAG) subsetKey(mask uint, leaves []*Equiv, binds []predBind) string {
	var leafKeys []string
	for i, l := range leaves {
		if mask&(1<<uint(i)) != 0 {
			leafKeys = append(leafKeys, l.Key)
		}
	}
	sort.Strings(leafKeys)
	var predKeys []string
	for _, b := range binds {
		if b.mask&mask == b.mask {
			predKeys = append(predKeys, b.cmp.String())
		}
	}
	sort.Strings(predKeys)
	return "spj{" + strings.Join(leafKeys, " & ") + " | " + strings.Join(predKeys, ",") + "}"
}

// subsetSchema concatenates the leaf schemas of a subset in canonical
// (leaf-key-sorted) order, so the schema is identical however the subset was
// reached.
func (d *DAG) subsetSchema(mask uint, leaves []*Equiv) algebra.Schema {
	var in []*Equiv
	for i, l := range leaves {
		if mask&(1<<uint(i)) != 0 {
			in = append(in, l)
		}
	}
	sort.Slice(in, func(i, j int) bool { return in[i].Key < in[j].Key })
	var sch algebra.Schema
	for _, l := range in {
		sch = sch.Concat(l.Schema)
	}
	return sch
}

// subsetTables unions the base tables of a subset's leaves.
func (d *DAG) subsetTables(mask uint, leaves []*Equiv) []string {
	var out []string
	for i, l := range leaves {
		if mask&(1<<uint(i)) != 0 {
			out = unionTables(out, l.Tables)
		}
	}
	return out
}

// collectBlock walks down through Select and Join nodes gathering the join
// items (non-SPJ subtrees, inserted recursively), all conjuncts, and all
// disjunctive clauses.
func (d *DAG) collectBlock(n algebra.Node) (items []*Equiv, preds []algebra.Cmp, clauses [][]algebra.Cmp) {
	switch t := n.(type) {
	case *algebra.Select:
		preds = append(preds, t.Pred.Conjuncts...)
		clauses = append(clauses, t.Pred.Clauses...)
		ci, cp, cc := d.collectBlock(t.Input)
		return append(items, ci...), append(preds, cp...), append(clauses, cc...)
	case *algebra.Join:
		preds = append(preds, t.Pred.Conjuncts...)
		clauses = append(clauses, t.Pred.Clauses...)
		li, lp, lc := d.collectBlock(t.L)
		ri, rp, rc := d.collectBlock(t.R)
		items = append(items, li...)
		items = append(items, ri...)
		preds = append(preds, lp...)
		preds = append(preds, rp...)
		clauses = append(clauses, lc...)
		return items, preds, append(clauses, rc...)
	default:
		return []*Equiv{d.insert(n)}, nil, nil
	}
}
