package dag

import (
	"strings"
	"testing"
)

func TestDotOutput(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	d.AddQuery("v", chainJoin(cat, "a", "b", "c"))
	dot := d.Dot()
	if !strings.HasPrefix(dot, "digraph andor {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("not valid DOT framing:\n%s", dot)
	}
	// Every equivalence node and operation node must appear.
	st := d.Statistics()
	if got := strings.Count(dot, "shape=box"); got != st.Equivs {
		t.Errorf("expected %d box nodes, got %d", st.Equivs, got)
	}
	if got := strings.Count(dot, "shape=circle"); got != st.Ops {
		t.Errorf("expected %d circle nodes, got %d", st.Ops, got)
	}
	if !strings.Contains(dot, `xlabel="v"`) {
		t.Errorf("root should be labeled with the view name")
	}
}

func TestStatistics(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	d.AddQuery("v", chainJoin(cat, "a", "b", "c"))
	st := d.Statistics()
	if st.Equivs != 6 {
		t.Errorf("6 equivs expected, got %d", st.Equivs)
	}
	// 3 scans + joins: {ab}:1, {bc}:1, {abc}:2 → 4 joins.
	if st.ByKind[OpScan] != 3 || st.ByKind[OpJoin] != 4 {
		t.Errorf("op counts wrong: %s", st)
	}
	if !strings.Contains(st.String(), "equivs=6") {
		t.Errorf("stats render wrong: %s", st)
	}
}
