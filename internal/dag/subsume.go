package dag

import (
	"sort"

	"repro/internal/algebra"
)

// selInfo records a selection equivalence node for subsumption analysis.
type selInfo struct {
	equiv *Equiv
	child *Equiv
	pred  algebra.Pred
}

// aggInfo records an aggregate equivalence node for subsumption analysis.
type aggInfo struct {
	equiv   *Equiv
	child   *Equiv
	groupBy []algebra.ColRef
	aggs    []algebra.AggSpec
}

// ApplySubsumption adds subsumption derivations to the DAG (paper §4.2 and
// [RSSB00]):
//
//   - selection subsumption: σ_P1(E) is derivable from σ_P2(E) when P1's
//     conjuncts are a superset of P2's (apply the missing conjuncts), or when
//     a single range conjunct of P1 implies the corresponding conjunct of P2
//     (σ_{a<5} from σ_{a<10});
//   - aggregation subsumption: a coarser group-by is derivable from a finer
//     one over the same input by re-aggregating (SUM of SUMs, SUM of COUNTs,
//     MIN of MINs, MAX of MAXs);
//   - group-by union introduction: for aggregates γ_{G1} and γ_{G2} over the
//     same input with the same re-aggregatable functions, a new node
//     γ_{G1∪G2} is introduced and both originals gain derivations from it —
//     the paper's dno/age example.
//
// The method is idempotent: calling it twice adds nothing new.
func (d *DAG) ApplySubsumption() {
	if d.subsumed {
		return
	}
	d.subsumed = true
	d.subsumeSelections()
	d.subsumeAggregates()
}

func (d *DAG) subsumeSelections() {
	// Group selection nodes by child.
	byChild := map[*Equiv][]selInfo{}
	for _, s := range d.selects {
		byChild[s.child] = append(byChild[s.child], s)
	}
	for _, group := range byChild {
		for i := range group {
			for j := range group {
				if i == j {
					continue
				}
				fine, coarse := group[i], group[j]
				if rest, ok := predMinus(fine.pred, coarse.pred); ok {
					// fine = coarse ∧ rest: derive fine by filtering coarse.
					d.addOp(fine.equiv, &Op{
						Kind:     OpSelect,
						Children: []*Equiv{coarse.equiv},
						Pred:     rest,
					})
					continue
				}
				if impliedBy(fine.pred, coarse.pred) {
					// Every tuple of fine passes coarse: filter coarse by the
					// full fine predicate.
					d.addOp(fine.equiv, &Op{
						Kind:     OpSelect,
						Children: []*Equiv{coarse.equiv},
						Pred:     fine.pred,
					})
				}
			}
		}
	}
}

// predMinus returns fine's conjuncts not present in coarse, succeeding only
// when coarse's conjuncts are a strict subset of fine's. Disjunctive clauses
// carry no implication reasoning here: any clause on either side
// conservatively fails the test.
func predMinus(fine, coarse algebra.Pred) (algebra.Pred, bool) {
	if fine.HasClauses() || coarse.HasClauses() {
		return algebra.Pred{}, false
	}
	if len(coarse.Conjuncts) >= len(fine.Conjuncts) {
		return algebra.Pred{}, false
	}
	have := map[string]bool{}
	for _, c := range fine.Conjuncts {
		have[c.String()] = true
	}
	for _, c := range coarse.Conjuncts {
		if !have[c.String()] {
			return algebra.Pred{}, false
		}
	}
	inCoarse := map[string]bool{}
	for _, c := range coarse.Conjuncts {
		inCoarse[c.String()] = true
	}
	var rest []algebra.Cmp
	for _, c := range fine.Conjuncts {
		if !inCoarse[c.String()] {
			rest = append(rest, c)
		}
	}
	if len(rest) == 0 {
		return algebra.Pred{}, false
	}
	return algebra.Pred{Conjuncts: rest}, true
}

// impliedBy reports whether pred fine logically implies pred coarse, using
// per-conjunct range reasoning on (column op constant) comparisons: every
// conjunct of coarse must be implied by some conjunct of fine.
func impliedBy(fine, coarse algebra.Pred) bool {
	// Conservative: clause-bearing predicates opt out of implication.
	if fine.HasClauses() || coarse.HasClauses() {
		return false
	}
	if len(coarse.Conjuncts) == 0 {
		return true
	}
	for _, cc := range coarse.Conjuncts {
		ok := false
		for _, fc := range fine.Conjuncts {
			if cmpImplies(fc, cc) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// cmpImplies reports whether comparison a implies comparison b. Both must be
// (column op constant) over the same column.
func cmpImplies(a, b algebra.Cmp) bool {
	if a.String() == b.String() {
		return true
	}
	ac, aok := a.L.(algebra.ColRef)
	av, avok := a.R.(algebra.Const)
	bc, bok := b.L.(algebra.ColRef)
	bv, bvok := b.R.(algebra.Const)
	if !aok || !avok || !bok || !bvok || ac.QName() != bc.QName() {
		return false
	}
	x, y := av.Val.AsFloat(), bv.Val.AsFloat()
	switch a.Op {
	case algebra.LT:
		return (b.Op == algebra.LT && x <= y) || (b.Op == algebra.LE && x <= y)
	case algebra.LE:
		return (b.Op == algebra.LE && x <= y) || (b.Op == algebra.LT && x < y)
	case algebra.GT:
		return (b.Op == algebra.GT && x >= y) || (b.Op == algebra.GE && x >= y)
	case algebra.GE:
		return (b.Op == algebra.GE && x >= y) || (b.Op == algebra.GT && x > y)
	case algebra.EQ:
		switch b.Op {
		case algebra.LT:
			return x < y
		case algebra.LE:
			return x <= y
		case algebra.GT:
			return x > y
		case algebra.GE:
			return x >= y
		case algebra.EQ:
			return x == y
		}
	}
	return false
}

func (d *DAG) subsumeAggregates() {
	// Collect aggregate operations (natural ones inserted by queries).
	var infos []aggInfo
	for _, e := range d.Equivs {
		if len(e.Ops) == 0 || e.Ops[0].Kind != OpAggregate {
			continue
		}
		op := e.Ops[0]
		infos = append(infos, aggInfo{equiv: e, child: op.Children[0], groupBy: op.GroupBy, aggs: op.Aggs})
	}
	aggSig := func(a aggInfo) string {
		ss := make([]string, len(a.aggs))
		for i, s := range a.aggs {
			ss[i] = s.String()
		}
		sort.Strings(ss)
		out := a.child.Key + ";"
		for _, s := range ss {
			out += s + ","
		}
		return out
	}
	reaggOK := func(a aggInfo) bool {
		for _, s := range a.aggs {
			if s.Func == algebra.Avg {
				return false // AVG does not re-aggregate without SUM+COUNT
			}
		}
		return true
	}
	bySig := map[string][]aggInfo{}
	for _, a := range infos {
		if reaggOK(a) {
			bySig[aggSig(a)] = append(bySig[aggSig(a)], a)
		}
	}
	for _, group := range bySig {
		for i := range group {
			for j := range group {
				if i == j {
					continue
				}
				coarse, fine := group[i], group[j]
				if isSubsetCols(coarse.groupBy, fine.groupBy) && len(coarse.groupBy) < len(fine.groupBy) {
					d.addReaggOp(coarse, fine.equiv)
				}
			}
			// Group-by union introduction for incomparable pairs.
			for j := i + 1; j < len(group); j++ {
				a, b := group[i], group[j]
				if isSubsetCols(a.groupBy, b.groupBy) || isSubsetCols(b.groupBy, a.groupBy) {
					continue
				}
				union := unionCols(a.groupBy, b.groupBy)
				ue := d.insertAggregate(union, a.aggs, a.child)
				d.addReaggOp(a, ue)
				d.addReaggOp(b, ue)
			}
		}
	}
}

// addReaggOp adds to target an operation that re-aggregates the finer
// aggregate node fineEquiv down to target's group-by.
func (d *DAG) addReaggOp(target aggInfo, fineEquiv *Equiv) {
	aggs := make([]algebra.AggSpec, len(target.aggs))
	for i, s := range target.aggs {
		// The fine node's output column for this aggregate.
		name := s.As
		if name == "" {
			name = aggOutName(s)
		}
		f := s.Func
		if f == algebra.Count {
			f = algebra.Sum // COUNT re-aggregates by summing counts
		}
		aggs[i] = algebra.AggSpec{Func: f, Col: algebra.ColRef{Rel: "agg", Name: name}, As: name}
	}
	// Avoid duplicate derivations (idempotence).
	for _, op := range target.equiv.Ops {
		if op.Kind == OpAggregate && len(op.Children) == 1 && op.Children[0] == fineEquiv {
			return
		}
	}
	d.addOp(target.equiv, &Op{
		Kind:     OpAggregate,
		Children: []*Equiv{fineEquiv},
		GroupBy:  target.groupBy,
		Aggs:     aggs,
	})
}

// aggOutName mirrors the default output naming of algebra.NewAggregate.
func aggOutName(s algebra.AggSpec) string {
	if s.Func == algebra.Count {
		return "count"
	}
	switch s.Func {
	case algebra.Sum:
		return "sum_" + s.Col.Name
	case algebra.Avg:
		return "avg_" + s.Col.Name
	case algebra.Min:
		return "min_" + s.Col.Name
	case algebra.Max:
		return "max_" + s.Col.Name
	}
	return "agg_" + s.Col.Name
}

func isSubsetCols(sub, super []algebra.ColRef) bool {
	have := map[string]bool{}
	for _, c := range super {
		have[c.QName()] = true
	}
	for _, c := range sub {
		if !have[c.QName()] {
			return false
		}
	}
	return true
}

func unionCols(a, b []algebra.ColRef) []algebra.ColRef {
	seen := map[string]bool{}
	var out []algebra.ColRef
	for _, c := range append(append([]algebra.ColRef{}, a...), b...) {
		if !seen[c.QName()] {
			seen[c.QName()] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].QName() < out[j].QName() })
	return out
}
