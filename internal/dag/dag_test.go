package dag

import (
	"math"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/cost"
)

// abcCatalog builds three relations joined in a chain: a.x=b.x, b.y=c.y.
func abcCatalog() *catalog.Catalog {
	cat := catalog.New()
	add := func(name string, cols ...string) {
		var cc []catalog.Column
		stats := map[string]catalog.ColumnStats{}
		for _, c := range cols {
			cc = append(cc, catalog.Column{Name: c, Type: catalog.Int, Width: 8})
			stats[c] = catalog.ColumnStats{Distinct: 100, Min: 0, Max: 100}
		}
		cat.AddTable(&catalog.Table{
			Name: name, Columns: cc, PrimaryKey: cols[:1],
			Stats: catalog.TableStats{Rows: 1000, Columns: stats},
		})
	}
	add("a", "x", "v")
	add("b", "x", "y")
	add("c", "y", "w")
	add("d", "w", "u")
	return cat
}

func chainJoin(cat *catalog.Catalog, tables ...string) algebra.Node {
	joinCol := map[string]string{"a|b": "x", "b|c": "y", "c|d": "w"}
	n := algebra.Node(algebra.NewScan(cat, tables[0]))
	for i := 1; i < len(tables); i++ {
		col := joinCol[tables[i-1]+"|"+tables[i]]
		pred := algebra.And(algebra.Eq(tables[i-1]+"."+col, tables[i]+"."+col))
		n = algebra.NewJoin(pred, n, algebra.NewScan(cat, tables[i]))
	}
	return n
}

func TestThreeWayJoinExpansion(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	root := d.AddQuery("v", chainJoin(cat, "a", "b", "c"))

	// Figure 1(c): one equivalence node per connected subset. Chain a-b-c has
	// connected subsets {a},{b},{c},{ab},{bc},{abc} → 6 nodes ({a,c} is a
	// cross product and must be skipped).
	if len(d.Equivs) != 6 {
		for _, e := range d.Equivs {
			t.Logf("equiv: %s", e.Key)
		}
		t.Fatalf("expected 6 equivalence nodes, got %d", len(d.Equivs))
	}
	// The root must offer both association orders: (ab)c and a(bc).
	if len(root.Ops) != 2 {
		t.Fatalf("root should have 2 join alternatives, got %d", len(root.Ops))
	}
	if len(root.Tables) != 3 {
		t.Errorf("root tables = %v", root.Tables)
	}
}

func TestFourWayJoinExpansionCount(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	root := d.AddQuery("v", chainJoin(cat, "a", "b", "c", "d"))
	// Chain a-b-c-d: connected subsets = contiguous runs: 4+3+2+1 = 10.
	if len(d.Equivs) != 10 {
		t.Fatalf("expected 10 equivalence nodes for a 4-chain, got %d", len(d.Equivs))
	}
	// Root alternatives: splits of [a..d] into two contiguous runs: 3.
	if len(root.Ops) != 3 {
		t.Errorf("root should have 3 splits, got %d", len(root.Ops))
	}
}

func TestStarJoinAllSubsetsConnected(t *testing.T) {
	// Star: hub b joins a (x), c (y). Same as chain through b; now add a
	// direct a-c predicate making {a,c} connected too.
	cat := abcCatalog()
	d := New(cat)
	n := algebra.NewSelect(
		algebra.And(algebra.Eq("a.v", "c.w")),
		algebra.NewJoin(algebra.And(algebra.Eq("b.y", "c.y")),
			algebra.NewJoin(algebra.And(algebra.Eq("a.x", "b.x")),
				algebra.NewScan(cat, "a"), algebra.NewScan(cat, "b")),
			algebra.NewScan(cat, "c")))
	root := d.AddQuery("v", n)
	// All 7 subsets connected now.
	if len(d.Equivs) != 7 {
		t.Fatalf("expected 7 equivalence nodes, got %d", len(d.Equivs))
	}
	// Root has 3 splits: a|(bc), b|(ac), c|(ab).
	if len(root.Ops) != 3 {
		t.Errorf("root should have 3 splits, got %d", len(root.Ops))
	}
}

func TestUnificationAcrossQueries(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	d.AddQuery("v1", chainJoin(cat, "a", "b", "c"))
	before := len(d.Equivs)
	// Second view shares the a⋈b subexpression (and a, b, c leaves).
	d.AddQuery("v2", chainJoin(cat, "a", "b"))
	if len(d.Equivs) != before {
		t.Errorf("v2 ⊆ v1's lattice: no new equivalence nodes expected, got %d new",
			len(d.Equivs)-before)
	}
	// Syntactically different but equivalent insertion also unifies.
	n := algebra.NewJoin(algebra.And(algebra.Eq("b.x", "a.x")),
		algebra.NewScan(cat, "b"), algebra.NewScan(cat, "a"))
	d.AddQuery("v3", n)
	if len(d.Equivs) != before {
		t.Errorf("commuted join should unify with existing node")
	}
}

func TestLocalPredicatePushedToLeaf(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	n := algebra.NewSelect(algebra.And(algebra.CmpConst("a.v", algebra.LT, algebra.NewInt(50))),
		chainJoin(cat, "a", "b").(*algebra.Join))
	d.AddQuery("v", n)
	// There must be a select node directly over base a.
	found := false
	for _, e := range d.Equivs {
		if len(e.Ops) > 0 && e.Ops[0].Kind == OpSelect && e.Ops[0].Children[0].IsTable &&
			e.Ops[0].Children[0].Tables[0] == "a" {
			found = true
		}
	}
	if !found {
		t.Errorf("local predicate should be applied at the leaf")
	}
}

func TestSelectSubsumptionRangeImplication(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	mk := func(lim int64) algebra.Node {
		return algebra.NewSelect(
			algebra.And(algebra.CmpConst("a.v", algebra.LT, algebra.NewInt(lim))),
			algebra.NewScan(cat, "a"))
	}
	e5 := d.AddQuery("v5", mk(5))
	e10 := d.AddQuery("v10", mk(10))
	d.ApplySubsumption()
	// σv<5(a) should gain a derivation from σv<10(a).
	found := false
	for _, op := range e5.Ops {
		if op.Kind == OpSelect && op.Children[0] == e10 {
			found = true
		}
	}
	if !found {
		t.Errorf("σv<5 should be derivable from σv<10")
	}
	// And never the other way around.
	for _, op := range e10.Ops {
		if len(op.Children) == 1 && op.Children[0] == e5 {
			t.Errorf("σv<10 must not derive from σv<5")
		}
	}
	// Idempotence.
	nOps := len(e5.Ops)
	d.subsumed = false
	d.ApplySubsumption()
	if len(e5.Ops) != nOps+1 { // second pass adds once more only if not guarded
		// predMinus/implication path has no dup guard for selects; accept
		// equality too.
		if len(e5.Ops) != nOps {
			t.Logf("ops after second pass: %d (first pass %d)", len(e5.Ops), nOps)
		}
	}
}

func TestSelectSubsumptionConjunctSubset(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	p1 := algebra.And(
		algebra.CmpConst("a.v", algebra.LT, algebra.NewInt(50)),
		algebra.CmpConst("a.x", algebra.EQ, algebra.NewInt(7)))
	p2 := algebra.And(algebra.CmpConst("a.v", algebra.LT, algebra.NewInt(50)))
	fine := d.AddQuery("fine", algebra.NewSelect(p1, algebra.NewScan(cat, "a")))
	coarse := d.AddQuery("coarse", algebra.NewSelect(p2, algebra.NewScan(cat, "a")))
	d.ApplySubsumption()
	var derived *Op
	for _, op := range fine.Ops {
		if op.Kind == OpSelect && op.Children[0] == coarse {
			derived = op
		}
	}
	if derived == nil {
		t.Fatalf("conjunct-superset select should derive from subset select")
	}
	if len(derived.Pred.Conjuncts) != 1 || derived.Pred.Conjuncts[0].String() != "a.x=7" {
		t.Errorf("derivation should apply only the residual conjunct, got %s", derived.Pred.String())
	}
}

func TestAggregateSubsumptionCoarserFromFiner(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	base := algebra.NewScan(cat, "a")
	fine := algebra.NewAggregate(
		[]algebra.ColRef{algebra.C("a.x"), algebra.C("a.v")},
		[]algebra.AggSpec{{Func: algebra.Sum, Col: algebra.C("a.v")}, {Func: algebra.Count}},
		base)
	coarse := algebra.NewAggregate(
		[]algebra.ColRef{algebra.C("a.x")},
		[]algebra.AggSpec{{Func: algebra.Sum, Col: algebra.C("a.v")}, {Func: algebra.Count}},
		base)
	fe := d.AddQuery("fine", fine)
	ce := d.AddQuery("coarse", coarse)
	d.ApplySubsumption()
	var reagg *Op
	for _, op := range ce.Ops {
		if op.Kind == OpAggregate && op.Children[0] == fe {
			reagg = op
		}
	}
	if reagg == nil {
		t.Fatalf("coarse aggregate should re-aggregate from fine")
	}
	// COUNT must re-aggregate as SUM of counts.
	for _, s := range reagg.Aggs {
		if s.As == "count" && s.Func != algebra.Sum {
			t.Errorf("COUNT should become SUM over the count column, got %v", s.Func)
		}
	}
}

func TestGroupByUnionIntroduction(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	base := algebra.NewScan(cat, "a")
	aggX := algebra.NewAggregate([]algebra.ColRef{algebra.C("a.x")},
		[]algebra.AggSpec{{Func: algebra.Sum, Col: algebra.C("a.v")}}, base)
	aggV := algebra.NewAggregate([]algebra.ColRef{algebra.C("a.v")},
		[]algebra.AggSpec{{Func: algebra.Sum, Col: algebra.C("a.v")}}, base)
	ex := d.AddQuery("gx", aggX)
	ev := d.AddQuery("gv", aggV)
	d.ApplySubsumption()
	// A γ{x,v} node must now exist, and both originals derive from it.
	var union *Equiv
	for _, e := range d.Equivs {
		if strings.HasPrefix(e.Key, "gb[a.v,a.x;") || strings.HasPrefix(e.Key, "gb[a.x,a.v;") {
			union = e
		}
	}
	if union == nil {
		t.Fatalf("group-by union node not introduced")
	}
	for _, target := range []*Equiv{ex, ev} {
		found := false
		for _, op := range target.Ops {
			if op.Kind == OpAggregate && op.Children[0] == union {
				found = true
			}
		}
		if !found {
			t.Errorf("%s should derive from the union group-by", target.Key)
		}
	}
}

func TestAvgBlocksReaggregation(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	base := algebra.NewScan(cat, "a")
	fine := algebra.NewAggregate(
		[]algebra.ColRef{algebra.C("a.x"), algebra.C("a.v")},
		[]algebra.AggSpec{{Func: algebra.Avg, Col: algebra.C("a.v")}}, base)
	coarse := algebra.NewAggregate(
		[]algebra.ColRef{algebra.C("a.x")},
		[]algebra.AggSpec{{Func: algebra.Avg, Col: algebra.C("a.v")}}, base)
	d.AddQuery("fine", fine)
	ce := d.AddQuery("coarse", coarse)
	d.ApplySubsumption()
	if len(ce.Ops) != 1 {
		t.Errorf("AVG must not re-aggregate, ops=%d", len(ce.Ops))
	}
}

func TestSizerConsistentAcrossAlternatives(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	root := d.AddQuery("v", chainJoin(cat, "a", "b", "c"))
	est := cost.NewEstimator(cat)
	s := NewSizer(est, nil)
	want := s.Rows(root)
	// 1000*1000/100 = 10000 rows for a⋈b; ⋈c → 10000*1000/100 = 100000.
	if math.Abs(want-100000) > 1 {
		t.Errorf("chain join estimate = %g, want 100000", want)
	}
	// Estimate along each alternative op explicitly and compare.
	for _, op := range root.Ops {
		r := s.Rows(op.Children[0]) * s.Rows(op.Children[1])
		for _, c := range op.Pred.Conjuncts {
			r *= est.Selectivity(c, nil)
		}
		if math.Abs(r-want) > want*1e-9 {
			t.Errorf("estimate differs across alternatives: %g vs %g", r, want)
		}
	}
}

// TestSizerConsistentAcrossAllOpsWholeDag strengthens the per-root check:
// for EVERY equivalence node of a multi-view DAG (including subsumption
// derivations), estimating through any of its operations must agree with
// the memoized Ops[0] estimate — each predicate is applied exactly once
// along any path, so all alternatives must integrate to the same
// cardinality.
func TestSizerConsistentAcrossAllOpsWholeDag(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	d.AddQuery("v1", chainJoin(cat, "a", "b", "c", "d"))
	d.AddQuery("v2", chainJoin(cat, "a", "b"))
	d.AddQuery("v3", algebra.NewSelect(
		algebra.And(algebra.CmpConst("a.v", algebra.LT, algebra.NewInt(50))),
		chainJoin(cat, "a", "b", "c").(*algebra.Join)))
	d.ApplySubsumption()

	est := cost.NewEstimator(cat)
	for _, eff := range []map[string]float64{nil, {"a": 10}, {"b": 7, "c": 3}} {
		s := NewSizer(est, eff)
		for _, e := range d.Equivs {
			want := s.Rows(e)
			for oi, op := range e.Ops {
				if op.Kind != OpJoin && op.Kind != OpSelect {
					continue // derivations via aggregates re-estimate differently
				}
				got := 1.0
				switch op.Kind {
				case OpJoin:
					got = s.Rows(op.Children[0]) * s.Rows(op.Children[1])
				case OpSelect:
					got = s.Rows(op.Children[0])
				}
				for _, c := range op.Pred.Conjuncts {
					got *= est.Selectivity(c, eff)
				}
				if want == 0 {
					continue
				}
				if got/want > 1.0001 || want/got > 1.0001 {
					t.Fatalf("e%d op %d (%s): estimate %g differs from %g (eff=%v)",
						e.ID, oi, op.Kind, got, want, eff)
				}
			}
		}
	}
}

func TestSizerDeltaSubstitution(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	root := d.AddQuery("v", chainJoin(cat, "a", "b"))
	est := cost.NewEstimator(cat)
	full := NewSizer(est, nil).Rows(root)
	delta := NewSizer(est, map[string]float64{"a": 10}).Rows(root)
	if math.Abs(delta/full-0.01) > 1e-6 {
		t.Errorf("1%% delta should scale the join 1%%: %g vs %g", delta, full)
	}
}

func TestAggregateNodeEstimate(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	agg := algebra.NewAggregate([]algebra.ColRef{algebra.C("a.x")},
		[]algebra.AggSpec{{Func: algebra.Count}}, algebra.NewScan(cat, "a"))
	root := d.AddQuery("v", agg)
	got := NewSizer(cost.NewEstimator(cat), nil).Rows(root)
	if got != 100 {
		t.Errorf("group count should equal distinct(x)=100, got %g", got)
	}
}

func TestUnionMinusDedupInsertion(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	a := algebra.NewScan(cat, "a")
	u := algebra.NewUnion(a, a)
	root := d.AddQuery("u", algebra.NewDedup(algebra.NewMinus(u, a)))
	if root == nil || len(root.Ops) != 1 || root.Ops[0].Kind != OpDedup {
		t.Fatalf("dedup root expected")
	}
	s := NewSizer(cost.NewEstimator(cat), nil)
	// union = 2000, minus a → 1000, dedup capped by distinct product.
	if r := s.Rows(root); r <= 0 || r > 1000 {
		t.Errorf("dedup estimate out of range: %g", r)
	}
}

func TestSelfJoinPanics(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	defer func() {
		if recover() == nil {
			t.Errorf("self-join should panic with a clear message")
		}
	}()
	n := algebra.NewJoin(algebra.And(algebra.Eq("a.x", "a.v")),
		algebra.NewScan(cat, "a"), algebra.NewScan(cat, "a"))
	d.AddQuery("bad", n)
}

func TestDependsOn(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	root := d.AddQuery("v", chainJoin(cat, "a", "b"))
	if !root.DependsOn("a") || !root.DependsOn("b") || root.DependsOn("c") {
		t.Errorf("DependsOn wrong: %v", root.Tables)
	}
}

func TestBaseTables(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	d.AddQuery("v", chainJoin(cat, "a", "b", "c"))
	got := d.BaseTables()
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("BaseTables = %v", got)
	}
}
