package dag

import (
	"math"

	"repro/internal/algebra"
	"repro/internal/cost"
)

// Sizer estimates result cardinalities for equivalence nodes under a given
// assignment of effective base-relation row counts. The differential
// optimizer creates one Sizer per update-propagation state (paper §5.2: each
// differential entry records logical properties of the result after a prefix
// of the updates has been applied) and one per delta substitution.
//
// Estimation follows Ops[0] — the natural operation — recursively; because
// every operation of an equivalence node is logically equivalent and each
// predicate is applied exactly once along any path, the estimate is
// independent of which alternative is followed.
type Sizer struct {
	Est *cost.Estimator
	// Eff overrides base-relation cardinalities (absent tables fall back to
	// catalog statistics).
	Eff map[string]float64
	// Obs, when set, supplies observed cardinalities from the feedback store:
	// consulted before the recursive estimate and taking precedence over it,
	// so corrections propagate to every plan costed through this sizer. Base
	// relation scans are never overridden — their effective row counts encode
	// the update-propagation state, which observation must not erase.
	Obs  func(e *Equiv) (float64, bool)
	memo map[int]float64
}

// NewSizer builds a sizer for one cardinality state.
func NewSizer(est *cost.Estimator, eff map[string]float64) *Sizer {
	return &Sizer{Est: est, Eff: eff, memo: make(map[int]float64)}
}

// Rows estimates the cardinality of an equivalence node's result.
func (s *Sizer) Rows(e *Equiv) float64 {
	if v, ok := s.memo[e.ID]; ok {
		return v
	}
	if s.Obs != nil && len(e.Ops) > 0 && e.Ops[0].Kind != OpScan {
		if v, ok := s.Obs(e); ok && v >= 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
			s.memo[e.ID] = v
			return v
		}
	}
	v := s.rows(e)
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	s.memo[e.ID] = v
	return v
}

func (s *Sizer) rows(e *Equiv) float64 {
	if len(e.Ops) == 0 {
		return 0
	}
	op := e.Ops[0]
	switch op.Kind {
	case OpScan:
		return s.Est.TableRows(op.Table, s.Eff)
	case OpSelect:
		r := s.Rows(op.Children[0])
		for _, c := range op.Pred.Conjuncts {
			r *= s.Est.Selectivity(c, s.Eff)
		}
		for _, cl := range op.Pred.Clauses {
			r *= s.Est.ClauseSelectivity(cl, s.Eff)
		}
		return r
	case OpJoin:
		r := s.Rows(op.Children[0]) * s.Rows(op.Children[1])
		for _, c := range op.Pred.Conjuncts {
			r *= s.Est.Selectivity(c, s.Eff)
		}
		for _, cl := range op.Pred.Clauses {
			r *= s.Est.ClauseSelectivity(cl, s.Eff)
		}
		return r
	case OpProject:
		return s.Rows(op.Children[0])
	case OpAggregate:
		in := s.Rows(op.Children[0])
		return s.Est.GroupCount(colNames(op.GroupBy), in, s.Eff)
	case OpUnion:
		return s.Rows(op.Children[0]) + s.Rows(op.Children[1])
	case OpMinus:
		l, r := s.Rows(op.Children[0]), s.Rows(op.Children[1])
		return math.Max(0, l-r)
	case OpDedup:
		in := s.Rows(op.Children[0])
		var cols []string
		for _, c := range e.Schema {
			cols = append(cols, c.QName())
		}
		return s.Est.GroupCount(cols, in, s.Eff)
	default:
		return 0
	}
}

// Width returns the average output tuple width of a node in bytes.
func Width(e *Equiv) int { return e.Schema.Width() }

func colNames(cols []algebra.ColRef) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.QName()
	}
	return out
}
