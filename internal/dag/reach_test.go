package dag

import "testing"

// TestDescendantsAndReaches checks the reachability helpers on the a-b-c
// chain join: the root reaches every node of its expansion (including
// itself), leaves reach nothing above them, and unrelated leaves do not
// reach each other.
func TestDescendantsAndReaches(t *testing.T) {
	cat := abcCatalog()
	d := New(cat)
	root := d.AddQuery("v", chainJoin(cat, "a", "b", "c"))

	desc := d.Descendants(root)
	if !desc[root.ID] {
		t.Fatal("a node must be its own descendant")
	}
	// The expanded chain has 6 nodes ({a},{b},{c},{ab},{bc},{abc}), all
	// below the root.
	if len(desc) != len(d.Equivs) {
		t.Fatalf("root reaches %d of %d nodes", len(desc), len(d.Equivs))
	}
	leaves := map[string]*Equiv{}
	for _, e := range d.Equivs {
		if e.IsTable {
			leaves[e.Tables[0]] = e
		}
	}
	for _, tb := range []string{"a", "b", "c"} {
		if leaves[tb] == nil {
			t.Fatalf("leaf %s missing", tb)
		}
		if !d.Reaches(root, leaves[tb]) {
			t.Fatalf("root must reach leaf %s", tb)
		}
		if d.Reaches(leaves[tb], root) {
			t.Fatalf("leaf %s must not reach the root", tb)
		}
	}
	if d.Reaches(leaves["a"], leaves["b"]) {
		t.Fatal("unrelated leaves must not reach each other")
	}
	// Every Descendants set is downward-closed: children of members are
	// members.
	for _, e := range d.Equivs {
		if !desc[e.ID] {
			continue
		}
		for _, op := range e.Ops {
			for _, c := range op.Children {
				if !desc[c.ID] {
					t.Fatalf("descendant set not closed: e%d in, child e%d out", e.ID, c.ID)
				}
			}
		}
	}
}
