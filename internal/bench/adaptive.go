package bench

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/diff"
	"repro/internal/exec"
	"repro/internal/feedback"
	"repro/internal/greedy"
	"repro/internal/storage"
	"repro/internal/tpcd"
	"repro/internal/viewdef"
)

// AdaptiveServe measures online re-selection under a drifting workload:
// reader goroutines issue a weighted query mix that shifts between phases
// while the writer runs refresh cycles; in adaptive mode the runtime
// re-selects its materialized set from the observed workload and hot-swaps
// it at epoch boundaries (core.Runtime.Adapt), in static mode it keeps the
// selection tuned for the initial phase. Comparing the two isolates what
// adaptation buys once traffic leaves the configured workload behind.

// adaptiveUpdatedRels keeps refresh cycles moderate (12 steps per cycle)
// while still updating every relation the drift queries touch.
func adaptiveUpdatedRels() []string {
	return []string{"supplier", "customer", "part", "partsupp", "orders", "lineitem"}
}

// AdaptiveConfig parameterizes one AdaptiveServe run.
type AdaptiveConfig struct {
	// ScaleFactor is the TPC-D scale of the generated database.
	ScaleFactor float64
	// UpdatePct is the per-cycle update percentage.
	UpdatePct float64
	// Readers is the number of concurrent query goroutines.
	Readers int
	// CyclesPerPhase is how many refresh cycles each phase lasts.
	CyclesPerPhase int
	// Workers bounds the refresh scheduler's pool (0 = GOMAXPROCS).
	Workers int
	// Partitions configures partition-parallel operators (<=1: sequential).
	Partitions int
	// CacheBudget is the serving result-cache size in bytes (0 = default).
	CacheBudget float64
	// Seed drives data generation and the drift generator.
	Seed int64
	// Phases is the drifting workload; nil selects tpcd.DriftServeMix(Seed):
	// view-aligned traffic drifting to expensive uncovered shapes.
	Phases [][]tpcd.DriftQuery
	// Adaptive enables EnableAdapt (one build round per cycle, installed at
	// the next boundary); off, the initial selection serves every phase.
	Adaptive bool
	// HotFrac, when in (0,1), skews every update batch: inserted foreign
	// keys draw from only the lowest HotFrac of the referenced key space
	// (tpcd.LogSkewedUpdates), so differential cardinalities drift away from
	// what the uniform-assumption histograms predict. 0 (or 1) keeps the
	// uniform update model.
	HotFrac float64
	// Feedback selects observed-cardinality capture (core.EnableFeedback):
	// off, telemetry-only, or corrections feeding each adaptation round.
	Feedback FeedbackMode
	// Check retains snapshots and verifies sampled results against
	// recomputation at their claimed epochs.
	Check bool
}

// AdaptiveResult is the outcome of one AdaptiveServe run.
type AdaptiveResult struct {
	Cfg AdaptiveConfig
	// PhaseQPS is the aggregate answered-queries-per-second per phase;
	// TotalQPS over the whole run.
	PhaseQPS []float64
	TotalQPS float64
	// Queries is the number answered across all readers and phases.
	Queries int64
	// Rounds/Installs/Discards/Skipped mirror core.AdaptStats (zero when
	// static).
	Rounds, Installs, Discards, Skipped int
	// SetChanges lists installed swaps as "±key" summaries.
	SetChanges []string
	// Epochs is the final published epoch.
	Epochs int64
	// Elapsed is the wall-clock span of the run.
	Elapsed time.Duration
	// CheckedSamples/DistinctStates/Consistent describe the consistency
	// check (meaningful with Cfg.Check); Verified is post-run Verify.
	CheckedSamples, DistinctStates int
	Consistent, Verified           bool
	// WorkloadReport is the tracker's view of the observed workload.
	WorkloadReport string
	// Q is the feedback store's counter snapshot at the end of the final
	// phase — observation counts and the q-error distribution of optimizer
	// estimates against executed cardinalities (zero when Cfg.Feedback is
	// FeedbackOff). The q-error window is reset at each phase boundary, so
	// Q's window statistics describe the last phase: the steady state after
	// the drift, where corrections have had cycles to propagate. QPhases
	// holds the per-phase snapshots.
	Q       feedback.Stats
	QPhases []feedback.Stats
}

// FeedbackMode says how a run uses the feedback store.
type FeedbackMode int

const (
	// FeedbackOff installs no observation hooks.
	FeedbackOff FeedbackMode = iota
	// FeedbackObserve records observed cardinalities and q-errors but never
	// corrects the cost model: the static-estimate baseline, measured.
	FeedbackObserve
	// FeedbackCorrect additionally feeds observations into every adaptation
	// round's cost model (diff.NewEngineObserved).
	FeedbackCorrect
)

// AdaptiveServe runs one drifting-workload serving experiment.
func AdaptiveServe(cfg AdaptiveConfig) AdaptiveResult {
	if cfg.Phases == nil {
		cfg.Phases = tpcd.DriftServeMix(cfg.Seed)
	}
	rels := adaptiveUpdatedRels()

	// Build the runtime with the selection tuned for phase 0: the declared
	// workload is the initial mix, exactly what a static deployment would
	// have been configured for.
	cat := tpcd.NewCatalog(cfg.ScaleFactor, true)
	db := tpcd.Generate(cat, cfg.ScaleFactor, cfg.Seed)
	sys := core.NewSystem(cat, core.Options{})
	for _, v := range tpcd.ViewSet5(cat, true) {
		if _, err := sys.AddView(v.Name, v.Def); err != nil {
			panic(err)
		}
	}
	for i, q := range cfg.Phases[0] {
		def, err := viewdef.Parse(cat, q.SQL)
		if err != nil {
			panic(err)
		}
		if _, err := sys.AddQuery(fmt.Sprintf("w%d", i), def, q.Weight); err != nil {
			panic(err)
		}
	}
	u := diff.UniformPercent(cat, rels, cfg.UpdatePct)
	plan := sys.OptimizeWorkload(u, greedy.DefaultConfig())
	rt := plan.NewRuntime(db)
	rt.SetWorkers(cfg.Workers)
	rt.SetPartitions(cfg.Partitions)
	rt.EnableServing(core.ServeOptions{CacheBudget: cfg.CacheBudget, RetainHistory: cfg.Check})
	if cfg.Adaptive {
		if err := rt.EnableAdapt(core.AdaptOptions{EveryCycles: 1, Sync: true, TopQueries: 8}); err != nil {
			panic(err)
		}
	}
	switch cfg.Feedback {
	case FeedbackObserve:
		rt.EnableFeedbackObserver()
	case FeedbackCorrect:
		rt.EnableFeedback()
	}

	// Per-phase weighted round-robin schedules: each query index repeated
	// round(weight) times, so readers reproduce the phase mix exactly and
	// deterministically.
	allSQL := []string{}
	sqlIdx := map[string]int{}
	schedules := make([][]int, len(cfg.Phases))
	for p, phase := range cfg.Phases {
		for _, q := range phase {
			id, ok := sqlIdx[q.SQL]
			if !ok {
				id = len(allSQL)
				sqlIdx[q.SQL] = id
				allSQL = append(allSQL, q.SQL)
			}
			n := int(math.Round(q.Weight))
			if n < 1 {
				n = 1
			}
			for i := 0; i < n; i++ {
				schedules[p] = append(schedules[p], id)
			}
		}
	}

	type sample struct {
		sqlIdx int
		epoch  int64
		rows   *storage.Relation
	}
	var (
		mu      sync.Mutex
		samples []sample
		phase   atomic.Int32
		done    atomic.Bool
		wg      sync.WaitGroup
	)
	answered := make([]atomic.Int64, len(cfg.Phases))
	start := time.Now()
	for w := 0; w < cfg.Readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				p := int(phase.Load())
				sched := schedules[p]
				qi := sched[(i+w)%len(sched)]
				res, err := rt.Query(allSQL[qi])
				if err != nil {
					panic(fmt.Sprintf("bench: adaptive reader query failed: %v", err))
				}
				answered[p].Add(1)
				if cfg.Check {
					mu.Lock()
					if len(samples) < maxSamples {
						samples = append(samples, sample{qi, res.Epoch, res.Rows})
					}
					mu.Unlock()
				}
			}
		}(w)
	}

	// Per-phase counts are snapshotted at the same instant as the phase's
	// duration, so the QPS ratio pairs a numerator and denominator from one
	// moment; queries drained after the boundary count only toward the
	// run-wide total.
	phaseDur := make([]time.Duration, len(cfg.Phases))
	phaseN := make([]int64, len(cfg.Phases))
	var qPhases []feedback.Stats
	for p := range cfg.Phases {
		phase.Store(int32(p))
		t0 := time.Now()
		for c := 0; c < cfg.CyclesPerPhase; c++ {
			if cfg.HotFrac > 0 && cfg.HotFrac < 1 {
				tpcd.LogSkewedUpdates(cat, rt.Ex.DB, rels, cfg.UpdatePct, cfg.HotFrac,
					cfg.Seed+int64(1000+p*100+c))
			} else {
				tpcd.LogUniformUpdates(cat, rt.Ex.DB, rels, cfg.UpdatePct,
					cfg.Seed+int64(1000+p*100+c))
			}
			rt.Refresh()
		}
		phaseDur[p] = time.Since(t0)
		phaseN[p] = answered[p].Load()
		if fb := rt.Feedback(); fb != nil {
			qPhases = append(qPhases, fb.Stats())
			if p < len(cfg.Phases)-1 {
				fb.ResetQ() // per-phase q-error windows; cumulative counters survive
			}
		}
	}
	rt.InstallPending() // a final boundary, so a last-cycle build still lands
	done.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	st := rt.AdaptStats()
	out := AdaptiveResult{
		Cfg: cfg, Elapsed: elapsed,
		Rounds: st.Rounds, Installs: st.Installs, Discards: st.Discards, Skipped: st.Skipped,
		Epochs:         rt.Snapshots().Current().Epoch(),
		Consistent:     true,
		Verified:       rt.Verify() == nil,
		WorkloadReport: rt.WorkloadReport(),
		QPhases:        qPhases,
	}
	if n := len(qPhases); n > 0 {
		out.Q = qPhases[n-1]
	}
	for p := range cfg.Phases {
		out.Queries += answered[p].Load()
		out.PhaseQPS = append(out.PhaseQPS, float64(phaseN[p])/phaseDur[p].Seconds())
	}
	out.TotalQPS = float64(out.Queries) / elapsed.Seconds()

	if cfg.Check {
		cd := dag.New(cat)
		roots := make([]*dag.Equiv, len(allSQL))
		for i, sql := range allSQL {
			roots[i] = cd.InsertExpr(viewdef.MustParse(cat, sql))
		}
		type key struct {
			sqlIdx int
			epoch  int64
		}
		want := make(map[key]*storage.Relation)
		for _, s := range samples {
			k := key{s.sqlIdx, s.epoch}
			w, ok := want[k]
			if !ok {
				snap := rt.Snapshots().At(s.epoch)
				if snap == nil {
					out.Consistent = false
					continue
				}
				w = exec.NewExecutor(snap.Database()).EvalNode(roots[s.sqlIdx])
				want[k] = w
			}
			if !storage.EqualMultiset(s.rows, w) {
				out.Consistent = false
			}
			out.CheckedSamples++
		}
		out.DistinctStates = len(want)
	}
	return out
}

// AdaptiveVsStatic runs the same drifting workload twice — static selection
// versus adaptive re-selection — over identically generated data and drift.
func AdaptiveVsStatic(cfg AdaptiveConfig) (adaptive, static AdaptiveResult) {
	cfg.Adaptive = false
	static = AdaptiveServe(cfg)
	cfg.Adaptive = true
	adaptive = AdaptiveServe(cfg)
	return adaptive, static
}

// Format renders one run.
func (r AdaptiveResult) Format() string {
	mode := "static"
	if r.Cfg.Adaptive {
		mode = "adaptive"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "t-adapt/%s — drifting workload (SF %g, %g%% updates, %d readers, %d phases × %d cycles)\n",
		mode, r.Cfg.ScaleFactor, r.Cfg.UpdatePct, r.Cfg.Readers, len(r.Cfg.Phases), r.Cfg.CyclesPerPhase)
	fmt.Fprintf(&b, "  %d queries in %v, %d epochs", r.Queries, r.Elapsed.Round(time.Millisecond), r.Epochs)
	if r.Cfg.Adaptive {
		fmt.Fprintf(&b, "; %d rounds (%d skipped, steady workload), %d swaps installed, %d discarded",
			r.Rounds, r.Skipped, r.Installs, r.Discards)
	}
	b.WriteString("\n")
	for p, q := range r.PhaseQPS {
		fmt.Fprintf(&b, "  phase %d: %8.1f queries/s aggregate\n", p, q)
	}
	fmt.Fprintf(&b, "  overall: %8.1f queries/s\n", r.TotalQPS)
	if r.Cfg.Check {
		status := "all consistent with step-boundary recomputation"
		if !r.Consistent {
			status = "INCONSISTENT RESULTS DETECTED"
		}
		fmt.Fprintf(&b, "  snapshot check: %d samples over %d (query, epoch) states — %s\n",
			r.CheckedSamples, r.DistinctStates, status)
	}
	if r.Verified {
		b.WriteString("  all views verified exact after the run\n")
	} else {
		b.WriteString("  VERIFICATION FAILED\n")
	}
	return b.String()
}
