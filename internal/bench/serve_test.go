package bench

import (
	"strings"
	"testing"
)

// TestConcurrentServe runs readers against a refreshing writer (under -race
// in CI) with the snapshot-consistency check on: every sampled result must
// match recomputation at the step boundary its epoch names.
func TestConcurrentServe(t *testing.T) {
	r := ConcurrentServe(ServeConfig{
		ScaleFactor: 0.002, UpdatePct: 4,
		Readers: 4, Cycles: 2, Check: true,
	})
	if !r.Verified {
		t.Fatalf("views diverged from recomputation after the run")
	}
	if !r.Consistent {
		t.Fatalf("a served result did not match any step-boundary state")
	}
	if r.CheckedSamples == 0 {
		t.Fatalf("consistency check ran on zero samples")
	}
	if want := int64(r.Cfg.Cycles * 16); r.Epochs != want { // 8 relations × 2 update types
		t.Errorf("epochs = %d, want %d", r.Epochs, want)
	}
	if len(r.PerReaderQPS) != r.Cfg.Readers {
		t.Errorf("per-reader throughput missing: %v", r.PerReaderQPS)
	}
	out := r.Format()
	for _, needle := range []string{"t-serve", "queries/s", "snapshot check", "consistent"} {
		if !strings.Contains(out, needle) {
			t.Errorf("Format missing %q:\n%s", needle, out)
		}
	}
	t.Logf("\n%s", out)
}
