package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/greedy"
	"repro/internal/storage"
	"repro/internal/tpcd"
)

// PartitionedResult measures partition-parallel operator execution
// (exec/parallel.go) on the workload the PR-2 task scheduler cannot help
// with: a single four-relation join view, whose refresh is one differential
// task per update step. All speedup must therefore come from inside the
// operators — co-partitioned hash joins, morsel scans, partition-wise
// merges. Every run is verified exact against recomputation, and every
// partitioned run's maintained rows are checked byte-identical to the
// sequential run's (the partition-count independence contract).
type PartitionedResult struct {
	ScaleFactor float64
	UpdatePct   float64
	Cycles      int
	// Partitions[i] was refreshed in Refresh[i] per cycle (averaged).
	Partitions []int
	Refresh    []time.Duration
	// Verified is true when every run matched recomputation; Identical when
	// every partitioned run's view rows were byte-identical to the first
	// (sequential) run's.
	Verified, Identical bool
}

// buildJoin4Runtime assembles the single-view join workload on generated
// data. Equal seeds give byte-identical databases, plans and update batches.
func buildJoin4Runtime(sf, pct float64, seed int64) (*core.Runtime, *core.MaintenancePlan) {
	cat := tpcd.NewCatalog(sf, true)
	db := tpcd.Generate(cat, sf, seed)
	sys := core.NewSystem(cat, core.Options{})
	if _, err := sys.AddView("join4", tpcd.ViewJoin4(cat)); err != nil {
		panic(err)
	}
	u := diff.UniformPercent(cat, tpcd.UpdatedRelations(), pct)
	plan := sys.OptimizeGreedy(u, greedy.DefaultConfig())
	return plan.NewRuntime(db), plan
}

// PartitionedRefresh times the single-view refresh at each partition count
// (the first entry is the baseline the speedups are relative to; use 1 for
// the sequential operators).
func PartitionedRefresh(sf, pct float64, cycles int, partitions []int) PartitionedResult {
	out := PartitionedResult{
		ScaleFactor: sf, UpdatePct: pct, Cycles: cycles,
		Partitions: partitions, Verified: true, Identical: true,
	}
	var baseline *storage.Relation
	for _, p := range partitions {
		rt, plan := buildJoin4Runtime(sf, pct, 11)
		rt.SetPartitions(p)
		cat := plan.System.Cat
		var total time.Duration
		for c := 0; c < cycles; c++ {
			tpcd.LogUniformUpdates(cat, rt.Ex.DB, tpcd.UpdatedRelations(), pct, int64(300+c))
			start := time.Now()
			rt.Refresh()
			total += time.Since(start)
		}
		if err := rt.Verify(); err != nil {
			out.Verified = false
		}
		rows := rt.ViewRows(plan.Views[0].View)
		if baseline == nil {
			baseline = rows
		} else if !rowsIdentical(baseline, rows) {
			out.Identical = false
		}
		out.Refresh = append(out.Refresh, total/time.Duration(cycles))
	}
	return out
}

// rowsIdentical reports row-by-row tuple equality (order included).
func rowsIdentical(a, b *storage.Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i, t := range a.Rows() {
		if !t.Equal(b.Rows()[i]) {
			return false
		}
	}
	return true
}

// DefaultPartitions is the sweep of the partitioned-refresh experiment:
// sequential, a fixed small fan-out, and the hardware parallelism
// (deduplicated).
func DefaultPartitions() []int {
	out := []int{1, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		out = append(out, g)
	}
	return out
}

// Format renders the partition sweep with speedups over the first row.
func (r PartitionedResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t-part — partition-parallel refresh wall-clock (1 join view, SF %g, %g%% updates, %d cycles)\n",
		r.ScaleFactor, r.UpdatePct, r.Cycles)
	base := time.Duration(0)
	for i, p := range r.Partitions {
		if i == 0 {
			base = r.Refresh[i]
		}
		speedup := float64(base) / float64(r.Refresh[i])
		fmt.Fprintf(&b, "  partitions %2d: refresh %8v  (%.2fx vs first row)\n",
			p, r.Refresh[i].Round(time.Millisecond), speedup)
	}
	switch {
	case !r.Verified:
		b.WriteString("  VERIFICATION FAILED\n")
	case !r.Identical:
		b.WriteString("  PARTITION-COUNT DIVERGENCE (rows not byte-identical)\n")
	default:
		b.WriteString("  all runs verified exact and byte-identical across partition counts\n")
	}
	return b.String()
}
