package bench

// Feedback-driven costing under a skewed, drifting workload. The experiment
// replays the adaptive-serving drift (AdaptiveServe) with update batches
// whose foreign keys concentrate on a hot key range (tpcd.LogSkewedUpdates):
// base-table statistics barely move, but differential join fan-out drifts far
// from what the uniform-assumption histograms predict — exactly the regime
// where only observed cardinalities can fix the cost model. Three runs over
// identically generated data and drift isolate the two effects the
// benchmark reports:
//
//   - estimation error: median q-error of the maintenance cost model with
//     static estimates (FeedbackObserve — hooks record, never correct) versus
//     with corrections feeding every re-selection round (FeedbackCorrect);
//   - throughput: adaptive re-selection versus the static initial plan, both
//     measured with the same observation overhead.

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// DefaultHotFrac is the default update skew: inserted foreign keys draw from
// the lowest 5% of the referenced key space.
const DefaultHotFrac = 0.05

// FeedbackComparison is the outcome of one FeedbackExperiment.
type FeedbackComparison struct {
	// Corrected ran adaptive with corrections feeding re-selection; Observed
	// ran adaptive with static estimates (telemetry only); Static kept the
	// initial plan throughout (telemetry only).
	Corrected, Observed, Static AdaptiveResult
}

// FeedbackExperiment runs the skewed-drift workload three times — static
// plan, adaptive with static estimates, adaptive with feedback corrections —
// over identically generated data and drift.
func FeedbackExperiment(cfg AdaptiveConfig) FeedbackComparison {
	if cfg.HotFrac == 0 {
		cfg.HotFrac = DefaultHotFrac
	}
	var c FeedbackComparison
	cfg.Adaptive, cfg.Feedback = false, FeedbackObserve
	c.Static = AdaptiveServe(cfg)
	cfg.Adaptive, cfg.Feedback = true, FeedbackObserve
	c.Observed = AdaptiveServe(cfg)
	cfg.Adaptive, cfg.Feedback = true, FeedbackCorrect
	c.Corrected = AdaptiveServe(cfg)
	return c
}

// QImprovement is the factor by which feedback shrank the median q-error of
// the maintenance cost model (static-estimate median / corrected median).
func (c FeedbackComparison) QImprovement() float64 {
	if c.Corrected.Q.QMedian <= 0 {
		return 0
	}
	return c.Observed.Q.QMedian / c.Corrected.Q.QMedian
}

// Format renders the comparison.
func (c FeedbackComparison) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t-feedback — skewed drift (SF %g, %g%% updates, hot fraction %g, %d readers, %d phases × %d cycles)\n",
		c.Corrected.Cfg.ScaleFactor, c.Corrected.Cfg.UpdatePct, c.Corrected.Cfg.HotFrac,
		c.Corrected.Cfg.Readers, len(c.Corrected.Cfg.Phases), c.Corrected.Cfg.CyclesPerPhase)
	row := func(name string, r AdaptiveResult) {
		fmt.Fprintf(&b, "  %-18s q-error median %6.2f  p90 %8.2f  (mean %6.2f, max %8.1f, %d estimates)  %8.1f queries/s  %v\n",
			name, r.Q.QMedian, r.Q.QP90, r.Q.QMean, r.Q.QMax, r.Q.QTotal, r.TotalQPS,
			r.Elapsed.Round(time.Millisecond))
	}
	row("static estimates", c.Observed)
	row("feedback", c.Corrected)
	fmt.Fprintf(&b, "  feedback shrinks median q-error %.1fx; adaptive/static throughput %.2fx (%d swaps installed)\n",
		c.QImprovement(), c.Corrected.TotalQPS/c.Static.TotalQPS, c.Corrected.Installs)
	ok := "all runs verified exact and consistent"
	if !c.Sound() {
		ok = "VERIFICATION OR CONSISTENCY FAILED"
	}
	fmt.Fprintf(&b, "  %s\n", ok)
	return b.String()
}

// Sound reports every run verified and consistent.
func (c FeedbackComparison) Sound() bool {
	for _, r := range []AdaptiveResult{c.Corrected, c.Observed, c.Static} {
		if !r.Verified || !r.Consistent {
			return false
		}
	}
	return true
}

// feedbackJSON is the machine-readable summary benchjson.sh emits.
type feedbackJSON struct {
	Bench           string  `json:"bench"`
	ScaleFactor     float64 `json:"scale_factor"`
	UpdatePct       float64 `json:"update_pct"`
	HotFrac         float64 `json:"hot_frac"`
	Seed            int64   `json:"seed"`
	Phases          int     `json:"phases"`
	CyclesPerPhase  int     `json:"cycles_per_phase"`
	QMedianStatic   float64 `json:"q_median_static_estimates"`
	QMedianFeedback float64 `json:"q_median_feedback"`
	QP90Static      float64 `json:"q_p90_static_estimates"`
	QP90Feedback    float64 `json:"q_p90_feedback"`
	QMeanStatic     float64 `json:"q_mean_static_estimates"`
	QMeanFeedback   float64 `json:"q_mean_feedback"`
	QMaxStatic      float64 `json:"q_max_static_estimates"`
	QMaxFeedback    float64 `json:"q_max_feedback"`
	QImprovement    float64 `json:"q_error_improvement"`
	StaticQPS       float64 `json:"static_qps"`
	AdaptiveQPS     float64 `json:"adaptive_qps"`
	ThroughputRatio float64 `json:"adaptive_vs_static_qps"`
	Installs        int     `json:"swaps_installed"`
	Sound           bool    `json:"verified_and_consistent"`
}

// JSON renders the comparison as the BENCH_9 summary object.
func (c FeedbackComparison) JSON() ([]byte, error) {
	return json.MarshalIndent(feedbackJSON{
		Bench:           "feedback-drift",
		ScaleFactor:     c.Corrected.Cfg.ScaleFactor,
		UpdatePct:       c.Corrected.Cfg.UpdatePct,
		HotFrac:         c.Corrected.Cfg.HotFrac,
		Seed:            c.Corrected.Cfg.Seed,
		Phases:          len(c.Corrected.Cfg.Phases),
		CyclesPerPhase:  c.Corrected.Cfg.CyclesPerPhase,
		QMedianStatic:   c.Observed.Q.QMedian,
		QMedianFeedback: c.Corrected.Q.QMedian,
		QP90Static:      c.Observed.Q.QP90,
		QP90Feedback:    c.Corrected.Q.QP90,
		QMeanStatic:     c.Observed.Q.QMean,
		QMeanFeedback:   c.Corrected.Q.QMean,
		QMaxStatic:      c.Observed.Q.QMax,
		QMaxFeedback:    c.Corrected.Q.QMax,
		QImprovement:    c.QImprovement(),
		StaticQPS:       c.Static.TotalQPS,
		AdaptiveQPS:     c.Corrected.TotalQPS,
		ThroughputRatio: c.Corrected.TotalQPS / c.Static.TotalQPS,
		Installs:        c.Corrected.Installs,
		Sound:           c.Sound(),
	}, "", "  ")
}
