package bench

import "testing"

// TestFeedbackDriftSmoke runs the full feedback experiment at a tiny scale:
// all three runs must verify and stay consistent, every mode must actually
// record estimation error, and the corrected run's median q-error must not
// exceed the static-estimate baseline (the ≥2x reduction headline is
// asserted at benchmark scale by scripts/benchjson.sh, not here).
func TestFeedbackDriftSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("feedback drift experiment is slow")
	}
	c := FeedbackExperiment(AdaptiveConfig{
		ScaleFactor: 0.002, UpdatePct: 8, HotFrac: 0.02,
		Readers: 2, CyclesPerPhase: 5,
		Seed: 11, Check: true,
	})
	t.Logf("\n%s", c.Format())
	if !c.Sound() {
		t.Fatalf("feedback experiment failed verification or consistency")
	}
	if c.Observed.Q.QTotal == 0 || c.Corrected.Q.QTotal == 0 {
		t.Fatalf("no q-errors recorded: observed %d, corrected %d",
			c.Observed.Q.QTotal, c.Corrected.Q.QTotal)
	}
	if c.Static.Q.Observations == 0 {
		t.Fatalf("static run recorded no observations")
	}
	if c.Corrected.Installs == 0 {
		t.Fatalf("corrected run installed no swaps: corrections never reached a live plan")
	}
	if c.Corrected.Q.QMedian > c.Observed.Q.QMedian {
		t.Errorf("feedback increased median q-error: %.3f (corrected) > %.3f (static estimates)",
			c.Corrected.Q.QMedian, c.Observed.Q.QMedian)
	}
}
