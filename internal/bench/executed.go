package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/greedy"
	"repro/internal/tpcd"
)

// ExecutedResult measures the execution engine, not the cost model: real
// wall-clock time of incremental refresh with the Greedy plan versus the
// NoGreedy plan versus full recomputation, on generated TPC-D data. This is
// the study the paper could not run ("we are unable [to] get actual
// numbers", §7.1).
type ExecutedResult struct {
	ScaleFactor float64
	UpdatePct   float64
	// Wall-clock per refresh cycle (averaged over Cycles).
	GreedyRefresh, NoGreedyRefresh, FullRecompute time.Duration
	Cycles                                        int
	Verified                                      bool
}

// ExecutedRefresh runs the five-aggregate-view workload end to end at a
// small scale factor and times actual refreshes.
func ExecutedRefresh(sf, pct float64, cycles int) ExecutedResult {
	out := ExecutedResult{ScaleFactor: sf, UpdatePct: pct, Cycles: cycles, Verified: true}
	updated := []string{"customer", "orders", "lineitem"}

	build := func(useGreedy bool, seed int64) (*core.Runtime, *core.MaintenancePlan) {
		cat := tpcd.NewCatalog(sf, true)
		db := tpcd.Generate(cat, sf, seed)
		sys := core.NewSystem(cat, core.Options{})
		for _, v := range tpcd.ViewSet5(cat, true) {
			if _, err := sys.AddView(v.Name, v.Def); err != nil {
				panic(err)
			}
		}
		u := diff.UniformPercent(cat, updated, pct)
		var plan *core.MaintenancePlan
		if useGreedy {
			plan = sys.OptimizeGreedy(u, greedy.DefaultConfig())
		} else {
			plan = sys.OptimizeNoGreedy(u)
		}
		return plan.NewRuntime(db), plan
	}

	run := func(useGreedy bool) (time.Duration, bool) {
		rt, plan := build(useGreedy, 7)
		cat := plan.System.Cat
		var total time.Duration
		ok := true
		for c := 0; c < cycles; c++ {
			tpcd.LogUniformUpdates(cat, rt.Ex.DB, updated, pct, int64(100+c))
			start := time.Now()
			rt.Refresh()
			total += time.Since(start)
			if err := rt.Verify(); err != nil {
				ok = false
			}
		}
		return total / time.Duration(cycles), ok
	}

	var ok1, ok2 bool
	out.GreedyRefresh, ok1 = run(true)
	out.NoGreedyRefresh, ok2 = run(false)
	out.Verified = ok1 && ok2

	// Full recomputation baseline: rebuild every view from base relations.
	rt, plan := build(false, 7)
	cat := plan.System.Cat
	var total time.Duration
	for c := 0; c < cycles; c++ {
		tpcd.LogUniformUpdates(cat, rt.Ex.DB, updated, pct, int64(100+c))
		for _, rel := range updated {
			rt.Ex.DB.ApplyInserts(rel)
			rt.Ex.DB.ApplyDeletes(rel)
		}
		start := time.Now()
		for _, vp := range plan.Views {
			rt.Ex.MaterializeNode(vp.View.Root)
		}
		total += time.Since(start)
	}
	out.FullRecompute = total / time.Duration(cycles)
	return out
}

// Format renders the executed-refresh comparison.
func (r ExecutedResult) Format() string {
	verified := "all views verified exact"
	if !r.Verified {
		verified = "VERIFICATION FAILED"
	}
	return fmt.Sprintf(
		"t-exec — executed refresh wall-clock (SF %g, %g%% updates, %d cycles; beyond the paper)\n"+
			"  (note: the in-memory engine is CPU-bound, so wall-clock need not track\n"+
			"   the I/O-oriented cost model; this experiment demonstrates exactness and\n"+
			"   the incremental-vs-recompute crossover on real execution)\n"+
			"  greedy plan refresh:    %v\n"+
			"  nogreedy plan refresh:  %v\n"+
			"  full recomputation:     %v\n"+
			"  %s\n",
		r.ScaleFactor, r.UpdatePct, r.Cycles,
		r.GreedyRefresh.Round(time.Millisecond),
		r.NoGreedyRefresh.Round(time.Millisecond),
		r.FullRecompute.Round(time.Millisecond),
		verified)
}
