package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/diff"
	"repro/internal/greedy"
	"repro/internal/tpcd"
)

// AblationResult compares greedy-optimizer configurations on the ten-view
// workload, quantifying the two §6.2 optimizations the paper adopts from
// [RSSB00] and the value of subsumption derivations in the DAG.
type AblationResult struct {
	// Full configuration (both optimizations on).
	LazyCalls int
	LazyCost  float64
	LazyTime  time.Duration
	// Monotonicity off: every candidate re-evaluated per iteration.
	NaiveCalls int
	NaiveCost  float64
	NaiveTime  time.Duration
	// Incremental cost update off (monotonicity on): benefit evaluations
	// cost the whole DAG from scratch.
	NoIncTime time.Duration
	NoIncCost float64
	// Subsumption derivations disabled in the DAG.
	NoSubCost float64
}

// Ablation runs the ten-view workload at 10% updates under each
// configuration.
func Ablation() AblationResult {
	run := func(cfg greedy.Config, subsumption bool) (*greedy.Result, time.Duration) {
		cat := tpcd.NewCatalog(ScaleFactor, true)
		s := core.NewSystem(cat, core.Options{
			Params:             cost.Default(),
			DisableSubsumption: !subsumption,
		})
		for _, v := range tpcd.ViewSet10(cat) {
			if _, err := s.AddView(v.Name, v.Def); err != nil {
				panic(err)
			}
		}
		u := diff.UniformPercent(cat, tpcd.UpdatedRelations(), 10)
		start := time.Now()
		plan := s.OptimizeGreedy(u, cfg)
		return plan.Greedy, time.Since(start)
	}

	var out AblationResult
	lazy, lazyT := run(greedy.DefaultConfig(), true)
	out.LazyCalls, out.LazyCost, out.LazyTime = lazy.BenefitCalls, lazy.FinalCost, lazyT

	naiveCfg := greedy.DefaultConfig()
	naiveCfg.DisableMonotonicity = true
	naive, naiveT := run(naiveCfg, true)
	out.NaiveCalls, out.NaiveCost, out.NaiveTime = naive.BenefitCalls, naive.FinalCost, naiveT

	noIncCfg := greedy.DefaultConfig()
	noIncCfg.DisableIncremental = true
	noInc, noIncT := run(noIncCfg, true)
	out.NoIncCost, out.NoIncTime = noInc.FinalCost, noIncT

	noSub, _ := run(greedy.DefaultConfig(), false)
	out.NoSubCost = noSub.FinalCost
	return out
}

// Format renders the ablation table.
func (r AblationResult) Format() string {
	return fmt.Sprintf(
		"t-abl — ablation of the greedy optimizations (10 views, 10%% updates)\n"+
			"  full configuration:        cost %8.2f s, %4d benefit calls, %v\n"+
			"  no monotonicity (naive):   cost %8.2f s, %4d benefit calls, %v\n"+
			"  no incremental update:     cost %8.2f s,  (same calls), %v\n"+
			"  no subsumption in DAG:     cost %8.2f s\n"+
			"  benefit-call reduction from monotonicity: %.1fx\n"+
			"  speedup from incremental cost update:     %.1fx\n",
		r.LazyCost, r.LazyCalls, r.LazyTime.Round(time.Millisecond),
		r.NaiveCost, r.NaiveCalls, r.NaiveTime.Round(time.Millisecond),
		r.NoIncCost, r.NoIncTime.Round(time.Millisecond),
		r.NoSubCost,
		float64(r.NaiveCalls)/float64(r.LazyCalls),
		float64(r.NoIncTime)/float64(r.LazyTime))
}
