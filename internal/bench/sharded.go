package bench

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/tpcd"
	"repro/internal/viewdef"
)

// ShardedServe measures scatter-gather serving: N reader goroutines issue
// SQL through a sharded runtime whose partitions are spread over a worker
// fleet, while one writer runs refresh cycles and two-phase installs. The
// single-node comparison point is the same runtime shape at Shards == 0
// (plain serving with the dynamic cache off, the configuration the sharded
// path pins), so aggregate q/s is comparable across shard counts and every
// sampled answer can be checked byte-for-byte against local execution.

// ShardedServeConfig parameterizes one sharded-serving run.
type ShardedServeConfig struct {
	// ScaleFactor is the TPC-D scale of the generated database.
	ScaleFactor float64
	// UpdatePct is the per-cycle update percentage.
	UpdatePct float64
	// Readers is the number of concurrent query goroutines.
	Readers int
	// Cycles is the number of refresh+install cycles the writer runs.
	Cycles int
	// Shards is the worker-fleet size; 0 runs the single-node baseline.
	Shards int
	// Partitions is the partition count sharded across the fleet (0 picks
	// 2*Shards, minimum 4).
	Partitions int
	// Addrs, when non-empty, dials net/rpc workers at these addresses
	// instead of booting an in-process fleet; len(Addrs) must equal Shards.
	Addrs []string
	// Queries is the SQL mix; nil selects DefaultServeQueries.
	Queries []string
	// Seed drives data generation and the per-cycle update batches
	// (0 selects 11).
	Seed int64
	// Check retains history and verifies every sampled answer against a
	// from-scratch recomputation at the epoch it claims, plus a final
	// byte-for-byte comparison against the local execution path.
	Check bool
}

// ShardedServeResult is the outcome of one ShardedServe run.
type ShardedServeResult struct {
	Cfg ShardedServeConfig
	// Elapsed is the wall-clock span of the whole run.
	Elapsed time.Duration
	// RefreshTotal is the writer's cumulative refresh+install wall-clock.
	RefreshTotal time.Duration
	// Queries is the number of queries answered across all readers.
	Queries int64
	// PerReaderQPS is each reader's answered-queries-per-second.
	PerReaderQPS []float64
	// AggregateQPS sums PerReaderQPS.
	AggregateQPS float64
	// Scattered and Fallbacks count queries served by the fleet versus the
	// coordinator-local fallback (0/0 for the single-node baseline).
	Scattered, Fallbacks int64
	// Epochs is the final gate epoch.
	Epochs int64
	// CheckedSamples and DistinctStates describe the consistency check.
	CheckedSamples, DistinctStates int
	// Consistent is false if any sample diverged from its epoch's
	// recomputation (only meaningful with Cfg.Check).
	Consistent bool
	// ByteIdentical is false if a final non-aggregate answer differed from
	// local execution in row order or content (only meaningful with
	// Cfg.Check; aggregates are compared as multisets).
	ByteIdentical bool
	// Verified is the post-run Runtime.Verify outcome.
	Verified bool
}

// ShardedServe runs the sharded readers-versus-writer experiment.
func ShardedServe(cfg ShardedServeConfig) ShardedServeResult {
	if cfg.Queries == nil {
		cfg.Queries = DefaultServeQueries()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 11
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 2 * cfg.Shards
		if cfg.Partitions < 4 {
			cfg.Partitions = 4
		}
	}
	rt, plan := buildTenViewRuntime(cfg.ScaleFactor, cfg.UpdatePct, cfg.Seed)
	cat := plan.System.Cat

	// query answers one SQL statement; refresh publishes one update cycle.
	var query func(string) (*core.QueryResult, error)
	var refresh func() error
	var stats func() core.ShardStats
	if cfg.Shards <= 0 {
		rt.EnableServing(core.ServeOptions{CacheBudget: -1, RetainHistory: cfg.Check})
		query, refresh = rt.Query, func() error { rt.Refresh(); return nil }
		stats = func() core.ShardStats { return core.ShardStats{} }
	} else {
		opts := core.ShardOptions{
			Shards: cfg.Shards, Partitions: cfg.Partitions, RetainHistory: cfg.Check,
		}
		var sr *core.ShardedRuntime
		var err error
		if len(cfg.Addrs) > 0 {
			asg := shard.Assignment{Partitions: cfg.Partitions, Shards: cfg.Shards}.Norm()
			clients := make([]shard.Client, len(cfg.Addrs))
			for i, addr := range cfg.Addrs {
				if clients[i], err = shard.Dial(addr); err != nil {
					panic(fmt.Sprintf("bench: dial shard %d at %s: %v", i, addr, err))
				}
			}
			sr, err = rt.EnableShardedClients(asg, clients, opts)
		} else {
			sr, err = rt.EnableShardedInProc(opts)
		}
		if err != nil {
			panic(fmt.Sprintf("bench: enable sharding: %v", err))
		}
		defer sr.Close()
		query, refresh, stats = sr.Query, sr.Refresh, sr.Stats
	}

	type sample struct {
		sqlIdx int
		epoch  int64
		rows   *storage.Relation
	}
	var (
		mu      sync.Mutex
		samples []sample
		done    atomic.Bool
		wg      sync.WaitGroup
	)
	answered := make([]int64, cfg.Readers)
	start := time.Now()
	for w := 0; w < cfg.Readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				qi := (i + w) % len(cfg.Queries)
				res, err := query(cfg.Queries[qi])
				if err != nil {
					panic(fmt.Sprintf("bench: sharded reader query failed: %v", err))
				}
				answered[w]++
				if cfg.Check {
					mu.Lock()
					if len(samples) < maxSamples {
						samples = append(samples, sample{qi, res.Epoch, res.Rows})
					}
					mu.Unlock()
				}
			}
		}(w)
	}

	var refreshTotal time.Duration
	for c := 0; c < cfg.Cycles; c++ {
		tpcd.LogUniformUpdates(cat, rt.Ex.DB, tpcd.UpdatedRelations(), cfg.UpdatePct, cfg.Seed+int64(500+c))
		t0 := time.Now()
		if err := refresh(); err != nil {
			panic(fmt.Sprintf("bench: sharded refresh failed: %v", err))
		}
		refreshTotal += time.Since(t0)
	}
	done.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	st := stats()
	out := ShardedServeResult{
		Cfg: cfg, Elapsed: elapsed, RefreshTotal: refreshTotal,
		Scattered: st.Scattered, Fallbacks: st.Fallbacks,
		Epochs:        rt.Snapshots().Current().Epoch(),
		Consistent:    true,
		ByteIdentical: true,
		Verified:      rt.Verify() == nil,
	}
	for _, n := range answered {
		q := float64(n) / elapsed.Seconds()
		out.PerReaderQPS = append(out.PerReaderQPS, q)
		out.AggregateQPS += q
		out.Queries += n
	}

	if cfg.Check {
		cd := dag.New(cat)
		roots := make([]*dag.Equiv, len(cfg.Queries))
		for i, sql := range cfg.Queries {
			roots[i] = cd.InsertExpr(viewdef.MustParse(cat, sql))
		}
		type key struct {
			sqlIdx int
			epoch  int64
		}
		want := make(map[key]*storage.Relation)
		for _, s := range samples {
			k := key{s.sqlIdx, s.epoch}
			w, ok := want[k]
			if !ok {
				snap := rt.Snapshots().At(s.epoch)
				if snap == nil {
					out.Consistent = false
					continue
				}
				w = exec.NewExecutor(snap.Database()).EvalNode(roots[s.sqlIdx])
				want[k] = w
			}
			if !storage.EqualMultiset(s.rows, w) {
				out.Consistent = false
			}
			out.CheckedSamples++
		}
		out.DistinctStates = len(want)

		// Final answers through the sharded path against the local path on
		// the same runtime: byte-identical for non-aggregates (both recompute
		// under the identical plan), multiset-equal for aggregates.
		for _, sql := range cfg.Queries {
			got, err := query(sql)
			if err != nil {
				panic(fmt.Sprintf("bench: final sharded query failed: %v", err))
			}
			local, err := rt.Query(sql)
			if err != nil {
				panic(fmt.Sprintf("bench: final local query failed: %v", err))
			}
			if !storage.EqualMultiset(got.Rows, local.Rows) {
				out.ByteIdentical = false
				continue
			}
			if strings.Contains(sql, "GROUP BY") {
				continue
			}
			for r, tu := range local.Rows.Rows() {
				if !tu.Equal(got.Rows.Rows()[r]) {
					out.ByteIdentical = false
					break
				}
			}
		}
	}
	return out
}

// Format renders the sharded serving result.
func (r ShardedServeResult) Format() string {
	var b strings.Builder
	mode := fmt.Sprintf("%d shards over %d partitions", r.Cfg.Shards, r.Cfg.Partitions)
	if r.Cfg.Shards <= 0 {
		mode = "single-node baseline"
	} else if len(r.Cfg.Addrs) > 0 {
		mode += " (net/rpc)"
	}
	fmt.Fprintf(&b, "t-shard — sharded serving, %s (SF %g, %g%% updates, %d readers, %d cycles)\n",
		mode, r.Cfg.ScaleFactor, r.Cfg.UpdatePct, r.Cfg.Readers, r.Cfg.Cycles)
	fmt.Fprintf(&b, "  %d queries in %v (writer busy %v, gate at epoch %d)\n",
		r.Queries, r.Elapsed.Round(time.Millisecond), r.RefreshTotal.Round(time.Millisecond), r.Epochs)
	fmt.Fprintf(&b, "  aggregate: %8.1f queries/s; scattered %d, local fallbacks %d\n",
		r.AggregateQPS, r.Scattered, r.Fallbacks)
	if r.Cfg.Check {
		status := "all consistent with step-boundary recomputation"
		if !r.Consistent {
			status = "INCONSISTENT RESULTS DETECTED"
		}
		fmt.Fprintf(&b, "  snapshot check: %d samples over %d (query, epoch) states — %s\n",
			r.CheckedSamples, r.DistinctStates, status)
		if r.ByteIdentical {
			b.WriteString("  final answers byte-identical to local execution\n")
		} else {
			b.WriteString("  FINAL ANSWERS DIVERGED FROM LOCAL EXECUTION\n")
		}
	}
	if r.Verified {
		b.WriteString("  all views verified exact after the run\n")
	} else {
		b.WriteString("  VERIFICATION FAILED\n")
	}
	return b.String()
}
