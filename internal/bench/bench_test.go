package bench

import (
	"strings"
	"testing"
)

// checkShape asserts the qualitative properties the paper reports for every
// figure: Greedy never loses, wins most at the lowest update percentage, and
// the advantage shrinks (weakly) toward high update percentages.
func checkShape(t *testing.T, s *Series) {
	t.Helper()
	if len(s.X) != len(UpdatePercents) {
		t.Fatalf("%s: wrong sweep length %d", s.Name, len(s.X))
	}
	for i := range s.X {
		if s.Greedy[i] > s.NoGreedy[i]*(1+1e-9) {
			t.Errorf("%s: Greedy loses at %g%%: %g vs %g",
				s.Name, s.X[i], s.Greedy[i], s.NoGreedy[i])
		}
		if s.Greedy[i] <= 0 || s.NoGreedy[i] <= 0 {
			t.Errorf("%s: non-positive cost at %g%%", s.Name, s.X[i])
		}
	}
	first := s.NoGreedy[0] / s.Greedy[0]
	last := s.NoGreedy[len(s.X)-1] / s.Greedy[len(s.X)-1]
	if first < last {
		t.Errorf("%s: benefit ratio should be largest at low update %%: %.2f vs %.2f",
			s.Name, first, last)
	}
	if first < 1.05 {
		t.Errorf("%s: expected a visible win at 1%% updates, ratio %.3f", s.Name, first)
	}
	// Costs must grow with the update percentage for the baseline.
	for i := 1; i < len(s.X); i++ {
		if s.NoGreedy[i] < s.NoGreedy[i-1]*(1-1e-9) {
			t.Errorf("%s: NoGreedy cost decreased from %g%% to %g%%", s.Name, s.X[i-1], s.X[i])
		}
	}
}

func TestFigure3aShape(t *testing.T) { checkShape(t, Figure3a()) }
func TestFigure3bShape(t *testing.T) { checkShape(t, Figure3b()) }
func TestFigure4aShape(t *testing.T) { checkShape(t, Figure4a()) }
func TestFigure4bShape(t *testing.T) { checkShape(t, Figure4b()) }
func TestFigure5aShape(t *testing.T) { checkShape(t, Figure5a()) }
func TestFigure5bShape(t *testing.T) { checkShape(t, Figure5b()) }

func TestViewSetsBenefitMoreThanStandalone(t *testing.T) {
	// Sharing across five views should produce larger absolute savings than
	// a single view. (The *ratio* need not dominate: the five-view set
	// includes a deliberately unselective view that dilutes it.)
	solo := Figure3a()
	set := Figure4a()
	soloSavings := solo.NoGreedy[0] - solo.Greedy[0]
	setSavings := set.NoGreedy[0] - set.Greedy[0]
	if setSavings <= soloSavings {
		t.Errorf("five views should save more than one: %.2f s vs %.2f s",
			setSavings, soloSavings)
	}
}

func TestFig5bGreedyRecoversWithoutIndexes(t *testing.T) {
	// Paper: "all required indices got chosen … the cost of the plans we
	// generate were not significantly affected by the presence of indices,
	// although the cost of plans without our optimizations rose".
	withIx := Figure5a()
	without := Figure5b()
	for i := range withIx.X {
		if without.Greedy[i] > withIx.Greedy[i]*1.15 {
			t.Errorf("Greedy should recover missing indexes at %g%%: %g vs %g",
				withIx.X[i], without.Greedy[i], withIx.Greedy[i])
		}
		if without.NoGreedy[i] < withIx.NoGreedy[i]*(1-1e-9) {
			t.Errorf("NoGreedy should not get cheaper without indexes at %g%%", withIx.X[i])
		}
	}
}

func TestOptimizationTimeBounded(t *testing.T) {
	r := OptimizationTime()
	// The paper took 31s on 2000-era hardware; anything over a minute here
	// means the incremental/monotonicity optimizations regressed.
	if r.Elapsed.Seconds() > 60 {
		t.Errorf("greedy optimization too slow: %v", r.Elapsed)
	}
	if r.SavingsPerRun <= 0 {
		t.Errorf("optimization should save plan cost, got %g", r.SavingsPerRun)
	}
	if r.Candidates == 0 || r.BenefitCalls == 0 {
		t.Errorf("instrumentation missing: %+v", r)
	}
}

func TestTempVsPermanentBands(t *testing.T) {
	m := TempVsPermanent()
	if m.Temporary+m.Permanent == 0 {
		t.Fatalf("no full results chosen across all workloads")
	}
	// Paper: at 1–5% the split is roughly even; at 50–90% it shifts strongly
	// toward temporary (recomputation). Check the direction.
	lowFrac := frac(m.LowPerm, m.LowPerm+m.LowTemp)
	highFrac := frac(m.HighPerm, m.HighPerm+m.HighTemp)
	if m.LowPerm+m.LowTemp > 0 && m.HighPerm+m.HighTemp > 0 && highFrac > lowFrac {
		t.Errorf("permanent fraction should fall as update %% rises: %.2f → %.2f",
			lowFrac, highFrac)
	}
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func TestBufferComparisonDirection(t *testing.T) {
	r := BufferComparison()
	for i := range r.Pcts {
		if r.SmallNoGreedy[i] < r.BigNoGreedy[i]*(1-1e-9) {
			t.Errorf("smaller buffer should not lower NoGreedy cost at %g%%", r.Pcts[i])
		}
	}
	// Paper: with a smaller buffer "the benefit ratio for small update
	// percentages was actually more strongly in favor of our algorithms".
	if r.SmallNoGreedy[0]/r.SmallGreedy[0] < r.BigNoGreedy[0]/r.BigGreedy[0]*0.9 {
		t.Errorf("small-buffer ratio collapsed: %.2f vs %.2f",
			r.SmallNoGreedy[0]/r.SmallGreedy[0], r.BigNoGreedy[0]/r.BigGreedy[0])
	}
}

func TestAblationInvariants(t *testing.T) {
	r := Ablation()
	if r.NaiveCalls <= r.LazyCalls {
		t.Errorf("monotonicity should reduce benefit calls: %d vs %d", r.LazyCalls, r.NaiveCalls)
	}
	// The incremental cost update must not change the outcome.
	if diffPct(r.LazyCost, r.NoIncCost) > 1e-6 {
		t.Errorf("incremental cost update changed outcome: %g vs %g", r.LazyCost, r.NoIncCost)
	}
	// The lazy heuristic must stay close to naive greedy.
	if r.LazyCost > r.NaiveCost*1.2 {
		t.Errorf("lazy heuristic strayed: %g vs %g", r.LazyCost, r.NaiveCost)
	}
	if out := r.Format(); !strings.Contains(out, "monotonicity") {
		t.Errorf("format incomplete:\n%s", out)
	}
}

func diffPct(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / (1 + b)
}

func TestExecutedRefreshVerifies(t *testing.T) {
	r := ExecutedRefresh(0.002, 5, 1)
	if !r.Verified {
		t.Fatalf("executed maintenance diverged from recomputation")
	}
	if r.GreedyRefresh <= 0 || r.NoGreedyRefresh <= 0 || r.FullRecompute <= 0 {
		t.Errorf("timings must be positive: %+v", r)
	}
	if !strings.Contains(r.Format(), "verified") {
		t.Errorf("format incomplete")
	}
}

func TestSeriesFormat(t *testing.T) {
	s := &Series{Name: "figX", Label: "test", X: []float64{1},
		Greedy: []float64{1}, NoGreedy: []float64{2}}
	out := s.Format()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "2.00") {
		t.Errorf("format output wrong:\n%s", out)
	}
}
