package bench

import (
	"encoding/json"
	"testing"

	"repro/internal/storage"
)

// TestPipelineComparison smoke-runs the engine comparison at a tiny scale
// with the consistency check on: every engine must verify, serve
// consistently, and maintain byte-identical view rows — and the run must
// leave the process-default engine exactly as it found it.
func TestPipelineComparison(t *testing.T) {
	prevBatch, prevChain := storage.DefaultExecBatch(), storage.DefaultExecChain()
	r := PipelineComparison(PipelineConfig{
		ScaleFactor: 0.001, UpdatePct: 4,
		Cycles: 2, Readers: 2, Seed: 7, Check: true,
	})
	if storage.DefaultExecBatch() != prevBatch || storage.DefaultExecChain() != prevChain {
		t.Fatalf("engine defaults not restored: batch %v chain %v, want %v %v",
			storage.DefaultExecBatch(), storage.DefaultExecChain(), prevBatch, prevChain)
	}
	if len(r.Engines) != 3 {
		t.Fatalf("ran %d engines, want 3", len(r.Engines))
	}
	if !r.Sound() {
		t.Fatalf("comparison not sound:\n%s", r.Format())
	}
	for _, e := range r.Engines {
		if e.RefreshPerCycle <= 0 || e.BytesPerCycle == 0 || e.ServeQPS <= 0 {
			t.Fatalf("engine %s recorded empty measurements: %+v", e.Engine, e)
		}
	}

	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	for _, key := range []string{
		"chained_refresh_ms_per_cycle", "batch_refresh_ms_per_cycle",
		"row_refresh_ms_per_cycle", "chained_vs_batch_refresh",
		"chained_mb_per_cycle", "batch_mb_per_cycle", "chained_vs_batch_bytes",
		"chained_qps", "batch_qps", "row_qps", "verified_and_identical",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("summary missing key %q", key)
		}
	}
	if m["verified_and_identical"] != true {
		t.Errorf("verified_and_identical = %v, want true", m["verified_and_identical"])
	}
}
