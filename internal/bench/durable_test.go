package bench

import (
	"strings"
	"testing"
	"time"
)

// One small end-to-end run per fsync mode: the stream must arrive fully,
// verify exactly, and the fsync run must actually sync.
func TestDurableRefreshSmoke(t *testing.T) {
	for _, fsync := range []bool{false, true} {
		r := DurableRefresh(DurableConfig{
			ScaleFactor: 0.002, UpdatePct: 4, StreamBatches: 2,
			Fsync: fsync, CommitWindow: 2 * time.Millisecond,
			MaxBatchRows: 64, MaxBatchWait: time.Millisecond,
			Seed: 11,
		})
		if !r.Verified {
			t.Fatalf("fsync=%v: maintained views diverged from recomputation", fsync)
		}
		if r.Ops == 0 || r.Batches == 0 || r.Epochs == 0 {
			t.Fatalf("fsync=%v: empty run: %+v", fsync, r)
		}
		if fsync && r.Syncs == 0 {
			t.Fatal("fsync on but no syncs recorded")
		}
		if !fsync && r.Syncs != 0 {
			t.Fatalf("fsync off but %d syncs recorded", r.Syncs)
		}
		if !strings.Contains(r.Format(), "ops/s") {
			t.Fatalf("format incomplete:\n%s", r.Format())
		}
	}
}

// Serving concurrently with the durable writer: queries flow while batches
// commit, and the post-run verification still holds.
func TestDurableServeSmoke(t *testing.T) {
	r := DurableServe(DurableServeConfig{
		DurableConfig: DurableConfig{
			ScaleFactor: 0.002, UpdatePct: 4, StreamBatches: 2,
			MaxBatchRows: 64, MaxBatchWait: time.Millisecond,
			Seed: 11, Dir: t.TempDir(),
		},
		Readers: 2,
	})
	if !r.Verified {
		t.Fatal("maintained views diverged from recomputation")
	}
	if r.Queries == 0 || r.QPS <= 0 {
		t.Fatalf("no queries served: %+v", r)
	}
	if !strings.Contains(r.Format(), "queries/s") {
		t.Fatalf("format incomplete:\n%s", r.Format())
	}
}
