package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tpcd"
)

// PipelineComparison measures what the end-to-end columnar pipelines buy: the
// same refresh and serving workloads run under each operator engine — chained
// (batches flow across operator boundaries, rows gathered once at the sink),
// batch (PR-9: vectorized operators that materialize rows at every
// boundary), and row — with wall-clock, allocation volume, and byte-identity
// of the maintained view rows compared across engines.

// PipelineConfig parameterizes one engine-comparison run.
type PipelineConfig struct {
	// ScaleFactor and UpdatePct shape the TPC-D workload.
	ScaleFactor, UpdatePct float64
	// Cycles is the refresh cycles per engine (both legs).
	Cycles int
	// Readers is the concurrent query goroutine count of the serving leg.
	Readers int
	// Seed drives data generation and update batches; equal seeds give
	// draw-for-draw identical runs under every engine.
	Seed int64
	// Check turns on the serving leg's snapshot consistency check.
	Check bool
}

// PipelineEngineRun is one engine's measurements.
type PipelineEngineRun struct {
	Engine string
	// RefreshPerCycle is the ten-view refresh wall-clock averaged over cycles.
	RefreshPerCycle time.Duration
	// BytesPerCycle is the heap allocation volume of one refresh cycle
	// (runtime.MemStats TotalAlloc delta averaged over cycles).
	BytesPerCycle uint64
	// ServeQPS is the aggregate reader throughput of the serving leg.
	ServeQPS float64
	// Verified is the post-run exactness check of both legs.
	Verified bool
}

// PipelineResult is the outcome of PipelineComparison. Engines[0] is chained,
// [1] batch, [2] row.
type PipelineResult struct {
	Cfg     PipelineConfig
	Engines []PipelineEngineRun
	// Identical is true when every engine's maintained view rows were
	// byte-identical to the first engine's (the engine-independence contract).
	Identical bool
}

// pipelineEngines is the sweep order: the claim under test first, then its
// baseline, then the reference.
var pipelineEngines = []string{"chained", "batch", "row"}

// setEngine flips the process-default operator engine.
func setEngine(e string) {
	switch e {
	case "chained":
		storage.SetDefaultExecChain(true)
	case "batch":
		storage.SetDefaultExecBatch(true)
	default:
		storage.SetDefaultExecBatch(false)
	}
}

// PipelineComparison runs the refresh and serving legs under every engine.
func PipelineComparison(cfg PipelineConfig) PipelineResult {
	if cfg.Seed == 0 {
		cfg.Seed = 11
	}
	prevBatch, prevChain := storage.DefaultExecBatch(), storage.DefaultExecChain()
	defer func() {
		storage.SetDefaultExecBatch(prevBatch)
		storage.SetDefaultExecChain(prevChain)
	}()

	out := PipelineResult{Cfg: cfg, Identical: true}

	// Refresh leg: pure refresh cycles on the ten-view workload (no readers
	// competing for CPU), timed and allocation-metered. Each engine maintains
	// its own runtime over an identical database and update stream, and the
	// engines take their cycles INTERLEAVED round-robin — a paired design, so
	// heap growth and GC pacing drift hit all engines alike instead of
	// whichever engine happens to run later.
	type leg struct {
		run  PipelineEngineRun
		rt   *core.Runtime
		plan *core.MaintenancePlan
	}
	legs := make([]*leg, len(pipelineEngines))
	for i, eng := range pipelineEngines {
		setEngine(eng)
		rt, plan := buildTenViewRuntime(cfg.ScaleFactor, cfg.UpdatePct, cfg.Seed)
		legs[i] = &leg{run: PipelineEngineRun{Engine: eng, Verified: true}, rt: rt, plan: plan}
	}
	var ms0, ms1 runtime.MemStats
	for c := 0; c < cfg.Cycles; c++ {
		for _, l := range legs {
			setEngine(l.run.Engine)
			tpcd.LogUniformUpdates(l.plan.System.Cat, l.rt.Ex.DB, tpcd.UpdatedRelations(), cfg.UpdatePct, cfg.Seed+int64(300+c))
			runtime.ReadMemStats(&ms0)
			t0 := time.Now()
			l.rt.Refresh()
			l.run.RefreshPerCycle += time.Since(t0)
			runtime.ReadMemStats(&ms1)
			l.run.BytesPerCycle += ms1.TotalAlloc - ms0.TotalAlloc
		}
	}
	var baseline []*storage.Relation
	for _, l := range legs {
		setEngine(l.run.Engine)
		l.run.RefreshPerCycle /= time.Duration(cfg.Cycles)
		l.run.BytesPerCycle /= uint64(cfg.Cycles)
		if err := l.rt.Verify(); err != nil {
			l.run.Verified = false
		}
		var views []*storage.Relation
		for _, v := range l.plan.Views {
			views = append(views, l.rt.ViewRows(v.View))
		}
		if baseline == nil {
			baseline = views
		} else {
			for i, rows := range views {
				if !rowsIdentical(baseline[i], rows) {
					out.Identical = false
				}
			}
		}
	}

	// Serving leg: readers against the refresh writer on the ten-view
	// workload (the process default engine serves every query).
	for _, l := range legs {
		setEngine(l.run.Engine)
		sr := ConcurrentServe(ServeConfig{
			ScaleFactor: cfg.ScaleFactor, UpdatePct: cfg.UpdatePct,
			Readers: cfg.Readers, Cycles: cfg.Cycles,
			Seed: cfg.Seed, Check: cfg.Check,
		})
		for _, q := range sr.PerReaderQPS {
			l.run.ServeQPS += q
		}
		if !sr.Verified || !sr.Consistent {
			l.run.Verified = false
		}
		out.Engines = append(out.Engines, l.run)
	}
	return out
}

// Sound reports every engine run verified (and consistent, with Check).
func (r PipelineResult) Sound() bool {
	for _, e := range r.Engines {
		if !e.Verified {
			return false
		}
	}
	return r.Identical && len(r.Engines) == len(pipelineEngines)
}

// byEngine returns the named engine's run.
func (r PipelineResult) byEngine(name string) PipelineEngineRun {
	for _, e := range r.Engines {
		if e.Engine == name {
			return e
		}
	}
	return PipelineEngineRun{}
}

// RefreshSpeedup is the chained engine's refresh improvement over the batch
// baseline (>1 means chained refreshes faster).
func (r PipelineResult) RefreshSpeedup() float64 {
	c, b := r.byEngine("chained"), r.byEngine("batch")
	if c.RefreshPerCycle <= 0 {
		return 0
	}
	return float64(b.RefreshPerCycle) / float64(c.RefreshPerCycle)
}

// BytesReduction is batch_bytes/chained_bytes per refresh cycle (>1 means
// the chained engine allocates less).
func (r PipelineResult) BytesReduction() float64 {
	c, b := r.byEngine("chained"), r.byEngine("batch")
	if c.BytesPerCycle == 0 {
		return 0
	}
	return float64(b.BytesPerCycle) / float64(c.BytesPerCycle)
}

// Format renders the engine comparison.
func (r PipelineResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t-pipeline — operator-engine comparison (SF %g, %g%% updates, %d cycles, %d readers)\n",
		r.Cfg.ScaleFactor, r.Cfg.UpdatePct, r.Cfg.Cycles, r.Cfg.Readers)
	for _, e := range r.Engines {
		fmt.Fprintf(&b, "  %-8s refresh %8v/cycle  alloc %6.1f MB/cycle  serve %8.1f queries/s\n",
			e.Engine, e.RefreshPerCycle.Round(time.Millisecond),
			float64(e.BytesPerCycle)/(1<<20), e.ServeQPS)
	}
	fmt.Fprintf(&b, "  chained vs batch: %.2fx refresh, %.2fx fewer bytes\n",
		r.RefreshSpeedup(), r.BytesReduction())
	if r.Sound() {
		b.WriteString("  all engines verified exact; view rows byte-identical across engines\n")
	} else {
		b.WriteString("  ENGINE DIVERGENCE OR VERIFICATION FAILURE\n")
	}
	return b.String()
}

// pipelineJSON is the machine-readable summary benchjson.sh emits as
// BENCH_10.json.
type pipelineJSON struct {
	Bench            string  `json:"bench"`
	ScaleFactor      float64 `json:"scale_factor"`
	UpdatePct        float64 `json:"update_pct"`
	Cycles           int     `json:"cycles"`
	Readers          int     `json:"readers"`
	Seed             int64   `json:"seed"`
	ChainedRefreshMS float64 `json:"chained_refresh_ms_per_cycle"`
	BatchRefreshMS   float64 `json:"batch_refresh_ms_per_cycle"`
	RowRefreshMS     float64 `json:"row_refresh_ms_per_cycle"`
	RefreshSpeedup   float64 `json:"chained_vs_batch_refresh"`
	ChainedMB        float64 `json:"chained_mb_per_cycle"`
	BatchMB          float64 `json:"batch_mb_per_cycle"`
	BytesReduction   float64 `json:"chained_vs_batch_bytes"`
	ChainedQPS       float64 `json:"chained_qps"`
	BatchQPS         float64 `json:"batch_qps"`
	RowQPS           float64 `json:"row_qps"`
	Sound            bool    `json:"verified_and_identical"`
}

// JSON renders the comparison as the BENCH_10 summary object.
func (r PipelineResult) JSON() ([]byte, error) {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	mb := func(n uint64) float64 { return float64(n) / (1 << 20) }
	c, bt, rw := r.byEngine("chained"), r.byEngine("batch"), r.byEngine("row")
	return json.MarshalIndent(pipelineJSON{
		Bench:            "columnar-pipelines",
		ScaleFactor:      r.Cfg.ScaleFactor,
		UpdatePct:        r.Cfg.UpdatePct,
		Cycles:           r.Cfg.Cycles,
		Readers:          r.Cfg.Readers,
		Seed:             r.Cfg.Seed,
		ChainedRefreshMS: ms(c.RefreshPerCycle),
		BatchRefreshMS:   ms(bt.RefreshPerCycle),
		RowRefreshMS:     ms(rw.RefreshPerCycle),
		RefreshSpeedup:   r.RefreshSpeedup(),
		ChainedMB:        mb(c.BytesPerCycle),
		BatchMB:          mb(bt.BytesPerCycle),
		BytesReduction:   r.BytesReduction(),
		ChainedQPS:       c.ServeQPS,
		BatchQPS:         bt.ServeQPS,
		RowQPS:           rw.ServeQPS,
		Sound:            r.Sound(),
	}, "", "  ")
}
