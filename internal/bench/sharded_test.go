package bench

import (
	"strings"
	"testing"
)

// TestShardedServe runs readers against a refreshing writer over an
// in-process two-shard fleet (under -race in CI) with the full check on:
// every sampled result must match recomputation at its epoch, the final
// answers must be byte-identical to local execution, and at least one query
// must actually travel the scatter-gather path.
func TestShardedServe(t *testing.T) {
	r := ShardedServe(ShardedServeConfig{
		ScaleFactor: 0.002, UpdatePct: 4,
		Readers: 2, Cycles: 2, Shards: 2, Check: true,
	})
	if !r.Verified {
		t.Fatalf("views diverged from recomputation after the run")
	}
	if !r.Consistent {
		t.Fatalf("a served result did not match any step-boundary state")
	}
	if !r.ByteIdentical {
		t.Fatalf("a final sharded answer diverged from local execution")
	}
	if r.CheckedSamples == 0 {
		t.Fatalf("consistency check ran on zero samples")
	}
	if r.Scattered == 0 {
		t.Fatalf("no query went through scatter-gather (fallbacks=%d)", r.Fallbacks)
	}
	if len(r.PerReaderQPS) != r.Cfg.Readers {
		t.Errorf("per-reader throughput missing: %v", r.PerReaderQPS)
	}
	out := r.Format()
	for _, needle := range []string{"t-shard", "2 shards", "queries/s", "scattered", "byte-identical"} {
		if !strings.Contains(out, needle) {
			t.Errorf("Format missing %q:\n%s", needle, out)
		}
	}
	t.Logf("\n%s", out)
}

// TestShardedServeBaseline exercises the Shards == 0 leg: plain single-node
// serving in the sharded configuration, the comparison point the benchmark
// scales against.
func TestShardedServeBaseline(t *testing.T) {
	r := ShardedServe(ShardedServeConfig{
		ScaleFactor: 0.002, UpdatePct: 4,
		Readers: 2, Cycles: 1, Shards: 0, Check: true,
	})
	if !r.Verified || !r.Consistent || !r.ByteIdentical {
		t.Fatalf("baseline run failed: %+v", r)
	}
	if r.Scattered != 0 || r.Fallbacks != 0 {
		t.Fatalf("baseline recorded shard stats: %d/%d", r.Scattered, r.Fallbacks)
	}
	if !strings.Contains(r.Format(), "single-node baseline") {
		t.Errorf("Format missing baseline marker:\n%s", r.Format())
	}
}
