// Package bench regenerates every table and figure of the paper's
// performance study (§7). Each figure is a sweep over update percentages
// comparing Greedy (the paper's algorithm) against NoGreedy (plain Volcano
// extended to choose between incremental maintenance and recomputation, the
// class of [Vis98]). The performance measure is estimated plan cost in
// seconds, exactly as in the paper ("Since we do not currently have a query
// execution engine … the performance measure is estimated execution cost").
package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/diff"
	"repro/internal/greedy"
	"repro/internal/tpcd"
)

// UpdatePercents are the sweep points used for every figure (the paper
// plots 1–80%).
var UpdatePercents = []float64{1, 5, 10, 20, 40, 60, 80}

// ScaleFactor is the TPC-D scale of the study (paper: 0.1 ≈ 100 MB).
const ScaleFactor = 0.1

// Series is one figure: plan cost versus update percentage for both
// algorithms.
type Series struct {
	Name     string
	Label    string
	X        []float64
	Greedy   []float64
	NoGreedy []float64
}

// Format renders the series as an aligned text table (one row per sweep
// point), mirroring the axes of the paper's plots.
func (s *Series) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", s.Name, s.Label)
	fmt.Fprintf(&b, "%10s %14s %14s %8s\n", "update%", "NoGreedy(s)", "Greedy(s)", "ratio")
	for i := range s.X {
		ratio := s.NoGreedy[i] / s.Greedy[i]
		fmt.Fprintf(&b, "%10.0f %14.2f %14.2f %8.2f\n", s.X[i], s.NoGreedy[i], s.Greedy[i], ratio)
	}
	return b.String()
}

// workload bundles one experiment configuration.
type workload struct {
	views  []tpcd.NamedView
	withPK bool
	params cost.Params
}

// runPoint optimizes the workload at one update percentage and returns
// (noGreedy, greedy) total plan costs.
func (w workload) runPoint(pct float64) (ng, g float64, res *greedy.Result) {
	cat := tpcd.NewCatalog(ScaleFactor, w.withPK)
	s := core.NewSystem(cat, core.Options{Params: w.params})
	for _, v := range w.views {
		if _, err := s.AddView(v.Name, v.Def); err != nil {
			panic(err)
		}
	}
	u := diff.UniformPercent(cat, tpcd.UpdatedRelations(), pct)
	base := s.OptimizeNoGreedy(u)
	gp := s.OptimizeGreedy(u, greedy.DefaultConfig())
	return base.TotalCost, gp.TotalCost, gp.Greedy
}

// sweep runs the workload over all update percentages.
func (w workload) sweep(name, label string) *Series {
	s := &Series{Name: name, Label: label}
	for _, pct := range UpdatePercents {
		ng, g, _ := w.runPoint(pct)
		s.X = append(s.X, pct)
		s.NoGreedy = append(s.NoGreedy, ng)
		s.Greedy = append(s.Greedy, g)
	}
	return s
}

func defaultWorkload(views []tpcd.NamedView) workload {
	return workload{views: views, withPK: true, params: cost.Default()}
}

func singleView(name string, mk func() tpcd.NamedView) []tpcd.NamedView {
	return []tpcd.NamedView{mk()}
}

// Figure3a: maintaining a stand-alone view — join of 4 relations, no
// aggregation.
func Figure3a() *Series {
	cat := tpcd.NewCatalog(ScaleFactor, true)
	views := []tpcd.NamedView{{Name: "join4", Def: tpcd.ViewJoin4(cat)}}
	return defaultWorkload(views).sweep("fig3a", "stand-alone view, no aggregation")
}

// Figure3b: the same join with aggregation on top.
func Figure3b() *Series {
	cat := tpcd.NewCatalog(ScaleFactor, true)
	views := []tpcd.NamedView{{Name: "agg4", Def: tpcd.ViewAgg4(cat)}}
	return defaultWorkload(views).sweep("fig3b", "stand-alone view, with aggregation")
}

// Figure4a: a set of five related views without aggregation.
func Figure4a() *Series {
	cat := tpcd.NewCatalog(ScaleFactor, true)
	return defaultWorkload(tpcd.ViewSet5(cat, false)).
		sweep("fig4a", "five views of the same class, no aggregation")
}

// Figure4b: five aggregate views over shared joins.
func Figure4b() *Series {
	cat := tpcd.NewCatalog(ScaleFactor, true)
	return defaultWorkload(tpcd.ViewSet5(cat, true)).
		sweep("fig4b", "five views of the same class, with aggregation")
}

// Figure5a: ten views of 3–4 relations each, with predefined PK indexes.
func Figure5a() *Series {
	cat := tpcd.NewCatalog(ScaleFactor, true)
	return defaultWorkload(tpcd.ViewSet10(cat)).
		sweep("fig5a", "ten views, predefined PK indexes")
}

// Figure5b: the same ten views without any initial indexes; the required
// indexes must be chosen by Greedy.
func Figure5b() *Series {
	cat := tpcd.NewCatalog(ScaleFactor, false)
	w := workload{views: tpcd.ViewSet10(cat), withPK: false, params: cost.Default()}
	return w.sweep("fig5b", "ten views, no predefined indexes")
}

// OptTimeResult reproduces §7.2 "Cost of Optimization": wall-clock time of
// Greedy on the ten-view workload, set against the plan-cost savings of one
// refresh.
type OptTimeResult struct {
	Elapsed       time.Duration
	Candidates    int
	BenefitCalls  int
	SavingsPerRun float64 // NoGreedy − Greedy plan cost at 10% updates
	ChosenCount   int
	IndexesChosen int
}

// OptimizationTime measures the greedy optimizer on the Figure-5 workload.
func OptimizationTime() OptTimeResult {
	cat := tpcd.NewCatalog(ScaleFactor, true)
	w := defaultWorkload(tpcd.ViewSet10(cat))
	start := time.Now()
	ng, g, res := w.runPoint(10)
	elapsed := time.Since(start)
	out := OptTimeResult{
		Elapsed:       elapsed,
		Candidates:    res.CandidateCount,
		BenefitCalls:  res.BenefitCalls,
		SavingsPerRun: ng - g,
		ChosenCount:   len(res.Chosen),
	}
	for _, c := range res.Chosen {
		if c.Change.Kind == diff.ChangeIndex {
			out.IndexesChosen++
		}
	}
	return out
}

// Format renders the optimization-time result.
func (r OptTimeResult) Format() string {
	return fmt.Sprintf(
		"t-opt — cost of optimization (10 views)\n"+
			"  greedy optimization time: %v\n"+
			"  candidates: %d, benefit calls: %d, chosen: %d (indexes: %d)\n"+
			"  plan-cost savings per refresh at 10%% updates: %.2f s\n",
		r.Elapsed.Round(time.Millisecond), r.Candidates, r.BenefitCalls,
		r.ChosenCount, r.IndexesChosen, r.SavingsPerRun)
}

// MatSplit reproduces §7.2 "Temporary vs. Permanent Materialization": counts
// of chosen full results for which recomputation is cheaper (temporary) and
// for which maintenance is cheaper (permanent), tallied over all workloads
// and update rates, plus the low/high-rate bands the paper quotes
// (281:306 at 1–5 %, 360:88 at 50–90 %).
type MatSplit struct {
	Temporary, Permanent int
	LowTemp, LowPerm     int // 1–5 % band
	HighTemp, HighPerm   int // 50–90 % band
}

// TempVsPermanent tallies temporary/permanent decisions across the figure
// workloads and the full update-rate range.
func TempVsPermanent() MatSplit {
	var out MatSplit
	catA := tpcd.NewCatalog(ScaleFactor, true)
	catB := tpcd.NewCatalog(ScaleFactor, true)
	catC := tpcd.NewCatalog(ScaleFactor, true)
	workloads := []workload{
		defaultWorkload(tpcd.ViewSet5(catA, false)),
		defaultWorkload(tpcd.ViewSet5(catB, true)),
		defaultWorkload(tpcd.ViewSet10(catC)),
	}
	rates := []float64{1, 5, 10, 20, 50, 70, 90}
	for _, w := range workloads {
		for _, pct := range rates {
			_, _, res := w.runPoint(pct)
			for _, c := range res.Chosen {
				if c.Change.Kind != diff.ChangeFull {
					continue
				}
				if c.Permanent {
					out.Permanent++
				} else {
					out.Temporary++
				}
				switch {
				case pct <= 5:
					if c.Permanent {
						out.LowPerm++
					} else {
						out.LowTemp++
					}
				case pct >= 50:
					if c.Permanent {
						out.HighPerm++
					} else {
						out.HighTemp++
					}
				}
			}
		}
	}
	return out
}

// Format renders the split.
func (m MatSplit) Format() string {
	return fmt.Sprintf(
		"t-mat — temporary vs. permanent materialization\n"+
			"  overall: %d temporary (recompute cheaper), %d permanent (maintain cheaper)\n"+
			"  1–5%% updates:   %d temporary : %d permanent\n"+
			"  50–90%% updates: %d temporary : %d permanent\n",
		m.Temporary, m.Permanent, m.LowTemp, m.LowPerm, m.HighTemp, m.HighPerm)
}

// BufferResult reproduces §7.2 "Effect of Buffer Size": the Figure-4(a)
// workload at 8000 versus 1000 buffer blocks.
type BufferResult struct {
	Pcts                       []float64
	BigNoGreedy, BigGreedy     []float64
	SmallNoGreedy, SmallGreedy []float64
}

// BufferComparison runs the five-view workload at both buffer sizes.
func BufferComparison() BufferResult {
	var out BufferResult
	for _, pct := range []float64{1, 5, 10, 20} {
		catBig := tpcd.NewCatalog(ScaleFactor, true)
		big := workload{views: tpcd.ViewSet5(catBig, false), withPK: true, params: cost.Default()}
		bn, bg, _ := big.runPoint(pct)
		catSmall := tpcd.NewCatalog(ScaleFactor, true)
		small := workload{views: tpcd.ViewSet5(catSmall, false), withPK: true, params: cost.SmallBuffer()}
		sn, sg, _ := small.runPoint(pct)
		out.Pcts = append(out.Pcts, pct)
		out.BigNoGreedy = append(out.BigNoGreedy, bn)
		out.BigGreedy = append(out.BigGreedy, bg)
		out.SmallNoGreedy = append(out.SmallNoGreedy, sn)
		out.SmallGreedy = append(out.SmallGreedy, sg)
	}
	return out
}

// Format renders the buffer comparison.
func (r BufferResult) Format() string {
	var b strings.Builder
	b.WriteString("t-buf — effect of buffer size (five-view workload)\n")
	fmt.Fprintf(&b, "%8s %12s %12s %12s %12s %10s %10s\n",
		"update%", "8000 NoGr", "8000 Gr", "1000 NoGr", "1000 Gr", "ratio8000", "ratio1000")
	for i := range r.Pcts {
		fmt.Fprintf(&b, "%8.0f %12.2f %12.2f %12.2f %12.2f %10.2f %10.2f\n",
			r.Pcts[i], r.BigNoGreedy[i], r.BigGreedy[i], r.SmallNoGreedy[i], r.SmallGreedy[i],
			r.BigNoGreedy[i]/r.BigGreedy[i], r.SmallNoGreedy[i]/r.SmallGreedy[i])
	}
	return b.String()
}
