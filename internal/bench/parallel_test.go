package bench

// Golden test for the concurrent refresh scheduler on the ten-view
// workload: identical builds refreshed at workers=1 and at a real pool must
// leave every maintained view byte-identical — ViewSet10 is all joins, whose
// maintained row order is deterministic — and exact against recomputation.
// Run under -race in CI to also catch data races in the scheduler.

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/tpcd"
)

func TestTenViewParallelRefreshGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("generates TPC-D data")
	}
	const sf, pct, cycles = 0.002, 5, 2

	refreshAll := func(workers int) (*storageRelations, error) {
		rt, plan := buildTenViewRuntime(sf, pct, 11)
		rt.SetWorkers(workers)
		cat := plan.System.Cat
		for c := 0; c < cycles; c++ {
			tpcd.LogUniformUpdates(cat, rt.Ex.DB, tpcd.UpdatedRelations(), pct, int64(300+c))
			rt.Refresh()
		}
		if err := rt.Verify(); err != nil {
			return nil, err
		}
		out := &storageRelations{}
		for _, vp := range plan.Views {
			out.names = append(out.names, vp.View.Name)
			out.rels = append(out.rels, rt.ViewRows(vp.View))
		}
		return out, nil
	}

	seq, err := refreshAll(1)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	for _, workers := range []int{4, 0} {
		par, err := refreshAll(workers)
		if err != nil {
			t.Fatalf("workers=%d run: %v", workers, err)
		}
		for i, name := range seq.names {
			want, got := seq.rels[i], par.rels[i]
			if !storage.EqualMultiset(want, got) {
				t.Fatalf("workers=%d: view %s diverged as multiset (%d vs %d rows)",
					workers, name, want.Len(), got.Len())
			}
			if want.Len() != got.Len() {
				t.Fatalf("workers=%d: view %s row count %d vs %d", workers, name, want.Len(), got.Len())
			}
			for r, tu := range want.Rows() {
				if !tu.Equal(got.Rows()[r]) {
					t.Fatalf("workers=%d: view %s not byte-identical at row %d", workers, name, r)
				}
			}
		}
	}
}

// storageRelations pairs view names with their maintained relations.
type storageRelations struct {
	names []string
	rels  []*storage.Relation
}
