package bench

// Determinism guard for the parallel benefit evaluation: on the Figure 5(a)
// ten-view workload, greedy's chosen set and FinalCost must be bit-identical
// between a serial run (Workers=1) and concurrent runs, and across repeated
// concurrent runs. Run under -race in CI to also catch data races in the
// worker pool.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/greedy"
	"repro/internal/tpcd"
)

// fig5aChosen runs greedy on the Figure 5(a) workload with the given worker
// count and renders the chosen set plus costs as one canonical string.
func fig5aChosen(workers int) string {
	cat := tpcd.NewCatalog(ScaleFactor, true)
	s := core.NewSystem(cat, core.Options{})
	for _, v := range tpcd.ViewSet10(cat) {
		if _, err := s.AddView(v.Name, v.Def); err != nil {
			panic(err)
		}
	}
	u := diff.UniformPercent(cat, tpcd.UpdatedRelations(), 10)
	cfg := greedy.DefaultConfig()
	cfg.Workers = workers
	plan := s.OptimizeGreedy(u, cfg)
	out := fmt.Sprintf("initial=%v final=%v candidates=%d calls=%d\n",
		plan.Greedy.InitialCost, plan.Greedy.FinalCost,
		plan.Greedy.CandidateCount, plan.Greedy.BenefitCalls)
	for _, c := range plan.Greedy.Chosen {
		out += fmt.Sprintf("%s benefit=%v bytes=%v permanent=%v\n",
			c.Desc, c.Benefit, c.Bytes, c.Permanent)
	}
	return out
}

func TestFig5aGoldenPlanParallelDeterminism(t *testing.T) {
	serial := fig5aChosen(1)
	if serial == "" {
		t.Fatalf("serial run chose nothing")
	}
	// Workers=4 forces a real pool even on single-core machines where the
	// GOMAXPROCS default (Workers=0) degenerates to serial; both must match
	// the serial golden output exactly.
	for trial, workers := range []int{4, 0, 4} {
		parallel := fig5aChosen(workers)
		if parallel != serial {
			t.Fatalf("trial %d (workers=%d): parallel run diverged from serial run\nserial:\n%s\nparallel:\n%s",
				trial, workers, serial, parallel)
		}
	}
}
