package bench

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/tpcd"
	"repro/internal/viewdef"
)

// ConcurrentServe measures the query-serving layer under write pressure:
// N reader goroutines issue SQL queries through core.Runtime.Query while
// one writer runs full refresh cycles over the ten-view Figure-5 workload.
// Readers execute against epoch snapshots and never block the writer; with
// Check set, every collected result is verified to equal a recomputation of
// the query at the step-boundary state its epoch names — the
// snapshot-isolation guarantee, exercised rather than assumed.

// ServeConfig parameterizes one concurrent-serving run.
type ServeConfig struct {
	// ScaleFactor is the TPC-D scale of the generated database.
	ScaleFactor float64
	// UpdatePct is the per-cycle update percentage.
	UpdatePct float64
	// Readers is the number of concurrent query goroutines.
	Readers int
	// Cycles is the number of refresh cycles the writer runs.
	Cycles int
	// Workers bounds the refresh scheduler's pool (0 = GOMAXPROCS).
	Workers int
	// Partitions configures partition-parallel operators for both refresh
	// and query execution (<=1: sequential; see core.Runtime.SetPartitions).
	Partitions int
	// CacheBudget is the serving result-cache size in bytes (0 = default).
	CacheBudget float64
	// Queries is the SQL mix; nil selects DefaultServeQueries.
	Queries []string
	// Seed drives data generation and the per-cycle update batches (0
	// selects 11, the historical default). Two runs with equal configs are
	// draw-for-draw identical.
	Seed int64
	// Check retains every published snapshot and verifies each collected
	// result against recomputation at its epoch (capped at maxSamples).
	Check bool
}

// maxSamples bounds the results retained for the consistency check, so a
// long throughput run does not pin unbounded row data.
const maxSamples = 4000

// ServeResult is the outcome of one ConcurrentServe run.
type ServeResult struct {
	Cfg ServeConfig
	// Elapsed is the wall-clock span of the whole run (readers + writer).
	Elapsed time.Duration
	// RefreshTotal is the writer's cumulative Refresh wall-clock.
	RefreshTotal time.Duration
	// Queries is the number of queries answered across all readers.
	Queries int64
	// PerReaderQPS is each reader's answered-queries-per-second.
	PerReaderQPS []float64
	// CacheHits and Refills mirror core.ServeStats.
	CacheHits, Refills int64
	// Epochs is the final snapshot epoch (update steps published).
	Epochs int64
	// CheckedSamples and DistinctStates describe the consistency check:
	// how many results were compared, across how many (query, epoch) pairs.
	CheckedSamples, DistinctStates int
	// Consistent is false if any result diverged from its step-boundary
	// recomputation (only meaningful with Cfg.Check).
	Consistent bool
	// Verified is the post-run Runtime.Verify outcome.
	Verified bool
	// CacheReport is the dynamic result cache's session summary.
	CacheReport string
}

// DefaultServeQueries is the benchmark query mix over the ten-view
// workload: an exact view match, two shared-subexpression queries, a
// cache-friendly aggregate nothing materializes, and a tiny scan.
func DefaultServeQueries() []string {
	return []string{
		`SELECT * FROM lineitem, orders, customer
		 WHERE lineitem.l_orderkey = orders.o_orderkey
		   AND orders.o_custkey = customer.c_custkey AND orders.o_orderdate < 255`,
		`SELECT * FROM lineitem, orders
		 WHERE lineitem.l_orderkey = orders.o_orderkey AND orders.o_orderdate < 255`,
		`SELECT * FROM partsupp, supplier
		 WHERE partsupp.ps_suppkey = supplier.s_suppkey`,
		`SELECT customer.c_nationkey, SUM(lineitem.l_extendedprice) AS revenue, COUNT(*)
		 FROM lineitem, orders, customer
		 WHERE lineitem.l_orderkey = orders.o_orderkey
		   AND orders.o_custkey = customer.c_custkey AND orders.o_orderdate < 255
		 GROUP BY customer.c_nationkey`,
		`SELECT * FROM nation`,
	}
}

// ConcurrentServe runs the readers-versus-writer experiment.
func ConcurrentServe(cfg ServeConfig) ServeResult {
	if cfg.Queries == nil {
		cfg.Queries = DefaultServeQueries()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 11
	}
	rt, plan := buildTenViewRuntime(cfg.ScaleFactor, cfg.UpdatePct, cfg.Seed)
	rt.SetWorkers(cfg.Workers)
	rt.SetPartitions(cfg.Partitions)
	rt.EnableServing(core.ServeOptions{
		CacheBudget:   cfg.CacheBudget,
		RetainHistory: cfg.Check,
	})
	cat := plan.System.Cat

	type sample struct {
		sqlIdx int
		epoch  int64
		rows   *storage.Relation
	}
	var (
		mu      sync.Mutex
		samples []sample
		done    atomic.Bool
		wg      sync.WaitGroup
	)
	answered := make([]int64, cfg.Readers)
	start := time.Now()
	for w := 0; w < cfg.Readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				qi := (i + w) % len(cfg.Queries)
				res, err := rt.Query(cfg.Queries[qi])
				if err != nil {
					panic(fmt.Sprintf("bench: reader query failed: %v", err))
				}
				answered[w]++
				if cfg.Check {
					mu.Lock()
					if len(samples) < maxSamples {
						samples = append(samples, sample{qi, res.Epoch, res.Rows})
					}
					mu.Unlock()
				}
			}
		}(w)
	}

	var refreshTotal time.Duration
	for c := 0; c < cfg.Cycles; c++ {
		tpcd.LogUniformUpdates(cat, rt.Ex.DB, tpcd.UpdatedRelations(), cfg.UpdatePct, cfg.Seed+int64(500+c))
		t0 := time.Now()
		rt.Refresh()
		refreshTotal += time.Since(t0)
	}
	done.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	stats := rt.ServeStats()
	out := ServeResult{
		Cfg: cfg, Elapsed: elapsed, RefreshTotal: refreshTotal,
		Queries: stats.Queries, CacheHits: stats.CacheHits, Refills: stats.Refills,
		Epochs:      rt.Snapshots().Current().Epoch(),
		Consistent:  true,
		Verified:    rt.Verify() == nil,
		CacheReport: rt.CacheReport(),
	}
	for _, n := range answered {
		out.PerReaderQPS = append(out.PerReaderQPS, float64(n)/elapsed.Seconds())
	}

	if cfg.Check {
		cd := dag.New(cat)
		roots := make([]*dag.Equiv, len(cfg.Queries))
		for i, sql := range cfg.Queries {
			roots[i] = cd.InsertExpr(viewdef.MustParse(cat, sql))
		}
		type key struct {
			sqlIdx int
			epoch  int64
		}
		want := make(map[key]*storage.Relation)
		for _, s := range samples {
			k := key{s.sqlIdx, s.epoch}
			w, ok := want[k]
			if !ok {
				snap := rt.Snapshots().At(s.epoch)
				if snap == nil {
					out.Consistent = false
					continue
				}
				w = exec.NewExecutor(snap.Database()).EvalNode(roots[s.sqlIdx])
				want[k] = w
			}
			if !storage.EqualMultiset(s.rows, w) {
				out.Consistent = false
			}
			out.CheckedSamples++
		}
		out.DistinctStates = len(want)
	}
	return out
}

// Format renders the serving result.
func (r ServeResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t-serve — concurrent serving (10 views, SF %g, %g%% updates, %d readers, %d cycles)\n",
		r.Cfg.ScaleFactor, r.Cfg.UpdatePct, r.Cfg.Readers, r.Cfg.Cycles)
	fmt.Fprintf(&b, "  %d queries in %v (refresh writer busy %v, %d epochs published)\n",
		r.Queries, r.Elapsed.Round(time.Millisecond), r.RefreshTotal.Round(time.Millisecond), r.Epochs)
	total := 0.0
	for i, q := range r.PerReaderQPS {
		fmt.Fprintf(&b, "  reader %2d: %8.1f queries/s\n", i, q)
		total += q
	}
	fmt.Fprintf(&b, "  aggregate: %8.1f queries/s; cache hits %d (%.0f%%), refills %d\n",
		total, r.CacheHits, 100*float64(r.CacheHits)/float64(maxInt64(r.Queries, 1)), r.Refills)
	if r.Cfg.Check {
		status := "all consistent with step-boundary recomputation"
		if !r.Consistent {
			status = "INCONSISTENT RESULTS DETECTED"
		}
		fmt.Fprintf(&b, "  snapshot check: %d samples over %d (query, epoch) states — %s\n",
			r.CheckedSamples, r.DistinctStates, status)
	}
	if r.Verified {
		b.WriteString("  all views verified exact after the run\n")
	} else {
		b.WriteString("  VERIFICATION FAILED\n")
	}
	return b.String()
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
