package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/greedy"
	"repro/internal/tpcd"
)

// ParallelResult measures the concurrent refresh scheduler (exec/schedule.go)
// on the ten-view Figure-5 workload executed against generated TPC-D data:
// real refresh wall-clock at several worker-pool bounds, with every run
// verified exact against recomputation. workers=1 is the sequential
// baseline the speedups are relative to.
type ParallelResult struct {
	ScaleFactor float64
	UpdatePct   float64
	Cycles      int
	// Workers[i] was refreshed in Refresh[i] per cycle (averaged).
	Workers  []int
	Refresh  []time.Duration
	Verified bool
}

// buildTenViewRuntime assembles the ten-view workload on generated data.
// Equal seeds give byte-identical databases, plans and update batches, so
// runtimes built by separate calls may be compared row by row.
func buildTenViewRuntime(sf, pct float64, seed int64) (*core.Runtime, *core.MaintenancePlan) {
	cat := tpcd.NewCatalog(sf, true)
	db := tpcd.Generate(cat, sf, seed)
	sys := core.NewSystem(cat, core.Options{})
	for _, v := range tpcd.ViewSet10(cat) {
		if _, err := sys.AddView(v.Name, v.Def); err != nil {
			panic(err)
		}
	}
	u := diff.UniformPercent(cat, tpcd.UpdatedRelations(), pct)
	plan := sys.OptimizeGreedy(u, greedy.DefaultConfig())
	return plan.NewRuntime(db), plan
}

// ParallelRefresh times the ten-view refresh at each worker count.
func ParallelRefresh(sf, pct float64, cycles int, workers []int) ParallelResult {
	out := ParallelResult{
		ScaleFactor: sf, UpdatePct: pct, Cycles: cycles,
		Workers: workers, Verified: true,
	}
	for _, w := range workers {
		rt, plan := buildTenViewRuntime(sf, pct, 11)
		rt.SetWorkers(w)
		cat := plan.System.Cat
		var total time.Duration
		for c := 0; c < cycles; c++ {
			tpcd.LogUniformUpdates(cat, rt.Ex.DB, tpcd.UpdatedRelations(), pct, int64(300+c))
			start := time.Now()
			rt.Refresh()
			total += time.Since(start)
			if err := rt.Verify(); err != nil {
				out.Verified = false
			}
		}
		out.Refresh = append(out.Refresh, total/time.Duration(cycles))
	}
	return out
}

// DefaultParallelWorkers is the sweep of the parallel-refresh experiment:
// sequential, a fixed small pool, and the hardware parallelism (deduplicated,
// so a single-core machine sweeps {1, 4} only once each).
func DefaultParallelWorkers() []int {
	out := []int{1, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		out = append(out, g)
	}
	return out
}

// Format renders the worker sweep with speedups over the workers=1 row.
func (r ParallelResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t-par — parallel refresh wall-clock (10 views, SF %g, %g%% updates, %d cycles)\n",
		r.ScaleFactor, r.UpdatePct, r.Cycles)
	base := time.Duration(0)
	for i, w := range r.Workers {
		if i == 0 {
			base = r.Refresh[i]
		}
		speedup := float64(base) / float64(r.Refresh[i])
		fmt.Fprintf(&b, "  workers %2d: refresh %8v  (%.2fx vs sequential)\n",
			w, r.Refresh[i].Round(time.Millisecond), speedup)
	}
	if r.Verified {
		b.WriteString("  all views verified exact\n")
	} else {
		b.WriteString("  VERIFICATION FAILED\n")
	}
	return b.String()
}
