package bench

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/greedy"
	"repro/internal/ingest"
	"repro/internal/tpcd"
)

// DurableRefresh measures the WAL-backed streaming ingest path end to end:
// update batches stream through the bounded queue, each micro-batch is
// group-committed to the log (optionally fsynced) before its refresh
// publishes epochs, and the run reports sustained op throughput alongside
// the freshness and commit-latency counters. Running it twice — fsync off
// and on — prices durability: with group commit the fsync run should stay
// within a small factor of the non-fsync run (the acceptance bar is 2× at a
// ≥2ms commit window; see EXPERIMENTS.md).

// DurableConfig parameterizes one streaming-ingest run.
type DurableConfig struct {
	// ScaleFactor is the TPC-D scale of the generated database.
	ScaleFactor float64
	// UpdatePct sizes each streamed batch (percent of each updated
	// relation).
	UpdatePct float64
	// StreamBatches is how many LogUniformUpdates-equivalent batches are
	// streamed (each flushed before the next samples its delete set).
	StreamBatches int
	// Fsync makes group commits durable against machine crashes.
	Fsync bool
	// CommitWindow is the group-commit coalescing window (0 = 2ms default).
	CommitWindow time.Duration
	// MaxBatchRows / MaxBatchWait bound the refresh micro-batches; these are
	// the staleness-versus-throughput knobs EXPERIMENTS.md sweeps.
	MaxBatchRows int
	MaxBatchWait time.Duration
	// Seed drives generation and the update streams (0 selects 11).
	Seed int64
	// Dir is the WAL directory; empty selects a throwaway temp directory
	// removed when the run ends.
	Dir string
}

// walDir resolves cfg.Dir, creating a throwaway directory when unset; the
// returned cleanup removes it (a no-op for caller-owned directories).
func (cfg DurableConfig) walDir(prefix string) (string, func()) {
	if cfg.Dir != "" {
		return cfg.Dir, func() {}
	}
	dir, err := os.MkdirTemp("", prefix)
	if err != nil {
		panic(err)
	}
	return dir, func() { os.RemoveAll(dir) }
}

// DurableResult is the outcome of one DurableRefresh run.
type DurableResult struct {
	Cfg DurableConfig
	// Elapsed covers admission of the first op through the final flush.
	Elapsed time.Duration
	// Ops is the number of streamed update operations (rows).
	Ops int
	// OpsPerSec is the sustained ingest throughput (rows/s).
	OpsPerSec float64
	// Batches is the number of WAL group commits (appended batches).
	Batches int64
	// Syncs is the number of fsyncs the group-commit daemon issued.
	Syncs int64
	// Staleness is the closing EWMA of enqueue→publish latency.
	Staleness time.Duration
	// AvgCommitLatency is the mean sync-barrier wait per appended batch.
	AvgCommitLatency time.Duration
	// Epochs is the final published epoch.
	Epochs int64
	// Verified is the post-run Runtime.Verify outcome.
	Verified bool
}

// DurableRefresh runs the streaming-ingest experiment in a throwaway WAL
// directory.
func DurableRefresh(cfg DurableConfig) DurableResult {
	if cfg.Seed == 0 {
		cfg.Seed = 11
	}
	dir, cleanup := cfg.walDir("mvwal-bench-")
	defer cleanup()

	updated := []string{"customer", "orders", "lineitem"}
	cat := tpcd.NewCatalog(cfg.ScaleFactor, true)
	db := tpcd.Generate(cat, cfg.ScaleFactor, cfg.Seed)
	sys := core.NewSystem(cat, core.Options{})
	for _, v := range tpcd.ViewSet5(cat, true) {
		if _, err := sys.AddView(v.Name, v.Def); err != nil {
			panic(err)
		}
	}
	plan := sys.OptimizeGreedy(diff.UniformPercent(cat, updated, cfg.UpdatePct), greedy.DefaultConfig())
	rt, _, err := plan.OpenDurable(db, core.DurableOptions{
		Dir:          dir,
		Fsync:        cfg.Fsync,
		CommitWindow: cfg.CommitWindow,
		SpillEvery:   -1, // measure the log path, not spill cadence
		Queue: ingest.Config{
			MaxBatchRows: cfg.MaxBatchRows,
			MaxBatchWait: cfg.MaxBatchWait,
		},
	})
	if err != nil {
		panic(err)
	}
	if err := rt.StartIngest(); err != nil {
		panic(err)
	}

	ops := 0
	start := time.Now()
	for i := 0; i < cfg.StreamBatches; i++ {
		s := tpcd.NewUpdateStream(cat, rt.Snapshots().Current().Database(),
			updated, cfg.UpdatePct, cfg.Seed+int64(1000+i))
		for {
			op, ok := s.Next()
			if !ok {
				break
			}
			if err := rt.Ingest(op); err != nil {
				panic(err)
			}
			ops++
		}
		if err := rt.FlushIngest(); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start)

	st := rt.DurableStats()
	out := DurableResult{
		Cfg: cfg, Elapsed: elapsed, Ops: ops,
		OpsPerSec:        float64(ops) / elapsed.Seconds(),
		Batches:          st.WAL.Appends,
		Syncs:            st.WAL.Syncs,
		Staleness:        st.Staleness,
		AvgCommitLatency: st.AvgCommitLatency,
		Epochs:           st.Epoch,
		Verified:         rt.Verify() == nil,
	}
	if err := rt.CloseDurable(); err != nil {
		panic(err)
	}
	return out
}

// Format renders the durable-ingest result.
func (r DurableResult) Format() string {
	var b strings.Builder
	mode := "fsync off"
	if r.Cfg.Fsync {
		mode = "fsync on"
	}
	fmt.Fprintf(&b, "t-durable — streaming ingest (5 views, SF %g, %g%% batches ×%d, %s)\n",
		r.Cfg.ScaleFactor, r.Cfg.UpdatePct, r.Cfg.StreamBatches, mode)
	fmt.Fprintf(&b, "  %d ops in %v — %.0f ops/s over %d group commits (%d fsyncs)\n",
		r.Ops, r.Elapsed.Round(time.Millisecond), r.OpsPerSec, r.Batches, r.Syncs)
	fmt.Fprintf(&b, "  staleness EWMA %v, commit latency %v, %d epochs published\n",
		r.Staleness.Round(time.Microsecond), r.AvgCommitLatency.Round(time.Microsecond), r.Epochs)
	if r.Verified {
		fmt.Fprintf(&b, "  verified: maintained views equal recomputation\n")
	} else {
		fmt.Fprintf(&b, "  VERIFICATION FAILED\n")
	}
	return b.String()
}

// DurableServeConfig parameterizes DurableServe: DurableConfig's streaming
// knobs plus concurrent readers.
type DurableServeConfig struct {
	DurableConfig
	// Readers is the number of concurrent query goroutines.
	Readers int
	// CacheBudget is the serving result-cache size in bytes (0 = default).
	CacheBudget float64
}

// DurableServeResult extends the ingest result with serving throughput.
type DurableServeResult struct {
	DurableResult
	// Queries is the number of queries answered across all readers.
	Queries int64
	// QPS is the aggregate serving throughput.
	QPS float64
}

// DurableServe runs readers against epoch snapshots while the WAL-backed
// ingest loop streams updates: the serving experiment with durability on the
// write path. Readers never block on the log — only epoch publication is
// gated by group commit.
func DurableServe(cfg DurableServeConfig) DurableServeResult {
	if cfg.Seed == 0 {
		cfg.Seed = 11
	}
	dir, cleanup := cfg.walDir("mvwal-serve-")
	defer cleanup()

	updated := []string{"customer", "orders", "lineitem"}
	cat := tpcd.NewCatalog(cfg.ScaleFactor, true)
	db := tpcd.Generate(cat, cfg.ScaleFactor, cfg.Seed)
	sys := core.NewSystem(cat, core.Options{})
	for _, v := range tpcd.ViewSet5(cat, true) {
		if _, err := sys.AddView(v.Name, v.Def); err != nil {
			panic(err)
		}
	}
	plan := sys.OptimizeGreedy(diff.UniformPercent(cat, updated, cfg.UpdatePct), greedy.DefaultConfig())
	rt, _, err := plan.OpenDurable(db, core.DurableOptions{
		Dir:          dir,
		Fsync:        cfg.Fsync,
		CommitWindow: cfg.CommitWindow,
		Queue: ingest.Config{
			MaxBatchRows: cfg.MaxBatchRows,
			MaxBatchWait: cfg.MaxBatchWait,
		},
	})
	if err != nil {
		panic(err)
	}
	rt.EnableServing(core.ServeOptions{CacheBudget: cfg.CacheBudget})
	if err := rt.StartIngest(); err != nil {
		panic(err)
	}

	queries := DefaultServeQueries()
	var done atomic.Bool
	var wg sync.WaitGroup
	answered := make([]int64, cfg.Readers)
	for w := 0; w < cfg.Readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				if _, err := rt.Query(queries[(i+w)%len(queries)]); err != nil {
					panic(fmt.Sprintf("bench: durable-serve query failed: %v", err))
				}
				answered[w]++
			}
		}(w)
	}

	ops := 0
	start := time.Now()
	for i := 0; i < cfg.StreamBatches; i++ {
		s := tpcd.NewUpdateStream(cat, rt.Snapshots().Current().Database(),
			updated, cfg.UpdatePct, cfg.Seed+int64(1000+i))
		for {
			op, ok := s.Next()
			if !ok {
				break
			}
			if err := rt.Ingest(op); err != nil {
				panic(err)
			}
			ops++
		}
		if err := rt.FlushIngest(); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start)
	done.Store(true)
	wg.Wait()

	st := rt.DurableStats()
	out := DurableServeResult{DurableResult: DurableResult{
		Cfg: cfg.DurableConfig, Elapsed: elapsed, Ops: ops,
		OpsPerSec:        float64(ops) / elapsed.Seconds(),
		Batches:          st.WAL.Appends,
		Syncs:            st.WAL.Syncs,
		Staleness:        st.Staleness,
		AvgCommitLatency: st.AvgCommitLatency,
		Epochs:           st.Epoch,
		Verified:         rt.Verify() == nil,
	}}
	for _, n := range answered {
		out.Queries += n
	}
	out.QPS = float64(out.Queries) / elapsed.Seconds()
	if err := rt.CloseDurable(); err != nil {
		panic(err)
	}
	return out
}

// Format renders the durable-serving result.
func (r DurableServeResult) Format() string {
	var b strings.Builder
	b.WriteString(r.DurableResult.Format())
	fmt.Fprintf(&b, "  served %d queries — %.0f queries/s concurrent with the durable writer\n",
		r.Queries, r.QPS)
	return b.String()
}
