package bench

// Golden and smoke tests for partition-parallel execution over real
// generated data: the ten-view workload refreshed at several partition
// counts must leave every maintained view byte-identical (the
// partition-count independence contract), the PartitionedRefresh experiment
// must verify and agree across its own sweep, and the serving layer must
// stay consistent with step-boundary recomputation when both the writer and
// the readers run partitioned operators. Run under -race in CI.

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/tpcd"
)

func TestTenViewPartitionedRefreshGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("generates TPC-D data")
	}
	const sf, pct, cycles = 0.002, 5, 2

	refreshAll := func(partitions int) (*storageRelations, error) {
		rt, plan := buildTenViewRuntime(sf, pct, 11)
		rt.SetPartitions(partitions)
		cat := plan.System.Cat
		for c := 0; c < cycles; c++ {
			tpcd.LogUniformUpdates(cat, rt.Ex.DB, tpcd.UpdatedRelations(), pct, int64(300+c))
			rt.Refresh()
		}
		if err := rt.Verify(); err != nil {
			return nil, err
		}
		out := &storageRelations{}
		for _, vp := range plan.Views {
			out.names = append(out.names, vp.View.Name)
			out.rels = append(out.rels, rt.ViewRows(vp.View))
		}
		return out, nil
	}

	seq, err := refreshAll(1)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	for _, partitions := range []int{4, 7} {
		par, err := refreshAll(partitions)
		if err != nil {
			t.Fatalf("partitions=%d run: %v", partitions, err)
		}
		for i, name := range seq.names {
			want, got := seq.rels[i], par.rels[i]
			if !storage.EqualMultiset(want, got) {
				t.Fatalf("partitions=%d: view %s diverged as multiset (%d vs %d rows)",
					partitions, name, want.Len(), got.Len())
			}
			for r, tu := range want.Rows() {
				if !tu.Equal(got.Rows()[r]) {
					t.Fatalf("partitions=%d: view %s not byte-identical at row %d",
						partitions, name, r)
				}
			}
		}
	}
}

func TestPartitionedRefreshExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("generates TPC-D data")
	}
	r := PartitionedRefresh(0.002, 5, 1, []int{1, 2, 4})
	if !r.Verified {
		t.Fatalf("a run diverged from recomputation")
	}
	if !r.Identical {
		t.Fatalf("maintained rows not byte-identical across partition counts")
	}
	if len(r.Refresh) != 3 {
		t.Fatalf("expected 3 timings, got %d", len(r.Refresh))
	}
	if r.Format() == "" {
		t.Fatalf("empty report")
	}
}

func TestPartitionedServeConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("generates TPC-D data and serves concurrently")
	}
	r := ConcurrentServe(ServeConfig{
		ScaleFactor: 0.002, UpdatePct: 4,
		Readers: 3, Cycles: 2, Partitions: 4,
		Check: true,
	})
	if !r.Verified {
		t.Fatalf("maintained views diverged from recomputation")
	}
	if !r.Consistent {
		t.Fatalf("a served answer diverged from its step-boundary recomputation")
	}
	if r.CheckedSamples == 0 {
		t.Fatalf("consistency check sampled nothing")
	}
}
