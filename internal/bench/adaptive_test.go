package bench

import "testing"

// TestAdaptiveServeSmoke is the CI-sized drifting-workload run: adaptation
// must change the materialized set at least once, every sampled result must
// match recomputation at its claimed epoch, and the maintained state must
// verify exact afterwards. Throughput versus static selection is measured
// (and recorded in EXPERIMENTS.md) rather than asserted, since CI machines
// make wall-clock comparisons flaky.
func TestAdaptiveServeSmoke(t *testing.T) {
	r := AdaptiveServe(AdaptiveConfig{
		ScaleFactor: 0.002, UpdatePct: 4,
		Readers: 2, CyclesPerPhase: 2, Seed: 11,
		Adaptive: true, Check: true,
	})
	if !r.Verified {
		t.Fatal("maintained views diverged from recomputation")
	}
	if !r.Consistent {
		t.Fatal("a sampled result diverged from its step-boundary recomputation")
	}
	if r.CheckedSamples == 0 {
		t.Fatal("no samples checked")
	}
	if r.Installs == 0 {
		t.Fatalf("drifting workload should install at least one swap: %d rounds, %d discards",
			r.Rounds, r.Discards)
	}
	if len(r.PhaseQPS) != 2 || r.Queries == 0 {
		t.Fatalf("missing phase throughput: %+v", r.PhaseQPS)
	}
	t.Logf("%s", r.Format())
}

func TestAdaptiveVsStaticSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison run is twice the work")
	}
	ad, st := AdaptiveVsStatic(AdaptiveConfig{
		ScaleFactor: 0.002, UpdatePct: 4,
		Readers: 2, CyclesPerPhase: 2, Seed: 11, Check: true,
	})
	for _, r := range []AdaptiveResult{ad, st} {
		if !r.Verified || !r.Consistent {
			t.Fatalf("run failed verification (adaptive=%v)", r.Cfg.Adaptive)
		}
	}
	if ad.Installs == 0 {
		t.Fatal("adaptive run never swapped")
	}
	if st.Installs != 0 || st.Rounds != 0 {
		t.Fatal("static run must not adapt")
	}
	t.Logf("adaptive %0.1f q/s vs static %0.1f q/s overall", ad.TotalQPS, st.TotalQPS)
}
