package core

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/diff"
	"repro/internal/greedy"
	"repro/internal/tpcd"
)

func TestAddViewValidation(t *testing.T) {
	cat := tpcd.NewCatalog(0.01, true)
	s := NewSystem(cat, Options{})
	if _, err := s.AddView("good", tpcd.ViewJoin4(cat)); err != nil {
		t.Fatalf("valid view rejected: %v", err)
	}
	// Self-join must surface as an error, not a panic.
	bad := algebra.NewJoin(
		algebra.And(algebra.Eq("nation.n_nationkey", "nation.n_regionkey")),
		algebra.NewScan(cat, "nation"), algebra.NewScan(cat, "nation"))
	if _, err := s.AddView("bad", bad); err == nil {
		t.Errorf("self-join should be rejected with an error")
	}
}

func TestNoGreedyChoosesPerViewModes(t *testing.T) {
	cat := tpcd.NewCatalog(0.1, true)
	s := NewSystem(cat, Options{})
	if _, err := s.AddView("j4", tpcd.ViewJoin4(cat)); err != nil {
		t.Fatal(err)
	}
	low := s.OptimizeNoGreedy(diff.UniformPercent(cat, tpcd.UpdatedRelations(), 1))
	high := s.OptimizeNoGreedy(diff.UniformPercent(cat, tpcd.UpdatedRelations(), 80))
	if low.TotalCost <= 0 || high.TotalCost <= 0 {
		t.Fatalf("costs must be positive: %g %g", low.TotalCost, high.TotalCost)
	}
	if high.TotalCost < low.TotalCost {
		t.Errorf("more updates should not cost less: %g vs %g", high.TotalCost, low.TotalCost)
	}
}

func TestGreedyBeatsNoGreedy(t *testing.T) {
	cat := tpcd.NewCatalog(0.1, true)
	s := NewSystem(cat, Options{})
	for _, v := range tpcd.ViewSet5(cat, false) {
		if _, err := s.AddView(v.Name, v.Def); err != nil {
			t.Fatal(err)
		}
	}
	u := diff.UniformPercent(cat, tpcd.UpdatedRelations(), 5)
	ng := s.OptimizeNoGreedy(u)
	g := s.OptimizeGreedy(u, greedy.DefaultConfig())
	if g.TotalCost > ng.TotalCost+1e-9 {
		t.Errorf("greedy must never lose to the baseline: %g vs %g", g.TotalCost, ng.TotalCost)
	}
	if g.Greedy == nil || g.Greedy.InitialCost != ng.TotalCost {
		t.Errorf("greedy initial cost should equal the baseline: %v", g.Greedy)
	}
}

func TestReportMentionsChoices(t *testing.T) {
	cat := tpcd.NewCatalog(0.1, true)
	s := NewSystem(cat, Options{})
	for _, v := range tpcd.ViewSet5(cat, true) {
		if _, err := s.AddView(v.Name, v.Def); err != nil {
			t.Fatal(err)
		}
	}
	p := s.OptimizeGreedy(diff.UniformPercent(cat, tpcd.UpdatedRelations(), 5), greedy.DefaultConfig())
	rep := p.Report()
	if !strings.Contains(rep, "maintenance plan") || !strings.Contains(rep, "greedy:") {
		t.Errorf("report incomplete:\n%s", rep)
	}
	for _, vp := range p.Views {
		if !strings.Contains(rep, vp.View.Name) {
			t.Errorf("report missing view %s", vp.View.Name)
		}
	}
}

func TestEndToEndRuntimeRefreshAndVerify(t *testing.T) {
	const sf = 0.002
	cat := tpcd.NewCatalog(sf, true)
	db := tpcd.Generate(cat, sf, 42)
	s := NewSystem(cat, Options{})
	if _, err := s.AddView("j4", tpcd.ViewJoin4(cat)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddView("a4", tpcd.ViewAgg4(cat)); err != nil {
		t.Fatal(err)
	}
	u := diff.UniformPercent(cat, []string{"orders", "lineitem", "customer"}, 10)
	plan := s.OptimizeGreedy(u, greedy.DefaultConfig())
	rt := plan.NewRuntime(db)

	tpcd.LogUniformUpdates(cat, db, []string{"orders", "lineitem", "customer"}, 10, 7)
	rt.Refresh()
	if err := rt.Verify(); err != nil {
		t.Fatalf("maintained views diverged: %v", err)
	}
	if rt.ViewRows(plan.Views[0].View).Len() == 0 {
		t.Errorf("join view should not be empty after refresh")
	}
}

func TestEndToEndNoGreedyRuntime(t *testing.T) {
	const sf = 0.002
	cat := tpcd.NewCatalog(sf, true)
	db := tpcd.Generate(cat, sf, 43)
	s := NewSystem(cat, Options{})
	for _, v := range tpcd.ViewSet5(cat, true)[:3] {
		if _, err := s.AddView(v.Name, v.Def); err != nil {
			t.Fatal(err)
		}
	}
	u := diff.UniformPercent(cat, []string{"orders", "lineitem"}, 20)
	plan := s.OptimizeNoGreedy(u)
	rt := plan.NewRuntime(db)
	tpcd.LogUniformUpdates(cat, db, []string{"orders", "lineitem"}, 20, 9)
	rt.Refresh()
	if err := rt.Verify(); err != nil {
		t.Fatalf("baseline maintenance diverged: %v", err)
	}
}

func TestExplainRendersAllViews(t *testing.T) {
	cat := tpcd.NewCatalog(0.1, true)
	s := NewSystem(cat, Options{})
	if _, err := s.AddView("j4", tpcd.ViewJoin4(cat)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddView("a4", tpcd.ViewAgg4(cat)); err != nil {
		t.Fatal(err)
	}
	u := diff.UniformPercent(cat, []string{"orders", "lineitem"}, 2)
	plan := s.OptimizeGreedy(u, greedy.DefaultConfig())
	out := plan.Explain()
	for _, name := range []string{"j4", "a4"} {
		if !strings.Contains(out, "view "+name) {
			t.Errorf("explain missing view %s:\n%s", name, out)
		}
	}
	// Either recompute plans (scan/join trees) or incremental differentials
	// must appear.
	if !strings.Contains(out, "scan ") && !strings.Contains(out, "δ") {
		t.Errorf("explain shows no plan structure:\n%s", out)
	}
}

func TestBufferSizeChangesCosts(t *testing.T) {
	cat := tpcd.NewCatalog(0.1, true)
	mkPlan := func(p cost.Params) float64 {
		s := NewSystem(cat, Options{Params: p})
		for _, v := range tpcd.ViewSet5(cat, false) {
			if _, err := s.AddView(v.Name, v.Def); err != nil {
				t.Fatal(err)
			}
		}
		return s.OptimizeNoGreedy(diff.UniformPercent(cat, tpcd.UpdatedRelations(), 10)).TotalCost
	}
	big := mkPlan(cost.Default())
	small := mkPlan(cost.SmallBuffer())
	if small < big {
		t.Errorf("a smaller buffer must not make plans cheaper: %g vs %g", small, big)
	}
}
