package core

// Feedback-driven costing: the execution→optimizer loop. EnableFeedback
// attaches observation hooks at every point the runtime already produces a
// true cardinality next to an optimizer estimate — operator outputs during
// refresh merges and recomputations (exec.Executor.Obs), per-step
// differential results (exec.Maintainer.ObsDelta), post-refresh stored view
// sizes (exec.Maintainer.ObsFull), and served query plans (the ad-hoc
// executors in Query). Observations accumulate in an internal/feedback.Store
// keyed by canonical DAG key, so they survive adaptation swaps and DAG
// rebuilds: the next adaptation round prices candidate plans against
// diff.NewEngineObserved with the store as the correction layer, and the
// greedy re-selection sees corrected costs wherever an observed cardinality
// exists.
//
// Feedback is memory-only and advisory: it never changes query answers, only
// cost estimates, and with it disabled every plan is byte-identical to the
// static path. On a durable (WAL-backed) runtime the hooks still record —
// the store is not persisted, and corrections only influence adaptation,
// which durable runtimes reject anyway (errAdaptDurable) — so the q-error
// telemetry stays available everywhere.

import (
	"repro/internal/dag"
	"repro/internal/feedback"
)

// EnableFeedback switches on observed-cardinality capture and returns the
// store (idempotent: subsequent calls return the same store). Like
// SetPartitions, call it before refreshing or serving concurrently — it
// installs hooks on the shared executor and maintainer. The store itself is
// concurrency-safe; hooks fire from the refresh writer and from reader
// goroutines serving queries.
func (r *Runtime) EnableFeedback() *feedback.Store { return r.enableFeedback(true) }

// EnableFeedbackObserver records observed cardinalities and q-errors without
// ever feeding corrections into re-selection: pure estimation-error
// telemetry, the fair baseline the feedback benchmark measures static
// estimates with. The first Enable call fixes the mode; later calls return
// the existing store unchanged.
func (r *Runtime) EnableFeedbackObserver() *feedback.Store { return r.enableFeedback(false) }

func (r *Runtime) enableFeedback(correct bool) *feedback.Store {
	r.adaptMu.Lock()
	defer r.adaptMu.Unlock()
	if r.fb != nil {
		return r.fb
	}
	r.fbCorrect = correct
	fb := feedback.NewStore()
	epoch := func() uint64 {
		if st := r.Mt.Snap; st != nil {
			return uint64(st.Current().Epoch())
		}
		return 0
	}
	// Serve-side executors (Query's ad-hoc executors) contribute observed
	// cardinalities but not q-errors: the serving front end prices plans with
	// its own static optimizer over the serving DAG, so its estimates are not
	// the ones feedback corrects, and folding them in would dilute the metric
	// that tracks the maintenance cost model's accuracy.
	r.fbObs = func(e *dag.Equiv, est, act float64) {
		fb.ObserveFull(e.Key, act, epoch())
	}
	// The shared executor runs maintenance work — refresh merges, recompute
	// fallbacks, swap materializations. Its operator outputs feed the
	// correction store, but not the q-error window: merge plumbing is
	// dominated by trivially exact estimates (scans, projections, reads of
	// results whose size was just observed) that would bury the estimates
	// the metric is about — the differential and final-cardinality
	// predictions recorded below.
	r.Ex.Obs = r.fbObs
	r.Mt.ObsFull = func(e *dag.Equiv, est, act float64) {
		fb.ObserveFull(e.Key, act, epoch())
		fb.RecordQ(est, act)
	}
	r.Mt.ObsDelta = func(e *dag.Equiv, table string, insert bool, est, act float64) {
		fb.ObserveDelta(e.Key, table, insert, act, epoch())
		fb.RecordQ(est, act)
	}
	r.fb = fb
	return fb
}

// Feedback returns the feedback store, or nil when EnableFeedback has not
// been called.
func (r *Runtime) Feedback() *feedback.Store {
	r.adaptMu.Lock()
	defer r.adaptMu.Unlock()
	return r.fb
}

// FeedbackStats returns a snapshot of the feedback counters (zero value when
// feedback is disabled), in the style of DurableStats/ServeStats.
func (r *Runtime) FeedbackStats() feedback.Stats {
	fb := r.Feedback()
	if fb == nil {
		return feedback.Stats{}
	}
	return fb.Stats()
}
