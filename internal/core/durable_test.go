package core

import (
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/dag"
	"repro/internal/diff"
	"repro/internal/greedy"
	"repro/internal/ingest"
	"repro/internal/storage"
	"repro/internal/tpcd"
	"repro/internal/wal"
)

// buildDurablePlan rebuilds the five-view plan from first inputs — the same
// calls a recovering process makes, exercising the "plan is reconstructed
// deterministically" half of the recovery contract.
func buildDurablePlan(t testing.TB, sf, pct float64) (*MaintenancePlan, *storage.Database, *catalog.Catalog) {
	t.Helper()
	cat := tpcd.NewCatalog(sf, true)
	db := tpcd.Generate(cat, sf, 7)
	sys := NewSystem(cat, Options{})
	for _, v := range tpcd.ViewSet5(cat, true) {
		if _, err := sys.AddView(v.Name, v.Def); err != nil {
			t.Fatal(err)
		}
	}
	u := diff.UniformPercent(cat, updatedRels, pct)
	return sys.OptimizeGreedy(u, greedy.DefaultConfig()), db, cat
}

// driveStream feeds whole LogUniformUpdates-equivalent batches through the
// ingest queue, one seed per batch, flushing between seeds so each stream's
// delete candidates (sampled from the snapshot it was built against) are
// still present when applied.
func driveStream(t testing.TB, rt *Runtime, cat *catalog.Catalog, pct float64, seeds []int64) int {
	t.Helper()
	total := 0
	for _, seed := range seeds {
		s := tpcd.NewUpdateStream(cat, rt.Snapshots().Current().Database(), updatedRels, pct, seed)
		for {
			op, ok := s.Next()
			if !ok {
				break
			}
			if err := rt.Ingest(op); err != nil {
				t.Fatal(err)
			}
			total++
		}
		if err := rt.FlushIngest(); err != nil {
			t.Fatal(err)
		}
	}
	return total
}

// sameState asserts b reproduces a: base relations and non-aggregate
// maintained results row-for-row identical, aggregates multiset-equal (their
// row order is map-iteration order — see the determinism contract).
func sameState(t *testing.T, stage string, a, b *Runtime) {
	t.Helper()
	for _, name := range a.Ex.DB.Names() {
		ra, rb := a.Ex.DB.MustRelation(name), b.Ex.DB.MustRelation(name)
		if ra.Len() != rb.Len() {
			t.Fatalf("%s: base %s: %d rows, want %d", stage, name, rb.Len(), ra.Len())
		}
		for i, row := range ra.Rows() {
			if !reflect.DeepEqual(rb.Rows()[i], row) {
				t.Fatalf("%s: base %s row %d differs", stage, name, i)
			}
		}
	}
	if len(a.Ex.Mat) != len(b.Ex.Mat) {
		t.Fatalf("%s: %d materializations, want %d", stage, len(b.Ex.Mat), len(a.Ex.Mat))
	}
	for id, ma := range a.Ex.Mat {
		mb, ok := b.Ex.Mat[id]
		if !ok {
			t.Fatalf("%s: e%d not materialized after recovery", stage, id)
		}
		e := a.Plan.System.Dag.Equivs[id]
		if e.Ops[0].Kind == dag.OpAggregate {
			if !storage.EqualMultiset(ma, mb) {
				t.Fatalf("%s: aggregate e%d not multiset-equal", stage, id)
			}
			continue
		}
		if ma.Len() != mb.Len() {
			t.Fatalf("%s: e%d: %d rows, want %d", stage, id, mb.Len(), ma.Len())
		}
		for i, row := range ma.Rows() {
			if !reflect.DeepEqual(mb.Rows()[i], row) {
				t.Fatalf("%s: e%d row %d differs (order is part of the contract)", stage, id, i)
			}
		}
	}
}

// Fresh boot → stream three batches → verify against recomputation; clean
// close → reopen recovers with zero replay at the same epoch and identical
// state; a third open with the manifest rewound to the boot spill replays
// every batch through the refresh path and must land in the same state —
// replay and live application commute.
func TestDurableIngestRecoverReplay(t *testing.T) {
	dir := t.TempDir()
	const sf, pct = 0.002, 5
	open := func() (*Runtime, *RecoveryInfo) {
		plan, db, _ := buildDurablePlan(t, sf, pct)
		rt, info, err := plan.OpenDurable(db, DurableOptions{
			Dir:             dir,
			SpillEvery:      -1, // only boot/close spills; keep every batch replayable
			KeepAllSegments: true,
			Queue:           ingest.Config{Capacity: 512, MaxBatchRows: 64, MaxBatchWait: time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt, info
	}

	rtA, info := open()
	if info.Recovered {
		t.Fatal("fresh directory reported recovered")
	}
	_, _, cat := buildDurablePlan(t, sf, pct)
	if err := rtA.StartIngest(); err != nil {
		t.Fatal(err)
	}
	n := driveStream(t, rtA, cat, pct, []int64{101, 102, 103})
	if n == 0 {
		t.Fatal("stream produced no ops")
	}
	st := rtA.DurableStats()
	if st.LastBatch == 0 || st.Epoch == 0 || st.WAL.Appends == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.Epoch != st.LastBatch*int64(rtA.Mt.En.U.N()) {
		t.Fatalf("epoch %d after %d batches, want %d per batch",
			st.Epoch, st.LastBatch, rtA.Mt.En.U.N())
	}
	if st.Staleness <= 0 {
		t.Fatalf("staleness EWMA not tracked: %v", st.Staleness)
	}
	if err := rtA.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := rtA.CloseDurable(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the close spill makes recovery replay-free.
	rtB, info := open()
	if !info.Recovered || info.ReplayedBatches != 0 {
		t.Fatalf("clean reopen: %+v, want recovered with 0 replayed", info)
	}
	if info.Epoch != st.Epoch {
		t.Fatalf("recovered epoch %d, want %d", info.Epoch, st.Epoch)
	}
	sameState(t, "clean reopen", rtA, rtB)
	if err := rtB.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := rtB.CloseDurable(); err != nil {
		t.Fatal(err)
	}

	// Rewind the manifest to the boot spill (batch 0): the next open must
	// replay the full batch history and converge to the same state.
	if err := wal.WriteManifest(dir, &wal.Manifest{
		Snapshot: wal.SpillName(0), SnapshotBatch: 0, SnapshotEpoch: 0, KeepFromSegment: 0,
	}); err != nil {
		t.Fatal(err)
	}
	rtC, info := open()
	if !info.Recovered || int64(info.ReplayedBatches) != st.LastBatch {
		t.Fatalf("rewound reopen: %+v, want %d replayed", info, st.LastBatch)
	}
	sameState(t, "full replay", rtA, rtC)
	if err := rtC.Verify(); err != nil {
		t.Fatal(err)
	}
	// Recovered runtimes serve queries on their recovered epoch sequence.
	rtC.EnableServing(ServeOptions{})
	res, err := rtC.Query(serveQueries[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != st.Epoch {
		t.Fatalf("query epoch %d, want %d", res.Epoch, st.Epoch)
	}

	// Recover-then-continue: a recovered runtime must treat its replayed
	// batches as history, not as progress against newly admitted ops
	// (regression: replay primed appliedOps, so FlushIngest returned before
	// live ops were applied and Verify raced the ingest loop's Refresh).
	if err := rtC.StartIngest(); err != nil {
		t.Fatal(err)
	}
	preBatch := rtC.DurableStats().LastBatch
	if n := driveStream(t, rtC, cat, pct, []int64{104}); n == 0 {
		t.Fatal("post-recovery stream produced no ops")
	}
	if post := rtC.DurableStats().LastBatch; post <= preBatch {
		t.Fatalf("flush returned with no batch applied after recovery (batch %d → %d)", preBatch, post)
	}
	if err := rtC.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := rtC.CloseDurable(); err != nil {
		t.Fatal(err)
	}
}

// Periodic spills fire, prune the log behind them, and the pruned directory
// still recovers to the same state.
func TestDurablePeriodicSpillAndPrune(t *testing.T) {
	dir := t.TempDir()
	const sf, pct = 0.002, 4
	plan, db, cat := buildDurablePlan(t, sf, pct)
	rt, _, err := plan.OpenDurable(db, DurableOptions{
		Dir:        dir,
		SpillEvery: 2,
		Queue:      ingest.Config{Capacity: 512, MaxBatchRows: 32, MaxBatchWait: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.StartIngest(); err != nil {
		t.Fatal(err)
	}
	driveStream(t, rt, cat, pct, []int64{7, 8, 9, 10})
	if err := rt.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	if st := rt.DurableStats(); st.Spills < 2 {
		t.Fatalf("spills = %d, want periodic spills to have fired", st.Spills)
	}

	plan2, db2, _ := buildDurablePlan(t, sf, pct)
	rt2, info, err := plan2.OpenDurable(db2, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Recovered {
		t.Fatal("pruned directory did not recover")
	}
	sameState(t, "after prune", rt, rt2)
	if err := rt2.CloseDurable(); err != nil {
		t.Fatal(err)
	}
}

// Backpressure: with a slowed refresh loop, Block producers never see the
// queue exceed its capacity and lose nothing; Shed producers get ErrShed and
// the drop is counted.
func TestDurableBackpressure(t *testing.T) {
	run := func(policy ingest.Policy) (*Runtime, int, int) {
		plan, db, cat := buildDurablePlan(t, 0.002, 5)
		rt, _, err := plan.OpenDurable(db, DurableOptions{
			Dir:          t.TempDir(),
			SpillEvery:   -1,
			RefreshDelay: 2 * time.Millisecond,
			Queue: ingest.Config{
				Capacity: 16, MaxBatchRows: 8, MaxBatchWait: time.Millisecond,
				Policy: policy,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.StartIngest(); err != nil {
			t.Fatal(err)
		}
		var maxDepth int
		var mu sync.Mutex
		stop := make(chan struct{})
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
					d := rt.DurableStats().Queue.Depth
					mu.Lock()
					if d > maxDepth {
						maxDepth = d
					}
					mu.Unlock()
				}
			}
		}()
		s := tpcd.NewUpdateStream(cat, rt.Snapshots().Current().Database(), updatedRels, 5, 201)
		sent, shed := 0, 0
		for {
			op, ok := s.Next()
			if !ok {
				break
			}
			switch err := rt.Ingest(op); err {
			case nil:
				sent++
			case ErrShed:
				shed++
			default:
				t.Fatal(err)
			}
		}
		if err := rt.FlushIngest(); err != nil {
			t.Fatal(err)
		}
		close(stop)
		mu.Lock()
		defer mu.Unlock()
		if maxDepth > 16 {
			t.Fatalf("queue depth reached %d, bound is 16", maxDepth)
		}
		return rt, sent, shed
	}

	rt, sent, shed := run(ingest.Block)
	if shed != 0 {
		t.Fatalf("Block policy shed %d ops", shed)
	}
	if st := rt.DurableStats(); st.Queue.Shed != 0 || st.Queue.Enqueued != int64(sent) {
		t.Fatalf("Block stats %+v, want %d enqueued, 0 shed", st.Queue, sent)
	}
	if err := rt.CloseDurable(); err != nil {
		t.Fatal(err)
	}

	rt, _, shed = run(ingest.Shed)
	if shed == 0 {
		t.Fatal("Shed policy never shed despite slowed refresh")
	}
	if st := rt.DurableStats(); st.Queue.Shed != int64(shed) {
		t.Fatalf("shed counter %d, want %d", st.Queue.Shed, shed)
	}
	if err := rt.CloseDurable(); err != nil {
		t.Fatal(err)
	}
}

// A failed durability-maintenance step (here: every spill and rotation
// failing after the WAL directory vanishes) must stop ingestion promptly:
// the sticky error closes the queue, the loop exits, and Ingest, FlushIngest
// and StopIngest all surface the failure — the engine never keeps accepting
// ops it can no longer make durable.
func TestDurableSpillFailureStopsIngest(t *testing.T) {
	dir := t.TempDir()
	plan, db, cat := buildDurablePlan(t, 0.002, 5)
	rt, _, err := plan.OpenDurable(db, DurableOptions{
		Dir:        dir,
		SpillEvery: 1, // spill (and rotate) after every batch
		Queue:      ingest.Config{Capacity: 512, MaxBatchRows: 16, MaxBatchWait: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.StartIngest(); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}

	// Stream inserts only (fresh keys never conflict with the loop applying
	// concurrently) until the spill failure propagates to admission.
	var ingErr error
	seed := int64(301)
	deadline := time.Now().Add(30 * time.Second)
	for ingErr == nil && time.Now().Before(deadline) {
		s := tpcd.NewUpdateStream(cat, rt.Snapshots().Current().Database(), updatedRels, 5, seed)
		seed++
		for {
			op, ok := s.Next()
			if !ok {
				break
			}
			if op.Del {
				continue
			}
			if ingErr = rt.Ingest(op); ingErr != nil {
				break
			}
		}
	}
	if ingErr == nil {
		t.Fatal("Ingest kept accepting ops after durability maintenance failed")
	}
	if err := rt.FlushIngest(); err == nil {
		t.Error("FlushIngest must surface the durability error")
	}
	if err := rt.StopIngest(); err == nil {
		t.Error("StopIngest must surface the durability error")
	}
	if err := rt.CloseDurable(); err == nil {
		t.Error("CloseDurable must surface the durability error")
	}
}

// Admission control: unknown relations, relations outside the update spec,
// and arity mismatches are rejected at Ingest, before anything is queued.
func TestDurableIngestAdmission(t *testing.T) {
	plan, db, cat := buildDurablePlan(t, 0.002, 5)
	rt, _, err := plan.OpenDurable(db, DurableOptions{Dir: t.TempDir(), SpillEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.CloseDurable()
	if err := rt.Ingest(ingest.Op{Rel: "nope"}); err == nil {
		t.Error("unknown relation admitted")
	}
	// supplier exists but is not in the update spec (customer/orders/lineitem).
	if err := rt.Ingest(ingest.Op{Rel: "supplier"}); err == nil {
		t.Error("relation outside the update spec admitted")
	}
	s := tpcd.NewUpdateStream(cat, db, []string{"orders"}, 5, 1)
	op, _ := s.Next()
	op.Tuple = op.Tuple[:len(op.Tuple)-1]
	if err := rt.Ingest(op); err == nil {
		t.Error("arity mismatch admitted")
	}
}

// API misuse surfaces as errors: durable entry points on a non-durable
// runtime, double StartIngest, and ingestion after shutdown.
func TestDurableAPIMisuse(t *testing.T) {
	plain := buildServingRuntime(t, 0.002, 5)
	if err := plain.Ingest(ingest.Op{Rel: "orders"}); err == nil {
		t.Error("Ingest on a non-durable runtime must fail")
	}
	if err := plain.StartIngest(); err == nil {
		t.Error("StartIngest on a non-durable runtime must fail")
	}
	if err := plain.FlushIngest(); err == nil {
		t.Error("FlushIngest on a non-durable runtime must fail")
	}
	if err := plain.StopIngest(); err != nil {
		t.Errorf("StopIngest on a non-durable runtime is a no-op, got %v", err)
	}
	if st := plain.DurableStats(); st.LastBatch != 0 || st.WAL.Appends != 0 {
		t.Errorf("non-durable runtime has durable stats: %+v", st)
	}

	plan, db, cat := buildDurablePlan(t, 0.002, 5)
	rt, _, err := plan.OpenDurable(db, DurableOptions{Dir: t.TempDir(), SpillEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.StartIngest(); err != nil {
		t.Fatal(err)
	}
	if err := rt.StartIngest(); err == nil {
		t.Error("second StartIngest must fail")
	}
	// Adaptive re-selection would make the WAL directory unrecoverable (the
	// adapted plan cannot be reconstructed at boot), so it is rejected up
	// front on durable runtimes.
	if err := rt.EnableAdapt(AdaptOptions{}); err == nil {
		t.Error("EnableAdapt on a durable runtime must fail")
	}
	if _, err := rt.Adapt(); err == nil {
		t.Error("Adapt on a durable runtime must fail")
	}
	if err := rt.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	s := tpcd.NewUpdateStream(cat, rt.Snapshots().Current().Database(), []string{"orders"}, 5, 3)
	op, _ := s.Next()
	if err := rt.Ingest(op); err == nil {
		t.Error("Ingest after CloseDurable must fail")
	}
	if err := rt.FlushIngest(); err != nil {
		t.Errorf("FlushIngest after clean close: %v", err)
	}
}
