package core

import (
	"testing"

	"repro/internal/diff"
	"repro/internal/feedback"
	"repro/internal/greedy"
	"repro/internal/tpcd"
)

// TestFeedbackOffByteIdentical: with feedback off (no Corr, or an empty
// store that has observed nothing), optimization is byte-identical to the
// seed behavior — the correction layer must be invisible until it holds
// observations.
func TestFeedbackOffByteIdentical(t *testing.T) {
	build := func(corr diff.Corrections) (string, string) {
		cat := tpcd.NewCatalog(0.01, true)
		s := NewSystem(cat, Options{})
		s.Corr = corr
		for _, v := range tpcd.ViewSet5(cat, true) {
			if _, err := s.AddView(v.Name, v.Def); err != nil {
				t.Fatal(err)
			}
		}
		u := diff.UniformPercent(cat, tpcd.UpdatedRelations(), 5)
		return s.OptimizeNoGreedy(u).Report(),
			s.OptimizeGreedy(u, greedy.DefaultConfig()).Report()
	}
	ngNil, gNil := build(nil)
	ngEmpty, gEmpty := build(feedback.NewStore())
	if ngNil != ngEmpty {
		t.Errorf("empty store changed the baseline plan:\n--- nil ---\n%s--- empty ---\n%s", ngNil, ngEmpty)
	}
	if gNil != gEmpty {
		t.Errorf("empty store changed the greedy plan:\n--- nil ---\n%s--- empty ---\n%s", gNil, gEmpty)
	}
}

// feedbackPass generates a database, optimizes the five-view workload with
// the given correction layer, runs skewed refresh cycles with an observer
// store attached, verifies exactness, and returns the runtime's store (its
// q-error window measures how wrong this pass's plan estimates were; its
// observations can correct a later pass).
func feedbackPass(t *testing.T, seed int64, corr diff.Corrections) *feedback.Store {
	t.Helper()
	const (
		sf      = 0.002
		pct     = 8.0
		hotFrac = 0.02
		cycles  = 3
	)
	cat := tpcd.NewCatalog(sf, true)
	db := tpcd.Generate(cat, sf, seed)
	s := NewSystem(cat, Options{})
	s.Corr = corr
	for _, v := range tpcd.ViewSet5(cat, true) {
		if _, err := s.AddView(v.Name, v.Def); err != nil {
			t.Fatal(err)
		}
	}
	updated := tpcd.UpdatedRelations()
	plan := s.OptimizeNoGreedy(diff.UniformPercent(cat, updated, pct))
	rt := plan.NewRuntime(db)
	rt.EnableFeedbackObserver()
	for c := 0; c < cycles; c++ {
		tpcd.LogSkewedUpdates(cat, db, updated, pct, hotFrac, seed+100+int64(c))
		rt.Refresh()
	}
	if err := rt.Verify(); err != nil {
		t.Fatalf("seed %d: maintained views diverged: %v", seed, err)
	}
	return rt.Feedback()
}

// TestFeedbackMonotoneOnReplay: replaying an identical skewed workload with
// the first pass's observed cardinalities correcting the optimizer must
// never increase the median estimation error — the feedback property the
// tentpole rests on. Observations are keyed by canonical DAG key, so a store
// recorded against one System corrects a freshly built equivalent System.
func TestFeedbackMonotoneOnReplay(t *testing.T) {
	for _, seed := range []int64{3, 11, 29} {
		first := feedbackPass(t, seed, nil)
		st1 := first.Stats()
		if st1.QCount == 0 || st1.Observations == 0 {
			t.Fatalf("seed %d: first pass observed nothing (%+v)", seed, st1)
		}
		second := feedbackPass(t, seed, first)
		st2 := second.Stats()
		if st2.QCount == 0 {
			t.Fatalf("seed %d: corrected pass recorded no estimates", seed)
		}
		if st2.QMedian > st1.QMedian+1e-9 {
			t.Errorf("seed %d: corrections raised median q-error: %.4f -> %.4f",
				seed, st1.QMedian, st2.QMedian)
		}
	}
}
