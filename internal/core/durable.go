package core

// Durable epochs over the WAL. OpenDurable boots a Runtime whose refresh
// cycle is write-ahead logged: every ingest batch is made durable (group-
// committed, optionally fsynced) before it is applied and its epochs
// published, so a crash at any instant loses nothing a reader could have
// observed. Recovery loads the last snapshot spill, replays the durable
// batch suffix through the ordinary differential refresh path (the same
// Maintainer.ApplyLoggedDelta + Refresh the live loop uses — replay and live
// application commute by construction), and re-publishes epochs until the
// log is exhausted. StartIngest then turns refresh into a continuous loop
// over a bounded ingest.Queue: micro-batches form by size/time, producers
// feel backpressure per policy, and staleness/queue/commit-latency counters
// are exposed through DurableStats.
//
// Limitation: recovery reconstructs the maintenance plan from the same
// inputs (views, update spec, optimizer config), relying on the optimizer
// being deterministic. Adaptive re-selection (EnableAdapt/Adapt) changes the
// materialized set at runtime and is not durable; it is rejected up front on
// a durable runtime (errAdaptDurable), and a directory a foreign build wrote
// with a different materialized set still trips spill-mismatch detection
// during recovery.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/ingest"
	"repro/internal/storage"
	"repro/internal/wal"
)

// ErrShed reports that the ingest queue was full under the Shed policy and
// the op was dropped.
var ErrShed = errors.New("core: ingest queue full, op shed")

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Dir is the WAL directory (segments, spills, manifest).
	Dir string
	// Fsync makes batches durable against machine crashes, not just process
	// crashes. Group commit amortizes the fsyncs over the commit window.
	Fsync bool
	// CommitWindow is the group-commit coalescing window (default 2ms).
	CommitWindow time.Duration
	// SegmentBytes is the segment rotation threshold (default 4 MB).
	SegmentBytes int64
	// SyncBytes short-circuits the commit window (default 1 MB).
	SyncBytes int
	// SpillEvery is the number of batches between snapshot spills (default
	// 64; negative disables periodic spills).
	SpillEvery int
	// KeepAllSegments disables log pruning after spills, keeping the full
	// history replayable from batch 1 (used by the crash tests to verify
	// recovery against a from-scratch replay).
	KeepAllSegments bool
	// Queue configures the bounded ingest queue (capacity, micro-batch
	// size/time bounds, Block vs Shed).
	Queue ingest.Config
	// RefreshDelay is a test/bench hook: an artificial delay added before
	// each live batch's refresh, to simulate refresh falling behind and
	// exercise backpressure.
	RefreshDelay time.Duration
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.SpillEvery == 0 {
		o.SpillEvery = 64
	}
	return o
}

// RecoveryInfo reports what booting from the WAL directory found.
type RecoveryInfo struct {
	// Recovered is true when a manifest existed: the state was rebuilt from
	// spill + replay rather than from the caller's database.
	Recovered bool
	// SpillBatch/SpillEpoch identify the loaded spill (0/0 on fresh boot).
	SpillBatch int64
	SpillEpoch int64
	// ReplayedBatches is how many durable batches were replayed past the
	// spill.
	ReplayedBatches int
	// Epoch is the published epoch after boot.
	Epoch int64
}

// DurableStats is the durability/ingestion counter set exposed through the
// Runtime.
type DurableStats struct {
	// LastBatch is the sequence number of the last applied batch.
	LastBatch int64
	// Epoch is the currently published snapshot epoch.
	Epoch int64
	// Staleness is an exponentially weighted moving average of op
	// enqueue→epoch-publish latency (how far the freshest published epoch
	// lags admission).
	Staleness time.Duration
	// AvgCommitLatency is the mean time an append blocked on the group-
	// commit sync barrier.
	AvgCommitLatency time.Duration
	// Spills counts completed snapshot spills.
	Spills int64
	// Queue is the ingest queue's counter set (depth, shed, …).
	Queue ingest.Stats
	// WAL is the log's counter set (appends, syncs, bytes, rotations).
	WAL wal.Stats
}

// durable is the Runtime's durability state: the log, the queue, and the
// continuous-ingest loop bookkeeping.
type durable struct {
	opts DurableOptions
	log  *wal.Log
	q    *ingest.Queue

	// arity caches relation schema arities for the producer-side admission
	// check (producers must not read the live database, which the writer
	// swaps under COW).
	arity map[string]int

	// applied is writer-goroutine state; appliedSeq/appliedOps mirror it for
	// other goroutines.
	applied    int64
	appliedSeq atomic.Int64
	appliedOps atomic.Int64
	lastSpill  int64

	stalenessNanos atomic.Int64
	spills         atomic.Int64
	spilling       atomic.Bool
	spillWG        sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond
	err      error
	looping  bool
	started  atomic.Bool
	loopDone chan struct{}
}

// setErr records the first durability error, wakes flushers, and closes the
// queue: once durability maintenance has failed (append, apply, spill —
// including a background spill), admission must stop promptly rather than
// letting producers keep feeding a loop that can no longer make their ops
// durable.
func (d *durable) setErr(err error) {
	d.mu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	d.q.Close()
}

// loadErr returns the sticky durability error, if any.
func (d *durable) loadErr() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// OpenDurable boots a WAL-backed runtime for this plan. On a fresh directory
// the caller's database is the initial state: it is spilled (with the
// manifest) before the function returns, so from the first appended batch
// onward the directory is self-contained. On a directory with a manifest the
// caller's database contents are REPLACED by the recovered state — the
// caller supplies it for its schemas; the plan must have been rebuilt from
// the same view definitions and optimizer configuration as the original run.
func (p *MaintenancePlan) OpenDurable(db *storage.Database, opts DurableOptions) (*Runtime, *RecoveryInfo, error) {
	opts = opts.withDefaults()
	log, rec, err := wal.Open(opts.Dir, wal.Options{
		Fsync:        opts.Fsync,
		CommitWindow: opts.CommitWindow,
		SyncBytes:    opts.SyncBytes,
		SegmentBytes: opts.SegmentBytes,
		KeepAll:      opts.KeepAllSegments,
	})
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*Runtime, *RecoveryInfo, error) {
		log.Close()
		return nil, nil, err
	}

	info := &RecoveryInfo{}
	var sp *wal.Spill
	if rec.Manifest != nil {
		sp, err = wal.ReadSpill(opts.Dir, rec.Manifest.Snapshot)
		if err != nil {
			return fail(err)
		}
		info.Recovered = true
		info.SpillBatch, info.SpillEpoch = sp.Batch, sp.Epoch
		if err := installSpillRels(db, sp); err != nil {
			return fail(err)
		}
	}

	ex := exec.NewExecutor(db)
	ex.Par = p.Eval.Par
	ex.Sizer = p.Engine.FinalRows
	if err := p.materializeForBoot(ex, sp); err != nil {
		return fail(err)
	}
	rt := &Runtime{Plan: p, Ex: ex, Mt: exec.NewMaintainer(ex, p.Engine, p.Eval)}

	st := storage.NewSnapshotStore()
	if sp != nil {
		st.StartAt(sp.Epoch)
	}
	st.PublishState(ex.DB, ex.Mat)
	rt.Mt.Snap = st

	d := &durable{opts: opts, log: log, q: ingest.NewQueue(opts.Queue), loopDone: make(chan struct{})}
	d.cond = sync.NewCond(&d.mu)
	d.arity = make(map[string]int)
	for _, name := range db.Names() {
		d.arity[name] = len(db.MustRelation(name).Schema())
	}
	if sp != nil {
		d.applied = sp.Batch
		d.appliedSeq.Store(sp.Batch)
	}
	rt.dur = d

	for _, b := range rec.Batches {
		if b.Seq != d.applied+1 {
			return fail(fmt.Errorf("core: replay gap: have batch %d after %d", b.Seq, d.applied))
		}
		if err := d.applyBatch(rt, b); err != nil {
			return fail(fmt.Errorf("core: replaying batch %d: %w", b.Seq, err))
		}
	}
	info.ReplayedBatches = len(rec.Batches)
	info.Epoch = st.Current().Epoch()
	d.lastSpill = d.applied
	// Boot replay went through applyBatch, which counted replayed rows into
	// appliedOps. FlushIngest compares appliedOps against the queue's
	// Enqueued counter, which starts at 0 — reset so only live-admitted ops
	// count, else a recovered runtime's flush returns before newly admitted
	// ops are applied.
	d.appliedOps.Store(0)

	// Anchor the directory: fresh boots get their initial spill+manifest (so
	// a manifest-less directory always means "no recoverable state"), and
	// recovered boots that replayed anything re-anchor to shorten the next
	// recovery.
	if sp == nil || len(rec.Batches) > 0 {
		if err := d.spillSync(rt); err != nil {
			return fail(err)
		}
	}
	return rt, info, nil
}

// installSpillRels replaces the database's base relation contents with the
// spilled rows. Every relation of the snapshot must exist with matching
// arity — the schemas come from the caller's catalog, the rows from disk.
func installSpillRels(db *storage.Database, sp *wal.Spill) error {
	for name, rows := range sp.Rels {
		r := db.Relation(name)
		if r == nil {
			return fmt.Errorf("core: spill has relation %q unknown to the catalog", name)
		}
		arity := len(r.Schema())
		for _, t := range rows {
			if len(t) != arity {
				return fmt.Errorf("core: spill relation %q: tuple arity %d, schema arity %d",
					name, len(t), arity)
			}
		}
		r.ReplaceRows(rows)
	}
	return nil
}

// materializeForBoot fills the executor's materialization map. Fresh boot
// (sp nil) computes everything from the database, exactly like NewRuntime.
// Recovery loads non-aggregate derived results verbatim from the spill —
// preserving their maintained row order, so subsequent differential merges
// reproduce the byte-identical sequence a never-crashed run produces — and
// rebuilds only aggregates (whose merge state is not spilled; their row
// order is map-iteration order, a multiset contract, see ARCHITECTURE.md)
// and base-table aliases from the recovered bases.
func (p *MaintenancePlan) materializeForBoot(ex *exec.Executor, sp *wal.Spill) error {
	ids := make([]int, 0, len(p.Eval.MS.Fulls.Full))
	for id := range p.Eval.MS.Fulls.Full {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		e := p.System.Dag.Equivs[id]
		if sp != nil && !e.IsTable && e.Ops[0].Kind != dag.OpAggregate {
			rows, ok := sp.Mats[id]
			if !ok {
				return fmt.Errorf("core: spill is missing materialized e%d; was the plan rebuilt with different views or optimizer config?", id)
			}
			arity := len(e.Schema)
			for _, t := range rows {
				if len(t) != arity {
					return fmt.Errorf("core: spill mat e%d: tuple arity %d, schema arity %d", id, len(t), arity)
				}
			}
			rel := storage.NewRelation(e.Schema)
			rel.ReplaceRows(rows)
			ex.Mat[id] = rel
			continue
		}
		ex.MaterializeNode(e)
	}
	if sp != nil {
		for id := range sp.Mats {
			if !p.Eval.MS.Fulls.Full[id] {
				return fmt.Errorf("core: spill has materialized e%d the plan does not; was the plan rebuilt with different views or optimizer config?", id)
			}
		}
	}
	return nil
}

// applyBatch stages one durable batch's deltas and runs a refresh cycle.
// Used identically by WAL replay and by the live ingest loop — that shared
// path is the recovery invariant.
func (d *durable) applyBatch(r *Runtime, b *wal.Batch) error {
	ops := 0
	for i := range b.Deltas {
		dr := &b.Deltas[i]
		if err := r.Mt.ApplyLoggedDelta(dr.Rel, dr.Del, dr.Rows); err != nil {
			return err
		}
		ops += len(dr.Rows)
	}
	r.Refresh()
	d.applied = b.Seq
	d.appliedSeq.Store(b.Seq)
	d.appliedOps.Add(int64(ops))
	d.mu.Lock()
	d.cond.Broadcast()
	d.mu.Unlock()
	return nil
}

// Ingest admits one streamed op: admission control (the relation must be in
// the update spec with matching tuple arity), then the bounded queue's
// policy (block or shed). Safe from any goroutine once StartIngest has run.
func (r *Runtime) Ingest(op ingest.Op) error {
	d := r.dur
	if d == nil {
		return errors.New("core: runtime has no WAL (use OpenDurable)")
	}
	if !r.Mt.En.U.Has(op.Rel) {
		return fmt.Errorf("core: relation %q not admitted: not in the update spec", op.Rel)
	}
	if want, ok := d.arity[op.Rel]; !ok || len(op.Tuple) != want {
		return fmt.Errorf("core: relation %q: tuple arity %d, schema arity %d", op.Rel, len(op.Tuple), want)
	}
	if !d.q.Enqueue(op) {
		if d.q.Config().Policy == ingest.Shed && !d.q.Closed() {
			return ErrShed
		}
		if err := d.loadErr(); err != nil {
			return fmt.Errorf("core: ingest stopped: %w", err)
		}
		return errors.New("core: ingest queue closed")
	}
	return nil
}

// loopExited reports whether the ingest loop has returned (no further
// applies are coming).
func (d *durable) loopExited() bool {
	select {
	case <-d.loopDone:
		return true
	default:
		return false
	}
}

// StartIngest launches the continuous refresh loop: drain micro-batches from
// the queue, append each to the WAL (group-committed), apply it through the
// refresh path, publish its epochs, and periodically spill. Call once; the
// loop owns all refresh activity from here on (do not call Refresh
// concurrently).
func (r *Runtime) StartIngest() error {
	d := r.dur
	if d == nil {
		return errors.New("core: runtime has no WAL (use OpenDurable)")
	}
	if !d.started.CompareAndSwap(false, true) {
		return errors.New("core: ingest already started")
	}
	go d.loop(r)
	return nil
}

// loop is the continuous ingest writer.
func (d *durable) loop(r *Runtime) {
	// LIFO: loopDone closes first, then the broadcast wakes any flusher so
	// it re-checks loopExited.
	defer func() {
		d.mu.Lock()
		d.cond.Broadcast()
		d.mu.Unlock()
	}()
	defer close(d.loopDone)
	for {
		// A background spill failure lands via setErr while this loop is
		// elsewhere; stop before admitting, logging, or applying anything
		// further. setErr already closed the queue, so producers are
		// unblocked and new admission fails.
		if d.loadErr() != nil {
			return
		}
		ops, oldest, ok := d.q.NextBatch()
		if !ok {
			return
		}
		b := &wal.Batch{
			Seq:    d.applied + 1,
			Epoch:  r.Mt.Snap.Current().Epoch() + int64(r.Mt.En.U.N()),
			Deltas: groupOps(ops),
		}
		// Durability barrier: the batch must be on disk (fsynced, under the
		// sync policy) before any of its effects become observable, so no
		// published epoch can ever be lost to a crash.
		if err := d.log.AppendBatch(b); err != nil {
			d.setErr(err)
			return
		}
		if d.opts.RefreshDelay > 0 {
			time.Sleep(d.opts.RefreshDelay)
		}
		if err := d.applyBatch(r, b); err != nil {
			d.setErr(err)
			return
		}
		lat := time.Since(oldest).Nanoseconds()
		if old := d.stalenessNanos.Load(); old == 0 {
			d.stalenessNanos.Store(lat)
		} else {
			d.stalenessNanos.Store(old - old/8 + lat/8)
		}
		if d.opts.SpillEvery > 0 && d.applied-d.lastSpill >= int64(d.opts.SpillEvery) {
			d.spillAsync(r)
		}
	}
}

// groupOps folds an op sequence into per-(relation, op-type) delta records,
// first-appearance order, preserving tuple order within each record. The
// grouping is deterministic, so replaying the logged records reproduces the
// live application exactly.
func groupOps(ops []ingest.Op) []wal.DeltaRec {
	var deltas []wal.DeltaRec
	idx := make(map[string]int)
	for _, op := range ops {
		k := op.Rel
		if op.Del {
			k += "/-"
		} else {
			k += "/+"
		}
		j, ok := idx[k]
		if !ok {
			j = len(deltas)
			deltas = append(deltas, wal.DeltaRec{Rel: op.Rel, Del: op.Del})
			idx[k] = j
		}
		deltas[j].Rows = append(deltas[j].Rows, op.Tuple)
	}
	return deltas
}

// spillAsync rotates the log at the current batch boundary and spills the
// current snapshot in the background (the snapshot is immutable, so
// serialization blocks nothing). At most one spill runs at a time.
func (d *durable) spillAsync(r *Runtime) {
	if !d.spilling.CompareAndSwap(false, true) {
		return
	}
	d.lastSpill = d.applied
	segSeq, err := d.log.Rotate()
	if err != nil {
		d.spilling.Store(false)
		d.setErr(err)
		return
	}
	sp := d.assembleSpill(r)
	d.spillWG.Add(1)
	go func() {
		defer d.spillWG.Done()
		defer d.spilling.Store(false)
		if err := d.writeSpill(sp, segSeq); err != nil {
			d.setErr(err)
		}
	}()
}

// spillSync is the synchronous form (boot anchoring, clean shutdown).
func (d *durable) spillSync(r *Runtime) error {
	segSeq, err := d.log.Rotate()
	if err != nil {
		return err
	}
	d.lastSpill = d.applied
	return d.writeSpill(d.assembleSpill(r), segSeq)
}

// assembleSpill captures the current snapshot's bases and non-aggregate
// derived results (see materializeForBoot for why aggregates are excluded).
func (d *durable) assembleSpill(r *Runtime) *wal.Spill {
	snap := r.Mt.Snap.Current()
	sp := &wal.Spill{
		Batch: d.applied,
		Epoch: snap.Epoch(),
		Rels:  make(map[string][]algebra.Tuple),
		Mats:  make(map[int][]algebra.Tuple),
	}
	for _, name := range snap.Database().Names() {
		sp.Rels[name] = snap.Relation(name).Rows()
	}
	for id, rel := range snap.Mats() {
		e := r.Plan.System.Dag.Equivs[id]
		if e.IsTable || e.Ops[0].Kind == dag.OpAggregate {
			continue
		}
		sp.Mats[id] = rel.Rows()
	}
	return sp
}

// writeSpill serializes the spill, swings the manifest to it, and prunes
// segments and spills behind the new horizon.
func (d *durable) writeSpill(sp *wal.Spill, keepFromSeg int64) error {
	name, err := wal.WriteSpill(d.opts.Dir, sp)
	if err != nil {
		return err
	}
	m := &wal.Manifest{
		Snapshot:        name,
		SnapshotBatch:   sp.Batch,
		SnapshotEpoch:   sp.Epoch,
		KeepFromSegment: keepFromSeg,
	}
	if err := wal.WriteManifest(d.opts.Dir, m); err != nil {
		return err
	}
	if !d.opts.KeepAllSegments {
		wal.Prune(d.opts.Dir, m)
	}
	d.spills.Add(1)
	return nil
}

// FlushIngest blocks until every op admitted so far has been applied and its
// epochs published (quiesce the producers first — concurrent admission keeps
// moving the goal). Returns the loop's error if ingestion failed.
func (r *Runtime) FlushIngest() error {
	d := r.dur
	if d == nil {
		return errors.New("core: runtime has no WAL (use OpenDurable)")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.err == nil && d.appliedOps.Load() < d.q.Stats().Enqueued && !d.loopExited() {
		d.cond.Wait()
	}
	return d.err
}

// StopIngest closes the queue, drains what is already admitted, and stops
// the loop.
func (r *Runtime) StopIngest() error {
	d := r.dur
	if d == nil {
		return nil
	}
	d.q.Close()
	if d.started.Load() {
		<-d.loopDone
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// CloseDurable stops ingestion, takes a final spill (so the next boot
// replays nothing), waits out background spills, and closes the log.
func (r *Runtime) CloseDurable() error {
	d := r.dur
	if d == nil {
		return nil
	}
	err := r.StopIngest()
	d.spillWG.Wait()
	if err == nil && d.applied > d.lastSpill {
		err = d.spillSync(r)
	}
	if cerr := d.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// DurableStats returns the durability/ingestion counters (zero-valued on a
// non-durable runtime).
func (r *Runtime) DurableStats() DurableStats {
	d := r.dur
	if d == nil {
		return DurableStats{}
	}
	ws := d.log.Stats()
	st := DurableStats{
		LastBatch: d.appliedSeq.Load(),
		Staleness: time.Duration(d.stalenessNanos.Load()),
		Spills:    d.spills.Load(),
		Queue:     d.q.Stats(),
		WAL:       ws,
	}
	if snap := r.Mt.Snap.Current(); snap != nil {
		st.Epoch = snap.Epoch()
	}
	if ws.Appends > 0 {
		st.AvgCommitLatency = time.Duration(ws.WaitNanos / ws.Appends)
	}
	return st
}
