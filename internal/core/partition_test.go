package core

// Serving-level partition-count independence: the same workload built,
// refreshed and queried at partitions ∈ {1, 4, 7} must answer every
// non-aggregate query byte-identically (aggregates: multiset-equal; their
// group order is map order even sequentially). Run under -race in CI, so
// the partitioned executors under Query are exercised for races too.

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/tpcd"
)

func TestServePartitionCountIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("generates TPC-D data")
	}
	// Index 1 is aggregate (multiset check); the rest are order-deterministic.
	aggregateIdx := map[int]bool{1: true, 2: true}

	answers := func(partitions int) []*storage.Relation {
		rt := buildServingRuntime(t, 0.002, 5)
		rt.SetPartitions(partitions)
		rt.EnableServing(ServeOptions{})
		cat := rt.Plan.System.Cat
		tpcd.LogUniformUpdates(cat, rt.Ex.DB, updatedRels, 5, 99)
		rt.Refresh()
		if err := rt.Verify(); err != nil {
			t.Fatalf("partitions=%d: %v", partitions, err)
		}
		var out []*storage.Relation
		for _, sql := range serveQueries {
			res, err := rt.Query(sql)
			if err != nil {
				t.Fatalf("partitions=%d: %v", partitions, err)
			}
			out = append(out, res.Rows)
		}
		return out
	}

	base := answers(1)
	for _, p := range []int{4, 7} {
		got := answers(p)
		for i := range base {
			if !storage.EqualMultiset(base[i], got[i]) {
				t.Fatalf("partitions=%d: query %d diverged as multiset (%d vs %d rows)",
					p, i, base[i].Len(), got[i].Len())
			}
			if aggregateIdx[i] {
				continue
			}
			for r, tu := range base[i].Rows() {
				if !tu.Equal(got[i].Rows()[r]) {
					t.Fatalf("partitions=%d: query %d not byte-identical at row %d", p, i, r)
				}
			}
		}
	}
}
