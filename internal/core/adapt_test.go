package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/storage"
	"repro/internal/tpcd"
	"repro/internal/viewdef"
)

// hotDriftQuery is expensive to answer cold and shares nothing with the
// ViewSet5 maintenance plan: the shape adaptation should start materializing
// once it dominates the observed workload.
const hotDriftQuery = `
	SELECT supplier.s_nationkey, SUM(partsupp.ps_supplycost) AS cost, COUNT(*)
	FROM partsupp, supplier
	WHERE partsupp.ps_suppkey = supplier.s_suppkey
	GROUP BY supplier.s_nationkey`

// cycle logs one update batch and refreshes (closing a tracker cycle).
func cycle(rt *Runtime, seed int64) {
	tpcd.LogUniformUpdates(rt.Plan.System.Cat, rt.Ex.DB, updatedRels, 4, seed)
	rt.Refresh()
}

func TestAdaptSwapsToObservedWorkload(t *testing.T) {
	rt := buildServingRuntime(t, 0.002, 4)
	rt.EnableServing(ServeOptions{RetainHistory: true})
	cat := rt.Plan.System.Cat

	// Drift: the off-view aggregate dominates traffic for one cycle.
	for i := 0; i < 50; i++ {
		if _, err := rt.Query(hotDriftQuery); err != nil {
			t.Fatal(err)
		}
	}
	cycle(rt, 900)

	res, err := rt.Adapt()
	if err != nil {
		t.Fatal(err)
	}
	if res.NewCost > res.KeepCost+1e-9 {
		t.Errorf("re-selection must not exceed keeping the prior set: %g > %g",
			res.NewCost, res.KeepCost)
	}
	if !res.Changed || len(res.Incoming) == 0 {
		t.Fatalf("a dominating uncovered query should change the materialized set: %+v", res)
	}
	if rt.AdaptStats().Installs != 0 {
		t.Fatalf("swap must not install before an epoch boundary")
	}

	// The next refresh installs the swap at its entry boundary.
	preEpoch := rt.Snapshots().Current().Epoch()
	cycle(rt, 901)
	st := rt.AdaptStats()
	if st.Installs != 1 {
		t.Fatalf("swap should install at the next boundary: %+v", st)
	}
	if st.LastInstallEpoch != preEpoch+1 {
		t.Errorf("install must publish the next epoch: %d, want %d", st.LastInstallEpoch, preEpoch+1)
	}

	// Post-swap: the hot query answers from a maintained result and stays
	// exact across further refreshes.
	qr, err := rt.Query(hotDriftQuery)
	if err != nil {
		t.Fatal(err)
	}
	if qr.Plan.String() != fmt.Sprintf("reuse(e%d)", qr.Plan.E.ID) {
		t.Errorf("adapted plan should reuse the new materialization, got %s", qr.Plan)
	}
	cd := dag.New(cat)
	root := cd.InsertExpr(viewdef.MustParse(cat, hotDriftQuery))
	want := recomputeAt(cd, root, rt.Snapshots().At(qr.Epoch))
	if !storage.EqualMultiset(qr.Rows, want) {
		t.Errorf("adapted answer diverges from recomputation at its epoch")
	}
	cycle(rt, 902)
	if err := rt.Verify(); err != nil {
		t.Fatalf("maintained state diverged after swap: %v", err)
	}
	qr2, err := rt.Query(hotDriftQuery)
	if err != nil {
		t.Fatal(err)
	}
	want2 := recomputeAt(cd, root, rt.Snapshots().At(qr2.Epoch))
	if !storage.EqualMultiset(qr2.Rows, want2) {
		t.Errorf("maintained hot result diverges after a post-swap refresh")
	}
	if !storage.EqualMultiset(qr.Rows, want) {
		t.Errorf("pre-refresh result rows mutated by the refresh (COW violation)")
	}
}

func TestAdaptWithoutDriftReachesFixpoint(t *testing.T) {
	rt := buildServingRuntime(t, 0.002, 4)
	rt.EnableServing(ServeOptions{})
	// No drift: statistics never change. The first round may still arm a
	// justified swap — warm-started re-evaluation sees benefits that grew
	// after prior picks (e.g. an index on a result greedy materialized),
	// which the cold run's lazy heap assumes away (§6.2 monotonicity). Each
	// such round must clear the hysteresis gate and lower cost; within a few
	// rounds re-selection must reach a fixpoint and stop swapping.
	prevCost := -1.0
	for round := 0; round < 4; round++ {
		res, err := rt.Adapt()
		if err != nil {
			t.Fatal(err)
		}
		if res.NewCost > res.KeepCost+1e-9 {
			t.Fatalf("round %d: re-selection must not cost more than keeping: %g > %g",
				round, res.NewCost, res.KeepCost)
		}
		if prevCost >= 0 && res.NewCost > prevCost+1e-9 {
			t.Fatalf("round %d: cost rose across rounds: %g > %g", round, res.NewCost, prevCost)
		}
		prevCost = res.NewCost
		if !res.Changed {
			if round == 0 {
				t.Log("first round already stable")
			}
			return // fixpoint
		}
		if res.KeepCost-res.NewCost < 0.01*res.KeepCost {
			t.Fatalf("round %d: swap armed below the hysteresis threshold: keep %g new %g",
				round, res.KeepCost, res.NewCost)
		}
		if !rt.InstallPending() {
			t.Fatalf("round %d: armed swap failed to install at an idle boundary", round)
		}
	}
	t.Fatal("no-drift adaptation failed to reach a fixpoint in 4 rounds")
}

func TestAdaptRequiresServing(t *testing.T) {
	rt := buildServingRuntime(t, 0.002, 4)
	if _, err := rt.Adapt(); err == nil {
		t.Fatal("Adapt before EnableServing should error")
	}
}

func TestStaleSwapIsDiscarded(t *testing.T) {
	rt := buildServingRuntime(t, 0.002, 4)
	rt.EnableServing(ServeOptions{})
	for i := 0; i < 30; i++ {
		if _, err := rt.Query(hotDriftQuery); err != nil {
			t.Fatal(err)
		}
	}
	cycle(rt, 910)
	res, err := rt.Adapt()
	if err != nil || !res.Changed {
		t.Fatalf("setup needs an armed swap (err %v, changed %v)", err, res != nil && res.Changed)
	}
	// Advance the epoch past the build before the boundary install: the
	// armed swap is stale and must be discarded, not installed.
	tpcd.LogUniformUpdates(rt.Plan.System.Cat, rt.Ex.DB, updatedRels, 4, 911)
	rt.Mt.Refresh() // bypasses InstallPending: steps published after the build
	cycle(rt, 912)
	st := rt.AdaptStats()
	if st.Installs != 0 || st.Discards == 0 {
		t.Errorf("stale swap must be discarded, not installed: %+v", st)
	}
	if err := rt.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestEnableAdaptBackgroundRounds(t *testing.T) {
	rt := buildServingRuntime(t, 0.002, 4)
	rt.EnableServing(ServeOptions{})
	if err := rt.EnableAdapt(AdaptOptions{EveryCycles: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := rt.Query(hotDriftQuery); err != nil {
			t.Fatal(err)
		}
	}
	// Drive cycles until the background round lands and the following
	// boundary installs it; bounded by a deadline rather than a fixed count
	// because the build runs asynchronously.
	deadline := time.Now().Add(30 * time.Second)
	seed := int64(920)
	for rt.AdaptStats().Installs == 0 && time.Now().Before(deadline) {
		cycle(rt, seed)
		seed++
		time.Sleep(10 * time.Millisecond)
	}
	if st := rt.AdaptStats(); st.Installs == 0 {
		t.Fatalf("background adaptation never installed: %+v", st)
	}
	if err := rt.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Query(hotDriftQuery); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveConcurrentServing is the adaptation stress test (run under
// -race in CI): readers issue a drifting query mix while the writer
// interleaves refresh cycles with adaptation rounds and swap installs.
// Every sampled result must equal recomputation at the step boundary its
// epoch names, and results retired by a swap must never appear in any
// snapshot published at or after the install — i.e. swapped-out views are
// unreachable once retired, while already-planned queries finish on their
// old epochs untouched.
func TestAdaptiveConcurrentServing(t *testing.T) {
	rt := buildServingRuntime(t, 0.002, 4)
	rt.EnableServing(ServeOptions{RetainHistory: true})
	cat := rt.Plan.System.Cat

	mixA := serveQueries
	mixB := []string{hotDriftQuery,
		`SELECT * FROM partsupp, supplier
		 WHERE partsupp.ps_suppkey = supplier.s_suppkey`,
		serveQueries[0]}
	queries := append(append([]string{}, mixA...), mixB...)

	type sample struct {
		sqlIdx int
		epoch  int64
		rows   *storage.Relation
	}
	const readers = 4
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []sample
		phase   = make(chan int, 1)
		done    = make(chan struct{})
	)
	currentMix := func(p int) []int {
		if p == 0 {
			return []int{0, 1, 2, 3}
		}
		return []int{len(mixA), len(mixA) + 1, len(mixA) + 2}
	}
	var phaseMu sync.Mutex
	activePhase := 0
	_ = phase
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				phaseMu.Lock()
				p := activePhase
				phaseMu.Unlock()
				mix := currentMix(p)
				qi := mix[(i+w)%len(mix)]
				res, err := rt.Query(queries[qi])
				if err != nil {
					t.Errorf("reader %d: %v", w, err)
					return
				}
				mu.Lock()
				if len(samples) < 4000 {
					samples = append(samples, sample{qi, res.Epoch, res.Rows})
				}
				mu.Unlock()
			}
		}(w)
	}

	// Writer: two cycles of mix A, adapt, two cycles of mix B (installing
	// the swap at the first boundary), adapt again, one more cycle.
	for c := 0; c < 2; c++ {
		cycle(rt, int64(930+c))
	}
	if _, err := rt.Adapt(); err != nil {
		t.Error(err)
	}
	phaseMu.Lock()
	activePhase = 1
	phaseMu.Unlock()
	for c := 0; c < 2; c++ {
		cycle(rt, int64(940+c))
	}
	if _, err := rt.Adapt(); err != nil {
		t.Error(err)
	}
	cycle(rt, 950)
	close(done)
	wg.Wait()

	if err := rt.Verify(); err != nil {
		t.Fatal(err)
	}
	st := rt.AdaptStats()
	if st.Installs == 0 {
		t.Fatalf("drifted traffic should have installed at least one swap: %+v", st)
	}

	// Consistency: every sample equals recomputation at its claimed epoch.
	cd := dag.New(cat)
	roots := make([]*dag.Equiv, len(queries))
	for i, sql := range queries {
		roots[i] = cd.InsertExpr(viewdef.MustParse(cat, sql))
	}
	type key struct {
		sqlIdx int
		epoch  int64
	}
	want := make(map[key]*storage.Relation)
	checked := 0
	for _, s := range samples {
		k := key{s.sqlIdx, s.epoch}
		w, ok := want[k]
		if !ok {
			snap := rt.Snapshots().At(s.epoch)
			if snap == nil {
				t.Fatalf("result claims epoch %d, never published", s.epoch)
			}
			w = recomputeAt(cd, roots[s.sqlIdx], snap)
			want[k] = w
		}
		if !storage.EqualMultiset(s.rows, w) {
			t.Fatalf("torn read: query %d at epoch %d has %d rows, recomputation %d",
				s.sqlIdx, s.epoch, s.rows.Len(), w.Len())
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no samples collected")
	}

	// Retirement: a relation dropped by a swap must be absent from every
	// snapshot at or after the install epoch (old snapshots may keep it —
	// that is exactly how in-flight readers stay consistent).
	rt.adaptMu.Lock()
	retirements := append([]retirement(nil), rt.retired...)
	rt.adaptMu.Unlock()
	if len(retirements) == 0 {
		t.Fatal("installs happened but nothing was recorded as retired")
	}
	hist := rt.Snapshots().History()
	for _, ret := range retirements {
		dropped := make(map[*storage.Relation]bool, len(ret.rels))
		for _, rel := range ret.rels {
			dropped[rel] = true
		}
		for _, snap := range hist {
			if snap.Epoch() < ret.epoch {
				continue
			}
			for id, rel := range snap.Mats() {
				if dropped[rel] {
					t.Fatalf("retired relation (keys %v, install epoch %d) still published as e%d at epoch %d",
						ret.keys, ret.epoch, id, snap.Epoch())
				}
			}
		}
	}
	t.Logf("checked %d samples over %d states; %d installs, retired sets %d",
		checked, len(want), st.Installs, len(retirements))
}
