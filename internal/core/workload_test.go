package core

import (
	"strings"
	"testing"

	"repro/internal/diff"
	"repro/internal/greedy"
	"repro/internal/tpcd"
	"repro/internal/viewdef"
)

func TestOptimizeWorkloadQueriesBenefit(t *testing.T) {
	cat := tpcd.NewCatalog(0.1, true)
	s := NewSystem(cat, Options{})
	// One maintained view plus a hot ad-hoc query sharing its backbone.
	if _, err := s.AddView("j4", tpcd.ViewJoin4(cat)); err != nil {
		t.Fatal(err)
	}
	q := viewdef.MustParse(cat, `
		SELECT customer.c_nationkey, COUNT(*)
		FROM orders, customer
		WHERE orders.o_custkey = customer.c_custkey AND orders.o_orderdate < 255
		GROUP BY customer.c_nationkey`)
	if _, err := s.AddQuery("hot", q, 100); err != nil {
		t.Fatal(err)
	}
	u := diff.UniformPercent(cat, tpcd.UpdatedRelations(), 1)
	plan := s.OptimizeWorkload(u, greedy.DefaultConfig())
	if len(plan.Queries) != 1 {
		t.Fatalf("query plan missing")
	}
	if plan.Greedy.FinalCost > plan.Greedy.InitialCost {
		t.Errorf("workload tuning must not hurt")
	}
	// The hot query times 100 dominates: selection should cut the workload
	// substantially, not marginally.
	if plan.Greedy.FinalCost > plan.Greedy.InitialCost*0.8 {
		t.Errorf("expected ≥20%% workload improvement: %g → %g",
			plan.Greedy.InitialCost, plan.Greedy.FinalCost)
	}
	if !strings.Contains(plan.Report(), "hot") {
		t.Errorf("report should mention the query")
	}
}

func TestAddQueryValidation(t *testing.T) {
	cat := tpcd.NewCatalog(0.01, true)
	s := NewSystem(cat, Options{})
	q := viewdef.MustParse(cat, `SELECT * FROM orders`)
	got, err := s.AddQuery("q", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Weight != 1 {
		t.Errorf("non-positive weight should default to 1, got %g", got.Weight)
	}
	s.prepare()
	if _, err := s.AddQuery("late", q, 1); err == nil {
		t.Errorf("queries after prepare should be rejected")
	}
}

func TestWorkloadSharesMaterializationAcrossViewAndQuery(t *testing.T) {
	cat := tpcd.NewCatalog(0.1, true)
	s := NewSystem(cat, Options{})
	for _, v := range tpcd.ViewSet5(cat, true)[:2] {
		if _, err := s.AddView(v.Name, v.Def); err != nil {
			t.Fatal(err)
		}
	}
	q := viewdef.MustParse(cat, `
		SELECT orders.o_orderdate, SUM(lineitem.l_extendedprice) AS rev
		FROM lineitem, orders
		WHERE lineitem.l_orderkey = orders.o_orderkey AND orders.o_orderdate < 255
		GROUP BY orders.o_orderdate`)
	if _, err := s.AddQuery("daily_rev", q, 20); err != nil {
		t.Fatal(err)
	}
	u := diff.UniformPercent(cat, tpcd.UpdatedRelations(), 5)
	with := s.OptimizeWorkload(u, greedy.DefaultConfig())
	if with.Queries[0].Cost <= 0 {
		t.Errorf("query cost should be positive")
	}
}
