package core

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/ingest"
	"repro/internal/tpcd"
	"repro/internal/wal"
)

// tpcdStream starts one update batch over the current snapshot (immutable, so
// the stream's delete candidates stay valid while refreshes run).
func tpcdStream(cat *catalog.Catalog, rt *Runtime, seed int64) *tpcd.UpdateStream {
	return tpcd.NewUpdateStream(cat, rt.Snapshots().Current().Database(), updatedRels, crashPct, seed)
}

const (
	crashSF  = 0.002
	crashPct = 5
)

// TestCrashRecoveryChild is the process the crash test SIGKILLs. It boots a
// durable runtime in MVCRASH_DIR and streams update batches forever —
// committing, refreshing and periodically spilling — until the parent kills
// it at a random instant. It is a no-op under a normal `go test` run.
func TestCrashRecoveryChild(t *testing.T) {
	dir := os.Getenv("MVCRASH_DIR")
	if dir == "" {
		t.Skip("crash child: launched by TestCrashRecovery")
	}
	plan, db, cat := buildDurablePlan(t, crashSF, crashPct)
	rt, _, err := plan.OpenDurable(db, DurableOptions{
		Dir:             dir,
		Fsync:           true,
		CommitWindow:    200 * time.Microsecond,
		SpillEvery:      3,
		KeepAllSegments: true, // keep batch 1..N replayable for the parent's reference run
		Queue:           ingest.Config{Capacity: 256, MaxBatchRows: 32, MaxBatchWait: 500 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.StartIngest(); err != nil {
		t.Fatal(err)
	}
	fmt.Println("MVCRASH_READY")
	for seed := int64(1); ; seed++ {
		s := tpcdStream(cat, rt, seed)
		for {
			op, ok := s.Next()
			if !ok {
				break
			}
			if err := rt.Ingest(op); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.FlushIngest(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashRecovery SIGKILLs a streaming child at randomized points — during
// boot, mid-commit, mid-refresh, mid-spill — then recovers the directory and
// checks the recovery contract: Verify passes, and the recovered state equals
// a from-scratch replay of every durable batch (the torn suffix contributes
// nothing; the durable prefix contributes everything). CRASH_ITERS raises the
// default 3 kill points (CI runs 10).
func TestCrashRecovery(t *testing.T) {
	if os.Getenv("MVCRASH_DIR") != "" {
		t.Skip("child process")
	}
	if testing.Short() {
		t.Skip("re-execs and kills child processes")
	}
	iters := 3
	if v := os.Getenv("CRASH_ITERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("CRASH_ITERS=%q: %v", v, err)
		}
		iters = n
	}
	rng := rand.New(rand.NewSource(42))

	for i := 0; i < iters; i++ {
		dir := t.TempDir()
		cmd := exec.Command(os.Args[0], "-test.run=TestCrashRecoveryChild$")
		cmd.Env = append(os.Environ(), "MVCRASH_DIR="+dir)
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		ready := make(chan struct{})
		go func() {
			sc := bufio.NewScanner(out)
			for sc.Scan() {
				if sc.Text() == "MVCRASH_READY" {
					close(ready)
				}
			}
		}()

		// 1 in 4 kills lands during boot (initial materialization or the
		// anchoring spill); the rest land in the streaming loop.
		if rng.Intn(4) == 0 {
			time.Sleep(time.Duration(rng.Intn(400)) * time.Millisecond)
		} else {
			select {
			case <-ready:
			case <-time.After(30 * time.Second):
				t.Fatal("child never became ready")
			}
			time.Sleep(time.Duration(rng.Intn(300)+2) * time.Millisecond)
		}
		if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
			t.Fatal(err)
		}
		cmd.Wait()

		verifyCrashRecovery(t, i, dir)
	}
}

// verifyCrashRecovery recovers dir and compares against a never-crashed
// reference built by replaying every durable batch onto the same initial
// state.
func verifyCrashRecovery(t *testing.T, iter int, dir string) {
	t.Helper()
	plan, db, _ := buildDurablePlan(t, crashSF, crashPct)
	rt, info, err := plan.OpenDurable(db, DurableOptions{
		Dir: dir, SpillEvery: -1, KeepAllSegments: true,
	})
	if err != nil {
		t.Fatalf("iter %d: recovery failed: %v", iter, err)
	}
	defer rt.CloseDurable()
	if err := rt.Verify(); err != nil {
		t.Fatalf("iter %d: recovered state fails verification: %v", iter, err)
	}

	// The recovery already repaired the torn tail, so a read-only scan sees
	// exactly the durable batch set; kills before the boot anchor completes
	// legitimately leave zero batches (and possibly no manifest at all).
	batches, err := wal.ScanBatches(dir, 0)
	if err != nil {
		t.Fatalf("iter %d: scanning repaired log: %v", iter, err)
	}
	stage := fmt.Sprintf("iter %d (%d durable batches, recovered=%v spill=%d replayed=%d)",
		iter, len(batches), info.Recovered, info.SpillBatch, info.ReplayedBatches)

	plan2, db2, _ := buildDurablePlan(t, crashSF, crashPct)
	ref, _, err := plan2.OpenDurable(db2, DurableOptions{Dir: t.TempDir(), SpillEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.CloseDurable()
	for _, b := range batches {
		if b.Seq != ref.dur.applied+1 {
			t.Fatalf("%s: durable log not contiguous: batch %d after %d", stage, b.Seq, ref.dur.applied)
		}
		if err := ref.dur.applyBatch(ref, b); err != nil {
			t.Fatalf("%s: reference replay of batch %d: %v", stage, b.Seq, err)
		}
	}
	sameState(t, stage, ref, rt)
	want := int64(len(batches)) * int64(rt.Mt.En.U.N())
	if got := rt.Snapshots().Current().Epoch(); got != want {
		t.Fatalf("%s: recovered epoch %d, want %d", stage, got, want)
	}
}
