package core

// Query serving over the maintained views. EnableServing turns a refresh
// Runtime into a read/write system: any number of goroutines call Query
// with SQL text while one writer runs Refresh. Isolation is epoch-based —
// the Maintainer publishes every update step's outcome as an immutable
// storage.Snapshot, and a query executes entirely against the snapshot that
// was current when it was planned, so it observes the state of exactly one
// step boundary, never a torn mix (see ARCHITECTURE.md, "Serving and
// snapshots").
//
// Planning runs over a serving AND-OR DAG: a replica of the system DAG's
// front end (the registered view and query definitions, with the same
// subsumption derivations), so ad-hoc queries unify with the equivalence
// nodes whose results maintenance keeps materialized, and the Volcano
// search answers from stored results and indexes whenever that is cheaper
// than computing from base relations. The replica exists so that query
// planning — which grows the DAG when a new query shape arrives — shares no
// mutable structure with the concurrently-running refresh; the two DAGs are
// correlated by canonical node key (dag.Lookup). Hot query results are
// additionally admitted into a cache.Manager by projected benefit; admitted
// results are materialized lazily per epoch and invalidated whenever a new
// snapshot is published.

import (
	"fmt"
	"sync"

	"repro/internal/algebra"
	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/viewdef"
	"repro/internal/volcano"
	"repro/internal/workload"
)

// ServeOptions configures Runtime.EnableServing.
type ServeOptions struct {
	// CacheBudget is the dynamic result cache size in bytes. 0 selects the
	// default (64 MB); a negative value disables result caching entirely.
	CacheBudget float64
	// RetainHistory makes the snapshot store keep every published snapshot,
	// so tests can compare query results against exact step-boundary states.
	// It pins every relation version ever published; leave it off outside
	// bounded test runs.
	RetainHistory bool
}

// QueryResult is the answer to one served query.
type QueryResult struct {
	// SQL is the query text as submitted.
	SQL string
	// Rows holds the result. It may alias a materialized or cached relation
	// and must not be mutated.
	Rows *storage.Relation
	// Plan is the chosen physical plan (over the serving DAG).
	Plan *volcano.PlanNode
	// Epoch identifies the snapshot the query executed against: the number
	// of refresh update steps that had been published at planning time.
	Epoch int64
	// EstCost is the optimizer's cost estimate for Plan, in cost-model
	// seconds.
	EstCost float64
	// CacheHit reports whether the plan read at least one dynamically
	// cached result (as opposed to plan-time materializations, which are
	// not counted).
	CacheHit bool
}

// ServeStats counts serving activity since EnableServing.
type ServeStats struct {
	// Queries is the number of successfully planned queries.
	Queries int64
	// CacheHits is the number of queries whose plan read at least one
	// dynamically cached result.
	CacheHits int64
	// Refills is the number of cache-entry materializations: an admitted
	// entry's rows are computed on first reuse and again after each refresh
	// step invalidates them.
	Refills int64
}

// maxRootMemo caps the query-text → root memo. When full it is reset
// wholesale rather than evicted: re-memoizing a text is one parse plus a
// DAG walk that unifies with existing nodes, so the reset is cheap and the
// memo cannot grow with distinct query texts. (Distinct query *shapes*
// still grow the serving DAG monotonically — acceptable for bounded
// workloads, the assumption everywhere else in this system.)
const maxRootMemo = 8192

// server is the planning half of the serving layer. Everything behind mu is
// shared mutable state touched only while planning; execution runs outside
// the lock against immutable snapshots. cat and tracker are immutable
// pointers set at construction: planning must not read Runtime fields the
// adaptation swap replaces (Plan in particular), so the server carries its
// own references to everything swap-stable it needs.
type server struct {
	cat     *catalog.Catalog
	tracker *workload.Tracker

	mu  sync.Mutex
	dag *dag.DAG
	mgr *cache.Manager
	// par is the partition-parallel configuration query executors run with
	// (mirrors Runtime.SetPartitions; read under mu at planning time).
	par storage.Par
	// roots memoizes insertion by query text, so repeated queries skip the
	// parse and DAG walk entirely (bounded by maxRootMemo).
	roots map[string]*dag.Equiv
	// toSys maps serving-DAG node IDs to system-DAG node IDs for every
	// result the maintenance plan keeps materialized; snapshot lookups are
	// keyed by system IDs.
	toSys map[int]int
	// rows holds the materialized rows of admitted cache entries, valid for
	// rowsEpoch only.
	rows      map[int]*storage.Relation
	rowsEpoch int64
	stats     ServeStats
}

// EnableServing switches the runtime into snapshot-publishing mode and
// builds the query-serving front end. Call it once, before starting any
// concurrent Refresh; it is idempotent. After it returns, Query may be
// called from any number of goroutines concurrently with one goroutine
// running Refresh.
func (r *Runtime) EnableServing(opts ServeOptions) {
	r.srvMu.Lock()
	defer r.srvMu.Unlock()
	r.enableServingLocked(opts)
}

func (r *Runtime) enableServingLocked(opts ServeOptions) {
	if r.srv != nil {
		return
	}
	budget := opts.CacheBudget
	switch {
	case budget == 0:
		budget = 64 << 20
	case budget < 0:
		budget = 0
	}

	st := r.Mt.Snap
	if st == nil {
		st = storage.NewSnapshotStore()
		st.RetainHistory(opts.RetainHistory)
		st.PublishState(r.Ex.DB, r.Ex.Mat) // epoch 0: the initial materialized state
		r.Mt.Snap = st
	} else {
		// A durable runtime already publishes snapshots (OpenDurable seeded
		// the store with the recovered epoch); serving joins the existing
		// sequence rather than restarting it at 0.
		st.RetainHistory(opts.RetainHistory)
	}

	sd, base, toSys := buildFrontEnd(r.Plan)
	r.tracker = workload.NewTracker(0)
	r.retainRetired = opts.RetainHistory
	r.srv = &server{
		cat:     r.Plan.System.Cat,
		tracker: r.tracker,
		par:     r.Ex.Par,
		dag:     sd,
		mgr:     cache.NewOver(sd, r.Plan.System.Model, budget, base),
		roots:   make(map[string]*dag.Equiv),
		toSys:   toSys,
		rows:    make(map[int]*storage.Relation),
	}
}

// buildFrontEnd derives the serving front end of a maintenance plan: a
// replica serving DAG replaying the system DAG's definitions (and its
// subsumption pass) so every node the plan materialized has a same-key
// counterpart, plus the base materialized set and the serving-ID →
// system-ID correlation for snapshot lookups. Called at EnableServing and
// again at every adaptation swap, so the serving planner always searches
// over exactly the shapes the installed plan knows.
func buildFrontEnd(plan *MaintenancePlan) (sd *dag.DAG, base *volcano.MatSet, toSys map[int]int) {
	sys := plan.System
	sd = dag.New(sys.Cat)
	for _, v := range sys.Views {
		sd.AddQuery(v.Name, v.Def)
	}
	for _, q := range sys.Queries {
		sd.AddQuery(q.Name, q.Def)
	}
	if !sys.disableSubsumption {
		sd.ApplySubsumption()
	}

	base = volcano.NewMatSet()
	toSys = make(map[int]int)
	for sysID := range plan.Eval.MS.Fulls.Full {
		if se := sd.Lookup(sys.Dag.Equivs[sysID].Key); se != nil {
			base.Full[se.ID] = true
			toSys[se.ID] = sysID
		}
	}
	for ik := range plan.Eval.MS.Fulls.Indexes {
		if se := sd.Lookup(sys.Dag.Equivs[ik.EquivID].Key); se != nil {
			base.Indexes[volcano.IndexKey{EquivID: se.ID, Col: ik.Col}] = true
		}
	}
	return sd, base, toSys
}

// server returns the serving front end, enabling it with defaults on first
// use. First use must not race with a running Refresh — call EnableServing
// explicitly before serving concurrently with refreshes.
func (r *Runtime) server() *server {
	r.srvMu.Lock()
	defer r.srvMu.Unlock()
	r.enableServingLocked(ServeOptions{})
	return r.srv
}

// Snapshots exposes the snapshot store (nil until serving is enabled).
// Tests use it to retain and inspect step-boundary states.
func (r *Runtime) Snapshots() *storage.SnapshotStore { return r.Mt.Snap }

// serverIfEnabled returns the serving front end without enabling it: the
// read-only accessors must not switch Refresh into snapshot mode as a side
// effect.
func (r *Runtime) serverIfEnabled() *server {
	r.srvMu.Lock()
	defer r.srvMu.Unlock()
	return r.srv
}

// ServeStats returns a copy of the serving counters (zero before serving
// is enabled).
func (r *Runtime) ServeStats() ServeStats {
	s := r.serverIfEnabled()
	if s == nil {
		return ServeStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// CacheReport renders the dynamic cache manager's session summary (empty
// before serving is enabled).
func (r *Runtime) CacheReport() string {
	s := r.serverIfEnabled()
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgr.Report()
}

// Query parses, plans and executes one read-only query against the current
// snapshot. Safe to call from any number of goroutines concurrently with
// one writer running Refresh (enable serving first). Planning — parse,
// DAG insertion/unification, Volcano search, cache admission — is
// serialized behind the serving mutex; execution runs lock-free against the
// immutable snapshot that was current at planning time, so the result
// reflects exactly one update-step boundary.
func (r *Runtime) Query(sql string) (*QueryResult, error) {
	s := r.server()

	s.mu.Lock()
	root := s.roots[sql]
	if root == nil {
		def, err := viewdef.Parse(s.cat, sql)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		root, err = s.insert(def)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		if len(s.roots) >= maxRootMemo {
			s.roots = make(map[string]*dag.Equiv)
		}
		s.roots[sql] = root
	}

	snap := r.Mt.Snap.Current()
	if snap.Epoch() != s.rowsEpoch {
		// A refresh step was published since the last query: every cached
		// entry's rows reflect an older epoch. Drop them; the admission
		// state (decayed benefit rates) survives and entries refill lazily.
		s.rows = make(map[int]*storage.Relation)
		s.rowsEpoch = snap.Epoch()
	}

	plan := s.mgr.ExecuteRoot(root)
	mats := make(map[int]*storage.Relation)
	var refills []refill
	hit := false
	if err := s.resolve(plan, snap, mats, &refills, &hit); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.stats.Queries++
	if hit {
		s.stats.CacheHits++
	}
	epoch := snap.Epoch()
	par := s.par
	s.mu.Unlock()
	// Feed the workload tracker outside the serving mutex (it has its own):
	// shapes merge by canonical key, so the adaptation pipeline sees
	// per-shape rates regardless of text variants.
	s.tracker.ObserveQuery(root.Key, sql)

	// Execution — the expensive part — runs outside the lock against the
	// immutable snapshot. Pending cache refills execute first (their
	// base-only plans are mutually independent), then are installed back
	// into the cache unless a newer epoch has invalidated it meanwhile.
	for _, rf := range refills {
		rex := &exec.Executor{DB: snap.Database(), Mat: mats, Par: par, Obs: r.fbObs}
		mats[rf.id] = rex.Run(rf.plan)
	}
	if len(refills) > 0 {
		s.mu.Lock()
		if s.rowsEpoch == epoch {
			for _, rf := range refills {
				if s.rows[rf.id] == nil {
					s.rows[rf.id] = mats[rf.id]
					s.stats.Refills++
				}
			}
		}
		s.mu.Unlock()
	}
	// With feedback enabled (r.fbObs set before serving started), every
	// operator of the served plan — including Reuse reads of maintained
	// views, whose stored length is the node's true cardinality — reports
	// its actual output against the optimizer's estimate.
	ex := &exec.Executor{DB: snap.Database(), Mat: mats, Par: par, Obs: r.fbObs}
	rows := ex.Run(plan)
	return &QueryResult{
		SQL: sql, Rows: rows, Plan: plan,
		Epoch: epoch, EstCost: plan.CumCost, CacheHit: hit,
	}, nil
}

// refill is a deferred cache-entry materialization: the entry's base-only
// plan, executed outside the serving mutex.
type refill struct {
	id   int
	plan *volcano.PlanNode
}

// insert adds a query definition to the serving DAG, converting panics
// (unknown columns and the like) to errors.
func (s *server) insert(def algebra.Node) (e *dag.Equiv, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: invalid query: %v", r)
		}
	}()
	return s.dag.InsertExpr(def), nil
}

// resolve populates mats with the relation behind every Reuse/Probe leaf of
// a plan, reading the snapshot for plan-time materializations and the
// dynamic cache for admitted entries. An entry whose rows are missing for
// the current epoch is only *planned* here (a base-only plan whose reuse
// leaves resolve against the snapshot alone, so it cannot recurse back into
// the cache) and recorded in refills; the caller executes it outside the
// serving mutex. Must hold s.mu.
func (s *server) resolve(p *volcano.PlanNode, snap *storage.Snapshot, mats map[int]*storage.Relation, refills *[]refill, hit *bool) error {
	if p.Access == volcano.Reuse || p.Access == volcano.Probe {
		e := p.E
		if e.IsTable {
			return nil // resolved through the snapshot database
		}
		if _, done := mats[e.ID]; done {
			return nil
		}
		if sysID, ok := s.toSys[e.ID]; ok {
			m := snap.Mat(sysID)
			if m == nil {
				return fmt.Errorf("core: materialized e%d missing from snapshot %d", sysID, snap.Epoch())
			}
			mats[e.ID] = m
			return nil
		}
		if rw, ok := s.rows[e.ID]; ok {
			mats[e.ID] = rw
			*hit = true
			return nil
		}
		// Mark pending before recursing so a duplicate leaf plans it once.
		mats[e.ID] = nil
		rplan := s.mgr.BasePlan(e)
		if err := s.resolve(rplan, snap, mats, refills, hit); err != nil {
			return err
		}
		*refills = append(*refills, refill{id: e.ID, plan: rplan})
		return nil
	}
	for _, c := range p.Children {
		if err := s.resolve(c, snap, mats, refills, hit); err != nil {
			return err
		}
	}
	return nil
}
