package core

// Shard fault injection: SIGKILL a worker process mid-two-phase-install and
// check the install contract — no reader ever observes a partial epoch
// (every answer multiset-equals the from-scratch recomputation at the epoch
// it claims), the gate never advances past an epoch a shard has not durably
// staged, and a restarted worker rejoins at its staged epoch by stage-log
// recovery. Extends the PR 6 crash-recovery shape (re-exec the test binary,
// kill at deterministic and randomized instants) one level up the stack.

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/tpcd"
)

// TestShardWorkerChild is the worker process the kill test targets: a shard
// worker with a durable stage log, serving the rpc transport until killed.
// No-op under a normal `go test` run.
func TestShardWorkerChild(t *testing.T) {
	dir := os.Getenv("MVSHARD_DIR")
	if dir == "" {
		t.Skip("shard worker child: launched by TestShardKillDuringInstall")
	}
	idx, _ := strconv.Atoi(os.Getenv("MVSHARD_SHARD"))
	shards, _ := strconv.Atoi(os.Getenv("MVSHARD_SHARDS"))
	parts, _ := strconv.Atoi(os.Getenv("MVSHARD_PARTS"))
	w, err := shard.NewWorker(idx, shard.Assignment{Partitions: parts, Shards: shards}, dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("MVSHARD_READY %s\n", l.Addr())
	if err := shard.Serve(l, w); err != nil {
		t.Fatal(err)
	}
}

// shardChild manages one worker child process.
type shardChild struct {
	cmd  *exec.Cmd
	addr string
}

func startShardChild(t *testing.T, dir string, idx int, asg shard.Assignment) *shardChild {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestShardWorkerChild$")
	cmd.Env = append(os.Environ(),
		"MVSHARD_DIR="+dir,
		fmt.Sprintf("MVSHARD_SHARD=%d", idx),
		fmt.Sprintf("MVSHARD_SHARDS=%d", asg.Shards),
		fmt.Sprintf("MVSHARD_PARTS=%d", asg.Partitions),
	)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "MVSHARD_READY "); ok {
				addrCh <- rest
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &shardChild{cmd: cmd, addr: addr}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("shard worker child never became ready")
		return nil
	}
}

func (c *shardChild) kill() {
	c.cmd.Process.Kill() // SIGKILL: no cleanup runs
	c.cmd.Wait()
}

func TestShardKillDuringInstall(t *testing.T) {
	if os.Getenv("MVSHARD_DIR") != "" {
		t.Skip("child process")
	}
	if testing.Short() {
		t.Skip("re-execs and kills child processes")
	}
	iters := 2
	if v := os.Getenv("SHARD_CRASH_ITERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("SHARD_CRASH_ITERS=%q: %v", v, err)
		}
		iters = n
	}
	rng := rand.New(rand.NewSource(47))
	asg := shard.Assignment{Partitions: 4, Shards: 2}.Norm()
	dirs := []string{t.TempDir(), t.TempDir()}

	children := make([]*shardChild, asg.Shards)
	clients := make([]shard.Client, asg.Shards)
	for i := range children {
		children[i] = startShardChild(t, dirs[i], i, asg)
		cl, err := shard.Dial(children[i].addr)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
	}
	defer func() {
		for _, c := range children {
			if c != nil {
				c.kill()
			}
		}
	}()

	rt := buildServingRuntime(t, 0.002, 5)
	cat := rt.Plan.System.Cat
	sr, err := rt.EnableShardedClients(asg, clients, ShardOptions{RetainHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	co := sr.Coordinator()

	// Concurrent readers record every answer; all are checked against their
	// epoch's recomputation at the end.
	sql := serveQueries[0]
	type obs struct {
		epoch int64
		rows  *storage.Relation
	}
	var obsMu sync.Mutex
	var seen []obs
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := sr.Query(sql)
				if err != nil {
					t.Error(err)
					return
				}
				obsMu.Lock()
				seen = append(seen, obs{res.Epoch, res.Rows})
				obsMu.Unlock()
			}
		}()
	}

	restart := func(victim int) {
		t.Helper()
		children[victim] = startShardChild(t, dirs[victim], victim, asg)
		cl, err := shard.Dial(children[victim].addr)
		if err != nil {
			t.Fatal(err)
		}
		clients[victim] = cl
		co.ReplaceClient(victim, cl)
		if err := sr.Rejoin(victim); err != nil {
			t.Fatalf("rejoin shard %d: %v", victim, err)
		}
	}

	// Leg 1 (deterministic): kill shard 0 in the window between the last
	// stage ack and the gate flip. The install must still complete — the
	// epoch is durably staged everywhere — and the restarted worker must
	// report that epoch as staged purely from its log.
	co.TestHookAfterStage = func(epoch int64) {
		children[0].kill()
	}
	tpcd.LogUniformUpdates(cat, rt.Ex.DB, updatedRels, 5, 201)
	rt.Refresh()
	if err := sr.Install(); err != nil {
		t.Fatalf("install with post-stage kill: %v", err)
	}
	co.TestHookAfterStage = nil
	gate := co.Gate()
	if cur := rt.Snapshots().Current().Epoch(); gate != cur {
		t.Fatalf("gate %d after post-stage kill, want %d", gate, cur)
	}
	children[0] = startShardChild(t, dirs[0], 0, asg)
	cl0, err := shard.Dial(children[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	h, err := cl0.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if h.Staged != gate {
		t.Fatalf("restarted worker staged epoch %d, want gate %d (stage-log recovery)", h.Staged, gate)
	}
	clients[0] = cl0
	co.ReplaceClient(0, cl0)
	if err := sr.Rejoin(0); err != nil {
		t.Fatal(err)
	}

	// Legs 2..N (randomized): kill a random shard at a random instant around
	// an install; the gate must never pass an epoch that shard has not
	// staged, and restart+rejoin+retry must converge.
	for iter := 0; iter < iters; iter++ {
		victim := rng.Intn(asg.Shards)
		delay := time.Duration(rng.Intn(20)) * time.Millisecond
		var once sync.Once
		timer := time.AfterFunc(delay, func() { once.Do(children[victim].kill) })
		tpcd.LogUniformUpdates(cat, rt.Ex.DB, updatedRels, 5, int64(300+iter))
		rt.Refresh()
		installErr := sr.Install()
		timer.Stop()
		once.Do(children[victim].kill)

		restart(victim)
		if installErr != nil {
			if err := sr.Install(); err != nil {
				t.Fatalf("iter %d: retried install: %v", iter, err)
			}
		}
		if gate, cur := co.Gate(), rt.Snapshots().Current().Epoch(); gate != cur {
			t.Fatalf("iter %d: gate %d after recovery, want %d", iter, gate, cur)
		}
	}
	close(stop)
	wg.Wait()

	// Post-recovery scatter must work (not just the local fallback).
	before := sr.Stats().Scattered
	if _, err := sr.Query(sql); err != nil {
		t.Fatal(err)
	}
	if sr.Stats().Scattered == before {
		t.Fatal("query after recovery did not scatter")
	}

	// Every recorded answer must equal its epoch's from-scratch
	// recomputation: no torn epochs, ever.
	s := rt.serverIfEnabled()
	s.mu.Lock()
	root := s.roots[sql]
	s.mu.Unlock()
	if root == nil {
		t.Fatal("query root never memoized")
	}
	checked := map[int64]*storage.Relation{}
	for _, o := range seen {
		want := checked[o.epoch]
		if want == nil {
			snap := rt.Snapshots().At(o.epoch)
			if snap == nil {
				t.Fatalf("answer claims unretained epoch %d", o.epoch)
			}
			want = recomputeAt(s.dag, root, snap)
			checked[o.epoch] = want
		}
		if !storage.EqualMultiset(o.rows, want) {
			t.Fatalf("answer at epoch %d does not match recomputation (%d vs %d rows)",
				o.epoch, o.rows.Len(), want.Len())
		}
	}
	if len(seen) == 0 {
		t.Fatal("readers recorded no answers")
	}
}
