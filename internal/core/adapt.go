package core

// Online adaptive view re-selection with hot-swap rematerialization. The
// paper's greedy selection runs once, at configuration time; a system
// serving shifting traffic needs the stored-vs-derived boundary to be a
// runtime decision. The pipeline here closes that loop:
//
//  1. the serving layer and the refresh driver record per-epoch workload
//     statistics — query rates by canonical shape, update volumes by
//     relation — into an internal/workload.Tracker;
//  2. Adapt builds a fresh system over the same catalog from the registered
//     views plus the hottest observed ad-hoc query shapes (weighted by their
//     observed per-cycle rates) and an UpdateSpec scaled to the observed
//     update rates, then re-runs greedy selection seeded from the prior
//     solution (greedy.Config.Seed: each prior pick is re-justified first,
//     so an undrifted workload converges in one benefit call per pick);
//  3. the delta between the current and newly chosen materialized sets is
//     computed by canonical node key (the two systems have distinct DAGs);
//  4. results entering the set are materialized in the background from the
//     current immutable snapshot — never from live state, so the refresh
//     writer keeps running — and the new plan carries their differential
//     maintenance plans;
//  5. the swap is armed and installed by the writer at the next epoch
//     boundary (Refresh entry, or an explicit InstallPending): carried-over
//     results keep their live relations, incoming ones take the background
//     builds, dropped ones retire with their diff plans, the serving front
//     end is rebuilt over the new plan, and the post-swap state is published
//     as a new epoch. Readers planned against the old epoch keep their
//     snapshot; readers planning after the swap see the new set — nobody
//     blocks for longer than the serving mutex's pointer updates.
//
// The build is valid only for the epoch it read: if refresh steps were
// published while it ran, the pending swap is discarded (stale) and the next
// round rebuilds from newer state. See ARCHITECTURE.md, "Adaptive
// re-selection and hot swap".

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/diff"
	"repro/internal/exec"
	"repro/internal/greedy"
	"repro/internal/storage"
	"repro/internal/viewdef"
	"repro/internal/volcano"
	"repro/internal/workload"
)

// AdaptOptions tunes the adaptation pipeline.
type AdaptOptions struct {
	// TopQueries caps how many observed query shapes (hottest first) are fed
	// to re-selection. 0 selects the default 6.
	TopQueries int
	// MinWeight drops shapes observed fewer times per cycle. 0 selects the
	// default 0.5; negative admits everything.
	MinWeight float64
	// EveryCycles is the auto-round period: with EnableAdapt, a new build is
	// triggered after this many refresh cycles. 0 selects the default 2.
	EveryCycles int
	// Sync runs auto rounds inline on the refresh goroutine instead of in
	// the background. Builds then always see the cycle-boundary epoch and
	// install deterministically on the next Refresh — the configuration the
	// benchmarks use; background mode trades that determinism for a writer
	// that never waits on selection.
	Sync bool
	// MinImprovement is the fraction of the keep-cost a re-selection must
	// save before a swap is armed (hysteresis against churn). 0 selects the
	// default 0.01; negative swaps on any set change.
	MinImprovement float64
	// MinDrift gates auto rounds on observed workload movement: a round is
	// skipped while the tracker's fingerprint has shifted less than this
	// fraction of its mass since the last completed round (workload.Drift),
	// so a steady workload costs no re-selection work at all. 0 selects the
	// default 0.1; negative re-selects every period. Explicit Adapt calls
	// always run.
	MinDrift float64
	// Greedy overrides the selection config (nil = greedy.DefaultConfig()).
	// The Seed field is overwritten by the pipeline.
	Greedy *greedy.Config
}

// withDefaults normalizes an options value.
func (o AdaptOptions) withDefaults() AdaptOptions {
	if o.TopQueries == 0 {
		o.TopQueries = 6
	}
	if o.MinWeight == 0 {
		o.MinWeight = 0.5
	}
	if o.EveryCycles <= 0 {
		o.EveryCycles = 2
	}
	if o.MinImprovement == 0 {
		o.MinImprovement = 0.01
	}
	if o.MinDrift == 0 {
		o.MinDrift = 0.1
	}
	return o
}

// AdaptResult describes one completed build round.
type AdaptResult struct {
	// Epoch is the snapshot epoch the build read; the swap installs only if
	// it is still current at the next boundary.
	Epoch int64
	// ObservedQueries is how many tracked shapes entered re-selection.
	ObservedQueries int
	// KeepCost is the estimated per-cycle workload cost of keeping the prior
	// materialized set under the newly observed statistics; NewCost is the
	// re-selection's cost. The warm start re-justifies seeds one at a time,
	// so NewCost ≤ KeepCost is a property of greedy behavior rather than a
	// theorem (complementary picks could in principle be jointly lost); it
	// is enforced in spirit by the hysteresis gate — a swap is armed only
	// when NewCost clears KeepCost by MinImprovement — and checked over
	// seeded drifts in core/adapt_prop_test.go.
	KeepCost, NewCost float64
	// Changed reports that the materialized set differs and a swap was armed.
	Changed bool
	// Incoming and Outgoing list the canonical keys of full results entering
	// and leaving the materialized set.
	Incoming, Outgoing []string
	// Picks is the number of extra materializations the new selection chose.
	Picks int
}

// AdaptStats counts adaptation activity since EnableServing.
type AdaptStats struct {
	// Rounds is the number of completed build rounds; Armed of those that
	// armed a swap.
	Rounds, Armed int
	// Installs counts swaps installed at an epoch boundary; Discards counts
	// armed swaps dropped because refresh steps overtook their build epoch
	// (or a newer build replaced them).
	Installs, Discards int
	// Skipped counts auto rounds not run because the workload fingerprint
	// moved less than AdaptOptions.MinDrift since the last round.
	Skipped int
	// LastInstallEpoch is the epoch published by the most recent install.
	LastInstallEpoch int64
	// LastError records the most recent failed round ("" when none).
	LastError string
}

// pendingSwap is a built-but-not-installed adaptation: everything the writer
// needs to switch plans with O(set) pointer work at an epoch boundary.
type pendingSwap struct {
	plan *MaintenancePlan
	// from is the installed plan the build diffed against: carry maps old
	// IDs in from's DAG, so the swap is valid only while from is still the
	// live plan (an intervening install re-keys the materialization maps).
	from *MaintenancePlan
	// built holds background-materialized relations for incoming results,
	// keyed by new-system node ID; builtAgg the mergeable state of incoming
	// aggregates.
	built    map[int]*storage.Relation
	builtAgg map[int]*exec.AggTable
	// carry maps new-system IDs to old-system IDs for results present in
	// both sets (by canonical key): they keep their live relations.
	carry map[int]int
	// The new plan's serving front end, prebuilt during the background
	// round (DAG replay plus subsumption is the expensive part of an
	// install): the writer only assigns these under the serving mutex.
	sd    *dag.DAG
	base  *volcano.MatSet
	toSys map[int]int
	// epoch the build read; stale if the store has moved past it.
	epoch    int64
	outgoing []string
}

// retirement records one install's dropped results, for the never-read-
// after-retirement assertions in tests.
type retirement struct {
	epoch int64
	keys  []string
	rels  []*storage.Relation
}

// errAdaptDurable: adaptation changes the materialized set at runtime, but
// recovery reconstructs the plan from the registered views, update spec and
// optimizer configuration alone — an adapted plan cannot be rebuilt, so a
// WAL directory written under adaptation would be unrecoverable. Rejected up
// front rather than discovered at the next recovery.
var errAdaptDurable = errors.New(
	"core: adaptive re-selection is not supported on a durable (WAL-backed) runtime: an adapted plan cannot be reconstructed at recovery")

// EnableAdapt switches on automatic adaptation rounds: after every
// opts.EveryCycles refresh cycles, a re-selection is built (inline or in the
// background, per opts.Sync) and installed at the following epoch boundary.
// Serving is enabled with defaults if it is not already; call EnableServing
// first to control its options. Idempotent in the sense that the latest
// options win. Durable runtimes (OpenDurable) are rejected — see
// errAdaptDurable.
func (r *Runtime) EnableAdapt(opts AdaptOptions) error {
	if r.dur != nil {
		return errAdaptDurable
	}
	r.EnableServing(ServeOptions{})
	o := opts.withDefaults()
	r.adaptMu.Lock()
	r.adaptOpts = &o
	r.adaptMu.Unlock()
	return nil
}

// AdaptStats returns a copy of the adaptation counters.
func (r *Runtime) AdaptStats() AdaptStats {
	r.adaptMu.Lock()
	defer r.adaptMu.Unlock()
	return r.stats
}

// autoAdapt triggers a build round when due (writer's goroutine, after a
// completed refresh cycle).
func (r *Runtime) autoAdapt() {
	r.adaptMu.Lock()
	opts := r.adaptOpts
	r.adaptMu.Unlock()
	if opts == nil {
		return
	}
	r.cycles++
	if r.cycles-r.lastRoundCycle < opts.EveryCycles || r.pending.Load() != nil {
		return
	}
	// Drift gate: in steady state re-selection would re-derive the same
	// answer, so don't pay for it. The first round always runs (no prior
	// fingerprint to compare against).
	if opts.MinDrift >= 0 {
		fp := r.tracker.Fingerprint()
		r.adaptMu.Lock()
		last := r.lastFingerprint
		r.adaptMu.Unlock()
		if last != nil && workload.Drift(fp, last) < opts.MinDrift {
			r.lastRoundCycle = r.cycles
			r.adaptMu.Lock()
			r.stats.Skipped++
			r.adaptMu.Unlock()
			return
		}
	}
	if opts.Sync {
		r.lastRoundCycle = r.cycles
		r.Adapt()
		return
	}
	if !r.building.CompareAndSwap(false, true) {
		return // a background build is already in flight
	}
	r.lastRoundCycle = r.cycles
	go func() {
		defer r.building.Store(false)
		r.Adapt()
	}()
}

// Adapt runs one re-selection round against the observed workload: it
// rebuilds the optimization problem from the registered views plus the
// hottest tracked query shapes, runs greedy selection seeded from the prior
// solution, and — if the chosen materialized set changed and the estimated
// saving clears AdaptOptions.MinImprovement — materializes the incoming
// results from the current snapshot and arms a swap for the next epoch
// boundary. Safe to call from any goroutine while readers query and the
// writer refreshes; serving must be enabled first.
func (r *Runtime) Adapt() (*AdaptResult, error) {
	var fp map[string]float64
	if r.tracker != nil {
		fp = r.tracker.Fingerprint()
	}
	res, err := r.adaptRound()
	r.adaptMu.Lock()
	r.stats.Rounds++
	if err != nil {
		r.stats.LastError = err.Error()
	} else {
		r.lastFingerprint = fp
		if res.Changed {
			r.stats.Armed++
		}
	}
	r.adaptMu.Unlock()
	return res, err
}

func (r *Runtime) adaptRound() (*AdaptResult, error) {
	if r.dur != nil {
		return nil, errAdaptDurable
	}
	if r.serverIfEnabled() == nil || r.Mt.Snap == nil {
		return nil, fmt.Errorf("core: enable serving before Adapt")
	}
	var opts AdaptOptions
	r.adaptMu.Lock()
	if r.adaptOpts != nil {
		opts = *r.adaptOpts
	}
	plan := r.Plan
	r.adaptMu.Unlock()
	opts = opts.withDefaults()
	snap := r.Mt.Snap.Current()

	// Rebuild the optimization problem from observed statistics. The prior
	// system's registered views are the durable workload contract; its
	// queries are replaced wholesale by what serving actually observed
	// (declared queries that are still hot re-enter through the tracker).
	sys := NewSystem(plan.System.Cat, Options{
		Params:             plan.System.Model.P,
		DisableSubsumption: plan.System.disableSubsumption,
	})
	// With feedback enabled, re-selection prices candidates against observed
	// cardinalities: the store is keyed by canonical node key, so corrections
	// recorded against the prior system's DAG apply to the rebuilt one.
	// (Observer mode keeps telemetry without touching the cost model.)
	r.adaptMu.Lock()
	if r.fb != nil && r.fbCorrect {
		sys.Corr = r.fb
	}
	r.adaptMu.Unlock()
	for _, v := range plan.System.Views {
		if _, err := sys.AddView(v.Name, v.Def); err != nil {
			return nil, fmt.Errorf("core: adapt: %w", err)
		}
	}
	top := r.tracker.TopQueries(opts.TopQueries, opts.MinWeight)
	used := 0
	for i, q := range top {
		def, err := viewdef.Parse(sys.Cat, q.SQL)
		if err != nil {
			continue // tracked text no longer parses; shape ages out
		}
		if _, err := sys.AddQuery(fmt.Sprintf("obs%d", i), def, q.Weight); err == nil {
			used++
		}
	}

	u := r.observedSpec(plan)
	cfg := greedy.DefaultConfig()
	if opts.Greedy != nil {
		cfg = *opts.Greedy
	}
	// Finalize the new DAG before mapping the prior solution into it: the
	// two systems have distinct node IDs, so seeds travel by canonical key.
	sys.prepare()
	cfg.Seed = mapChanges(priorChanges(plan), plan.System.Dag, sys.Dag)
	newPlan := sys.OptimizeWorkload(u, cfg)
	// The physical execution configuration travels with the evaluation
	// state: a hot swap must not silently drop partition parallelism.
	newPlan.Eval.Par = plan.Eval.Par

	// Price "keep the previous set" under the same engine: the baseline the
	// re-selection must not exceed, and the hysteresis reference.
	roots, wq := sys.workloadInputs()
	keep := greedy.CostOf(newPlan.Engine, roots, wq, cfg.Seed)

	res := &AdaptResult{
		Epoch:           snap.Epoch(),
		ObservedQueries: used,
		KeepCost:        keep,
		NewCost:         newPlan.TotalCost,
		Picks:           len(newPlan.Greedy.Chosen),
	}
	res.Incoming, res.Outgoing = setDelta(plan, newPlan)
	setSame := len(res.Incoming) == 0 && len(res.Outgoing) == 0 &&
		sameAuxiliary(plan, newPlan)
	if setSame && sys.Corr == nil {
		return res, nil // same materialized set: nothing to swap
	}
	if setSame {
		// Same set, but the new plan was priced with fresher observed
		// cardinalities: arming the (carry-everything, build-nothing) swap
		// installs the corrected engine and plan estimates without touching a
		// single stored relation. Hysteresis does not apply — there is no
		// materialization churn to guard against.
	} else if keep-newPlan.TotalCost < opts.MinImprovement*keep {
		return res, nil // set changed but the saving is churn-level
	}

	// Background materialization of incoming results, pinned to the build
	// snapshot: every read resolves against immutable relations, so this
	// runs concurrently with refresh and serving.
	built := make(map[int]*storage.Relation)
	builtAgg := make(map[int]*exec.AggTable)
	carry := make(map[int]int)
	oldByKey := make(map[string]int)
	for oldID := range plan.Eval.MS.Fulls.Full {
		if snap.Mat(oldID) != nil {
			oldByKey[plan.System.Dag.Equivs[oldID].Key] = oldID
		}
	}
	tmp := exec.NewExecutor(snap.Database())
	tmp.Par = newPlan.Eval.Par
	tmp.Sizer = newPlan.Engine.FinalRows
	for _, newID := range sortedMatIDs(newPlan) {
		e := newPlan.System.Dag.Equivs[newID]
		if e.IsTable {
			continue // aliased from the live database at install
		}
		if oldID, ok := oldByKey[e.Key]; ok {
			carry[newID] = oldID
			continue
		}
		tmp.MaterializeNode(e)
		built[newID] = tmp.Mat[newID]
		if at := tmp.Agg[newID]; at != nil {
			builtAgg[newID] = at
		}
	}

	sd, base, toSys := buildFrontEnd(newPlan)
	if prev := r.pending.Swap(&pendingSwap{
		plan: newPlan, from: plan, built: built, builtAgg: builtAgg, carry: carry,
		sd: sd, base: base, toSys: toSys,
		epoch: snap.Epoch(), outgoing: res.Outgoing,
	}); prev != nil {
		r.noteDiscard() // a newer build supersedes an un-installed one
	}
	res.Changed = true
	return res, nil
}

// observedSpec builds the re-selection UpdateSpec: the prior propagation
// order (so ChangeDiff update numbers map one-to-one) with per-relation
// volumes replaced by the tracker's observed per-cycle rates where any cycle
// has been observed.
func (r *Runtime) observedSpec(plan *MaintenancePlan) *diff.UpdateSpec {
	prior := plan.Engine.U
	u := diff.NewUpdateSpec(prior.Rels)
	rates := r.tracker.UpdateRates()
	cycles := r.tracker.Cycles()
	for _, rel := range prior.Rels {
		if rt, ok := rates[rel]; ok && cycles > 0 {
			u.Ins[rel], u.Del[rel] = rt.Ins, rt.Del
		} else {
			u.Ins[rel], u.Del[rel] = prior.Ins[rel], prior.Del[rel]
		}
	}
	return u
}

// priorChanges reconstructs the prior solution's extra materializations.
// When the plan came from greedy, the picks are replayed in recorded order
// (descending benefit — the pick order under the paper's monotonicity
// assumption), so re-seeding under unchanged statistics retraces the prior
// trajectory and converges without churn. Otherwise the final state is
// decomposed deterministically: fulls, then diffs, then indexes, by node ID.
func priorChanges(plan *MaintenancePlan) []diff.Change {
	if plan.Greedy != nil {
		out := make([]diff.Change, len(plan.Greedy.Chosen))
		for i, d := range plan.Greedy.Chosen {
			out[i] = d.Change
		}
		return out
	}
	isView := map[int]bool{}
	for _, v := range plan.System.Views {
		isView[v.Root.ID] = true
	}
	ms := plan.Eval.MS
	var out []diff.Change
	ids := make([]int, 0, len(ms.Fulls.Full))
	for id := range ms.Fulls.Full {
		if !isView[id] {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		out = append(out, diff.Change{Kind: diff.ChangeFull, EquivID: id})
	}
	dks := make([]diff.DiffKey, 0, len(ms.Diffs))
	for dk := range ms.Diffs {
		dks = append(dks, dk)
	}
	sort.Slice(dks, func(i, j int) bool {
		if dks[i].EquivID != dks[j].EquivID {
			return dks[i].EquivID < dks[j].EquivID
		}
		return dks[i].Update < dks[j].Update
	})
	for _, dk := range dks {
		out = append(out, diff.Change{Kind: diff.ChangeDiff, EquivID: dk.EquivID, Update: dk.Update})
	}
	type ik struct {
		id  int
		col string
	}
	iks := make([]ik, 0, len(ms.Fulls.Indexes))
	for k := range ms.Fulls.Indexes {
		iks = append(iks, ik{k.EquivID, k.Col})
	}
	sort.Slice(iks, func(i, j int) bool {
		if iks[i].id != iks[j].id {
			return iks[i].id < iks[j].id
		}
		return iks[i].col < iks[j].col
	})
	for _, k := range iks {
		out = append(out, diff.Change{Kind: diff.ChangeIndex, EquivID: k.id, Col: k.col})
	}
	return out
}

// mapChanges translates changes between two DAGs by canonical node key,
// dropping those whose shape the target does not contain. A nil target
// returns a copy unchanged (used to snapshot the prior solution).
func mapChanges(chs []diff.Change, from, to *dag.DAG) []diff.Change {
	out := make([]diff.Change, 0, len(chs))
	for _, c := range chs {
		if to == nil {
			out = append(out, c)
			continue
		}
		ne := to.Lookup(from.Equivs[c.EquivID].Key)
		if ne == nil {
			continue
		}
		c.EquivID = ne.ID
		out = append(out, c)
	}
	return out
}

// setDelta lists the full-result keys entering and leaving the materialized
// set between two plans, sorted.
func setDelta(prev, next *MaintenancePlan) (incoming, outgoing []string) {
	oldKeys := map[string]bool{}
	for id := range prev.Eval.MS.Fulls.Full {
		oldKeys[prev.System.Dag.Equivs[id].Key] = true
	}
	newKeys := map[string]bool{}
	for id := range next.Eval.MS.Fulls.Full {
		newKeys[next.System.Dag.Equivs[id].Key] = true
	}
	for k := range newKeys {
		if !oldKeys[k] {
			incoming = append(incoming, k)
		}
	}
	for k := range oldKeys {
		if !newKeys[k] {
			outgoing = append(outgoing, k)
		}
	}
	sort.Strings(incoming)
	sort.Strings(outgoing)
	return incoming, outgoing
}

// sameAuxiliary compares the keyed diff and index choices of two plans (the
// full sets are compared by setDelta).
func sameAuxiliary(prev, next *MaintenancePlan) bool {
	keyed := func(p *MaintenancePlan) map[string]bool {
		out := map[string]bool{}
		for dk := range p.Eval.MS.Diffs {
			out["d:"+p.System.Dag.Equivs[dk.EquivID].Key+fmt.Sprintf("#%d", dk.Update)] = true
		}
		for ik := range p.Eval.MS.Fulls.Indexes {
			out["i:"+p.System.Dag.Equivs[ik.EquivID].Key+"#"+ik.Col] = true
		}
		return out
	}
	a, b := keyed(prev), keyed(next)
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// sortedMatIDs returns the new plan's materialized node IDs in ascending
// order.
func sortedMatIDs(p *MaintenancePlan) []int {
	ids := make([]int, 0, len(p.Eval.MS.Fulls.Full))
	for id := range p.Eval.MS.Fulls.Full {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// noteDiscard counts one dropped pending swap.
func (r *Runtime) noteDiscard() {
	r.adaptMu.Lock()
	r.stats.Discards++
	r.adaptMu.Unlock()
}

// InstallPending installs an armed adaptation swap if its build epoch is
// still current — i.e. no refresh step was published since the build read
// its snapshot — and returns whether a swap was installed. Refresh calls it
// at entry, so with a driver that alternates Refresh and (possibly
// background) Adapt rounds, installs land exactly on cycle boundaries. It
// must only be called from the refresh writer's goroutine: the call point
// defines the epoch boundary at which readers atomically switch from the old
// materialized set to the new one.
//
// The install itself is cheap — map assembly over the already-built
// relations, a serving front-end rebuild, and one snapshot publication; the
// expensive materialization already happened in the background. A stale
// pending swap (epoch moved on) is discarded, never installed: its built
// relations reflect a state the store has left behind.
func (r *Runtime) InstallPending() bool {
	ps := r.pending.Swap(nil)
	if ps == nil {
		return false
	}
	// Stale builds never install. The epoch check catches refresh steps
	// published since the build; the plan identity check catches an
	// intervening install (concurrent rounds are allowed, and a swap's
	// carry map indexes the materialization maps by *its* prior plan's
	// node IDs — meaningless once another swap re-keyed them).
	cur := r.Mt.Snap.Current()
	if cur.Epoch() != ps.epoch || r.Plan != ps.from {
		r.noteDiscard()
		return false
	}

	// Assemble the new materialization maps: live relations for carryovers,
	// background builds for incoming results, base aliases for table nodes.
	newMat := make(map[int]*storage.Relation)
	newAgg := make(map[int]*exec.AggTable)
	for _, newID := range sortedMatIDs(ps.plan) {
		e := ps.plan.System.Dag.Equivs[newID]
		if e.IsTable {
			newMat[newID] = r.Ex.DB.MustRelation(e.Tables[0])
			continue
		}
		if oldID, ok := ps.carry[newID]; ok {
			newMat[newID] = r.Ex.Mat[oldID]
			if at := r.Ex.Agg[oldID]; at != nil {
				newAgg[newID] = at
			}
			continue
		}
		newMat[newID] = ps.built[newID]
		if at := ps.builtAgg[newID]; at != nil {
			newAgg[newID] = at
		}
	}

	// Record what retires: every live relation that does not carry over.
	// The log pins the dropped relations, so it is kept only under
	// RetainHistory (bounded test runs), like the snapshot history the
	// retirement assertions check it against.
	ret := retirement{}
	if r.retainRetired {
		carried := make(map[*storage.Relation]bool, len(newMat))
		for _, rel := range newMat {
			carried[rel] = true
		}
		for oldID, rel := range r.Ex.Mat {
			if !carried[rel] {
				ret.keys = append(ret.keys, r.Plan.System.Dag.Equivs[oldID].Key)
				ret.rels = append(ret.rels, rel)
			}
		}
		sort.Strings(ret.keys)
	}

	// The swap proper. Holding the serving mutex makes it atomic for
	// planners: a query planned before sees the old front end and the old
	// epoch's snapshot; one planned after sees the new front end and the
	// published post-swap epoch — never a mix. In-flight executions hold
	// immutable old-epoch snapshots and finish undisturbed.
	s := r.serverIfEnabled()
	s.mu.Lock()
	r.adaptMu.Lock()
	r.Plan = ps.plan
	r.Ex.Mat, r.Ex.Agg = newMat, newAgg
	r.Ex.Sizer = ps.plan.Engine.FinalRows
	r.Mt.Rebind(ps.plan.Engine, ps.plan.Eval)
	s.dag = ps.sd
	s.mgr.Rebase(ps.sd, ps.plan.System.Model, ps.base)
	s.toSys = ps.toSys
	s.roots = make(map[string]*dag.Equiv)
	s.rows = make(map[int]*storage.Relation)
	snap := r.Mt.Snap.PublishState(r.Ex.DB, newMat)
	s.rowsEpoch = snap.Epoch()
	if r.retainRetired {
		ret.epoch = snap.Epoch()
		r.retired = append(r.retired, ret)
	}
	r.stats.Installs++
	r.stats.LastInstallEpoch = snap.Epoch()
	r.adaptMu.Unlock()
	s.mu.Unlock()
	return true
}

// WorkloadReport renders the tracked workload (empty before serving is
// enabled).
func (r *Runtime) WorkloadReport() string {
	if r.tracker == nil {
		return ""
	}
	return r.tracker.Report()
}
