package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/diff"
	"repro/internal/exec"
	"repro/internal/greedy"
	"repro/internal/storage"
	"repro/internal/tpcd"
	"repro/internal/viewdef"
)

// Serving test queries over the TPC-D schema: the viewdef subset, chosen so
// some unify exactly with maintained views, some with shared subexpressions,
// and some with nothing materialized at all.
var serveQueries = []string{
	// The lineitem⋈orders backbone shared by every benchmark view.
	`SELECT * FROM lineitem, orders
	 WHERE lineitem.l_orderkey = orders.o_orderkey AND orders.o_orderdate < 255`,
	// Exactly the rev_by_custnation view of tpcd.ViewSet5(cat, true).
	`SELECT customer.c_nationkey, SUM(lineitem.l_extendedprice) AS revenue, COUNT(*)
	 FROM lineitem, orders, customer
	 WHERE lineitem.l_orderkey = orders.o_orderkey
	   AND orders.o_custkey = customer.c_custkey AND orders.o_orderdate < 255
	 GROUP BY customer.c_nationkey`,
	// Touches nothing the maintenance plan stores.
	`SELECT supplier.s_nationkey, COUNT(*) FROM supplier GROUP BY supplier.s_nationkey`,
	`SELECT * FROM customer WHERE customer.c_mktsegment = 1`,
}

// updatedRels keeps refresh cycles short: 3 relations = 6 update steps.
var updatedRels = []string{"customer", "orders", "lineitem"}

// buildServingRuntime assembles the five-aggregate-view workload on
// generated data and returns its runtime (serving not yet enabled).
func buildServingRuntime(t testing.TB, sf, pct float64) *Runtime {
	cat := tpcd.NewCatalog(sf, true)
	db := tpcd.Generate(cat, sf, 7)
	sys := NewSystem(cat, Options{})
	for _, v := range tpcd.ViewSet5(cat, true) {
		if _, err := sys.AddView(v.Name, v.Def); err != nil {
			t.Fatal(err)
		}
	}
	u := diff.UniformPercent(cat, updatedRels, pct)
	plan := sys.OptimizeGreedy(u, greedy.DefaultConfig())
	return plan.NewRuntime(db)
}

// recomputeAt evaluates a query definition from the base relations of one
// snapshot — the reference answer for that step boundary.
func recomputeAt(cd *dag.DAG, root *dag.Equiv, snap *storage.Snapshot) *storage.Relation {
	return exec.NewExecutor(snap.Database()).EvalNode(root)
}

func TestQueryMatchesRecomputationAcrossRefresh(t *testing.T) {
	rt := buildServingRuntime(t, 0.002, 5)
	rt.EnableServing(ServeOptions{RetainHistory: true})
	cat := rt.Plan.System.Cat

	cd := dag.New(cat)
	check := func(stage string) {
		for _, sql := range serveQueries {
			res, err := rt.Query(sql)
			if err != nil {
				t.Fatalf("%s: %v", stage, err)
			}
			root := cd.InsertExpr(viewdef.MustParse(cat, sql))
			want := recomputeAt(cd, root, rt.Snapshots().At(res.Epoch))
			if !storage.EqualMultiset(res.Rows, want) {
				t.Errorf("%s: query %q diverged at epoch %d: got %d rows, want %d",
					stage, sql, res.Epoch, res.Rows.Len(), want.Len())
			}
		}
	}

	check("before refresh")
	if e := rt.Snapshots().Current().Epoch(); e != 0 {
		t.Fatalf("initial epoch = %d, want 0", e)
	}
	tpcd.LogUniformUpdates(cat, rt.Ex.DB, updatedRels, 5, 99)
	rt.Refresh()
	if e := rt.Snapshots().Current().Epoch(); e != 6 {
		t.Fatalf("epoch after one 3-relation refresh = %d, want 6", e)
	}
	if err := rt.Verify(); err != nil {
		t.Fatal(err)
	}
	check("after refresh")
}

func TestQueryReusesMaintainedView(t *testing.T) {
	rt := buildServingRuntime(t, 0.002, 5)
	rt.EnableServing(ServeOptions{})
	res, err := rt.Query(serveQueries[1]) // == rev_by_custnation
	if err != nil {
		t.Fatal(err)
	}
	var view *View
	for i := range rt.Plan.Views {
		if rt.Plan.Views[i].View.Name == "rev_by_custnation" {
			view = &rt.Plan.Views[i].View
		}
	}
	if view == nil {
		t.Fatal("workload view missing")
	}
	if !storage.EqualMultiset(res.Rows, rt.ViewRows(*view)) {
		t.Errorf("query equal to a view must answer from its maintained rows")
	}
	// The plan should read the stored result, not recompute the 3-way join.
	if res.Plan.String() != fmt.Sprintf("reuse(e%d)", res.Plan.E.ID) {
		t.Errorf("expected a root reuse plan, got %s", res.Plan)
	}
}

func TestRepeatedQueryHitsResultCache(t *testing.T) {
	rt := buildServingRuntime(t, 0.002, 5)
	rt.EnableServing(ServeOptions{CacheBudget: 64 << 20})
	sql := serveQueries[2] // supplier aggregate: nothing materialized covers it
	for i := 0; i < 4; i++ {
		if _, err := rt.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	st := rt.ServeStats()
	if st.Queries != 4 {
		t.Fatalf("queries = %d, want 4", st.Queries)
	}
	if st.CacheHits == 0 {
		t.Errorf("repeating a cacheable query should hit the result cache: %+v", st)
	}
	if st.Refills == 0 {
		t.Errorf("first hit must have refilled the admitted entry: %+v", st)
	}
}

func TestQueryErrors(t *testing.T) {
	rt := buildServingRuntime(t, 0.002, 5)
	rt.EnableServing(ServeOptions{})
	for _, bad := range []string{
		"SELEC broken",
		"SELECT * FROM no_such_table",
		"SELECT nation.bogus FROM nation",
	} {
		if _, err := rt.Query(bad); err == nil {
			t.Errorf("query %q should fail with an error", bad)
		}
	}
	if _, err := rt.Query("SELECT * FROM nation"); err != nil {
		t.Errorf("valid query after failures: %v", err)
	}
}

// TestConcurrentQueriesSeeStepBoundaryStates is the serving isolation
// stress test (run under -race in CI): several goroutines issue queries
// while one writer runs full refresh cycles. Every result must equal the
// recomputation of the query at the step boundary the result claims as its
// epoch — i.e. no torn reads, no lost steps.
func TestConcurrentQueriesSeeStepBoundaryStates(t *testing.T) {
	rt := buildServingRuntime(t, 0.002, 4)
	rt.EnableServing(ServeOptions{RetainHistory: true})
	cat := rt.Plan.System.Cat

	type sample struct {
		sqlIdx int
		epoch  int64
		rows   *storage.Relation
	}
	const readers = 4
	const cycles = 2
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []sample
		done    = make(chan struct{})
	)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				qi := (i + w) % len(serveQueries)
				res, err := rt.Query(serveQueries[qi])
				if err != nil {
					t.Errorf("reader %d: %v", w, err)
					return
				}
				mu.Lock()
				samples = append(samples, sample{sqlIdx: qi, epoch: res.Epoch, rows: res.Rows})
				mu.Unlock()
			}
		}(w)
	}

	for c := 0; c < cycles; c++ {
		tpcd.LogUniformUpdates(cat, rt.Ex.DB, updatedRels, 4, int64(300+c))
		rt.Refresh()
	}
	// The refresh cycles can outrun the readers (the batch engine makes
	// them fast); keep serving until at least one sample lands so the
	// consistency check below is never vacuous.
	for deadline := time.Now().Add(10 * time.Second); ; {
		mu.Lock()
		n := len(samples)
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(done)
	wg.Wait()
	if err := rt.Verify(); err != nil {
		t.Fatal(err)
	}

	// Reference answers per (query, epoch), recomputed from the retained
	// snapshots' base relations.
	cd := dag.New(cat)
	roots := make([]*dag.Equiv, len(serveQueries))
	for i, sql := range serveQueries {
		roots[i] = cd.InsertExpr(viewdef.MustParse(cat, sql))
	}
	type key struct {
		sqlIdx int
		epoch  int64
	}
	want := make(map[key]*storage.Relation)
	checked := 0
	for _, s := range samples {
		k := key{s.sqlIdx, s.epoch}
		w, ok := want[k]
		if !ok {
			snap := rt.Snapshots().At(s.epoch)
			if snap == nil {
				t.Fatalf("result claims epoch %d, which was never published", s.epoch)
			}
			w = recomputeAt(cd, roots[s.sqlIdx], snap)
			want[k] = w
		}
		if !storage.EqualMultiset(s.rows, w) {
			t.Fatalf("torn read: query %d at epoch %d has %d rows, recomputation has %d",
				s.sqlIdx, s.epoch, s.rows.Len(), w.Len())
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no samples collected")
	}
	maxEpoch := rt.Snapshots().Current().Epoch()
	if maxEpoch != int64(cycles*2*len(updatedRels)) {
		t.Errorf("final epoch = %d, want %d", maxEpoch, cycles*2*len(updatedRels))
	}
	t.Logf("checked %d samples across %d epochs, %d distinct (query, epoch) states",
		checked, maxEpoch+1, len(want))
}
