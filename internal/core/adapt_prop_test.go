package core

import (
	"testing"

	"repro/internal/diff"
	"repro/internal/greedy"
	"repro/internal/tpcd"
	"repro/internal/viewdef"
)

// keepCost prices the mapped prior solution under a plan's engine and
// workload — the CostOf baseline Adapt compares against before swapping.
func keepCost(plan *MaintenancePlan, mapped []diff.Change) float64 {
	roots, wq := plan.System.workloadInputs()
	return greedy.CostOf(plan.Engine, roots, wq, mapped)
}

// TestAdaptiveReselectionNeverRaisesCost is the randomized monotonicity
// guard behind Adapt's swap decision: across seeded workload drifts, the
// seeded re-selection's estimated total workload cost never exceeds the
// cost of keeping the previous materialized set under the same (drifted)
// statistics. This is exactly the KeepCost/NewCost comparison the pipeline
// makes before arming a swap, exercised over random drifts rather than one
// benchmark trace.
func TestAdaptiveReselectionNeverRaisesCost(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	cat := tpcd.NewCatalog(0.01, true)
	views := tpcd.ViewSet5(cat, true)

	// build assembles a system for one phase's weighted query mix, as Adapt
	// does per round; prepare finalizes the DAG so seeds can map into it.
	build := func(phase []tpcd.DriftQuery, pct float64) (*System, *diff.UpdateSpec) {
		sys := NewSystem(cat, Options{})
		for _, v := range views {
			if _, err := sys.AddView(v.Name, v.Def); err != nil {
				t.Fatal(err)
			}
		}
		for i, q := range phase {
			def, err := viewdef.Parse(cat, q.SQL)
			if err != nil {
				t.Fatalf("drift query does not parse: %v", err)
			}
			if _, err := sys.AddQuery("q"+string(rune('a'+i)), def, q.Weight); err != nil {
				t.Fatal(err)
			}
		}
		sys.prepare()
		return sys, diff.UniformPercent(cat, tpcd.UpdatedRelations(), pct)
	}

	for _, seed := range seeds {
		phases := tpcd.DriftPhases(seed, 2)
		// Update-rate drift rides along with the query drift.
		pct0 := 1 + float64(seed%5)
		pct1 := 1 + float64((seed*3)%7)

		sys0, u0 := build(phases[0], pct0)
		prior := sys0.OptimizeWorkload(u0, greedy.DefaultConfig())

		// Seeded re-selection over the drifted phase, on the drifted system.
		sys1, u1 := build(phases[1], pct1)
		mapped := mapChanges(priorChanges(prior), prior.System.Dag, sys1.Dag)
		cfg := greedy.DefaultConfig()
		cfg.Seed = mapped
		seeded := sys1.OptimizeWorkload(u1, cfg)

		keep := keepCost(seeded, mapped)
		if seeded.TotalCost > keep+1e-9 {
			t.Errorf("seed %d: re-selection raised workload cost over keeping the prior set: %g > %g",
				seed, seeded.TotalCost, keep)
		}
		if seeded.Greedy.FinalCost > seeded.Greedy.InitialCost+1e-9 {
			t.Errorf("seed %d: selection must never exceed the no-extras cost: %g > %g",
				seed, seeded.Greedy.FinalCost, seeded.Greedy.InitialCost)
		}
		if keep <= 0 || seeded.TotalCost <= 0 {
			t.Errorf("seed %d: degenerate costs (keep %g, new %g)", seed, keep, seeded.TotalCost)
		}
	}
}
