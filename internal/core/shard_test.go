package core

// Golden shard-equivalence: the same workload refreshed and queried through
// sharded scatter-gather at shards ∈ {1, 2, 4} must answer every
// non-aggregate query byte-identically to single-node serving (aggregates:
// multiset-equal; their group order is map order even sequentially). Runs
// under -race in CI, so the coordinator/worker paths under concurrent
// queries are exercised for races too. Mirrors
// TestServePartitionCountIndependence one level up the distribution stack.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/tpcd"
)

// shardServeAnswers builds the standard serving workload, applies one update
// cycle, installs it on a fleet of the given size, and answers serveQueries
// through the scatter path. shards == 0 means plain single-node serving
// (with the dynamic cache off, matching the sharded configuration, so plan
// search is identical and non-aggregate answers are byte-comparable).
func shardServeAnswers(t *testing.T, shards int) ([]*storage.Relation, ShardStats) {
	t.Helper()
	rt := buildServingRuntime(t, 0.002, 5)
	cat := rt.Plan.System.Cat

	answers := func(query func(string) (*QueryResult, error)) []*storage.Relation {
		var out []*storage.Relation
		for _, sql := range serveQueries {
			res, err := query(sql)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res.Rows)
		}
		return out
	}

	if shards == 0 {
		rt.EnableServing(ServeOptions{CacheBudget: -1})
		tpcd.LogUniformUpdates(cat, rt.Ex.DB, updatedRels, 5, 99)
		rt.Refresh()
		if err := rt.Verify(); err != nil {
			t.Fatal(err)
		}
		return answers(rt.Query), ShardStats{}
	}

	sr, err := rt.EnableShardedInProc(ShardOptions{Shards: shards, Partitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	tpcd.LogUniformUpdates(cat, rt.Ex.DB, updatedRels, 5, 99)
	if err := sr.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Verify(); err != nil {
		t.Fatal(err)
	}
	if gate, cur := sr.Coordinator().Gate(), rt.Snapshots().Current().Epoch(); gate != cur {
		t.Fatalf("gate %d after install, current epoch %d", gate, cur)
	}
	return answers(sr.Query), sr.Stats()
}

func TestShardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("generates TPC-D data")
	}
	aggregateIdx := map[int]bool{1: true, 2: true}

	base, _ := shardServeAnswers(t, 0)
	for _, shards := range []int{1, 2, 4} {
		got, stats := shardServeAnswers(t, shards)
		if stats.Scattered == 0 {
			t.Fatalf("shards=%d: no query went through scatter-gather (fallbacks=%d)",
				shards, stats.Fallbacks)
		}
		for i := range base {
			if !storage.EqualMultiset(base[i], got[i]) {
				t.Fatalf("shards=%d: query %d diverged as multiset (%d vs %d rows)",
					shards, i, base[i].Len(), got[i].Len())
			}
			if aggregateIdx[i] {
				continue
			}
			for r, tu := range base[i].Rows() {
				if !tu.Equal(got[i].Rows()[r]) {
					t.Fatalf("shards=%d: query %d not byte-identical at row %d", shards, i, r)
				}
			}
		}
	}
}

// TestShardedConcurrentReaders drives concurrent sharded queries against a
// refreshing writer (the serve_test concurrency shape, over the scatter
// path): every answer must multiset-equal the from-scratch recomputation at
// the epoch it claims, so no reader ever observes a torn epoch.
func TestShardedConcurrentReaders(t *testing.T) {
	if testing.Short() {
		t.Skip("generates TPC-D data")
	}
	rt := buildServingRuntime(t, 0.002, 5)
	cat := rt.Plan.System.Cat
	sr, err := rt.EnableShardedInProc(ShardOptions{Shards: 3, Partitions: 6, RetainHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()

	sql := serveQueries[0] // non-aggregate join: the scatter fast path
	s := rt.server()
	s.mu.Lock()
	root := s.roots[sql]
	s.mu.Unlock()

	const readers = 4
	type obs struct {
		epoch int64
		rows  *storage.Relation
	}
	var mu sync.Mutex
	var seen []obs
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := sr.Query(sql)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				seen = append(seen, obs{res.Epoch, res.Rows})
				mu.Unlock()
			}
		}()
	}
	for cycle := 0; cycle < 3; cycle++ {
		tpcd.LogUniformUpdates(cat, rt.Ex.DB, updatedRels, 5, int64(100+cycle))
		if err := sr.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	// The refresh cycles can outrun the readers (the batch engine makes
	// them fast), and answers racing an install fall back to the
	// coordinator; keep serving until at least one scattered answer lands
	// so the per-epoch and scatter checks below are never vacuous.
	for deadline := time.Now().Add(10 * time.Second); ; {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if (n > 0 && sr.Stats().Scattered > 0) || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if root == nil {
		s.mu.Lock()
		root = s.roots[sql]
		s.mu.Unlock()
	}
	sd := rt.serverIfEnabled().dag
	checked := map[int64]*storage.Relation{}
	for _, o := range seen {
		want := checked[o.epoch]
		if want == nil {
			snap := rt.Snapshots().At(o.epoch)
			if snap == nil {
				t.Fatalf("answer claims unretained epoch %d", o.epoch)
			}
			want = recomputeAt(sd, root, snap)
			checked[o.epoch] = want
		}
		if !storage.EqualMultiset(o.rows, want) {
			t.Fatalf("answer at epoch %d does not match that epoch's recomputation (%d vs %d rows)",
				o.epoch, o.rows.Len(), want.Len())
		}
	}
	if sr.Stats().Scattered == 0 {
		t.Fatal("no concurrent query went through scatter-gather")
	}
}

// TestShardedInstallRetryAfterFailure: a failed stage (one shard down) must
// leave the gate untouched, and a retried install after the shard rejoins
// must converge — the superset-diff retry contract of the two-phase install.
func TestShardedInstallRetryAfterFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("generates TPC-D data")
	}
	rt := buildServingRuntime(t, 0.002, 5)
	cat := rt.Plan.System.Cat
	dirs := []string{t.TempDir(), t.TempDir()}
	asg := shard.Assignment{Partitions: 4, Shards: 2}

	workers := make([]*shard.Worker, 2)
	clients := make([]shard.Client, 2)
	for i := range workers {
		w, err := shard.NewWorker(i, asg, dirs[i])
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		clients[i] = shard.InProc{W: w}
	}
	sr, err := rt.EnableShardedClients(asg, clients, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gate0 := sr.Coordinator().Gate()

	// Take shard 1 down (a closed worker's stage log writes fail), refresh,
	// and watch the install fail without moving the gate.
	workers[1].Close()
	tpcd.LogUniformUpdates(cat, rt.Ex.DB, updatedRels, 5, 99)
	rt.Refresh()
	if err := sr.Install(); err == nil {
		t.Fatal("install succeeded with a dead shard")
	}
	if got := sr.Coordinator().Gate(); got != gate0 {
		t.Fatalf("failed install moved the gate: %d -> %d", gate0, got)
	}

	// Restart the worker from its stage log, swap the client in, rejoin, and
	// retry: the gate must reach the current epoch.
	w1, err := shard.NewWorker(1, asg, dirs[1])
	if err != nil {
		t.Fatal(err)
	}
	sr.Coordinator().ReplaceClient(1, shard.InProc{W: w1})
	if err := sr.Rejoin(1); err != nil {
		t.Fatal(err)
	}
	if err := sr.Install(); err != nil {
		t.Fatalf("retried install: %v", err)
	}
	if gate, cur := sr.Coordinator().Gate(), rt.Snapshots().Current().Epoch(); gate != cur {
		t.Fatalf("gate %d after retry, want %d", gate, cur)
	}
	res, err := sr.Query(serveQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	single, err := rt.Query(serveQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != single.Epoch {
		t.Fatalf("epochs diverge after retry: %d vs %d", res.Epoch, single.Epoch)
	}
	for r, tu := range single.Rows.Rows() {
		if !tu.Equal(res.Rows.Rows()[r]) {
			t.Fatalf("row %d differs after recovery retry", r)
		}
	}
	sr.Close()
}
