package core

// Sharded serving: glue between the serving Runtime and the internal/shard
// scatter-gather engine. A ShardedRuntime plans queries on the shared
// serving DAG exactly like Runtime.Query, but pins them to the coordinator's
// GATE epoch — the highest epoch every shard has durably staged — lowers the
// plan to a scatter pipeline, and merges the shard partials in fixed
// partition order, so answers are byte-identical to single-node serving at
// that epoch. Plans the lowering cannot express run coordinator-local at the
// same pinned epoch (a correctness-neutral fallback, counted in Stats).

import (
	"fmt"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/viewdef"
	"repro/internal/volcano"
)

// ShardOptions configures EnableShardedInProc.
type ShardOptions struct {
	// Shards is the worker count (min 1).
	Shards int
	// Partitions is the hash-partition universe sliced across shards; 0
	// defaults to the shard count (Assignment.Norm).
	Partitions int
	// Dirs, when non-empty, gives each worker a stage-log directory (index i
	// for shard i; "" entries leave that worker volatile).
	Dirs []string
	// RetainHistory mirrors ServeOptions.RetainHistory. When false the
	// snapshot store keeps a bounded recent window instead, sized so readers
	// can still resolve the gate epoch while a refresh cycle publishes ahead
	// of it.
	RetainHistory bool
}

// ShardStats counts sharded serving activity.
type ShardStats struct {
	// Scattered is the number of queries answered by shard scatter-gather.
	Scattered int64
	// Fallbacks is the number answered coordinator-local: plans the lowering
	// cannot express (aggregates, oversized build sides, cache-only leaves)
	// or scatter transport failures. Both paths answer at the same pinned
	// epoch.
	Fallbacks int64
}

// ShardedRuntime serves queries over a shard fleet while the underlying
// Runtime keeps refreshing. Create it with EnableShardedInProc (single
// process) or EnableShardedClients (remote workers over shard.Dial).
type ShardedRuntime struct {
	rt *Runtime
	co *shard.Coordinator

	scattered atomic.Int64
	fallbacks atomic.Int64
}

// EnableShardedInProc builds an in-process shard fleet (shard.InProc
// clients, which still round-trip every message through the wire codec) and
// installs the current snapshot on it.
func (r *Runtime) EnableShardedInProc(opts ShardOptions) (*ShardedRuntime, error) {
	asg := shard.Assignment{Partitions: opts.Partitions, Shards: opts.Shards}.Norm()
	clients := make([]shard.Client, asg.Shards)
	for i := range clients {
		dir := ""
		if i < len(opts.Dirs) {
			dir = opts.Dirs[i]
		}
		w, err := shard.NewWorker(i, asg, dir)
		if err != nil {
			return nil, err
		}
		clients[i] = shard.InProc{W: w}
	}
	return r.EnableShardedClients(asg, clients, opts)
}

// EnableShardedClients wires the runtime to pre-built shard clients (one per
// shard, e.g. shard.Dial connections to worker processes), enables serving
// with the dynamic result cache off — every reuse leaf then resolves through
// the snapshot, which is what makes plans lowerable — and installs the
// current snapshot as the first gate epoch.
func (r *Runtime) EnableShardedClients(asg shard.Assignment, clients []shard.Client, opts ShardOptions) (*ShardedRuntime, error) {
	r.EnableServing(ServeOptions{CacheBudget: -1, RetainHistory: opts.RetainHistory})
	if !opts.RetainHistory {
		// Readers pin the gate while the writer publishes the next cycle's
		// epochs (N per cycle) before the next install moves the gate: keep
		// two cycles plus slack so At(gate) always resolves.
		r.Mt.Snap.KeepRecent(2*r.Mt.En.U.N() + 4)
	}
	co, err := shard.NewCoordinator(asg, clients)
	if err != nil {
		return nil, err
	}
	sr := &ShardedRuntime{rt: r, co: co}
	if err := sr.Install(); err != nil {
		return nil, err
	}
	return sr, nil
}

// Runtime returns the underlying serving runtime.
func (sr *ShardedRuntime) Runtime() *Runtime { return sr.rt }

// Coordinator exposes the shard coordinator (tests drive Rejoin and the
// install hook through it).
func (sr *ShardedRuntime) Coordinator() *shard.Coordinator { return sr.co }

// Stats returns the scatter/fallback counters.
func (sr *ShardedRuntime) Stats() ShardStats {
	return ShardStats{Scattered: sr.scattered.Load(), Fallbacks: sr.fallbacks.Load()}
}

// Install runs the two-phase install of the current snapshot: stage on every
// shard, then flip the gate. Call it after each Refresh (or use
// sr.Refresh).
func (sr *ShardedRuntime) Install() error {
	return sr.co.Install(sr.rt.Mt.Snap.Current())
}

// Refresh propagates pending deltas and installs the resulting epoch on the
// fleet.
func (sr *ShardedRuntime) Refresh() error {
	sr.rt.Refresh()
	return sr.Install()
}

// Rejoin drives a restarted worker's recovery against the gate snapshot.
func (sr *ShardedRuntime) Rejoin(i int) error {
	gate := sr.co.Gate()
	var snap *storage.Snapshot
	if gate >= 0 {
		snap = sr.rt.Mt.Snap.At(gate)
	}
	return sr.co.Rejoin(i, snap)
}

// Close shuts down the shard clients (workers owned by InProc close their
// stage logs).
func (sr *ShardedRuntime) Close() error { return sr.co.Close() }

// Query plans sql on the shared serving DAG, pinned to the gate epoch, and
// answers it by scatter-gather (or the local fallback). Safe for any number
// of goroutines concurrently with one writer running sr.Refresh.
func (sr *ShardedRuntime) Query(sql string) (*QueryResult, error) {
	r := sr.rt
	s := r.server()
	gate := sr.co.Gate()
	if gate < 0 {
		// Before the first install there is no staged fleet state yet.
		sr.fallbacks.Add(1)
		return r.Query(sql)
	}
	snap := r.Mt.Snap.At(gate)
	if snap == nil {
		return nil, fmt.Errorf("core: gate epoch %d not retained by the snapshot store", gate)
	}

	s.mu.Lock()
	root := s.roots[sql]
	if root == nil {
		def, err := viewdef.Parse(s.cat, sql)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		root, err = s.insert(def)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		if len(s.roots) >= maxRootMemo {
			s.roots = make(map[string]*dag.Equiv)
		}
		s.roots[sql] = root
	}
	plan := s.mgr.ExecuteRoot(root)
	mats := make(map[int]*storage.Relation)
	var refills []refill
	hit := false
	if err := s.resolve(plan, snap, mats, &refills, &hit); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.stats.Queries++
	if hit {
		s.stats.CacheHits++
	}
	par := s.par
	toSys := make(map[int]int, len(s.toSys))
	for k, v := range s.toSys {
		toSys[k] = v
	}
	s.mu.Unlock()
	s.tracker.ObserveQuery(root.Key, sql)

	// Cache-admitted leaves (possible when serving was enabled with a cache
	// before sharding) are materialized locally at the pinned epoch; they are
	// NOT installed back into the cache, whose rows track the current epoch.
	for _, rf := range refills {
		rex := &exec.Executor{DB: snap.Database(), Mat: mats, Par: par}
		mats[rf.id] = rex.Run(rf.plan)
	}

	ex := &exec.Executor{DB: snap.Database(), Mat: mats, Par: par}
	env := shard.LowerEnv{
		Leaf: func(p *volcano.PlanNode) (shard.LeafRef, algebra.Schema, bool) {
			e := p.E
			if e.IsTable {
				rel := snap.Relation(e.Tables[0])
				if rel == nil {
					return shard.LeafRef{}, nil, false
				}
				return shard.LeafRef{Rel: e.Tables[0]}, rel.Schema(), true
			}
			if sysID, ok := toSys[e.ID]; ok {
				if m := snap.Mat(sysID); m != nil {
					return shard.LeafRef{Mat: true, ID: int32(sysID)}, m.Schema(), true
				}
			}
			return shard.LeafRef{}, nil, false // cache-only leaf: not on the fleet
		},
		Exec: func(p *volcano.PlanNode) *storage.Relation {
			if p.Access == volcano.Probe {
				return ex.Stored(p.E)
			}
			return ex.Run(p)
		},
		MaxBroadcast: exec.BroadcastMax(),
	}

	var rows *storage.Relation
	if req, ok := shard.Lower(plan, env); ok {
		req.Epoch = gate
		if got, err := sr.co.Scatter(req, plan.E.Schema); err == nil {
			rows = got
			sr.scattered.Add(1)
		}
	}
	if rows == nil {
		sr.fallbacks.Add(1)
		rows = ex.Run(plan)
	}
	return &QueryResult{
		SQL: sql, Rows: rows, Plan: plan,
		Epoch: gate, EstCost: plan.CumCost, CacheHit: hit,
	}, nil
}
