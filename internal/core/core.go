// Package core ties the substrates together into the paper's system: a view
// maintenance optimizer. Given a catalog, a set of materialized view
// definitions and a pending update batch, it builds the shared AND-OR DAG,
// runs either plain Volcano maintenance optimization (the NoGreedy baseline,
// equivalent in class to [Vis98]) or the greedy materialized-view/index
// selection of §6, and emits executable maintenance plans plus a
// human-readable report.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/diff"
	"repro/internal/exec"
	"repro/internal/feedback"
	"repro/internal/greedy"
	"repro/internal/storage"
	"repro/internal/volcano"
	"repro/internal/workload"
)

// View is a registered materialized view.
type View struct {
	Name string
	Def  algebra.Node
	Root *dag.Equiv
}

// Options configures a System.
type Options struct {
	// Params are the cost-model constants (default cost.Default()).
	Params cost.Params
	// DisableSubsumption turns off subsumption derivations (σ and group-by).
	DisableSubsumption bool
}

// System is the optimizer instance for one catalog and view set.
type System struct {
	Cat     *catalog.Catalog
	Dag     *dag.DAG
	Model   *cost.Model
	Views   []View
	Queries []Query

	// Corr, when non-nil, supplies observed cardinalities that take
	// precedence over histogram estimates in every engine this system builds
	// (diff.NewEngineObserved). The adaptation pipeline sets it from the
	// runtime's feedback store (feedback.go); nil keeps the static path
	// byte-identical.
	Corr diff.Corrections

	prepared           bool
	disableSubsumption bool
}

// NewSystem creates a system over a catalog.
func NewSystem(cat *catalog.Catalog, opts Options) *System {
	p := opts.Params
	if p.BlockSize == 0 {
		p = cost.Default()
	}
	return &System{
		Cat: cat, Dag: dag.New(cat), Model: cost.NewModel(p),
		disableSubsumption: opts.DisableSubsumption,
	}
}

// AddView registers a view definition, inserting and expanding it in the
// shared DAG. Definition errors (unknown columns, self-joins, arity
// mismatches) are returned rather than panicking, since view text is user
// input.
func (s *System) AddView(name string, def algebra.Node) (v View, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: invalid view %q: %v", name, r)
		}
	}()
	if s.prepared {
		return View{}, fmt.Errorf("core: views must be added before optimization")
	}
	root := s.Dag.AddQuery(name, def)
	v = View{Name: name, Def: def, Root: root}
	s.Views = append(s.Views, v)
	return v, nil
}

// prepare finalizes the DAG (subsumption derivations) once.
func (s *System) prepare() {
	if s.prepared {
		return
	}
	if !s.disableSubsumption {
		s.Dag.ApplySubsumption()
	}
	s.prepared = true
}

// RefreshMode says how a materialized result is refreshed.
type RefreshMode int

const (
	// Incremental merges computed differentials into the stored result.
	Incremental RefreshMode = iota
	// Recompute rebuilds the stored result from scratch.
	Recompute
)

// String names the mode.
func (m RefreshMode) String() string {
	if m == Incremental {
		return "incremental"
	}
	return "recompute"
}

// ViewPlan is the refresh decision for one view.
type ViewPlan struct {
	View                           View
	Mode                           RefreshMode
	IncrementalCost, RecomputeCost float64
}

// Cost is the cost of the chosen mode.
func (vp ViewPlan) Cost() float64 {
	if vp.Mode == Incremental {
		return vp.IncrementalCost
	}
	return vp.RecomputeCost
}

// MaintenancePlan is the full outcome of maintenance optimization.
type MaintenancePlan struct {
	System  *System
	Engine  *diff.Engine
	Eval    *diff.Eval
	Views   []ViewPlan
	Queries []QueryPlan
	// Greedy holds the selection result when the greedy optimizer ran.
	Greedy *greedy.Result
	// TotalCost is the estimated cost of one refresh cycle including the
	// maintenance of every extra materialized result.
	TotalCost float64
}

// OptimizeNoGreedy is the baseline: the views themselves are materialized,
// nothing extra is; plain Volcano (extended with differential costing)
// chooses between incremental maintenance and recomputation per view.
func (s *System) OptimizeNoGreedy(u *diff.UpdateSpec) *MaintenancePlan {
	s.prepare()
	en := diff.NewEngineObserved(s.Dag, s.Model, u, s.Corr)
	ms := diff.NewMatState()
	for _, v := range s.Views {
		ms.Fulls.Full[v.Root.ID] = true
	}
	ev := en.NewEval(ms)
	plan := &MaintenancePlan{System: s, Engine: en, Eval: ev}
	for _, v := range s.Views {
		plan.Views = append(plan.Views, s.viewPlan(en, ev, v))
		plan.TotalCost += plan.Views[len(plan.Views)-1].Cost()
	}
	return plan
}

// OptimizeGreedy runs the paper's greedy selection of extra temporary and
// permanent materializations (and indexes) on top of the view set.
func (s *System) OptimizeGreedy(u *diff.UpdateSpec, cfg greedy.Config) *MaintenancePlan {
	s.prepare()
	en := diff.NewEngineObserved(s.Dag, s.Model, u, s.Corr)
	roots := make([]*dag.Equiv, len(s.Views))
	for i, v := range s.Views {
		roots[i] = v.Root
	}
	res := greedy.Run(en, roots, cfg)
	plan := &MaintenancePlan{
		System: s, Engine: en, Eval: res.Eval, Greedy: res, TotalCost: res.FinalCost,
	}
	for _, v := range s.Views {
		plan.Views = append(plan.Views, s.viewPlan(en, res.Eval, v))
	}
	return plan
}

func (s *System) viewPlan(en *diff.Engine, ev *diff.Eval, v View) ViewPlan {
	inc := ev.MaintCost(v.Root)
	rec := ev.ComputeCost(v.Root) + s.Model.WriteCost(en.FinalRows(v.Root), dag.Width(v.Root))
	mode := Incremental
	if rec < inc {
		mode = Recompute
	}
	return ViewPlan{View: v, Mode: mode, IncrementalCost: inc, RecomputeCost: rec}
}

// Report renders a human-readable summary of the plan.
func (p *MaintenancePlan) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "maintenance plan: total cost %.3f s\n", p.TotalCost)
	for _, vp := range p.Views {
		fmt.Fprintf(&b, "  view %-22s %-11s (incremental %.3f s, recompute %.3f s)\n",
			vp.View.Name, vp.Mode, vp.IncrementalCost, vp.RecomputeCost)
	}
	for _, qp := range p.Queries {
		fmt.Fprintf(&b, "  query %-21s %.3f s per run × weight %.0f\n",
			qp.Query.Name, qp.Cost, qp.Query.Weight)
	}
	if p.Greedy != nil {
		fmt.Fprintf(&b, "  greedy: %.3f s → %.3f s (%d candidates, %d benefit calls)\n",
			p.Greedy.InitialCost, p.Greedy.FinalCost, p.Greedy.CandidateCount, p.Greedy.BenefitCalls)
		chosen := append([]greedy.Decision(nil), p.Greedy.Chosen...)
		sort.SliceStable(chosen, func(i, j int) bool { return chosen[i].Benefit > chosen[j].Benefit })
		for _, c := range chosen {
			kind := "temporary"
			if c.Permanent {
				kind = "permanent"
			}
			fmt.Fprintf(&b, "    + %-34s %-9s benefit %.3f s\n", c.Desc, kind, c.Benefit)
		}
	}
	return b.String()
}

// Explain renders, for every view, the full refresh strategy: the chosen
// mode, and either the recomputation plan or the per-update differential
// plans, as indented EXPLAIN-style trees.
func (p *MaintenancePlan) Explain() string {
	var b strings.Builder
	for _, vp := range p.Views {
		fmt.Fprintf(&b, "view %s — %s (cost %.3f s)\n", vp.View.Name, vp.Mode, vp.Cost())
		if vp.Mode == Recompute {
			b.WriteString(indent(volcano.Explain(p.Eval.ComputePlan(vp.View.Root)), "  "))
			continue
		}
		b.WriteString(indent(p.Eval.ExplainAll(vp.View.Root), "  "))
	}
	for _, qp := range p.Queries {
		fmt.Fprintf(&b, "query %s (cost %.3f s per run)\n", qp.Query.Name, qp.Cost)
		b.WriteString(indent(volcano.Explain(
			p.Eval.FullPlanAt(qp.Query.Root, p.Engine.FinalState())), "  "))
	}
	return b.String()
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pad + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// Query is a read-only workload element with a relative weight (executions
// per refresh cycle).
type Query struct {
	Name   string
	Def    algebra.Node
	Root   *dag.Equiv
	Weight float64
}

// AddQuery registers a read-only query for workload tuning. Queries share
// the DAG with the views, so common subexpressions unify and chosen
// materializations benefit both.
func (s *System) AddQuery(name string, def algebra.Node, weight float64) (q Query, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: invalid query %q: %v", name, r)
		}
	}()
	if s.prepared {
		return Query{}, fmt.Errorf("core: queries must be added before optimization")
	}
	if weight <= 0 {
		weight = 1
	}
	root := s.Dag.AddQuery(name, def)
	q = Query{Name: name, Def: def, Root: root, Weight: weight}
	s.Queries = append(s.Queries, q)
	return q, nil
}

// workloadInputs projects the registered views and weighted queries into
// the form greedy selection consumes. Every cost comparison over one system
// must go through this single projection (OptimizeWorkload's selection, the
// adaptation pipeline's keep-baseline), so the two sides of a hysteresis
// decision can never use divergent formulations.
func (s *System) workloadInputs() ([]*dag.Equiv, []greedy.WeightedQuery) {
	roots := make([]*dag.Equiv, len(s.Views))
	for i, v := range s.Views {
		roots[i] = v.Root
	}
	queries := make([]greedy.WeightedQuery, len(s.Queries))
	for i, q := range s.Queries {
		queries[i] = greedy.WeightedQuery{Root: q.Root, Weight: q.Weight}
	}
	return roots, queries
}

// QueryPlan reports the evaluation cost of one workload query under a plan.
type QueryPlan struct {
	Query Query
	Cost  float64 // per execution, times Weight in the workload total
}

// OptimizeWorkload extends OptimizeGreedy to a mixed workload of view
// maintenance and weighted read-only queries (the paper's closing
// extension): the greedy selection minimizes
//
//	Σ_views refresh cost + Σ_queries weight × evaluation cost.
func (s *System) OptimizeWorkload(u *diff.UpdateSpec, cfg greedy.Config) *MaintenancePlan {
	s.prepare()
	en := diff.NewEngineObserved(s.Dag, s.Model, u, s.Corr)
	roots, queries := s.workloadInputs()
	res := greedy.RunWorkload(en, roots, queries, cfg)
	plan := &MaintenancePlan{
		System: s, Engine: en, Eval: res.Eval, Greedy: res, TotalCost: res.FinalCost,
	}
	for _, v := range s.Views {
		plan.Views = append(plan.Views, s.viewPlan(en, res.Eval, v))
	}
	for _, q := range s.Queries {
		plan.Queries = append(plan.Queries, QueryPlan{
			Query: q,
			Cost:  res.Eval.FullPlanAt(q.Root, en.FinalState()).CumCost,
		})
	}
	return plan
}

// Runtime executes a maintenance plan against real data. Refresh drives
// incremental maintenance; EnableServing/Query (serve.go) additionally
// serve read-only SQL queries concurrently with refreshes under epoch-based
// snapshot isolation; EnableAdapt/Adapt (adapt.go) re-run view selection
// against the observed workload and hot-swap the materialized set at epoch
// boundaries.
//
// Plan, Ex.Mat and Ex.Agg are replaced by adaptation swaps; they may be
// read freely from the refresh writer's goroutine (swaps happen there), but
// any other goroutine must not touch them while serving is live — the
// serving and adaptation layers carry their own swap-stable references.
type Runtime struct {
	Plan *MaintenancePlan
	Ex   *exec.Executor
	Mt   *exec.Maintainer

	srvMu sync.Mutex
	srv   *server

	// dur is the durability state when the runtime was booted through
	// OpenDurable (durable.go); nil on plain in-memory runtimes.
	dur *durable

	// tracker observes the served workload (set at EnableServing).
	tracker *workload.Tracker
	// retainRetired mirrors ServeOptions.RetainHistory: only then is the
	// retirement log kept (it pins dropped relations, like the snapshot
	// history it is checked against).
	retainRetired bool

	// Adaptation state (adapt.go). adaptMu guards Plan handoff between the
	// background builder and the writer, plus the stats and the retirement
	// log; pending carries a built-but-not-installed swap; building
	// serializes background rounds; cycle counters are writer-only.
	adaptMu         sync.Mutex
	adaptOpts       *AdaptOptions
	pending         atomic.Pointer[pendingSwap]
	building        atomic.Bool
	stats           AdaptStats
	retired         []retirement
	lastFingerprint map[string]float64
	cycles          int
	lastRoundCycle  int

	// Feedback-driven costing state (feedback.go): the observed-cardinality
	// store and the shared operator-observation closure the serve path
	// attaches to its ad-hoc executors. Both are set once by EnableFeedback
	// (before concurrent refresh/serving) and read-only afterwards.
	fb *feedback.Store
	// fbCorrect distinguishes EnableFeedback (observations correct the next
	// adaptation round's cost model) from EnableFeedbackObserver (telemetry
	// only).
	fbCorrect bool
	fbObs     func(e *dag.Equiv, est, act float64)
}

// NewRuntime materializes every result the plan expects (views plus chosen
// full results) from the database and returns a refresh driver.
func (p *MaintenancePlan) NewRuntime(db *storage.Database) *Runtime {
	ex := exec.NewExecutor(db)
	ex.Par = p.Eval.Par
	ex.Sizer = p.Engine.FinalRows
	ids := make([]int, 0, len(p.Eval.MS.Fulls.Full))
	for id := range p.Eval.MS.Fulls.Full {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ex.MaterializeNode(p.System.Dag.Equivs[id])
	}
	return &Runtime{Plan: p, Ex: ex, Mt: exec.NewMaintainer(ex, p.Engine, p.Eval)}
}

// Refresh propagates all pending deltas through the stored results. With
// serving enabled it additionally feeds the workload tracker, installs any
// adaptation swap armed since the previous cycle (the call boundary is an
// epoch boundary, so the swap is atomic for readers), and — with EnableAdapt
// — triggers the next background re-selection round.
func (r *Runtime) Refresh() {
	r.InstallPending()
	r.observeCycle()
	r.Mt.Refresh()
	r.autoAdapt()
}

// observeCycle records the pending update-batch sizes into the workload
// tracker and closes the tracker's cycle.
func (r *Runtime) observeCycle() {
	if r.tracker == nil {
		return
	}
	counts := make(map[string]workload.Counts)
	for _, rel := range r.Mt.En.U.Rels {
		if d := r.Ex.DB.Delta(rel); d != nil {
			counts[rel] = workload.Counts{Ins: d.Plus.Len(), Del: d.Minus.Len()}
		}
	}
	r.tracker.ObserveRefresh(counts)
}

// SetWorkers bounds the worker pool of the refresh scheduler (0 =
// runtime.GOMAXPROCS(0), 1 = sequential). Refresh results are identical at
// any setting; see exec.Maintainer.Workers.
func (r *Runtime) SetWorkers(n int) { r.Mt.Workers = n }

// SetPartitions configures partition-parallel operator execution across the
// whole runtime: every scan, selection, projection, hash join, dedup,
// multiset difference and aggregation — in refresh differentials, merges,
// recomputation fallbacks, verification and served queries — splits its
// input into n hash partitions processed by one goroutine each (n <= 1
// restores sequential operators). Results are byte-identical at any setting
// for non-aggregate results and set-equal with identical counts for
// aggregates. The configuration is carried on the plan's diff.Eval, so
// adaptation swaps preserve it. Call before refreshing or serving
// concurrently.
func (r *Runtime) SetPartitions(n int) {
	par := storage.Par{Batch: r.Ex.Par.Batch, Chain: r.Ex.Par.Chain} // engine choice survives repartitioning
	if n > 1 {
		par.Partitions, par.Workers = n, n
	}
	r.setPar(par)
}

// SetExecBatch selects the operator engine: true routes every operator
// through the vectorized columnar batch kernels (the default, see
// storage.DefaultExecBatch), false through the row-at-a-time kernels.
// Results are byte-identical either way — the flag only chooses the
// execution strategy — and the setting is carried on the plan's diff.Eval
// exactly like the partition count, so adaptation swaps preserve it. Call
// before refreshing or serving concurrently.
func (r *Runtime) SetExecBatch(on bool) {
	par := r.Ex.Par
	par.Batch = on
	par.Chain = false
	r.setPar(par)
}

// SetExecChain selects the chained columnar pipeline engine: operators
// exchange columnar batches (exec.Batch) and a pipeline gathers to rows only
// at its sink. Chain implies Batch (the chained kernels share the dense
// vectorized primitives). Results stay byte-identical to both other engines;
// the setting is carried exactly like SetExecBatch's.
func (r *Runtime) SetExecChain(on bool) {
	par := r.Ex.Par
	par.Chain = on
	if on {
		par.Batch = true
	}
	r.setPar(par)
}

// setPar installs a parallel/engine configuration runtime-wide: executor,
// plan evaluation state (so swaps inherit it), and the serving gate.
func (r *Runtime) setPar(par storage.Par) {
	r.Ex.Par = par
	r.Plan.Eval.Par = par
	r.srvMu.Lock()
	if r.srv != nil {
		r.srv.mu.Lock()
		r.srv.par = par
		r.srv.mu.Unlock()
	}
	r.srvMu.Unlock()
}

// ViewRows returns the maintained contents of a view.
func (r *Runtime) ViewRows(v View) *storage.Relation {
	return r.Ex.Mat[v.Root.ID]
}

// Verify recomputes every view from base relations and checks multiset
// equality with the maintained copies, returning the first divergence.
func (r *Runtime) Verify() error {
	for _, vp := range r.Plan.Views {
		got := r.Ex.Mat[vp.View.Root.ID]
		want := r.Ex.EvalNode(vp.View.Root)
		if !storage.EqualMultiset(got, want) {
			return fmt.Errorf("core: view %q diverged: maintained %d rows, recomputed %d rows",
				vp.View.Name, got.Len(), want.Len())
		}
	}
	return nil
}
