package wal

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/storage"
)

// TestSpillSnapshotProperty is the spill/load round-trip property test: for
// random storage.Snapshot contents — random schemas, row counts, duplicate
// tuples — spill→load must be tuple-identical per relation (same rows, same
// order), and the loaded relations must derive the same hash-partition state
// (partition count, per-partition row index sets, per-row hashes) as the
// originals, since replayed refreshes partition over the recovered rows.
func TestSpillSnapshotProperty(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		dir := t.TempDir()

		db := storage.NewDatabase()
		nrels := 1 + rng.Intn(4)
		orig := make(map[string]*storage.Relation, nrels)
		for i := 0; i < nrels; i++ {
			name := fmt.Sprintf("rel%d", i)
			schema := randSchema(rng, name)
			r := db.Create(name, schema)
			n := rng.Intn(200)
			for j := 0; j < n; j++ {
				r.Insert(randTuple(rng, schema))
			}
			if n > 0 && rng.Intn(2) == 0 {
				// Duplicates: multiset semantics must survive the round trip.
				r.Insert(r.Rows()[rng.Intn(r.Len())].Clone())
			}
			orig[name] = r
		}
		mats := map[int]*storage.Relation{}
		st := storage.NewSnapshotStore()
		snap := st.PublishState(db, mats)

		sp := &Spill{Batch: int64(trial), Epoch: snap.Epoch(), Rels: map[string][]algebra.Tuple{}, Mats: map[int][]algebra.Tuple{}}
		for _, name := range db.Names() {
			sp.Rels[name] = snap.Relation(name).Rows()
		}
		file, err := WriteSpill(dir, sp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadSpill(dir, file)
		if err != nil {
			t.Fatal(err)
		}

		par := storage.Par{Partitions: 1 + rng.Intn(7), Workers: 2}
		for name, r := range orig {
			loaded := storage.NewRelation(r.Schema())
			loaded.ReplaceRows(got.Rels[name])
			if loaded.Len() != r.Len() {
				t.Fatalf("trial %d %s: %d rows, want %d", trial, name, loaded.Len(), r.Len())
			}
			for i, row := range r.Rows() {
				if !reflect.DeepEqual(loaded.Rows()[i], row) {
					t.Fatalf("trial %d %s row %d differs:\ngot  %v\nwant %v",
						trial, name, i, loaded.Rows()[i], row)
				}
			}
			// Partition state derived from the loaded rows must match what
			// the original relation derives.
			pw, pl := r.PartView(par), loaded.PartView(par)
			if pw.Parts() != pl.Parts() {
				t.Fatalf("trial %d %s: %d partitions, want %d", trial, name, pl.Parts(), pw.Parts())
			}
			for p := 0; p < pw.Parts(); p++ {
				if !reflect.DeepEqual(pw.Rows(p), pl.Rows(p)) &&
					!(len(pw.Rows(p)) == 0 && len(pl.Rows(p)) == 0) {
					t.Fatalf("trial %d %s partition %d differs", trial, name, p)
				}
			}
			for i := 0; i < r.Len(); i++ {
				if pw.Hash(i) != pl.Hash(i) {
					t.Fatalf("trial %d %s: hash of row %d differs", trial, name, i)
				}
			}
		}
	}
}

func randSchema(rng *rand.Rand, rel string) algebra.Schema {
	kinds := []catalog.Type{catalog.Int, catalog.Float, catalog.String, catalog.Date}
	n := 1 + rng.Intn(5)
	s := make(algebra.Schema, n)
	for i := range s {
		s[i] = algebra.Col{Rel: rel, Name: fmt.Sprintf("c%d", i), Type: kinds[rng.Intn(len(kinds))]}
	}
	return s
}

func randTuple(rng *rand.Rand, s algebra.Schema) algebra.Tuple {
	t := make(algebra.Tuple, len(s))
	for i, c := range s {
		switch c.Type {
		case catalog.Int:
			t[i] = algebra.NewInt(rng.Int63n(1000) - 500)
		case catalog.Float:
			t[i] = algebra.NewFloat(float64(rng.Intn(2000)) / 4)
		case catalog.String:
			t[i] = algebra.NewString(fmt.Sprintf("s%d", rng.Intn(50)))
		default:
			t[i] = algebra.NewDate(int64(rng.Intn(2556)))
		}
	}
	return t
}
