package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/algebra"
)

// Snapshot spill: a serialized image of one published storage.Snapshot —
// every base relation plus the maintained rows of every non-aggregate
// derived result — written by a background goroutine while the ingest loop
// keeps running (the snapshot is immutable, so serialization reads race
// nothing). Aggregate results are deliberately absent: their merge state
// (AggTable) is rebuilt from the recovered bases at boot, because their row
// order is map-iteration order and so not a stable byte contract; see the
// recovery invariant in ARCHITECTURE.md.

// spillMagic heads every spill file.
var spillMagic = []byte("MVSPILL1")

// Spill is the decoded form of one spill file.
type Spill struct {
	// Batch is the last ingest batch folded into this state.
	Batch int64
	// Epoch is the snapshot epoch the state was published at.
	Epoch int64
	// Rels maps base relation name → rows, in maintained order.
	Rels map[string][]algebra.Tuple
	// Mats maps equivalence-node ID → maintained rows for every
	// non-aggregate, non-table materialized result.
	Mats map[int][]algebra.Tuple
}

// SpillName formats the spill file name for a batch.
func SpillName(batch int64) string { return fmt.Sprintf("snap-%016d.snap", batch) }

// WriteSpill serializes sp into dir atomically (temp + rename + dir fsync)
// and returns the file name. The tuple slices are only read, so callers may
// hand over live snapshot rows.
func WriteSpill(dir string, sp *Spill) (string, error) {
	payload := encodeSpill(sp)
	out := make([]byte, 0, len(spillMagic)+len(payload)+8)
	out = append(out, spillMagic...)
	out = AppendFrame(out, payload)

	name := SpillName(sp.Batch)
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(out); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return "", err
	}
	return name, syncDir(dir)
}

// ReadSpill loads and verifies one spill file.
func ReadSpill(dir, name string) (*Spill, error) {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	if len(data) < len(spillMagic) || string(data[:len(spillMagic)]) != string(spillMagic) {
		return nil, fmt.Errorf("wal: %s is not a spill file", name)
	}
	payload, rest, _, err := NextFrame(data[len(spillMagic):])
	if err != nil {
		return nil, fmt.Errorf("wal: spill %s: %w", name, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wal: spill %s: %d trailing bytes", name, len(rest))
	}
	sp, err := decodeSpill(payload)
	if err != nil {
		return nil, fmt.Errorf("wal: spill %s: %w", name, err)
	}
	return sp, nil
}

func encodeSpill(sp *Spill) []byte {
	b := make([]byte, 0, 1<<16)
	b = appendUvarint(b, uint64(sp.Batch))
	b = appendUvarint(b, uint64(sp.Epoch))

	names := make([]string, 0, len(sp.Rels))
	for n := range sp.Rels {
		names = append(names, n)
	}
	sort.Strings(names)
	b = appendUvarint(b, uint64(len(names)))
	for _, n := range names {
		b = appendUvarint(b, uint64(len(n)))
		b = append(b, n...)
		b = appendRows(b, sp.Rels[n])
	}

	ids := make([]int, 0, len(sp.Mats))
	for id := range sp.Mats {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	b = appendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = appendUvarint(b, uint64(id))
		b = appendRows(b, sp.Mats[id])
	}
	return b
}

func decodeSpill(b []byte) (*Spill, error) {
	sp := &Spill{Rels: map[string][]algebra.Tuple{}, Mats: map[int][]algebra.Tuple{}}
	batch, b, err := decodeUvarint(b)
	if err != nil {
		return nil, err
	}
	sp.Batch = int64(batch)
	epoch, b, err := decodeUvarint(b)
	if err != nil {
		return nil, err
	}
	sp.Epoch = int64(epoch)

	nrels, b, err := decodeUvarint(b)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nrels; i++ {
		nameLen, rest, err := decodeUvarint(b)
		if err != nil {
			return nil, err
		}
		if uint64(len(rest)) < nameLen {
			return nil, fmt.Errorf("truncated relation name")
		}
		name := string(rest[:nameLen])
		var rows []algebra.Tuple
		rows, b, err = decodeRows(rest[nameLen:])
		if err != nil {
			return nil, fmt.Errorf("relation %s: %w", name, err)
		}
		sp.Rels[name] = rows
	}

	nmats, b, err := decodeUvarint(b)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nmats; i++ {
		id, rest, err := decodeUvarint(b)
		if err != nil {
			return nil, err
		}
		var rows []algebra.Tuple
		rows, b, err = decodeRows(rest)
		if err != nil {
			return nil, fmt.Errorf("mat e%d: %w", id, err)
		}
		sp.Mats[int(id)] = rows
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%d trailing bytes", len(b))
	}
	return sp, nil
}

func appendRows(b []byte, rows []algebra.Tuple) []byte {
	b = appendUvarint(b, uint64(len(rows)))
	for _, t := range rows {
		b = AppendTuple(b, t)
	}
	return b
}

func decodeRows(b []byte) ([]algebra.Tuple, []byte, error) {
	n, b, err := decodeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	capRows := n
	if capRows > uint64(len(b)) {
		capRows = uint64(len(b))
	}
	rows := make([]algebra.Tuple, 0, capRows)
	for i := uint64(0); i < n; i++ {
		var t algebra.Tuple
		t, b, err = DecodeTuple(b)
		if err != nil {
			return nil, nil, fmt.Errorf("row %d: %w", i, err)
		}
		rows = append(rows, t)
	}
	return rows, b, nil
}
