package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Defaults for Options fields left zero.
const (
	DefaultSegmentBytes = int64(4 << 20)
	DefaultSyncBytes    = 1 << 20
	DefaultCommitWindow = 2 * time.Millisecond
)

// Options configures a Log.
type Options struct {
	// Fsync makes every committed batch durable before AppendBatch returns.
	// Off, writes still go to the OS promptly but survive only process
	// crashes, not machine crashes.
	Fsync bool
	// CommitWindow is how long the group-commit daemon waits for more
	// appends to coalesce into one fsync (only meaningful with Fsync).
	CommitWindow time.Duration
	// SyncBytes short-circuits the commit window once this many bytes are
	// queued.
	SyncBytes int
	// SegmentBytes triggers rotation to a new segment file once the current
	// one exceeds it. Batches never span segments: rotation happens only at
	// batch boundaries.
	SegmentBytes int64
	// KeepAll disables log pruning after spills, so the full batch history
	// stays replayable from batch 1 (crash tests verify recovery against a
	// from-scratch replay).
	KeepAll bool
}

func (o Options) withDefaults() Options {
	if o.CommitWindow == 0 {
		o.CommitWindow = DefaultCommitWindow
	}
	if o.SyncBytes == 0 {
		o.SyncBytes = DefaultSyncBytes
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	return o
}

// Stats counts log activity since Open.
type Stats struct {
	// Appends is the number of batches durably appended.
	Appends int64
	// Syncs is the number of fsync calls; Appends/Syncs is the group-commit
	// coalescing factor.
	Syncs int64
	// Rotations counts segment rotations.
	Rotations int64
	// Bytes is the total frame bytes written.
	Bytes int64
	// WaitNanos is the cumulative time callers spent blocked on the sync
	// barrier; WaitNanos/Appends is the mean commit latency.
	WaitNanos int64
}

// Batch is one ingest batch: the per-relation delta records of a single
// refresh cycle, made durable atomically (all or nothing after recovery).
type Batch struct {
	Seq    int64
	Epoch  int64
	Deltas []DeltaRec
}

// encode frames every delta record followed by the commit marker.
func (b *Batch) encode() []byte {
	var out []byte
	for i := range b.Deltas {
		b.Deltas[i].Seq = b.Seq
		out = AppendFrame(out, EncodeDelta(&b.Deltas[i]))
	}
	return AppendFrame(out, EncodeCommit(&CommitRec{Seq: b.Seq, Epoch: b.Epoch}))
}

// unit is one queued work item for the group-commit daemon: either a batch's
// frames or a rotation request. ack receives the outcome after the unit is
// durable (or the rotation complete); newSeg receives the post-rotation
// segment sequence.
type unit struct {
	frames []byte
	rotate bool
	newSeg chan int64
	ack    chan error
	start  time.Time
}

// Log is the append side of the write-ahead log. One daemon goroutine owns
// the segment file; AppendBatch may be called from any goroutine and blocks
// until the batch's group is durable.
type Log struct {
	dir string
	opt Options

	mu          sync.Mutex
	cond        *sync.Cond
	queue       []unit
	queuedBytes int
	closed      bool
	err         error
	stats       Stats

	// Daemon-owned (no lock needed: only the daemon touches them).
	f        *os.File
	segSeq   int64
	segBytes int64

	done chan struct{}
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Stats returns a copy of the activity counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Err returns the sticky I/O error, if the daemon hit one.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// segName formats a segment file name; names sort in sequence order.
func segName(seq int64) string { return fmt.Sprintf("wal-%016d.seg", seq) }

// segSeqOf parses a segment file name, returning -1 for non-segments.
func segSeqOf(name string) int64 {
	var seq int64
	if n, err := fmt.Sscanf(name, "wal-%d.seg", &seq); n != 1 || err != nil {
		return -1
	}
	return seq
}

// openSegment creates segment seq in dir and makes its directory entry
// durable.
func openSegment(dir string, seq int64) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, segName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// syncDir fsyncs a directory so renames and creates in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// AppendBatch appends one batch and blocks until it is durable under the
// log's sync policy (fsynced with Fsync on, written to the OS otherwise).
// Concurrent callers are coalesced into one fsync by the commit daemon.
func (l *Log) AppendBatch(b *Batch) error {
	u := unit{frames: b.encode(), ack: make(chan error, 1), start: time.Now()}
	l.mu.Lock()
	if l.err != nil {
		l.mu.Unlock()
		return l.err
	}
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: log closed")
	}
	l.queue = append(l.queue, u)
	l.queuedBytes += len(u.frames)
	l.cond.Signal()
	l.mu.Unlock()
	err := <-u.ack
	l.mu.Lock()
	l.stats.WaitNanos += time.Since(u.start).Nanoseconds()
	if err == nil {
		l.stats.Appends++
	}
	l.mu.Unlock()
	return err
}

// Rotate closes the current segment (after making it durable) and starts a
// new one, returning the new segment sequence. Queued like any append, so it
// lands on a batch boundary.
func (l *Log) Rotate() (int64, error) {
	u := unit{rotate: true, newSeg: make(chan int64, 1), ack: make(chan error, 1), start: time.Now()}
	l.mu.Lock()
	if l.err != nil {
		l.mu.Unlock()
		return 0, l.err
	}
	if l.closed {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: log closed")
	}
	l.queue = append(l.queue, u)
	l.cond.Signal()
	l.mu.Unlock()
	if err := <-u.ack; err != nil {
		return 0, err
	}
	return <-u.newSeg, nil
}

// Close drains the queue, makes everything durable, and stops the daemon.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return l.err
	}
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	<-l.done
	return l.Err()
}

// daemon is the group-commit loop: it waits for queued units, optionally
// lingers CommitWindow to coalesce more, writes them in order, issues one
// fsync for the whole group, and releases every caller's sync barrier.
func (l *Log) daemon() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.queue) == 0 && l.closed {
			l.mu.Unlock()
			break
		}
		if l.opt.Fsync && l.opt.CommitWindow > 0 && l.queuedBytes < l.opt.SyncBytes && !l.closed {
			// Linger: let concurrent appenders join this group so the window's
			// worth of batches shares one fsync.
			l.mu.Unlock()
			time.Sleep(l.opt.CommitWindow)
			l.mu.Lock()
		}
		group := l.queue
		l.queue = nil
		l.queuedBytes = 0
		l.mu.Unlock()
		l.process(group)
	}
	if l.f != nil {
		var err error
		if l.opt.Fsync {
			err = l.f.Sync()
		}
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			l.fail(err)
		}
	}
}

// process writes one coalesced group. Rotations embedded in the group sync
// and close the old file in order; one final fsync covers every write since
// the last sync. All acks fire after the group is durable.
func (l *Log) process(group []unit) {
	var err error
	unsynced := false
	for i := range group {
		u := &group[i]
		if err != nil {
			continue
		}
		if u.rotate {
			err = l.rotateFile(unsynced)
			unsynced = false
			if err == nil && u.newSeg != nil {
				u.newSeg <- l.segSeq
			}
			continue
		}
		if _, werr := l.f.Write(u.frames); werr != nil {
			err = werr
			continue
		}
		l.segBytes += int64(len(u.frames))
		l.addBytes(int64(len(u.frames)))
		unsynced = true
		if l.segBytes >= l.opt.SegmentBytes {
			err = l.rotateFile(unsynced)
			unsynced = false
		}
	}
	if err == nil && unsynced && l.opt.Fsync {
		err = l.f.Sync()
		l.mu.Lock()
		l.stats.Syncs++
		l.mu.Unlock()
	}
	if err != nil {
		l.fail(err)
	}
	for i := range group {
		group[i].ack <- err
	}
}

// rotateFile closes the current segment (synced if anything unsynced is in
// it or fsync demands it) and opens the next.
func (l *Log) rotateFile(unsynced bool) error {
	if l.opt.Fsync && unsynced {
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.mu.Lock()
		l.stats.Syncs++
		l.mu.Unlock()
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	f, err := openSegment(l.dir, l.segSeq+1)
	if err != nil {
		return err
	}
	l.f = f
	l.segSeq++
	l.segBytes = 0
	l.mu.Lock()
	l.stats.Rotations++
	l.mu.Unlock()
	return nil
}

func (l *Log) addBytes(n int64) {
	l.mu.Lock()
	l.stats.Bytes += n
	l.mu.Unlock()
}

// fail records a sticky error: every later append fails fast.
func (l *Log) fail(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
}
