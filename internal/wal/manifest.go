package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// manifestName is the recovery-root file inside a WAL directory.
const manifestName = "MANIFEST"

// Manifest records the recovery root: which snapshot spill to load and from
// which segment replay must resume. It is rewritten atomically (temp file +
// rename + directory fsync) after every successful spill, so a crash leaves
// either the old manifest or the new one, both of which name a consistent
// (spill, segment set) pair.
type Manifest struct {
	// Version guards the on-disk format.
	Version int `json:"version"`
	// Snapshot is the spill file name holding the state at SnapshotBatch.
	Snapshot string `json:"snapshot"`
	// SnapshotBatch is the last batch folded into the spill; replay resumes
	// at SnapshotBatch+1.
	SnapshotBatch int64 `json:"snapshot_batch"`
	// SnapshotEpoch is the snapshot epoch the spill state was published at —
	// the last durable epoch of the spill.
	SnapshotEpoch int64 `json:"snapshot_epoch"`
	// KeepFromSegment is the first segment still needed for replay; earlier
	// segments are prunable.
	KeepFromSegment int64 `json:"keep_from_segment"`
}

// manifestVersion is the current format.
const manifestVersion = 1

// ReadManifest loads the manifest, returning (nil, nil) when the directory
// has none (a fresh or never-spilled log).
func ReadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(b, m); err != nil {
		return nil, fmt.Errorf("wal: corrupt manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("wal: manifest version %d not supported", m.Version)
	}
	return m, nil
}

// WriteManifest atomically replaces the manifest.
func WriteManifest(dir string, m *Manifest) error {
	m.Version = manifestVersion
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// Prune removes segments below the manifest's replay horizon and spill files
// other than the manifest's. Best-effort: removal errors are ignored (a
// leftover file only costs disk; the next prune retries).
func Prune(dir string, m *Manifest) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if seq := segSeqOf(name); seq >= 0 && seq < m.KeepFromSegment {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if strings.HasSuffix(name, ".snap") && name != m.Snapshot {
			os.Remove(filepath.Join(dir, name))
		}
	}
}
