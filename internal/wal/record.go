// Package wal is the durability substrate: a write-ahead delta log plus
// periodic snapshot spills, from which every published epoch is recoverable.
//
// The log is a sequence of segment files (wal-<n>.seg), each a concatenation
// of length-prefixed CRC32C-framed records. A record is either a delta —
// one base relation's insert or delete tuple batch for one ingest batch —
// or a commit marker closing a batch. A batch is durable exactly when all of
// its records, commit included, are on disk; recovery replays complete
// batches in sequence order and truncates anything after the last valid
// commit (torn tails are discarded whole, never half-applied — see
// replay.go). Appends are made durable by a group-commit daemon that
// coalesces concurrently queued records within a size/time window and issues
// one fsync per group; callers block on the group's sync barrier (log.go).
//
// A manifest file records the recovery root: the latest snapshot spill, the
// batch and epoch it captures, and the first segment still needed to replay
// past it (manifest.go, spill.go). Recovery = load the spill, then replay
// the delta segments through the ordinary differential refresh path.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/algebra"
	"repro/internal/catalog"
)

// Record type tags (first payload byte).
const (
	recDelta  = 0x01
	recCommit = 0x02
)

// maxFrameBytes bounds a single frame's payload. Decoding rejects larger
// claims before allocating, so a corrupt length prefix cannot OOM recovery.
const maxFrameBytes = 1 << 28

// castagnoli is the CRC32C polynomial table (the checksum used by every
// frame and by snapshot spills).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DeltaRec is one base relation's logged tuple batch: the δ+ (Del=false) or
// δ− (Del=true) rows contributed to ingest batch Seq.
type DeltaRec struct {
	Seq  int64
	Rel  string
	Del  bool
	Rows []algebra.Tuple
}

// CommitRec closes batch Seq: all of the batch's delta records precede it in
// the log. Epoch is the snapshot epoch the batch's refresh publishes last,
// recorded for observability (recovery recomputes it by replay).
type CommitRec struct {
	Seq   int64
	Epoch int64
}

// AppendFrame appends payload as one framed record: u32 length, u32 CRC32C
// of the payload, payload bytes.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// NextFrame splits the first frame off b, verifying the length prefix and
// checksum. It returns the payload, the remaining bytes, and the total frame
// size consumed. Any violation — short header, oversized claim, truncated
// payload, checksum mismatch — is an error; the caller decides whether it is
// a torn tail (truncate) or corruption (fail).
func NextFrame(b []byte) (payload, rest []byte, n int, err error) {
	if len(b) < 8 {
		return nil, nil, 0, fmt.Errorf("wal: short frame header: %d bytes", len(b))
	}
	ln := binary.LittleEndian.Uint32(b)
	if ln > maxFrameBytes {
		return nil, nil, 0, fmt.Errorf("wal: frame length %d exceeds limit", ln)
	}
	if uint64(len(b)-8) < uint64(ln) {
		return nil, nil, 0, fmt.Errorf("wal: truncated frame: want %d payload bytes, have %d", ln, len(b)-8)
	}
	sum := binary.LittleEndian.Uint32(b[4:])
	payload = b[8 : 8+ln]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, nil, 0, fmt.Errorf("wal: frame checksum mismatch")
	}
	return payload, b[8+int(ln):], 8 + int(ln), nil
}

// EncodeDelta renders a delta record's payload (unframed).
func EncodeDelta(rec *DeltaRec) []byte {
	b := make([]byte, 0, 64+16*len(rec.Rows))
	b = append(b, recDelta)
	b = binary.AppendUvarint(b, uint64(rec.Seq))
	b = binary.AppendUvarint(b, uint64(len(rec.Rel)))
	b = append(b, rec.Rel...)
	if rec.Del {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(rec.Rows)))
	for _, t := range rec.Rows {
		b = AppendTuple(b, t)
	}
	return b
}

// EncodeCommit renders a commit record's payload (unframed).
func EncodeCommit(rec *CommitRec) []byte {
	b := make([]byte, 0, 24)
	b = append(b, recCommit)
	b = binary.AppendUvarint(b, uint64(rec.Seq))
	b = binary.AppendUvarint(b, uint64(rec.Epoch))
	return b
}

// DecodeRecord parses one record payload, returning *DeltaRec or *CommitRec.
// It never panics: every malformed input — unknown tag, bad value kind,
// short buffer, length overflow, trailing garbage — returns an error.
func DecodeRecord(payload []byte) (interface{}, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("wal: empty record payload")
	}
	tag, b := payload[0], payload[1:]
	switch tag {
	case recDelta:
		rec := &DeltaRec{}
		seq, b, err := decodeUvarint(b)
		if err != nil {
			return nil, fmt.Errorf("wal: delta seq: %w", err)
		}
		rec.Seq = int64(seq)
		nameLen, b, err := decodeUvarint(b)
		if err != nil {
			return nil, fmt.Errorf("wal: delta relation length: %w", err)
		}
		if uint64(len(b)) < nameLen {
			return nil, fmt.Errorf("wal: delta relation name truncated")
		}
		rec.Rel, b = string(b[:nameLen]), b[nameLen:]
		if len(b) < 1 {
			return nil, fmt.Errorf("wal: delta op flag missing")
		}
		switch b[0] {
		case 0:
			rec.Del = false
		case 1:
			rec.Del = true
		default:
			return nil, fmt.Errorf("wal: delta op flag %d invalid", b[0])
		}
		b = b[1:]
		nrows, b, err := decodeUvarint(b)
		if err != nil {
			return nil, fmt.Errorf("wal: delta row count: %w", err)
		}
		// Each tuple costs at least one byte, so the remaining length bounds
		// the plausible row count; cap the allocation by it.
		capRows := nrows
		if capRows > uint64(len(b)) {
			capRows = uint64(len(b))
		}
		rec.Rows = make([]algebra.Tuple, 0, capRows)
		for i := uint64(0); i < nrows; i++ {
			var t algebra.Tuple
			t, b, err = DecodeTuple(b)
			if err != nil {
				return nil, fmt.Errorf("wal: delta row %d: %w", i, err)
			}
			rec.Rows = append(rec.Rows, t)
		}
		if len(b) != 0 {
			return nil, fmt.Errorf("wal: %d trailing bytes after delta record", len(b))
		}
		return rec, nil
	case recCommit:
		seq, b, err := decodeUvarint(b)
		if err != nil {
			return nil, fmt.Errorf("wal: commit seq: %w", err)
		}
		epoch, b, err := decodeUvarint(b)
		if err != nil {
			return nil, fmt.Errorf("wal: commit epoch: %w", err)
		}
		if len(b) != 0 {
			return nil, fmt.Errorf("wal: %d trailing bytes after commit record", len(b))
		}
		return &CommitRec{Seq: int64(seq), Epoch: int64(epoch)}, nil
	default:
		return nil, fmt.Errorf("wal: unknown record tag %#x", tag)
	}
}

// AppendTuple appends one tuple's self-describing encoding: column count,
// then per value a kind byte and the kind's payload (varint for Int/Date,
// raw bits for Float, length-prefixed bytes for String).
func AppendTuple(b []byte, t algebra.Tuple) []byte {
	b = binary.AppendUvarint(b, uint64(len(t)))
	for _, v := range t {
		b = append(b, byte(v.Kind))
		switch v.Kind {
		case catalog.Int, catalog.Date:
			b = binary.AppendVarint(b, v.I)
		case catalog.Float:
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.F))
		case catalog.String:
			b = binary.AppendUvarint(b, uint64(len(v.S)))
			b = append(b, v.S...)
		default:
			panic(fmt.Sprintf("wal: cannot encode value kind %d", v.Kind))
		}
	}
	return b
}

// DecodeTuple parses one tuple off b, returning the remainder. Errors rather
// than panics on every malformed input.
func DecodeTuple(b []byte) (algebra.Tuple, []byte, error) {
	ncols, b, err := decodeUvarint(b)
	if err != nil {
		return nil, nil, fmt.Errorf("column count: %w", err)
	}
	capCols := ncols
	if capCols > uint64(len(b)) {
		capCols = uint64(len(b))
	}
	t := make(algebra.Tuple, 0, capCols)
	for i := uint64(0); i < ncols; i++ {
		if len(b) < 1 {
			return nil, nil, fmt.Errorf("column %d: missing kind byte", i)
		}
		kind := catalog.Type(b[0])
		b = b[1:]
		var v algebra.Value
		switch kind {
		case catalog.Int, catalog.Date:
			x, n := binary.Varint(b)
			if n <= 0 {
				return nil, nil, fmt.Errorf("column %d: bad varint", i)
			}
			b = b[n:]
			v = algebra.Value{Kind: kind, I: x}
		case catalog.Float:
			if len(b) < 8 {
				return nil, nil, fmt.Errorf("column %d: truncated float", i)
			}
			v = algebra.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b)))
			b = b[8:]
		case catalog.String:
			var ln uint64
			ln, b, err = decodeUvarint(b)
			if err != nil {
				return nil, nil, fmt.Errorf("column %d: string length: %w", i, err)
			}
			if uint64(len(b)) < ln {
				return nil, nil, fmt.Errorf("column %d: truncated string", i)
			}
			v = algebra.NewString(string(b[:ln]))
			b = b[ln:]
		default:
			return nil, nil, fmt.Errorf("column %d: unknown value kind %d", i, kind)
		}
		t = append(t, v)
	}
	return t, b, nil
}

// appendUvarint is binary.AppendUvarint, named for symmetry with decode.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// decodeUvarint reads one uvarint, returning the remainder.
func decodeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad uvarint")
	}
	return v, b[n:], nil
}
