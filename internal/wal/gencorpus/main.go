// Command gencorpus regenerates the checked-in seed corpus for FuzzWALDecode
// (internal/wal/testdata/fuzz/FuzzWALDecode). Run it with the corpus
// directory as the only argument after changing the WAL wire format, so the
// seeds keep exercising the current framing.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/algebra"
	"repro/internal/wal"
)

func write(dir, name string, data []byte) {
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		panic(err)
	}
}

func main() {
	dir := os.Args[1]
	d1 := &wal.DeltaRec{Seq: 7, Rel: "store_sales", Rows: []algebra.Tuple{
		{algebra.NewInt(101), algebra.NewFloat(9.75), algebra.NewString("ab"), algebra.NewDate(2451)},
		{algebra.NewInt(-3), algebra.NewFloat(0), algebra.NewString(""), algebra.NewDate(0)},
	}}
	d2 := &wal.DeltaRec{Seq: 7, Rel: "store_sales", Del: true, Rows: []algebra.Tuple{
		{algebra.NewInt(55), algebra.NewFloat(1.5), algebra.NewString("zz"), algebra.NewDate(1)},
	}}
	var valid []byte
	valid = wal.AppendFrame(valid, wal.EncodeDelta(d1))
	valid = wal.AppendFrame(valid, wal.EncodeDelta(d2))
	valid = wal.AppendFrame(valid, wal.EncodeCommit(&wal.CommitRec{Seq: 7, Epoch: 42}))
	write(dir, "valid_batch", valid)
	write(dir, "torn_tail", valid[:len(valid)-5])
	flip := append([]byte(nil), valid...)
	flip[9] ^= 0xff
	write(dir, "flipped_byte", flip)
	write(dir, "commit_only", wal.AppendFrame(nil, wal.EncodeCommit(&wal.CommitRec{Seq: 1, Epoch: 2})))
	write(dir, "delta_payload", wal.EncodeDelta(&wal.DeltaRec{Seq: 1, Rel: "r", Rows: []algebra.Tuple{{algebra.NewString("x")}}}))
	write(dir, "huge_len_header", []byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	write(dir, "empty", nil)
}
