package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Recovered is what Open found on disk: the manifest (nil on a fresh
// directory) and every complete batch past the manifest's snapshot, in
// sequence order, ready to replay through the refresh path.
type Recovered struct {
	Manifest *Manifest
	Batches  []*Batch
}

// Open opens (or initializes) a WAL directory and returns the append log
// plus what recovery must do. On a fresh directory — no manifest — any stray
// files are cleared and an empty log is created. Otherwise the segments past
// the manifest's horizon are scanned: complete batches are returned for
// replay, and a torn tail (a crash mid-group-commit) is truncated off the
// last segment so half-written batches can never be half-applied. Appends
// always start a fresh segment, leaving recovered segments immutable.
func Open(dir string, opt Options) (*Log, *Recovered, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	rec := &Recovered{Manifest: m}
	var nextSegSeq int64 = 1
	if m == nil {
		// Fresh directory. A crash between segment creation and the initial
		// manifest write can leave stray files; without a manifest nothing in
		// them is recoverable state, so clear and start over.
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		for _, e := range entries {
			if segSeqOf(e.Name()) >= 0 || filepath.Ext(e.Name()) == ".snap" || filepath.Ext(e.Name()) == ".tmp" {
				if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
					return nil, nil, err
				}
			}
		}
	} else {
		batches, maxSeg, err := scanSegments(dir, m.KeepFromSegment, true)
		if err != nil {
			return nil, nil, err
		}
		for _, b := range batches {
			if b.Seq > m.SnapshotBatch {
				rec.Batches = append(rec.Batches, b)
			}
		}
		for i, b := range rec.Batches {
			if want := m.SnapshotBatch + int64(i) + 1; b.Seq != want {
				return nil, nil, fmt.Errorf("wal: batch sequence gap: want %d, log has %d", want, b.Seq)
			}
		}
		if maxSeg >= nextSegSeq {
			nextSegSeq = maxSeg + 1
		}
	}
	f, err := openSegment(dir, nextSegSeq)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opt: opt, f: f, segSeq: nextSegSeq, done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	go l.daemon()
	return l, rec, nil
}

// ScanBatches is the read-only scan: every complete batch with Seq >
// afterSeq present in the directory, tolerating (but not repairing) a torn
// tail. Verification tools use it to replay the full durable history.
func ScanBatches(dir string, afterSeq int64) ([]*Batch, error) {
	batches, _, err := scanSegments(dir, 0, false)
	if err != nil {
		return nil, err
	}
	out := batches[:0]
	for _, b := range batches {
		if b.Seq > afterSeq {
			out = append(out, b)
		}
	}
	return out, nil
}

// scanSegments reads every segment with sequence ≥ keepFrom in order and
// decodes the batch stream. A decode failure or a trailing commit-less batch
// in the *last* segment is a torn tail: scanning stops at the last complete
// batch, and with repair set the segment is truncated back to that boundary
// (then removed if empty). The same conditions mid-log are corruption and
// fail the scan. Returns the batches and the highest segment sequence seen.
func scanSegments(dir string, keepFrom int64, repair bool) ([]*Batch, int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	var segs []int64
	for _, e := range entries {
		if seq := segSeqOf(e.Name()); seq >= 0 {
			segs = append(segs, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	var maxSeg int64
	if n := len(segs); n > 0 {
		maxSeg = segs[n-1]
	}

	var batches []*Batch
	for si, seq := range segs {
		if seq < keepFrom {
			continue
		}
		last := si == len(segs)-1
		path := filepath.Join(dir, segName(seq))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, 0, err
		}
		segBatches, goodOff, tornErr := decodeSegment(data)
		batches = append(batches, segBatches...)
		if tornErr != nil && !last {
			return nil, 0, fmt.Errorf("wal: segment %d corrupt mid-log: %w", seq, tornErr)
		}
		if tornErr != nil && repair {
			if err := truncateSegment(dir, path, int64(goodOff)); err != nil {
				return nil, 0, err
			}
		}
	}
	return batches, maxSeg, nil
}

// decodeSegment parses one segment's frame stream into complete batches.
// goodOff is the byte offset just past the last complete batch; tornErr
// reports why decoding stopped early (frame corruption, truncation, or
// trailing deltas with no commit), nil for a clean segment.
func decodeSegment(data []byte) (batches []*Batch, goodOff int, tornErr error) {
	var pending []DeltaRec
	off := 0
	b := data
	for len(b) > 0 {
		payload, rest, n, err := NextFrame(b)
		if err != nil {
			return batches, goodOff, err
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			return batches, goodOff, err
		}
		switch r := rec.(type) {
		case *DeltaRec:
			pending = append(pending, *r)
		case *CommitRec:
			batch := &Batch{Seq: r.Seq, Epoch: r.Epoch, Deltas: pending}
			for i := range batch.Deltas {
				if batch.Deltas[i].Seq != r.Seq {
					return batches, goodOff, fmt.Errorf(
						"wal: delta batch %d closed by commit %d", batch.Deltas[i].Seq, r.Seq)
				}
			}
			batches = append(batches, batch)
			pending = nil
			goodOff = off + n
		}
		b = rest
		off += n
	}
	if len(pending) > 0 {
		return batches, goodOff, fmt.Errorf("wal: %d delta records with no commit", len(pending))
	}
	return batches, goodOff, nil
}

// truncateSegment discards a torn tail, making the cut durable. A segment
// left empty is removed outright.
func truncateSegment(dir, path string, goodOff int64) error {
	if goodOff == 0 {
		if err := os.Remove(path); err != nil {
			return err
		}
		return syncDir(dir)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(goodOff); err != nil {
		return err
	}
	return f.Sync()
}
