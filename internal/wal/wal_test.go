package wal

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/algebra"
)

// tup builds a small mixed-kind tuple.
func tup(i int64) algebra.Tuple {
	return algebra.Tuple{
		algebra.NewInt(i),
		algebra.NewFloat(float64(i) * 1.5),
		algebra.NewString("row"),
		algebra.NewDate(i % 2556),
	}
}

func batch(seq int64, rel string, n int) *Batch {
	b := &Batch{Seq: seq, Epoch: seq * 2}
	ins := DeltaRec{Rel: rel}
	for i := 0; i < n; i++ {
		ins.Rows = append(ins.Rows, tup(seq*1000+int64(i)))
	}
	del := DeltaRec{Rel: rel, Del: true, Rows: []algebra.Tuple{tup(seq)}}
	b.Deltas = []DeltaRec{ins, del}
	return b
}

func TestRecordRoundTrip(t *testing.T) {
	rec := &DeltaRec{Seq: 7, Rel: "lineitem", Del: true, Rows: []algebra.Tuple{tup(1), tup(2)}}
	payload := EncodeDelta(rec)
	got, err := DecodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("delta round trip: got %+v want %+v", got, rec)
	}
	c := &CommitRec{Seq: 9, Epoch: 54}
	got, err = DecodeRecord(EncodeCommit(c))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("commit round trip: got %+v want %+v", got, c)
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	payload := EncodeDelta(&DeltaRec{Seq: 1, Rel: "orders", Rows: []algebra.Tuple{tup(1)}})
	framed := AppendFrame(nil, payload)
	// Bit flip anywhere must be caught by the checksum or the header checks.
	for i := 0; i < len(framed); i++ {
		bad := append([]byte(nil), framed...)
		bad[i] ^= 0x40
		if p, _, _, err := NextFrame(bad); err == nil {
			if _, derr := DecodeRecord(p); derr == nil {
				// Flipping a length-prefix bit can still yield a valid shorter
				// frame only if the checksum matches, which is astronomically
				// unlikely; treat it as a failure.
				t.Fatalf("bit flip at %d went undetected", i)
			}
		}
	}
	// Truncations must be errors, not panics.
	for i := 0; i < len(framed); i++ {
		if _, _, _, err := NextFrame(framed[:i]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", i)
		}
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, Options{Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Manifest != nil || len(rec.Batches) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	var want []*Batch
	for seq := int64(1); seq <= 5; seq++ {
		b := batch(seq, "orders", 3)
		if err := l.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
		want = append(want, b)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a post-crash scan: no manifest yet means fresh — so write one
	// anchoring replay at batch 0 first.
	if err := WriteManifest(dir, &Manifest{Snapshot: "", SnapshotBatch: 0, KeepFromSegment: 1}); err != nil {
		t.Fatal(err)
	}
	l2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec2.Batches) != len(want) {
		t.Fatalf("recovered %d batches, want %d", len(rec2.Batches), len(want))
	}
	for i, b := range rec2.Batches {
		if !reflect.DeepEqual(b, want[i]) {
			t.Fatalf("batch %d mismatch:\ngot  %+v\nwant %+v", i, b, want[i])
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(batch(1, "orders", 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(batch(2, "orders", 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(dir, &Manifest{SnapshotBatch: 0, KeepFromSegment: 1}); err != nil {
		t.Fatal(err)
	}

	// Tear the tail at every possible byte boundary of the second batch: the
	// first batch must always survive, the second must be gone whole.
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	batch1End := len(batch(1, "orders", 2).encode())
	for cut := batch1End + 1; cut < len(data); cut++ {
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, segName(1)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := WriteManifest(dir2, &Manifest{SnapshotBatch: 0, KeepFromSegment: 1}); err != nil {
			t.Fatal(err)
		}
		l2, rec, err := Open(dir2, Options{})
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(rec.Batches) != 1 || rec.Batches[0].Seq != 1 {
			t.Fatalf("cut at %d: recovered %d batches, want exactly batch 1", cut, len(rec.Batches))
		}
		// The torn segment is truncated durably: a second recovery sees the
		// same single batch.
		l2.Close()
		fixed, err := os.ReadFile(filepath.Join(dir2, segName(1)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fixed, data[:batch1End]) {
			t.Fatalf("cut at %d: truncated to %d bytes, want %d", cut, len(fixed), batch1End)
		}
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: true, CommitWindow: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, each = 8, 5
	var wg sync.WaitGroup
	var seqMu sync.Mutex
	seq := int64(0)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seqMu.Lock()
				seq++
				s := seq
				seqMu.Unlock()
				if err := l.AppendBatch(batch(s, "orders", 1)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != writers*each {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*each)
	}
	if st.Syncs >= st.Appends {
		t.Fatalf("group commit did not coalesce: %d syncs for %d appends", st.Syncs, st.Appends)
	}
}

func TestSegmentRotationAndScan(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of batches.
	l, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 20; seq++ {
		if err := l.AppendBatch(batch(seq, "lineitem", 4)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Rotations == 0 {
		t.Fatal("no rotations despite tiny segment size")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	batches, err := ScanBatches(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 20 {
		t.Fatalf("scanned %d batches, want 20", len(batches))
	}
	for i, b := range batches {
		if b.Seq != int64(i+1) {
			t.Fatalf("batch %d has seq %d", i, b.Seq)
		}
	}
}

func TestManifestRoundTripAndPrune(t *testing.T) {
	dir := t.TempDir()
	m, err := ReadManifest(dir)
	if err != nil || m != nil {
		t.Fatalf("empty dir manifest: %v %v", m, err)
	}
	sp := &Spill{Batch: 3, Epoch: 18, Rels: map[string][]algebra.Tuple{"orders": {tup(1)}},
		Mats: map[int][]algebra.Tuple{7: {tup(2)}}}
	name, err := WriteSpill(dir, sp)
	if err != nil {
		t.Fatal(err)
	}
	old, err := WriteSpill(dir, &Spill{Batch: 1, Rels: map[string][]algebra.Tuple{}, Mats: map[int][]algebra.Tuple{}})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(1); seq <= 3; seq++ {
		f, err := openSegment(dir, seq)
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	want := &Manifest{Snapshot: name, SnapshotBatch: 3, SnapshotEpoch: 18, KeepFromSegment: 3}
	if err := WriteManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("manifest: got %+v want %+v", got, want)
	}
	Prune(dir, got)
	for _, gone := range []string{segName(1), segName(2), old} {
		if _, err := os.Stat(filepath.Join(dir, gone)); !os.IsNotExist(err) {
			t.Fatalf("%s survived pruning", gone)
		}
	}
	for _, kept := range []string{segName(3), name, manifestName} {
		if _, err := os.Stat(filepath.Join(dir, kept)); err != nil {
			t.Fatalf("%s was pruned: %v", kept, err)
		}
	}
}

func TestSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sp := &Spill{
		Batch: 12, Epoch: 72,
		Rels: map[string][]algebra.Tuple{
			"orders":   {tup(1), tup(2), tup(3)},
			"lineitem": {},
		},
		Mats: map[int][]algebra.Tuple{4: {tup(9)}, 11: {}},
	}
	name, err := WriteSpill(dir, sp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpill(dir, name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Batch != sp.Batch || got.Epoch != sp.Epoch {
		t.Fatalf("header: got %d/%d want %d/%d", got.Batch, got.Epoch, sp.Batch, sp.Epoch)
	}
	if len(got.Rels) != len(sp.Rels) || len(got.Mats) != len(sp.Mats) {
		t.Fatalf("shape: got %d rels %d mats", len(got.Rels), len(got.Mats))
	}
	for n, rows := range sp.Rels {
		if !reflect.DeepEqual(got.Rels[n], rows) && !(len(rows) == 0 && len(got.Rels[n]) == 0) {
			t.Fatalf("relation %s mismatch", n)
		}
	}
	for id, rows := range sp.Mats {
		if !reflect.DeepEqual(got.Mats[id], rows) && !(len(rows) == 0 && len(got.Mats[id]) == 0) {
			t.Fatalf("mat %d mismatch", id)
		}
	}
	// A flipped byte anywhere in the file must fail verification.
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 32; i++ {
		bad := append([]byte(nil), data...)
		bad[rng.Intn(len(bad))] ^= 1 << uint(rng.Intn(8))
		if bytes.Equal(bad, data) {
			continue
		}
		if err := os.WriteFile(filepath.Join(dir, "bad.snap"), bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSpill(dir, "bad.snap"); err == nil {
			t.Fatal("corrupt spill loaded without error")
		}
	}
}

// Explicit rotation returns monotonically increasing segment sequences and
// lands on batch boundaries; appends and rotations after Close fail cleanly.
func TestExplicitRotateAndClosedLog(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Manifest != nil {
		t.Fatal("fresh dir has a manifest")
	}
	if l.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", l.Dir(), dir)
	}
	if err := l.AppendBatch(batch(1, "r", 3)); err != nil {
		t.Fatal(err)
	}
	s1, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(batch(2, "r", 3)); err != nil {
		t.Fatal(err)
	}
	s2, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if s2 <= s1 {
		t.Fatalf("rotation sequences not increasing: %d then %d", s1, s2)
	}
	if st := l.Stats(); st.Rotations < 2 {
		t.Fatalf("rotations = %d, want >= 2", st.Rotations)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(batch(3, "r", 1)); err == nil {
		t.Fatal("append accepted on closed log")
	}
	if _, err := l.Rotate(); err == nil {
		t.Fatal("rotate accepted on closed log")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Both batches survive, each in its own pre-rotation segment.
	got, err := ScanBatches(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("scan after rotations: %d batches", len(got))
	}
}

// Manifest decoding rejects garbage, wrong versions, and absolute snapshot
// paths rather than trusting the directory contents.
func TestManifestRejectsBadContents(t *testing.T) {
	dir := t.TempDir()
	write := func(body string) {
		if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("{not json")
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("garbage manifest accepted")
	}
	write(`{"version": 99, "snapshot": "snap-0000000000000001.snap"}`)
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("unknown manifest version accepted")
	}
}
