package wal

import (
	"bytes"
	"testing"

	"repro/internal/algebra"
)

// FuzzWALDecode drives arbitrary bytes through every WAL decoding surface —
// frame splitting, record decoding, tuple decoding, whole-segment scanning
// and spill-payload decoding. The decoder contract under corruption (torn
// writes, bit flips, truncation) is: return an error, never panic, never
// over-allocate, and never yield a record that a re-encode round-trip
// disagrees with. The checked-in corpus (testdata/fuzz/FuzzWALDecode) seeds
// valid streams, torn tails and flipped bytes.
func FuzzWALDecode(f *testing.F) {
	valid := (&Batch{Seq: 3, Epoch: 6, Deltas: []DeltaRec{
		{Rel: "orders", Rows: []algebra.Tuple{{algebra.NewInt(1), algebra.NewString("x")}}},
		{Rel: "orders", Del: true, Rows: []algebra.Tuple{{algebra.NewInt(2), algebra.NewString("y")}}},
	}}).encode()
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(EncodeCommit(&CommitRec{Seq: 1, Epoch: 2}))
	f.Add(encodeSpill(&Spill{Batch: 1, Epoch: 2,
		Rels: map[string][]algebra.Tuple{"r": {{algebra.NewFloat(1.5)}}},
		Mats: map[int][]algebra.Tuple{3: {{algebra.NewDate(9)}}}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Frame stream: decode as far as the data is well-formed.
		b := data
		for len(b) > 0 {
			payload, rest, _, err := NextFrame(b)
			if err != nil {
				break
			}
			if rec, err := DecodeRecord(payload); err == nil {
				checkReencode(t, rec)
			}
			b = rest
		}
		// Raw payload surfaces.
		if rec, err := DecodeRecord(data); err == nil {
			checkReencode(t, rec)
		}
		if tup, _, err := DecodeTuple(data); err == nil {
			// The re-encoding of a decoded tuple must itself re-encode to the
			// same bytes (byte comparison, not DeepEqual — NaN floats decode
			// legitimately but are never equal to themselves).
			enc := AppendTuple(nil, tup)
			again, rest2, err := DecodeTuple(enc)
			if err != nil || len(rest2) != 0 || !bytes.Equal(AppendTuple(nil, again), enc) {
				t.Fatalf("tuple re-encode mismatch: %v %v", tup, err)
			}
		}
		_, _, _ = decodeSegment(data)
		_, _ = decodeSpill(data)
	})
}

// checkReencode asserts the decoded record survives an encode/decode cycle
// unchanged (the encoding is canonical for everything the decoder accepts
// except over-long varints, which re-encoding normalizes).
func checkReencode(t *testing.T, rec interface{}) {
	t.Helper()
	var payload []byte
	switch r := rec.(type) {
	case *DeltaRec:
		payload = EncodeDelta(r)
	case *CommitRec:
		payload = EncodeCommit(r)
	default:
		t.Fatalf("unknown record type %T", rec)
	}
	again, err := DecodeRecord(payload)
	if err != nil {
		t.Fatalf("re-encoded record does not decode: %v", err)
	}
	var payload2 []byte
	switch r := again.(type) {
	case *DeltaRec:
		payload2 = EncodeDelta(r)
	case *CommitRec:
		payload2 = EncodeCommit(r)
	}
	// Byte comparison, not DeepEqual: NaN row values decode legitimately but
	// compare unequal to themselves.
	if !bytes.Equal(payload2, payload) {
		t.Fatalf("re-encode mismatch:\ngot  %+v\nwant %+v", again, rec)
	}
}
