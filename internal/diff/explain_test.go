package diff

import (
	"strings"
	"testing"
)

func TestExplainDifferentialPlans(t *testing.T) {
	en, root := engine(t, 5)
	ev := en.NewEval(rootMat(en, root))
	out := ev.ExplainAll(root)
	if !strings.Contains(out, "δ+orders") || !strings.Contains(out, "δ−orders") {
		t.Errorf("insert and delete differentials should render:\n%s", out)
	}
	if !strings.Contains(out, "join") {
		t.Errorf("join operations should render:\n%s", out)
	}
	if !strings.Contains(out, "full:") {
		t.Errorf("full inputs should render:\n%s", out)
	}
	if !strings.Contains(out, "rows=") || !strings.Contains(out, "cost=") {
		t.Errorf("estimates should render:\n%s", out)
	}
}

func TestExplainEmptyAndReused(t *testing.T) {
	en, root := engine(t, 5)
	var oc int
	for _, e := range en.D.Equivs {
		if len(e.Tables) == 2 && e.DependsOn("orders") && e.DependsOn("customer") {
			oc = e.ID
		}
	}
	ms := rootMat(en, root)
	ms.Diffs[DiffKey{EquivID: oc, Update: 1}] = true
	ev := en.NewEval(ms)

	// Non-dependent differential renders as empty.
	ocEq := en.D.Equivs[oc]
	empty := ev.DiffPlan(ocEq, 5) // nation insert: independent
	if out := Explain(empty, en.U); !strings.Contains(out, "∅") {
		t.Errorf("empty differential should render as ∅: %s", out)
	}
	// Reused differential renders as reuse.
	reused := ev.DiffAccess(ocEq, 1)
	if out := Explain(reused, en.U); !strings.Contains(out, "reuse materialized δ") {
		t.Errorf("reused differential should render: %s", out)
	}
}
