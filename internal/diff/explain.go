package diff

import (
	"fmt"
	"strings"

	"repro/internal/dag"
	"repro/internal/volcano"
)

// Explain renders a differential plan as an indented tree. Differential
// inputs recurse as differential plans; full inputs render via the volcano
// explainer, indented under a "full:" marker.
func Explain(p *DiffPlan, u *UpdateSpec) string {
	var b strings.Builder
	explainDiff(&b, p, u, "")
	return b.String()
}

func explainDiff(b *strings.Builder, p *DiffPlan, u *UpdateSpec, prefix string) {
	switch {
	case p == nil:
		fmt.Fprintf(b, "%s<nil>\n", prefix)
		return
	case p.Empty:
		reason := "independent"
		if p.FKPruned {
			reason = "foreign-key pruned"
		}
		fmt.Fprintf(b, "%sδ%s(e%d) = ∅  (%s)\n", prefix, updName(u, p.Update), p.E.ID, reason)
		return
	case p.Reused:
		fmt.Fprintf(b, "%sreuse materialized δ%s(e%d)  rows=%.0f cost=%.3f\n",
			prefix, updName(u, p.Update), p.E.ID, p.Rows, p.Cost)
		return
	}
	desc := p.Op.Kind.String()
	if p.Op.Kind == dag.OpJoin {
		desc = fmt.Sprintf("%s join [%s]", p.Algo, p.Op.Pred.String())
	}
	fmt.Fprintf(b, "%sδ%s(e%d) via %s  rows=%.0f cost=%.3f\n",
		prefix, updName(u, p.Update), p.E.ID, desc, p.Rows, p.Cost)
	for _, c := range p.DiffChildren {
		explainDiff(b, c, u, prefix+"  ")
	}
	for _, f := range p.FullInputs {
		sub := volcano.Explain(f)
		for _, line := range strings.Split(strings.TrimRight(sub, "\n"), "\n") {
			fmt.Fprintf(b, "%s  full: %s\n", prefix, line)
		}
	}
}

func updName(u *UpdateSpec, i int) string {
	if i < 1 || i > u.N() {
		return fmt.Sprintf("?%d", i)
	}
	sign := "+"
	if !u.IsInsert(i) {
		sign = "−"
	}
	return sign + u.Table(i)
}

// ExplainAll renders every non-empty differential plan of a node, one per
// update number — the complete maintenance strategy for that result.
func (ev *Eval) ExplainAll(e *dag.Equiv) string {
	var b strings.Builder
	for i := 1; i <= ev.En.U.N(); i++ {
		p := ev.DiffPlan(e, i)
		if p.Empty {
			continue
		}
		b.WriteString(Explain(p, ev.En.U))
	}
	return b.String()
}
