package diff

// Dependency-set surface for the concurrent refresh scheduler
// (internal/exec): it exposes which temporarily materialized differentials
// a chosen plan reads, so per-result differential computations can be
// topologically scheduled with shared results computed exactly once. The
// scheduler chases the transitive closure itself while building its task
// graph (one task per key, dependencies resolved via Eval.DiffPlan on each
// returned key).

// ReusedDeps appends to out the key of every temporarily materialized
// differential that executing p reads directly — the Reused leaves of the
// plan tree. It does not look through a reuse point into the reused
// differential's own compute plan.
func (p *DiffPlan) ReusedDeps(out []DiffKey) []DiffKey {
	if p == nil || p.Empty {
		return out
	}
	if p.Reused {
		return append(out, DiffKey{EquivID: p.E.ID, Update: p.Update})
	}
	for _, c := range p.DiffChildren {
		out = c.ReusedDeps(out)
	}
	return out
}
