package diff

import (
	"math"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/volcano"
)

// testCatalog: orders (100k) → customer (10k) → nation (25), with FKs.
func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	cat.AddTable(&catalog.Table{
		Name: "nation",
		Columns: []catalog.Column{
			{Name: "n_key", Type: catalog.Int, Width: 8},
			{Name: "n_region", Type: catalog.Int, Width: 8},
		},
		PrimaryKey: []string{"n_key"},
		Stats: catalog.TableStats{
			Rows: 25,
			Columns: map[string]catalog.ColumnStats{
				"n_key":    {Distinct: 25, Min: 1, Max: 25},
				"n_region": {Distinct: 5, Min: 1, Max: 5},
			},
		},
	})
	cat.AddTable(&catalog.Table{
		Name: "customer",
		Columns: []catalog.Column{
			{Name: "c_key", Type: catalog.Int, Width: 8},
			{Name: "c_nation", Type: catalog.Int, Width: 8},
			{Name: "c_acct", Type: catalog.Float, Width: 8},
		},
		PrimaryKey: []string{"c_key"},
		Stats: catalog.TableStats{
			Rows: 10000,
			Columns: map[string]catalog.ColumnStats{
				"c_key":    {Distinct: 10000, Min: 1, Max: 10000},
				"c_nation": {Distinct: 25, Min: 1, Max: 25},
				"c_acct":   {Distinct: 5000, Min: 0, Max: 10000},
			},
		},
	})
	cat.AddTable(&catalog.Table{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_key", Type: catalog.Int, Width: 8},
			{Name: "o_cust", Type: catalog.Int, Width: 8},
			{Name: "o_price", Type: catalog.Float, Width: 8},
		},
		PrimaryKey: []string{"o_key"},
		Stats: catalog.TableStats{
			Rows: 100000,
			Columns: map[string]catalog.ColumnStats{
				"o_key":   {Distinct: 100000, Min: 1, Max: 100000},
				"o_cust":  {Distinct: 10000, Min: 1, Max: 10000},
				"o_price": {Distinct: 10000, Min: 0, Max: 1000},
			},
		},
	})
	cat.AddForeignKey(catalog.ForeignKey{
		Table: "orders", Columns: []string{"o_cust"},
		RefTable: "customer", RefColumns: []string{"c_key"},
	})
	cat.AddForeignKey(catalog.ForeignKey{
		Table: "customer", Columns: []string{"c_nation"},
		RefTable: "nation", RefColumns: []string{"n_key"},
	})
	// The paper's default setup: primary-key indexes on every relation.
	for _, tb := range cat.Tables() {
		cat.AddIndex(catalog.Index{
			Name: "pk_" + tb, Table: tb,
			Columns: cat.MustTable(tb).PrimaryKey, Unique: true,
		})
	}
	return cat
}

func ordersView(cat *catalog.Catalog) algebra.Node {
	return algebra.NewJoin(algebra.And(algebra.Eq("customer.c_nation", "nation.n_key")),
		algebra.NewJoin(algebra.And(algebra.Eq("orders.o_cust", "customer.c_key")),
			algebra.NewScan(cat, "orders"), algebra.NewScan(cat, "customer")),
		algebra.NewScan(cat, "nation"))
}

func engine(t *testing.T, pct float64) (*Engine, *dag.Equiv) {
	t.Helper()
	cat := testCatalog()
	d := dag.New(cat)
	root := d.AddQuery("v", ordersView(cat))
	u := UniformPercent(cat, []string{"orders", "customer", "nation"}, pct)
	return NewEngine(d, cost.NewModel(cost.Default()), u), root
}

func rootMat(en *Engine, root *dag.Equiv) *MatState {
	ms := NewMatState()
	ms.Fulls.Full[root.ID] = true
	return ms
}

func TestUpdateNumbering(t *testing.T) {
	cat := testCatalog()
	u := UniformPercent(cat, []string{"orders", "customer"}, 10)
	if u.N() != 4 {
		t.Fatalf("N = %d", u.N())
	}
	if u.Table(1) != "orders" || !u.IsInsert(1) {
		t.Errorf("update 1 should be insert on orders")
	}
	if u.Table(2) != "orders" || u.IsInsert(2) {
		t.Errorf("update 2 should be delete on orders")
	}
	if u.Table(3) != "customer" || u.Table(4) != "customer" {
		t.Errorf("updates 3,4 should be on customer")
	}
	if u.Rows(1) != 10000 || u.Rows(2) != 5000 {
		t.Errorf("10%% of orders: ins=10000 del=5000, got %g %g", u.Rows(1), u.Rows(2))
	}
}

func TestStateRowsProgression(t *testing.T) {
	cat := testCatalog()
	u := UniformPercent(cat, []string{"orders", "customer"}, 10)
	s0 := u.StateRows(cat, 0)
	if s0["orders"] != 100000 {
		t.Errorf("state 0 unchanged")
	}
	s1 := u.StateRows(cat, 1)
	if s1["orders"] != 110000 {
		t.Errorf("after insert: %g", s1["orders"])
	}
	s2 := u.StateRows(cat, 2)
	if s2["orders"] != 105000 {
		t.Errorf("after delete: %g", s2["orders"])
	}
	if s2["customer"] != 10000 {
		t.Errorf("customer untouched at state 2")
	}
	s4 := u.StateRows(cat, 4)
	if s4["customer"] != 10500 {
		t.Errorf("final customer: %g", s4["customer"])
	}
}

func TestDiffPlanEmptyForIndependentRelation(t *testing.T) {
	en, root := engine(t, 10)
	ev := en.NewEval(rootMat(en, root))
	// Find the orders⋈customer node: independent of nation.
	var oc *dag.Equiv
	for _, e := range en.D.Equivs {
		if len(e.Tables) == 2 && e.DependsOn("orders") && e.DependsOn("customer") {
			oc = e
		}
	}
	// Update 5 = insert on nation.
	p := ev.DiffPlan(oc, 5)
	if !p.Empty {
		t.Errorf("δ(orders⋈customer) wrt nation insert should be empty")
	}
	if ev.DiffCost(oc, 5) != 0 {
		t.Errorf("empty differential costs nothing")
	}
}

// refreshCost mirrors the paper's cost(n, M) for a materialized view: the
// cheaper of recomputing+storing and incremental maintenance.
func refreshCost(en *Engine, ev *Eval, root *dag.Equiv) (recompute, maint float64) {
	recompute = ev.ComputeCost(root) +
		en.Model.WriteCost(en.FinalRows(root), dag.Width(root))
	return recompute, ev.MaintCost(root)
}

func TestDiffCheaperThanRecomputeAtLowUpdate(t *testing.T) {
	// The classic warehouse case: small appends to the fact table only.
	// Delta orders probe the PK indexes of customer and nation, so
	// incremental maintenance must beat recompute+store.
	cat := testCatalog()
	d := dag.New(cat)
	root := d.AddQuery("v", ordersView(cat))
	u := UniformPercent(cat, []string{"orders"}, 1)
	en := NewEngine(d, cost.NewModel(cost.Default()), u)
	ev := en.NewEval(rootMat(en, root))
	recompute, maint := refreshCost(en, ev, root)
	if maint >= recompute {
		t.Errorf("at 1%% fact updates incremental should win: maint=%g recompute=%g", maint, recompute)
	}
}

func TestRecomputeCompetitiveAtHighUpdate(t *testing.T) {
	en, root := engine(t, 80)
	ev := en.NewEval(rootMat(en, root))
	rec80, maint80 := refreshCost(en, ev, root)
	// At 80% updates the gap must close dramatically versus 1%.
	en1, root1 := engine(t, 1)
	ev1 := en1.NewEval(rootMat(en1, root1))
	rec1, maint1 := refreshCost(en1, ev1, root1)
	if maint80/rec80 <= maint1/rec1 {
		t.Errorf("maintenance/recompute ratio should grow with update %%: %g vs %g",
			maint80/rec80, maint1/rec1)
	}
}

func TestFKPruningInsertOnReferencedTable(t *testing.T) {
	en, root := engine(t, 10)
	ev := en.NewEval(rootMat(en, root))
	// Update 3 = insert on customer (orders is update 1/2, customer 3/4,
	// nation 5/6). Customer inserts propagate before orders? No: orders
	// first. orders.o_cust FK → customer.c_key. Inserts on customer (update
	// 3) joined with orders at state 2: orders' inserts were ALREADY applied
	// (update 1 < 3), so pruning must NOT fire for orders⋈customer.
	var oc *dag.Equiv
	for _, e := range en.D.Equivs {
		if len(e.Tables) == 2 && e.DependsOn("orders") && e.DependsOn("customer") {
			oc = e
		}
	}
	if p := ev.DiffPlan(oc, 3); p.Empty {
		t.Errorf("pruning unsound here: orders may already reference new customers")
	}
	// Update 5 = insert on nation, joined with customer whose inserts were
	// applied at update 3 < 5 → unsafe, not pruned. But in a spec where
	// nation comes FIRST, pruning of δ+nation ⋈ customer is sound.
	u2 := UniformPercent(en.D.Cat, []string{"nation", "customer", "orders"}, 10)
	en2 := NewEngine(en.D, en.Model, u2)
	ev2 := en2.NewEval(rootMat(en2, root))
	var cn *dag.Equiv
	for _, e := range en.D.Equivs {
		if len(e.Tables) == 2 && e.DependsOn("customer") && e.DependsOn("nation") {
			cn = e
		}
	}
	p := ev2.DiffPlan(cn, 1) // insert on nation, first update
	if !p.Empty || !p.FKPruned {
		t.Errorf("δ+nation ⋈ customer should be FK-pruned when nation goes first: %s", p)
	}
	// Deletes are never pruned.
	if p := ev2.DiffPlan(cn, 2); p.Empty {
		t.Errorf("deletes must not be FK-pruned")
	}
}

func TestDeltaRowsScaleWithUpdatePercent(t *testing.T) {
	en1, root1 := engine(t, 1)
	en10, root10 := engine(t, 10)
	r1 := en1.DeltaRows(root1, 1)
	r10 := en10.DeltaRows(root10, 1)
	if math.Abs(r10/r1-10) > 0.5 {
		t.Errorf("delta rows should scale ~linearly: %g vs %g", r1, r10)
	}
}

func TestMaterializedSubexpressionHelpsDiff(t *testing.T) {
	en, root := engine(t, 5)
	var oc *dag.Equiv
	for _, e := range en.D.Equivs {
		if len(e.Tables) == 2 && e.DependsOn("orders") && e.DependsOn("customer") {
			oc = e
		}
	}
	base := en.NewEval(rootMat(en, root))
	baseCost := base.TotalDiffCost(root)

	ms := rootMat(en, root)
	ms.Fulls.Full[oc.ID] = true
	with := en.NewEval(ms)
	withCost := with.TotalDiffCost(root)
	if withCost > baseCost+1e-9 {
		t.Errorf("materializing a subexpression must not hurt: %g vs %g", withCost, baseCost)
	}
}

func TestIndexEnablesCheapDiffJoin(t *testing.T) {
	en, root := engine(t, 1)
	ms := rootMat(en, root)
	noIx := en.NewEval(ms).TotalDiffCost(root)

	ms2 := rootMat(en, root)
	// Index orders on its join column: delta customers probe orders.
	var ordersEq *dag.Equiv
	for _, e := range en.D.Equivs {
		if e.IsTable && e.Tables[0] == "orders" {
			ordersEq = e
		}
	}
	ms2.Fulls.Indexes[volcano.IndexKey{EquivID: ordersEq.ID, Col: "orders.o_cust"}] = true
	withIx := en.NewEval(ms2).TotalDiffCost(root)
	if withIx >= noIx {
		t.Errorf("an index on orders.o_cust should cut differential cost: %g vs %g", withIx, noIx)
	}
}

func TestTemporaryDiffMaterializationReused(t *testing.T) {
	en, root := engine(t, 5)
	var oc *dag.Equiv
	for _, e := range en.D.Equivs {
		if len(e.Tables) == 2 && e.DependsOn("orders") && e.DependsOn("customer") {
			oc = e
		}
	}
	ms := rootMat(en, root)
	ms.Diffs[DiffKey{oc.ID, 1}] = true
	ev := en.NewEval(ms)
	access := ev.DiffAccess(oc, 1)
	plan := ev.DiffPlan(oc, 1)
	if !access.Reused {
		t.Errorf("materialized differential should be reused when cheaper")
	}
	if access.Cost >= plan.Cost {
		t.Errorf("reuse should be cheaper than recompute: %g vs %g", access.Cost, plan.Cost)
	}
}

func TestAggregateDiffNeedsMaterialization(t *testing.T) {
	cat := testCatalog()
	d := dag.New(cat)
	agg := algebra.NewAggregate(
		[]algebra.ColRef{algebra.C("customer.c_nation")},
		[]algebra.AggSpec{{Func: algebra.Sum, Col: algebra.C("orders.o_price")}, {Func: algebra.Count}},
		ordersView(cat).(*algebra.Join))
	root := d.AddQuery("v", agg)
	u := UniformPercent(cat, []string{"orders"}, 5)
	en := NewEngine(d, cost.NewModel(cost.Default()), u)

	// Root (aggregate) materialized: delta aggregation is cheap.
	msOn := NewMatState()
	msOn.Fulls.Full[root.ID] = true
	cheap := en.NewEval(msOn).DiffCost(root, 1)

	// Aggregate NOT materialized: affected groups must be recomputed.
	msOff := NewMatState()
	expensive := en.NewEval(msOff).DiffCost(root, 1)
	if cheap >= expensive {
		t.Errorf("unmaterialized aggregate differential should be expensive: %g vs %g",
			cheap, expensive)
	}
}

func TestMinMaxNotMaintainableUnderDeletes(t *testing.T) {
	cat := testCatalog()
	d := dag.New(cat)
	agg := algebra.NewAggregate(
		[]algebra.ColRef{algebra.C("customer.c_nation")},
		[]algebra.AggSpec{{Func: algebra.Max, Col: algebra.C("orders.o_price")}},
		ordersView(cat).(*algebra.Join))
	root := d.AddQuery("v", agg)
	u := UniformPercent(cat, []string{"orders"}, 5)
	en := NewEngine(d, cost.NewModel(cost.Default()), u)
	ms := NewMatState()
	ms.Fulls.Full[root.ID] = true
	ev := en.NewEval(ms)
	ins := ev.DiffPlan(root, 1) // insert: MAX maintainable
	del := ev.DiffPlan(root, 2) // delete: group recomputation
	if len(ins.FullInputs) != 0 {
		t.Errorf("MAX under inserts should maintain from delta alone")
	}
	if len(del.FullInputs) == 0 {
		t.Errorf("MAX under deletes requires the full input")
	}
}

func TestForkMatchesFreshEval(t *testing.T) {
	en, root := engine(t, 10)
	ms := rootMat(en, root)
	ev := en.NewEval(ms)
	// Warm the memos.
	_ = ev.MaintCost(root)
	_ = ev.ComputeCost(root)

	var oc *dag.Equiv
	for _, e := range en.D.Equivs {
		if len(e.Tables) == 2 && e.DependsOn("orders") && e.DependsOn("customer") {
			oc = e
		}
	}
	changes := []Change{
		{Kind: ChangeFull, EquivID: oc.ID},
		{Kind: ChangeDiff, EquivID: oc.ID, Update: 1},
		{Kind: ChangeIndex, EquivID: oc.ID, Col: "customer.c_nation"},
	}
	for _, ch := range changes {
		forked := ev.Fork(ch)
		ms2 := ms.Clone()
		ch.Apply(ms2)
		fresh := en.NewEval(ms2)
		for _, e := range en.D.Equivs {
			for i := 1; i <= en.U.N(); i++ {
				a, b := forked.DiffCost(e, i), fresh.DiffCost(e, i)
				if math.Abs(a-b) > 1e-9*(1+math.Abs(b)) {
					t.Fatalf("fork mismatch (change %v) on e%d update %d: %g vs %g",
						ch, e.ID, i, a, b)
				}
			}
			fa := forked.FullPlanAt(e, en.FinalState()).CumCost
			fb := fresh.FullPlanAt(e, en.FinalState()).CumCost
			if math.Abs(fa-fb) > 1e-9*(1+math.Abs(fb)) {
				t.Fatalf("fork full-cost mismatch (change %v) on e%d: %g vs %g", ch, e.ID, fa, fb)
			}
		}
	}
}

func TestMergeCostIndexedCheaper(t *testing.T) {
	en, root := engine(t, 5)
	ms := rootMat(en, root)
	plain := en.NewEval(ms).MergeCost(root)
	ms2 := rootMat(en, root)
	ms2.Fulls.Indexes[volcano.IndexKey{EquivID: root.ID, Col: "orders.o_key"}] = true
	indexed := en.NewEval(ms2).MergeCost(root)
	if indexed >= plain {
		t.Errorf("indexed merge should be cheaper: %g vs %g", indexed, plain)
	}
}

func TestTotalDeltaRows(t *testing.T) {
	cat := testCatalog()
	u := UniformPercent(cat, []string{"orders"}, 10)
	want := 10000.0 + 5000.0
	if got := u.TotalDeltaRows(); math.Abs(got-want) > 1 {
		t.Errorf("TotalDeltaRows = %g, want %g", got, want)
	}
}

func TestAncestorsOf(t *testing.T) {
	en, root := engine(t, 5)
	var ordersEq *dag.Equiv
	for _, e := range en.D.Equivs {
		if e.IsTable && e.Tables[0] == "orders" {
			ordersEq = e
		}
	}
	anc := en.AncestorsOf(ordersEq.ID)
	found := false
	for _, id := range anc {
		if id == root.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("root must be an ancestor of the orders leaf")
	}
	if len(en.AncestorsOf(root.ID)) != 0 {
		t.Errorf("root has no ancestors")
	}
}
