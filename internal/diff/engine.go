package diff

import (
	"fmt"
	"math"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/storage"
	"repro/internal/volcano"
)

// DiffKey identifies one differential result: δ(equiv, update number).
type DiffKey struct {
	EquivID int
	Update  int
}

// MatState is the full materialization state: full results and indexes
// (volcano.MatSet) plus temporarily materialized differentials.
type MatState struct {
	Fulls *volcano.MatSet
	Diffs map[DiffKey]bool
}

// NewMatState returns an empty state.
func NewMatState() *MatState {
	return &MatState{Fulls: volcano.NewMatSet(), Diffs: make(map[DiffKey]bool)}
}

// Clone deep-copies the state.
func (ms *MatState) Clone() *MatState {
	out := &MatState{Fulls: ms.Fulls.Clone(), Diffs: make(map[DiffKey]bool, len(ms.Diffs))}
	for k, v := range ms.Diffs {
		out.Diffs[k] = v
	}
	return out
}

// Engine holds everything fixed across materialization choices: the DAG, the
// cost model, the update spec, and one Sizer per cardinality state — 2n+1
// "prefix" states (full results after updates 1..k) plus one delta state per
// update number (the updated relation replaced by its δ).
type Engine struct {
	D     *dag.DAG
	Model *cost.Model
	Opt   *volcano.Optimizer
	U     *UpdateSpec

	szState []*dag.Sizer // index 0..2n
	szDelta []*dag.Sizer // index 1..2n; [0] unused

	ancCache map[int][]int
	// finalRows memoizes FinalRows by equivalence-node ID; filled during
	// construction so lookups are an index, not a map probe.
	finalRows []float64
}

// Corrections supplies observed cardinalities that take precedence over the
// histogram-based estimates when pricing plans. internal/feedback.Store
// satisfies it; the interface lives here so the diff layer stays free of a
// feedback dependency.
type Corrections interface {
	// FullRows returns the observed full-result cardinality for a canonical
	// DAG key.
	FullRows(key string) (float64, bool)
	// DeltaRows returns the observed differential cardinality for a
	// canonical DAG key under an update of the given table and sign.
	DeltaRows(key, table string, insert bool) (float64, bool)
}

// NewEngine precomputes the per-state sizers. Every sizer memo and the
// ancestor cache are fully prewarmed here: after construction the engine is
// immutable, which is what lets the greedy heuristic evaluate candidate
// benefits concurrently against a shared engine.
func NewEngine(d *dag.DAG, model *cost.Model, u *UpdateSpec) *Engine {
	return NewEngineObserved(d, model, u, nil)
}

// NewEngineObserved is NewEngine with a feedback correction layer: every full
// state sizer consults corr.FullRows and every delta sizer corr.DeltaRows
// before falling back to the histogram estimate. Corrections are frozen into
// the sizer memos during prewarming, so the engine stays immutable (and the
// greedy heuristic concurrency-safe) even while the store keeps absorbing
// observations. A nil corr is exactly NewEngine — estimates byte-identical
// to the static path.
//
// Observed full cardinalities are applied to all 2n+1 prefix states: the
// states differ only by the in-flight update deltas, which are small against
// the base, and one honest observed count beats 2n+1 slightly-different
// wrong estimates.
func NewEngineObserved(d *dag.DAG, model *cost.Model, u *UpdateSpec, corr Corrections) *Engine {
	opt := volcano.New(d, model)
	en := &Engine{
		D: d, Model: model, Opt: opt, U: u,
		szState:  make([]*dag.Sizer, u.N()+1),
		szDelta:  make([]*dag.Sizer, u.N()+1),
		ancCache: make(map[int][]int),
	}
	var obsFull func(e *dag.Equiv) (float64, bool)
	if corr != nil {
		obsFull = func(e *dag.Equiv) (float64, bool) { return corr.FullRows(e.Key) }
	}
	for k := 0; k <= u.N(); k++ {
		sz := dag.NewSizer(opt.Est, u.StateRows(d.Cat, k))
		sz.Obs = obsFull
		en.szState[k] = sz
	}
	for i := 1; i <= u.N(); i++ {
		eff := u.StateRows(d.Cat, i-1)
		eff[u.Table(i)] = u.Rows(i)
		sz := dag.NewSizer(opt.Est, eff)
		if corr != nil {
			table, insert := u.Table(i), u.IsInsert(i)
			sz.Obs = func(e *dag.Equiv) (float64, bool) {
				return corr.DeltaRows(e.Key, table, insert)
			}
		}
		en.szDelta[i] = sz
	}
	en.finalRows = make([]float64, len(d.Equivs))
	final := en.FinalState()
	for _, e := range d.Equivs {
		for k := 0; k <= u.N(); k++ {
			en.szState[k].Rows(e)
		}
		for i := 1; i <= u.N(); i++ {
			en.szDelta[i].Rows(e)
		}
		en.finalRows[e.ID] = en.szState[final].Rows(e)
		en.AncestorsOf(e.ID)
	}
	return en
}

// FinalState returns the last update state number (2n).
func (en *Engine) FinalState() int { return en.U.N() }

// DeltaRows estimates |δ(e, i)| independent of materialization choices.
func (en *Engine) DeltaRows(e *dag.Equiv, i int) float64 {
	if !e.DependsOn(en.U.Table(i)) {
		return 0
	}
	return en.szDelta[i].Rows(e)
}

// FinalRows estimates the full result size of e after all updates
// (memoized at construction).
func (en *Engine) FinalRows(e *dag.Equiv) float64 {
	return en.finalRows[e.ID]
}

// AncestorsOf returns the IDs of all strict ancestors of the node (every
// node reachable via Parents), cached. Used by the incremental cost update.
func (en *Engine) AncestorsOf(id int) []int {
	if a, ok := en.ancCache[id]; ok {
		return a
	}
	seen := map[int]bool{}
	var stack []*dag.Equiv
	start := en.D.Equivs[id]
	for _, p := range start.Parents {
		stack = append(stack, p.Parent)
	}
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[e.ID] {
			continue
		}
		seen[e.ID] = true
		for _, p := range e.Parents {
			stack = append(stack, p.Parent)
		}
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	en.ancCache[id] = out
	return out
}

// ---------------------------------------------------------------------------

// DiffPlan is the chosen plan for one differential result δ(E, Update).
type DiffPlan struct {
	E      *dag.Equiv
	Update int
	// Empty marks differentials known to be empty: the node does not depend
	// on the updated relation, or foreign-key pruning applies (paper §5.3).
	Empty bool
	// Reused marks access plans that read a temporarily materialized
	// differential instead of computing it.
	Reused bool
	Op     *dag.Op
	Algo   volcano.Algo
	// DiffChildren are the differential inputs (at most one for joins, up to
	// two for union/minus).
	DiffChildren []*DiffPlan
	// FullInputs are access plans for full inputs required alongside the
	// differentials (the paper's fullChildren), costed at the pre-update
	// state.
	FullInputs []*volcano.PlanNode
	Rows, Cost float64
	// FKPruned records that emptiness came from a foreign-key argument.
	FKPruned bool
}

// String renders a compact description.
func (p *DiffPlan) String() string {
	switch {
	case p == nil:
		return "<nil>"
	case p.Empty && p.FKPruned:
		return fmt.Sprintf("δ%d(e%d)=∅ (fk)", p.Update, p.E.ID)
	case p.Empty:
		return fmt.Sprintf("δ%d(e%d)=∅", p.Update, p.E.ID)
	case p.Reused:
		return fmt.Sprintf("reuse δ%d(e%d)", p.Update, p.E.ID)
	default:
		return fmt.Sprintf("δ%d(e%d) via %s [%.3gs]", p.Update, p.E.ID, p.Op.Kind, p.Cost)
	}
}

// ---------------------------------------------------------------------------

// Eval evaluates plan costs under one fixed MatState, memoizing full plans
// per state and differential plans per (node, update). Evals are forked by
// the greedy heuristic's incremental cost update (paper §6.2), carrying over
// memo entries whose costs provably cannot change.
type Eval struct {
	En *Engine
	MS *MatState

	// Par is the partition-parallel execution configuration carried with
	// the evaluation state: the plan chooser itself is unaffected (plans
	// are identical at any partition count, like their results), but the
	// runtime layer that executes the chosen plans — exec.Executor and
	// exec.Maintainer — inherits it from here, and the adaptation pipeline
	// copies it onto every re-selected Eval so a hot swap never loses the
	// configured parallelism.
	Par storage.Par

	// fullMemo holds one plan memo per update state, created lazily.
	fullMemo []*volcano.Memo
	// diffMemo is a flat (update, equiv) → plan cache: index
	// (update-1)*len(D.Equivs) + equivID. Slice-backed for the same reason
	// as volcano.Memo: Fork copies it per benefit evaluation.
	diffMemo []*DiffPlan
}

// NewEval creates an evaluation context for a materialization state.
func (en *Engine) NewEval(ms *MatState) *Eval {
	return &Eval{
		En:       en,
		MS:       ms,
		Par:      storage.DefaultPar(),
		fullMemo: make([]*volcano.Memo, en.U.N()+1),
		diffMemo: make([]*DiffPlan, en.U.N()*len(en.D.Equivs)),
	}
}

// stateMemo returns (creating on demand) the full-plan memo for state k.
func (ev *Eval) stateMemo(k int) *volcano.Memo {
	if ev.fullMemo[k] == nil {
		ev.fullMemo[k] = ev.En.Opt.NewMemo()
	}
	return ev.fullMemo[k]
}

// FullPlanAt returns the best access plan (compute or reuse) for the full
// result of e at update state k.
func (ev *Eval) FullPlanAt(e *dag.Equiv, k int) *volcano.PlanNode {
	return ev.En.Opt.Best(e, ev.MS.Fulls, ev.En.szState[k], ev.stateMemo(k))
}

// ComputeCost is the paper's compcost(e, M): cheapest way to actually
// compute e at the final state, reusing materialized descendants but not e's
// own copy.
func (ev *Eval) ComputeCost(e *dag.Equiv) float64 {
	k := ev.En.FinalState()
	return ev.En.Opt.BestCompute(e, ev.MS.Fulls, ev.En.szState[k], ev.stateMemo(k)).CumCost
}

// ComputePlan is the plan behind ComputeCost.
func (ev *Eval) ComputePlan(e *dag.Equiv) *volcano.PlanNode {
	k := ev.En.FinalState()
	return ev.En.Opt.BestCompute(e, ev.MS.Fulls, ev.En.szState[k], ev.stateMemo(k))
}

// DiffPlan returns the cheapest plan that computes δ(e, i) — the paper's
// diffCost(e, M, i); reuse of e's own materialized differential is handled
// at consumers (DiffAccess), matching the paper's definition.
func (ev *Eval) DiffPlan(e *dag.Equiv, i int) *DiffPlan {
	idx := (i-1)*len(ev.En.D.Equivs) + e.ID
	if p := ev.diffMemo[idx]; p != nil {
		return p
	}
	var out *DiffPlan
	if !e.DependsOn(ev.En.U.Table(i)) {
		out = &DiffPlan{E: e, Update: i, Empty: true}
	} else {
		for _, op := range e.Ops {
			p := ev.diffOp(e, op, i)
			if p == nil {
				continue
			}
			if out == nil || p.Cost < out.Cost || (p.Empty && !out.Empty) {
				out = p
			}
			if p.Empty {
				out = p
				break // an empty differential is unbeatable
			}
		}
		if out == nil {
			panic(fmt.Sprintf("diff: no differential plan for %s update %d", e, i))
		}
	}
	ev.diffMemo[idx] = out
	return out
}

// DiffAccess returns the cheapest way for a consumer to obtain δ(e, i):
// the minimum of recomputation and reading a temporarily materialized copy
// (the paper's C(e, M, i)).
func (ev *Eval) DiffAccess(e *dag.Equiv, i int) *DiffPlan {
	p := ev.DiffPlan(e, i)
	if p.Empty || !ev.MS.Diffs[DiffKey{e.ID, i}] {
		return p
	}
	reuse := ev.En.Model.ReadCost(p.Rows, dag.Width(e))
	if reuse < p.Cost {
		return &DiffPlan{E: e, Update: i, Reused: true, Rows: p.Rows, Cost: reuse}
	}
	return p
}

// DiffCost is diffCost(e, M, i); zero for empty differentials.
func (ev *Eval) DiffCost(e *dag.Equiv, i int) float64 {
	return ev.DiffPlan(e, i).Cost
}

// TotalDiffCost is Σ_i C(e, M, i) over all update numbers: the cost of
// producing every differential of e during one refresh cycle, reading
// temporarily materialized copies where available.
func (ev *Eval) TotalDiffCost(e *dag.Equiv) float64 {
	total := 0.0
	for i := 1; i <= ev.En.U.N(); i++ {
		total += ev.DiffAccess(e, i).Cost
	}
	return total
}

// MergeCost prices folding all of e's differentials into its stored result
// (paper §6.1's mergeCost(n)): per-probe with an index on the stored copy,
// scan-and-rewrite without.
func (ev *Eval) MergeCost(e *dag.Equiv) float64 {
	totalDelta := 0.0
	for i := 1; i <= ev.En.U.N(); i++ {
		totalDelta += ev.DiffPlan(e, i).Rows
	}
	indexed := false
	for k := range ev.MS.Fulls.Indexes {
		if k.EquivID == e.ID {
			indexed = true
			break
		}
	}
	return ev.En.Model.MergeCost(totalDelta, ev.En.FinalRows(e), dag.Width(e), indexed)
}

// MaintCost is the paper's maintcost(n, M): total differential cost plus the
// merge into the stored result.
func (ev *Eval) MaintCost(e *dag.Equiv) float64 {
	return ev.TotalDiffCost(e) + ev.MergeCost(e)
}

// diffOp costs δ(op, i) for a single operation alternative.
func (ev *Eval) diffOp(e *dag.Equiv, op *dag.Op, i int) *DiffPlan {
	en := ev.En
	m := en.Model
	u := en.U
	T := u.Table(i)
	szd := en.szDelta[i]
	pre := i - 1
	outRows := szd.Rows(e)
	width := dag.Width(e)

	empty := func(fk bool) *DiffPlan {
		return &DiffPlan{E: e, Update: i, Empty: true, FKPruned: fk, Op: op}
	}

	switch op.Kind {
	case dag.OpScan:
		rows := u.Rows(i)
		return &DiffPlan{
			E: e, Update: i, Op: op,
			Rows: rows, Cost: m.ScanCost(rows, width),
		}

	case dag.OpSelect, dag.OpProject:
		child := op.Children[0]
		dc := ev.DiffAccess(child, i)
		if dc.Empty {
			return empty(dc.FKPruned)
		}
		local := m.SelectCost(dc.Rows)
		return &DiffPlan{
			E: e, Update: i, Op: op,
			DiffChildren: []*DiffPlan{dc},
			Rows:         outRows, Cost: local + dc.Cost,
		}

	case dag.OpJoin:
		l, r := op.Children[0], op.Children[1]
		dep, oth := l, r
		if !dep.DependsOn(T) {
			dep, oth = r, l
		}
		if oth.DependsOn(T) {
			// Both inputs depend on T ⇒ T appears twice in the expression,
			// which the DAG's no-self-join rule excludes.
			panic("diff: join with the updated relation on both sides")
		}
		if u.IsInsert(i) && ev.fkPruned(op, dep, oth, T, i) {
			return empty(true)
		}
		dc := ev.DiffAccess(dep, i)
		if dc.Empty {
			return empty(dc.FKPruned)
		}
		othRows := en.szState[pre].Rows(oth)
		othW := dag.Width(oth)

		full := ev.FullPlanAt(oth, pre)
		best := &DiffPlan{
			E: e, Update: i, Op: op, Algo: volcano.AlgoHash,
			DiffChildren: []*DiffPlan{dc},
			FullInputs:   []*volcano.PlanNode{full},
			Rows:         outRows,
			Cost: m.HashJoinCost(dc.Rows, dag.Width(dep), othRows, othW, outRows) +
				dc.Cost + full.CumCost,
		}
		// Index nested loops into the stored full input: the differential is
		// usually tiny, so probing beats scanning — this is what makes
		// indexes so valuable for maintenance (paper §7.2).
		if col := op.InnerJoinCol(oth); col != "" &&
			(oth.IsTable || ev.MS.Fulls.Has(oth)) &&
			ev.MS.Fulls.HasIndex(en.D.Cat, oth, col) {
			inl := &DiffPlan{
				E: e, Update: i, Op: op, Algo: volcano.AlgoINL,
				DiffChildren: []*DiffPlan{dc},
				Rows:         outRows,
				Cost:         m.IndexJoinCost(dc.Rows, othRows, othW, outRows) + dc.Cost,
			}
			if inl.Cost < best.Cost {
				best = inl
			}
		}
		return best

	case dag.OpAggregate, dag.OpDedup:
		child := op.Children[0]
		dc := ev.DiffAccess(child, i)
		if dc.Empty {
			return empty(dc.FKPruned)
		}
		maintainable := ev.MS.Fulls.Has(e) && (u.IsInsert(i) || distributiveAggs(op))
		if maintainable {
			// Aggregate the delta input and rely on the stored result for the
			// merge (paper §3.1.2); the merge itself is priced by MergeCost.
			local := m.AggCost(dc.Rows, dag.Width(child), outRows, width)
			return &DiffPlan{
				E: e, Update: i, Op: op,
				DiffChildren: []*DiffPlan{dc},
				Rows:         outRows, Cost: local + dc.Cost,
			}
		}
		// Not materialized (or non-distributive under deletes): recompute the
		// aggregate values of affected groups from the full input — the
		// "significant extra work" of §3.1.2.
		full := ev.FullPlanAt(child, i)
		inRows := en.szState[i].Rows(child)
		local := m.AggCost(inRows, dag.Width(child), en.szState[i].Rows(e), width)
		return &DiffPlan{
			E: e, Update: i, Op: op,
			DiffChildren: []*DiffPlan{dc},
			FullInputs:   []*volcano.PlanNode{full},
			Rows:         math.Min(2*dc.Rows, en.szState[i].Rows(e)),
			Cost:         dc.Cost + full.CumCost + local,
		}

	case dag.OpUnion:
		l, r := op.Children[0], op.Children[1]
		var kids []*DiffPlan
		rows, sum := 0.0, 0.0
		for _, c := range []*dag.Equiv{l, r} {
			if !c.DependsOn(T) {
				continue
			}
			dc := ev.DiffAccess(c, i)
			if dc.Empty {
				continue
			}
			kids = append(kids, dc)
			rows += dc.Rows
			sum += dc.Cost
		}
		if len(kids) == 0 {
			return empty(false)
		}
		return &DiffPlan{
			E: e, Update: i, Op: op,
			DiffChildren: kids,
			Rows:         rows, Cost: m.UnionCost(rows) + sum,
		}

	case dag.OpMinus:
		// δ(L − R) needs both differentials and both full inputs [GL95].
		l, r := op.Children[0], op.Children[1]
		var kids []*DiffPlan
		sum, rows := 0.0, 0.0
		for _, c := range []*dag.Equiv{l, r} {
			if !c.DependsOn(T) {
				continue
			}
			dc := ev.DiffAccess(c, i)
			if dc.Empty {
				continue
			}
			kids = append(kids, dc)
			sum += dc.Cost
			rows += dc.Rows
		}
		if len(kids) == 0 {
			return empty(false)
		}
		fl := ev.FullPlanAt(l, pre)
		fr := ev.FullPlanAt(r, pre)
		local := m.MinusCost(en.szState[pre].Rows(l), en.szState[pre].Rows(r), width)
		return &DiffPlan{
			E: e, Update: i, Op: op,
			DiffChildren: kids,
			FullInputs:   []*volcano.PlanNode{fl, fr},
			Rows:         rows,
			Cost:         sum + fl.CumCost + fr.CumCost + local,
		}

	default:
		panic("diff: unexpected op kind " + op.Kind.String())
	}
}

// distributiveAggs reports whether every aggregate of the operation can be
// maintained under deletions from the old value and the delta alone.
func distributiveAggs(op *dag.Op) bool {
	if op.Kind == dag.OpDedup {
		return true // dedup maintains a count per distinct tuple
	}
	for _, a := range op.Aggs {
		if !a.Func.Distributive() {
			return false
		}
	}
	return true
}

// fkPruned implements the foreign-key emptiness argument of §5.3: the
// differential of dep ⋈ oth with respect to *inserts* on T is empty when the
// join equates a column of T with a foreign key into T from a relation U on
// the other side, provided U's own inserts have not yet been propagated
// (otherwise U could already hold rows referencing the new T tuples).
func (ev *Eval) fkPruned(op *dag.Op, dep, oth *dag.Equiv, T string, i int) bool {
	cat := ev.En.D.Cat
	for _, c := range op.Pred.Conjuncts {
		if c.Op != algebra.EQ {
			continue
		}
		lc, lok := c.L.(algebra.ColRef)
		rc, rok := c.R.(algebra.ColRef)
		if !lok || !rok {
			continue
		}
		var uCol algebra.ColRef
		switch {
		case lc.Rel == T && oth.Schema.Has(rc.QName()):
			uCol = rc
		case rc.Rel == T && oth.Schema.Has(lc.QName()):
			uCol = lc
		default:
			continue
		}
		if !cat.IsForeignKeyInto(uCol.Rel, uCol.Name, T) {
			continue
		}
		// Safe only if U's inserts have not been folded into U yet: then the
		// pre-state U cannot reference the brand-new T keys.
		insU := ev.En.U.InsertNumber(uCol.Rel)
		alreadyApplied := insU != 0 && insU < i && ev.En.U.Ins[uCol.Rel] > 0
		if !alreadyApplied {
			return true
		}
	}
	return false
}
