package diff

import "repro/internal/volcano"

// Change describes one hypothetical materialization decision for Fork.
type Change struct {
	// Kind selects which of the fields below applies.
	Kind ChangeKind
	// EquivID is the target node for full/diff/index changes.
	EquivID int
	// Update is the update number for ChangeDiff.
	Update int
	// Col is the indexed column for ChangeIndex.
	Col string
}

// ChangeKind enumerates materialization decisions.
type ChangeKind int

const (
	// ChangeFull materializes the full result of a node.
	ChangeFull ChangeKind = iota
	// ChangeDiff temporarily materializes one differential of a node.
	ChangeDiff
	// ChangeIndex adds an index on a stored result.
	ChangeIndex
)

// Apply mutates a MatState with the change.
func (c Change) Apply(ms *MatState) {
	switch c.Kind {
	case ChangeFull:
		ms.Fulls.Full[c.EquivID] = true
	case ChangeDiff:
		ms.Diffs[DiffKey{c.EquivID, c.Update}] = true
	case ChangeIndex:
		ms.Fulls.Indexes[volcano.IndexKey{EquivID: c.EquivID, Col: c.Col}] = true
	}
}

// Fork implements the paper's incremental cost update (§6.2, optimization 1):
// it builds an Eval for the state "ev.MS plus change", carrying over every
// memoized plan whose cost provably cannot change, so that re-costing after
// a hypothetical materialization touches only the ancestors of the changed
// node:
//
//   - materializing a full result invalidates the full-result plans of its
//     ancestors at every state *and* their differential plans for every
//     update (the full result may appear as a fullChild of any differential);
//     the node's own entries are invalidated too because consumers may now
//     reuse it and its aggregate differentials may become maintainable;
//   - materializing the differential of a node with respect to update i
//     invalidates only the ancestors' differential plans for update i;
//   - adding an index behaves like a full materialization of the indexed
//     node (it can switch join algorithms in any consumer, and the merge
//     cost of the node itself).
func (ev *Eval) Fork(change Change) *Eval {
	ms := ev.MS.Clone()
	change.Apply(ms)
	out := ev.En.NewEval(ms)
	out.Par = ev.Par
	nE := len(ev.En.D.Equivs)
	ancestors := ev.En.AncestorsOf(change.EquivID)
	copy(out.diffMemo, ev.diffMemo)

	switch change.Kind {
	case ChangeDiff:
		// Full plans are unaffected entirely.
		for k, m := range ev.fullMemo {
			if m != nil {
				out.fullMemo[k] = m.Clone()
			}
		}
		base := (change.Update - 1) * nE
		for _, a := range ancestors {
			out.diffMemo[base+a] = nil
		}
	default: // ChangeFull, ChangeIndex
		for k, m := range ev.fullMemo {
			if m == nil {
				continue
			}
			c := m.Clone()
			c.Delete(change.EquivID)
			for _, a := range ancestors {
				c.Delete(a)
			}
			out.fullMemo[k] = c
		}
		for i := 1; i <= ev.En.U.N(); i++ {
			base := (i - 1) * nE
			out.diffMemo[base+change.EquivID] = nil
			for _, a := range ancestors {
				out.diffMemo[base+a] = nil
			}
		}
	}
	return out
}
