// Package diff extends the AND-OR DAG optimizer to view maintenance (paper
// §5.2–§5.3). Updates are propagated one relation and one update type at a
// time, numbered 1..2n (odd = inserts, even = deletes, in relation order).
// For every equivalence node and every update number the package computes
// the differential's estimated cardinality and the cheapest plan to produce
// it — the paper's diffCost recurrence — including the choice between hash
// joins and index nested-loop probes into stored inputs, reuse of
// temporarily materialized differentials, and foreign-key emptiness pruning.
// The chosen plans also expose their reuse dependencies (deps.go), from
// which the refresh executor builds its concurrent task graph.
package diff

import (
	"fmt"

	"repro/internal/catalog"
)

// UpdateSpec describes the pending update batch: which relations are
// updated, in which order they are propagated, and how many tuples each δ+
// and δ− holds. Update numbers follow the paper: for relation k (0-based),
// update 2k+1 is its insert batch and 2k+2 its delete batch.
type UpdateSpec struct {
	Rels []string
	Ins  map[string]float64
	Del  map[string]float64
}

// NewUpdateSpec builds an empty spec over the given propagation order.
func NewUpdateSpec(rels []string) *UpdateSpec {
	return &UpdateSpec{
		Rels: append([]string(nil), rels...),
		Ins:  make(map[string]float64),
		Del:  make(map[string]float64),
	}
}

// UniformPercent configures the paper's benchmark update model (§7.1): every
// relation receives inserts of pct% of its current size and deletes of
// pct/2 % ("twice as many inserts as deletes, to model a growing database").
func UniformPercent(cat *catalog.Catalog, rels []string, pct float64) *UpdateSpec {
	u := NewUpdateSpec(rels)
	for _, r := range rels {
		rows := float64(cat.MustTable(r).Stats.Rows)
		u.Ins[r] = rows * pct / 100
		u.Del[r] = rows * pct / 200
	}
	return u
}

// N returns the number of update numbers (2n).
func (u *UpdateSpec) N() int { return 2 * len(u.Rels) }

// Table returns the relation updated by update number i (1-based).
func (u *UpdateSpec) Table(i int) string {
	if i < 1 || i > u.N() {
		panic(fmt.Sprintf("diff: update number %d out of range 1..%d", i, u.N()))
	}
	return u.Rels[(i-1)/2]
}

// IsInsert reports whether update number i is an insert batch.
func (u *UpdateSpec) IsInsert(i int) bool { return i%2 == 1 }

// Rows returns |δ| for update number i.
func (u *UpdateSpec) Rows(i int) float64 {
	t := u.Table(i)
	if u.IsInsert(i) {
		return u.Ins[t]
	}
	return u.Del[t]
}

// Has reports whether a relation is covered by the spec — i.e. whether the
// maintenance plans know how to propagate its deltas. The streaming
// admission check uses it to reject ops on unplanned relations.
func (u *UpdateSpec) Has(rel string) bool {
	for _, r := range u.Rels {
		if r == rel {
			return true
		}
	}
	return false
}

// InsertNumber returns the update number of the insert batch of a relation,
// or 0 if the relation is not in the spec.
func (u *UpdateSpec) InsertNumber(rel string) int {
	for k, r := range u.Rels {
		if r == rel {
			return 2*k + 1
		}
	}
	return 0
}

// StateRows returns the effective cardinality of every updated relation
// after updates 1..k have been applied (k=0 is the pre-update state, k=2n
// the final state). Relations outside the spec keep their catalog
// statistics; the caller's estimator falls back to those automatically.
func (u *UpdateSpec) StateRows(cat *catalog.Catalog, k int) map[string]float64 {
	if k < 0 || k > u.N() {
		panic(fmt.Sprintf("diff: state %d out of range 0..%d", k, u.N()))
	}
	eff := make(map[string]float64, len(u.Rels))
	for _, r := range u.Rels {
		eff[r] = float64(cat.MustTable(r).Stats.Rows)
	}
	for i := 1; i <= k; i++ {
		t := u.Table(i)
		if u.IsInsert(i) {
			eff[t] += u.Ins[t]
		} else {
			eff[t] -= u.Del[t]
			if eff[t] < 0 {
				eff[t] = 0
			}
		}
	}
	return eff
}

// TotalDeltaRows sums |δ| over all update numbers affecting relations the
// node depends on; used to price index maintenance.
func (u *UpdateSpec) TotalDeltaRows() float64 {
	total := 0.0
	for i := 1; i <= u.N(); i++ {
		total += u.Rows(i)
	}
	return total
}
