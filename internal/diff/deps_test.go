package diff

import (
	"testing"

	"repro/internal/dag"
)

// TestReusedDeps checks the dependency-set surface the refresh scheduler
// builds its task graph from: without temporarily materialized
// differentials no plan has reuse dependencies; with one marked and
// reused, it appears in the consumer's ReusedDeps, and every dependency in
// the transitive closure (built the way the scheduler builds it) is a
// strict descendant of its consumer in the AND-OR DAG.
func TestReusedDeps(t *testing.T) {
	en, root := engine(t, 10)

	// Baseline: no temporary differentials → no dependencies anywhere.
	ev := en.NewEval(rootMat(en, root))
	for _, e := range en.D.Equivs {
		for i := 1; i <= en.U.N(); i++ {
			if deps := ev.DiffPlan(e, i).ReusedDeps(nil); len(deps) != 0 {
				t.Fatalf("no differential is materialized, but δ%d(e%d) depends on %v",
					i, e.ID, deps)
			}
		}
	}

	// Mark the orders⋈customer differential of update 1 as temporarily
	// materialized: the cheapest plan for the root's differential should
	// now read it.
	var oc *dag.Equiv
	for _, e := range en.D.Equivs {
		if e.Ops[0].Kind == dag.OpJoin && len(e.Tables) == 2 &&
			e.DependsOn("orders") && e.DependsOn("customer") {
			oc = e
		}
	}
	if oc == nil {
		t.Fatal("orders⋈customer node missing")
	}
	key := DiffKey{EquivID: oc.ID, Update: 1}
	ms := rootMat(en, root)
	ms.Diffs[key] = true
	ev = en.NewEval(ms)

	deps := ev.DiffPlan(root, 1).ReusedDeps(nil)
	found := false
	for _, k := range deps {
		if k == key {
			found = true
		}
	}
	if !found {
		t.Fatalf("root differential deps %v do not include the marked %v", deps, key)
	}

	// Chase the transitive closure exactly as the scheduler does: resolve
	// each key's compute plan via DiffPlan and collect its own reuse leaves.
	set := map[DiffKey]bool{}
	queue := ev.DiffPlan(root, 1).ReusedDeps(nil)
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		if set[k] {
			continue
		}
		set[k] = true
		queue = append(queue, ev.DiffPlan(en.D.Equivs[k.EquivID], k.Update).ReusedDeps(nil)...)
	}
	if !set[key] {
		t.Fatalf("transitive closure %v misses %v", set, key)
	}
	for k := range set {
		dep := en.D.Equivs[k.EquivID]
		if k.EquivID == root.ID || !en.D.Reaches(root, dep) {
			t.Fatalf("dependency e%d is not a strict descendant of the root", k.EquivID)
		}
	}
}

// TestReusedDepsEmptyAndReusedPlans pins the leaf conventions: an empty
// plan contributes nothing, and a reuse access plan reports exactly its own
// key.
func TestReusedDepsEmptyAndReusedPlans(t *testing.T) {
	empty := &DiffPlan{Empty: true}
	if got := empty.ReusedDeps(nil); len(got) != 0 {
		t.Fatalf("empty plan deps = %v", got)
	}
	en, root := engine(t, 10)
	reuse := &DiffPlan{E: root, Update: 2, Reused: true}
	got := reuse.ReusedDeps(nil)
	if len(got) != 1 || got[0] != (DiffKey{EquivID: root.ID, Update: 2}) {
		t.Fatalf("reuse plan deps = %v", got)
	}
	_ = en
}
