package diff

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/dag"
)

// TestSharedDifferentialAcrossViews validates the paper's core multi-view
// claim at the differential level (§3.3): when two views share a
// subexpression, temporarily materializing the shared differential lowers
// the combined maintenance cost of both views.
func TestSharedDifferentialAcrossViews(t *testing.T) {
	cat := testCatalog()
	d := dag.New(cat)
	// Both views contain orders⋈customer.
	v1 := d.AddQuery("v1", ordersView(cat)) // o⋈c⋈nation
	v2Def := algebra.NewAggregate(
		[]algebra.ColRef{algebra.C("customer.c_nation")},
		[]algebra.AggSpec{{Func: algebra.Count}},
		algebra.NewJoin(algebra.And(algebra.Eq("orders.o_cust", "customer.c_key")),
			algebra.NewScan(cat, "orders"), algebra.NewScan(cat, "customer")))
	v2 := d.AddQuery("v2", v2Def)

	u := UniformPercent(cat, []string{"orders"}, 5)
	en := NewEngine(d, cost.NewModel(cost.Default()), u)

	var oc *dag.Equiv
	for _, e := range en.D.Equivs {
		if len(e.Tables) == 2 && e.DependsOn("orders") && e.DependsOn("customer") &&
			e.Ops[0].Kind == dag.OpJoin {
			oc = e
		}
	}
	if oc == nil {
		t.Fatal("shared join node missing")
	}

	base := NewMatState()
	base.Fulls.Full[v1.ID] = true
	base.Fulls.Full[v2.ID] = true
	evBase := en.NewEval(base)
	costBase := evBase.TotalDiffCost(v1) + evBase.TotalDiffCost(v2)

	shared := base.Clone()
	shared.Diffs[DiffKey{EquivID: oc.ID, Update: 1}] = true
	evShared := en.NewEval(shared)
	costShared := evShared.TotalDiffCost(v1) + evShared.TotalDiffCost(v2)
	// The consumers save; producing the shared differential once costs
	// diffCost(oc,1) + write, which the greedy benefit accounts for — here we
	// check the consumer side: both views must not pay full recomputation of
	// the shared differential twice.
	if costShared > costBase {
		t.Errorf("sharing must not raise consumer cost: %g vs %g", costShared, costBase)
	}
	// At least one of the two views must actually reuse it.
	reusedSomewhere := false
	for _, v := range []*dag.Equiv{v1, v2} {
		var check func(p *DiffPlan)
		check = func(p *DiffPlan) {
			if p == nil || p.Empty {
				return
			}
			if p.Reused && p.E.ID == oc.ID {
				reusedSomewhere = true
			}
			for _, c := range p.DiffChildren {
				check(c)
			}
		}
		check(evShared.DiffAccess(v.Ops[0].Children[0], 1))
		check(evShared.DiffPlan(v, 1))
	}
	if !reusedSomewhere {
		t.Errorf("the temporarily materialized shared differential was never reused")
	}
}

// TestDiffPlansAcrossAllUpdatesConsistent checks that every non-empty
// differential of every node has positive rows estimate and cost, and that
// nodes independent of a relation report empty plans — over the whole DAG.
func TestDiffPlansAcrossAllUpdatesConsistent(t *testing.T) {
	en, root := engine(t, 10)
	ev := en.NewEval(rootMat(en, root))
	for _, e := range en.D.Equivs {
		for i := 1; i <= en.U.N(); i++ {
			p := ev.DiffPlan(e, i)
			dep := e.DependsOn(en.U.Table(i))
			if !dep && !p.Empty {
				t.Fatalf("e%d does not depend on %s but has a non-empty differential",
					e.ID, en.U.Table(i))
			}
			if p.Empty {
				if p.Cost != 0 || p.Rows != 0 {
					t.Fatalf("empty differential must be free: %+v", p)
				}
				continue
			}
			if p.Cost < 0 || p.Rows < 0 {
				t.Fatalf("negative estimate: e%d upd %d %+v", e.ID, i, p)
			}
		}
	}
}
