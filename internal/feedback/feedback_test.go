package feedback

import (
	"math"
	"sync"
	"testing"
)

func TestObserveFullEWMA(t *testing.T) {
	s := NewStore()
	if _, ok := s.FullRows("k"); ok {
		t.Fatal("empty store reports an observation")
	}
	s.ObserveFull("k", 100, 1)
	if r, ok := s.FullRows("k"); !ok || r != 100 {
		t.Fatalf("first observation should seed exactly: %g, %v", r, ok)
	}
	s.ObserveFull("k", 200, 2)
	// alpha 0.5: 0.5*200 + 0.5*100 = 150.
	if r, _ := s.FullRows("k"); math.Abs(r-150) > 1e-9 {
		t.Fatalf("EWMA fold: want 150, got %g", r)
	}
	s.ObserveFull("k", 150, 3)
	if r, _ := s.FullRows("k"); math.Abs(r-150) > 1e-9 {
		t.Fatalf("steady state should hold: got %g", r)
	}
}

func TestObserveRejectsBadValues(t *testing.T) {
	s := NewStore()
	for _, v := range []float64{-1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		s.ObserveFull("k", v, 1)
		s.ObserveDelta("k", "orders", true, v, 1)
	}
	if _, ok := s.FullRows("k"); ok {
		t.Fatal("bad full observations must be dropped")
	}
	if _, ok := s.DeltaRows("k", "orders", true); ok {
		t.Fatal("bad delta observations must be dropped")
	}
	if st := s.Stats(); st.Observations != 0 {
		t.Fatalf("dropped observations counted: %+v", st)
	}
}

func TestDeltaKeyedByTableAndSign(t *testing.T) {
	s := NewStore()
	s.ObserveDelta("k", "orders", true, 10, 1)
	s.ObserveDelta("k", "orders", false, 20, 1)
	s.ObserveDelta("k", "lineitem", true, 30, 1)
	cases := []struct {
		table  string
		insert bool
		want   float64
	}{{"orders", true, 10}, {"orders", false, 20}, {"lineitem", true, 30}}
	for _, c := range cases {
		if r, ok := s.DeltaRows("k", c.table, c.insert); !ok || r != c.want {
			t.Fatalf("delta(%s,%v) = %g,%v; want %g", c.table, c.insert, r, ok, c.want)
		}
	}
	if _, ok := s.DeltaRows("k", "customer", true); ok {
		t.Fatal("unobserved delta stream reported")
	}
	if st := s.Stats(); st.DeltaKeys != 3 || st.Observations != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestQErrorProperties(t *testing.T) {
	if q := QError(100, 100); q != 1 {
		t.Fatalf("perfect estimate: want 1, got %g", q)
	}
	if a, b := QError(10, 100), QError(100, 10); a != b {
		t.Fatalf("q-error must be symmetric: %g vs %g", a, b)
	}
	// The +1 shift keeps empty differentials finite.
	if q := QError(50, 0); math.IsInf(q, 0) || q != 51 {
		t.Fatalf("empty actual: want 51, got %g", q)
	}
	// Garbage estimates clamp instead of poisoning the ring.
	for _, est := range []float64{math.NaN(), math.Inf(1), -5} {
		if q := QError(est, 10); math.IsNaN(q) || math.IsInf(q, 0) || q < 1 {
			t.Fatalf("QError(%g, 10) = %g", est, q)
		}
	}
}

func TestQWindowStats(t *testing.T) {
	s := NewStore()
	// Eight perfect estimates and two misses: median 1, p90 (nearest-rank,
	// the 9th of 10 sorted values) lands on the smaller miss, max on the
	// larger.
	for i := 0; i < 8; i++ {
		s.RecordQ(100, 100)
	}
	s.RecordQ(300, 100)
	s.RecordQ(900, 100)
	st := s.Stats()
	if st.QCount != 10 || st.QTotal != 10 {
		t.Fatalf("window: %+v", st)
	}
	if st.QMedian != 1 {
		t.Fatalf("median: want 1, got %g", st.QMedian)
	}
	q3, q9 := QError(300, 100), QError(900, 100)
	if st.QP90 != q3 || st.QMax != q9 {
		t.Fatalf("p90/max: want %g/%g, got %g/%g", q3, q9, st.QP90, st.QMax)
	}
	wantMean := (8 + q3 + q9) / 10
	if math.Abs(st.QMean-wantMean) > 1e-9 {
		t.Fatalf("mean: want %g, got %g", wantMean, st.QMean)
	}

	s.ResetQ()
	st = s.Stats()
	if st.QCount != 0 || st.QMedian != 0 {
		t.Fatalf("ResetQ must clear the window: %+v", st)
	}
	if st.QTotal != 10 || st.QMax != q9 {
		t.Fatalf("ResetQ must keep cumulative counters: %+v", st)
	}
}

func TestQWindowBounded(t *testing.T) {
	s := NewStore()
	for i := 0; i < qWindow+100; i++ {
		s.RecordQ(1, 1)
	}
	st := s.Stats()
	if st.QCount != qWindow {
		t.Fatalf("window must cap at %d, got %d", qWindow, st.QCount)
	}
	if st.QTotal != int64(qWindow+100) {
		t.Fatalf("QTotal must keep counting: %d", st.QTotal)
	}
}

func TestLastEpochMonotone(t *testing.T) {
	s := NewStore()
	s.ObserveFull("a", 1, 5)
	s.ObserveFull("b", 1, 3) // out-of-order epoch must not regress
	if st := s.Stats(); st.LastEpoch != 5 {
		t.Fatalf("LastEpoch: want 5, got %d", st.LastEpoch)
	}
}

// TestConcurrentUse hammers every method from parallel goroutines; run under
// -race this is the store's concurrency contract (refresh observes while
// readers serve and adaptation rounds read).
func TestConcurrentUse(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := string(rune('a' + g%4))
			for i := 0; i < 500; i++ {
				s.ObserveFull(key, float64(i), uint64(i))
				s.ObserveDelta(key, "orders", i%2 == 0, float64(i), uint64(i))
				s.RecordQ(float64(i), float64(i+1))
				s.FullRows(key)
				s.DeltaRows(key, "orders", true)
				if i%100 == 0 {
					s.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Observations != 8000 || st.QTotal != 4000 {
		t.Fatalf("lost updates: %+v", st)
	}
}
