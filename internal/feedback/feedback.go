// Package feedback accumulates observed operator cardinalities so the
// optimizer can price plans against what execution actually produced rather
// than static catalog histograms. The executor and the differential refresh
// path report true output row counts keyed by canonical DAG key (dag.Equiv.Key
// — the unification key, so observations made while serving one query correct
// the estimate of every logically equivalent subexpression); the store smooths
// them with an EWMA and hands them back to the sizers as a correction layer
// that takes precedence over histogram-based estimates.
//
// Two observation families are kept, mirroring the two sizer families of the
// differential engine:
//
//   - full cardinalities: the row count of a node's complete result, observed
//     when a view is (re)materialized or an ad-hoc query plan runs;
//   - delta cardinalities: the row count of a differential result δ(e, i),
//     keyed by (node, updated table, insert|delete) — the update number i is
//     not stable across update specs, but the (table, sign) pair is.
//
// The store also tracks estimation error as the q-error of each
// (estimate, actual) pair — max(est/act, act/est), the standard factor-off
// metric — in a bounded ring, so runtime stats can report how wrong the
// optimizer currently is and benchmarks can show feedback shrinking it.
//
// All methods are safe for concurrent use: refresh observes while readers
// serve, and adaptation rounds read while both proceed.
package feedback

import (
	"math"
	"sort"
	"sync"
)

// DefaultAlpha is the EWMA smoothing factor for repeated observations of the
// same key (matching the workload tracker's half-life-of-one-observation
// choice: recent cycles dominate, history damps one-off spikes).
const DefaultAlpha = 0.5

// qWindow bounds the q-error ring.
const qWindow = 1024

// deltaKey identifies a differential observation: the node, the base table
// whose update produced the delta, and the update sign.
type deltaKey struct {
	key    string
	table  string
	insert bool
}

// entry is one smoothed observation stream.
type entry struct {
	rows  float64 // EWMA-smoothed observed cardinality
	count int64   // observations folded in
	epoch uint64  // epoch of the newest observation
}

// Store is the concurrency-safe observed-cardinality store.
type Store struct {
	mu    sync.RWMutex
	alpha float64
	full  map[string]*entry
	delta map[deltaKey]*entry

	qring [qWindow]float64
	qpos  int
	qlen  int
	qall  int64 // q-errors ever recorded
	qsum  float64
	qmax  float64

	lastEpoch uint64
}

// NewStore returns an empty store with the default smoothing factor.
func NewStore() *Store {
	return &Store{
		alpha: DefaultAlpha,
		full:  make(map[string]*entry),
		delta: make(map[deltaKey]*entry),
	}
}

// observe folds rows into e with EWMA smoothing.
func (s *Store) observe(e *entry, rows float64, epoch uint64) {
	if e.count == 0 {
		e.rows = rows
	} else {
		e.rows = s.alpha*rows + (1-s.alpha)*e.rows
	}
	e.count++
	if epoch > e.epoch {
		e.epoch = epoch
	}
	if epoch > s.lastEpoch {
		s.lastEpoch = epoch
	}
}

// ObserveFull records the true row count of a node's complete result.
func (s *Store) ObserveFull(key string, rows float64, epoch uint64) {
	if rows < 0 || math.IsNaN(rows) || math.IsInf(rows, 0) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.full[key]
	if e == nil {
		e = &entry{}
		s.full[key] = e
	}
	s.observe(e, rows, epoch)
}

// FullRows returns the smoothed observed full cardinality of a node, if any.
func (s *Store) FullRows(key string) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.full[key]; ok {
		return e.rows, true
	}
	return 0, false
}

// ObserveDelta records the true row count of a differential result of a node
// under an update of the given table and sign.
func (s *Store) ObserveDelta(key, table string, insert bool, rows float64, epoch uint64) {
	if rows < 0 || math.IsNaN(rows) || math.IsInf(rows, 0) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := deltaKey{key: key, table: table, insert: insert}
	e := s.delta[k]
	if e == nil {
		e = &entry{}
		s.delta[k] = e
	}
	s.observe(e, rows, epoch)
}

// DeltaRows returns the smoothed observed differential cardinality of a node
// under an update of the given table and sign, if any.
func (s *Store) DeltaRows(key, table string, insert bool) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.delta[deltaKey{key: key, table: table, insert: insert}]; ok {
		return e.rows, true
	}
	return 0, false
}

// QError computes the q-error of an (estimate, actual) pair: the factor by
// which the estimate is off, symmetric in direction and >= 1. Both sides are
// shifted by one row so empty results (common for differentials) stay finite.
func QError(est, act float64) float64 {
	if est < 0 || math.IsNaN(est) || math.IsInf(est, 0) {
		est = 0
	}
	if act < 0 {
		act = 0
	}
	e, a := est+1, act+1
	return math.Max(e/a, a/e)
}

// RecordQ folds the q-error of one (estimate, actual) pair into the ring.
func (s *Store) RecordQ(est, act float64) {
	q := QError(est, act)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.qring[s.qpos] = q
	s.qpos = (s.qpos + 1) % qWindow
	if s.qlen < qWindow {
		s.qlen++
	}
	s.qall++
	s.qsum += q
	if q > s.qmax {
		s.qmax = q
	}
}

// ResetQ clears the q-error window (the cumulative counters survive), so a
// benchmark can measure estimation error per phase.
func (s *Store) ResetQ() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.qpos, s.qlen = 0, 0
}

// Stats is a point-in-time snapshot of the store.
type Stats struct {
	// FullKeys and DeltaKeys count distinct observation streams.
	FullKeys, DeltaKeys int
	// Observations counts every folded observation across both families.
	Observations int64
	// QCount is the number of q-errors in the current window; QTotal the
	// number ever recorded.
	QCount int
	QTotal int64
	// QMedian, QP90 and QMean summarize the current window (1 = perfect
	// estimates); QMax is the worst error ever recorded. The window median is
	// dominated by whichever estimates are most numerous — often trivially
	// accurate ones — while QP90 tracks the misestimated tail the optimizer
	// actually pays for.
	QMedian, QP90, QMean, QMax float64
	// LastEpoch tags the newest observation.
	LastEpoch uint64
}

// Stats summarizes the store.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		FullKeys:  len(s.full),
		DeltaKeys: len(s.delta),
		QCount:    s.qlen,
		QTotal:    s.qall,
		QMax:      s.qmax,
		LastEpoch: s.lastEpoch,
	}
	for _, e := range s.full {
		st.Observations += e.count
	}
	for _, e := range s.delta {
		st.Observations += e.count
	}
	if s.qlen > 0 {
		window := make([]float64, s.qlen)
		copy(window, s.qring[:s.qlen])
		sort.Float64s(window)
		mid := len(window) / 2
		if len(window)%2 == 1 {
			st.QMedian = window[mid]
		} else {
			st.QMedian = (window[mid-1] + window[mid]) / 2
		}
		p90 := (len(window)*9 + 9) / 10
		if p90 > len(window) {
			p90 = len(window)
		}
		st.QP90 = window[p90-1]
		sum := 0.0
		for _, q := range window {
			sum += q
		}
		st.QMean = sum / float64(len(window))
	}
	return st
}
