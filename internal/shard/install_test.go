package shard

// Coordinator lifecycle over real snapshots: base install, pointer-diffed
// delta install with mat drops, idempotence, the three rejoin legs, client
// replacement — and the same worker surface reached through the net/rpc
// transport instead of the in-process harness.

import (
	"net"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/storage"
)

func intSchema(rel string) algebra.Schema {
	return algebra.Schema{{Rel: rel, Name: "a", Type: catalog.Int, Width: 8}}
}

func intRelation(rel string, vals ...int64) *storage.Relation {
	r := storage.NewRelation(intSchema(rel))
	for _, v := range vals {
		r.Insert(algebra.Tuple{algebra.NewInt(v)})
	}
	return r
}

// scatterLeaf gathers a bare leaf scan through the coordinator.
func scatterLeaf(t *testing.T, co *Coordinator, ref LeafRef, schema algebra.Schema) *storage.Relation {
	t.Helper()
	got, err := co.Scatter(&ScatterReq{Epoch: co.Gate(), Leaf: ref}, schema)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestCoordinatorInstallLifecycle(t *testing.T) {
	st := storage.NewSnapshotStore()
	st.RetainHistory(true)
	db := storage.NewDatabase()
	rel := db.Create("t", intSchema("t"))
	for i := int64(0); i < 6; i++ {
		rel.Insert(algebra.Tuple{algebra.NewInt(i)})
	}
	mats := map[int]*storage.Relation{1: intRelation("m", 7, 8)}

	a := Assignment{Partitions: 4, Shards: 2}.Norm()
	clients := make([]Client, a.Shards)
	for i := range clients {
		w, err := NewWorker(i, a, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = InProc{W: w}
	}
	co, err := NewCoordinator(a, clients)
	if err != nil {
		t.Fatal(err)
	}
	if co.Gate() != -1 {
		t.Fatalf("gate %d before any install", co.Gate())
	}
	if got := co.Assignment(); got != a {
		t.Fatalf("assignment %+v, want %+v", got, a)
	}

	// Base install, then an idempotent repeat of the same epoch.
	snap0 := st.PublishState(db, mats)
	if err := co.Install(snap0); err != nil {
		t.Fatal(err)
	}
	if co.Gate() != snap0.Epoch() {
		t.Fatalf("gate %d after base install, want %d", co.Gate(), snap0.Epoch())
	}
	if err := co.Install(snap0); err != nil {
		t.Fatalf("re-install of current epoch: %v", err)
	}
	if got := scatterLeaf(t, co, LeafRef{Rel: "t"}, intSchema("t")); got.Len() != 6 {
		t.Fatalf("fleet serves %d base rows, want 6", got.Len())
	}
	if got := scatterLeaf(t, co, LeafRef{Mat: true, ID: 1}, intSchema("m")); got.Len() != 2 {
		t.Fatalf("fleet serves %d mat rows, want 2", got.Len())
	}

	// Delta install: one relation changes pointer, mat 1 is dropped and mat
	// 2 appears. The fleet must serve the new epoch's versions.
	db.LogInsert("t", algebra.Tuple{algebra.NewInt(99)})
	db.ApplyInsertsCOW("t")
	mats2 := map[int]*storage.Relation{2: intRelation("m2", 1, 2, 3)}
	snap1 := st.PublishState(db, mats2)
	if err := co.Install(snap1); err != nil {
		t.Fatal(err)
	}
	if co.Gate() != snap1.Epoch() {
		t.Fatalf("gate %d after delta install, want %d", co.Gate(), snap1.Epoch())
	}
	if got := scatterLeaf(t, co, LeafRef{Rel: "t"}, intSchema("t")); got.Len() != 7 {
		t.Fatalf("fleet serves %d rows after delta, want 7", got.Len())
	}
	if got := scatterLeaf(t, co, LeafRef{Mat: true, ID: 2}, intSchema("m2")); got.Len() != 3 {
		t.Fatalf("fleet serves %d new-mat rows, want 3", got.Len())
	}
	if _, err := co.Scatter(&ScatterReq{Epoch: co.Gate(), Leaf: LeafRef{Mat: true, ID: 1}}, intSchema("m")); err == nil {
		t.Fatal("dropped mat still scatterable")
	}

	// Rejoin leg 1: a worker already at the gate needs nothing but a commit.
	if err := co.Rejoin(0, nil); err != nil {
		t.Fatalf("rejoin at gate: %v", err)
	}

	// Rejoin leg 2: a worker holding the previous epoch gets the last delta
	// resent (its staged epoch satisfies the request's From).
	behind, err := NewWorker(1, a, "")
	if err != nil {
		t.Fatal(err)
	}
	rg := a.Ranges()[1]
	base := &StageReq{Epoch: snap0.Epoch(), From: -1, Base: true,
		Rels: map[string]Slice{"t": SliceOf(snap0.Relation("t"), a, rg[0], rg[1])},
		Mats: map[int32]Slice{1: SliceOf(mats[1], a, rg[0], rg[1])}}
	if err := behind.Stage(base); err != nil {
		t.Fatal(err)
	}
	co.ReplaceClient(1, InProc{W: behind})
	if err := co.Rejoin(1, nil); err != nil {
		t.Fatalf("rejoin with restage: %v", err)
	}
	if h := behind.Hello(); h.Staged != snap1.Epoch() {
		t.Fatalf("restaged worker at epoch %d, want %d", h.Staged, snap1.Epoch())
	}
	if got := scatterLeaf(t, co, LeafRef{Rel: "t"}, intSchema("t")); got.Len() != 7 {
		t.Fatalf("fleet serves %d rows after restage rejoin, want 7", got.Len())
	}

	// Rejoin leg 3: a blank worker needs the gate snapshot to bootstrap —
	// and rejoin refuses both no snapshot and the wrong epoch's.
	blank, err := NewWorker(1, a, "")
	if err != nil {
		t.Fatal(err)
	}
	co.ReplaceClient(1, InProc{W: blank})
	if err := co.Rejoin(1, nil); err == nil {
		t.Fatal("bootstrap rejoin accepted a nil snapshot")
	}
	if err := co.Rejoin(1, snap0); err == nil {
		t.Fatal("bootstrap rejoin accepted a stale snapshot")
	}
	if err := co.Rejoin(1, snap1); err != nil {
		t.Fatalf("bootstrap rejoin: %v", err)
	}
	if got := scatterLeaf(t, co, LeafRef{Rel: "t"}, intSchema("t")); got.Len() != 7 {
		t.Fatalf("fleet serves %d rows after bootstrap rejoin, want 7", got.Len())
	}

	// A worker built for a different assignment is refused outright.
	alien, err := NewWorker(1, Assignment{Partitions: 8, Shards: 2}, "")
	if err != nil {
		t.Fatal(err)
	}
	co.ReplaceClient(1, InProc{W: alien})
	if err := co.Rejoin(1, snap1); err == nil {
		t.Fatal("rejoin accepted a mismatched assignment")
	}

	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatorClientCountMismatch(t *testing.T) {
	a := Assignment{Partitions: 4, Shards: 2}.Norm()
	if _, err := NewCoordinator(a, nil); err == nil {
		t.Fatal("coordinator accepted 0 clients for 2 shards")
	}
}

// TestRPCTransport drives the full Client surface through a live net/rpc
// server in-process: same wire messages, real connection in between.
func TestRPCTransport(t *testing.T) {
	a := Assignment{Partitions: 4, Shards: 1}.Norm()
	w, err := NewWorker(0, a, "")
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go Serve(l, w)
	defer l.Close()

	cl, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	h, err := cl.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if h.Shard != 0 || h.Shards != 1 || h.Partitions != 4 || h.Staged != -1 {
		t.Fatalf("hello over rpc: %+v", h)
	}
	rel := intRelation("t", 1, 2, 3, 4, 5)
	if err := cl.Stage(&StageReq{Epoch: 0, From: -1, Base: true,
		Rels: map[string]Slice{"t": SliceOf(rel, a, 0, a.Partitions)},
		Mats: map[int32]Slice{}}); err != nil {
		t.Fatal(err)
	}
	p, err := cl.Scatter(&ScatterReq{Epoch: 0, Leaf: LeafRef{Rel: "t"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 5 {
		t.Fatalf("scatter over rpc returned %d rows, want 5", len(p.Rows))
	}
	// Errors must travel back as errors, not broken connections.
	if _, err := cl.Scatter(&ScatterReq{Epoch: 42, Leaf: LeafRef{Rel: "t"}}); err == nil {
		t.Fatal("unstaged epoch scattered over rpc")
	}
	if err := cl.Stage(&StageReq{Epoch: 5, From: 4, Rels: map[string]Slice{}, Mats: map[int32]Slice{}}); err == nil {
		t.Fatal("delta with missing base accepted over rpc")
	}
	if err := cl.Commit(0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
}
