package shard

// Randomized coordinator properties over synthetic plans: lowering triggers
// the broadcast path iff the build side fits the threshold, scatter plans
// touch each leaf row exactly once (the Ord streams partition the leaf
// index space), and a real worker fleet — staged through the wire codec —
// gathers byte-identical answers to local execution at every shard count.

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/volcano"
)

// buildJoinFixture creates a two-table database and a filter→join plan over
// it: probe side "fact" (random size), build side "dim", equi-key on k, a
// filter on the fact side, and a residual inequality across the join.
func buildJoinFixture(rng *rand.Rand, factN, dimN int) (*storage.Database, *volcano.PlanNode) {
	factSchema := algebra.Schema{
		{Rel: "fact", Name: "k", Type: catalog.Int, Width: 8},
		{Rel: "fact", Name: "v", Type: catalog.Int, Width: 8},
	}
	dimSchema := algebra.Schema{
		{Rel: "dim", Name: "k", Type: catalog.Int, Width: 8},
		{Rel: "dim", Name: "w", Type: catalog.Int, Width: 8},
	}
	db := storage.NewDatabase()
	fact := db.Create("fact", factSchema)
	for i := 0; i < factN; i++ {
		fact.Insert(algebra.Tuple{algebra.NewInt(rng.Int63n(20)), algebra.NewInt(rng.Int63n(100))})
	}
	dim := db.Create("dim", dimSchema)
	for i := 0; i < dimN; i++ {
		dim.Insert(algebra.Tuple{algebra.NewInt(rng.Int63n(20)), algebra.NewInt(rng.Int63n(100))})
	}

	factE := &dag.Equiv{ID: 1, Key: "t:fact", Schema: factSchema, IsTable: true, Tables: []string{"fact"}}
	dimE := &dag.Equiv{ID: 2, Key: "t:dim", Schema: dimSchema, IsTable: true, Tables: []string{"dim"}}
	factScan := &volcano.PlanNode{
		E: factE, Access: volcano.Compute,
		Op:   &dag.Op{Kind: dag.OpScan, Table: "fact"},
		Rows: float64(factN),
	}
	dimScan := &volcano.PlanNode{
		E: dimE, Access: volcano.Compute,
		Op:   &dag.Op{Kind: dag.OpScan, Table: "dim"},
		Rows: float64(dimN),
	}
	selPred := algebra.Pred{Conjuncts: []algebra.Cmp{
		algebra.CmpConst("fact.v", algebra.LT, algebra.NewInt(80)),
	}}
	selE := &dag.Equiv{ID: 3, Key: "sel:fact", Schema: factSchema, Tables: []string{"fact"}}
	sel := &volcano.PlanNode{
		E: selE, Access: volcano.Compute,
		Op:       &dag.Op{Kind: dag.OpSelect, Pred: selPred},
		Children: []*volcano.PlanNode{factScan},
		Rows:     float64(factN) * 0.8,
	}
	joinPred := algebra.Pred{Conjuncts: []algebra.Cmp{
		algebra.Eq("fact.k", "dim.k"),
		{Op: algebra.LT, L: algebra.C("fact.v"), R: algebra.C("dim.w")},
	}}
	joinE := &dag.Equiv{
		ID: 4, Key: "join", Schema: factSchema.Concat(dimSchema),
		Tables: []string{"dim", "fact"},
	}
	join := &volcano.PlanNode{
		E: joinE, Access: volcano.Compute, Algo: volcano.AlgoHash,
		Op:       &dag.Op{Kind: dag.OpJoin, Pred: joinPred},
		Children: []*volcano.PlanNode{sel, dimScan},
		Rows:     float64(factN),
	}
	return db, join
}

// fixtureEnv lowers against db with a local executor for build sides.
func fixtureEnv(db *storage.Database, maxBroadcast int) LowerEnv {
	ex := exec.NewExecutor(db)
	return LowerEnv{
		Leaf: func(p *volcano.PlanNode) (LeafRef, algebra.Schema, bool) {
			if !p.E.IsTable {
				return LeafRef{}, nil, false
			}
			name := p.E.Tables[0]
			return LeafRef{Rel: name}, db.MustRelation(name).Schema(), true
		},
		Exec: func(p *volcano.PlanNode) *storage.Relation {
			if p.Access == volcano.Probe {
				return ex.Stored(p.E)
			}
			return ex.Run(p)
		},
		MaxBroadcast: maxBroadcast,
	}
}

func TestLowerBroadcastThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for it := 0; it < 20; it++ {
		dimN := 1 + rng.Intn(30)
		db, plan := buildJoinFixture(rng, 50+rng.Intn(100), dimN)
		buildLen := db.MustRelation("dim").Len()

		// At exactly the build size the broadcast path triggers...
		req, ok := Lower(plan, fixtureEnv(db, buildLen))
		if !ok {
			t.Fatalf("it %d: Lower rejected build of %d at threshold %d", it, buildLen, buildLen)
		}
		var joins int
		for _, st := range req.Stages {
			if st.Kind == StageJoin {
				joins++
				if len(st.Build) != buildLen {
					t.Fatalf("it %d: shipped %d build rows, dim has %d", it, len(st.Build), buildLen)
				}
			}
		}
		if joins != 1 {
			t.Fatalf("it %d: %d join stages, want 1", it, joins)
		}
		// ...and one row above it the plan is not shardable.
		if _, ok := Lower(plan, fixtureEnv(db, buildLen-1)); ok {
			t.Fatalf("it %d: Lower accepted build of %d over threshold %d", it, buildLen, buildLen-1)
		}
	}
}

// stageFleet boots S volatile workers, stages both base relations at epoch,
// and returns a coordinator over in-process (codec round-tripping) clients.
func stageFleet(t *testing.T, db *storage.Database, a Assignment, epoch int64) *Coordinator {
	t.Helper()
	clients := make([]Client, a.Shards)
	for s := 0; s < a.Shards; s++ {
		w, err := NewWorker(s, a, "")
		if err != nil {
			t.Fatal(err)
		}
		clients[s] = InProc{W: w}
	}
	co, err := NewCoordinator(a, clients)
	if err != nil {
		t.Fatal(err)
	}
	for s, rg := range a.Ranges() {
		req := &StageReq{Epoch: epoch, From: -1, Base: true, Rels: map[string]Slice{}, Mats: map[int32]Slice{}}
		for _, name := range db.Names() {
			req.Rels[name] = SliceOf(db.MustRelation(name), a, rg[0], rg[1])
		}
		if err := clients[s].Stage(req); err != nil {
			t.Fatalf("stage shard %d: %v", s, err)
		}
	}
	return co
}

func TestScatterGatherMatchesLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for it := 0; it < 15; it++ {
		db, plan := buildJoinFixture(rng, 30+rng.Intn(200), 1+rng.Intn(25))
		want := exec.NewExecutor(db).Run(plan)

		req, ok := Lower(plan, fixtureEnv(db, exec.BroadcastMax()))
		if !ok {
			t.Fatalf("it %d: plan not lowerable", it)
		}
		req.Epoch = int64(it)
		for _, shards := range []int{1, 2, 4} {
			a := Assignment{Partitions: 8, Shards: shards}.Norm()
			co := stageFleet(t, db, a, req.Epoch)
			got, err := co.Scatter(req, plan.E.Schema)
			if err != nil {
				t.Fatalf("it %d shards %d: %v", it, shards, err)
			}
			if got.Len() != want.Len() {
				t.Fatalf("it %d shards %d: %d rows, want %d", it, shards, got.Len(), want.Len())
			}
			for r, tu := range want.Rows() {
				if !tu.Equal(got.Rows()[r]) {
					t.Fatalf("it %d shards %d: row %d differs: %v vs %v", it, shards, r, got.Rows()[r], tu)
				}
			}
		}
	}
}

// TestScatterTouchesEachLeafRowOnce: the union of the fleet's Ord streams
// for an unfiltered leaf scan is exactly the leaf's row index set.
func TestScatterTouchesEachLeafRowOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for it := 0; it < 10; it++ {
		db := storage.NewDatabase()
		schema := algebra.Schema{{Rel: "t", Name: "a", Type: catalog.Int, Width: 8}}
		rel := db.Create("t", schema)
		n := 20 + rng.Intn(200)
		for i := 0; i < n; i++ {
			rel.Insert(algebra.Tuple{algebra.NewInt(rng.Int63n(50))})
		}
		a := Assignment{Partitions: 1 + rng.Intn(12), Shards: 1 + rng.Intn(5)}.Norm()
		clients := make([]Client, a.Shards)
		seen := make(map[int32]int)
		for s, rg := range a.Ranges() {
			w, err := NewWorker(s, a, "")
			if err != nil {
				t.Fatal(err)
			}
			clients[s] = InProc{W: w}
			req := &StageReq{Epoch: 1, From: -1, Base: true,
				Rels: map[string]Slice{"t": SliceOf(rel, a, rg[0], rg[1])},
				Mats: map[int32]Slice{}}
			if err := clients[s].Stage(req); err != nil {
				t.Fatal(err)
			}
			p, err := clients[s].Scatter(&ScatterReq{Epoch: 1, Leaf: LeafRef{Rel: "t"}})
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range p.Ord {
				seen[o]++
			}
		}
		if len(seen) != n {
			t.Fatalf("it %d: fleet touched %d of %d leaf rows", it, len(seen), n)
		}
		for idx, c := range seen {
			if c != 1 {
				t.Fatalf("it %d: leaf row %d scanned by %d shards", it, idx, c)
			}
		}
	}
}

// TestWorkerStageRecovery: a worker with a stage log recovers its staged
// epochs after an unclean stop (the handle is simply dropped, as SIGKILL
// would), including a torn tail, and deltas apply onto the recovered state.
func TestWorkerStageRecovery(t *testing.T) {
	dir := t.TempDir()
	a := Assignment{Partitions: 4, Shards: 2}.Norm()
	mk := func(epoch int64, base bool, from int64, rows ...int64) *StageReq {
		s := Slice{}
		for i, v := range rows {
			s.Rows = append(s.Rows, algebra.Tuple{algebra.NewInt(v)})
			s.Idx = append(s.Idx, int32(i))
		}
		return &StageReq{Epoch: epoch, From: from, Base: base,
			Rels: map[string]Slice{"t": s}, Mats: map[int32]Slice{}}
	}
	w, err := NewWorker(0, a, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Stage(mk(1, true, -1, 10, 11)); err != nil {
		t.Fatal(err)
	}
	if err := w.Stage(mk(2, false, 1, 20, 21, 22)); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate SIGKILL by abandoning the handle.

	w2, err := NewWorker(0, a, dir)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	h := w2.Hello()
	if h.Staged != 2 {
		t.Fatalf("recovered staged epoch %d, want 2", h.Staged)
	}
	p, err := w2.Scatter(&ScatterReq{Epoch: 2, Leaf: LeafRef{Rel: "t"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 3 || p.Rows[0][0].I != 20 {
		t.Fatalf("recovered state serves %v", p.Rows)
	}
	// A delta onto the recovered state must apply (From <= staged).
	if err := w2.Stage(mk(3, false, 2, 30)); err != nil {
		t.Fatalf("delta after recovery: %v", err)
	}
	// A delta from a future base must be refused (coordinator then
	// re-bootstraps).
	if err := w2.Stage(mk(9, false, 8)); err == nil {
		t.Fatal("accepted delta with missing base")
	}
	w2.Close()
}
