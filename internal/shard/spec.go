package shard

// Wire message types and the plan lowering that produces scatter requests.
// Everything a worker executes is index-based — bound predicates, projection
// index lists, join key columns — so workers are schema-agnostic: the
// coordinator compiles all name resolution out of the plan before shipping.

import (
	"repro/internal/algebra"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/volcano"
)

// LeafRef identifies the scatter leaf's stored relation on the worker.
type LeafRef struct {
	// Mat selects a materialized result by system-DAG node ID; otherwise Rel
	// names a base relation.
	Mat bool
	ID  int32
	Rel string
}

// StageKind discriminates pipeline stages.
type StageKind uint8

const (
	// StageFilter keeps rows passing a bound predicate.
	StageFilter StageKind = 1
	// StageProject rebuilds each row from input column indexes.
	StageProject StageKind = 2
	// StageJoin hash-joins the pipeline rows (probe side) against broadcast
	// build rows; with no key columns it is the nested-loop fallback (probe
	// outer, build inner).
	StageJoin StageKind = 3
)

// Stage is one pipeline step of a scatter request.
type Stage struct {
	Kind StageKind

	// Pred is the filter predicate (StageFilter), compiled against the
	// pipeline schema at this point.
	Pred []algebra.BoundCmp

	// Cols are the input column indexes per output column (StageProject).
	Cols []int

	// Join fields (StageJoin). Build rows arrive in coordinator execution
	// order — the order the local join would build its buckets in — and
	// BuildIsLeft says which side of the emitted row they occupy. BCols and
	// PCols are the equi-key columns in the build and pipeline rows;
	// Residual, if HasResidual, is bound against the combined row.
	BuildIsLeft  bool
	BCols, PCols []int
	Build        []algebra.Tuple
	HasResidual  bool
	Residual     []algebra.BoundCmp
}

// ScatterReq asks a worker to run a pipeline over its slice of the leaf at
// one staged epoch.
type ScatterReq struct {
	Epoch  int64
	Leaf   LeafRef
	Stages []Stage
}

// Partial is one shard's pipeline output: rows plus, per row, the global
// index of the scatter-leaf row it derives from. Ord is ascending (runs of
// equal values for join expansions), which is what makes the gather a linear
// ordered merge.
type Partial struct {
	Epoch int64
	Rows  []algebra.Tuple
	Ord   []int32
}

// StageReq carries epoch state to a worker: either a full bootstrap (Base)
// replacing everything, or the slices of exactly the relations that changed
// since the From epoch (pointer-diff of the COW snapshots). Drops lists
// materialized results retired since From.
type StageReq struct {
	Epoch int64
	// From is the epoch the delta was diffed against (-1 for Base). A worker
	// whose staged epoch is >= From may apply the delta onto its latest
	// state: COW versions are never reused, so any relation differing
	// between the worker's state and Epoch is in the changed set.
	From  int64
	Base  bool
	Drops []int32
	Rels  map[string]Slice
	Mats  map[int32]Slice
}

// Hello reports a worker's identity and durable progress; the coordinator
// validates the assignment and drives rejoin from the staged epoch.
type Hello struct {
	Shard      int
	Shards     int
	Partitions int
	Staged     int64 // highest durably staged epoch (-1: none)
	Committed  int64 // highest commit seen (-1: none; advisory)
}

// ---------------------------------------------------------------------------
// Plan lowering.

// LowerEnv supplies the coordinator-side context Lower needs: leaf
// resolution against the pinned snapshot and subplan execution for build
// sides. MaxBroadcast bounds inline build rows (exec.BroadcastMax()).
type LowerEnv struct {
	// Leaf resolves a stored leaf node — a Reuse/Probe of a materialized
	// result or a base-table access — to its wire reference and its stored
	// schema (the schema the shard's slice rows are in). ok=false vetoes
	// lowering (e.g. a dynamic-cache entry that lives only on the
	// coordinator).
	Leaf func(p *volcano.PlanNode) (ref LeafRef, stored algebra.Schema, ok bool)
	// Exec executes a non-spine subplan coordinator-side, producing exactly
	// the rows (and row order) local execution would feed the join build.
	Exec func(p *volcano.PlanNode) *storage.Relation
	// MaxBroadcast is the largest build side shipped inline.
	MaxBroadcast int
}

// Lower compiles a served physical plan into a scatter pipeline, or reports
// ok=false when the plan is not shardable: compute aggregates, dedup, union,
// minus, unresolvable leaves, or a join whose build side exceeds
// MaxBroadcast. The caller then executes the plan locally at the same epoch
// — the fallback changes latency, never answers.
//
// The scatter spine is the transitive probe side of the join tree under the
// same plan-estimate orientation rule the local executor commits to
// (exec.BuildLeftFromPlan), and every projection the local executor would
// apply (Run projects each node's result to its equivalence schema) is
// replicated as an explicit stage, so worker-side evaluation is
// step-for-step the local pipeline restricted to the shard's slice.
func Lower(p *volcano.PlanNode, env LowerEnv) (*ScatterReq, bool) {
	leaf, stages, _, ok := lowerNode(p, env)
	if !ok {
		return nil, false
	}
	return &ScatterReq{Leaf: leaf, Stages: stages}, true
}

func lowerNode(p *volcano.PlanNode, env LowerEnv) (leaf LeafRef, stages []Stage, cur algebra.Schema, ok bool) {
	if p.Access == volcano.Reuse || p.Access == volcano.Probe {
		ref, stored, ok := env.Leaf(p)
		if !ok {
			return LeafRef{}, nil, nil, false
		}
		stages = projectStages(nil, stored, p.E.Schema)
		return ref, stages, p.E.Schema, true
	}
	op := p.Op
	switch op.Kind {
	case dag.OpScan:
		ref, stored, ok := env.Leaf(p)
		if !ok {
			return LeafRef{}, nil, nil, false
		}
		stages = projectStages(nil, stored, p.E.Schema)
		return ref, stages, p.E.Schema, true

	case dag.OpSelect:
		if op.Pred.HasClauses() || op.Pred.HasArith() {
			// The wire format carries flat column/literal conjunct lists only;
			// vetoing keeps disjunctions and arithmetic predicates on the
			// (correctness-equivalent) local fallback rather than silently
			// dropping clauses or compiled arithmetic trees.
			return LeafRef{}, nil, nil, false
		}
		leaf, stages, cur, ok = lowerNode(p.Children[0], env)
		if !ok {
			return LeafRef{}, nil, nil, false
		}
		bp := op.Pred.Bind(cur)
		stages = append(stages, Stage{Kind: StageFilter, Pred: bp.Cmps()})
		stages = projectStages(stages, cur, p.E.Schema)
		return leaf, stages, p.E.Schema, true

	case dag.OpProject:
		leaf, stages, cur, ok = lowerNode(p.Children[0], env)
		if !ok {
			return LeafRef{}, nil, nil, false
		}
		stages = projectStages(stages, cur, p.E.Schema)
		return leaf, stages, p.E.Schema, true

	case dag.OpJoin:
		if op.Pred.HasClauses() || op.Pred.HasArith() {
			return LeafRef{}, nil, nil, false // see OpSelect
		}
		lSchema := p.Children[0].E.Schema
		rSchema := p.Children[1].E.Schema
		outSchema := lSchema.Concat(rSchema)
		lCols, rCols, residual := exec.SplitJoinPred(op.Pred, lSchema, rSchema)

		buildChild, probeChild := p.Children[1], p.Children[0]
		buildLeft := false
		var bCols, pCols []int
		if len(lCols) == 0 {
			// Nested loop: orientation-free locally — the left child is
			// always the outer — so the spine must be the left child and the
			// inner is broadcast whole.
			bCols, pCols = nil, nil
		} else if exec.BuildLeftFromPlan(p) {
			buildChild, probeChild = p.Children[0], p.Children[1]
			buildLeft = true
			bCols, pCols = lCols, rCols
		} else {
			bCols, pCols = rCols, lCols
		}

		buildRel := env.Exec(buildChild)
		if buildRel.Len() > env.MaxBroadcast {
			return LeafRef{}, nil, nil, false
		}
		leaf, stages, cur, ok = lowerNode(probeChild, env)
		if !ok {
			return LeafRef{}, nil, nil, false
		}
		_ = cur // the probe pipeline is in probeChild.E.Schema by construction
		st := Stage{
			Kind: StageJoin, BuildIsLeft: buildLeft,
			BCols: bCols, PCols: pCols,
			Build: buildRel.Rows(),
		}
		if len(residual) > 0 {
			st.HasResidual = true
			st.Residual = algebra.Pred{Conjuncts: residual}.Bind(outSchema).Cmps()
		}
		stages = append(stages, st)
		stages = projectStages(stages, outSchema, p.E.Schema)
		return leaf, stages, p.E.Schema, true
	}
	return LeafRef{}, nil, nil, false
}

// projectStages appends the projection stage Run's projectToP would apply
// (none when the schemas already match).
func projectStages(stages []Stage, cur, target algebra.Schema) []Stage {
	if exec.SchemasEqual(cur, target) {
		return stages
	}
	return append(stages, Stage{Kind: StageProject, Cols: exec.ProjIndexes(cur, target)})
}
