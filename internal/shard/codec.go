package shard

// Wire codec for the shard transport. One byte of message tag, then
// varint-based fields; tuples reuse the WAL's self-describing tuple encoding
// so value semantics (and their tests) are shared with the durability layer.
//
// Contract: encoding is deterministic (map keys are sorted), and decoding
// NEVER panics on malformed input — every length is capped by the bytes
// remaining and every tag/kind is validated. FuzzShardCodec in codec_test.go
// holds the line.

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/wal"
)

// Message tags (first byte of every encoded message).
const (
	tagScatter = 'S' // ScatterReq
	tagStage   = 'G' // StageReq
	tagPartial = 'P' // Partial
	tagHello   = 'H' // Hello
)

// ---------------------------------------------------------------------------
// Primitives.

func appendInt(b []byte, v int64) []byte { return appendVarint(b, v) }

func appendVarint(b []byte, v int64) []byte {
	u := uint64(v) << 1
	if v < 0 {
		u = ^u
	}
	return appendUvarint(b, u)
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func decodeUvarint(b []byte) (uint64, []byte, error) {
	var v uint64
	var s uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c < 0x80 {
			if i == 9 && c > 1 {
				return 0, nil, fmt.Errorf("uvarint overflows 64 bits")
			}
			return v | uint64(c)<<s, b[i+1:], nil
		}
		if i == 9 {
			return 0, nil, fmt.Errorf("uvarint too long")
		}
		v |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, nil, fmt.Errorf("truncated uvarint")
}

func decodeVarint(b []byte) (int64, []byte, error) {
	u, b, err := decodeUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v, b, nil
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func decodeString(b []byte) (string, []byte, error) {
	n, b, err := decodeUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(b)) < n {
		return "", nil, fmt.Errorf("truncated string (%d of %d bytes)", len(b), n)
	}
	return string(b[:n]), b[n:], nil
}

// capBy bounds a decoded element count by the bytes remaining, so corrupt
// counts cannot drive huge allocations; each element costs >= 1 byte.
func capBy(n uint64, b []byte) int {
	if n > uint64(len(b)) {
		return len(b)
	}
	return int(n)
}

func appendValue(b []byte, v algebra.Value) []byte {
	return wal.AppendTuple(b, algebra.Tuple{v})
}

func decodeValue(b []byte) (algebra.Value, []byte, error) {
	t, b, err := wal.DecodeTuple(b)
	if err != nil {
		return algebra.Value{}, nil, err
	}
	if len(t) != 1 {
		return algebra.Value{}, nil, fmt.Errorf("value encoded as %d-tuple", len(t))
	}
	return t[0], b, nil
}

func appendCmps(b []byte, cs []algebra.BoundCmp) []byte {
	b = appendUvarint(b, uint64(len(cs)))
	for _, c := range cs {
		b = append(b, byte(c.Op))
		b = appendInt(b, int64(c.LIdx))
		b = appendInt(b, int64(c.RIdx))
		b = appendValue(b, c.LVal)
		b = appendValue(b, c.RVal)
	}
	return b
}

func decodeCmps(b []byte) ([]algebra.BoundCmp, []byte, error) {
	n, b, err := decodeUvarint(b)
	if err != nil {
		return nil, nil, fmt.Errorf("cmp count: %w", err)
	}
	cs := make([]algebra.BoundCmp, 0, capBy(n, b))
	for i := uint64(0); i < n; i++ {
		if len(b) < 1 {
			return nil, nil, fmt.Errorf("cmp %d: missing op", i)
		}
		op := algebra.CmpOp(b[0])
		b = b[1:]
		if op > algebra.GE {
			return nil, nil, fmt.Errorf("cmp %d: unknown op %d", i, op)
		}
		var c algebra.BoundCmp
		c.Op = op
		var li, ri int64
		if li, b, err = decodeVarint(b); err != nil {
			return nil, nil, fmt.Errorf("cmp %d: lidx: %w", i, err)
		}
		if ri, b, err = decodeVarint(b); err != nil {
			return nil, nil, fmt.Errorf("cmp %d: ridx: %w", i, err)
		}
		c.LIdx, c.RIdx = int(li), int(ri)
		if c.LVal, b, err = decodeValue(b); err != nil {
			return nil, nil, fmt.Errorf("cmp %d: lval: %w", i, err)
		}
		if c.RVal, b, err = decodeValue(b); err != nil {
			return nil, nil, fmt.Errorf("cmp %d: rval: %w", i, err)
		}
		cs = append(cs, c)
	}
	return cs, b, nil
}

func appendInts(b []byte, xs []int) []byte {
	b = appendUvarint(b, uint64(len(xs)))
	for _, x := range xs {
		b = appendInt(b, int64(x))
	}
	return b
}

func decodeInts(b []byte) ([]int, []byte, error) {
	n, b, err := decodeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	xs := make([]int, 0, capBy(n, b))
	for i := uint64(0); i < n; i++ {
		var x int64
		if x, b, err = decodeVarint(b); err != nil {
			return nil, nil, err
		}
		xs = append(xs, int(x))
	}
	return xs, b, nil
}

func appendRows(b []byte, rows []algebra.Tuple) []byte {
	b = appendUvarint(b, uint64(len(rows)))
	for _, t := range rows {
		b = wal.AppendTuple(b, t)
	}
	return b
}

func decodeRows(b []byte) ([]algebra.Tuple, []byte, error) {
	n, b, err := decodeUvarint(b)
	if err != nil {
		return nil, nil, fmt.Errorf("row count: %w", err)
	}
	rows := make([]algebra.Tuple, 0, capBy(n, b))
	for i := uint64(0); i < n; i++ {
		var t algebra.Tuple
		if t, b, err = wal.DecodeTuple(b); err != nil {
			return nil, nil, fmt.Errorf("row %d: %w", i, err)
		}
		rows = append(rows, t)
	}
	return rows, b, nil
}

func appendSlice(b []byte, s Slice) []byte {
	b = appendUvarint(b, uint64(len(s.Rows)))
	for i, t := range s.Rows {
		b = appendInt(b, int64(s.Idx[i]))
		b = wal.AppendTuple(b, t)
	}
	b = appendUvarint(b, uint64(len(s.HashCols)))
	for k, cols := range s.HashCols {
		b = appendInts(b, cols)
		var h []uint64
		if k < len(s.Hashes) {
			h = s.Hashes[k]
		}
		b = appendUvarint(b, uint64(len(h)))
		for _, x := range h {
			b = appendUvarint(b, x)
		}
	}
	return b
}

func decodeSlice(b []byte) (Slice, []byte, error) {
	n, b, err := decodeUvarint(b)
	if err != nil {
		return Slice{}, nil, fmt.Errorf("slice length: %w", err)
	}
	s := Slice{
		Rows: make([]algebra.Tuple, 0, capBy(n, b)),
		Idx:  make([]int32, 0, capBy(n, b)),
	}
	for i := uint64(0); i < n; i++ {
		var idx int64
		if idx, b, err = decodeVarint(b); err != nil {
			return Slice{}, nil, fmt.Errorf("slice row %d idx: %w", i, err)
		}
		var t algebra.Tuple
		if t, b, err = wal.DecodeTuple(b); err != nil {
			return Slice{}, nil, fmt.Errorf("slice row %d: %w", i, err)
		}
		s.Idx = append(s.Idx, int32(idx))
		s.Rows = append(s.Rows, t)
	}
	nh, b, err := decodeUvarint(b)
	if err != nil {
		return Slice{}, nil, fmt.Errorf("slice hash-set count: %w", err)
	}
	for k := uint64(0); k < nh; k++ {
		var cols []int
		if cols, b, err = decodeInts(b); err != nil {
			return Slice{}, nil, fmt.Errorf("slice hash set %d cols: %w", k, err)
		}
		var hn uint64
		if hn, b, err = decodeUvarint(b); err != nil {
			return Slice{}, nil, fmt.Errorf("slice hash set %d length: %w", k, err)
		}
		h := make([]uint64, 0, capBy(hn, b))
		for i := uint64(0); i < hn; i++ {
			var x uint64
			if x, b, err = decodeUvarint(b); err != nil {
				return Slice{}, nil, fmt.Errorf("slice hash set %d elem %d: %w", k, i, err)
			}
			h = append(h, x)
		}
		s.HashCols = append(s.HashCols, cols)
		s.Hashes = append(s.Hashes, h)
	}
	return s, b, nil
}

// ---------------------------------------------------------------------------
// ScatterReq.

// EncodeScatter serializes a scatter request.
func EncodeScatter(req *ScatterReq) []byte {
	b := []byte{tagScatter}
	b = appendInt(b, req.Epoch)
	if req.Leaf.Mat {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendInt(b, int64(req.Leaf.ID))
	b = appendString(b, req.Leaf.Rel)
	b = appendUvarint(b, uint64(len(req.Stages)))
	for _, st := range req.Stages {
		b = append(b, byte(st.Kind))
		switch st.Kind {
		case StageFilter:
			b = appendCmps(b, st.Pred)
		case StageProject:
			b = appendInts(b, st.Cols)
		case StageJoin:
			if st.BuildIsLeft {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = appendInts(b, st.BCols)
			b = appendInts(b, st.PCols)
			b = appendRows(b, st.Build)
			if st.HasResidual {
				b = append(b, 1)
				b = appendCmps(b, st.Residual)
			} else {
				b = append(b, 0)
			}
		}
	}
	return b
}

// DecodeScatter parses a scatter request (the payload must carry the 'S'
// tag). Never panics.
func DecodeScatter(b []byte) (*ScatterReq, error) {
	if len(b) < 1 || b[0] != tagScatter {
		return nil, fmt.Errorf("shard: not a scatter message")
	}
	b = b[1:]
	var req ScatterReq
	var err error
	if req.Epoch, b, err = decodeVarint(b); err != nil {
		return nil, fmt.Errorf("shard: scatter epoch: %w", err)
	}
	if len(b) < 1 {
		return nil, fmt.Errorf("shard: scatter leaf: truncated")
	}
	req.Leaf.Mat = b[0] == 1
	b = b[1:]
	var id int64
	if id, b, err = decodeVarint(b); err != nil {
		return nil, fmt.Errorf("shard: scatter leaf id: %w", err)
	}
	req.Leaf.ID = int32(id)
	if req.Leaf.Rel, b, err = decodeString(b); err != nil {
		return nil, fmt.Errorf("shard: scatter leaf rel: %w", err)
	}
	n, b, err := decodeUvarint(b)
	if err != nil {
		return nil, fmt.Errorf("shard: stage count: %w", err)
	}
	req.Stages = make([]Stage, 0, capBy(n, b))
	for i := uint64(0); i < n; i++ {
		if len(b) < 1 {
			return nil, fmt.Errorf("shard: stage %d: missing kind", i)
		}
		st := Stage{Kind: StageKind(b[0])}
		b = b[1:]
		switch st.Kind {
		case StageFilter:
			if st.Pred, b, err = decodeCmps(b); err != nil {
				return nil, fmt.Errorf("shard: stage %d filter: %w", i, err)
			}
		case StageProject:
			if st.Cols, b, err = decodeInts(b); err != nil {
				return nil, fmt.Errorf("shard: stage %d project: %w", i, err)
			}
		case StageJoin:
			if len(b) < 1 {
				return nil, fmt.Errorf("shard: stage %d join: truncated", i)
			}
			st.BuildIsLeft = b[0] == 1
			b = b[1:]
			if st.BCols, b, err = decodeInts(b); err != nil {
				return nil, fmt.Errorf("shard: stage %d bcols: %w", i, err)
			}
			if st.PCols, b, err = decodeInts(b); err != nil {
				return nil, fmt.Errorf("shard: stage %d pcols: %w", i, err)
			}
			if len(st.BCols) != len(st.PCols) {
				return nil, fmt.Errorf("shard: stage %d: key arity mismatch %d/%d", i, len(st.BCols), len(st.PCols))
			}
			if st.Build, b, err = decodeRows(b); err != nil {
				return nil, fmt.Errorf("shard: stage %d build: %w", i, err)
			}
			if len(b) < 1 {
				return nil, fmt.Errorf("shard: stage %d residual flag: truncated", i)
			}
			st.HasResidual = b[0] == 1
			b = b[1:]
			if st.HasResidual {
				if st.Residual, b, err = decodeCmps(b); err != nil {
					return nil, fmt.Errorf("shard: stage %d residual: %w", i, err)
				}
			}
		default:
			return nil, fmt.Errorf("shard: stage %d: unknown kind %d", i, st.Kind)
		}
		req.Stages = append(req.Stages, st)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("shard: %d trailing bytes after scatter", len(b))
	}
	return &req, nil
}

// ---------------------------------------------------------------------------
// Partial.

// EncodePartial serializes one shard's gathered partial.
func EncodePartial(p *Partial) []byte {
	b := []byte{tagPartial}
	b = appendInt(b, p.Epoch)
	b = appendUvarint(b, uint64(len(p.Rows)))
	for i, t := range p.Rows {
		b = appendInt(b, int64(p.Ord[i]))
		b = wal.AppendTuple(b, t)
	}
	return b
}

// DecodePartial parses a partial. Never panics.
func DecodePartial(b []byte) (*Partial, error) {
	if len(b) < 1 || b[0] != tagPartial {
		return nil, fmt.Errorf("shard: not a partial message")
	}
	b = b[1:]
	var p Partial
	var err error
	if p.Epoch, b, err = decodeVarint(b); err != nil {
		return nil, fmt.Errorf("shard: partial epoch: %w", err)
	}
	n, b, err := decodeUvarint(b)
	if err != nil {
		return nil, fmt.Errorf("shard: partial count: %w", err)
	}
	p.Rows = make([]algebra.Tuple, 0, capBy(n, b))
	p.Ord = make([]int32, 0, capBy(n, b))
	for i := uint64(0); i < n; i++ {
		var ord int64
		if ord, b, err = decodeVarint(b); err != nil {
			return nil, fmt.Errorf("shard: partial row %d ord: %w", i, err)
		}
		var t algebra.Tuple
		if t, b, err = wal.DecodeTuple(b); err != nil {
			return nil, fmt.Errorf("shard: partial row %d: %w", i, err)
		}
		p.Ord = append(p.Ord, int32(ord))
		p.Rows = append(p.Rows, t)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("shard: %d trailing bytes after partial", len(b))
	}
	return &p, nil
}

// ---------------------------------------------------------------------------
// StageReq.

// EncodeStage serializes an epoch stage request. Map iteration is sorted so
// identical requests encode to identical bytes.
func EncodeStage(req *StageReq) []byte {
	b := []byte{tagStage}
	b = appendInt(b, req.Epoch)
	b = appendInt(b, req.From)
	if req.Base {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendUvarint(b, uint64(len(req.Drops)))
	for _, d := range req.Drops {
		b = appendInt(b, int64(d))
	}
	names := make([]string, 0, len(req.Rels))
	for name := range req.Rels {
		names = append(names, name)
	}
	sort.Strings(names)
	b = appendUvarint(b, uint64(len(names)))
	for _, name := range names {
		b = appendString(b, name)
		b = appendSlice(b, req.Rels[name])
	}
	ids := make([]int, 0, len(req.Mats))
	for id := range req.Mats {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	b = appendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = appendInt(b, int64(id))
		b = appendSlice(b, req.Mats[int32(id)])
	}
	return b
}

// DecodeStage parses a stage request. Never panics.
func DecodeStage(b []byte) (*StageReq, error) {
	if len(b) < 1 || b[0] != tagStage {
		return nil, fmt.Errorf("shard: not a stage message")
	}
	b = b[1:]
	var req StageReq
	var err error
	if req.Epoch, b, err = decodeVarint(b); err != nil {
		return nil, fmt.Errorf("shard: stage epoch: %w", err)
	}
	if req.From, b, err = decodeVarint(b); err != nil {
		return nil, fmt.Errorf("shard: stage from: %w", err)
	}
	if len(b) < 1 {
		return nil, fmt.Errorf("shard: stage base flag: truncated")
	}
	req.Base = b[0] == 1
	b = b[1:]
	nd, b, err := decodeUvarint(b)
	if err != nil {
		return nil, fmt.Errorf("shard: drop count: %w", err)
	}
	req.Drops = make([]int32, 0, capBy(nd, b))
	for i := uint64(0); i < nd; i++ {
		var d int64
		if d, b, err = decodeVarint(b); err != nil {
			return nil, fmt.Errorf("shard: drop %d: %w", i, err)
		}
		req.Drops = append(req.Drops, int32(d))
	}
	nr, b, err := decodeUvarint(b)
	if err != nil {
		return nil, fmt.Errorf("shard: rel count: %w", err)
	}
	req.Rels = make(map[string]Slice, capBy(nr, b))
	for i := uint64(0); i < nr; i++ {
		var name string
		if name, b, err = decodeString(b); err != nil {
			return nil, fmt.Errorf("shard: rel %d name: %w", i, err)
		}
		var s Slice
		if s, b, err = decodeSlice(b); err != nil {
			return nil, fmt.Errorf("shard: rel %q: %w", name, err)
		}
		req.Rels[name] = s
	}
	nm, b, err := decodeUvarint(b)
	if err != nil {
		return nil, fmt.Errorf("shard: mat count: %w", err)
	}
	req.Mats = make(map[int32]Slice, capBy(nm, b))
	for i := uint64(0); i < nm; i++ {
		var id int64
		if id, b, err = decodeVarint(b); err != nil {
			return nil, fmt.Errorf("shard: mat %d id: %w", i, err)
		}
		var s Slice
		if s, b, err = decodeSlice(b); err != nil {
			return nil, fmt.Errorf("shard: mat %d: %w", id, err)
		}
		req.Mats[int32(id)] = s
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("shard: %d trailing bytes after stage", len(b))
	}
	return &req, nil
}

// ---------------------------------------------------------------------------
// Hello.

// EncodeHello serializes a worker hello.
func EncodeHello(h *Hello) []byte {
	b := []byte{tagHello}
	b = appendInt(b, int64(h.Shard))
	b = appendInt(b, int64(h.Shards))
	b = appendInt(b, int64(h.Partitions))
	b = appendInt(b, h.Staged)
	b = appendInt(b, h.Committed)
	return b
}

// DecodeHello parses a hello. Never panics.
func DecodeHello(b []byte) (*Hello, error) {
	if len(b) < 1 || b[0] != tagHello {
		return nil, fmt.Errorf("shard: not a hello message")
	}
	b = b[1:]
	var h Hello
	var err error
	var x int64
	if x, b, err = decodeVarint(b); err != nil {
		return nil, fmt.Errorf("shard: hello shard: %w", err)
	}
	h.Shard = int(x)
	if x, b, err = decodeVarint(b); err != nil {
		return nil, fmt.Errorf("shard: hello shards: %w", err)
	}
	h.Shards = int(x)
	if x, b, err = decodeVarint(b); err != nil {
		return nil, fmt.Errorf("shard: hello partitions: %w", err)
	}
	h.Partitions = int(x)
	if h.Staged, b, err = decodeVarint(b); err != nil {
		return nil, fmt.Errorf("shard: hello staged: %w", err)
	}
	if h.Committed, b, err = decodeVarint(b); err != nil {
		return nil, fmt.Errorf("shard: hello committed: %w", err)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("shard: %d trailing bytes after hello", len(b))
	}
	return &h, nil
}

// DecodeMessage dispatches on the tag byte and parses any shard wire
// message; the fuzz entry point. Never panics.
func DecodeMessage(b []byte) (any, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("shard: empty message")
	}
	switch b[0] {
	case tagScatter:
		return DecodeScatter(b)
	case tagStage:
		return DecodeStage(b)
	case tagPartial:
		return DecodePartial(b)
	case tagHello:
		return DecodeHello(b)
	default:
		return nil, fmt.Errorf("shard: unknown message tag %#x", b[0])
	}
}
