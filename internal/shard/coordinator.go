package shard

// Coordinator: drives the two-phase epoch install over a set of shard
// clients and gathers scattered partials back into single-node row order.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/storage"
)

// Client is the transport face of one worker shard. Implementations must be
// safe for concurrent use; InProc and the net/rpc client both qualify.
type Client interface {
	Hello() (*Hello, error)
	Stage(req *StageReq) error
	Commit(epoch int64) error
	Scatter(req *ScatterReq) (*Partial, error)
	Close() error
}

// Coordinator owns the serving gate and the staged-baseline bookkeeping of
// the two-phase install. Install/Rejoin serialize on an internal mutex;
// Scatter and Gate are lock-free against the atomic gate.
type Coordinator struct {
	asg Assignment
	// cmu guards only the client table, so scatters (readers) never wait
	// behind a full install round for a snapshot of it.
	cmu     sync.RWMutex
	clients []Client

	// gate is the highest fully installed epoch (-1 before the first
	// install). It flips with a release store only after EVERY shard has
	// durably staged that epoch; reader acquire loads therefore always name
	// an epoch whose state exists on all shards.
	gate atomic.Int64

	mu sync.Mutex
	// prevRels/prevMats are the relation versions of the last epoch every
	// shard acknowledged — the pointer-diff baseline. They advance only
	// after an install round succeeds on all shards, so a failed round
	// re-diffs against the old baseline and the retried delta is a superset
	// of anything a straggler missed.
	prevRels  map[string]*storage.Relation
	prevMats  map[int]*storage.Relation
	prevEpoch int64
	// lastReqs remembers each shard's most recent StageReq for cheap rejoin
	// (resend beats re-bootstrapping when the restarted worker only missed
	// the latest delta).
	lastReqs []*StageReq

	// TestHookAfterStage, when set, runs after every shard has staged an
	// epoch and before the gate flips — the window fault-injection tests
	// kill workers in.
	TestHookAfterStage func(epoch int64)
}

// NewCoordinator wires a coordinator to one client per shard of the
// assignment.
func NewCoordinator(asg Assignment, clients []Client) (*Coordinator, error) {
	asg = asg.Norm()
	if len(clients) != asg.Shards {
		return nil, fmt.Errorf("shard: %d clients for %d shards", len(clients), asg.Shards)
	}
	c := &Coordinator{
		asg:       asg,
		clients:   append([]Client(nil), clients...),
		prevEpoch: -1,
		lastReqs:  make([]*StageReq, len(clients)),
	}
	c.gate.Store(-1)
	return c, nil
}

// Assignment returns the coordinator's normalized assignment.
func (c *Coordinator) Assignment() Assignment { return c.asg }

// Gate returns the highest fully installed epoch (-1 before the first
// install). Readers pin it, plan at the matching snapshot, and scatter with
// it.
func (c *Coordinator) Gate() int64 { return c.gate.Load() }

// Install runs the two-phase install of snap's epoch: pointer-diff against
// the staged baseline, stage the per-shard slices everywhere, and only then
// flip the gate. On any staging error the gate and baseline are left
// untouched — a later Install (or Rejoin) retries with a superset delta and
// workers deduplicate by epoch. Commit messages after the flip are advisory
// pruning; their errors are ignored.
func (c *Coordinator) Install(snap *storage.Snapshot) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	epoch := snap.Epoch()
	if epoch <= c.gate.Load() {
		return nil
	}
	base := c.prevRels == nil

	changedRels := make(map[string]*storage.Relation)
	for _, name := range snap.Database().Names() {
		rel := snap.Relation(name)
		if rel == nil {
			continue
		}
		if base || c.prevRels[name] != rel {
			changedRels[name] = rel
		}
	}
	mats := snap.Mats()
	changedMats := make(map[int]*storage.Relation)
	for id, rel := range mats {
		if base || c.prevMats[id] != rel {
			changedMats[id] = rel
		}
	}
	var drops []int32
	for id := range c.prevMats {
		if _, ok := mats[id]; !ok {
			drops = append(drops, int32(id))
		}
	}

	clients := c.snapshotClients()
	reqs := make([]*StageReq, len(clients))
	for s, rg := range c.asg.Ranges() {
		req := &StageReq{
			Epoch: epoch,
			From:  c.prevEpoch,
			Base:  base,
			Drops: append([]int32(nil), drops...),
			Rels:  make(map[string]Slice, len(changedRels)),
			Mats:  make(map[int32]Slice, len(changedMats)),
		}
		if base {
			req.From = -1
		}
		for name, rel := range changedRels {
			req.Rels[name] = SliceOf(rel, c.asg, rg[0], rg[1])
		}
		for id, rel := range changedMats {
			req.Mats[int32(id)] = SliceOf(rel, c.asg, rg[0], rg[1])
		}
		reqs[s] = req
	}

	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for s, cl := range clients {
		wg.Add(1)
		go func(s int, cl Client) {
			defer wg.Done()
			errs[s] = cl.Stage(reqs[s])
		}(s, cl)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return fmt.Errorf("shard: stage epoch %d on shard %d: %w", epoch, s, err)
		}
	}

	// All shards hold epoch durably: advance the baseline, then flip.
	c.prevRels = make(map[string]*storage.Relation, len(snap.Database().Names()))
	for _, name := range snap.Database().Names() {
		if rel := snap.Relation(name); rel != nil {
			c.prevRels[name] = rel
		}
	}
	c.prevMats = mats
	c.prevEpoch = epoch
	copy(c.lastReqs, reqs)
	if c.TestHookAfterStage != nil {
		c.TestHookAfterStage(epoch)
	}
	c.gate.Store(epoch)
	for _, cl := range clients {
		cl.Commit(epoch)
	}
	return nil
}

// Scatter fans req out to every shard and merges the partials by ascending
// scatter-leaf index into a relation with the given schema — the single-node
// row order. Every partial must come back at req.Epoch.
func (c *Coordinator) Scatter(req *ScatterReq, schema algebra.Schema) (*storage.Relation, error) {
	clients := c.snapshotClients()
	parts := make([]*Partial, len(clients))
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for s, cl := range clients {
		wg.Add(1)
		go func(s int, cl Client) {
			defer wg.Done()
			parts[s], errs[s] = cl.Scatter(req)
		}(s, cl)
	}
	wg.Wait()
	total := 0
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: scatter to shard %d: %w", s, err)
		}
		if parts[s].Epoch != req.Epoch {
			return nil, fmt.Errorf("shard: shard %d answered epoch %d for scatter at %d", s, parts[s].Epoch, req.Epoch)
		}
		total += len(parts[s].Rows)
	}
	return mergePartials(parts, schema, total), nil
}

// mergePartials is the gather: an S-way merge on the ascending Ord streams.
// Equal Ord values never cross shards (each leaf row lives on exactly one
// shard), so draining the full run of the minimal head preserves the
// single-node emission order within one probe row too.
func mergePartials(parts []*Partial, schema algebra.Schema, total int) *storage.Relation {
	out := storage.NewRelation(schema)
	heads := make([]int, len(parts))
	for {
		min, minOrd := -1, int32(0)
		for s, p := range parts {
			if heads[s] >= len(p.Rows) {
				continue
			}
			if o := p.Ord[heads[s]]; min == -1 || o < minOrd {
				min, minOrd = s, o
			}
		}
		if min == -1 {
			return out
		}
		p := parts[min]
		for heads[min] < len(p.Rows) && p.Ord[heads[min]] == minOrd {
			out.Append(p.Rows[heads[min]])
			heads[min]++
		}
	}
}

// Rejoin brings the client at shard index i back into the install: validate
// its assignment, then — in order of preference — commit it directly if it
// already holds the gate epoch, resend the one delta it missed, or
// re-bootstrap it with a full Base stage built from snap (which must be the
// gate epoch's snapshot).
func (c *Coordinator) Rejoin(i int, snap *storage.Snapshot) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cmu.RLock()
	cl := c.clients[i]
	c.cmu.RUnlock()
	h, err := cl.Hello()
	if err != nil {
		return fmt.Errorf("shard: rejoin hello: %w", err)
	}
	if h.Shard != i || h.Shards != c.asg.Shards || h.Partitions != c.asg.Partitions {
		return fmt.Errorf("shard: rejoin assignment mismatch: worker %d/%d@%d vs coordinator %d/%d@%d",
			h.Shard, h.Shards, h.Partitions, i, c.asg.Shards, c.asg.Partitions)
	}
	gate := c.gate.Load()
	if gate < 0 {
		return nil
	}
	switch {
	case h.Staged >= gate:
		// The kill landed after staging: the state is already durable.
	case c.lastReqs[i] != nil && c.lastReqs[i].Epoch == gate && h.Staged >= c.lastReqs[i].From:
		if err := cl.Stage(c.lastReqs[i]); err != nil {
			return fmt.Errorf("shard: rejoin restage: %w", err)
		}
	default:
		if snap == nil || snap.Epoch() != gate {
			return fmt.Errorf("shard: rejoin of shard %d needs the gate snapshot (epoch %d)", i, gate)
		}
		rg := c.asg.Ranges()[i]
		req := &StageReq{
			Epoch: gate,
			From:  -1,
			Base:  true,
			Rels:  make(map[string]Slice),
			Mats:  make(map[int32]Slice),
		}
		for _, name := range snap.Database().Names() {
			if rel := snap.Relation(name); rel != nil {
				req.Rels[name] = SliceOf(rel, c.asg, rg[0], rg[1])
			}
		}
		for id, rel := range snap.Mats() {
			req.Mats[int32(id)] = SliceOf(rel, c.asg, rg[0], rg[1])
		}
		if err := cl.Stage(req); err != nil {
			return fmt.Errorf("shard: rejoin bootstrap: %w", err)
		}
		c.lastReqs[i] = req
	}
	cl.Commit(gate)
	return nil
}

// snapshotClients copies the client table under its own lock.
func (c *Coordinator) snapshotClients() []Client {
	c.cmu.RLock()
	defer c.cmu.RUnlock()
	return append([]Client(nil), c.clients...)
}

// ReplaceClient swaps shard i's client (a restarted worker's fresh
// connection) without disturbing the others.
func (c *Coordinator) ReplaceClient(i int, cl Client) {
	c.cmu.Lock()
	c.clients[i] = cl
	c.cmu.Unlock()
}

// Close closes every client.
func (c *Coordinator) Close() error {
	var first error
	for _, cl := range c.snapshotClients() {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
