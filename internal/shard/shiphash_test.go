package shard

// Shipped-hash tests: the coordinator's already-built key-hash columns ride
// inside every Slice (SliceOf gathers them from the relation's ColView
// cache), and workers seed their per-state hash cache from them — so on the
// hot install path a worker performs ZERO hash building, not merely one
// amortized pass per key set.

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/storage"
)

// TestSliceOfShipsCachedHashes: after the coordinator warms a relation's
// ColView hash cache (as its own joins and aggregations do), SliceOf gathers
// the cached column down to each shard's slice, elementwise equal to what the
// worker would have built.
func TestSliceOfShipsCachedHashes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rel := randRelation(rng, 200)
	cols := []int{0}
	rel.ColView().KeyHashes(cols, storage.Par{})

	a := Assignment{Partitions: 8, Shards: 3}.Norm()
	total := 0
	for _, rg := range a.Ranges() {
		s := SliceOf(rel, a, rg[0], rg[1])
		total += len(s.Rows)
		if len(s.HashCols) == 0 {
			t.Fatalf("range %v: no hash columns shipped despite warm coordinator cache", rg)
		}
		found := false
		for k, hc := range s.HashCols {
			if !sameCols(hc, cols) {
				continue
			}
			found = true
			if len(s.Hashes[k]) != len(s.Rows) {
				t.Fatalf("range %v: shipped hash column has %d entries for %d rows", rg, len(s.Hashes[k]), len(s.Rows))
			}
			for i, row := range s.Rows {
				if want := row.HashCols(cols); s.Hashes[k][i] != want {
					t.Fatalf("range %v row %d: shipped hash %#x, want %#x", rg, i, s.Hashes[k][i], want)
				}
			}
		}
		if !found {
			t.Fatalf("range %v: key set %v not among shipped hash columns %v", rg, cols, s.HashCols)
		}
	}
	if total != rel.Len() {
		t.Fatalf("slices cover %d rows, relation has %d", total, rel.Len())
	}
}

// shippedSlice builds the hashWorker relation image with the key-hash column
// for cols pre-attached, as a coordinator with a warm cache would ship it.
func shippedSlice(n int, cols []int) Slice {
	s := Slice{}
	for i := 0; i < n; i++ {
		s.Rows = append(s.Rows, algebra.Tuple{algebra.NewInt(int64(i % 7)), algebra.NewInt(int64(i))})
		s.Idx = append(s.Idx, int32(i))
	}
	h := make([]uint64, n)
	for i, row := range s.Rows {
		h[i] = row.HashCols(cols)
	}
	s.HashCols = append(s.HashCols, cols)
	s.Hashes = append(s.Hashes, h)
	return s
}

// TestScatterAdoptsShippedHashes: staging a slice that carries the probe key's
// hash column means the worker never hashes a leaf row — cacheBuilt stays 0
// across cold and warm scatters (the install-path contract), probeHashed stays
// 0, and the answers match a worker that had to build.
func TestScatterAdoptsShippedHashes(t *testing.T) {
	const n = 200
	a := Assignment{Partitions: 4, Shards: 1}.Norm()
	w, err := NewWorker(0, a, "")
	if err != nil {
		t.Fatal(err)
	}
	// joinReq filters then projects {1,0}, so its probe column 1 maps back to
	// leaf column 0 — the shipped set.
	if err := w.Stage(&StageReq{Epoch: 1, From: -1, Base: true,
		Rels: map[string]Slice{"t": shippedSlice(n, []int{0})}, Mats: map[int32]Slice{}}); err != nil {
		t.Fatal(err)
	}

	control, _ := hashWorker(t, 1, n)
	want, err := control.Scatter(joinReq(1))
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		got, err := w.Scatter(joinReq(1))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Rows) != len(want.Rows) || len(got.Rows) == 0 {
			t.Fatalf("scatter %d: %d rows, want %d (nonzero)", i, len(got.Rows), len(want.Rows))
		}
		for r, tu := range want.Rows {
			if !tu.Equal(got.Rows[r]) || want.Ord[r] != got.Ord[r] {
				t.Fatalf("scatter %d row %d: %v/%d, want %v/%d",
					i, r, got.Rows[r], got.Ord[r], tu, want.Ord[r])
			}
		}
	}
	probed, built := w.HashStats()
	if built != 0 {
		t.Fatalf("worker built hashes over %d rows despite shipped column; want 0", built)
	}
	if probed != 0 {
		t.Fatalf("worker hashed %d probe rows per-row; want 0", probed)
	}
}

// TestScatterShippedHashMismatchFallsBack: a shipped column whose length does
// not match the rows (reachable only from a malformed wire peer) is ignored —
// the worker builds as before and answers stay correct.
func TestScatterShippedHashMismatchFallsBack(t *testing.T) {
	const n = 100
	a := Assignment{Partitions: 4, Shards: 1}.Norm()
	w, err := NewWorker(0, a, "")
	if err != nil {
		t.Fatal(err)
	}
	s := shippedSlice(n, []int{0})
	s.Hashes[0] = s.Hashes[0][:n-1] // corrupt: one short
	if err := w.Stage(&StageReq{Epoch: 1, From: -1, Base: true,
		Rels: map[string]Slice{"t": s}, Mats: map[int32]Slice{}}); err != nil {
		t.Fatal(err)
	}

	control, _ := hashWorker(t, 1, n)
	want, err := control.Scatter(joinReq(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.Scatter(joinReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%d rows, want %d", len(got.Rows), len(want.Rows))
	}
	for r, tu := range want.Rows {
		if !tu.Equal(got.Rows[r]) {
			t.Fatalf("row %d: %v, want %v", r, got.Rows[r], tu)
		}
	}
	if _, built := w.HashStats(); built != int64(n) {
		t.Fatalf("fallback built %d, want %d (one full pass)", built, n)
	}
}
