// Command gencorpus regenerates the checked-in seed corpus for
// FuzzShardCodec (internal/shard/testdata/fuzz/FuzzShardCodec). Run it with
// the corpus directory as the only argument after changing the shard wire
// format, so the seeds keep exercising the current encoding.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/algebra"
	"repro/internal/shard"
)

func write(dir, name string, data []byte) {
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		panic(err)
	}
}

func main() {
	dir := os.Args[1]
	scatter := shard.EncodeScatter(&shard.ScatterReq{
		Epoch: 9,
		Leaf:  shard.LeafRef{Rel: "lineitem"},
		Stages: []shard.Stage{
			{Kind: shard.StageFilter, Pred: []algebra.BoundCmp{
				{Op: algebra.LT, LIdx: 1, RIdx: -1, RVal: algebra.NewInt(80)},
			}},
			{Kind: shard.StageJoin, BCols: []int{0}, PCols: []int{0},
				Build: []algebra.Tuple{
					{algebra.NewInt(3), algebra.NewString("ab")},
					{algebra.NewInt(-1), algebra.NewString("")},
				},
				HasResidual: true,
				Residual: []algebra.BoundCmp{
					{Op: algebra.NE, LIdx: 1, RIdx: 3},
				}},
			{Kind: shard.StageProject, Cols: []int{2, 0}},
		},
	})
	write(dir, "scatter_pipeline", scatter)
	write(dir, "scatter_mat_leaf", shard.EncodeScatter(&shard.ScatterReq{
		Epoch: 1, Leaf: shard.LeafRef{Mat: true, ID: 12},
	}))
	write(dir, "stage_delta", shard.EncodeStage(&shard.StageReq{
		Epoch: 4, From: 3, Drops: []int32{7},
		Rels: map[string]shard.Slice{"orders": {
			Rows: []algebra.Tuple{{algebra.NewInt(5), algebra.NewFloat(2.5), algebra.NewDate(2451)}},
			Idx:  []int32{9},
		}},
		Mats: map[int32]shard.Slice{3: {
			Rows: []algebra.Tuple{{algebra.NewString("k")}},
			Idx:  []int32{0},
		}},
	}))
	write(dir, "stage_base_empty", shard.EncodeStage(&shard.StageReq{
		Epoch: 0, From: -1, Base: true,
		Rels: map[string]shard.Slice{}, Mats: map[int32]shard.Slice{},
	}))
	write(dir, "partial_run", shard.EncodePartial(&shard.Partial{
		Epoch: 4,
		Rows: []algebra.Tuple{
			{algebra.NewInt(1)}, {algebra.NewInt(2)}, {algebra.NewInt(3)},
		},
		Ord: []int32{0, 0, 5},
	}))
	write(dir, "hello", shard.EncodeHello(&shard.Hello{
		Shard: 1, Shards: 4, Partitions: 16, Staged: 9, Committed: 8,
	}))
	flip := append([]byte(nil), scatter...)
	flip[len(flip)/2] ^= 0xff
	write(dir, "flipped_byte", flip)
	write(dir, "torn_tail", scatter[:len(scatter)-4])
	write(dir, "huge_len", []byte{'P', 2, 0xff, 0xff, 0xff, 0xff, 0x7f})
	write(dir, "empty", nil)
}
