package shard

// Assignment and slicing properties: shard ranges tile the partition
// universe disjointly, and the per-shard slices of a relation partition its
// rows exactly once, ascending, with a correct global-index inverse.

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/storage"
)

func TestAssignmentRangesTile(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for it := 0; it < 200; it++ {
		a := Assignment{Partitions: rng.Intn(40) - 4, Shards: rng.Intn(12) - 2}
		norm := a.Norm()
		if norm.Shards < 1 || norm.Partitions < norm.Shards {
			t.Fatalf("Norm(%+v) = %+v violates invariants", a, norm)
		}
		ranges := a.Ranges()
		if len(ranges) != norm.Shards {
			t.Fatalf("%+v: %d ranges for %d shards", norm, len(ranges), norm.Shards)
		}
		next := 0
		for s, rg := range ranges {
			if rg[0] != next {
				t.Fatalf("%+v: range %d starts at %d, want %d (gap or overlap)", norm, s, rg[0], next)
			}
			if rg[1] < rg[0] {
				t.Fatalf("%+v: range %d inverted", norm, s)
			}
			next = rg[1]
		}
		if next != norm.Partitions {
			t.Fatalf("%+v: ranges cover [0,%d), want [0,%d)", norm, next, norm.Partitions)
		}
	}
}

// randRelation builds a relation with random int/string rows.
func randRelation(rng *rand.Rand, n int) *storage.Relation {
	schema := algebra.Schema{
		{Rel: "t", Name: "a", Type: catalog.Int, Width: 8},
		{Rel: "t", Name: "b", Type: catalog.String, Width: 8},
	}
	rel := storage.NewRelation(schema)
	for i := 0; i < n; i++ {
		rel.Insert(algebra.Tuple{
			algebra.NewInt(int64(rng.Intn(50))),
			algebra.NewString(string(rune('a' + rng.Intn(26)))),
		})
	}
	return rel
}

func TestSliceOfPartitionsExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for it := 0; it < 50; it++ {
		a := Assignment{Partitions: 1 + rng.Intn(16), Shards: 1 + rng.Intn(6)}.Norm()
		rel := randRelation(rng, rng.Intn(300))
		seen := make(map[int32]int)
		for _, rg := range a.Ranges() {
			s := SliceOf(rel, a, rg[0], rg[1])
			if len(s.Rows) != len(s.Idx) {
				t.Fatalf("slice rows/idx length mismatch")
			}
			for i, idx := range s.Idx {
				if i > 0 && s.Idx[i-1] >= idx {
					t.Fatalf("slice indexes not strictly ascending at %d", i)
				}
				seen[idx]++
				if !s.Rows[i].Equal(rel.Rows()[idx]) {
					t.Fatalf("slice row %d does not match relation row %d", i, idx)
				}
			}
		}
		if len(seen) != rel.Len() {
			t.Fatalf("slices cover %d of %d rows", len(seen), rel.Len())
		}
		for idx, n := range seen {
			if n != 1 {
				t.Fatalf("row %d owned by %d shards", idx, n)
			}
		}
	}
}
