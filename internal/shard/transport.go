package shard

// InProc is the in-process transport: it drives a Worker directly, but
// round-trips EVERY message through the wire codec, so the single-process
// test harness (and the -race equivalence suites built on it) exercises the
// exact byte format the net/rpc transport ships.

import "fmt"

// InProc adapts a Worker to the Client interface through the codec.
type InProc struct {
	W *Worker
}

// Hello implements Client.
func (c InProc) Hello() (*Hello, error) {
	return DecodeHello(EncodeHello(c.W.Hello()))
}

// Stage implements Client.
func (c InProc) Stage(req *StageReq) error {
	wire, err := DecodeStage(EncodeStage(req))
	if err != nil {
		return fmt.Errorf("shard: stage round-trip: %w", err)
	}
	return c.W.Stage(wire)
}

// Commit implements Client.
func (c InProc) Commit(epoch int64) error {
	return c.W.Commit(epoch)
}

// Scatter implements Client.
func (c InProc) Scatter(req *ScatterReq) (*Partial, error) {
	wire, err := DecodeScatter(EncodeScatter(req))
	if err != nil {
		return nil, fmt.Errorf("shard: scatter round-trip: %w", err)
	}
	p, err := c.W.Scatter(wire)
	if err != nil {
		return nil, err
	}
	return DecodePartial(EncodePartial(p))
}

// Close implements Client.
func (c InProc) Close() error { return c.W.Close() }
