package shard

// net/rpc transport. Both directions carry pre-encoded shard wire messages
// inside an opaque Blob, so the rpc layer adds framing and connection
// management only — the payload format (and its fuzz-tested decoder) is
// identical to the in-process harness.

import (
	"fmt"
	"net"
	"net/rpc"
)

// Blob is the single net/rpc argument/reply type: an opaque, codec-encoded
// shard message.
type Blob struct {
	B []byte
}

// Service is the rpc-exported worker wrapper.
type Service struct {
	w *Worker
}

// Hello returns the worker's encoded Hello.
func (s *Service) Hello(_ *Blob, reply *Blob) error {
	reply.B = EncodeHello(s.w.Hello())
	return nil
}

// Stage decodes and durably applies a StageReq.
func (s *Service) Stage(args *Blob, reply *Blob) error {
	req, err := DecodeStage(args.B)
	if err != nil {
		return err
	}
	return s.w.Stage(req)
}

// Commit records an advisory commit; the epoch rides in a Hello-less varint
// blob.
func (s *Service) Commit(args *Blob, reply *Blob) error {
	epoch, rest, err := decodeVarint(args.B)
	if err != nil || len(rest) != 0 {
		return fmt.Errorf("shard: bad commit payload")
	}
	return s.w.Commit(epoch)
}

// Scatter decodes a ScatterReq, runs it, and returns the encoded Partial.
func (s *Service) Scatter(args *Blob, reply *Blob) error {
	req, err := DecodeScatter(args.B)
	if err != nil {
		return err
	}
	p, err := s.w.Scatter(req)
	if err != nil {
		return err
	}
	reply.B = EncodePartial(p)
	return nil
}

// Serve accepts rpc connections for the worker until the listener closes.
// It blocks; run it in a goroutine (or as a worker process's main loop).
func Serve(l net.Listener, w *Worker) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Shard", &Service{w: w}); err != nil {
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// RPCClient is the Client over one net/rpc connection.
type RPCClient struct {
	c *rpc.Client
}

// Dial connects to a worker's rpc listener.
func Dial(addr string) (*RPCClient, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &RPCClient{c: c}, nil
}

// Hello implements Client.
func (c *RPCClient) Hello() (*Hello, error) {
	var reply Blob
	if err := c.c.Call("Shard.Hello", &Blob{}, &reply); err != nil {
		return nil, err
	}
	return DecodeHello(reply.B)
}

// Stage implements Client.
func (c *RPCClient) Stage(req *StageReq) error {
	var reply Blob
	return c.c.Call("Shard.Stage", &Blob{B: EncodeStage(req)}, &reply)
}

// Commit implements Client.
func (c *RPCClient) Commit(epoch int64) error {
	var reply Blob
	return c.c.Call("Shard.Commit", &Blob{B: appendInt(nil, epoch)}, &reply)
}

// Scatter implements Client.
func (c *RPCClient) Scatter(req *ScatterReq) (*Partial, error) {
	var reply Blob
	if err := c.c.Call("Shard.Scatter", &Blob{B: EncodeScatter(req)}, &reply); err != nil {
		return nil, err
	}
	return DecodePartial(reply.B)
}

// Close implements Client.
func (c *RPCClient) Close() error { return c.c.Close() }
