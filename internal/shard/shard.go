// Package shard scales the partition-parallel engine across processes: a
// coordinator (the refresh writer, which keeps the full state and the shared
// AND-OR DAG) scatters served queries to worker shards that each own a
// contiguous range of the hash partitions of every stored relation, and
// gathers the partial results back in fixed partition order.
//
// # Ownership
//
// The unit of distribution is the storage.PartView hash partition (PR 5):
// every relation version exposes per-partition ascending row-index lists
// over the full-tuple hash. An Assignment fixes a partition count P and a
// shard count S; shard s owns the contiguous partition range
// MorselRanges(P, S)[s] of EVERY base relation and materialized result, as a
// Slice — the owned rows in ascending global row index plus those indexes.
// Because the partitioning is value-based (hash mod P) and the ranges tile
// [0, P) disjointly, each global row belongs to exactly one shard and the
// concatenation of all slices in shard order is a permutation of the
// relation with a known inverse (the index lists).
//
// # Scatter-gather and byte-identity
//
// A served plan is lowered (Lower) into a linear pipeline over one scatter
// leaf — the transitive probe side of its join tree, chosen by the same
// plan-estimate rule as the local executor (exec.BuildLeftFromPlan) — with
// every non-spine join input executed coordinator-side and broadcast inline
// when it is at or below the local broadcast threshold (exec.BroadcastMax).
// Each worker runs the pipeline over its slice only, tagging every output
// row with the global index of the scatter-leaf row it derives from (Ord);
// since filters and projections preserve derivation and a join's emissions
// are a function of the single probe row, merging the partials by ascending
// Ord reproduces the single-node row order exactly. Plans the lowering
// cannot express (aggregate/dedup/union/minus computes, oversized build
// sides) fall back to coordinator-local execution at the same epoch — a
// correctness-neutral slow path.
//
// # Two-phase epoch install
//
// Epoch publication is two-phase (Coordinator.Install): the coordinator
// pointer-diffs the previous staged snapshot against the new one (COW
// publication shares unchanged relation pointers, so the diff is exact),
// sends every shard its changed slices as a StageReq, and only after all
// shards have durably acknowledged staging epoch N does it flip the serving
// gate to N (an atomic store; Commit to the workers is advisory pruning).
// The happens-before argument mirrors the snapshot store's: every stage
// write — including each worker's log append and fsync — happens before the
// gate's release store, and a reader's acquire load of the gate therefore
// finds epoch N staged on every shard it scatters to. A reader never
// observes a partial epoch: until the flip, scatters run at the old gate
// against the old staged states, which staging N never mutates.
//
// Workers persist every StageReq to a stage log built on the wal package's
// CRC32C framing before acknowledging, so a SIGKILLed worker recovers its
// staged states by replay (torn tails truncate, exactly like the WAL) and
// reports its staged epoch in Hello; Coordinator.Rejoin then commits it
// directly, resends the one missed delta, or re-bootstraps it with a full
// Base stage, in that order of preference.
package shard

import (
	"sort"

	"repro/internal/algebra"
	"repro/internal/storage"
)

// Assignment fixes the partition universe and its division into shards.
// Both sides of the transport must agree on it; Hello carries it for
// validation.
type Assignment struct {
	// Partitions is the hash-partition count P every relation is sliced at.
	Partitions int
	// Shards is the number of workers tiling [0, P).
	Shards int
}

// Norm clamps the assignment to at least one partition per shard.
func (a Assignment) Norm() Assignment {
	if a.Shards < 1 {
		a.Shards = 1
	}
	if a.Partitions < a.Shards {
		a.Partitions = a.Shards
	}
	return a
}

// Par is the storage partitioning configuration slices are derived with.
func (a Assignment) Par() storage.Par { return storage.Par{Partitions: a.Partitions} }

// Ranges returns each shard's contiguous partition range [lo, hi); the
// ranges tile [0, Partitions) disjointly in shard order.
func (a Assignment) Ranges() [][2]int {
	a = a.Norm()
	return storage.MorselRanges(a.Partitions, a.Shards)
}

// Slice is one shard's image of one relation: the owned rows in ascending
// global row index, plus those indexes (the merge key for gathers and the
// carrier of the partition-order contract).
//
// HashCols/Hashes optionally ship the coordinator's already-built key-hash
// columns alongside the rows, gathered down to the slice: Hashes[k][i] ==
// Rows[i].HashCols(HashCols[k]). Workers seed their per-state hash cache
// from them instead of paying a build pass per (leaf, key set) on first
// probe. The fields are advisory — a worker validates lengths before
// adopting and falls back to building, so malformed wire input degrades to
// the old behavior rather than corrupting joins.
type Slice struct {
	Rows []algebra.Tuple
	Idx  []int32

	HashCols [][]int
	Hashes   [][]uint64
}

// SliceOf extracts the slice of rel owned by the partition range [lo, hi)
// under the assignment's partitioning. The per-partition index lists are
// each ascending; their union is sorted once so the slice is ascending in
// global row index. Every key-hash column already cached on the relation's
// ColView (warmed by the coordinator's own joins and aggregations over this
// version) is gathered through the same indexes and shipped, so workers
// never rebuild hashes the coordinator has already paid for.
func SliceOf(rel *storage.Relation, a Assignment, lo, hi int) Slice {
	pv := rel.PartView(a.Par())
	total := 0
	for p := lo; p < hi; p++ {
		total += len(pv.Rows(p))
	}
	idx := make([]int32, 0, total)
	for p := lo; p < hi; p++ {
		idx = append(idx, pv.Rows(p)...)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	rows := rel.Rows()
	out := Slice{Rows: make([]algebra.Tuple, len(idx)), Idx: idx}
	for i, j := range idx {
		out.Rows[i] = rows[j]
	}
	cols, hashes := rel.ColView().CachedKeys()
	for k := range cols {
		if len(hashes[k]) != len(rows) {
			continue
		}
		h := make([]uint64, len(idx))
		for i, j := range idx {
			h[i] = hashes[k][j]
		}
		out.HashCols = append(out.HashCols, cols[k])
		out.Hashes = append(out.Hashes, h)
	}
	return out
}
