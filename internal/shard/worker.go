package shard

// Worker: owns one contiguous partition range, holds a bounded window of
// staged epoch states, executes scatter pipelines against them, and — when
// given a directory — persists every stage request to a CRC-framed stage log
// before acknowledging, so a SIGKILLed worker recovers its staged epochs by
// replay.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/wal"
)

// keepStates bounds the in-memory epoch window per worker. The coordinator
// commits (prunes) after every install, so the window only has to cover
// epochs between two installs plus in-flight readers.
const keepStates = 8

// stageLogName is the per-worker stage log file.
const stageLogName = "stage.log"

// state is one staged epoch's image of the shard's slices. States are
// immutable once entered into the window: applying a delta builds fresh maps
// (sharing unchanged Slice values), so scatters read them without locks. The
// hash cache is the one mutable attachment: per-leaf key-column hashes built
// lazily by the first join that probes them and reused — monotone and
// guarded by hmu, so it never compromises the immutability the scatter path
// relies on.
type state struct {
	rels map[string]Slice
	mats map[int32]Slice

	hmu    sync.Mutex
	hcache map[hashKey][]uint64
}

// hashKey identifies one cached hash column set: the scatter leaf plus the
// leaf-relative key columns, rendered as a canonical string.
type hashKey struct {
	mat  bool
	id   int32
	rel  string
	cols string
}

// hashesFor returns the leaf's per-row hashes over cols, adopting a hash
// column the coordinator shipped inside the slice when one matches, and
// otherwise building on first use (one HashCols per leaf row per distinct
// key-column set per epoch); built reports whether this call paid for a
// build — adopting shipped hashes is free and does not count. Returns nil
// when any row is too narrow for cols — ragged slices are only reachable
// from the wire, and the caller then falls back to the width-checked
// per-row path.
func (st *state) hashesFor(key hashKey, leaf Slice, cols []int) (hashes []uint64, built bool) {
	st.hmu.Lock()
	defer st.hmu.Unlock()
	if h, ok := st.hcache[key]; ok {
		return h, false
	}
	for k, hc := range leaf.HashCols {
		if k >= len(leaf.Hashes) || len(leaf.Hashes[k]) != len(leaf.Rows) {
			continue // malformed wire input: lengths must line up
		}
		if !sameCols(hc, cols) {
			continue
		}
		if st.hcache == nil {
			st.hcache = make(map[hashKey][]uint64)
		}
		st.hcache[key] = leaf.Hashes[k]
		return leaf.Hashes[k], false
	}
	need := maxIdx(cols)
	for _, t := range leaf.Rows {
		if need >= len(t) {
			return nil, false
		}
	}
	h := make([]uint64, len(leaf.Rows))
	for i, t := range leaf.Rows {
		h[i] = t.HashCols(cols)
	}
	if st.hcache == nil {
		st.hcache = make(map[hashKey][]uint64)
	}
	st.hcache[key] = h
	return h, true
}

// Worker executes one shard. Methods are safe for concurrent use.
type Worker struct {
	shard int
	asg   Assignment
	dir   string // "" disables durability (in-proc tests)

	// Scatter hash instrumentation (see HashStats).
	probeHashed atomic.Int64
	cacheBuilt  atomic.Int64

	mu        sync.Mutex
	closed    bool
	logF      *os.File
	states    map[int64]*state
	order     []int64 // staged epochs, ascending
	staged    int64   // highest durably staged epoch, -1 none
	committed int64   // highest commit seen, -1 none
}

// NewWorker creates a worker for shard index `shard` of the assignment. A
// non-empty dir enables the durable stage log; existing log contents are
// replayed (torn or corrupt tails truncate, exactly like the WAL).
func NewWorker(shard int, asg Assignment, dir string) (*Worker, error) {
	asg = asg.Norm()
	if shard < 0 || shard >= asg.Shards {
		return nil, fmt.Errorf("shard: worker index %d out of range [0,%d)", shard, asg.Shards)
	}
	w := &Worker{
		shard:     shard,
		asg:       asg,
		dir:       dir,
		states:    make(map[int64]*state),
		staged:    -1,
		committed: -1,
	}
	if dir == "" {
		return w, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := w.recover(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, stageLogName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w.logF = f
	return w, nil
}

// recover replays the stage log, applying each staged epoch in order, and
// truncates the log after the last intact frame.
func (w *Worker) recover() error {
	path := filepath.Join(w.dir, stageLogName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	good := 0
	rest := data
	for len(rest) > 0 {
		payload, next, n, err := wal.NextFrame(rest)
		if err != nil {
			break // torn or corrupt tail: recover the prefix
		}
		req, err := DecodeStage(payload)
		if err != nil {
			break
		}
		if applyErr := w.applyLocked(req); applyErr != nil {
			return fmt.Errorf("shard: stage log replay at offset %d: %w", good, applyErr)
		}
		good += n
		rest = next
	}
	if good != len(data) {
		if err := os.Truncate(path, int64(good)); err != nil {
			return err
		}
	}
	return nil
}

// Hello reports the worker's identity and durable progress.
func (w *Worker) Hello() *Hello {
	w.mu.Lock()
	defer w.mu.Unlock()
	return &Hello{
		Shard:      w.shard,
		Shards:     w.asg.Shards,
		Partitions: w.asg.Partitions,
		Staged:     w.staged,
		Committed:  w.committed,
	}
}

// Stage durably installs one epoch: the request is framed, appended to the
// stage log, and fsynced BEFORE the in-memory window is updated and the call
// acknowledges — the staging half of the two-phase install. Re-staging an
// epoch at or below the staged watermark is an idempotent no-op.
func (w *Worker) Stage(req *StageReq) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("shard %d: worker closed", w.shard)
	}
	if req.Epoch <= w.staged {
		return nil
	}
	if !req.Base && w.staged < req.From {
		return fmt.Errorf("shard %d: delta from epoch %d but staged only %d", w.shard, req.From, w.staged)
	}
	if w.logF != nil {
		if req.Base {
			if err := w.rewriteLogLocked(req); err != nil {
				return err
			}
		} else {
			frame := wal.AppendFrame(nil, EncodeStage(req))
			if _, err := w.logF.Write(frame); err != nil {
				return err
			}
			if err := w.logF.Sync(); err != nil {
				return err
			}
		}
	}
	return w.applyLocked(req)
}

// rewriteLogLocked replaces the stage log with a single Base frame
// (tmp-write, fsync, rename, dir fsync), resetting growth after bootstraps.
func (w *Worker) rewriteLogLocked(req *StageReq) error {
	path := filepath.Join(w.dir, stageLogName)
	tmp := path + ".tmp"
	frame := wal.AppendFrame(nil, EncodeStage(req))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if w.logF != nil {
		w.logF.Close()
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	d, err := os.Open(w.dir)
	if err == nil {
		d.Sync()
		d.Close()
	}
	w.logF, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	return err
}

// applyLocked enters req's epoch into the state window.
func (w *Worker) applyLocked(req *StageReq) error {
	var base *state
	if req.Base || len(w.order) == 0 {
		base = &state{rels: map[string]Slice{}, mats: map[int32]Slice{}}
	} else {
		base = w.states[w.order[len(w.order)-1]]
	}
	st := &state{
		rels: make(map[string]Slice, len(base.rels)+len(req.Rels)),
		mats: make(map[int32]Slice, len(base.mats)+len(req.Mats)),
	}
	for k, v := range base.rels {
		st.rels[k] = v
	}
	for k, v := range base.mats {
		st.mats[k] = v
	}
	for _, id := range req.Drops {
		delete(st.mats, id)
	}
	for k, v := range req.Rels {
		st.rels[k] = v
	}
	for k, v := range req.Mats {
		st.mats[k] = v
	}
	w.states[req.Epoch] = st
	w.order = append(w.order, req.Epoch)
	w.staged = req.Epoch
	for len(w.order) > keepStates {
		delete(w.states, w.order[0])
		w.order = w.order[1:]
	}
	return nil
}

// Commit records the coordinator's gate flip and prunes states below it.
// Advisory: correctness never depends on a commit arriving (the log and the
// staged window carry the install).
func (w *Worker) Commit(epoch int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if epoch > w.committed {
		w.committed = epoch
	}
	keep := w.order[:0]
	for _, e := range w.order {
		if e >= epoch {
			keep = append(keep, e)
		} else {
			delete(w.states, e)
		}
	}
	w.order = keep
	return nil
}

// Close releases the stage log handle; further Stage and Scatter calls fail
// (tests use a closed worker to stand in for a dead process).
func (w *Worker) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	if w.logF != nil {
		err := w.logF.Close()
		w.logF = nil
		return err
	}
	return nil
}

// Scatter runs the request's pipeline over this shard's slice of the leaf at
// the requested (staged) epoch. States are immutable, so execution happens
// outside the lock.
func (w *Worker) Scatter(req *ScatterReq) (*Partial, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, fmt.Errorf("shard %d: worker closed", w.shard)
	}
	st := w.states[req.Epoch]
	window := append([]int64(nil), w.order...)
	w.mu.Unlock()
	if st == nil {
		return nil, fmt.Errorf("shard %d: epoch %d not staged (window %v)", w.shard, req.Epoch, window)
	}
	var leaf Slice
	var ok bool
	if req.Leaf.Mat {
		leaf, ok = st.mats[req.Leaf.ID]
	} else {
		leaf, ok = st.rels[req.Leaf.Rel]
	}
	if !ok {
		return nil, fmt.Errorf("shard %d: unknown scatter leaf %+v at epoch %d", w.shard, req.Leaf, req.Epoch)
	}
	rows, ord := leaf.Rows, leaf.Idx
	pc := &probeCtx{w: w, st: st, leaf: leaf, ref: req.Leaf}
	pc.pos = make([]int32, len(rows))
	for i := range pc.pos {
		pc.pos[i] = int32(i)
	}
	for si, stg := range req.Stages {
		var err error
		rows, ord, err = pc.runStage(stg, rows, ord)
		if err != nil {
			return nil, fmt.Errorf("shard %d: stage %d: %w", w.shard, si, err)
		}
	}
	return &Partial{Epoch: req.Epoch, Rows: rows, Ord: ord}, nil
}

// HashStats reports the scatter-path hash instrumentation: probeHashed
// counts probe rows hashed row-at-a-time inside a join stage (leaf identity
// lost, or the cache was unusable); cacheBuilt counts leaf rows hashed once
// while populating a staged state's key-hash cache. On the hot path —
// repeated scatters against the same staged epoch — the first query pays one
// cacheBuilt pass per (leaf, key-column) pair and every later query reuses
// the cached hashes, leaving both counters flat.
func (w *Worker) HashStats() (probeHashed, cacheBuilt int64) {
	return w.probeHashed.Load(), w.cacheBuilt.Load()
}

// probeCtx threads scatter-leaf row identity through one pipeline so join
// stages can reuse the state's cached key hashes instead of rehashing every
// probe row on every request. pos[i] is the leaf-local position pipeline row
// i derives from, and colMap maps pipeline columns back to leaf columns
// (nil = identity): filters subset pos, projections compose colMap, and the
// first join consumes the identity — its outputs are composite rows, so
// later joins hash directly.
type probeCtx struct {
	w      *Worker
	st     *state
	leaf   Slice
	ref    LeafRef
	pos    []int32
	colMap []int
}

// probeHashes resolves the cached leaf hashes for a join's probe columns,
// or nil when the pipeline rows no longer mirror leaf rows.
func (pc *probeCtx) probeHashes(pCols []int) []uint64 {
	if pc.pos == nil {
		return nil
	}
	mapped, ok := mapCols(pCols, pc.colMap)
	if !ok {
		return nil
	}
	key := hashKey{mat: pc.ref.Mat, id: pc.ref.ID, rel: pc.ref.Rel, cols: fmt.Sprint(mapped)}
	h, built := pc.st.hashesFor(key, pc.leaf, mapped)
	if built {
		pc.w.cacheBuilt.Add(int64(len(pc.leaf.Rows)))
	}
	return h
}

// runStage evaluates one pipeline stage, carrying the scatter-leaf origin
// index of every surviving row. The join replays the local broadcast join
// exactly: buckets in build-row order, probe rows in pipeline order, so the
// emission order within one probe row equals single-node execution.
func (pc *probeCtx) runStage(stg Stage, rows []algebra.Tuple, ord []int32) ([]algebra.Tuple, []int32, error) {
	switch stg.Kind {
	case StageFilter:
		if err := checkWidth(rows, maxCmpIdx(stg.Pred)); err != nil {
			return nil, nil, err
		}
		bp := algebra.NewBoundPred(stg.Pred)
		outR := make([]algebra.Tuple, 0, len(rows))
		outO := make([]int32, 0, len(rows))
		var outP []int32
		if pc.pos != nil {
			outP = make([]int32, 0, len(rows))
		}
		for i, t := range rows {
			if bp.Eval(t) {
				outR = append(outR, t)
				outO = append(outO, ord[i])
				if outP != nil {
					outP = append(outP, pc.pos[i])
				}
			}
		}
		pc.pos = outP
		return outR, outO, nil

	case StageProject:
		if minIdx(stg.Cols) < 0 {
			return nil, nil, fmt.Errorf("negative projection index")
		}
		if err := checkWidth(rows, maxIdx(stg.Cols)); err != nil {
			return nil, nil, err
		}
		outR := make([]algebra.Tuple, len(rows))
		for i, t := range rows {
			nt := make(algebra.Tuple, len(stg.Cols))
			for j, c := range stg.Cols {
				nt[j] = t[c]
			}
			outR[i] = nt
		}
		if m, ok := mapCols(stg.Cols, pc.colMap); ok {
			pc.colMap = m
		} else {
			pc.pos, pc.colMap = nil, nil
		}
		return outR, ord, nil

	case StageJoin:
		if minIdx(stg.PCols) < 0 || minIdx(stg.BCols) < 0 {
			return nil, nil, fmt.Errorf("negative join key index")
		}
		if err := checkWidth(rows, maxIdx(stg.PCols)); err != nil {
			return nil, nil, err
		}
		if err := checkWidth(stg.Build, maxIdx(stg.BCols)); err != nil {
			return nil, nil, fmt.Errorf("build side: %w", err)
		}
		buckets := make(map[uint64][]algebra.Tuple, len(stg.Build))
		for _, bt := range stg.Build {
			h := bt.HashCols(stg.BCols)
			buckets[h] = append(buckets[h], bt)
		}
		ph := pc.probeHashes(stg.PCols)
		var res algebra.BoundPred
		if stg.HasResidual {
			res = algebra.NewBoundPred(stg.Residual)
		}
		resMax := maxCmpIdx(stg.Residual)
		outR := make([]algebra.Tuple, 0, len(rows))
		outO := make([]int32, 0, len(rows))
		missed := 0
		for i, pt := range rows {
			var h uint64
			if ph != nil {
				h = ph[pc.pos[i]]
			} else {
				h = pt.HashCols(stg.PCols)
				missed++
			}
			for _, bt := range buckets[h] {
				if !algebra.EqualOn(pt, stg.PCols, bt, stg.BCols) {
					continue
				}
				lt, rt := bt, pt
				if !stg.BuildIsLeft {
					lt, rt = pt, bt
				}
				row := make(algebra.Tuple, len(lt)+len(rt))
				copy(row, lt)
				copy(row[len(lt):], rt)
				if stg.HasResidual {
					if resMax >= len(row) {
						return nil, nil, fmt.Errorf("residual index %d out of range for width %d", resMax, len(row))
					}
					if !res.Eval(row) {
						continue
					}
				}
				outR = append(outR, row)
				outO = append(outO, ord[i])
			}
		}
		if missed > 0 {
			pc.w.probeHashed.Add(int64(missed))
		}
		pc.pos, pc.colMap = nil, nil
		return outR, outO, nil
	}
	return nil, nil, fmt.Errorf("unknown stage kind %d", stg.Kind)
}

// sameCols reports whether two key-column sets are elementwise equal.
func sameCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mapCols maps pipeline-relative columns back to leaf columns through colMap
// (nil = identity). Reports false when a column falls outside the map — only
// reachable when the pipeline is empty of rows, where nothing would be
// hashed anyway.
func mapCols(cols []int, colMap []int) ([]int, bool) {
	if colMap == nil {
		return cols, true
	}
	out := make([]int, len(cols))
	for i, c := range cols {
		if c < 0 || c >= len(colMap) {
			return nil, false
		}
		out[i] = colMap[c]
	}
	return out, true
}

// maxIdx returns the largest index referenced (-1 for none).
func maxIdx(cols []int) int {
	m := -1
	for _, c := range cols {
		if c > m {
			m = c
		}
	}
	return m
}

// maxCmpIdx returns the largest tuple index a bound predicate touches.
func maxCmpIdx(cs []algebra.BoundCmp) int {
	m := -1
	for _, c := range cs {
		if c.LIdx > m {
			m = c.LIdx
		}
		if c.RIdx > m {
			m = c.RIdx
		}
	}
	return m
}

// checkWidth validates every row is wide enough for the largest referenced
// index — the light structural check that turns malformed requests into
// errors instead of panics.
func checkWidth(rows []algebra.Tuple, need int) error {
	if need < 0 {
		return nil
	}
	for i, t := range rows {
		if need >= len(t) {
			return fmt.Errorf("row %d has width %d, index %d referenced", i, len(t), need)
		}
	}
	return nil
}

// minIdx returns the smallest index referenced (0 for none). Negative
// column indexes are impossible from Lower but reachable from the wire;
// projection and join-key stages reject them (filter predicates treat
// negative indexes as literal operands, matching BoundPred semantics).
func minIdx(cols []int) int {
	m := 0
	for _, c := range cols {
		if c < m {
			m = c
		}
	}
	return m
}
