package shard

// Regression tests for the scatter-path rehash bug: join stages used to call
// HashCols on every probe row of every request, rehashing the same immutable
// staged leaf rows for every query at an epoch. The fix caches per-leaf key
// hashes on the staged state and threads leaf-row identity through filter
// and projection stages, so the hot path (repeated scatters against one
// staged epoch) performs no per-row hashing after the first request.

import (
	"testing"

	"repro/internal/algebra"
)

// hashWorker stages one epoch of a two-column relation (key, val) on a fresh
// single-shard worker and returns it with the staged row count.
func hashWorker(t *testing.T, epoch int64, n int) (*Worker, int) {
	t.Helper()
	a := Assignment{Partitions: 4, Shards: 1}.Norm()
	w, err := NewWorker(0, a, "")
	if err != nil {
		t.Fatal(err)
	}
	s := Slice{}
	for i := 0; i < n; i++ {
		s.Rows = append(s.Rows, algebra.Tuple{algebra.NewInt(int64(i % 7)), algebra.NewInt(int64(i))})
		s.Idx = append(s.Idx, int32(i))
	}
	if err := w.Stage(&StageReq{Epoch: epoch, From: -1, Base: true,
		Rels: map[string]Slice{"t": s}, Mats: map[int32]Slice{}}); err != nil {
		t.Fatal(err)
	}
	return w, n
}

// joinReq builds a filter → project → join pipeline whose probe key passes
// through both a filter (row subset) and a projection (column remap), so the
// cache is only usable if leaf identity is tracked across every stage kind.
func joinReq(epoch int64) *ScatterReq {
	build := []algebra.Tuple{
		{algebra.NewInt(1), algebra.NewString("a")},
		{algebra.NewInt(3), algebra.NewString("b")},
		{algebra.NewInt(5), algebra.NewString("c")},
	}
	return &ScatterReq{Epoch: epoch, Leaf: LeafRef{Rel: "t"}, Stages: []Stage{
		{Kind: StageFilter, Pred: []algebra.BoundCmp{
			{Op: algebra.LT, LIdx: 1, RIdx: -1, RVal: algebra.NewInt(150)},
		}},
		{Kind: StageProject, Cols: []int{1, 0}}, // key moves to column 1
		{Kind: StageJoin, BCols: []int{0}, PCols: []int{1}, Build: build},
	}}
}

// TestScatterReusesCachedHashes: the first join over a staged leaf builds the
// hash cache once (one pass over the leaf, no per-probe-row hashing), and
// every subsequent scatter at that epoch reuses it — both counters stay flat
// while answers stay identical.
func TestScatterReusesCachedHashes(t *testing.T) {
	w, n := hashWorker(t, 1, 200)
	req := joinReq(1)

	first, err := w.Scatter(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Rows) == 0 {
		t.Fatal("join produced no rows; test is vacuous")
	}
	probed, built := w.HashStats()
	if probed != 0 {
		t.Fatalf("cold scatter hashed %d probe rows per-row; want 0 (cache pass instead)", probed)
	}
	if built != int64(n) {
		t.Fatalf("cold scatter built cache over %d rows, want %d", built, n)
	}

	for i := 0; i < 5; i++ {
		got, err := w.Scatter(req)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Rows) != len(first.Rows) {
			t.Fatalf("warm scatter %d: %d rows, want %d", i, len(got.Rows), len(first.Rows))
		}
		for r, tu := range first.Rows {
			if !tu.Equal(got.Rows[r]) || first.Ord[r] != got.Ord[r] {
				t.Fatalf("warm scatter %d: row %d differs: %v/%d vs %v/%d",
					i, r, got.Rows[r], got.Ord[r], tu, first.Ord[r])
			}
		}
	}
	probed, built = w.HashStats()
	if probed != 0 || built != int64(n) {
		t.Fatalf("warm scatters re-hashed: probeHashed %d (want 0), cacheBuilt %d (want %d)",
			probed, built, n)
	}
}

// TestScatterHashCachePerKeyAndEpoch: a different probe-key column set pays
// one more cache pass, and a newly staged epoch (fresh immutable state)
// rebuilds; neither ever hashes probe rows one at a time.
func TestScatterHashCachePerKeyAndEpoch(t *testing.T) {
	w, n := hashWorker(t, 1, 100)
	if _, err := w.Scatter(joinReq(1)); err != nil {
		t.Fatal(err)
	}

	// Same epoch, different key columns: one more build pass, cached after.
	other := &ScatterReq{Epoch: 1, Leaf: LeafRef{Rel: "t"}, Stages: []Stage{
		{Kind: StageJoin, BCols: []int{0}, PCols: []int{1},
			Build: []algebra.Tuple{{algebra.NewInt(17)}}},
	}}
	for i := 0; i < 3; i++ {
		if _, err := w.Scatter(other); err != nil {
			t.Fatal(err)
		}
	}
	probed, built := w.HashStats()
	if probed != 0 || built != int64(2*n) {
		t.Fatalf("after second key set: probeHashed %d (want 0), cacheBuilt %d (want %d)",
			probed, built, 2*n)
	}

	// A new epoch stages a fresh state: its cache starts cold and rebuilds
	// exactly once.
	s := Slice{}
	for i := 0; i < n; i++ {
		s.Rows = append(s.Rows, algebra.Tuple{algebra.NewInt(int64(i % 5)), algebra.NewInt(int64(i))})
		s.Idx = append(s.Idx, int32(i))
	}
	if err := w.Stage(&StageReq{Epoch: 2, From: 1,
		Rels: map[string]Slice{"t": s}, Mats: map[int32]Slice{}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Scatter(joinReq(2)); err != nil {
			t.Fatal(err)
		}
	}
	probed, built = w.HashStats()
	if probed != 0 || built != int64(3*n) {
		t.Fatalf("after restage: probeHashed %d (want 0), cacheBuilt %d (want %d)",
			probed, built, 3*n)
	}
}

// TestScatterSecondJoinHashesComposites: a join's outputs are composite rows
// with no single leaf identity, so a second join correctly falls back to
// per-row hashing — the counter proves the fallback (not the cache) ran, and
// the cache is never consulted with stale positions.
func TestScatterSecondJoinHashesComposites(t *testing.T) {
	w, n := hashWorker(t, 1, 50)
	build := []algebra.Tuple{{algebra.NewInt(2)}, {algebra.NewInt(4)}}
	req := &ScatterReq{Epoch: 1, Leaf: LeafRef{Rel: "t"}, Stages: []Stage{
		{Kind: StageJoin, BCols: []int{0}, PCols: []int{0}, Build: build},
		{Kind: StageJoin, BCols: []int{0}, PCols: []int{1}, Build: build},
	}}
	p, err := w.Scatter(req)
	if err != nil {
		t.Fatal(err)
	}
	probed, built := w.HashStats()
	if built != int64(n) {
		t.Fatalf("first join built cache over %d rows, want %d", built, n)
	}
	// The second join probes the first join's outputs row-at-a-time; every
	// surviving composite row is hashed exactly once per request.
	if probed == 0 {
		t.Fatal("second join hashed nothing; expected per-row fallback on composite rows")
	}
	if len(p.Rows) == 0 {
		t.Fatal("pipeline produced no rows; test is vacuous")
	}
}
