package shard

// Wire-codec properties: encode→decode is the identity on every message
// kind (randomized), and decode never panics on arbitrary bytes
// (FuzzShardCodec; seed corpus in testdata/fuzz/FuzzShardCodec, regenerated
// by gencorpus).

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/algebra"
)

func randValue(rng *rand.Rand) algebra.Value {
	switch rng.Intn(4) {
	case 0:
		return algebra.NewInt(rng.Int63n(2000) - 1000)
	case 1:
		return algebra.NewFloat(rng.NormFloat64())
	case 2:
		return algebra.NewString(string(rune('a' + rng.Intn(26))))
	default:
		return algebra.NewDate(rng.Int63n(3000))
	}
}

func randTuple(rng *rand.Rand, width int) algebra.Tuple {
	t := make(algebra.Tuple, width)
	for i := range t {
		t[i] = randValue(rng)
	}
	return t
}

func randTuples(rng *rand.Rand, n, width int) []algebra.Tuple {
	out := make([]algebra.Tuple, n)
	for i := range out {
		out[i] = randTuple(rng, width)
	}
	return out
}

func randCmps(rng *rand.Rand, n int) []algebra.BoundCmp {
	out := make([]algebra.BoundCmp, n)
	for i := range out {
		out[i] = algebra.BoundCmp{
			Op:   algebra.CmpOp(rng.Intn(6)),
			LIdx: rng.Intn(6) - 1,
			RIdx: rng.Intn(6) - 1,
			LVal: randValue(rng),
			RVal: randValue(rng),
		}
	}
	return out
}

func randSlice(rng *rand.Rand, n, width int) Slice {
	s := Slice{Rows: randTuples(rng, n, width), Idx: make([]int32, n)}
	next := int32(0)
	for i := range s.Idx {
		next += int32(1 + rng.Intn(4))
		s.Idx[i] = next
	}
	for k, nk := 0, rng.Intn(3); k < nk; k++ {
		cols := make([]int, 1+rng.Intn(2))
		for j := range cols {
			cols[j] = rng.Intn(width)
		}
		h := make([]uint64, n)
		for i := range h {
			h[i] = rng.Uint64()
		}
		s.HashCols = append(s.HashCols, cols)
		s.Hashes = append(s.Hashes, h)
	}
	return s
}

func randScatter(rng *rand.Rand) *ScatterReq {
	req := &ScatterReq{Epoch: rng.Int63n(100)}
	if rng.Intn(2) == 0 {
		req.Leaf = LeafRef{Mat: true, ID: int32(rng.Intn(40))}
	} else {
		req.Leaf = LeafRef{Rel: "lineitem"}
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			req.Stages = append(req.Stages, Stage{Kind: StageFilter, Pred: randCmps(rng, 1+rng.Intn(3))})
		case 1:
			cols := make([]int, 1+rng.Intn(4))
			for j := range cols {
				cols[j] = rng.Intn(6)
			}
			req.Stages = append(req.Stages, Stage{Kind: StageProject, Cols: cols})
		default:
			k := 1 + rng.Intn(2)
			b, p := make([]int, k), make([]int, k)
			for j := 0; j < k; j++ {
				b[j], p[j] = rng.Intn(4), rng.Intn(4)
			}
			st := Stage{
				Kind: StageJoin, BuildIsLeft: rng.Intn(2) == 0,
				BCols: b, PCols: p,
				Build: randTuples(rng, rng.Intn(5), 4),
			}
			if rng.Intn(2) == 0 {
				st.HasResidual = true
				st.Residual = randCmps(rng, 1)
			}
			req.Stages = append(req.Stages, st)
		}
	}
	return req
}

func randStage(rng *rand.Rand) *StageReq {
	req := &StageReq{
		Epoch: rng.Int63n(100),
		From:  rng.Int63n(100) - 1,
		Base:  rng.Intn(2) == 0,
		Rels:  map[string]Slice{},
		Mats:  map[int32]Slice{},
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		req.Drops = append(req.Drops, int32(rng.Intn(50)))
	}
	names := []string{"orders", "lineitem", "customer"}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		req.Rels[names[i]] = randSlice(rng, rng.Intn(6), 3)
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		req.Mats[int32(10+i)] = randSlice(rng, rng.Intn(6), 2)
	}
	return req
}

func randPartial(rng *rand.Rand) *Partial {
	n := rng.Intn(8)
	p := &Partial{Epoch: rng.Int63n(100), Rows: randTuples(rng, n, 3), Ord: make([]int32, n)}
	o := int32(0)
	for i := range p.Ord {
		o += int32(rng.Intn(3)) // runs of equal ords are legal
		p.Ord[i] = o
	}
	return p
}

func randHello(rng *rand.Rand) *Hello {
	return &Hello{
		Shard: rng.Intn(8), Shards: 1 + rng.Intn(8), Partitions: 1 + rng.Intn(32),
		Staged: rng.Int63n(50) - 1, Committed: rng.Int63n(50) - 1,
	}
}

// encodeAny dispatches to the message's encoder; the byte form is the
// canonical representation round-trip tests compare (nil and empty slices
// encode identically, so DeepEqual on structs would be too strict).
func encodeAny(m any) []byte {
	switch v := m.(type) {
	case *ScatterReq:
		return EncodeScatter(v)
	case *StageReq:
		return EncodeStage(v)
	case *Partial:
		return EncodePartial(v)
	case *Hello:
		return EncodeHello(v)
	}
	panic("unknown message")
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for it := 0; it < 500; it++ {
		var msg any
		switch it % 4 {
		case 0:
			msg = randScatter(rng)
		case 1:
			msg = randStage(rng)
		case 2:
			msg = randPartial(rng)
		default:
			msg = randHello(rng)
		}
		enc := encodeAny(msg)
		dec, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("it %d: decode: %v\nmsg: %+v", it, err, msg)
		}
		// Compare through a second encode: the byte form is the canonical
		// representation (nil and empty slices encode identically).
		if enc2 := encodeAny(dec); !reflect.DeepEqual(enc, enc2) {
			t.Fatalf("it %d: re-encode differs\n was: %x\n got: %x", it, enc, enc2)
		}
	}
}

func TestCodecDeterministicMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	req := randStage(rng)
	req.Rels["zz"] = randSlice(rng, 2, 3)
	req.Rels["aa"] = randSlice(rng, 2, 3)
	req.Mats[99] = randSlice(rng, 1, 2)
	req.Mats[1] = randSlice(rng, 1, 2)
	first := EncodeStage(req)
	for i := 0; i < 20; i++ {
		if got := EncodeStage(req); !reflect.DeepEqual(first, got) {
			t.Fatalf("stage encoding not deterministic across map iterations")
		}
	}
}

// TestDecodeTruncationsNeverPanic sweeps every prefix of valid encodings
// through the decoder: truncations must come back as errors (or, where a
// prefix happens to be self-delimiting, as a clean parse) — never a panic or
// an out-of-range slice.
func TestDecodeTruncationsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	msgs := [][]byte{
		EncodeScatter(randScatter(rng)),
		EncodeStage(randStage(rng)),
		EncodePartial(randPartial(rng)),
		EncodeHello(randHello(rng)),
	}
	for mi, enc := range msgs {
		if _, err := DecodeMessage(enc); err != nil {
			t.Fatalf("msg %d: full encoding fails: %v", mi, err)
		}
		for cut := 0; cut < len(enc); cut++ {
			DecodeMessage(enc[:cut])
		}
	}
}

func FuzzShardCodec(f *testing.F) {
	rng := rand.New(rand.NewSource(24))
	f.Add([]byte{})
	f.Add([]byte{'S'})
	f.Add([]byte{'G', 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(EncodeScatter(randScatter(rng)))
	f.Add(EncodeStage(randStage(rng)))
	f.Add(EncodePartial(randPartial(rng)))
	f.Add(EncodeHello(randHello(rng)))
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeMessage(data) // must never panic
		if err != nil {
			return
		}
		// Anything that decodes must re-encode to bytes that decode to the
		// same message (a fixed point after one round).
		enc := encodeAny(msg)
		msg2, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-encoded message fails to decode: %v", err)
		}
		if enc2 := encodeAny(msg2); !reflect.DeepEqual(enc, enc2) {
			t.Fatalf("encode not a fixed point:\n %x\n %x", enc, enc2)
		}
	})
}
