// Package volcano implements the Volcano-style best-plan search over the
// AND-OR DAG (paper §5.1): a depth-first traversal computing, for every
// equivalence node, the cheapest operation alternative — extended so that
// when a node's result is materialized (set M), the minimum of its
// recomputation cost and its reuse cost is used.
//
// Physical algorithm choice happens here: every join operation is costed as
// a hash join and, when the inner input is a stored relation (a base table
// or a materialized result) with an index on the join column, as an index
// nested-loop join. Commutativity is implicit: both input orders are
// considered for the inner role, and the hash join builds on the smaller
// input. This is the "physical properties" refinement the paper describes in
// §4.3, restricted to indices (sort orders are not modeled).
package volcano

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dag"
)

// Access describes how a plan node obtains its result.
type Access int

const (
	// Compute executes the operation.
	Compute Access = iota
	// Reuse reads a materialized copy of the result.
	Reuse
	// Probe accesses a stored relation through an index inside an index
	// nested-loop join; no separate read cost is charged.
	Probe
)

// Algo is the physical join algorithm of a Compute join node.
type Algo int

const (
	// AlgoNone marks non-join operations.
	AlgoNone Algo = iota
	// AlgoHash is an in-memory or partitioned hash join.
	AlgoHash
	// AlgoINL is an index nested-loop join; Children[1] is always the
	// probed (inner) side in the emitted plan.
	AlgoINL
	// AlgoNL is a blocked nested-loop join (fallback for non-equi joins).
	AlgoNL
)

// String names the algorithm.
func (a Algo) String() string {
	switch a {
	case AlgoHash:
		return "hash"
	case AlgoINL:
		return "inl"
	case AlgoNL:
		return "nl"
	default:
		return ""
	}
}

// IndexKey identifies an index candidate or choice: an index over the stored
// result of an equivalence node (base tables included) on one column.
type IndexKey struct {
	// EquivID is the equivalence node whose stored result is indexed.
	EquivID int
	// Col is the qualified name of the indexed column.
	Col string
}

// MatSet is the set M of materialized results plus chosen indexes. A nil
// *MatSet behaves as the empty set.
type MatSet struct {
	// Full maps equivalence node ID → full result materialized.
	Full map[int]bool
	// Indexes holds the chosen indexes on stored results.
	Indexes map[IndexKey]bool
}

// NewMatSet returns an empty materialized set.
func NewMatSet() *MatSet {
	return &MatSet{Full: make(map[int]bool), Indexes: make(map[IndexKey]bool)}
}

// Clone deep-copies the set.
func (m *MatSet) Clone() *MatSet {
	out := NewMatSet()
	if m == nil {
		return out
	}
	for k, v := range m.Full {
		out.Full[k] = v
	}
	for k, v := range m.Indexes {
		out.Indexes[k] = v
	}
	return out
}

// Has reports whether the node's full result is materialized.
func (m *MatSet) Has(e *dag.Equiv) bool { return m != nil && m.Full[e.ID] }

// stored reports whether the node's result exists on disk: base tables
// always do; other nodes only when materialized.
func (m *MatSet) stored(e *dag.Equiv) bool { return e.IsTable || m.Has(e) }

// HasIndex reports whether the stored result of e carries an index whose
// leading column is col. Base tables consult the catalog in addition to
// indexes chosen by the optimizer.
func (m *MatSet) HasIndex(cat *catalog.Catalog, e *dag.Equiv, col string) bool {
	if m != nil && m.Indexes[IndexKey{EquivID: e.ID, Col: col}] {
		return true
	}
	if e.IsTable {
		i := strings.IndexByte(col, '.')
		bare := col
		if i >= 0 {
			bare = col[i+1:]
		}
		return cat.HasIndex(e.Tables[0], bare)
	}
	return false
}

// PlanNode is one node of an executable physical plan.
type PlanNode struct {
	// E is the equivalence node this plan node produces.
	E *dag.Equiv
	// Access says how the result is obtained (Compute, Reuse, Probe).
	Access Access
	// Op is the computed operation; nil for Reuse/Probe.
	Op *dag.Op
	// Algo is the physical join algorithm of a Compute join.
	Algo Algo
	// Children are the input plans (empty for leaves).
	Children []*PlanNode
	// Rows is the estimated result cardinality.
	Rows float64
	// CumCost is the total estimated cost of producing this node's result
	// (local cost plus charged children).
	CumCost float64
}

// String renders the plan tree on one line.
func (p *PlanNode) String() string {
	var b strings.Builder
	p.render(&b)
	return b.String()
}

func (p *PlanNode) render(b *strings.Builder) {
	switch p.Access {
	case Reuse:
		fmt.Fprintf(b, "reuse(e%d)", p.E.ID)
		return
	case Probe:
		fmt.Fprintf(b, "probe(e%d)", p.E.ID)
		return
	}
	switch p.Op.Kind {
	case dag.OpScan:
		b.WriteString(p.Op.Table)
	case dag.OpJoin:
		b.WriteByte('(')
		p.Children[0].render(b)
		fmt.Fprintf(b, " %s⋈[%s] ", p.Algo, p.Op.Pred.String())
		p.Children[1].render(b)
		b.WriteByte(')')
	default:
		b.WriteString(p.Op.Kind.String())
		if p.Op.Kind == dag.OpSelect {
			fmt.Fprintf(b, "[%s]", p.Op.Pred.String())
		}
		b.WriteByte('(')
		for i, c := range p.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			c.render(b)
		}
		b.WriteByte(')')
	}
}

// Optimizer finds best plans over one DAG under one cost model.
type Optimizer struct {
	// Dag is the AND-OR DAG searched.
	Dag *dag.DAG
	// Model prices the physical operations.
	Model *cost.Model
	// Est supplies selectivity and cardinality estimates.
	Est *cost.Estimator
}

// New builds an optimizer.
func New(d *dag.DAG, m *cost.Model) *Optimizer {
	return &Optimizer{Dag: d, Model: m, Est: cost.NewEstimator(d.Cat)}
}

// Memo caches the best plan per equivalence node within one (ms, sz)
// configuration, indexed by node ID. It is slice-backed so lookups, clones
// and invalidations are array operations: the greedy heuristic forks one
// memo per benefit evaluation, thousands per run, and the former
// map-backed representation dominated optimization-time profiles.
type Memo struct {
	plans []*PlanNode
	seen  []bool
}

// NewMemo returns an empty memo sized for the optimizer's DAG.
func (o *Optimizer) NewMemo() *Memo {
	n := len(o.Dag.Equivs)
	return &Memo{plans: make([]*PlanNode, n), seen: make([]bool, n)}
}

// Get returns the cached plan for a node and whether one is present.
func (m *Memo) Get(id int) (*PlanNode, bool) { return m.plans[id], m.seen[id] }

// Put caches the plan for a node.
func (m *Memo) Put(id int, p *PlanNode) { m.plans[id] = p; m.seen[id] = true }

// Delete invalidates one node's entry.
func (m *Memo) Delete(id int) { m.plans[id] = nil; m.seen[id] = false }

// Clone copies the memo; plan nodes are shared (they are immutable).
func (m *Memo) Clone() *Memo {
	out := &Memo{plans: make([]*PlanNode, len(m.plans)), seen: make([]bool, len(m.seen))}
	copy(out.plans, m.plans)
	copy(out.seen, m.seen)
	return out
}

// Best returns the cheapest plan for e given materialized set ms, under the
// cardinality state of sz. The memo must be reused only within one
// (ms, sz) configuration.
func (o *Optimizer) Best(e *dag.Equiv, ms *MatSet, sz *dag.Sizer, memo *Memo) *PlanNode {
	if p, ok := memo.Get(e.ID); ok {
		return p
	}
	// Guard against re-entrancy on malformed (cyclic) DAGs.
	memo.Put(e.ID, nil)

	var best *PlanNode
	for _, op := range e.Ops {
		p := o.planOp(e, op, ms, sz, memo)
		if p != nil && (best == nil || p.CumCost < best.CumCost) {
			best = p
		}
	}
	if best == nil {
		panic(fmt.Sprintf("volcano: no plan for %s", e))
	}
	if ms.Has(e) {
		reuse := &PlanNode{
			E: e, Access: Reuse,
			Rows:    sz.Rows(e),
			CumCost: o.Model.ReadCost(sz.Rows(e), dag.Width(e)),
		}
		if reuse.CumCost < best.CumCost {
			best = reuse
		}
	}
	memo.Put(e.ID, best)
	return best
}

// planOp costs one operation alternative.
func (o *Optimizer) planOp(e *dag.Equiv, op *dag.Op, ms *MatSet, sz *dag.Sizer, memo *Memo) *PlanNode {
	outRows := sz.Rows(e)
	switch op.Kind {
	case dag.OpScan:
		return &PlanNode{
			E: e, Op: op, Rows: outRows,
			CumCost: o.Model.ScanCost(outRows, dag.Width(e)),
		}
	case dag.OpJoin:
		return o.planJoin(e, op, ms, sz, memo)
	default:
		children := make([]*PlanNode, len(op.Children))
		sum := 0.0
		for i, c := range op.Children {
			children[i] = o.Best(c, ms, sz, memo)
			if children[i] == nil {
				return nil
			}
			sum += children[i].CumCost
		}
		local := o.localUnary(op, sz, outRows)
		return &PlanNode{
			E: e, Op: op, Children: children,
			Rows: outRows, CumCost: local + sum,
		}
	}
}

// localUnary is the local cost of non-join, non-scan operations.
func (o *Optimizer) localUnary(op *dag.Op, sz *dag.Sizer, outRows float64) float64 {
	m := o.Model
	switch op.Kind {
	case dag.OpSelect:
		return m.SelectCost(sz.Rows(op.Children[0]))
	case dag.OpProject:
		return m.ProjectCost(sz.Rows(op.Children[0]))
	case dag.OpAggregate:
		in := op.Children[0]
		return m.AggCost(sz.Rows(in), dag.Width(in), outRows, dag.Width(op.Parent))
	case dag.OpUnion:
		return m.UnionCost(outRows)
	case dag.OpMinus:
		l, r := op.Children[0], op.Children[1]
		return m.MinusCost(sz.Rows(l), sz.Rows(r), dag.Width(l))
	case dag.OpDedup:
		in := op.Children[0]
		return m.DedupCost(sz.Rows(in), dag.Width(in), outRows)
	default:
		panic("volcano: unexpected op kind " + op.Kind.String())
	}
}

// planJoin costs every physical variant of a join operation and returns the
// cheapest. Variants: hash join (children charged normally) and, for each
// side that is a stored relation with an index on its join column, an index
// nested-loop join whose inner side is probed for free (the probe I/O is
// part of the operator's local cost).
func (o *Optimizer) planJoin(e *dag.Equiv, op *dag.Op, ms *MatSet, sz *dag.Sizer, memo *Memo) *PlanNode {
	m := o.Model
	l, r := op.Children[0], op.Children[1]
	outRows := sz.Rows(e)
	lRows, rRows := sz.Rows(l), sz.Rows(r)
	lW, rW := dag.Width(l), dag.Width(r)

	hasEqui := false
	for _, c := range op.Pred.Conjuncts {
		_, lok := c.L.(algebra.ColRef)
		_, rok := c.R.(algebra.ColRef)
		if c.Op == algebra.EQ && lok && rok {
			hasEqui = true
			break
		}
	}

	var best *PlanNode
	consider := func(p *PlanNode) {
		if p != nil && (best == nil || p.CumCost < best.CumCost) {
			best = p
		}
	}

	lp := o.Best(l, ms, sz, memo)
	rp := o.Best(r, ms, sz, memo)
	if lp == nil || rp == nil {
		return nil
	}

	if hasEqui {
		consider(&PlanNode{
			E: e, Op: op, Algo: AlgoHash,
			Children: []*PlanNode{lp, rp},
			Rows:     outRows,
			CumCost:  m.HashJoinCost(lRows, lW, rRows, rW, outRows) + lp.CumCost + rp.CumCost,
		})
	} else {
		consider(&PlanNode{
			E: e, Op: op, Algo: AlgoNL,
			Children: []*PlanNode{lp, rp},
			Rows:     outRows,
			CumCost:  m.NLJoinCost(lRows, lW, rRows, rW, outRows) + lp.CumCost + rp.CumCost,
		})
	}

	// Index nested loops: outer computes, inner is probed in place.
	tryINL := func(outer, inner *dag.Equiv, outerPlan *PlanNode, innerRows float64, innerW int, outerRows float64) {
		if !ms.stored(inner) {
			return
		}
		col := op.InnerJoinCol(inner)
		if col == "" || !ms.HasIndex(o.Dag.Cat, inner, col) {
			return
		}
		probe := &PlanNode{E: inner, Access: Probe, Rows: innerRows}
		consider(&PlanNode{
			E: e, Op: op, Algo: AlgoINL,
			Children: []*PlanNode{outerPlan, probe},
			Rows:     outRows,
			CumCost:  m.IndexJoinCost(outerRows, innerRows, innerW, outRows) + outerPlan.CumCost,
		})
	}
	if hasEqui {
		tryINL(l, r, lp, rRows, rW, lRows)
		tryINL(r, l, rp, lRows, lW, rRows)
	}
	return best
}

// Cost returns just the cumulative cost of the best plan for e.
func (o *Optimizer) Cost(e *dag.Equiv, ms *MatSet, sz *dag.Sizer, memo *Memo) float64 {
	return o.Best(e, ms, sz, memo).CumCost
}

// BestCompute returns the cheapest plan that actually computes e — the
// paper's compcost(e, M): descendants may still be reused from M, but e's
// own materialized copy (if any) is not. This is the cost that competes with
// incremental maintenance when deciding how to refresh a materialized result
// (paper §6.1), and the cost charged when temporarily materializing a shared
// subexpression.
func (o *Optimizer) BestCompute(e *dag.Equiv, ms *MatSet, sz *dag.Sizer, memo *Memo) *PlanNode {
	var best *PlanNode
	for _, op := range e.Ops {
		p := o.planOp(e, op, ms, sz, memo)
		if p != nil && (best == nil || p.CumCost < best.CumCost) {
			best = p
		}
	}
	if best == nil {
		panic(fmt.Sprintf("volcano: no compute plan for %s", e))
	}
	return best
}
