package volcano

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/dag"
)

func TestExplainTreeShape(t *testing.T) {
	_, _, opt, root := setup(t)
	sz := dag.NewSizer(opt.Est, nil)
	p := opt.Best(root, NewMatSet(), sz, opt.NewMemo())
	out := Explain(p)
	if !strings.Contains(out, "join") {
		t.Errorf("join missing from explain:\n%s", out)
	}
	for _, table := range []string{"fact", "dim1", "dim2"} {
		if !strings.Contains(out, "scan "+table) {
			t.Errorf("scan of %s missing:\n%s", table, out)
		}
	}
	if !strings.Contains(out, "rows=") || !strings.Contains(out, "cost=") {
		t.Errorf("estimates missing:\n%s", out)
	}
	// Tree connectors for a multi-level plan.
	if !strings.Contains(out, "└─") {
		t.Errorf("tree drawing missing:\n%s", out)
	}
}

func TestExplainReuse(t *testing.T) {
	_, _, opt, root := setup(t)
	ms := NewMatSet()
	ms.Full[root.ID] = true
	sz := dag.NewSizer(opt.Est, nil)
	p := opt.Best(root, ms, sz, opt.NewMemo())
	if out := Explain(p); !strings.Contains(out, "reuse materialized") {
		t.Errorf("reuse should render:\n%s", out)
	}
}

func TestExplainIndexProbe(t *testing.T) {
	cat, d, opt, _ := setup(t)
	cat.AddIndex(catalog.Index{Name: "ix", Table: "fact", Columns: []string{"f_d1"}})
	var fd1 *dag.Equiv
	for _, e := range d.Equivs {
		if len(e.Tables) == 2 && e.DependsOn("fact") && e.DependsOn("dim1") {
			fd1 = e
		}
	}
	sz := dag.NewSizer(opt.Est, map[string]float64{"dim1": 10})
	p := opt.Best(fd1, NewMatSet(), sz, opt.NewMemo())
	out := Explain(p)
	if !strings.Contains(out, "index probe") {
		t.Errorf("probe should render:\n%s", out)
	}
	if !strings.Contains(out, "inl join") {
		t.Errorf("inl join should render:\n%s", out)
	}
}
