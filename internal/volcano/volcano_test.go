package volcano

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dag"
)

// warehouse builds a small star schema: fact(1M rows) → dim1(1k), dim2(100).
func warehouse() *catalog.Catalog {
	cat := catalog.New()
	cat.AddTable(&catalog.Table{
		Name: "fact",
		Columns: []catalog.Column{
			{Name: "f_id", Type: catalog.Int, Width: 8},
			{Name: "f_d1", Type: catalog.Int, Width: 8},
			{Name: "f_d2", Type: catalog.Int, Width: 8},
			{Name: "f_val", Type: catalog.Float, Width: 8},
		},
		PrimaryKey: []string{"f_id"},
		Stats: catalog.TableStats{
			Rows: 1_000_000,
			Columns: map[string]catalog.ColumnStats{
				"f_id":  {Distinct: 1_000_000, Min: 1, Max: 1_000_000},
				"f_d1":  {Distinct: 1000, Min: 1, Max: 1000},
				"f_d2":  {Distinct: 100, Min: 1, Max: 100},
				"f_val": {Distinct: 10000, Min: 0, Max: 1000},
			},
		},
	})
	cat.AddTable(&catalog.Table{
		Name: "dim1",
		Columns: []catalog.Column{
			{Name: "d1_id", Type: catalog.Int, Width: 8},
			{Name: "d1_attr", Type: catalog.Int, Width: 8},
		},
		PrimaryKey: []string{"d1_id"},
		Stats: catalog.TableStats{
			Rows: 1000,
			Columns: map[string]catalog.ColumnStats{
				"d1_id":   {Distinct: 1000, Min: 1, Max: 1000},
				"d1_attr": {Distinct: 50, Min: 1, Max: 50},
			},
		},
	})
	cat.AddTable(&catalog.Table{
		Name: "dim2",
		Columns: []catalog.Column{
			{Name: "d2_id", Type: catalog.Int, Width: 8},
			{Name: "d2_attr", Type: catalog.Int, Width: 8},
		},
		PrimaryKey: []string{"d2_id"},
		Stats: catalog.TableStats{
			Rows: 100,
			Columns: map[string]catalog.ColumnStats{
				"d2_id":   {Distinct: 100, Min: 1, Max: 100},
				"d2_attr": {Distinct: 10, Min: 1, Max: 10},
			},
		},
	})
	return cat
}

func starView(cat *catalog.Catalog) algebra.Node {
	return algebra.NewJoin(algebra.And(algebra.Eq("fact.f_d2", "dim2.d2_id")),
		algebra.NewJoin(algebra.And(algebra.Eq("fact.f_d1", "dim1.d1_id")),
			algebra.NewScan(cat, "fact"), algebra.NewScan(cat, "dim1")),
		algebra.NewScan(cat, "dim2"))
}

func setup(t *testing.T) (*catalog.Catalog, *dag.DAG, *Optimizer, *dag.Equiv) {
	t.Helper()
	cat := warehouse()
	d := dag.New(cat)
	root := d.AddQuery("v", starView(cat))
	opt := New(d, cost.NewModel(cost.Default()))
	return cat, d, opt, root
}

func TestBestPlanExistsAndPositive(t *testing.T) {
	_, _, opt, root := setup(t)
	sz := dag.NewSizer(opt.Est, nil)
	p := opt.Best(root, NewMatSet(), sz, opt.NewMemo())
	if p == nil || p.CumCost <= 0 {
		t.Fatalf("plan missing or free: %v", p)
	}
	if p.Access != Compute || p.Op.Kind != dag.OpJoin {
		t.Errorf("root should be a computed join")
	}
}

func TestMemoReturnsSamePlan(t *testing.T) {
	_, _, opt, root := setup(t)
	sz := dag.NewSizer(opt.Est, nil)
	memo := opt.NewMemo()
	p1 := opt.Best(root, NewMatSet(), sz, memo)
	p2 := opt.Best(root, NewMatSet(), sz, memo)
	if p1 != p2 {
		t.Errorf("memoized call should return the identical plan")
	}
}

func TestReuseBeatsRecompute(t *testing.T) {
	_, _, opt, root := setup(t)
	sz := dag.NewSizer(opt.Est, nil)
	ms := NewMatSet()
	ms.Full[root.ID] = true
	p := opt.Best(root, ms, sz, opt.NewMemo())
	if p.Access != Reuse {
		t.Errorf("materialized root should be reused, got %v", p)
	}
	noMat := opt.Best(root, NewMatSet(), sz, opt.NewMemo())
	if p.CumCost >= noMat.CumCost {
		t.Errorf("reuse should be cheaper: %g vs %g", p.CumCost, noMat.CumCost)
	}
}

func TestMaterializedSubexpressionLowersCost(t *testing.T) {
	_, d, opt, root := setup(t)
	sz := dag.NewSizer(opt.Est, nil)
	base := opt.Cost(root, NewMatSet(), sz, opt.NewMemo())
	// Materialize the fact⋈dim1 subexpression.
	var sub *dag.Equiv
	for _, e := range d.Equivs {
		if len(e.Tables) == 2 && e.DependsOn("fact") && e.DependsOn("dim1") {
			sub = e
		}
	}
	if sub == nil {
		t.Fatalf("fact⋈dim1 node missing")
	}
	ms := NewMatSet()
	ms.Full[sub.ID] = true
	with := opt.Cost(root, ms, sz, opt.NewMemo())
	if with > base {
		t.Errorf("extra materialization should never raise the best cost: %g vs %g", with, base)
	}
}

func TestDeltaStateMakesINLAttractive(t *testing.T) {
	cat, d, opt, _ := setup(t)
	// An index on fact.f_d1 exists.
	cat.AddIndex(catalog.Index{Name: "ix", Table: "fact", Columns: []string{"f_d1"}})
	// Pretend dim1 shrank to its delta: 10 rows joining the 1M-row fact.
	var fd1 *dag.Equiv
	for _, e := range d.Equivs {
		if len(e.Tables) == 2 && e.DependsOn("fact") && e.DependsOn("dim1") {
			fd1 = e
		}
	}
	sz := dag.NewSizer(opt.Est, map[string]float64{"dim1": 10})
	p := opt.Best(fd1, NewMatSet(), sz, opt.NewMemo())
	if p.Algo != AlgoINL {
		t.Errorf("tiny outer joining indexed fact should pick INL, got %v (%s)", p.Algo, p)
	}
	// The probed side must be the fact table.
	if p.Children[1].Access != Probe || p.Children[1].E.Tables[0] != "fact" {
		t.Errorf("inner probe should be fact: %s", p)
	}
}

func TestNoIndexNoINL(t *testing.T) {
	_, d, opt, _ := setup(t)
	var fd1 *dag.Equiv
	for _, e := range d.Equivs {
		if len(e.Tables) == 2 && e.DependsOn("fact") && e.DependsOn("dim1") {
			fd1 = e
		}
	}
	sz := dag.NewSizer(opt.Est, map[string]float64{"dim1": 10})
	p := opt.Best(fd1, NewMatSet(), sz, opt.NewMemo())
	if p.Algo == AlgoINL {
		t.Errorf("no index declared: INL should be unavailable")
	}
}

func TestChosenIndexOnMaterializedResultEnablesINL(t *testing.T) {
	_, d, opt, root := setup(t)
	var fd1 *dag.Equiv
	for _, e := range d.Equivs {
		if len(e.Tables) == 2 && e.DependsOn("fact") && e.DependsOn("dim1") {
			fd1 = e
		}
	}
	ms := NewMatSet()
	ms.Full[fd1.ID] = true
	ms.Indexes[IndexKey{EquivID: fd1.ID, Col: "fact.f_d2"}] = true
	sz := dag.NewSizer(opt.Est, map[string]float64{"dim2": 1})
	p := opt.Best(root, ms, sz, opt.NewMemo())
	if p.Algo != AlgoINL {
		t.Errorf("materialized+indexed subexpression should be probed: %s", p)
	}
}

func TestPlanStringRenders(t *testing.T) {
	_, _, opt, root := setup(t)
	sz := dag.NewSizer(opt.Est, nil)
	p := opt.Best(root, NewMatSet(), sz, opt.NewMemo())
	s := p.String()
	if s == "" || len(s) < 10 {
		t.Errorf("plan rendering too short: %q", s)
	}
}

func TestMatSetClone(t *testing.T) {
	ms := NewMatSet()
	ms.Full[3] = true
	ms.Indexes[IndexKey{EquivID: 3, Col: "x"}] = true
	cl := ms.Clone()
	cl.Full[4] = true
	if ms.Full[4] {
		t.Errorf("clone leaked")
	}
	if !cl.Full[3] || !cl.Indexes[IndexKey{EquivID: 3, Col: "x"}] {
		t.Errorf("clone should copy contents")
	}
	var nilSet *MatSet
	if nilSet.Clone() == nil {
		t.Errorf("nil clone should be usable")
	}
}

func TestAggregatePlanCost(t *testing.T) {
	cat := warehouse()
	d := dag.New(cat)
	agg := algebra.NewAggregate(
		[]algebra.ColRef{algebra.C("dim1.d1_attr")},
		[]algebra.AggSpec{{Func: algebra.Sum, Col: algebra.C("fact.f_val")}},
		starView(cat))
	root := d.AddQuery("v", agg)
	opt := New(d, cost.NewModel(cost.Default()))
	sz := dag.NewSizer(opt.Est, nil)
	p := opt.Best(root, NewMatSet(), sz, opt.NewMemo())
	if p.Op.Kind != dag.OpAggregate {
		t.Fatalf("root should aggregate")
	}
	if p.Rows != 50 {
		t.Errorf("50 attr groups expected, got %g", p.Rows)
	}
}
