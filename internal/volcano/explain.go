package volcano

import (
	"fmt"
	"strings"

	"repro/internal/dag"
)

// Explain renders the plan as an indented multi-line tree with estimated
// rows and cumulative cost per node, in the style of EXPLAIN output:
//
//	hash join [l_orderkey=o_orderkey]            rows=60000  cost=2.310
//	├─ scan lineitem                             rows=600000 cost=1.950
//	└─ select [o_orderdate<255]                  rows=15000  cost=0.310
//	   └─ scan orders                            rows=150000 cost=0.300
func Explain(p *PlanNode) string {
	var b strings.Builder
	explainNode(&b, p, "", true, true)
	return b.String()
}

func explainNode(b *strings.Builder, p *PlanNode, prefix string, isLast, isRoot bool) {
	connector := ""
	childPrefix := prefix
	if !isRoot {
		if isLast {
			connector = "└─ "
			childPrefix = prefix + "   "
		} else {
			connector = "├─ "
			childPrefix = prefix + "│  "
		}
	}
	label := describePlanNode(p)
	line := prefix + connector + label
	pad := 52 - len([]rune(line))
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(b, "%s%s rows=%.0f cost=%.3f\n", line, strings.Repeat(" ", pad), p.Rows, p.CumCost)
	for i, c := range p.Children {
		explainNode(b, c, childPrefix, i == len(p.Children)-1, false)
	}
}

func describePlanNode(p *PlanNode) string {
	switch p.Access {
	case Reuse:
		return fmt.Sprintf("reuse materialized e%d", p.E.ID)
	case Probe:
		return fmt.Sprintf("index probe e%d", p.E.ID)
	}
	switch p.Op.Kind {
	case dag.OpScan:
		return "scan " + p.Op.Table
	case dag.OpJoin:
		return fmt.Sprintf("%s join [%s]", p.Algo, p.Op.Pred.String())
	case dag.OpSelect:
		return fmt.Sprintf("select [%s]", p.Op.Pred.String())
	case dag.OpProject:
		return "project"
	case dag.OpAggregate:
		gs := make([]string, len(p.Op.GroupBy))
		for i, g := range p.Op.GroupBy {
			gs[i] = g.QName()
		}
		return "aggregate [" + strings.Join(gs, ",") + "]"
	case dag.OpUnion:
		return "union all"
	case dag.OpMinus:
		return "minus"
	case dag.OpDedup:
		return "dedup"
	default:
		return p.Op.Kind.String()
	}
}
