package greedy

import (
	"testing"

	"repro/internal/diff"
)

// seedChanges extracts the chosen changes of a result, in pick order.
func seedChanges(res *Result) []diff.Change {
	out := make([]diff.Change, len(res.Chosen))
	for i, d := range res.Chosen {
		out[i] = d.Change
	}
	return out
}

func TestSeededRunKeepsStillUsefulPicks(t *testing.T) {
	en, roots := setup(t, 5, true, loc, lop)
	base := Run(en, roots, DefaultConfig())
	if len(base.Chosen) == 0 {
		t.Fatal("baseline chose nothing; seeding test needs picks")
	}

	// Re-running on the same engine seeded with the full prior solution must
	// not do worse than the cold run, and must not duplicate picks.
	cfg := DefaultConfig()
	cfg.Seed = seedChanges(base)
	seeded := Run(en, roots, cfg)
	if seeded.FinalCost > base.FinalCost+1e-9 {
		t.Errorf("seeded run worse than cold: %g > %g", seeded.FinalCost, base.FinalCost)
	}
	counts := map[diff.Change]int{}
	for _, d := range seeded.Chosen {
		counts[d.Change]++
		if counts[d.Change] > 1 {
			t.Fatalf("change picked twice in seeded run: %+v", d.Change)
		}
	}
}

func TestSeededRunNeverExceedsKeepingSeed(t *testing.T) {
	// The monotonicity guard behind adaptive re-selection: the seeded run's
	// final cost is bounded by the cost of keeping the seed set unchanged.
	for _, pct := range []float64{1, 10, 50} {
		en, roots := setup(t, pct, true, loc, lop)
		prior := Run(en, roots, DefaultConfig())
		keep := CostOf(en, roots, nil, seedChanges(prior))

		// A drifted engine: same DAG, different update spec.
		en2, roots2 := setup(t, pct*3+1, true, loc, lop)
		keep2 := CostOf(en2, roots2, nil, seedChanges(prior))
		cfg := DefaultConfig()
		cfg.Seed = seedChanges(prior)
		res := Run(en2, roots2, cfg)
		if res.FinalCost > keep2+1e-9 {
			t.Errorf("pct=%g: re-selection raised cost over keeping the prior set: %g > %g",
				pct, res.FinalCost, keep2)
		}
		if keep <= 0 || keep2 <= 0 {
			t.Errorf("pct=%g: CostOf returned non-positive cost (%g, %g)", pct, keep, keep2)
		}
	}
}

func TestCostOfMatchesRunTotals(t *testing.T) {
	en, roots := setup(t, 5, true, loc, lop)
	res := Run(en, roots, DefaultConfig())
	// CostOf over the chosen set must reproduce the run's final cost, and
	// over the empty set its initial cost.
	if got := CostOf(en, roots, nil, seedChanges(res)); !closeTo(got, res.FinalCost) {
		t.Errorf("CostOf(chosen) = %g, want FinalCost %g", got, res.FinalCost)
	}
	if got := CostOf(en, roots, nil, nil); !closeTo(got, res.InitialCost) {
		t.Errorf("CostOf(∅) = %g, want InitialCost %g", got, res.InitialCost)
	}
	// Duplicated changes must not change the answer.
	dup := append(seedChanges(res), seedChanges(res)...)
	if got := CostOf(en, roots, nil, dup); !closeTo(got, res.FinalCost) {
		t.Errorf("CostOf with duplicates = %g, want %g", got, res.FinalCost)
	}
}

func TestSeedRespectsMaxChoicesAndBudget(t *testing.T) {
	en, roots := setup(t, 5, true, loc, lop)
	base := Run(en, roots, DefaultConfig())
	if len(base.Chosen) < 2 {
		t.Skip("needs at least two picks")
	}
	cfg := DefaultConfig()
	cfg.Seed = seedChanges(base)
	cfg.MaxChoices = 1
	res := Run(en, roots, cfg)
	if len(res.Chosen) != 1 {
		t.Errorf("MaxChoices=1 with seeds: %d picks", len(res.Chosen))
	}
}

func closeTo(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6*(1+b)
}
