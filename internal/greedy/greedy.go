// Package greedy implements the paper's greedy heuristic for selecting
// extra results to materialize (§6): full results (temporarily during
// refresh, or permanently with incremental maintenance), differential
// results (always temporary), and indexes on stored results. It includes
// both optimizations the paper adopts from [RSSB00]:
//
//   - incremental cost update: benefits are evaluated on a forked Eval that
//     re-costs only ancestors of the candidate (diff.Eval.Fork);
//   - monotonicity: benefits are kept in a lazy max-heap and recomputed only
//     when a stale entry surfaces, on the assumption that benefits do not
//     grow as more results are materialized.
package greedy

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/dag"
	"repro/internal/diff"
	"repro/internal/volcano"
)

// Config tunes the candidate set and the stopping rule.
type Config struct {
	// IncludeDiffs admits differential results as candidates. (The paper's
	// own implementation had this restriction: "it only considers full
	// results for materialization"; enabling it implements the full design.)
	IncludeDiffs bool
	// IncludeIndexes admits index candidates on stored results.
	IncludeIndexes bool
	// MaxChoices caps the number of picks (0 = unlimited).
	MaxChoices int
	// SpaceBudget, when positive, limits the total bytes of permanently and
	// temporarily materialized extras; candidates are then ranked by benefit
	// per unit space (paper §6.2 end).
	SpaceBudget float64
	// MinBenefit is the stopping threshold (paper: stop at benefit < 0).
	MinBenefit float64
	// DisableMonotonicity turns off the lazy-heap benefit caching (§6.2
	// optimization 2) and recomputes every candidate's benefit each
	// iteration. For ablation studies; results are identical, only slower
	// (up to tie-breaking among equal benefits).
	DisableMonotonicity bool
	// DisableIncremental turns off the incremental cost update (§6.2
	// optimization 1): every benefit evaluation costs the whole DAG from
	// scratch instead of only the candidate's ancestors. For ablation
	// studies; results are identical, only slower.
	DisableIncremental bool
	// Workers bounds the worker pool for concurrent benefit evaluation (the
	// initial heap fill, and every sweep of the naive ablation path). 0 uses
	// runtime.GOMAXPROCS(0); 1 forces serial evaluation. Results are
	// identical at any setting: each candidate's benefit is computed on its
	// own forked Eval against the immutable engine, and results are merged
	// in candidate order.
	Workers int
	// Seed warm-starts the run from a prior solution (online re-selection):
	// before any fresh candidate is considered, each seed change is
	// re-evaluated in order under the current engine and applied if its
	// benefit still exceeds MinBenefit. Kept seeds appear in Chosen like any
	// pick; dropped ones are free to re-enter as ordinary candidates. The
	// re-evaluation is incremental (Eval.Fork), so warm-starting costs one
	// benefit call per seed rather than a full selection.
	Seed []diff.Change
}

// DefaultConfig enables everything, unbounded.
func DefaultConfig() Config {
	return Config{IncludeDiffs: true, IncludeIndexes: true}
}

// Decision records one materialization pick.
type Decision struct {
	// Change is the picked materialization (full result, differential, or
	// index).
	Change diff.Change
	// Benefit is the refresh-cost reduction of the pick at the time it was
	// made, in cost-model seconds.
	Benefit float64
	// Bytes is the estimated storage footprint.
	Bytes float64
	// Permanent marks full results whose incremental maintenance is cheaper
	// than recomputation (they are kept and maintained with the views);
	// temporary results are recomputed during refresh and discarded.
	// Differentials are always temporary; indexes always permanent.
	Permanent bool
	// Desc is a human-readable description.
	Desc string
}

// Result is the outcome of a greedy run.
type Result struct {
	// State is the final materialization state (views plus every pick).
	State *diff.MatState
	// Eval is the evaluation context of the final state; plans read from it
	// are the ones the refresh executor runs.
	Eval *diff.Eval
	// Chosen lists the picks in descending benefit order.
	Chosen []Decision
	// InitialCost and FinalCost are the total refresh costs before and after
	// selection (the paper's cost(M, M) totals).
	InitialCost, FinalCost float64
	// BenefitCalls counts benefit evaluations (instrumentation showing the
	// effect of the monotonicity optimization).
	BenefitCalls int
	// CandidateCount is the size of the initial candidate set.
	CandidateCount int
}

// item is a heap entry.
type item struct {
	change  diff.Change
	benefit float64 // heap key: raw benefit, or benefit per byte when budgeted
	raw     float64 // raw benefit in seconds
	epoch   int     // pick epoch at which benefit was computed
	bytes   float64
	index   int
}

// maxHeap orders items by descending benefit (container/heap.Interface).
type maxHeap []*item

// Len reports the number of items.
func (h maxHeap) Len() int { return len(h) }

// Less orders greater benefits first (max-heap).
func (h maxHeap) Less(i, j int) bool { return h[i].benefit > h[j].benefit }

// Swap exchanges two items, maintaining their heap indexes.
func (h maxHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }

// Push appends an item (called by container/heap).
func (h *maxHeap) Push(x interface{}) { it := x.(*item); it.index = len(*h); *h = append(*h, it) }

// Pop removes and returns the last item (called by container/heap).
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// WeightedQuery is a read-only workload element: its root is evaluated
// Weight times per refresh cycle and benefits from whatever is materialized.
// This implements the paper's closing extension ("choose extra temporary and
// permanent views in order to speed up a workload containing queries and
// updates").
type WeightedQuery struct {
	// Root is the query's equivalence node in the shared DAG.
	Root *dag.Equiv
	// Weight is the number of executions per refresh cycle.
	Weight float64
}

// Selector runs the greedy algorithm for one engine and view set.
type Selector struct {
	// En is the differential costing engine (immutable during a run).
	En *diff.Engine
	// Views are the roots whose refresh cost is minimized.
	Views []*dag.Equiv
	// Queries are optional weighted read-only workload elements.
	Queries []WeightedQuery
	// Cfg tunes candidates, stopping, and concurrency.
	Cfg Config
}

// New builds a selector.
func New(en *diff.Engine, views []*dag.Equiv, cfg Config) *Selector {
	return &Selector{En: en, Views: views, Cfg: cfg}
}

// chosenSet tracks what is being costed in the paper's cost(M, M) total.
type chosenSet struct {
	fulls   []int // equiv IDs: views first, then chosen extras
	diffs   []diff.DiffKey
	indexes []volcano.IndexKey
}

// totalCost is the paper's cost(S, M): the refresh cost of every chosen
// result under the evaluation state.
func (s *Selector) totalCost(ev *diff.Eval, set *chosenSet) float64 {
	en := s.En
	total := 0.0
	for _, id := range set.fulls {
		e := en.D.Equivs[id]
		recompute := ev.ComputeCost(e) + en.Model.WriteCost(en.FinalRows(e), dag.Width(e))
		maintain := ev.MaintCost(e)
		total += math.Min(recompute, maintain)
	}
	for _, k := range set.diffs {
		e := en.D.Equivs[k.EquivID]
		p := ev.DiffPlan(e, k.Update)
		total += p.Cost + en.Model.WriteCost(p.Rows, dag.Width(e))
	}
	for _, ik := range set.indexes {
		e := en.D.Equivs[ik.EquivID]
		deltaRows := 0.0
		for i := 1; i <= en.U.N(); i++ {
			deltaRows += en.DeltaRows(e, i)
		}
		total += en.Model.IndexMaintCost(deltaRows)
	}
	for _, q := range s.Queries {
		total += q.Weight * ev.FullPlanAt(q.Root, en.FinalState()).CumCost
	}
	return total
}

// bytesOf estimates the storage footprint of a candidate. It is called once
// per candidate per Run and cached on the heap item; FinalRows/DeltaRows
// behind it are memoized by the engine.
func (s *Selector) bytesOf(c diff.Change) float64 {
	en := s.En
	e := en.D.Equivs[c.EquivID]
	switch c.Kind {
	case diff.ChangeFull:
		return en.FinalRows(e) * float64(dag.Width(e))
	case diff.ChangeDiff:
		return en.DeltaRows(e, c.Update) * float64(dag.Width(e))
	default:
		return en.FinalRows(e) * 12
	}
}

// describe renders a candidate.
func (s *Selector) describe(c diff.Change) string {
	e := s.En.D.Equivs[c.EquivID]
	switch c.Kind {
	case diff.ChangeFull:
		return fmt.Sprintf("full e%d %v", e.ID, e.Tables)
	case diff.ChangeDiff:
		kind := "δ+"
		if !s.En.U.IsInsert(c.Update) {
			kind = "δ−"
		}
		return fmt.Sprintf("%s%s of e%d %v", kind, s.En.U.Table(c.Update), e.ID, e.Tables)
	default:
		return fmt.Sprintf("index on e%d(%s)", e.ID, c.Col)
	}
}

// candidates enumerates the initial candidate set Y (paper Fig. 2):
// every non-leaf equivalence node's full result, every non-empty
// differential, and index candidates on join columns of stored (or
// materializable) inputs plus on the views themselves for merging.
func (s *Selector) candidates(initial *diff.MatState) []diff.Change {
	en := s.En
	var out []diff.Change
	isView := map[int]bool{}
	for _, v := range s.Views {
		isView[v.ID] = true
	}
	for _, e := range en.D.Equivs {
		if e.IsTable {
			continue
		}
		// Results already in the initial state (views, or kept seeds of a
		// warm-started run) are not candidates again.
		if !isView[e.ID] && !initial.Fulls.Full[e.ID] {
			out = append(out, diff.Change{Kind: diff.ChangeFull, EquivID: e.ID})
		}
		if s.Cfg.IncludeDiffs {
			for i := 1; i <= en.U.N(); i++ {
				if en.DeltaRows(e, i) > 0 && !initial.Diffs[diff.DiffKey{EquivID: e.ID, Update: i}] {
					out = append(out, diff.Change{Kind: diff.ChangeDiff, EquivID: e.ID, Update: i})
				}
			}
		}
	}
	if s.Cfg.IncludeIndexes {
		seen := map[volcano.IndexKey]bool{}
		addIx := func(id int, col string) {
			k := volcano.IndexKey{EquivID: id, Col: col}
			if !seen[k] && !initial.Fulls.Indexes[k] {
				seen[k] = true
				out = append(out, diff.Change{Kind: diff.ChangeIndex, EquivID: id, Col: col})
			}
		}
		for _, e := range en.D.Equivs {
			for _, op := range e.Ops {
				if op.Kind != dag.OpJoin {
					continue
				}
				for _, c := range op.Pred.Conjuncts {
					if c.Op != algebra.EQ {
						continue
					}
					for _, side := range []algebra.Expr{c.L, c.R} {
						cr, ok := side.(algebra.ColRef)
						if !ok {
							continue
						}
						for _, child := range op.Children {
							if child.Schema.Has(cr.QName()) {
								// Skip base-table indexes already in the catalog.
								if child.IsTable && en.D.Cat.HasIndex(child.Tables[0], cr.Name) {
									continue
								}
								addIx(child.ID, cr.QName())
							}
						}
					}
				}
			}
		}
		// Merge-assisting index on each view (first schema column).
		for _, v := range s.Views {
			if len(v.Schema) > 0 {
				addIx(v.ID, v.Schema[0].QName())
			}
		}
	}
	return out
}

// evalConcurrently runs eval(i) for every i in [0, n) on a worker pool
// bounded by Cfg.Workers (default runtime.GOMAXPROCS(0)). Each index is
// processed exactly once and writes only its own slot, so callers merge
// results by index — deterministic regardless of scheduling.
func (s *Selector) evalConcurrently(n int, eval func(int)) {
	workers := s.Cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			eval(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				eval(i)
			}
		}()
	}
	wg.Wait()
}

// Run executes the greedy selection and returns the chosen set, the final
// evaluation state, and instrumentation.
func (s *Selector) Run() *Result {
	en := s.En
	ms := diff.NewMatState()
	set := &chosenSet{}
	for _, v := range s.Views {
		ms.Fulls.Full[v.ID] = true
		set.fulls = append(set.fulls, v.ID)
	}
	ev := en.NewEval(ms)
	cur := s.totalCost(ev, set)
	res := &Result{State: ms, InitialCost: cur}

	// evalAfter applies a change hypothetically (or for real). With the
	// incremental cost update it forks the current Eval, carrying over every
	// memoized plan outside the candidate's ancestor set; the ablation path
	// rebuilds an Eval from scratch. Safe to call concurrently: it only
	// reads ev and the prewarmed engine, and writes the forked Eval's own
	// memo maps.
	evalAfter := func(ch diff.Change) *diff.Eval {
		if s.Cfg.DisableIncremental {
			ms2 := ev.MS.Clone()
			ch.Apply(ms2)
			return en.NewEval(ms2)
		}
		return ev.Fork(ch)
	}
	// scoreOf computes the heap key of a candidate under the current state,
	// recording the raw benefit on the item. Concurrency-safe per item.
	scoreOf := func(it *item) float64 {
		trial := s.withChange(set, it.change)
		ben := cur - s.totalCost(evalAfter(it.change), trial)
		it.raw = ben
		if s.Cfg.SpaceBudget > 0 && it.bytes > 0 {
			ben /= it.bytes
		}
		return ben
	}
	benefitOf := func(it *item) float64 {
		res.BenefitCalls++
		return scoreOf(it)
	}
	apply := func(it *item) {
		ev = evalAfter(it.change)
		it.change.Apply(ms)
		set = s.withChange(set, it.change)
		cur = s.totalCost(ev, set)
		res.Chosen = append(res.Chosen, s.decisionFor(ev, it))
	}

	spaceLeft := s.Cfg.SpaceBudget

	// Warm start: re-justify the seed solution change by change under the
	// current engine before fresh candidates compete. A seed that no longer
	// pays (the workload drifted away from it) is dropped here and re-enters
	// below as an ordinary candidate.
	seeded := map[diff.Change]bool{}
	for _, ch := range s.Cfg.Seed {
		if seeded[ch] {
			continue
		}
		seeded[ch] = true
		if s.Cfg.MaxChoices > 0 && len(res.Chosen) >= s.Cfg.MaxChoices {
			break
		}
		it := &item{change: ch, bytes: s.bytesOf(ch)}
		if s.Cfg.SpaceBudget > 0 && it.bytes > spaceLeft {
			continue
		}
		if it.benefit = benefitOf(it); it.benefit > s.Cfg.MinBenefit {
			apply(it)
			if s.Cfg.SpaceBudget > 0 {
				spaceLeft -= it.bytes
			}
		}
	}

	cands := s.candidates(ms)
	res.CandidateCount = len(cands)
	items := make([]*item, len(cands))
	for i, c := range cands {
		items[i] = &item{change: c, epoch: 0, bytes: s.bytesOf(c)}
	}

	if s.Cfg.DisableMonotonicity {
		// Naive greedy (paper Fig. 2 without §6.2 optimization 2): every
		// remaining candidate's benefit is recomputed each iteration — each
		// sweep fans out over the worker pool; the arg-max scan stays serial
		// and in candidate order, so picks are identical to a serial run.
		remaining := append([]*item(nil), items...)
		for len(remaining) > 0 {
			if s.Cfg.MaxChoices > 0 && len(res.Chosen) >= s.Cfg.MaxChoices {
				break
			}
			eligible := remaining
			if s.Cfg.SpaceBudget > 0 {
				eligible = make([]*item, 0, len(remaining))
				for _, it := range remaining {
					if it.bytes <= spaceLeft {
						eligible = append(eligible, it)
					}
				}
			}
			s.evalConcurrently(len(eligible), func(i int) {
				eligible[i].benefit = scoreOf(eligible[i])
			})
			res.BenefitCalls += len(eligible)
			bestI := -1
			bestBen := s.Cfg.MinBenefit
			for i, it := range remaining {
				if s.Cfg.SpaceBudget > 0 && it.bytes > spaceLeft {
					continue
				}
				if it.benefit > bestBen {
					bestBen, bestI = it.benefit, i
				}
			}
			if bestI < 0 {
				break
			}
			pick := remaining[bestI]
			remaining = append(remaining[:bestI], remaining[bestI+1:]...)
			apply(pick)
			if s.Cfg.SpaceBudget > 0 {
				spaceLeft -= pick.bytes
			}
		}
	} else {
		// Initial heap fill: every candidate's epoch-0 benefit, evaluated
		// concurrently on forked Evals and pushed in candidate order so the
		// heap — and hence every later pick — is deterministic. Candidates
		// over the space budget are dropped unevaluated, as the lazy heap
		// used to discard them at pop time before costing them.
		fill := items
		if s.Cfg.SpaceBudget > 0 {
			fill = make([]*item, 0, len(items))
			for _, it := range items {
				if it.bytes <= spaceLeft {
					fill = append(fill, it)
				}
			}
		}
		s.evalConcurrently(len(fill), func(i int) {
			fill[i].benefit = scoreOf(fill[i])
		})
		res.BenefitCalls += len(fill)
		h := &maxHeap{}
		for _, it := range fill {
			heap.Push(h, it)
		}
		epoch := 0
		for h.Len() > 0 {
			if s.Cfg.MaxChoices > 0 && len(res.Chosen) >= s.Cfg.MaxChoices {
				break
			}
			top := (*h)[0]
			if s.Cfg.SpaceBudget > 0 && top.bytes > spaceLeft {
				heap.Pop(h) // does not fit; discard
				continue
			}
			if top.epoch != epoch {
				// Stale: recompute its benefit under the current state, push
				// back, and try again (monotonicity optimization: fresh
				// entries above stale ones are picked without recomputation).
				heap.Pop(h)
				top.benefit = benefitOf(top)
				top.epoch = epoch
				heap.Push(h, top)
				continue
			}
			// Fresh maximum: the greedy pick.
			if top.benefit <= s.Cfg.MinBenefit {
				break
			}
			heap.Pop(h)
			apply(top)
			epoch++
			if s.Cfg.SpaceBudget > 0 {
				spaceLeft -= top.bytes
			}
		}
	}
	res.Eval = ev
	res.FinalCost = cur
	sort.SliceStable(res.Chosen, func(i, j int) bool { return res.Chosen[i].Benefit > res.Chosen[j].Benefit })
	return res
}

// withChange returns a copy of the chosen set including the change.
func (s *Selector) withChange(set *chosenSet, c diff.Change) *chosenSet {
	out := &chosenSet{
		fulls:   append([]int(nil), set.fulls...),
		diffs:   append([]diff.DiffKey(nil), set.diffs...),
		indexes: append([]volcano.IndexKey(nil), set.indexes...),
	}
	switch c.Kind {
	case diff.ChangeFull:
		out.fulls = append(out.fulls, c.EquivID)
	case diff.ChangeDiff:
		out.diffs = append(out.diffs, diff.DiffKey{EquivID: c.EquivID, Update: c.Update})
	case diff.ChangeIndex:
		out.indexes = append(out.indexes, volcano.IndexKey{EquivID: c.EquivID, Col: c.Col})
	}
	return out
}

// decisionFor finalizes the record for a pick, deciding temporary versus
// permanent for full results (paper §6.1: cheaper of recomputation and
// incremental maintenance).
func (s *Selector) decisionFor(ev *diff.Eval, it *item) Decision {
	en := s.En
	d := Decision{
		Change:  it.change,
		Benefit: it.raw,
		Bytes:   it.bytes,
		Desc:    s.describe(it.change),
	}
	switch it.change.Kind {
	case diff.ChangeFull:
		e := en.D.Equivs[it.change.EquivID]
		recompute := ev.ComputeCost(e) + en.Model.WriteCost(en.FinalRows(e), dag.Width(e))
		d.Permanent = ev.MaintCost(e) < recompute
	case diff.ChangeIndex:
		d.Permanent = true
	}
	return d
}

// Run is a convenience wrapper: build a selector and run it.
func Run(en *diff.Engine, views []*dag.Equiv, cfg Config) *Result {
	return New(en, views, cfg).Run()
}

// RunWorkload runs selection for a mixed workload: materialized views to
// maintain plus weighted read-only queries that benefit from the chosen
// materializations.
func RunWorkload(en *diff.Engine, views []*dag.Equiv, queries []WeightedQuery, cfg Config) *Result {
	s := New(en, views, cfg)
	s.Queries = queries
	return s.Run()
}

// CostOf evaluates the total per-cycle workload cost — view refresh plus
// weighted query evaluation — of one specific materialization choice: the
// views plus exactly the given extra changes (duplicates ignored). The
// adaptation pipeline uses it to price "keep the previous solution" under
// freshly observed statistics, the baseline a re-selection must not exceed.
func CostOf(en *diff.Engine, views []*dag.Equiv, queries []WeightedQuery, changes []diff.Change) float64 {
	s := &Selector{En: en, Views: views, Queries: queries}
	ms := diff.NewMatState()
	set := &chosenSet{}
	for _, v := range views {
		ms.Fulls.Full[v.ID] = true
		set.fulls = append(set.fulls, v.ID)
	}
	seen := map[diff.Change]bool{}
	for _, c := range changes {
		if seen[c] {
			continue
		}
		seen[c] = true
		c.Apply(ms)
		set = s.withChange(set, c)
	}
	return s.totalCost(en.NewEval(ms), set)
}
