package greedy

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/diff"
)

// warehouse: lineitem(600k) → orders(150k) → customer(15k), part(20k).
func warehouse(withPK bool) *catalog.Catalog {
	cat := catalog.New()
	add := func(name string, rows int64, cols []catalog.Column, pk string,
		stats map[string]catalog.ColumnStats) {
		cat.AddTable(&catalog.Table{
			Name: name, Columns: cols, PrimaryKey: []string{pk},
			Stats: catalog.TableStats{Rows: rows, Columns: stats},
		})
		if withPK {
			cat.AddIndex(catalog.Index{Name: "pk_" + name, Table: name,
				Columns: []string{pk}, Unique: true})
		}
	}
	add("customer", 15000, []catalog.Column{
		{Name: "c_key", Type: catalog.Int, Width: 8},
		{Name: "c_mkt", Type: catalog.Int, Width: 8},
	}, "c_key", map[string]catalog.ColumnStats{
		"c_key": {Distinct: 15000, Min: 1, Max: 15000},
		"c_mkt": {Distinct: 5, Min: 1, Max: 5},
	})
	add("orders", 150000, []catalog.Column{
		{Name: "o_key", Type: catalog.Int, Width: 8},
		{Name: "o_cust", Type: catalog.Int, Width: 8},
		{Name: "o_date", Type: catalog.Date, Width: 8},
	}, "o_key", map[string]catalog.ColumnStats{
		"o_key":  {Distinct: 150000, Min: 1, Max: 150000},
		"o_cust": {Distinct: 15000, Min: 1, Max: 15000},
		"o_date": {Distinct: 2400, Min: 0, Max: 2400},
	})
	add("lineitem", 600000, []catalog.Column{
		{Name: "l_order", Type: catalog.Int, Width: 8},
		{Name: "l_part", Type: catalog.Int, Width: 8},
		{Name: "l_qty", Type: catalog.Float, Width: 8},
		{Name: "l_price", Type: catalog.Float, Width: 8},
	}, "l_order", map[string]catalog.ColumnStats{
		"l_order": {Distinct: 150000, Min: 1, Max: 150000},
		"l_part":  {Distinct: 20000, Min: 1, Max: 20000},
		"l_qty":   {Distinct: 50, Min: 1, Max: 50},
		"l_price": {Distinct: 50000, Min: 1, Max: 100000},
	})
	add("part", 20000, []catalog.Column{
		{Name: "p_key", Type: catalog.Int, Width: 8},
		{Name: "p_type", Type: catalog.Int, Width: 8},
	}, "p_key", map[string]catalog.ColumnStats{
		"p_key":  {Distinct: 20000, Min: 1, Max: 20000},
		"p_type": {Distinct: 150, Min: 1, Max: 150},
	})
	return cat
}

// lo is the shared selective subexpression: recent lineitem ⋈ orders
// (o_date < 240 keeps ~10% of orders). loc extends it with customers of one
// market segment; lop with parts of one type — the same sharing pattern as
// the paper's Example 3.1.
func lo(cat *catalog.Catalog) algebra.Node {
	return algebra.NewSelect(
		algebra.And(algebra.CmpConst("orders.o_date", algebra.LT, algebra.NewInt(240))),
		algebra.NewJoin(algebra.And(algebra.Eq("lineitem.l_order", "orders.o_key")),
			algebra.NewScan(cat, "lineitem"), algebra.NewScan(cat, "orders")))
}
func loc(cat *catalog.Catalog) algebra.Node {
	return algebra.NewSelect(
		algebra.And(algebra.CmpConst("customer.c_mkt", algebra.EQ, algebra.NewInt(1))),
		algebra.NewJoin(algebra.And(algebra.Eq("orders.o_cust", "customer.c_key")),
			lo(cat).(*algebra.Select), algebra.NewScan(cat, "customer")))
}
func lop(cat *catalog.Catalog) algebra.Node {
	return algebra.NewSelect(
		algebra.And(algebra.CmpConst("part.p_type", algebra.EQ, algebra.NewInt(7))),
		algebra.NewJoin(algebra.And(algebra.Eq("lineitem.l_part", "part.p_key")),
			lo(cat).(*algebra.Select), algebra.NewScan(cat, "part")))
}

func setup(t *testing.T, pct float64, withPK bool, views ...func(*catalog.Catalog) algebra.Node) (*diff.Engine, []*dag.Equiv) {
	t.Helper()
	cat := warehouse(withPK)
	d := dag.New(cat)
	var roots []*dag.Equiv
	for i, v := range views {
		roots = append(roots, d.AddQuery("v"+string(rune('0'+i)), v(cat)))
	}
	d.ApplySubsumption()
	u := diff.UniformPercent(cat, []string{"customer", "orders", "lineitem", "part"}, pct)
	return diff.NewEngine(d, cost.NewModel(cost.Default()), u), roots
}

func TestGreedyNeverHurts(t *testing.T) {
	for _, pct := range []float64{1, 10, 50} {
		en, roots := setup(t, pct, true, loc, lop)
		res := Run(en, roots, DefaultConfig())
		if res.FinalCost > res.InitialCost+1e-9 {
			t.Errorf("pct=%g: greedy raised cost %g → %g", pct, res.InitialCost, res.FinalCost)
		}
	}
}

func TestGreedyFindsSharedSubexpression(t *testing.T) {
	// Both views contain lineitem⋈orders; at low update rates Greedy should
	// materialize something useful (the shared join, a differential of it,
	// or an enabling index) and cut total cost meaningfully.
	en, roots := setup(t, 5, true, loc, lop)
	res := Run(en, roots, DefaultConfig())
	if len(res.Chosen) == 0 {
		t.Fatalf("greedy chose nothing despite shared subexpressions")
	}
	if res.FinalCost >= res.InitialCost*0.95 {
		t.Errorf("expected >5%% improvement, got %g → %g", res.InitialCost, res.FinalCost)
	}
}

func TestGreedyChoosesIndexesWhenNoneExist(t *testing.T) {
	// Paper fig 5(b): with no predefined indices, required indices get
	// chosen for materialization.
	en, roots := setup(t, 5, false, loc, lop)
	res := Run(en, roots, DefaultConfig())
	foundIndex := false
	for _, c := range res.Chosen {
		if c.Change.Kind == diff.ChangeIndex {
			foundIndex = true
		}
	}
	if !foundIndex {
		for _, c := range res.Chosen {
			t.Logf("chose: %s benefit=%g", c.Desc, c.Benefit)
		}
		t.Errorf("no index chosen despite none existing")
	}
}

func TestMonotonicityReducesBenefitCalls(t *testing.T) {
	en, roots := setup(t, 5, true, loc, lop)
	res := Run(en, roots, DefaultConfig())
	// Naive greedy recomputes every candidate's benefit every iteration:
	// candidates × (picks+1) calls. The lazy heap must do much better.
	naive := res.CandidateCount * (len(res.Chosen) + 1)
	if res.BenefitCalls >= naive {
		t.Errorf("monotonicity optimization ineffective: %d calls vs naive %d",
			res.BenefitCalls, naive)
	}
	if res.BenefitCalls < res.CandidateCount {
		t.Errorf("every candidate needs at least one benefit call: %d < %d",
			res.BenefitCalls, res.CandidateCount)
	}
}

func TestSpaceBudgetRespected(t *testing.T) {
	en, roots := setup(t, 5, true, loc, lop)
	budget := float64(4 << 20) // 4 MB
	cfg := DefaultConfig()
	cfg.SpaceBudget = budget
	res := Run(en, roots, cfg)
	total := 0.0
	for _, c := range res.Chosen {
		total += c.Bytes
	}
	if total > budget {
		t.Errorf("space budget violated: %g > %g", total, budget)
	}
}

func TestMaxChoicesCap(t *testing.T) {
	en, roots := setup(t, 5, true, loc, lop)
	cfg := DefaultConfig()
	cfg.MaxChoices = 2
	res := Run(en, roots, cfg)
	if len(res.Chosen) > 2 {
		t.Errorf("cap violated: %d picks", len(res.Chosen))
	}
}

func TestTemporaryVsPermanentShiftsWithUpdateRate(t *testing.T) {
	// Paper §7.2: at high update rates more chosen results are temporary
	// (recomputation cheaper); at low rates more are permanent.
	permAt := func(pct float64) (perm, temp int) {
		en, roots := setup(t, pct, true, loc, lop)
		res := Run(en, roots, DefaultConfig())
		for _, c := range res.Chosen {
			if c.Change.Kind != diff.ChangeFull {
				continue
			}
			if c.Permanent {
				perm++
			} else {
				temp++
			}
		}
		return
	}
	permLow, tempLow := permAt(1)
	permHigh, tempHigh := permAt(80)
	t.Logf("1%%: perm=%d temp=%d; 80%%: perm=%d temp=%d", permLow, tempLow, permHigh, tempHigh)
	// Directional check only when both rates picked full results.
	if permLow+tempLow > 0 && permHigh+tempHigh > 0 {
		fracLow := float64(permLow) / float64(permLow+tempLow)
		fracHigh := float64(permHigh) / float64(permHigh+tempHigh)
		if fracHigh > fracLow {
			t.Errorf("permanent fraction should not grow with update rate: %g → %g",
				fracLow, fracHigh)
		}
	}
}

func TestDiffsOnlyConfig(t *testing.T) {
	en, roots := setup(t, 5, true, loc)
	cfg := Config{IncludeDiffs: false, IncludeIndexes: false}
	res := Run(en, roots, cfg)
	for _, c := range res.Chosen {
		if c.Change.Kind != diff.ChangeFull {
			t.Errorf("only full results should be candidates, got %s", c.Desc)
		}
	}
}

func TestSingleViewStillBenefits(t *testing.T) {
	// Even a single view can benefit: sharing occurs across its own 2n
	// maintenance expressions (paper §3.3, example 3.2).
	en, roots := setup(t, 2, true, loc)
	res := Run(en, roots, DefaultConfig())
	if res.FinalCost > res.InitialCost {
		t.Errorf("cost must not rise: %g → %g", res.InitialCost, res.FinalCost)
	}
}
