package greedy

import (
	"math"
	"testing"

	"repro/internal/dag"
	"repro/internal/diff"
)

// TestIncrementalCostUpdateIsExact verifies that the incremental cost
// update (§6.2 optimization 1) is a pure speedup: with the same benefit
// evaluation order, forked Evals and from-scratch Evals must produce
// identical selections. We compare with monotonicity both on and off.
func TestIncrementalCostUpdateIsExact(t *testing.T) {
	for _, mono := range []bool{false, true} {
		en, roots := setup(t, 5, true, loc, lop)
		fast := Config{IncludeDiffs: true, IncludeIndexes: true, DisableMonotonicity: mono}
		slow := fast
		slow.DisableIncremental = true
		a := Run(en, roots, fast)
		b := Run(en, roots, slow)
		if math.Abs(a.FinalCost-b.FinalCost) > 1e-6*(1+b.FinalCost) {
			t.Errorf("mono=%v: incremental cost update changed the outcome: %g vs %g",
				mono, a.FinalCost, b.FinalCost)
		}
		if len(a.Chosen) != len(b.Chosen) {
			t.Errorf("mono=%v: different pick counts: %d vs %d", mono, len(a.Chosen), len(b.Chosen))
		}
	}
}

// TestMonotonicityHeuristicNearOptimal documents the paper's caveat that the
// monotonicity assumption "is not always true": the lazy heap may land on a
// slightly different selection than naive greedy, but it must stay close and
// must never be worse than doing nothing.
func TestMonotonicityHeuristicNearOptimal(t *testing.T) {
	en, roots := setup(t, 5, true, loc, lop)
	lazy := Run(en, roots, DefaultConfig())
	naiveCfg := DefaultConfig()
	naiveCfg.DisableMonotonicity = true
	naive := Run(en, roots, naiveCfg)
	if lazy.FinalCost > lazy.InitialCost {
		t.Errorf("lazy greedy must never hurt: %g → %g", lazy.InitialCost, lazy.FinalCost)
	}
	if lazy.FinalCost > naive.FinalCost*1.25 {
		t.Errorf("lazy heap strayed too far from naive greedy: %g vs %g",
			lazy.FinalCost, naive.FinalCost)
	}
	t.Logf("final cost: lazy=%g naive=%g (initial %g)", lazy.FinalCost, naive.FinalCost, lazy.InitialCost)
}

func TestMonotonicityAblationCostsMoreCalls(t *testing.T) {
	en, roots := setup(t, 5, true, loc, lop)
	lazy := Run(en, roots, DefaultConfig())
	naiveCfg := DefaultConfig()
	naiveCfg.DisableMonotonicity = true
	naive := Run(en, roots, naiveCfg)
	if naive.BenefitCalls <= lazy.BenefitCalls {
		t.Errorf("naive greedy should need more benefit calls: %d vs %d",
			naive.BenefitCalls, lazy.BenefitCalls)
	}
	t.Logf("benefit calls: lazy=%d naive=%d (%.1fx reduction)",
		lazy.BenefitCalls, naive.BenefitCalls,
		float64(naive.BenefitCalls)/float64(lazy.BenefitCalls))
}

func TestWorkloadQueriesAttractMaterializations(t *testing.T) {
	// A heavy read-only query over the shared subexpression with tiny
	// updates: the selector should materialize something that cuts the
	// query's cost.
	en, roots := setup(t, 1, true, loc)
	var queryRoot *dag.Equiv
	// Use the lop view's root as a pure query (registered in the DAG of
	// setup only when passed; reuse loc's shared backbone instead: query
	// the lineitem⋈orders subset node directly).
	for _, e := range en.D.Equivs {
		if len(e.Tables) == 2 && e.DependsOn("lineitem") && e.DependsOn("orders") {
			queryRoot = e
		}
	}
	if queryRoot == nil {
		t.Fatal("shared subexpression missing")
	}
	queries := []WeightedQuery{{Root: queryRoot, Weight: 50}}

	noQ := Run(en, roots, DefaultConfig())
	withQ := RunWorkload(en, roots, queries, DefaultConfig())
	// The workload total includes query cost, so compare the query's own
	// evaluation cost before and after selection.
	before := en.NewEval(diff.NewMatState()).FullPlanAt(queryRoot, en.FinalState()).CumCost
	after := withQ.Eval.FullPlanAt(queryRoot, en.FinalState()).CumCost
	if after >= before {
		t.Errorf("heavy query should get cheaper through materialization: %g vs %g", after, before)
	}
	_ = noQ
}

func TestWorkloadInitialCostIncludesQueries(t *testing.T) {
	en, roots := setup(t, 5, true, loc)
	q := []WeightedQuery{{Root: roots[0], Weight: 10}}
	plain := Run(en, roots, Config{})
	loaded := RunWorkload(en, roots, q, Config{})
	if loaded.InitialCost <= plain.InitialCost {
		t.Errorf("query weight should raise the workload cost: %g vs %g",
			loaded.InitialCost, plain.InitialCost)
	}
}
