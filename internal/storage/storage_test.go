package storage

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
)

func sch() algebra.Schema {
	return algebra.Schema{
		{Rel: "t", Name: "a", Type: catalog.Int, Width: 8},
		{Rel: "t", Name: "b", Type: catalog.String, Width: 8},
	}
}

func tup(a int64, b string) algebra.Tuple {
	return algebra.Tuple{algebra.NewInt(a), algebra.NewString(b)}
}

func TestInsertAndLen(t *testing.T) {
	r := NewRelation(sch())
	r.Insert(tup(1, "x"))
	r.Insert(tup(1, "x")) // duplicate allowed
	r.Insert(tup(2, "y"))
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if got := r.Counts().Count(tup(1, "x")); got != 2 {
		t.Errorf("duplicate multiplicity = %d, want 2", got)
	}
}

func TestInsertArityPanics(t *testing.T) {
	r := NewRelation(sch())
	defer func() {
		if recover() == nil {
			t.Errorf("wrong arity should panic")
		}
	}()
	r.Insert(algebra.Tuple{algebra.NewInt(1)})
}

func TestSubtractAllMultisetSemantics(t *testing.T) {
	r := NewRelation(sch())
	r.Insert(tup(1, "x"))
	r.Insert(tup(1, "x"))
	r.Insert(tup(2, "y"))

	d := NewRelation(sch())
	d.Insert(tup(1, "x"))
	d.Insert(tup(3, "z")) // absent: ignored

	r.SubtractAll(d)
	if r.Len() != 2 {
		t.Fatalf("after subtract Len = %d, want 2", r.Len())
	}
	if r.Counts().Count(tup(1, "x")) != 1 {
		t.Errorf("exactly one copy of (1,x) should remain")
	}
}

func TestEqualMultiset(t *testing.T) {
	a := NewRelation(sch())
	b := NewRelation(sch())
	a.Insert(tup(1, "x"))
	a.Insert(tup(2, "y"))
	b.Insert(tup(2, "y"))
	b.Insert(tup(1, "x"))
	if !EqualMultiset(a, b) {
		t.Errorf("order should not matter")
	}
	b.Insert(tup(1, "x"))
	if EqualMultiset(a, b) {
		t.Errorf("multiplicities differ")
	}
}

func TestUnionThenSubtractRoundTrip(t *testing.T) {
	// Property: (R ∪ S) − S == R for random multisets (monus with S ⊆ R∪S).
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		base := NewRelation(sch())
		extra := NewRelation(sch())
		for i := 0; i < r.Intn(30); i++ {
			base.Insert(tup(int64(r.Intn(5)), "x"))
		}
		for i := 0; i < r.Intn(30); i++ {
			extra.Insert(tup(int64(r.Intn(5)), "x"))
		}
		combined := base.Clone()
		combined.InsertAll(extra)
		combined.SubtractAll(extra)
		if !EqualMultiset(combined, base) {
			t.Fatalf("round trip failed on trial %d", trial)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := NewRelation(sch())
	a.Insert(tup(1, "x"))
	b := a.Clone()
	b.Rows()[0][0] = algebra.NewInt(99)
	if a.Rows()[0][0].I != 1 {
		t.Errorf("clone aliased tuples")
	}
}

func TestHashIndexProbe(t *testing.T) {
	r := NewRelation(sch())
	r.Insert(tup(1, "x"))
	r.Insert(tup(2, "y"))
	r.Insert(tup(1, "z"))
	ix := BuildHashIndex(r, 0)
	if got := ix.Probe(algebra.NewInt(1)); len(got) != 2 {
		t.Errorf("probe(1) = %v, want 2 rows", got)
	}
	if got := ix.Probe(algebra.NewInt(7)); len(got) != 0 {
		t.Errorf("probe(7) should be empty")
	}
}

func TestDatabaseDeltaLifecycle(t *testing.T) {
	db := NewDatabase()
	db.Create("t", sch())
	db.MustRelation("t").Insert(tup(1, "x"))
	db.LogInsert("t", tup(2, "y"))
	db.LogDelete("t", tup(1, "x"))

	if db.Delta("t").Empty() {
		t.Fatalf("delta should be pending")
	}
	db.ApplyInserts("t")
	if db.MustRelation("t").Len() != 2 {
		t.Errorf("insert not applied")
	}
	if db.Delta("t").Plus.Len() != 0 {
		t.Errorf("δ+ should be cleared after apply")
	}
	db.ApplyDeletes("t")
	if db.MustRelation("t").Len() != 1 {
		t.Errorf("delete not applied")
	}
	if db.Delta("t").Minus.Len() != 0 {
		t.Errorf("δ− should be cleared after apply")
	}
}

func TestDatabaseDuplicateCreatePanics(t *testing.T) {
	db := NewDatabase()
	db.Create("t", sch())
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate Create should panic")
		}
	}()
	db.Create("t", sch())
}

func TestDatabaseNamesSorted(t *testing.T) {
	db := NewDatabase()
	db.Create("zeta", sch())
	db.Create("alpha", sch())
	got := db.Names()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Errorf("Names = %v", got)
	}
}
