package storage

// White-box tests for the hashed multiset representation: collision
// handling (forced via addHashed/removeHashed/countHashed), monus edge
// cases, duplicate-sensitive equality, and a property test checking that the
// hashed Counts agrees with the string-keyed implementation it replaced.

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
)

// TestTupleCountsCollision forces two distinct tuples into the same hash
// bucket and checks that counts, removals and lookups stay separated by
// tuple equality.
func TestTupleCountsCollision(t *testing.T) {
	a := tup(1, "x")
	b := tup(2, "y")
	const h = uint64(42) // same forced hash for both

	tc := NewTupleCounts(0)
	tc.addHashed(h, a, 2)
	tc.addHashed(h, b, 1)

	if got := tc.countHashed(h, a); got != 2 {
		t.Errorf("count(a) = %d, want 2", got)
	}
	if got := tc.countHashed(h, b); got != 1 {
		t.Errorf("count(b) = %d, want 1", got)
	}
	if tc.Len() != 3 {
		t.Errorf("Len = %d, want 3", tc.Len())
	}
	if !tc.removeHashed(h, b) {
		t.Errorf("remove(b) should succeed")
	}
	if tc.removeHashed(h, b) {
		t.Errorf("remove(b) twice should fail: multiplicity was 1")
	}
	if got := tc.countHashed(h, a); got != 2 {
		t.Errorf("removing b must not affect a: count(a) = %d, want 2", got)
	}
}

// TestSubtractAllMonusEdgeCases exercises the monus corners: subtracting
// more copies than present, subtracting from empty, and subtracting an
// entirely disjoint multiset.
func TestSubtractAllMonusEdgeCases(t *testing.T) {
	// More copies removed than present: clamps at zero, never negative.
	r := NewRelation(sch())
	r.Insert(tup(1, "x"))
	d := NewRelation(sch())
	d.Insert(tup(1, "x"))
	d.Insert(tup(1, "x"))
	d.Insert(tup(1, "x"))
	r.SubtractAll(d)
	if r.Len() != 0 {
		t.Errorf("over-subtraction should empty the relation, Len = %d", r.Len())
	}

	// Subtracting from empty is a no-op.
	empty := NewRelation(sch())
	empty.SubtractAll(d)
	if empty.Len() != 0 {
		t.Errorf("subtract from empty: Len = %d", empty.Len())
	}

	// Disjoint multisets: nothing removed.
	r2 := NewRelation(sch())
	r2.Insert(tup(7, "q"))
	r2.Insert(tup(8, "r"))
	r2.SubtractAll(d)
	if r2.Len() != 2 {
		t.Errorf("disjoint subtraction should remove nothing, Len = %d", r2.Len())
	}

	// Self-subtraction empties exactly.
	r3 := NewRelation(sch())
	r3.Insert(tup(1, "x"))
	r3.Insert(tup(1, "x"))
	r3.Insert(tup(2, "y"))
	r3.SubtractAll(r3.Clone())
	if r3.Len() != 0 {
		t.Errorf("self-subtraction should empty, Len = %d", r3.Len())
	}
}

// TestEqualMultisetDuplicates checks that equality is multiplicity-exact.
func TestEqualMultisetDuplicates(t *testing.T) {
	a := NewRelation(sch())
	b := NewRelation(sch())
	for i := 0; i < 3; i++ {
		a.Insert(tup(1, "x"))
	}
	a.Insert(tup(2, "y"))
	// Same distinct tuples, different multiplicities.
	b.Insert(tup(1, "x"))
	b.Insert(tup(2, "y"))
	b.Insert(tup(2, "y"))
	b.Insert(tup(2, "y"))
	if EqualMultiset(a, b) {
		t.Errorf("same support, different multiplicities: must differ")
	}
	b2 := NewRelation(sch())
	b2.Insert(tup(2, "y"))
	for i := 0; i < 3; i++ {
		b2.Insert(tup(1, "x"))
	}
	if !EqualMultiset(a, b2) {
		t.Errorf("equal multisets in different order must compare equal")
	}
}

// stringKey reimplements the retired string-keyed tuple rendering, as the
// reference for the agreement property test.
func stringKey(t algebra.Tuple) string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// TestHashedCountsAgreesWithStringKeyed is the property test: on random
// multisets (ints, floats, dates, strings, duplicates), the hashed Counts
// reports exactly the multiplicities of the old string-keyed implementation.
func TestHashedCountsAgreesWithStringKeyed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	schema := algebra.Schema{
		{Rel: "t", Name: "i", Width: 8},
		{Rel: "t", Name: "f", Width: 8},
		{Rel: "t", Name: "s", Width: 8},
	}
	letters := []string{"", "a", "b", "ab", "ba", "a\x1fb"}
	for trial := 0; trial < 100; trial++ {
		r := NewRelation(schema)
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			r.Insert(algebra.Tuple{
				algebra.NewInt(int64(rng.Intn(6))),
				algebra.NewFloat(float64(rng.Intn(4)) / 2),
				algebra.NewString(letters[rng.Intn(len(letters))]),
			})
		}
		want := make(map[string]int, r.Len())
		for _, tp := range r.Rows() {
			want[stringKey(tp)]++
		}
		got := r.Counts()
		if got.Len() != r.Len() {
			t.Fatalf("trial %d: Counts().Len() = %d, want %d", trial, got.Len(), r.Len())
		}
		for _, tp := range r.Rows() {
			if g, w := got.Count(tp), want[stringKey(tp)]; g != w {
				t.Fatalf("trial %d: count(%v) = %d, string-keyed reference %d",
					trial, tp, g, w)
			}
		}
	}
}

// TestHashIndexCollisionProbe forces a collision scenario through the public
// API by checking value-confirmed probes on a column with duplicates.
func TestHashIndexProbeConfirmsEquality(t *testing.T) {
	r := NewRelation(sch())
	r.Insert(tup(1, "x"))
	r.Insert(tup(2, "y"))
	r.Insert(tup(1, "z"))
	ix := BuildHashIndex(r, 0)
	for _, pos := range ix.Probe(algebra.NewInt(1)) {
		if r.Rows()[pos][0].I != 1 {
			t.Errorf("probe returned row %d with key %v", pos, r.Rows()[pos][0])
		}
	}
	// Float 1.0 compares equal to Int 1 (one numeric class): the probe must
	// agree with Value.Equal semantics.
	if got := ix.Probe(algebra.NewFloat(1)); len(got) != 2 {
		t.Errorf("probe(float 1.0) = %v, want the two int-1 rows", got)
	}
}
