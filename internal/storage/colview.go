package storage

// ColView is the columnar image of one relation version: lazily built typed
// column vectors plus cached key-column hash columns, the substrate of the
// vectorized batch engine (internal/exec/batch.go). Like PartView it is
// cached on the relation through an atomic pointer, dropped by in-place
// mutation, and carried across copy-on-write versions — extended on
// insert-merge (only the appended suffix is decoded/hashed) and compacted by
// keep mask on delete-merge (pure index arithmetic, no rehash). The view
// never owns row data: column vectors copy the typed payloads out of the
// tuples, and all batch operators gather their OUTPUT rows from the original
// tuples, so value fidelity (kinds, -0.0, NaN payloads) is byte-identical to
// the row engine by construction.

import (
	"os"
	"sync"

	"repro/internal/algebra"
	"repro/internal/catalog"
)

// ColRep classifies a column's physical representation: every row's value
// payload lives in one typed slice, or the column is mixed-kind and readers
// fall back to the row store.
type ColRep uint8

const (
	// RepMixed marks a column whose values do not share one payload class
	// (or an empty relation, where no class is established); batch operators
	// read such columns through the rows.
	RepMixed ColRep = iota
	// RepInt covers Int and Date values (both carry int64 payloads and
	// compare numerically on them).
	RepInt
	// RepFloat covers Float values.
	RepFloat
	// RepStr covers String values.
	RepStr
)

// ColVec is one materialized column. Exactly one of the payload slices is
// populated, selected by Rep (none for RepMixed).
type ColVec struct {
	Rep ColRep
	I   []int64
	F   []float64
	S   []string
}

// keyHashes caches the column-subset hash column for one key-column set,
// identical element-wise to algebra.Tuple.HashCols over the rows.
type keyHashes struct {
	cols []int
	h    []uint64
}

// ColView holds the lazily built columnar state of one relation version.
type ColView struct {
	rows []algebra.Tuple

	mu   sync.Mutex
	cols []*ColVec // per schema column, nil until first use
	keys []keyHashes
}

// ColView returns (creating and caching on first use) the relation's column
// view. Columns and hash columns inside it are built lazily on demand. Safe
// to call from any number of goroutines on a published (immutable) relation
// version: the cache is an atomic pointer and concurrent creators converge
// on equivalent views.
func (r *Relation) ColView() *ColView {
	if cv := r.colv.Load(); cv != nil {
		return cv
	}
	cv := &ColView{rows: r.rows, cols: make([]*ColVec, len(r.schema))}
	r.colv.Store(cv)
	return cv
}

// Len returns the view's row count.
func (cv *ColView) Len() int { return len(cv.rows) }

// Col returns column c, building and caching it on first use.
func (cv *ColView) Col(c int) *ColVec {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	if v := cv.cols[c]; v != nil {
		return v
	}
	v := buildColVec(cv.rows, c)
	cv.cols[c] = v
	return v
}

// buildColVec extracts column c of the rows into a typed vector, degrading
// to RepMixed the moment two payload classes meet.
func buildColVec(rows []algebra.Tuple, c int) *ColVec {
	if len(rows) == 0 {
		return &ColVec{Rep: RepMixed}
	}
	switch rep := repOf(rows[0][c]); rep {
	case RepInt:
		xs := make([]int64, len(rows))
		for i, t := range rows {
			if repOf(t[c]) != RepInt {
				return &ColVec{Rep: RepMixed}
			}
			xs[i] = t[c].I
		}
		return &ColVec{Rep: RepInt, I: xs}
	case RepFloat:
		xs := make([]float64, len(rows))
		for i, t := range rows {
			if t[c].Kind != catalog.Float {
				return &ColVec{Rep: RepMixed}
			}
			xs[i] = t[c].F
		}
		return &ColVec{Rep: RepFloat, F: xs}
	default:
		xs := make([]string, len(rows))
		for i, t := range rows {
			if t[c].Kind != catalog.String {
				return &ColVec{Rep: RepMixed}
			}
			xs[i] = t[c].S
		}
		return &ColVec{Rep: RepStr, S: xs}
	}
}

// repOf maps a value to its payload class.
func repOf(v algebra.Value) ColRep {
	switch v.Kind {
	case catalog.Int, catalog.Date:
		return RepInt
	case catalog.Float:
		return RepFloat
	default:
		return RepStr
	}
}

// KeyHashes returns the cached hash column for the given key-column subset,
// computing it (morsel-parallel for large relations) on first use. Element i
// equals rows[i].HashCols(cols), so batch joins and aggregations probe with
// exactly the hashes the row engine would compute.
func (cv *ColView) KeyHashes(cols []int, par Par) []uint64 {
	cv.mu.Lock()
	for i := range cv.keys {
		if eqCols(cv.keys[i].cols, cols) {
			h := cv.keys[i].h
			cv.mu.Unlock()
			return h
		}
	}
	cv.mu.Unlock()

	rows := cv.rows
	h := make([]uint64, len(rows))
	par = par.Norm()
	workers := par.Workers
	if len(rows) < ParMinRows {
		workers = 1
	}
	ranges := MorselRanges(len(rows), workers)
	forRangesStorage(ranges, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			h[i] = rows[i].HashCols(cols)
		}
	})

	cv.mu.Lock()
	defer cv.mu.Unlock()
	// A concurrent caller may have installed the same key set meanwhile;
	// keep the first installation so every reader shares one column.
	for i := range cv.keys {
		if eqCols(cv.keys[i].cols, cols) {
			return cv.keys[i].h
		}
	}
	cv.keys = append(cv.keys, keyHashes{cols: append([]int(nil), cols...), h: h})
	return h
}

// CachedKeys returns a snapshot of the key-column sets whose hash columns
// are currently cached on the view, paired with the hash columns themselves.
// Installed hash columns are immutable, so callers may retain the returned
// slices; the column-set slices are copied. The shard layer uses this to
// ship already-built hash columns to workers alongside sliced rows.
func (cv *ColView) CachedKeys() (cols [][]int, hashes [][]uint64) {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	for _, k := range cv.keys {
		cols = append(cols, append([]int(nil), k.cols...))
		hashes = append(hashes, k.h)
	}
	return cols, hashes
}

// InstallKeyHashes installs a precomputed hash column for a key-column set,
// e.g. one shipped from a coordinator that already paid the build pass. The
// column must satisfy the KeyHashes contract (element i == rows[i].HashCols
// (cols)); a wrong-length column is ignored. An existing cache entry for the
// set wins, so concurrent computes and installs converge on one column.
func (cv *ColView) InstallKeyHashes(cols []int, h []uint64) {
	if len(h) != len(cv.rows) {
		return
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	for i := range cv.keys {
		if eqCols(cv.keys[i].cols, cols) {
			return
		}
	}
	cv.keys = append(cv.keys, keyHashes{cols: append([]int(nil), cols...), h: h})
}

func eqCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// forRangesStorage runs body over the ranges on up to workers goroutines.
func forRangesStorage(ranges [][2]int, workers int, body func(lo, hi int)) {
	if workers > len(ranges) {
		workers = len(ranges)
	}
	RunWorkers(workers, func(w int) {
		for i := w; i < len(ranges); i += workers {
			body(ranges[i][0], ranges[i][1])
		}
	})
}

// extendColView derives the column view of the extended rows (old rows plus
// an appended suffix) from the previous version's view: built columns and
// hash columns grow by decoding/hashing only the suffix; a suffix value that
// breaks a column's payload class degrades that column to RepMixed. Unbuilt
// columns stay unbuilt.
func extendColView(cv *ColView, rows []algebra.Tuple) *ColView {
	out := &ColView{rows: rows, cols: make([]*ColVec, len(cv.cols))}
	suffix := rows[len(cv.rows):]
	cv.mu.Lock()
	defer cv.mu.Unlock()
	for c, v := range cv.cols {
		if v == nil {
			continue
		}
		out.cols[c] = extendColVec(v, suffix, c)
	}
	out.keys = make([]keyHashes, len(cv.keys))
	for i, k := range cv.keys {
		h := make([]uint64, len(rows))
		copy(h, k.h)
		for j, t := range suffix {
			h[len(cv.rows)+j] = t.HashCols(k.cols)
		}
		out.keys[i] = keyHashes{cols: k.cols, h: h}
	}
	return out
}

// extendColVec grows one typed vector by the suffix values of column c.
func extendColVec(v *ColVec, suffix []algebra.Tuple, c int) *ColVec {
	switch v.Rep {
	case RepInt:
		xs := make([]int64, len(v.I), len(v.I)+len(suffix))
		copy(xs, v.I)
		for _, t := range suffix {
			if repOf(t[c]) != RepInt {
				return &ColVec{Rep: RepMixed}
			}
			xs = append(xs, t[c].I)
		}
		return &ColVec{Rep: RepInt, I: xs}
	case RepFloat:
		xs := make([]float64, len(v.F), len(v.F)+len(suffix))
		copy(xs, v.F)
		for _, t := range suffix {
			if t[c].Kind != catalog.Float {
				return &ColVec{Rep: RepMixed}
			}
			xs = append(xs, t[c].F)
		}
		return &ColVec{Rep: RepFloat, F: xs}
	case RepStr:
		xs := make([]string, len(v.S), len(v.S)+len(suffix))
		copy(xs, v.S)
		for _, t := range suffix {
			if t[c].Kind != catalog.String {
				return &ColVec{Rep: RepMixed}
			}
			xs = append(xs, t[c].S)
		}
		return &ColVec{Rep: RepStr, S: xs}
	default:
		return v
	}
}

// deriveKeptColView compacts a column view by a keep mask (kept = the
// surviving rows, in original relative order): built typed vectors and hash
// columns compact by index with no decoding or rehashing. A nil input view
// yields nil (rebuilt lazily on demand).
func deriveKeptColView(cv *ColView, kept []algebra.Tuple, keep []bool) *ColView {
	if cv == nil {
		return nil
	}
	out := &ColView{rows: kept, cols: make([]*ColVec, len(cv.cols))}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	for c, v := range cv.cols {
		if v == nil {
			continue
		}
		out.cols[c] = keepColVec(v, keep, len(kept))
	}
	out.keys = make([]keyHashes, len(cv.keys))
	for i, k := range cv.keys {
		h := make([]uint64, 0, len(kept))
		for j, kp := range keep {
			if kp {
				h = append(h, k.h[j])
			}
		}
		out.keys[i] = keyHashes{cols: k.cols, h: h}
	}
	return out
}

// keepColVec compacts one typed vector by the keep mask.
func keepColVec(v *ColVec, keep []bool, n int) *ColVec {
	switch v.Rep {
	case RepInt:
		xs := make([]int64, 0, n)
		for i, kp := range keep {
			if kp {
				xs = append(xs, v.I[i])
			}
		}
		return &ColVec{Rep: RepInt, I: xs}
	case RepFloat:
		xs := make([]float64, 0, n)
		for i, kp := range keep {
			if kp {
				xs = append(xs, v.F[i])
			}
		}
		return &ColVec{Rep: RepFloat, F: xs}
	case RepStr:
		xs := make([]string, 0, n)
		for i, kp := range keep {
			if kp {
				xs = append(xs, v.S[i])
			}
		}
		return &ColVec{Rep: RepStr, S: xs}
	default:
		return v
	}
}

// ---------------------------------------------------------------------------
// View-carrying mutation variants used by the batch engine's refresh merges.

// InsertAllExtend is InsertAll carrying cached views forward instead of
// dropping them: the partition view and every built column/hash column are
// extended by decoding and hashing only the appended rows. The delete-merge
// counterpart is the keep-mask path of ParSubtractAll; together they keep a
// maintained result's hash chain alive across a whole refresh cycle.
func (r *Relation) InsertAllExtend(o *Relation) {
	if len(o.schema) != len(r.schema) {
		panic("storage: InsertAllExtend schema arity mismatch")
	}
	pv := r.part.Load()
	cv := r.colv.Load()
	base := len(r.rows)
	r.rows = append(r.rows, o.rows...)
	if pv != nil {
		r.part.Store(extendPartView(pv, o.rows, base))
	}
	if cv != nil {
		r.colv.Store(extendColView(cv, r.rows))
	}
}

// InsertAllPar folds o into r under the configured engine: the batch engine
// extends cached views across the mutation, the row engine drops them
// (InsertAll). Rows are identical either way.
func (r *Relation) InsertAllPar(o *Relation, par Par) {
	if par.Batch {
		r.InsertAllExtend(o)
		return
	}
	r.InsertAll(o)
}

// ApplyInsertsPar is ApplyInserts under the configured engine (see
// InsertAllPar).
func (db *Database) ApplyInsertsPar(name string, par Par) {
	d := db.deltas[name]
	db.relations[name].InsertAllPar(d.Plus, par)
	d.Plus = NewRelation(d.Plus.Schema())
}

// ApplyDeletesPar is ApplyDeletes under the configured engine: the batch
// engine subtracts through the keep-mask path (reusing and carrying the hash
// column), the row engine through SubtractAll.
func (db *Database) ApplyDeletesPar(name string, par Par) {
	d := db.deltas[name]
	if par.Batch {
		db.relations[name].ParSubtractAll(d.Minus, par)
	} else {
		db.relations[name].SubtractAll(d.Minus)
	}
	d.Minus = NewRelation(d.Minus.Schema())
}

// ApplyDeletesCOWPar is ApplyDeletesCOW under the configured engine: the
// batch engine derives the new version through ParMinusCOW (keep-mask path
// with view carry), the row engine through MinusCOW.
func (db *Database) ApplyDeletesCOWPar(name string, par Par) *Relation {
	d := db.deltas[name]
	var nr *Relation
	if par.Batch {
		nr = ParMinusCOW(db.relations[name], d.Minus, par)
	} else {
		nr = MinusCOW(db.relations[name], d.Minus)
	}
	db.relations[name] = nr
	d.Minus = NewRelation(d.Minus.Schema())
	return nr
}

// ---------------------------------------------------------------------------
// Engine-mode default.

// defaultExecBatch is resolved once at startup from MVOPT_EXEC: "row"
// selects the row-at-a-time engine; anything else (including unset) selects
// the vectorized batch engine. "chained" additionally selects the chained
// columnar pipeline (batches cross operator boundaries, one row gather at
// the sink). Executor constructors read both so the whole test suite can be
// forced onto any engine from the environment.
var (
	defaultExecBatch = os.Getenv("MVOPT_EXEC") != "row"
	defaultExecChain = os.Getenv("MVOPT_EXEC") == "chained"
)

// DefaultExecBatch reports whether new executors default to the vectorized
// batch engine.
func DefaultExecBatch() bool { return defaultExecBatch }

// DefaultExecChain reports whether new executors default to the chained
// columnar pipeline.
func DefaultExecChain() bool { return defaultExecChain }

// DefaultPar returns the zero parallelism configuration carrying the
// default engine choice.
func DefaultPar() Par { return Par{Batch: defaultExecBatch, Chain: defaultExecChain} }

// SetDefaultExecBatch overrides the process-wide default engine selection
// (the CLIs' -exec flag routes here): on selects the plain batch engine, off
// the row engine — either way the chained pipeline is deselected, so each
// setter names exactly one engine. Call before constructing executors or
// runtimes; already-built executors keep the engine they were created with.
func SetDefaultExecBatch(on bool) {
	defaultExecBatch = on
	defaultExecChain = false
}

// SetDefaultExecChain selects (or deselects) the chained columnar pipeline
// as the process-wide default. Chained execution runs on the batch kernels,
// so enabling it enables the batch engine too; disabling it falls back to
// plain batch.
func SetDefaultExecChain(on bool) {
	defaultExecChain = on
	if on {
		defaultExecBatch = true
	}
}
