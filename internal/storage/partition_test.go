package storage

// Tests for the hash-partitioned storage layer: partitioned TupleCounts
// equivalence with the single-partition form, PartView coverage /
// invalidation / caching, per-partition COW sharing through UnionCOW, and
// the parallel relation operations' byte-identity with their sequential
// twins. Run under -race in CI, so the worker fan-out is exercised for
// races as well as results.

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
)

// forceParallel lowers the sequential-fallback threshold so small test
// inputs exercise the parallel paths, restoring it afterwards.
func forceParallel(t *testing.T) {
	t.Helper()
	old := ParMinRows
	ParMinRows = 0
	t.Cleanup(func() { ParMinRows = old })
}

// randRel builds a relation with duplicates and a skewed value range.
func randRel(rng *rand.Rand, n int) *Relation {
	schema := algebra.Schema{{Rel: "t", Name: "a"}, {Rel: "t", Name: "b"}}
	r := NewRelation(schema)
	for i := 0; i < n; i++ {
		r.Insert(algebra.Tuple{
			algebra.NewInt(int64(rng.Intn(n/4 + 1))),
			algebra.NewInt(int64(rng.Intn(8))),
		})
	}
	return r
}

func TestTupleCountsPartitionedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, parts := range []int{2, 4, 7} {
		flat := NewTupleCounts(0)
		part := newTupleCountsParts(64, parts)
		if part.Partitions() != parts {
			t.Fatalf("Partitions() = %d, want %d", part.Partitions(), parts)
		}
		tuples := make([]algebra.Tuple, 40)
		for i := range tuples {
			tuples[i] = algebra.Tuple{algebra.NewInt(int64(rng.Intn(10))), algebra.NewInt(int64(i % 3))}
		}
		for op := 0; op < 500; op++ {
			tu := tuples[rng.Intn(len(tuples))]
			switch rng.Intn(3) {
			case 0:
				n := 1 + rng.Intn(3)
				flat.Add(tu, n)
				part.Add(tu, n)
			case 1:
				if flat.Remove(tu) != part.Remove(tu) {
					t.Fatalf("parts=%d: Remove diverged at op %d", parts, op)
				}
			default:
				if flat.Count(tu) != part.Count(tu) {
					t.Fatalf("parts=%d: Count diverged at op %d", parts, op)
				}
			}
			if flat.Len() != part.Len() {
				t.Fatalf("parts=%d: Len %d vs %d at op %d", parts, flat.Len(), part.Len(), op)
			}
		}
	}
}

func TestPartViewCoversEveryRowOnce(t *testing.T) {
	forceParallel(t)
	r := randRel(rand.New(rand.NewSource(3)), 300)
	for _, parts := range []int{1, 4, 7} {
		pv := r.PartView(Par{Partitions: parts, Workers: 3})
		if pv.Parts() != parts {
			t.Fatalf("Parts() = %d, want %d", pv.Parts(), parts)
		}
		seen := make([]bool, r.Len())
		for p := 0; p < parts; p++ {
			last := int32(-1)
			for _, i := range pv.Rows(p) {
				if i <= last {
					t.Fatalf("parts=%d: partition %d indexes not ascending", parts, p)
				}
				last = i
				if seen[i] {
					t.Fatalf("parts=%d: row %d in two partitions", parts, i)
				}
				seen[i] = true
				if h := r.Rows()[i].Hash(); h != pv.Hash(int(i)) || int(h%uint64(parts)) != p {
					t.Fatalf("parts=%d: row %d misplaced or hash mismatch", parts, i)
				}
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("parts=%d: row %d unassigned", parts, i)
			}
		}
	}
}

func TestPartViewCachingAndInvalidation(t *testing.T) {
	forceParallel(t)
	r := randRel(rand.New(rand.NewSource(4)), 100)
	par := Par{Partitions: 4}
	pv := r.PartView(par)
	if r.PartView(par) != pv {
		t.Fatalf("second PartView at same count should return the cached view")
	}
	if r.PartView(Par{Partitions: 5}) == pv {
		t.Fatalf("PartView at a different count must rebuild")
	}
	r.PartView(par)
	r.Append(algebra.Tuple{algebra.NewInt(1), algebra.NewInt(2)})
	pv2 := r.PartView(par)
	if pv2 == pv {
		t.Fatalf("mutation must invalidate the cached view")
	}
	total := 0
	for p := 0; p < 4; p++ {
		total += len(pv2.Rows(p))
	}
	if total != r.Len() {
		t.Fatalf("rebuilt view covers %d rows, want %d", total, r.Len())
	}
}

func TestUnionCOWSharesUntouchedPartitions(t *testing.T) {
	forceParallel(t)
	r := randRel(rand.New(rand.NewSource(5)), 200)
	const parts = 8
	pv := r.PartView(Par{Partitions: parts})

	// A one-row delta touches exactly one partition.
	add := NewRelation(r.Schema())
	one := algebra.Tuple{algebra.NewInt(999), algebra.NewInt(1)}
	add.Insert(one)
	touched := int(one.Hash() % uint64(parts))

	out := UnionCOW(r, add)
	opv := out.part.Load()
	if opv == nil {
		t.Fatalf("UnionCOW dropped the partition view instead of extending it")
	}
	for p := 0; p < parts; p++ {
		shared := len(pv.idx[p]) > 0 && len(opv.idx[p]) > 0 && &pv.idx[p][0] == &opv.idx[p][0] &&
			len(pv.idx[p]) == len(opv.idx[p])
		if p == touched {
			if len(opv.idx[p]) != len(pv.idx[p])+1 {
				t.Fatalf("touched partition %d: %d indexes, want %d",
					p, len(opv.idx[p]), len(pv.idx[p])+1)
			}
			if shared {
				t.Fatalf("touched partition %d must not share the base slice", p)
			}
		} else if len(pv.idx[p]) > 0 && !shared {
			t.Fatalf("untouched partition %d should share the base slice (per-partition COW)", p)
		}
	}
	// The carried view must agree with a fresh build.
	fresh := buildPartView(out.rows, Par{Partitions: parts}.Norm())
	for p := 0; p < parts; p++ {
		if len(fresh.idx[p]) != len(opv.idx[p]) {
			t.Fatalf("partition %d: carried %d vs rebuilt %d indexes",
				p, len(opv.idx[p]), len(fresh.idx[p]))
		}
		for k := range fresh.idx[p] {
			if fresh.idx[p][k] != opv.idx[p][k] {
				t.Fatalf("partition %d: carried index diverges at %d", p, k)
			}
		}
	}
	// The base relation's own view must be untouched.
	if got := r.part.Load(); got != pv {
		t.Fatalf("UnionCOW mutated the base relation's cached view")
	}
}

func rowsEqual(t *testing.T, what string, a, b *Relation) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: %d vs %d rows", what, a.Len(), b.Len())
	}
	for i := range a.rows {
		if !a.rows[i].Equal(b.rows[i]) {
			t.Fatalf("%s: rows differ at %d", what, i)
		}
	}
}

func TestParMinusAndSubtractMatchSequential(t *testing.T) {
	forceParallel(t)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := randRel(rng, 150+rng.Intn(100))
		sub := randRel(rng, 60)
		for _, parts := range []int{1, 3, 4, 7} {
			par := Par{Partitions: parts, Workers: 4}

			wantCow := MinusCOW(l, sub)
			gotCow := ParMinusCOW(l, sub, par)
			rowsEqual(t, "ParMinusCOW", wantCow, gotCow)

			seq := l.Clone()
			seq.SubtractAll(sub)
			parRel := l.Clone()
			parRel.ParSubtractAll(sub, par)
			rowsEqual(t, "ParSubtractAll", seq, parRel)

			if parts > 1 {
				// The minus paths derive the output's partition view from the
				// keep mask (no rehash); it must agree with a fresh build.
				viewMatchesRebuild(t, "ParMinusCOW", gotCow)
				viewMatchesRebuild(t, "ParSubtractAll", parRel)
			}
		}
	}
}

// viewMatchesRebuild asserts a relation's cached partition view equals a
// from-scratch build over its rows.
func viewMatchesRebuild(t *testing.T, what string, r *Relation) {
	t.Helper()
	pv := r.part.Load()
	if pv == nil {
		t.Fatalf("%s: derived partition view missing", what)
	}
	fresh := buildPartView(r.rows, Par{Partitions: pv.Parts()}.Norm())
	for i := range fresh.hashes {
		if fresh.hashes[i] != pv.hashes[i] {
			t.Fatalf("%s: carried hash diverges at row %d", what, i)
		}
	}
	for p := range fresh.idx {
		if len(fresh.idx[p]) != len(pv.idx[p]) {
			t.Fatalf("%s: partition %d has %d indexes, want %d",
				what, p, len(pv.idx[p]), len(fresh.idx[p]))
		}
		for k := range fresh.idx[p] {
			if fresh.idx[p][k] != pv.idx[p][k] {
				t.Fatalf("%s: partition %d index diverges at %d", what, p, k)
			}
		}
	}
}

func TestParCountsMatchesCounts(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(9))
	r := randRel(rng, 200)
	flat := r.Counts()
	for _, parts := range []int{1, 4, 7} {
		tc := ParCounts(r, Par{Partitions: parts, Workers: 3})
		if tc.Len() != flat.Len() {
			t.Fatalf("parts=%d: Len %d vs %d", parts, tc.Len(), flat.Len())
		}
		for _, tu := range r.Rows() {
			if tc.Count(tu) != flat.Count(tu) {
				t.Fatalf("parts=%d: Count diverged", parts)
			}
		}
	}
}

func TestParCloneMatchesClone(t *testing.T) {
	forceParallel(t)
	r := randRel(rand.New(rand.NewSource(11)), 180)
	c := r.ParClone(Par{Partitions: 4, Workers: 4})
	rowsEqual(t, "ParClone", r.Clone(), c)
	// Deep copy: mutating the clone's tuple storage must not reach r.
	c.rows[0][0] = algebra.NewInt(-777)
	if r.rows[0].Equal(c.rows[0]) {
		t.Fatalf("ParClone aliased tuple storage")
	}
}

func TestRunWorkersPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected the worker panic to re-raise on the caller")
		}
	}()
	RunWorkers(4, func(w int) {
		if w == 2 {
			panic("boom")
		}
	})
}

func TestMorselRangesPartitionExactly(t *testing.T) {
	for _, n := range []int{0, 1, 5, 97, 100} {
		for _, parts := range []int{1, 3, 7, 16} {
			rs := MorselRanges(n, parts)
			next := 0
			for _, r := range rs {
				if r[0] != next || r[1] < r[0] {
					t.Fatalf("n=%d parts=%d: bad range %v", n, parts, r)
				}
				next = r[1]
			}
			if next != n {
				t.Fatalf("n=%d parts=%d: ranges cover %d", n, parts, next)
			}
		}
	}
}
