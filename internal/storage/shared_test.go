package storage

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/algebra"
)

// TestSharedPublishOnce hammers one Shared cell from many goroutines under
// the race detector: the compute must run exactly once, every publisher and
// every reader must observe the same relation pointer, and reading the
// published rows from all goroutines must be race-free (the write barrier
// the refresh scheduler depends on).
func TestSharedPublishOnce(t *testing.T) {
	schema := algebra.Schema{{Rel: "t", Name: "a", Type: 0, Width: 8}}
	var cell Shared
	var computes atomic.Int32

	const goroutines = 32
	results := make([]*Relation, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := cell.Publish(func() *Relation {
				computes.Add(1)
				rel := NewRelation(schema)
				for i := int64(0); i < 100; i++ {
					rel.Insert(algebra.Tuple{algebra.NewInt(i)})
				}
				return rel
			})
			// Concurrent read after publish: sum the rows.
			var sum int64
			for _, tu := range r.Rows() {
				sum += tu[0].I
			}
			if sum != 4950 {
				t.Errorf("goroutine %d read a partial relation: sum %d", g, sum)
			}
			results[g] = r
		}(g)
	}
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want exactly once", n)
	}
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d saw a different relation pointer", g)
		}
	}
	if got := cell.Get(); got != results[0] {
		t.Fatalf("Get returned %p, want the published %p", got, results[0])
	}
}

// TestSharedGetBeforePublish pins the nil contract.
func TestSharedGetBeforePublish(t *testing.T) {
	var cell Shared
	if r := cell.Get(); r != nil {
		t.Fatalf("Get before Publish = %v, want nil", r)
	}
}
