package storage

import (
	"sync"
	"sync/atomic"
)

// Concurrency contract of the storage layer: a Relation is NOT safe for
// concurrent mutation, but it is safe for any number of concurrent readers
// once a happens-before barrier separates the last write from the first
// read. Shared is that barrier: a write-once cell that computes a Relation
// exactly once and publishes it to concurrent readers. The refresh
// scheduler (internal/exec) stores every temporarily materialized
// differential in a Shared so that independent consumers running on
// different workers read one published copy instead of racing to compute
// their own.

// Shared is a write-once, read-many cell for a Relation.
//
// The zero value is ready to use. Publish runs at most one compute across
// all callers and blocks the rest until the result is available; the
// atomic publication is the write barrier that makes the relation's rows
// safe to read from any goroutine that obtained it via Publish or Get.
// The published relation must not be mutated.
type Shared struct {
	once sync.Once
	rel  atomic.Pointer[Relation]
}

// Publish computes and publishes the relation on first call and returns the
// published copy on every call, blocking callers until it is available.
func (s *Shared) Publish(compute func() *Relation) *Relation {
	s.once.Do(func() { s.rel.Store(compute()) })
	return s.rel.Load()
}

// Get returns the published relation without blocking, or nil if no
// Publish has completed yet. A non-nil result is safe to read: the atomic
// load acquires everything written before the publishing store.
func (s *Shared) Get() *Relation {
	return s.rel.Load()
}
