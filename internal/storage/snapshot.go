package storage

import (
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
)

// Epoch-based snapshot isolation. A Snapshot is an immutable image of the
// whole stored state — every base relation plus every materialized result —
// published atomically by the refresh writer at each update-step boundary.
// Any number of concurrent readers resolve the current snapshot with one
// atomic load and then read it without further synchronization; the writer
// proceeds to the next step without ever blocking on them. Copy-on-write is
// at relation granularity: a step that mutates k relations creates k new
// relation versions — one full copy each — and shares every other relation
// with the previous snapshot, so write amplification is bounded by the
// total size of the touched relations, not the whole database.
//
// The happens-before argument: all writes building a new snapshot's
// relations happen before the SnapshotStore's atomic pointer store
// (release); a reader's atomic load (acquire) of that pointer therefore
// observes fully-built relations. Since published relations are never
// mutated again — the writer replaces them with fresh copies instead — a
// reader holding a snapshot sees exactly the state at one step boundary,
// never a torn mix of two steps.

// Snapshot is one immutable published state. It must not be mutated after
// publication; the accessors hand out relations that are safe for any
// number of concurrent readers.
type Snapshot struct {
	epoch int64
	rels  map[string]*Relation
	mats  map[int]*Relation
	db    *Database
}

// Epoch returns the snapshot's step number: 0 is the initial materialized
// state, and each refresh update step publishes the next epoch.
func (s *Snapshot) Epoch() int64 { return s.epoch }

// Relation returns the named base relation at this snapshot, or nil.
func (s *Snapshot) Relation(name string) *Relation { return s.rels[name] }

// Mat returns the materialized result of an equivalence node at this
// snapshot, or nil if the node is not materialized.
func (s *Snapshot) Mat(id int) *Relation { return s.mats[id] }

// MatCount reports how many materialized results the snapshot carries.
func (s *Snapshot) MatCount() int { return len(s.mats) }

// Mats returns a copy of the materialized-result map (id → relation). The
// relations are the snapshot's immutable versions and must not be mutated;
// tests use this to assert which stored results a given epoch still carries
// (e.g. that results retired by an adaptation swap vanish from every later
// snapshot).
func (s *Snapshot) Mats() map[int]*Relation {
	out := make(map[int]*Relation, len(s.mats))
	for id, r := range s.mats {
		out[id] = r
	}
	return out
}

// Database returns a read-only database view over the snapshot's base
// relations, suitable for executing plans against. The view shares the
// snapshot's relations and must not be mutated; its delta pairs are empty.
func (s *Snapshot) Database() *Database { return s.db }

// SnapshotStore publishes snapshots from a single writer to any number of
// readers. The zero value is NOT ready to use; create with NewSnapshotStore.
type SnapshotStore struct {
	cur atomic.Pointer[Snapshot]

	mu     sync.Mutex
	retain bool
	keep   int
	base   int64
	hist   []*Snapshot
}

// NewSnapshotStore returns an empty store (Current is nil until the first
// PublishState).
func NewSnapshotStore() *SnapshotStore { return &SnapshotStore{} }

// Current returns the most recently published snapshot, or nil. Safe from
// any goroutine.
func (st *SnapshotStore) Current() *Snapshot { return st.cur.Load() }

// StartAt seeds the epoch numbering: the first PublishState publishes this
// epoch instead of 0. The recovery boot path uses it so the re-published
// recovered state carries the same epoch it had before the crash, and replay
// then counts on from there. Must be called before the first PublishState.
func (st *SnapshotStore) StartAt(epoch int64) {
	if st.cur.Load() != nil {
		panic("storage: StartAt after first publish")
	}
	st.mu.Lock()
	st.base = epoch
	st.mu.Unlock()
}

// RetainHistory makes the store keep every snapshot it publishes, so tests
// can check results against the exact state of any step boundary. Retention
// pins every relation version ever published; enable it only for bounded
// runs.
func (st *SnapshotStore) RetainHistory(on bool) {
	st.mu.Lock()
	st.retain = on
	st.mu.Unlock()
}

// KeepRecent makes the store retain a sliding window of the n most recently
// published snapshots (seeded with the current one, if any), so readers can
// pin an epoch slightly behind the writer: the sharded serving gate executes
// at its committed epoch while the local store publishes ahead during the
// next refresh cycle. Unlike RetainHistory the window is bounded — each
// publish drops versions that fall out of it. n <= 0 disables the window.
// Full retention, when enabled, subsumes it.
func (st *SnapshotStore) KeepRecent(n int) {
	st.mu.Lock()
	st.keep = n
	if n > 0 && len(st.hist) == 0 {
		if cur := st.cur.Load(); cur != nil {
			st.hist = append(st.hist, cur)
		}
	}
	st.mu.Unlock()
}

// History returns the retained snapshots in publication order.
func (st *SnapshotStore) History() []*Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]*Snapshot(nil), st.hist...)
}

// At returns the retained snapshot with the given epoch, or nil.
func (st *SnapshotStore) At(epoch int64) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, s := range st.hist {
		if s.epoch == epoch {
			return s
		}
	}
	return nil
}

// PublishState captures the writer's live state — the database's base
// relations and the materialization map — into a new snapshot and publishes
// it. Only the single writer may call it; the maps are copied (so the
// writer may keep swapping entries) but the relations are shared, which is
// the copy-on-write contract: the writer must never mutate a relation it
// has published, replacing it with a fresh version instead (see the COW
// variants of the delta-application and merge operations).
func (st *SnapshotStore) PublishState(db *Database, mats map[int]*Relation) *Snapshot {
	s := &Snapshot{
		rels: make(map[string]*Relation, len(db.relations)),
		mats: make(map[int]*Relation, len(mats)),
	}
	for n, r := range db.relations {
		s.rels[n] = r
	}
	for id, r := range mats {
		s.mats[id] = r
	}
	s.db = &Database{relations: s.rels, deltas: make(map[string]*Delta)}
	if prev := st.cur.Load(); prev != nil {
		s.epoch = prev.epoch + 1
	} else {
		st.mu.Lock()
		s.epoch = st.base
		st.mu.Unlock()
	}
	st.mu.Lock()
	switch {
	case st.retain:
		st.hist = append(st.hist, s)
	case st.keep > 0:
		st.hist = append(st.hist, s)
		if len(st.hist) > st.keep {
			// Copy rather than reslice so evicted snapshots are not pinned by
			// the backing array.
			st.hist = append([]*Snapshot(nil), st.hist[len(st.hist)-st.keep:]...)
		}
	}
	st.mu.Unlock()
	st.cur.Store(s)
	return s
}

// ---------------------------------------------------------------------------
// Copy-on-write mutation variants. Each produces the same rows in the same
// order as its in-place counterpart, but into a fresh relation, leaving
// both inputs untouched — so a snapshot holding the old version stays
// consistent while the writer installs the new one.

// UnionCOW returns r ∪ add (multiset union, r's rows first) as a new
// relation without mutating either input. Row order matches
// Relation.InsertAll applied to a copy of r.
//
// When r carries a cached hash-partition view, the new version's view is
// derived per partition instead of rebuilt: partitions the added rows do not
// touch share r's index slices unchanged (copy-on-write at partition
// granularity), and touched partitions get a copied slice extended with the
// new row indexes — O(|add|) work plus one slice copy per touched partition.
func UnionCOW(r, add *Relation) *Relation {
	if len(add.schema) != len(r.schema) {
		panic("storage: UnionCOW schema arity mismatch")
	}
	out := NewRelation(r.schema)
	out.rows = make([]algebra.Tuple, 0, r.Len()+add.Len())
	out.rows = append(out.rows, r.rows...)
	out.rows = append(out.rows, add.rows...)
	if pv := r.part.Load(); pv != nil {
		out.part.Store(extendPartView(pv, add.rows, r.Len()))
	}
	if cv := r.colv.Load(); cv != nil {
		out.colv.Store(extendColView(cv, out.rows))
	}
	return out
}

// extendPartView derives the partition view of base ∪ add from base's view,
// sharing untouched partitions. base's hashes array is never mutated — the
// extended view gets a grown copy.
func extendPartView(pv *PartView, add []algebra.Tuple, baseLen int) *PartView {
	p := len(pv.idx)
	out := &PartView{
		idx:    make([][]int32, p),
		hashes: make([]uint64, baseLen+len(add)),
	}
	copy(out.idx, pv.idx) // untouched partitions share base's slices
	copy(out.hashes, pv.hashes)
	copied := make([]bool, p)
	for j, t := range add {
		h := t.Hash()
		out.hashes[baseLen+j] = h
		q := int(h % uint64(p))
		if !copied[q] {
			grown := make([]int32, len(out.idx[q]), len(out.idx[q])+len(add)-j)
			copy(grown, out.idx[q])
			out.idx[q] = grown
			copied[q] = true
		}
		out.idx[q] = append(out.idx[q], int32(baseLen+j))
	}
	return out
}

// MinusCOW returns r − sub (multiset monus) as a new relation without
// mutating either input. Row order matches Relation.SubtractAll applied to
// a copy of r.
func MinusCOW(r, sub *Relation) *Relation {
	out := NewRelation(r.schema)
	if sub.Len() == 0 {
		out.rows = append(out.rows, r.rows...)
		return out
	}
	remove := sub.Counts()
	out.rows = make([]algebra.Tuple, 0, r.Len())
	for _, t := range r.rows {
		if remove.Remove(t) {
			continue
		}
		out.rows = append(out.rows, t)
	}
	return out
}

// ApplyInsertsCOW folds δ+ into a fresh copy of the base relation, installs
// the copy in the database, clears the delta, and returns the new version.
// The previous relation version is left untouched for snapshot readers.
func (db *Database) ApplyInsertsCOW(name string) *Relation {
	d := db.deltas[name]
	nr := UnionCOW(db.relations[name], d.Plus)
	db.relations[name] = nr
	d.Plus = NewRelation(d.Plus.Schema())
	return nr
}

// ApplyDeletesCOW folds δ− into a fresh copy of the base relation, installs
// the copy in the database, clears the delta, and returns the new version.
func (db *Database) ApplyDeletesCOW(name string) *Relation {
	d := db.deltas[name]
	nr := MinusCOW(db.relations[name], d.Minus)
	db.relations[name] = nr
	d.Minus = NewRelation(d.Minus.Schema())
	return nr
}
