package storage

// Hash-partitioned storage and the shared partition-parallel configuration.
//
// Every relation version can expose a PartView: a hash partitioning of its
// rows on the typed tuple hash (algebra.Tuple.Hash), represented as per-
// partition ascending row-index slices plus the per-row hash array. The view
// is built lazily, cached on the relation version through an atomic pointer
// (so any number of snapshot readers may request it concurrently), and
// invalidated by in-place mutation. Copy-on-write union carries the view
// forward per partition: partitions the delta does not touch share the
// previous version's index slices — the per-partition COW that keeps
// Snapshot epochs cheap under partitioned execution.
//
// The partitioning is on the full tuple hash, so every occurrence of a given
// tuple value lands in the same partition. Operations whose state is keyed
// by whole tuples — duplicate elimination, multiset difference, the
// TupleCounts multiset — therefore decompose into independent per-partition
// problems with no cross-partition communication, and the per-partition
// results recombine in ascending original-row order, which keeps output
// byte-identical to the sequential implementation at any partition count.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
)

// Par configures partition-parallel execution: Partitions is the data-split
// fan-out (hash partitions for keyed operators, contiguous morsel ranges for
// order-preserving ones), Workers bounds the goroutines that process the
// split. The zero value means sequential execution. Results are identical at
// any setting; see the determinism notes on the individual operators.
type Par struct {
	// Partitions is the number of hash partitions / morsel ranges (<=1:
	// sequential single partition).
	Partitions int
	// Workers bounds concurrent partition goroutines (<=0: one per
	// partition, capped at runtime.GOMAXPROCS(0)).
	Workers int
	// Batch selects the vectorized columnar engine: operators evaluate
	// predicates over typed column vectors (Relation.ColView) composed into
	// selection bitmaps, joins key on cached hash columns, and merges prefer
	// the keep-mask/extend paths that carry cached views across relation
	// versions even at one partition. Output is byte-identical to the row
	// engine at any setting; the flag only chooses the kernel.
	Batch bool
	// Chain selects the chained columnar pipeline on top of the batch
	// kernels: operators exchange columnar batches (exec.Batch) instead of
	// materialized row relations, and a pipeline gathers to []Value rows only
	// once at its sink. Chain implies Batch (the chained kernels are built on
	// the same column vectors and hash caches); output is byte-identical to
	// both other engines at any setting.
	Chain bool
}

// Norm resolves defaults: at least one partition, and a concrete worker
// count.
func (p Par) Norm() Par {
	if p.Partitions < 1 {
		p.Partitions = 1
	}
	if p.Workers < 1 {
		p.Workers = p.Partitions
		if g := runtime.GOMAXPROCS(0); p.Workers > g {
			p.Workers = g
		}
	}
	if p.Workers > p.Partitions {
		p.Workers = p.Partitions
	}
	return p
}

// Enabled reports whether the configuration asks for any parallelism.
func (p Par) Enabled() bool { return p.Partitions > 1 }

// ParMinRows is the input size below which partition-parallel helpers fall
// back to their sequential twins: goroutine startup dominates under it.
// A variable so tests can force the parallel paths on small inputs.
var ParMinRows = 2048

// RunWorkers runs fn(w) for w in [0, n), on the caller's goroutine plus n−1
// spawned ones, and waits for all. A panic in any worker is re-raised on the
// caller (first one wins), preserving sequential failure semantics.
func RunWorkers(n int, fn func(w int)) {
	if n <= 1 {
		fn(0)
		return
	}
	var (
		mu sync.Mutex
		pv interface{}
	)
	catch := func(w int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if pv == nil {
					pv = r
				}
				mu.Unlock()
			}
		}()
		fn(w)
	}
	var wg sync.WaitGroup
	for w := 1; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			catch(w)
		}(w)
	}
	catch(0)
	wg.Wait()
	if pv != nil {
		panic(pv)
	}
}

// ForParts distributes partition numbers [0, parts) over the configured
// workers via an atomic claim counter and runs body(p) for each.
func ForParts(parts int, workers int, body func(p int)) {
	if workers > parts {
		workers = parts
	}
	var next atomic.Int64
	RunWorkers(workers, func(int) {
		for {
			p := int(next.Add(1)) - 1
			if p >= parts {
				return
			}
			body(p)
		}
	})
}

// MorselRanges splits [0, n) into parts contiguous ranges of near-equal
// size. Order-preserving operators process ranges independently and
// concatenate the per-range outputs in range order, which reproduces the
// sequential output exactly at any range count.
func MorselRanges(n, parts int) [][2]int {
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	if parts == 0 {
		return nil
	}
	out := make([][2]int, parts)
	step, rem := n/parts, n%parts
	lo := 0
	for i := range out {
		hi := lo + step
		if i < rem {
			hi++
		}
		out[i] = [2]int{lo, hi}
		lo = hi
	}
	return out
}

// ---------------------------------------------------------------------------

// PartView is the hash-partition index of one relation version: for each
// partition, the ascending row indexes whose tuple hash falls in it, plus
// the per-row hash array (so consumers never rehash). It is immutable after
// construction.
type PartView struct {
	idx    [][]int32
	hashes []uint64
}

// Parts returns the partition count.
func (pv *PartView) Parts() int { return len(pv.idx) }

// Rows returns partition p's ascending row indexes. Callers must not mutate
// the slice.
func (pv *PartView) Rows(p int) []int32 { return pv.idx[p] }

// Hash returns row i's full tuple hash.
func (pv *PartView) Hash(i int) uint64 { return pv.hashes[i] }

// PartView returns (building and caching on first use) the relation's hash
// partitioning at par.Partitions partitions. Safe to call from any number of
// goroutines on a published (immutable) relation version: the cache is an
// atomic pointer and concurrent builders converge on identical views. A
// cached view at a different partition count is rebuilt.
func (r *Relation) PartView(par Par) *PartView {
	par = par.Norm()
	if pv := r.part.Load(); pv != nil && len(pv.idx) == par.Partitions {
		return pv
	}
	pv := buildPartView(r.rows, par)
	r.part.Store(pv)
	return pv
}

// buildPartView hashes every row (morsel-parallel) and scatters the row
// indexes into per-partition ascending lists (one counting pass plus one
// fill pass — O(n), not O(partitions × n)).
func buildPartView(rows []algebra.Tuple, par Par) *PartView {
	n := len(rows)
	pv := &PartView{hashes: make([]uint64, n)}
	ranges := MorselRanges(n, par.Partitions)
	workers := par.Workers
	if n < ParMinRows {
		workers = 1
	}
	var nextR atomic.Int64
	RunWorkers(workers, func(int) {
		for {
			ri := int(nextR.Add(1)) - 1
			if ri >= len(ranges) {
				return
			}
			for i := ranges[ri][0]; i < ranges[ri][1]; i++ {
				pv.hashes[i] = rows[i].Hash()
			}
		}
	})
	pv.idx = ScatterByHash(pv.hashes, par.Partitions)
	return pv
}

// ScatterByHash distributes indexes [0, len(hs)) into per-partition
// ascending lists by hash residue: one counting pass sizes each list
// exactly, one fill pass scatters. The partition-parallel operators use it
// to co-partition transient key-hash arrays without per-partition rescans.
func ScatterByHash(hs []uint64, parts int) [][]int32 {
	P := uint64(parts)
	counts := make([]int, parts)
	for _, h := range hs {
		counts[int(h%P)]++
	}
	out := make([][]int32, parts)
	for p := range out {
		out[p] = make([]int32, 0, counts[p])
	}
	for i, h := range hs {
		p := int(h % P)
		out[p] = append(out[p], int32(i))
	}
	return out
}

// invalidate drops the cached partition and column views after an in-place
// mutation. Only the single writer mutates a relation, so a plain
// load-then-store is enough; published versions are never mutated (the COW
// contract).
func (r *Relation) invalidate() {
	if r.part.Load() != nil {
		r.part.Store(nil)
	}
	if r.colv.Load() != nil {
		r.colv.Store(nil)
	}
}

// ParClone deep-copies the relation with the configured parallelism. Output
// is identical to Clone.
func (r *Relation) ParClone(par Par) *Relation {
	par = par.Norm()
	n := len(r.rows)
	if !par.Enabled() || n < ParMinRows {
		return r.Clone()
	}
	out := NewRelation(r.schema)
	out.rows = make([]algebra.Tuple, n)
	ranges := MorselRanges(n, par.Partitions)
	var next atomic.Int64
	RunWorkers(par.Workers, func(int) {
		for {
			ri := int(next.Add(1)) - 1
			if ri >= len(ranges) {
				return
			}
			for i := ranges[ri][0]; i < ranges[ri][1]; i++ {
				out.rows[i] = r.rows[i].Clone()
			}
		}
	})
	return out
}

// ParCounts builds the relation's hashed multiset with one sub-multiset per
// partition, populated concurrently. The result is partition-compatible with
// any PartView of the same partition count (same hash, same modulus).
func ParCounts(r *Relation, par Par) *TupleCounts {
	par = par.Norm()
	if !par.Enabled() || r.Len() < ParMinRows {
		tc := newTupleCountsParts(r.Len(), par.Partitions)
		for _, t := range r.rows {
			tc.Add(t, 1)
		}
		return tc
	}
	pv := r.PartView(par)
	tc := &TupleCounts{parts: make([]tcPart, par.Partitions)}
	ForParts(par.Partitions, par.Workers, func(p int) {
		rows := pv.Rows(p)
		part := tcPart{buckets: make(map[uint64][]tupleCount, len(rows))}
		for _, i := range rows {
			part.add(pv.Hash(int(i)), r.rows[i], 1)
		}
		tc.parts[p] = part
	})
	return tc
}

// ParSubtractAll is SubtractAll with partition-parallel matching: the
// removal multiset and the receiver are co-partitioned on the tuple hash, so
// partition p's removals match only partition p's rows, and the kept rows
// are compacted in original order — byte-identical to SubtractAll at any
// partition count.
func (r *Relation) ParSubtractAll(o *Relation, par Par) {
	par = par.Norm()
	if o.Len() == 0 {
		return
	}
	if !r.keepMaskOK(par) {
		r.SubtractAll(o)
		return
	}
	keep := r.parMinusKeep(o, par)
	pv := r.part.Load()
	cv := r.colv.Load()
	kept := r.rows[:0]
	for i, t := range r.rows {
		if keep[i] {
			kept = append(kept, t)
		}
	}
	r.rows = kept
	// Derive the compacted view from the keep mask instead of dropping it:
	// kept rows keep their relative order, so the new partitioning follows
	// by index arithmetic with no rehashing.
	r.part.Store(deriveKeptView(pv, keep))
	r.colv.Store(deriveKeptColView(cv, r.rows, keep))
}

// keepMaskOK decides whether subtract/minus takes the hash-carry keep-mask
// path: always when parallel over a large input (the PR-5 rule), and in batch
// mode additionally whenever a cached partition view exists or the input is
// large enough to seed one — reusing the hash column beats rehashing every
// kept row, and the derived view keeps the cross-version carry chain alive
// even at one partition.
func (r *Relation) keepMaskOK(par Par) bool {
	if par.Enabled() && r.Len() >= ParMinRows {
		return true
	}
	return par.Batch && (r.part.Load() != nil || r.Len() >= ParMinRows)
}

// ParMinusCOW is MinusCOW with partition-parallel matching; the inputs are
// left untouched and the kept rows land in a fresh relation in original
// order (byte-identical to MinusCOW at any partition count).
func ParMinusCOW(r, sub *Relation, par Par) *Relation {
	par = par.Norm()
	if sub.Len() == 0 || !r.keepMaskOK(par) {
		return MinusCOW(r, sub)
	}
	keep := r.parMinusKeep(sub, par)
	out := NewRelation(r.schema)
	out.rows = make([]algebra.Tuple, 0, r.Len())
	for i, t := range r.rows {
		if keep[i] {
			out.rows = append(out.rows, t)
		}
	}
	// Carry the partitioning to the new version (see ParSubtractAll): this
	// keeps the cross-epoch hash-carry chain alive through delete-merges,
	// so a COW refresh cycle (UnionCOW then ParMinusCOW) never rehashes the
	// stored result.
	out.part.Store(deriveKeptView(r.part.Load(), keep))
	out.colv.Store(deriveKeptColView(r.colv.Load(), out.rows, keep))
	return out
}

// deriveKeptView rebuilds a partition view after filtering by a keep mask:
// row i's new index is the number of kept rows before it, hashes compact in
// row order, and each partition's index list remaps in place order. Pure
// index arithmetic — no tuple is rehashed. A nil input view yields nil
// (rebuilt lazily on demand).
func deriveKeptView(pv *PartView, keep []bool) *PartView {
	if pv == nil {
		return nil
	}
	remap := make([]int32, len(keep))
	var n int32
	for i, k := range keep {
		remap[i] = n
		if k {
			n++
		}
	}
	out := &PartView{idx: make([][]int32, len(pv.idx)), hashes: make([]uint64, n)}
	for i, k := range keep {
		if k {
			out.hashes[remap[i]] = pv.hashes[i]
		}
	}
	for p, ids := range pv.idx {
		kept := make([]int32, 0, len(ids))
		for _, i := range ids {
			if keep[i] {
				kept = append(kept, remap[i])
			}
		}
		out.idx[p] = kept
	}
	return out
}

// parMinusKeep marks, per partition concurrently, which of r's rows survive
// removing each tuple of sub once. Workers touch disjoint keep indexes (a
// tuple's copies all share a partition), so the mask needs no locking.
// A cached view at a different partition count than the configuration is
// reused as-is (the batch engine carries views across partition settings);
// the removal multiset is then built at the view's count so residues match.
func (r *Relation) parMinusKeep(sub *Relation, par Par) []bool {
	pv := r.part.Load()
	if pv == nil {
		pv = r.PartView(par)
	}
	parts := pv.Parts()
	var remove *TupleCounts
	if parts == par.Partitions {
		remove = ParCounts(sub, par)
	} else {
		remove = newTupleCountsParts(sub.Len(), parts)
		for _, t := range sub.rows {
			remove.Add(t, 1)
		}
	}
	keep := make([]bool, len(r.rows))
	ForParts(parts, par.Workers, func(p int) {
		part := &remove.parts[p]
		for _, i := range pv.Rows(p) {
			if !part.remove(pv.Hash(int(i)), r.rows[i]) {
				keep[i] = true
			}
		}
	})
	return keep
}
