// Package storage provides the in-memory storage layer: multiset relations,
// hash indexes, and delta relations (δ+ / δ−) that accumulate inserts and
// deletes between view refreshes. The paper assumes updates are logged into
// delta relations and handed to the refresh mechanism (§3); this package is
// that mechanism's substrate.
package storage

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
)

// Relation is an in-memory multiset of tuples with a fixed schema.
// Duplicates are represented positionally (a tuple may appear several times).
type Relation struct {
	schema algebra.Schema
	rows   []algebra.Tuple
}

// NewRelation creates an empty relation with the given schema.
func NewRelation(schema algebra.Schema) *Relation {
	return &Relation{schema: schema}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() algebra.Schema { return r.schema }

// Len returns the number of tuples (counting duplicates).
func (r *Relation) Len() int { return len(r.rows) }

// Rows returns the backing slice. Callers must not mutate it.
func (r *Relation) Rows() []algebra.Tuple { return r.rows }

// Insert appends a tuple. The tuple must match the schema arity.
func (r *Relation) Insert(t algebra.Tuple) {
	if len(t) != len(r.schema) {
		panic(fmt.Sprintf("storage: tuple arity %d does not match schema arity %d",
			len(t), len(r.schema)))
	}
	r.rows = append(r.rows, t)
}

// InsertAll appends every tuple of another relation (multiset union in place).
func (r *Relation) InsertAll(o *Relation) {
	for _, t := range o.rows {
		r.Insert(t)
	}
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.schema)
	out.rows = make([]algebra.Tuple, len(r.rows))
	for i, t := range r.rows {
		out.rows[i] = t.Clone()
	}
	return out
}

// key renders a tuple to a canonical string for multiset bookkeeping.
func key(t algebra.Tuple) string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// Counts returns the multiset as a map tuple-key → multiplicity.
func (r *Relation) Counts() map[string]int {
	m := make(map[string]int, len(r.rows))
	for _, t := range r.rows {
		m[key(t)]++
	}
	return m
}

// SubtractAll removes each tuple of o once from r (multiset monus applied in
// place). Tuples of o that are absent from r are ignored, matching multiset
// difference semantics.
func (r *Relation) SubtractAll(o *Relation) {
	if o.Len() == 0 {
		return
	}
	remove := o.Counts()
	kept := r.rows[:0]
	for _, t := range r.rows {
		k := key(t)
		if remove[k] > 0 {
			remove[k]--
			continue
		}
		kept = append(kept, t)
	}
	r.rows = kept
}

// EqualMultiset reports whether two relations hold exactly the same multiset
// of tuples (schema order of columns must match).
func EqualMultiset(a, b *Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	ca := a.Counts()
	for k, n := range b.Counts() {
		if ca[k] != n {
			return false
		}
	}
	return true
}

// SortedStrings renders every tuple and sorts the renderings; useful in tests
// for deterministic comparison output.
func (r *Relation) SortedStrings() []string {
	out := make([]string, len(r.rows))
	for i, t := range r.rows {
		out[i] = key(t)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------

// HashIndex maps the rendered value of one column to row positions in a
// relation. It is rebuilt on demand; the executor uses it for index
// nested-loop joins and for applying merge updates to materialized results.
type HashIndex struct {
	col     int
	buckets map[string][]int
}

// BuildHashIndex indexes the column at position col of r.
func BuildHashIndex(r *Relation, col int) *HashIndex {
	ix := &HashIndex{col: col, buckets: make(map[string][]int)}
	for i, t := range r.rows {
		k := t[col].String()
		ix.buckets[k] = append(ix.buckets[k], i)
	}
	return ix
}

// Probe returns the row positions whose indexed column equals v.
func (ix *HashIndex) Probe(v algebra.Value) []int {
	return ix.buckets[v.String()]
}

// ---------------------------------------------------------------------------

// Delta carries the pending inserts and deletes for one base relation,
// mirroring the paper's δ+r and δ−r.
type Delta struct {
	Plus  *Relation
	Minus *Relation
}

// NewDelta creates an empty delta pair for the given schema.
func NewDelta(schema algebra.Schema) *Delta {
	return &Delta{Plus: NewRelation(schema), Minus: NewRelation(schema)}
}

// Empty reports whether both sides are empty.
func (d *Delta) Empty() bool { return d.Plus.Len() == 0 && d.Minus.Len() == 0 }

// ---------------------------------------------------------------------------

// Database is a named collection of relations plus their pending deltas.
type Database struct {
	relations map[string]*Relation
	deltas    map[string]*Delta
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{
		relations: make(map[string]*Relation),
		deltas:    make(map[string]*Delta),
	}
}

// Create registers an empty relation under a name.
func (db *Database) Create(name string, schema algebra.Schema) *Relation {
	if _, ok := db.relations[name]; ok {
		panic("storage: duplicate relation " + name)
	}
	r := NewRelation(schema)
	db.relations[name] = r
	db.deltas[name] = NewDelta(schema)
	return r
}

// Relation returns the named relation, or nil.
func (db *Database) Relation(name string) *Relation { return db.relations[name] }

// MustRelation returns the named relation or panics.
func (db *Database) MustRelation(name string) *Relation {
	r := db.relations[name]
	if r == nil {
		panic("storage: unknown relation " + name)
	}
	return r
}

// Delta returns the pending delta pair for a relation.
func (db *Database) Delta(name string) *Delta { return db.deltas[name] }

// LogInsert records a pending insert in the relation's δ+.
func (db *Database) LogInsert(name string, t algebra.Tuple) {
	db.deltas[name].Plus.Insert(t)
}

// LogDelete records a pending delete in the relation's δ−.
func (db *Database) LogDelete(name string, t algebra.Tuple) {
	db.deltas[name].Minus.Insert(t)
}

// ApplyInserts folds δ+ into the base relation and clears it. The refresh
// driver calls this after propagating the insert differential (paper §3.1.1:
// propagate, then update the base).
func (db *Database) ApplyInserts(name string) {
	d := db.deltas[name]
	db.relations[name].InsertAll(d.Plus)
	d.Plus = NewRelation(d.Plus.Schema())
}

// ApplyDeletes folds δ− into the base relation and clears it.
func (db *Database) ApplyDeletes(name string) {
	d := db.deltas[name]
	db.relations[name].SubtractAll(d.Minus)
	d.Minus = NewRelation(d.Minus.Schema())
}

// Names returns the sorted relation names.
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.relations))
	for n := range db.relations {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
