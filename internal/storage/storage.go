// Package storage provides the in-memory storage layer: multiset relations,
// hash indexes, delta relations (δ+ / δ−) that accumulate inserts and
// deletes between view refreshes, and the Shared write-once cell that
// publishes relations to concurrent readers (see shared.go for the
// concurrency contract). The paper assumes updates are logged into delta
// relations and handed to the refresh mechanism (§3); this package is that
// mechanism's substrate.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/algebra"
)

// Relation is an in-memory multiset of tuples with a fixed schema.
// Duplicates are represented positionally (a tuple may appear several times).
// A relation version may additionally carry a cached hash-partition view
// (PartView, partition.go) used by the partition-parallel operators and a
// cached column view (ColView, colview.go) used by the vectorized batch
// engine; any in-place mutation drops both.
type Relation struct {
	schema algebra.Schema
	rows   []algebra.Tuple
	part   atomic.Pointer[PartView]
	colv   atomic.Pointer[ColView]
}

// NewRelation creates an empty relation with the given schema.
func NewRelation(schema algebra.Schema) *Relation {
	return &Relation{schema: schema}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() algebra.Schema { return r.schema }

// Len returns the number of tuples (counting duplicates).
func (r *Relation) Len() int { return len(r.rows) }

// Rows returns the backing slice. Callers must not mutate it.
func (r *Relation) Rows() []algebra.Tuple { return r.rows }

// Insert appends a tuple. The tuple must match the schema arity.
func (r *Relation) Insert(t algebra.Tuple) {
	if len(t) != len(r.schema) {
		panic(fmt.Sprintf("storage: tuple arity %d does not match schema arity %d",
			len(t), len(r.schema)))
	}
	r.rows = append(r.rows, t)
	r.invalidate()
}

// Append appends a tuple without the arity check. Executor hot paths use it
// when the physical plan already guarantees the arity.
func (r *Relation) Append(t algebra.Tuple) {
	r.rows = append(r.rows, t)
	r.invalidate()
}

// AppendAll appends a batch of tuples without arity checks; the
// partition-parallel operators use it to install per-range outputs.
func (r *Relation) AppendAll(ts []algebra.Tuple) {
	r.rows = append(r.rows, ts...)
	r.invalidate()
}

// Reserve grows the backing slice so n more rows fit without reallocation.
func (r *Relation) Reserve(n int) {
	if free := cap(r.rows) - len(r.rows); free < n {
		grown := make([]algebra.Tuple, len(r.rows), len(r.rows)+n)
		copy(grown, r.rows)
		r.rows = grown
	}
}

// InsertAll appends every tuple of another relation (multiset union in
// place). The schemas must have equal arity; it is checked once, not per row.
func (r *Relation) InsertAll(o *Relation) {
	if len(o.schema) != len(r.schema) {
		panic(fmt.Sprintf("storage: schema arity %d does not match %d",
			len(o.schema), len(r.schema)))
	}
	r.rows = append(r.rows, o.rows...)
	r.invalidate()
}

// ReplaceRows swaps the relation's contents wholesale, dropping any cached
// partition view. The recovery boot path uses it to install spilled rows
// (which must match the schema arity — checked once) into freshly created
// relations; the given slice is adopted, not copied.
func (r *Relation) ReplaceRows(rows []algebra.Tuple) {
	for _, t := range rows {
		if len(t) != len(r.schema) {
			panic(fmt.Sprintf("storage: tuple arity %d does not match schema arity %d",
				len(t), len(r.schema)))
		}
	}
	r.rows = rows
	r.invalidate()
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.schema)
	out.rows = make([]algebra.Tuple, len(r.rows))
	for i, t := range r.rows {
		out.rows[i] = t.Clone()
	}
	return out
}

// tupleCount pairs one distinct tuple with its multiplicity.
type tupleCount struct {
	t algebra.Tuple
	n int
}

// TupleCounts is a hashed multiset of tuples, hash-partitioned on the typed
// 64-bit tuple hash (algebra.Tuple.Hash): the hash selects a partition
// (h mod partitions), and within the partition keys a small bucket of
// distinct tuples, disambiguated by Tuple.Equal when hashes collide. The
// single-partition form behaves exactly like the former flat map; the
// partitioned form (NewTupleCountsPar, ParCounts) is partition-compatible
// with Relation.PartView at the same count, so the partition-parallel
// operators build and consume the sub-multisets with no cross-partition
// traffic.
type TupleCounts struct {
	parts []tcPart
}

// tcPart is one partition's bucket map and running multiplicity.
type tcPart struct {
	buckets map[uint64][]tupleCount
	size    int
}

func (p *tcPart) add(h uint64, t algebra.Tuple, n int) {
	bucket := p.buckets[h]
	for i := range bucket {
		if bucket[i].t.Equal(t) {
			bucket[i].n += n
			p.size += n
			return
		}
	}
	p.buckets[h] = append(bucket, tupleCount{t: t, n: n})
	p.size += n
}

func (p *tcPart) count(h uint64, t algebra.Tuple) int {
	for _, e := range p.buckets[h] {
		if e.t.Equal(t) {
			return e.n
		}
	}
	return 0
}

func (p *tcPart) remove(h uint64, t algebra.Tuple) bool {
	bucket := p.buckets[h]
	for i := range bucket {
		if bucket[i].n > 0 && bucket[i].t.Equal(t) {
			bucket[i].n--
			p.size--
			return true
		}
	}
	return false
}

// NewTupleCounts returns an empty single-partition multiset sized for about
// n tuples.
func NewTupleCounts(n int) *TupleCounts { return newTupleCountsParts(n, 1) }

// newTupleCountsParts sizes each partition's bucket map for its share of n
// tuples, so partitioned builds do not rehash the maps as they fill.
func newTupleCountsParts(n, parts int) *TupleCounts {
	tc := &TupleCounts{parts: make([]tcPart, parts)}
	per := n/parts + 1
	for i := range tc.parts {
		tc.parts[i].buckets = make(map[uint64][]tupleCount, per)
	}
	return tc
}

// Partitions returns the partition count.
func (tc *TupleCounts) Partitions() int { return len(tc.parts) }

// Len returns the total multiplicity.
func (tc *TupleCounts) Len() int {
	n := 0
	for i := range tc.parts {
		n += tc.parts[i].size
	}
	return n
}

// part selects the partition owning hash h.
func (tc *TupleCounts) part(h uint64) *tcPart {
	if len(tc.parts) == 1 {
		return &tc.parts[0]
	}
	return &tc.parts[h%uint64(len(tc.parts))]
}

// Add raises the multiplicity of t by n.
func (tc *TupleCounts) Add(t algebra.Tuple, n int) { tc.addHashed(t.Hash(), t, n) }

// addHashed is Add with the hash supplied by the caller; tests use it to
// force collisions.
func (tc *TupleCounts) addHashed(h uint64, t algebra.Tuple, n int) {
	tc.part(h).add(h, t, n)
}

// Count returns the multiplicity of t.
func (tc *TupleCounts) Count(t algebra.Tuple) int { return tc.countHashed(t.Hash(), t) }

func (tc *TupleCounts) countHashed(h uint64, t algebra.Tuple) int {
	return tc.part(h).count(h, t)
}

// Remove lowers the multiplicity of t by one and reports whether a copy was
// present.
func (tc *TupleCounts) Remove(t algebra.Tuple) bool { return tc.removeHashed(t.Hash(), t) }

func (tc *TupleCounts) removeHashed(h uint64, t algebra.Tuple) bool {
	return tc.part(h).remove(h, t)
}

// Counts returns the multiset as a hashed tuple → multiplicity map.
func (r *Relation) Counts() *TupleCounts {
	tc := NewTupleCounts(len(r.rows))
	for _, t := range r.rows {
		tc.Add(t, 1)
	}
	return tc
}

// SubtractAll removes each tuple of o once from r (multiset monus applied in
// place). Tuples of o that are absent from r are ignored, matching multiset
// difference semantics.
func (r *Relation) SubtractAll(o *Relation) {
	if o.Len() == 0 {
		return
	}
	remove := o.Counts()
	kept := r.rows[:0]
	for _, t := range r.rows {
		if remove.Remove(t) {
			continue
		}
		kept = append(kept, t)
	}
	r.rows = kept
	r.invalidate()
}

// EqualMultiset reports whether two relations hold exactly the same multiset
// of tuples (schema order of columns must match).
func EqualMultiset(a, b *Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	ca := a.Counts()
	for _, t := range b.rows {
		if !ca.Remove(t) {
			return false
		}
	}
	return true
}

// render formats a tuple for debugging and test output. It is NOT used for
// hashing or equality — the hot paths hash typed values directly.
func render(t algebra.Tuple) string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// SortedStrings renders every tuple and sorts the renderings; useful in tests
// for deterministic comparison output.
func (r *Relation) SortedStrings() []string {
	out := make([]string, len(r.rows))
	for i, t := range r.rows {
		out[i] = render(t)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------

// HashIndex maps the typed hash of one column to row positions in a
// relation. It is rebuilt on demand; the executor uses it for index
// nested-loop joins and for applying merge updates to materialized results.
// Positions are grouped per distinct key value within each hash bucket, so
// a probe returns the matching group's slice with no allocation, and a
// stale index (one held across a mutation of the relation) returns stale
// positions rather than touching the relation.
type HashIndex struct {
	col     int
	buckets map[uint64][]ixGroup
}

// ixGroup holds the row positions of one distinct key value.
type ixGroup struct {
	v   algebra.Value
	pos []int
}

// BuildHashIndex indexes the column at position col of r.
func BuildHashIndex(r *Relation, col int) *HashIndex {
	ix := &HashIndex{col: col, buckets: make(map[uint64][]ixGroup, r.Len())}
	for i, t := range r.rows {
		v := t[col]
		h := v.Hash()
		bucket := ix.buckets[h]
		found := false
		for g := range bucket {
			if bucket[g].v.Equal(v) {
				bucket[g].pos = append(bucket[g].pos, i)
				found = true
				break
			}
		}
		if !found {
			ix.buckets[h] = append(bucket, ixGroup{v: v, pos: []int{i}})
		}
	}
	return ix
}

// Probe returns the row positions whose indexed column equals v. The bucket
// is confirmed by value equality, so hash collisions never surface.
func (ix *HashIndex) Probe(v algebra.Value) []int {
	for _, g := range ix.buckets[v.Hash()] {
		if g.v.Equal(v) {
			return g.pos
		}
	}
	return nil
}

// ---------------------------------------------------------------------------

// Delta carries the pending inserts and deletes for one base relation,
// mirroring the paper's δ+r and δ−r.
type Delta struct {
	Plus  *Relation
	Minus *Relation
}

// NewDelta creates an empty delta pair for the given schema.
func NewDelta(schema algebra.Schema) *Delta {
	return &Delta{Plus: NewRelation(schema), Minus: NewRelation(schema)}
}

// Empty reports whether both sides are empty.
func (d *Delta) Empty() bool { return d.Plus.Len() == 0 && d.Minus.Len() == 0 }

// ---------------------------------------------------------------------------

// Database is a named collection of relations plus their pending deltas.
type Database struct {
	relations map[string]*Relation
	deltas    map[string]*Delta
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{
		relations: make(map[string]*Relation),
		deltas:    make(map[string]*Delta),
	}
}

// Create registers an empty relation under a name.
func (db *Database) Create(name string, schema algebra.Schema) *Relation {
	if _, ok := db.relations[name]; ok {
		panic("storage: duplicate relation " + name)
	}
	r := NewRelation(schema)
	db.relations[name] = r
	db.deltas[name] = NewDelta(schema)
	return r
}

// Relation returns the named relation, or nil.
func (db *Database) Relation(name string) *Relation { return db.relations[name] }

// MustRelation returns the named relation or panics.
func (db *Database) MustRelation(name string) *Relation {
	r := db.relations[name]
	if r == nil {
		panic("storage: unknown relation " + name)
	}
	return r
}

// Delta returns the pending delta pair for a relation.
func (db *Database) Delta(name string) *Delta { return db.deltas[name] }

// LogInsert records a pending insert in the relation's δ+.
func (db *Database) LogInsert(name string, t algebra.Tuple) {
	db.deltas[name].Plus.Insert(t)
}

// LogDelete records a pending delete in the relation's δ−.
func (db *Database) LogDelete(name string, t algebra.Tuple) {
	db.deltas[name].Minus.Insert(t)
}

// ApplyInserts folds δ+ into the base relation and clears it. The refresh
// driver calls this after propagating the insert differential (paper §3.1.1:
// propagate, then update the base).
func (db *Database) ApplyInserts(name string) {
	d := db.deltas[name]
	db.relations[name].InsertAll(d.Plus)
	d.Plus = NewRelation(d.Plus.Schema())
}

// ApplyDeletes folds δ− into the base relation and clears it.
func (db *Database) ApplyDeletes(name string) {
	d := db.deltas[name]
	db.relations[name].SubtractAll(d.Minus)
	d.Minus = NewRelation(d.Minus.Schema())
}

// Names returns the sorted relation names.
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.relations))
	for n := range db.relations {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
