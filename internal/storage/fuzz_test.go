package storage

// FuzzBatchFromPartView drives the batch engine's storage substrate — the
// hash-partition view and the columnar view — from arbitrary bytes: a fuzzed
// relation (random arity, mixed and uniform columns, IEEE specials) is
// partitioned, columnized, extended by an insert-merge and compacted by a
// keep mask, and after every step the derived views must agree element-wise
// with views rebuilt from scratch over the surviving rows. This is the
// invariant the vectorized operators rely on for byte-identical output: a
// carried view is indistinguishable from a fresh one.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
)

// decodeFuzzRelation interprets fuzz bytes as a schema arity (1–4), a
// partition count (1–8) and up to 200 typed rows. The decoder is total and
// over-produces the hard cases: mixed-class columns (which must degrade to
// RepMixed), Int/Date mixtures (one payload class), NaN and -0.0 payloads,
// and duplicate rows.
func decodeFuzzRelation(data []byte) (sch algebra.Schema, rows []algebra.Tuple, parts int) {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	w := 1 + int(next()%4)
	parts = 1 + int(next()%8)
	sch = make(algebra.Schema, w)
	for i := range sch {
		sch[i] = algebra.Col{Rel: "f", Name: fmt.Sprintf("c%d", i), Type: catalog.Int, Width: 8}
	}
	specials := []algebra.Value{
		algebra.NewFloat(math.NaN()),
		algebra.NewFloat(math.Copysign(0, -1)),
		algebra.NewFloat(math.Inf(1)),
		algebra.NewInt(1<<53 + 1),
		algebra.NewDate(7),
		algebra.NewString(""),
	}
	for len(data) > 0 && len(rows) < 200 {
		row := make(algebra.Tuple, w)
		for c := 0; c < w; c++ {
			switch next() % 5 {
			case 0:
				row[c] = algebra.NewInt(int64(int8(next())))
			case 1:
				row[c] = algebra.NewFloat(float64(int8(next())) / 2)
			case 2:
				row[c] = algebra.NewDate(int64(next() % 16))
			case 3:
				row[c] = algebra.NewString(string(rune('a' + next()%6)))
			default:
				row[c] = specials[int(next())%len(specials)]
			}
		}
		rows = append(rows, row)
	}
	return sch, rows, parts
}

// checkPartView asserts pv is exactly the hash partitioning of rows: per-row
// hashes match Tuple.Hash, and the partition lists cover every index exactly
// once, ascending, each in the partition its hash selects.
func checkPartView(t *testing.T, what string, pv *PartView, rows []algebra.Tuple) {
	t.Helper()
	seen := make([]bool, len(rows))
	for i, row := range rows {
		if pv.Hash(i) != row.Hash() {
			t.Fatalf("%s: hash[%d] = %#x, want Tuple.Hash %#x", what, i, pv.Hash(i), row.Hash())
		}
	}
	P := uint64(pv.Parts())
	for p := 0; p < pv.Parts(); p++ {
		prev := int32(-1)
		for _, i := range pv.Rows(p) {
			if i <= prev {
				t.Fatalf("%s: partition %d indexes not ascending at %d", what, p, i)
			}
			prev = i
			if seen[i] {
				t.Fatalf("%s: row %d appears in two partitions", what, i)
			}
			seen[i] = true
			if int(pv.Hash(int(i))%P) != p {
				t.Fatalf("%s: row %d in partition %d, hash selects %d",
					what, i, p, pv.Hash(int(i))%P)
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("%s: row %d missing from every partition", what, i)
		}
	}
}

// checkColVec asserts one typed vector is faithful to column c of the rows:
// the representation classification is the strongest the data admits, and
// every payload is bit-identical to the tuple's. Derived views (extend /
// keep-mask carries) may conservatively stay RepMixed — e.g. an empty column
// classified RepMixed stays RepMixed when uniform rows are appended — which
// is always sound (readers fall back to the rows), so derived=true accepts
// RepMixed regardless of the data.
func checkColVec(t *testing.T, what string, v *ColVec, rows []algebra.Tuple, c int, derived bool) {
	t.Helper()
	wantRep := RepMixed
	if len(rows) > 0 {
		wantRep = repOf(rows[0][c])
		for _, row := range rows {
			r := repOf(row[c])
			// RepFloat/RepStr classification is by Kind; RepInt admits both
			// Int and Date kinds (one int64 payload class).
			if r != wantRep {
				wantRep = RepMixed
				break
			}
		}
	}
	// A derived vector over zero survivors may keep its typed rep (with an
	// empty payload slice) where a fresh build reports RepMixed; with no
	// elements the distinction is unobservable.
	if v.Rep != wantRep && !(derived && (v.Rep == RepMixed || len(rows) == 0)) {
		t.Fatalf("%s col %d: rep %d, want %d", what, c, v.Rep, wantRep)
	}
	for i, row := range rows {
		switch v.Rep {
		case RepInt:
			if v.I[i] != row[c].I {
				t.Fatalf("%s col %d row %d: int payload %d, want %d", what, c, i, v.I[i], row[c].I)
			}
		case RepFloat:
			if math.Float64bits(v.F[i]) != math.Float64bits(row[c].F) {
				t.Fatalf("%s col %d row %d: float payload not bit-identical", what, c, i)
			}
		case RepStr:
			if v.S[i] != row[c].S {
				t.Fatalf("%s col %d row %d: string payload %q, want %q", what, c, i, v.S[i], row[c].S)
			}
		}
	}
}

// checkKeyHashes asserts the cached hash column equals Tuple.HashCols
// element-wise.
func checkKeyHashes(t *testing.T, what string, h []uint64, rows []algebra.Tuple, cols []int) {
	t.Helper()
	if len(h) != len(rows) {
		t.Fatalf("%s: hash column length %d, want %d", what, len(h), len(rows))
	}
	for i, row := range rows {
		if h[i] != row.HashCols(cols) {
			t.Fatalf("%s: key hash[%d] = %#x, want %#x", what, i, h[i], row.HashCols(cols))
		}
	}
}

func FuzzBatchFromPartView(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 3, 0, 5, 0, 9, 0, 5}) // duplicate int rows, 4 partitions
	f.Add([]byte{2, 0, 4, 0, 4, 1, 1, 10, 0, 7})
	f.Add([]byte{3, 6, 0, 1, 2, 3, 4, 0, 4, 1, 4, 2, 4, 3, 4, 4, 4, 5}) // all specials
	f.Add([]byte{0, 7, 2, 1, 2, 2, 0, 3, 2, 4})                         // Int/Date mix: one payload class
	f.Fuzz(func(t *testing.T, data []byte) {
		sch, rows, parts := decodeFuzzRelation(data)
		par := Par{Partitions: parts, Workers: 2, Batch: true}.Norm()
		allCols := make([]int, len(sch))
		for i := range allCols {
			allCols[i] = i
		}

		// Split the decoded rows into a base relation and an insert suffix.
		cut := len(rows) * 2 / 3
		base, suffix := rows[:cut], rows[cut:]
		rel := NewRelation(sch)
		for _, row := range base {
			rel.Insert(row)
		}

		// Fresh build.
		pv := rel.PartView(par)
		checkPartView(t, "fresh", pv, rel.Rows())
		cv := rel.ColView()
		for c := range sch {
			checkColVec(t, "fresh", cv.Col(c), rel.Rows(), c, false)
		}
		checkKeyHashes(t, "fresh", cv.KeyHashes([]int{0}, par), rel.Rows(), []int{0})
		checkKeyHashes(t, "fresh all-cols", cv.KeyHashes(allCols, par), rel.Rows(), allCols)

		// Insert-merge: the carried views must match a from-scratch build
		// over the extended rows.
		other := NewRelation(sch)
		for _, row := range suffix {
			other.Insert(row)
		}
		rel.InsertAllExtend(other)
		checkPartView(t, "extended", rel.PartView(par), rel.Rows())
		ecv := rel.ColView()
		for c := range sch {
			checkColVec(t, "extended", ecv.Col(c), rel.Rows(), c, true)
		}
		checkKeyHashes(t, "extended", ecv.KeyHashes([]int{0}, par), rel.Rows(), []int{0})

		// Keep-mask compaction (the delete-merge path): derived views over
		// the survivors must match fresh builds.
		full := rel.Rows()
		keep := make([]bool, len(full))
		var kept []algebra.Tuple
		for i, row := range full {
			keep[i] = row.Hash()%3 != 0
			if keep[i] {
				kept = append(kept, row)
			}
		}
		kpv := deriveKeptView(rel.PartView(par), keep)
		checkPartView(t, "kept", kpv, kept)
		kcv := deriveKeptColView(ecv, kept, keep)
		for c := range sch {
			checkColVec(t, "kept", kcv.Col(c), kept, c, true)
		}
		checkKeyHashes(t, "kept", kcv.KeyHashes([]int{0}, par), kept, []int{0})
	})
}
