package storage

import (
	"sync"
	"testing"
)

func relOf(rows ...int64) *Relation {
	r := NewRelation(sch())
	for _, v := range rows {
		r.Insert(tup(v, "x"))
	}
	return r
}

func TestUnionCOWMatchesInsertAll(t *testing.T) {
	r := relOf(1, 2, 2)
	add := relOf(2, 3)
	want := r.Clone()
	want.InsertAll(add)

	got := UnionCOW(r, add)
	if !EqualMultiset(got, want) {
		t.Fatalf("UnionCOW diverges from InsertAll")
	}
	for i, wt := range want.Rows() {
		if !got.Rows()[i].Equal(wt) {
			t.Fatalf("row %d order diverges", i)
		}
	}
	if r.Len() != 3 || add.Len() != 2 {
		t.Errorf("inputs were mutated: r=%d add=%d", r.Len(), add.Len())
	}
}

func TestMinusCOWMatchesSubtractAll(t *testing.T) {
	r := relOf(1, 2, 2, 3)
	sub := relOf(2, 4) // 4 absent: ignored, multiset monus
	want := r.Clone()
	want.SubtractAll(sub)

	got := MinusCOW(r, sub)
	if !EqualMultiset(got, want) {
		t.Fatalf("MinusCOW diverges from SubtractAll")
	}
	for i, wt := range want.Rows() {
		if !got.Rows()[i].Equal(wt) {
			t.Fatalf("row %d order diverges", i)
		}
	}
	if r.Len() != 4 || sub.Len() != 2 {
		t.Errorf("inputs were mutated: r=%d sub=%d", r.Len(), sub.Len())
	}
}

func TestApplyCOWLeavesOldVersionIntact(t *testing.T) {
	db := NewDatabase()
	db.Create("t", sch())
	db.relations["t"].Insert(tup(1, "x"))
	old := db.relations["t"]

	db.LogInsert("t", tup(2, "y"))
	nr := db.ApplyInsertsCOW("t")
	if old.Len() != 1 {
		t.Errorf("old version mutated by ApplyInsertsCOW: len %d", old.Len())
	}
	if nr.Len() != 2 || db.Relation("t") != nr {
		t.Errorf("new version not installed")
	}
	if db.Delta("t").Plus.Len() != 0 {
		t.Errorf("delta not cleared")
	}

	db.LogDelete("t", tup(1, "x"))
	nr2 := db.ApplyDeletesCOW("t")
	if nr.Len() != 2 {
		t.Errorf("previous version mutated by ApplyDeletesCOW")
	}
	if nr2.Len() != 1 || db.Delta("t").Minus.Len() != 0 {
		t.Errorf("delete application wrong: len=%d", nr2.Len())
	}
}

func TestSnapshotStoreEpochsAndHistory(t *testing.T) {
	db := NewDatabase()
	db.Create("t", sch())
	st := NewSnapshotStore()
	if st.Current() != nil {
		t.Fatalf("empty store must have nil Current")
	}
	st.RetainHistory(true)

	mats := map[int]*Relation{7: relOf(1)}
	s0 := st.PublishState(db, mats)
	if s0.Epoch() != 0 {
		t.Fatalf("first epoch = %d, want 0", s0.Epoch())
	}
	mats[7] = relOf(1, 2)
	s1 := st.PublishState(db, mats)
	if s1.Epoch() != 1 || st.Current() != s1 {
		t.Fatalf("second publish: epoch %d", s1.Epoch())
	}
	// The earlier snapshot still sees the old materialization.
	if s0.Mat(7).Len() != 1 || s1.Mat(7).Len() != 2 {
		t.Errorf("snapshots share mutable mats: %d, %d", s0.Mat(7).Len(), s1.Mat(7).Len())
	}
	if h := st.History(); len(h) != 2 || h[0] != s0 || st.At(1) != s1 {
		t.Errorf("history/At wrong")
	}
	if s1.Database().MustRelation("t") != db.Relation("t") {
		t.Errorf("snapshot database must share the published relation version")
	}
}

// TestSnapshotReadersNeverTorn drives one COW writer against concurrent
// readers under -race. The writer keeps the invariant that base relation
// "t" and materialization 1 always have equal length within one published
// snapshot; a reader observing unequal lengths saw a torn state.
func TestSnapshotReadersNeverTorn(t *testing.T) {
	db := NewDatabase()
	db.Create("t", sch())
	mats := map[int]*Relation{1: relOf()}
	st := NewSnapshotStore()
	st.PublishState(db, mats)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := st.Current()
				a := s.Relation("t").Len()
				b := s.Mat(1).Len()
				if a != b {
					t.Errorf("torn read: base %d vs mat %d at epoch %d", a, b, s.Epoch())
					return
				}
			}
		}()
	}

	for step := int64(0); step < 200; step++ {
		db.LogInsert("t", tup(step, "x"))
		db.ApplyInsertsCOW("t")
		mats[1] = UnionCOW(mats[1], relOf(step))
		st.PublishState(db, mats)
	}
	close(done)
	wg.Wait()
}
