package viewdef

import (
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/dag"
	"repro/internal/tpcd"
)

// fuzzCat is built once: catalog construction dominates per-exec cost.
var fuzzCatOnce = sync.OnceValue(func() *catalog.Catalog {
	return tpcd.NewCatalog(0.001, true)
})

// insertNoPanic runs dag.InsertExpr, converting panics to a flag: the DAG
// layer is allowed to reject parsed-but-invalid trees (self-joins and the
// like) by panicking, but it must do so deterministically.
func insertNoPanic(d *dag.DAG, def algebra.Node) (e *dag.Equiv, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			e, panicked = nil, true
		}
	}()
	return d.InsertExpr(def), false
}

// FuzzParse feeds arbitrary text through the SQL-subset parser. Properties:
// Parse never panics (it promises errors for all user input); parsing is
// deterministic; an accepted definition inserts into a DAG deterministically
// — two insertions of the same text unify onto one node with a non-empty
// schema — and a rejected insertion rejects on both attempts.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT * FROM nation",
		"SELECT * FROM lineitem, orders WHERE lineitem.l_orderkey = orders.o_orderkey",
		"SELECT customer.c_nationkey, COUNT(*) FROM customer GROUP BY customer.c_nationkey",
		"SELECT orders.o_orderdate, SUM(lineitem.l_extendedprice) AS rev FROM lineitem, orders " +
			"WHERE lineitem.l_orderkey = orders.o_orderkey AND orders.o_orderdate < 255 " +
			"GROUP BY orders.o_orderdate",
		"SELECT supplier.s_acctbal FROM supplier WHERE supplier.s_acctbal >= -999.5",
		"SELECT * FROM part WHERE part.p_name = 'widget'",
		"SELEC broken",
		"SELECT * FROM no_such_table",
		"SELECT nation.bogus FROM nation",
		"SELECT * FROM orders, orders WHERE orders.o_orderkey = orders.o_orderkey",
		"SELECT COUNT(* FROM nation",
		"SELECT MIN(nation.n_name) FROM nation GROUP BY",
		"'unterminated",
		"SELECT * FROM nation WHERE nation.n_regionkey <> 1e309",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		cat := fuzzCatOnce()
		def, err := Parse(cat, sql) // must not panic, whatever the input
		def2, err2 := Parse(cat, sql)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic accept/reject for %q: %v vs %v", sql, err, err2)
		}
		if err != nil {
			return
		}
		if def == nil || def2 == nil {
			t.Fatalf("accepted parse returned nil tree for %q", sql)
		}
		d := dag.New(cat)
		e1, p1 := insertNoPanic(d, def)
		e2, p2 := insertNoPanic(d, def2)
		if p1 != p2 {
			t.Fatalf("non-deterministic DAG insertion for %q", sql)
		}
		if p1 {
			return // rejected at the DAG layer (e.g. self-join): allowed
		}
		if e1 != e2 {
			t.Fatalf("re-inserting %q did not unify: e%d vs e%d", sql, e1.ID, e2.ID)
		}
		if len(e1.Schema) == 0 {
			t.Fatalf("accepted query %q produced an empty schema", sql)
		}
		if e1.Key == "" {
			t.Fatalf("accepted query %q produced an empty canonical key", sql)
		}
	})
}
