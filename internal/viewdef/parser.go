// Package viewdef parses a small SQL subset into logical algebra trees, so
// that materialized views can be registered from text:
//
//	SELECT <cols and aggregates> FROM <tables> [WHERE <conjuncts>]
//	    [GROUP BY <cols>]
//
// Supported: qualified column references (table.column), integer/float/
// 'string' literals, comparison operators (= <> < <= > >=) joined by AND,
// the aggregates COUNT(*), SUM, AVG, MIN, MAX with optional AS aliases, and
// SELECT * (no projection). Joins are expressed implicitly: list the tables
// in FROM and equate their columns in WHERE, exactly as the paper's TPC-D
// workloads do.
package viewdef

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/algebra"
	"repro/internal/catalog"
)

// Parse converts a view definition into a logical tree over the catalog.
// All failures — syntax errors and semantic ones such as unknown columns
// (which the algebra layer reports by panicking, since its callers are
// normally trusted code) — come back as errors.
func Parse(cat *catalog.Catalog, sql string) (n algebra.Node, err error) {
	defer func() {
		if r := recover(); r != nil {
			n, err = nil, fmt.Errorf("viewdef: %v", r)
		}
	}()
	p := &parser{cat: cat, toks: lex(sql)}
	n, err = p.parse()
	if err != nil {
		return nil, fmt.Errorf("viewdef: %w", err)
	}
	return n, nil
}

// MustParse is Parse panicking on error; for tests and fixed workloads.
func MustParse(cat *catalog.Catalog, sql string) algebra.Node {
	n, err := Parse(cat, sql)
	if err != nil {
		panic(err)
	}
	return n
}

// --- lexer ---

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokOp    // comparison operators
	tokPunct // , ( ) * .
	tokEOF
)

type token struct {
	kind tokKind
	text string
}

func lex(s string) []token {
	var out []token
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == ',' || c == '(' || c == ')' || c == '*':
			out = append(out, token{tokPunct, string(c)})
			i++
		case c == '\'':
			j := i + 1
			for j < len(s) && s[j] != '\'' {
				j++
			}
			out = append(out, token{tokString, s[i+1 : min(j, len(s))]})
			i = j + 1
		case strings.ContainsRune("=<>!", c):
			j := i + 1
			for j < len(s) && strings.ContainsRune("=<>", rune(s[j])) {
				j++
			}
			out = append(out, token{tokOp, s[i:j]})
			i = j
		case unicode.IsDigit(c) || (c == '-' && i+1 < len(s) && unicode.IsDigit(rune(s[i+1]))):
			j := i + 1
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == '.') {
				j++
			}
			out = append(out, token{tokNumber, s[i:j]})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_' || s[j] == '.') {
				j++
			}
			out = append(out, token{tokIdent, s[i:j]})
			i = j
		default:
			out = append(out, token{tokPunct, string(c)})
			i++
		}
	}
	return append(out, token{tokEOF, ""})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- parser ---

type parser struct {
	cat  *catalog.Catalog
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) kw(s string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, s) {
		p.pos++
		return true
	}
	return false
}
func (p *parser) expectKw(s string) error {
	if !p.kw(s) {
		return fmt.Errorf("expected %s, found %q", s, p.peek().text)
	}
	return nil
}
func (p *parser) punct(s string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

type selItem struct {
	col  algebra.ColRef
	agg  *algebra.AggSpec
	star bool
}

func (p *parser) parse() (algebra.Node, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	items, err := p.selectList()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	var tables []string
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("expected table name, found %q", t.text)
		}
		if _, ok := p.cat.Table(t.text); !ok {
			return nil, fmt.Errorf("unknown table %q", t.text)
		}
		tables = append(tables, t.text)
		if !p.punct(",") {
			break
		}
	}

	var conjuncts []algebra.Cmp
	if p.kw("WHERE") {
		for {
			c, err := p.comparison()
			if err != nil {
				return nil, err
			}
			conjuncts = append(conjuncts, c)
			if !p.kw("AND") {
				break
			}
		}
	}

	var groupBy []algebra.ColRef
	if p.kw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("expected group-by column, found %q", t.text)
			}
			groupBy = append(groupBy, algebra.C(t.text))
			if !p.punct(",") {
				break
			}
		}
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("unexpected trailing input %q", p.peek().text)
	}

	// Assemble: left-deep cross join, predicates on top (the DAG expansion
	// pushes them down and enumerates join orders).
	var n algebra.Node = algebra.NewScan(p.cat, tables[0])
	for _, t := range tables[1:] {
		n = algebra.NewJoin(algebra.TruePred(), n, algebra.NewScan(p.cat, t))
	}
	if len(conjuncts) > 0 {
		n = algebra.NewSelect(algebra.Pred{Conjuncts: conjuncts}, n)
	}

	var aggs []algebra.AggSpec
	var plain []algebra.ColRef
	star := false
	for _, it := range items {
		switch {
		case it.star:
			star = true
		case it.agg != nil:
			aggs = append(aggs, *it.agg)
		default:
			plain = append(plain, it.col)
		}
	}
	switch {
	case len(aggs) > 0:
		if star {
			return nil, fmt.Errorf("* cannot be combined with aggregates")
		}
		if len(groupBy) == 0 {
			groupBy = plain
		}
		return algebra.NewAggregate(groupBy, aggs, n), nil
	case len(groupBy) > 0:
		return nil, fmt.Errorf("GROUP BY requires at least one aggregate")
	case star || len(plain) == 0:
		return n, nil
	default:
		return algebra.NewProject(plain, n), nil
	}
}

func (p *parser) selectList() ([]selItem, error) {
	var out []selItem
	for {
		it, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		out = append(out, it)
		if !p.punct(",") {
			return out, nil
		}
	}
}

var aggFuncs = map[string]algebra.AggFunc{
	"COUNT": algebra.Count, "SUM": algebra.Sum, "AVG": algebra.Avg,
	"MIN": algebra.Min, "MAX": algebra.Max,
}

func (p *parser) selectItem() (selItem, error) {
	if p.punct("*") {
		return selItem{star: true}, nil
	}
	t := p.next()
	if t.kind != tokIdent {
		return selItem{}, fmt.Errorf("expected column or aggregate, found %q", t.text)
	}
	if f, ok := aggFuncs[strings.ToUpper(t.text)]; ok && p.punct("(") {
		spec := algebra.AggSpec{Func: f}
		if p.punct("*") {
			if f != algebra.Count {
				return selItem{}, fmt.Errorf("%s(*) is not valid", t.text)
			}
		} else {
			col := p.next()
			if col.kind != tokIdent {
				return selItem{}, fmt.Errorf("expected aggregate column, found %q", col.text)
			}
			spec.Col = algebra.C(col.text)
		}
		if !p.punct(")") {
			return selItem{}, fmt.Errorf("expected ) after aggregate")
		}
		if p.kw("AS") {
			name := p.next()
			if name.kind != tokIdent {
				return selItem{}, fmt.Errorf("expected alias after AS")
			}
			spec.As = name.text
		}
		return selItem{agg: &spec}, nil
	}
	return selItem{col: algebra.C(t.text)}, nil
}

var cmpOps = map[string]algebra.CmpOp{
	"=": algebra.EQ, "<>": algebra.NE, "!=": algebra.NE,
	"<": algebra.LT, "<=": algebra.LE, ">": algebra.GT, ">=": algebra.GE,
}

func (p *parser) comparison() (algebra.Cmp, error) {
	l, err := p.operand()
	if err != nil {
		return algebra.Cmp{}, err
	}
	opTok := p.next()
	op, ok := cmpOps[opTok.text]
	if opTok.kind != tokOp || !ok {
		return algebra.Cmp{}, fmt.Errorf("expected comparison operator, found %q", opTok.text)
	}
	r, err := p.operand()
	if err != nil {
		return algebra.Cmp{}, err
	}
	return algebra.Cmp{Op: op, L: l, R: r}, nil
}

func (p *parser) operand() (algebra.Expr, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		return algebra.C(t.text), nil
	case tokNumber:
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("bad number %q", t.text)
			}
			return algebra.Const{Val: algebra.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", t.text)
		}
		return algebra.Const{Val: algebra.NewInt(i)}, nil
	case tokString:
		return algebra.Const{Val: algebra.NewString(t.text)}, nil
	default:
		return nil, fmt.Errorf("expected operand, found %q", t.text)
	}
}
