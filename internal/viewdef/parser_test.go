package viewdef

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/tpcd"
)

func TestParseSimpleJoin(t *testing.T) {
	cat := tpcd.NewCatalog(0.01, true)
	n, err := Parse(cat, `
		SELECT *
		FROM orders, customer
		WHERE orders.o_custkey = customer.c_custkey AND orders.o_orderdate < 255`)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := n.(*algebra.Select)
	if !ok {
		t.Fatalf("expected select root, got %T", n)
	}
	if len(sel.Pred.Conjuncts) != 2 {
		t.Errorf("2 conjuncts expected")
	}
	tables := algebra.Tables(n)
	if len(tables) != 2 || tables[0] != "customer" {
		t.Errorf("tables = %v", tables)
	}
}

func TestParseProjection(t *testing.T) {
	cat := tpcd.NewCatalog(0.01, true)
	n, err := Parse(cat, `SELECT orders.o_orderkey, orders.o_totalprice FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.(*algebra.Project); !ok {
		t.Fatalf("expected projection, got %T", n)
	}
	if len(n.Schema()) != 2 {
		t.Errorf("schema = %v", n.Schema())
	}
}

func TestParseAggregate(t *testing.T) {
	cat := tpcd.NewCatalog(0.01, true)
	n, err := Parse(cat, `
		SELECT customer.c_nationkey, SUM(orders.o_totalprice) AS rev, COUNT(*)
		FROM orders, customer
		WHERE orders.o_custkey = customer.c_custkey
		GROUP BY customer.c_nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	agg, ok := n.(*algebra.Aggregate)
	if !ok {
		t.Fatalf("expected aggregate, got %T", n)
	}
	if len(agg.GroupBy) != 1 || agg.GroupBy[0].QName() != "customer.c_nationkey" {
		t.Errorf("group by = %v", agg.GroupBy)
	}
	if len(agg.Aggs) != 2 || agg.Aggs[0].As != "rev" {
		t.Errorf("aggs = %v", agg.Aggs)
	}
	if !n.Schema().Has("agg.rev") {
		t.Errorf("aliased output missing: %v", n.Schema())
	}
}

func TestParseImplicitGroupBy(t *testing.T) {
	cat := tpcd.NewCatalog(0.01, true)
	n, err := Parse(cat, `SELECT orders.o_custkey, COUNT(*) FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	agg := n.(*algebra.Aggregate)
	if len(agg.GroupBy) != 1 {
		t.Errorf("plain columns should become the group-by")
	}
}

func TestParseStringLiteralAndOps(t *testing.T) {
	cat := tpcd.NewCatalog(0.01, true)
	n, err := Parse(cat, `SELECT * FROM nation WHERE nation.n_name = 'nation-alpha' AND nation.n_nationkey >= 3`)
	if err != nil {
		t.Fatal(err)
	}
	sel := n.(*algebra.Select)
	if len(sel.Pred.Conjuncts) != 2 {
		t.Fatalf("conjuncts = %v", sel.Pred)
	}
	if sel.Pred.Conjuncts[0].R.(algebra.Const).Val.S != "nation-alpha" {
		t.Errorf("string literal mishandled")
	}
}

func TestParseErrors(t *testing.T) {
	cat := tpcd.NewCatalog(0.01, true)
	cases := []struct{ sql, wantSub string }{
		{"FROM orders", "expected SELECT"},
		{"SELECT * FROM nosuch", "unknown table"},
		{"SELECT * FROM orders WHERE orders.o_custkey LIKE 3", "comparison operator"},
		{"SELECT SUM(*) FROM orders", "not valid"},
		{"SELECT orders.o_custkey FROM orders GROUP BY orders.o_custkey", "requires at least one aggregate"},
		{"SELECT * FROM orders extra", "trailing"},
		{"SELECT *, COUNT(*) FROM orders", "cannot be combined"},
	}
	for _, c := range cases {
		_, err := Parse(cat, c.sql)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %v, want containing %q", c.sql, err, c.wantSub)
		}
	}
}

func TestParsedViewMatchesHandBuilt(t *testing.T) {
	cat := tpcd.NewCatalog(0.01, true)
	parsed := MustParse(cat, `
		SELECT * FROM lineitem, orders
		WHERE lineitem.l_orderkey = orders.o_orderkey AND orders.o_orderdate < 255`)
	hand := algebra.NewSelect(
		algebra.And(algebra.CmpConst("orders.o_orderdate", algebra.LT, algebra.NewInt(255))),
		algebra.NewJoin(algebra.And(algebra.Eq("lineitem.l_orderkey", "orders.o_orderkey")),
			algebra.NewScan(cat, "lineitem"), algebra.NewScan(cat, "orders")))
	// Canonical DAG keys must coincide (same tables, same predicate set).
	pt, ht := algebra.Tables(parsed), algebra.Tables(hand)
	if len(pt) != len(ht) || pt[0] != ht[0] || pt[1] != ht[1] {
		t.Errorf("tables differ: %v vs %v", pt, ht)
	}
}

func TestParseNeverPanics(t *testing.T) {
	// Fuzz-ish robustness: Parse must return errors, not panic, on garbage.
	cat := tpcd.NewCatalog(0.01, true)
	inputs := []string{
		"", "SELECT", "SELECT *", "SELECT * FROM", "SELECT * FROM orders WHERE",
		"SELECT * FROM orders WHERE orders.o_custkey =",
		"SELECT * FROM orders WHERE = 5",
		"SELECT COUNT( FROM orders",
		"SELECT * FROM orders GROUP",
		"SELECT 'unterminated FROM orders",
		"SELECT * FROM orders WHERE orders.o_custkey = 'x",
		"((((", "SELECT ,,, FROM orders", "select * from orders where 1 <",
		"SELECT * FROM orders WHERE orders.o_custkey <=> 3",
		"SELECT SUM(orders.o_totalprice FROM orders",
		"SELECT x.y.z FROM orders",
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%q) panicked: %v", in, r)
				}
			}()
			_, _ = Parse(cat, in)
		}()
	}
}

func TestParseRandomBytesNeverPanics(t *testing.T) {
	cat := tpcd.NewCatalog(0.01, true)
	rng := []byte("SELECT FROM WHERE GROUP BY AND * , ( ) < > = ' orders customer 0123 .")
	state := uint32(12345)
	next := func() byte {
		state = state*1664525 + 1013904223
		return rng[int(state>>16)%len(rng)]
	}
	for trial := 0; trial < 500; trial++ {
		n := int(state%120) + 1
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = next()
		}
		in := string(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", in, r)
				}
			}()
			_, _ = Parse(cat, in)
		}()
	}
}

func TestParseMinMaxAvg(t *testing.T) {
	cat := tpcd.NewCatalog(0.01, true)
	n, err := Parse(cat, `
		SELECT part.p_type, MIN(part.p_retailprice), MAX(part.p_retailprice), AVG(part.p_size)
		FROM part GROUP BY part.p_type`)
	if err != nil {
		t.Fatal(err)
	}
	agg := n.(*algebra.Aggregate)
	if len(agg.Aggs) != 3 {
		t.Errorf("aggs = %v", agg.Aggs)
	}
}
