package exec

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/diff"
	"repro/internal/storage"
	"repro/internal/volcano"
)

// fixture builds a small orders/customer/nation database with real rows.
type fixture struct {
	cat *catalog.Catalog
	db  *storage.Database
	rng *rand.Rand
}

func newFixture(seed int64) *fixture {
	f := &fixture{cat: catalog.New(), db: storage.NewDatabase(), rng: rand.New(rand.NewSource(seed))}
	f.addTable("nation", []catalog.Column{
		{Name: "n_key", Type: catalog.Int, Width: 8},
		{Name: "n_region", Type: catalog.Int, Width: 8},
	}, "n_key", map[string]catalog.ColumnStats{
		"n_key": {Distinct: 5, Min: 1, Max: 5}, "n_region": {Distinct: 2, Min: 1, Max: 2},
	}, 5)
	f.addTable("customer", []catalog.Column{
		{Name: "c_key", Type: catalog.Int, Width: 8},
		{Name: "c_nation", Type: catalog.Int, Width: 8},
		{Name: "c_acct", Type: catalog.Float, Width: 8},
	}, "c_key", map[string]catalog.ColumnStats{
		"c_key": {Distinct: 50, Min: 1, Max: 50}, "c_nation": {Distinct: 5, Min: 1, Max: 5},
		"c_acct": {Distinct: 20, Min: 0, Max: 100},
	}, 50)
	f.addTable("orders", []catalog.Column{
		{Name: "o_key", Type: catalog.Int, Width: 8},
		{Name: "o_cust", Type: catalog.Int, Width: 8},
		{Name: "o_price", Type: catalog.Float, Width: 8},
	}, "o_key", map[string]catalog.ColumnStats{
		"o_key": {Distinct: 200, Min: 1, Max: 400}, "o_cust": {Distinct: 50, Min: 1, Max: 50},
		"o_price": {Distinct: 50, Min: 0, Max: 100},
	}, 200)
	for _, tb := range f.cat.Tables() {
		f.cat.AddIndex(catalog.Index{Name: "pk_" + tb, Table: tb,
			Columns: f.cat.MustTable(tb).PrimaryKey, Unique: true})
	}

	// Populate. Prices are whole numbers so incremental float sums are exact.
	for i := int64(1); i <= 5; i++ {
		f.db.MustRelation("nation").Insert(algebra.Tuple{
			algebra.NewInt(i), algebra.NewInt(1 + i%2)})
	}
	for i := int64(1); i <= 50; i++ {
		f.db.MustRelation("customer").Insert(algebra.Tuple{
			algebra.NewInt(i), algebra.NewInt(1 + i%5), algebra.NewFloat(float64(i % 20))})
	}
	for i := int64(1); i <= 200; i++ {
		f.db.MustRelation("orders").Insert(algebra.Tuple{
			algebra.NewInt(i), algebra.NewInt(1 + i%50), algebra.NewFloat(float64(i % 100))})
	}
	return f
}

func (f *fixture) addTable(name string, cols []catalog.Column, pk string,
	stats map[string]catalog.ColumnStats, rows int64) {
	t := &catalog.Table{Name: name, Columns: cols, PrimaryKey: []string{pk},
		Stats: catalog.TableStats{Rows: rows, Columns: stats}}
	f.cat.AddTable(t)
	f.db.Create(name, algebra.TableSchema(t, name))
}

// logUpdates records random inserts and deletes on a table: n inserts with
// fresh keys, n/2 deletes of existing rows.
func (f *fixture) logUpdates(table string, n int, nextKey *int64) {
	rel := f.db.MustRelation(table)
	for j := 0; j < n; j++ {
		*nextKey++
		switch table {
		case "orders":
			f.db.LogInsert(table, algebra.Tuple{
				algebra.NewInt(*nextKey), algebra.NewInt(1 + *nextKey%50),
				algebra.NewFloat(float64(*nextKey % 100))})
		case "customer":
			f.db.LogInsert(table, algebra.Tuple{
				algebra.NewInt(*nextKey), algebra.NewInt(1 + *nextKey%5),
				algebra.NewFloat(float64(*nextKey % 20))})
		}
	}
	// Deletes sample distinct existing rows: a delta relation must not delete
	// the same tuple twice.
	perm := f.rng.Perm(rel.Len())
	for j := 0; j < n/2 && j < rel.Len(); j++ {
		f.db.LogDelete(table, rel.Rows()[perm[j]].Clone())
	}
}

func ordersCustomer(cat *catalog.Catalog) algebra.Node {
	return algebra.NewJoin(algebra.And(algebra.Eq("orders.o_cust", "customer.c_key")),
		algebra.NewScan(cat, "orders"), algebra.NewScan(cat, "customer"))
}

// harness wires a view set into engine, executor, maintainer.
type harness struct {
	f     *fixture
	d     *dag.DAG
	en    *diff.Engine
	ev    *diff.Eval
	ex    *Executor
	mt    *Maintainer
	roots []*dag.Equiv
}

func newHarness(t *testing.T, f *fixture, updRels []string, pct float64,
	extraMat []int, views ...algebra.Node) *harness {
	t.Helper()
	d := dag.New(f.cat)
	var roots []*dag.Equiv
	for i, v := range views {
		roots = append(roots, d.AddQuery("v"+string(rune('0'+i)), v))
	}
	u := diff.UniformPercent(f.cat, updRels, pct)
	en := diff.NewEngine(d, cost.NewModel(cost.Default()), u)
	ms := diff.NewMatState()
	ex := NewExecutor(f.db)
	for _, r := range roots {
		ms.Fulls.Full[r.ID] = true
		ex.MaterializeNode(r)
	}
	for _, id := range extraMat {
		ms.Fulls.Full[id] = true
		ex.MaterializeNode(d.Equivs[id])
	}
	ev := en.NewEval(ms)
	return &harness{f: f, d: d, en: en, ev: ev, ex: ex, mt: NewMaintainer(ex, en, ev), roots: roots}
}

// checkViews verifies every maintained root equals recomputation.
func (h *harness) checkViews(t *testing.T) {
	t.Helper()
	for i, r := range h.roots {
		got := h.ex.Mat[r.ID]
		want := h.ex.EvalNode(r)
		if !storage.EqualMultiset(got, want) {
			t.Errorf("view %d diverged: maintained %d rows, recomputed %d rows",
				i, got.Len(), want.Len())
		}
	}
}

func TestRunSimpleJoinPlan(t *testing.T) {
	f := newFixture(1)
	d := dag.New(f.cat)
	root := d.AddQuery("v", ordersCustomer(f.cat))
	opt := volcano.New(d, cost.NewModel(cost.Default()))
	sz := dag.NewSizer(opt.Est, nil)
	p := opt.Best(root, volcano.NewMatSet(), sz, opt.NewMemo())
	ex := NewExecutor(f.db)
	got := ex.Run(p)
	if got.Len() != 200 {
		t.Errorf("every order has a customer: want 200 rows, got %d", got.Len())
	}
	want := ex.EvalNode(root)
	if !storage.EqualMultiset(got, want) {
		t.Errorf("optimized plan and reference evaluation disagree")
	}
}

func TestMaintainJoinViewInsertsAndDeletes(t *testing.T) {
	f := newFixture(2)
	h := newHarness(t, f, []string{"orders", "customer"}, 10, nil, ordersCustomer(f.cat))
	var nk int64 = 1000
	f.logUpdates("orders", 20, &nk)
	f.logUpdates("customer", 5, &nk)
	h.mt.Refresh()
	h.checkViews(t)
}

func TestMaintainSelectJoinView(t *testing.T) {
	f := newFixture(3)
	v := algebra.NewSelect(
		algebra.And(algebra.CmpConst("orders.o_price", algebra.LT, algebra.NewFloat(50))),
		ordersCustomer(f.cat).(*algebra.Join))
	h := newHarness(t, f, []string{"orders"}, 20, nil, v)
	var nk int64 = 1000
	f.logUpdates("orders", 40, &nk)
	h.mt.Refresh()
	h.checkViews(t)
}

func TestMaintainAggregateViewSumCountAvg(t *testing.T) {
	f := newFixture(4)
	v := algebra.NewAggregate(
		[]algebra.ColRef{algebra.C("customer.c_nation")},
		[]algebra.AggSpec{
			{Func: algebra.Sum, Col: algebra.C("orders.o_price")},
			{Func: algebra.Count},
			{Func: algebra.Avg, Col: algebra.C("orders.o_price")},
		},
		ordersCustomer(f.cat).(*algebra.Join))
	h := newHarness(t, f, []string{"orders", "customer"}, 15, nil, v)
	var nk int64 = 1000
	f.logUpdates("orders", 30, &nk)
	f.logUpdates("customer", 8, &nk)
	h.mt.Refresh()
	h.checkViews(t)
}

func TestMaintainMinMaxWithDeletesFallsBack(t *testing.T) {
	f := newFixture(5)
	v := algebra.NewAggregate(
		[]algebra.ColRef{algebra.C("customer.c_nation")},
		[]algebra.AggSpec{{Func: algebra.Max, Col: algebra.C("orders.o_price")},
			{Func: algebra.Min, Col: algebra.C("orders.o_price")}},
		ordersCustomer(f.cat).(*algebra.Join))
	h := newHarness(t, f, []string{"orders"}, 30, nil, v)
	var nk int64 = 1000
	f.logUpdates("orders", 30, &nk)
	h.mt.Refresh()
	h.checkViews(t)
}

func TestMaintainTwoViewsSharedSubexpression(t *testing.T) {
	f := newFixture(6)
	vJoin := ordersCustomer(f.cat)
	vAgg := algebra.NewAggregate(
		[]algebra.ColRef{algebra.C("customer.c_nation")},
		[]algebra.AggSpec{{Func: algebra.Count}},
		ordersCustomer(f.cat).(*algebra.Join))
	h := newHarness(t, f, []string{"orders", "customer"}, 10, nil, vJoin, vAgg)
	var nk int64 = 1000
	f.logUpdates("orders", 25, &nk)
	f.logUpdates("customer", 6, &nk)
	h.mt.Refresh()
	h.checkViews(t)
}

func TestMaintainWithExtraMaterializedSubexpression(t *testing.T) {
	f := newFixture(7)
	threeWay := algebra.NewJoin(algebra.And(algebra.Eq("customer.c_nation", "nation.n_key")),
		ordersCustomer(f.cat).(*algebra.Join), algebra.NewScan(f.cat, "nation"))
	d := dag.New(f.cat)
	root := d.AddQuery("v", threeWay)
	// Find orders⋈customer and materialize it permanently alongside the view.
	var oc *dag.Equiv
	for _, e := range d.Equivs {
		if len(e.Tables) == 2 && e.DependsOn("orders") && e.DependsOn("customer") {
			oc = e
		}
	}
	u := diff.UniformPercent(f.cat, []string{"orders", "customer"}, 10)
	en := diff.NewEngine(d, cost.NewModel(cost.Default()), u)
	ms := diff.NewMatState()
	ms.Fulls.Full[root.ID] = true
	ms.Fulls.Full[oc.ID] = true
	ex := NewExecutor(f.db)
	ex.MaterializeNode(root)
	ex.MaterializeNode(oc)
	ev := en.NewEval(ms)
	mt := NewMaintainer(ex, en, ev)

	var nk int64 = 1000
	f.logUpdates("orders", 20, &nk)
	f.logUpdates("customer", 5, &nk)
	mt.Refresh()

	if !storage.EqualMultiset(ex.Mat[root.ID], ex.EvalNode(root)) {
		t.Errorf("view diverged")
	}
	if !storage.EqualMultiset(ex.Mat[oc.ID], ex.EvalNode(oc)) {
		t.Errorf("permanently materialized subexpression diverged")
	}
}

func TestMaintainWithTemporaryDifferential(t *testing.T) {
	f := newFixture(8)
	vJoin := ordersCustomer(f.cat)
	vSel := algebra.NewSelect(
		algebra.And(algebra.CmpConst("orders.o_price", algebra.LT, algebra.NewFloat(50))),
		ordersCustomer(f.cat).(*algebra.Join))
	d := dag.New(f.cat)
	r1 := d.AddQuery("v1", vJoin)
	r2 := d.AddQuery("v2", vSel)
	var oc *dag.Equiv
	for _, e := range d.Equivs {
		if len(e.Tables) == 2 && e.DependsOn("orders") && e.DependsOn("customer") &&
			len(e.Ops) > 0 && e.Ops[0].Kind == dag.OpJoin {
			oc = e
		}
	}
	u := diff.UniformPercent(f.cat, []string{"orders"}, 10)
	en := diff.NewEngine(d, cost.NewModel(cost.Default()), u)
	ms := diff.NewMatState()
	ms.Fulls.Full[r1.ID] = true
	ms.Fulls.Full[r2.ID] = true
	// Temporarily materialize δ+orders(orders⋈customer): shared by both views.
	ms.Diffs[diff.DiffKey{EquivID: oc.ID, Update: 1}] = true
	ex := NewExecutor(f.db)
	ex.MaterializeNode(r1)
	ex.MaterializeNode(r2)
	ev := en.NewEval(ms)
	mt := NewMaintainer(ex, en, ev)

	var nk int64 = 1000
	f.logUpdates("orders", 30, &nk)
	mt.Refresh()

	if !storage.EqualMultiset(ex.Mat[r1.ID], ex.EvalNode(r1)) {
		t.Errorf("v1 diverged")
	}
	if !storage.EqualMultiset(ex.Mat[r2.ID], ex.EvalNode(r2)) {
		t.Errorf("v2 diverged")
	}
}

func TestRepeatedRefreshCycles(t *testing.T) {
	f := newFixture(9)
	h := newHarness(t, f, []string{"orders", "customer"}, 10, nil, ordersCustomer(f.cat))
	var nk int64 = 1000
	for cycle := 0; cycle < 5; cycle++ {
		f.logUpdates("orders", 10, &nk)
		f.logUpdates("customer", 4, &nk)
		h.mt.Refresh()
		h.checkViews(t)
	}
}

func TestRefreshWithNoPendingUpdates(t *testing.T) {
	f := newFixture(10)
	h := newHarness(t, f, []string{"orders"}, 10, nil, ordersCustomer(f.cat))
	h.mt.Refresh() // no deltas logged
	h.checkViews(t)
}

func TestAggTableAbsorbInverse(t *testing.T) {
	// Property: absorbing a batch then absorbing it with opposite sign
	// restores the original state (for distributive aggregates).
	f := newFixture(11)
	in := f.db.MustRelation("orders")
	sch := in.Schema()
	at := NewAggTable(sch,
		[]algebra.ColRef{algebra.C("orders.o_cust")},
		[]algebra.AggSpec{{Func: algebra.Sum, Col: algebra.C("orders.o_price")}, {Func: algebra.Count}},
		algebra.Schema{sch[1], {Rel: "agg", Name: "sum_o_price", Type: catalog.Float, Width: 8},
			{Rel: "agg", Name: "count", Type: catalog.Int, Width: 8}})
	at.Absorb(in, 1)
	before := at.Rows()

	batch := storage.NewRelation(sch)
	for i := 0; i < 20; i++ {
		batch.Insert(in.Rows()[i])
	}
	at.Absorb(batch, 1)
	at.Absorb(batch, -1)
	after := at.Rows()
	if !storage.EqualMultiset(before, after) {
		t.Errorf("absorb/unabsorb should round-trip")
	}
}

func TestProjectToReordersColumns(t *testing.T) {
	f := newFixture(12)
	rel := f.db.MustRelation("orders")
	target := algebra.Schema{rel.Schema()[2], rel.Schema()[0]}
	got := projectTo(rel, target)
	if got.Len() != rel.Len() || len(got.Schema()) != 2 {
		t.Fatalf("projection shape wrong")
	}
	if got.Rows()[0][1].I != rel.Rows()[0][0].I {
		t.Errorf("column reorder broken")
	}
}
