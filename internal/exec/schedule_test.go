package exec

// Tests for the concurrent DAG-scheduled refresh executor (schedule.go):
// parallel refresh must produce results multiset-identical — and, for every
// non-aggregate result, byte-identical — to the workers=1 sequential run, on
// randomized workloads, under the race detector.

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"repro/internal/algebra"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/diff"
	"repro/internal/storage"
)

// trialState is everything one randomized refresh trial materialized.
type trialState struct {
	d   *dag.DAG
	ex  *Executor
	ids []int // materialized node IDs, ascending
}

// runTrial builds the randomized workload of random_test.go deterministically
// from the trial number and refreshes it for two cycles with the given
// worker-pool bound. Two calls with equal trial numbers see identical data,
// views, materialization choices and update batches, so their results may be
// compared row by row.
func runTrial(t *testing.T, trial, workers int) trialState {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(1000 + trial)))
	f := newFixture(int64(trial))
	d := dag.New(f.cat)
	nViews := 1 + rng.Intn(3)
	var roots []*dag.Equiv
	for v := 0; v < nViews; v++ {
		roots = append(roots, d.AddQuery("v", randomView(f, rng)))
	}
	d.ApplySubsumption()

	updRels := []string{"orders"}
	if rng.Intn(2) == 0 {
		updRels = append(updRels, "customer")
	}
	u := diff.UniformPercent(f.cat, updRels, float64(5+rng.Intn(30)))
	en := diff.NewEngine(d, cost.NewModel(cost.Default()), u)

	ms := diff.NewMatState()
	ex := NewExecutor(f.db)
	seen := map[int]bool{}
	for _, r := range roots {
		if !seen[r.ID] {
			seen[r.ID] = true
			ms.Fulls.Full[r.ID] = true
			ex.MaterializeNode(r)
		}
	}
	// Extra materialized subexpression, and temporarily materialized
	// differentials to force shared tasks into the graph.
	for _, e := range d.Equivs {
		if !e.IsTable && !seen[e.ID] && len(e.Tables) >= 2 && rng.Intn(3) == 0 {
			ms.Fulls.Full[e.ID] = true
			ex.MaterializeNode(e)
			seen[e.ID] = true
			break
		}
	}
	for _, e := range d.Equivs {
		if !e.IsTable && e.DependsOn("orders") && rng.Intn(3) == 0 &&
			e.Ops[0].Kind != dag.OpAggregate {
			ms.Diffs[diff.DiffKey{EquivID: e.ID, Update: 1}] = true
		}
	}

	mt := NewMaintainer(ex, en, en.NewEval(ms))
	mt.Workers = workers

	var nk int64 = 100000 * int64(trial+1)
	for cycle := 0; cycle < 2; cycle++ {
		for _, rel := range updRels {
			f.logUpdates(rel, 5+rng.Intn(20), &nk)
		}
		mt.Refresh()
	}

	out := trialState{d: d, ex: ex}
	for id := range ms.Fulls.Full {
		out.ids = append(out.ids, id)
	}
	sort.Ints(out.ids)
	return out
}

// sameRows reports whether two relations hold the same rows in the same
// order (byte-identical content).
func sameRows(a, b *storage.Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i, t := range a.Rows() {
		if !t.Equal(b.Rows()[i]) {
			return false
		}
	}
	return true
}

// TestParallelRefreshMatchesSequential is the scheduler's golden test: for
// randomized workloads, refresh at several worker counts and require every
// maintained result to be multiset-identical to the workers=1 run — and
// byte-identical for non-aggregate results, whose row order is deterministic
// (aggregate results are rendered from a hash table, so their row order is
// not deterministic even between two sequential runs). Run under -race this
// also exercises the worker pool for memory-safety.
func TestParallelRefreshMatchesSequential(t *testing.T) {
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		seq := runTrial(t, trial, 1)
		for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
			par := runTrial(t, trial, workers)
			for _, id := range seq.ids {
				want, got := seq.ex.Mat[id], par.ex.Mat[id]
				if got == nil {
					t.Fatalf("trial %d workers %d: e%d not materialized", trial, workers, id)
				}
				if !storage.EqualMultiset(want, got) {
					t.Fatalf("trial %d workers %d: e%d diverged as multiset: %d vs %d rows",
						trial, workers, id, want.Len(), got.Len())
				}
				if seq.ex.Agg[id] == nil && !sameRows(want, got) {
					t.Fatalf("trial %d workers %d: e%d multiset-equal but not byte-identical",
						trial, workers, id)
				}
			}
			// The parallel run must also stay exact against recomputation.
			for _, id := range par.ids {
				e := par.d.Equivs[id]
				if !storage.EqualMultiset(par.ex.Mat[id], par.ex.EvalNode(e)) {
					t.Fatalf("trial %d workers %d: e%d diverged from recomputation",
						trial, workers, id)
				}
			}
		}
	}
}

// TestWorkersOneIsDegenerateSequential pins the degenerate case: workers=1
// runs the whole task graph inline on the calling goroutine and must match
// recomputation exactly (it IS the sequential reference everything else is
// compared against).
func TestWorkersOneIsDegenerateSequential(t *testing.T) {
	st := runTrial(t, 3, 1)
	for _, id := range st.ids {
		if !storage.EqualMultiset(st.ex.Mat[id], st.ex.EvalNode(st.d.Equivs[id])) {
			t.Fatalf("workers=1: e%d diverged from recomputation", id)
		}
	}
}

// TestTaskGraphSharesDifferentials white-boxes the task graph: with a
// temporarily materialized differential consumed by two views, the step
// graph must hold exactly one task for the shared key, wired as a
// dependency of both consumers, and running the graph must publish results
// that match direct plan interpretation.
func TestTaskGraphSharesDifferentials(t *testing.T) {
	f := newFixture(7)
	d := dag.New(f.cat)
	// Two aggregate views over the same orders⋈customer join, so both
	// consume the shared join node's differential. (A select on top would
	// not share: SPJ expansion pushes the predicate into its own join
	// block, giving a different join node.)
	oc := func() algebra.Node {
		return algebra.NewJoin(algebra.And(algebra.Eq("orders.o_cust", "customer.c_key")),
			algebra.NewScan(f.cat, "orders"), algebra.NewScan(f.cat, "customer"))
	}
	v1 := d.AddQuery("v1", algebra.NewAggregate(
		[]algebra.ColRef{algebra.C("orders.o_cust")},
		[]algebra.AggSpec{{Func: algebra.Sum, Col: algebra.C("orders.o_price")}}, oc()))
	v2 := d.AddQuery("v2", algebra.NewAggregate(
		[]algebra.ColRef{algebra.C("customer.c_nation")},
		[]algebra.AggSpec{{Func: algebra.Count}}, oc()))
	d.ApplySubsumption()

	u := diff.UniformPercent(f.cat, []string{"orders"}, 10)
	en := diff.NewEngine(d, cost.NewModel(cost.Default()), u)

	var ocNode *dag.Equiv
	for _, e := range d.Equivs {
		if e.Ops[0].Kind == dag.OpJoin && len(e.Tables) == 2 &&
			e.DependsOn("orders") && e.DependsOn("customer") {
			ocNode = e
		}
	}
	if ocNode == nil {
		t.Fatal("shared join node missing")
	}

	ms := diff.NewMatState()
	ex := NewExecutor(f.db)
	for _, r := range []*dag.Equiv{v1, v2} {
		ms.Fulls.Full[r.ID] = true
		ex.MaterializeNode(r)
	}
	key := diff.DiffKey{EquivID: ocNode.ID, Update: 1}
	ms.Diffs[key] = true
	ev := en.NewEval(ms)
	mt := NewMaintainer(ex, en, ev)

	var nk int64 = 500000
	f.logUpdates("orders", 12, &nk)

	sr := newStepRun(mt)
	t1 := sr.taskFor(ev.DiffPlan(v1, 1))
	t2 := sr.taskFor(ev.DiffPlan(v2, 1))
	shared, ok := sr.tasks[key]
	if !ok {
		t.Fatalf("no task for the shared differential %v", key)
	}
	for _, consumer := range []*diffTask{t1, t2} {
		found := false
		for _, dep := range consumer.deps {
			if dep == shared {
				found = true
			}
		}
		if !found {
			t.Fatalf("consumer δ1(e%d) does not depend on the shared task", consumer.key.EquivID)
		}
	}
	if len(shared.dependents) != 2 {
		t.Fatalf("shared task has %d dependents, want 2", len(shared.dependents))
	}

	sr.run(4)
	for _, task := range []*diffTask{t1, t2, shared} {
		if task.out.Get() == nil {
			t.Fatalf("task δ%d(e%d) did not publish", task.key.Update, task.key.EquivID)
		}
	}
	// The pool's published results must equal an independent sequential
	// interpretation of the same plans.
	sr2 := newStepRun(mt)
	w1 := sr2.taskFor(ev.DiffPlan(v1, 1))
	w2 := sr2.taskFor(ev.DiffPlan(v2, 1))
	sr2.run(1)
	// The consumers are aggregate deltas (hash-table row order, so compared
	// as multisets); the shared join differential must be byte-identical.
	if !storage.EqualMultiset(t1.out.Get(), w1.out.Get()) ||
		!storage.EqualMultiset(t2.out.Get(), w2.out.Get()) {
		t.Fatal("parallel task results differ from sequential interpretation")
	}
	if !sameRows(shared.out.Get(), sr2.tasks[key].out.Get()) {
		t.Fatal("shared join differential is not byte-identical across runs")
	}
}
