package exec

// Exported views of operator internals that the shard plan lowering
// (internal/shard) must share with the local executor. Lowering re-derives,
// per plan node, exactly the decisions Run makes — join-key split, projection
// index resolution, schema no-op detection, the broadcast threshold — so a
// scattered pipeline emits rows in the same order as single-node execution.
// Keeping these as thin wrappers (rather than duplicating the logic in the
// shard package) makes divergence impossible.

import "repro/internal/algebra"

// SplitJoinPred separates equi-conjuncts usable as hash keys from residual
// conjuncts, given the two input schemas (see splitJoinPred).
func SplitJoinPred(pred algebra.Pred, ls, rs algebra.Schema) (lCols, rCols []int, residual []algebra.Cmp) {
	return splitJoinPred(pred, ls, rs)
}

// ProjIndexes resolves the target schema's columns in the input schema,
// panicking if a target column is missing (see projIndexes).
func ProjIndexes(in, target algebra.Schema) []int { return projIndexes(in, target) }

// SchemasEqual reports whether two schemas are identical column-for-column
// (the condition under which projectTo is a no-op).
func SchemasEqual(a, b algebra.Schema) bool { return schemaEqual(a, b) }

// BroadcastMax returns the build-side row count up to which hash joins take
// the broadcast fast path. The shard coordinator ships build sides at or
// below this threshold inline with scatter requests and falls back to local
// execution above it, so the distributed fast-path condition is the same
// "build ≤ threshold" rule the local join uses.
func BroadcastMax() int { return broadcastMaxBuild }
